(* pitree: a small CLI for poking at the Pi-tree engines.

   The environments here are in-memory (the disk substrate is crash-faithful
   rather than file-persistent by default), so each invocation builds its
   own database; commands are demonstrations and smoke tools:

     pitree demo                    # load, query, crash, recover, verify
     pitree load -n 50000           # bulk load + verify + stats
     pitree crash-test -p POINT     # inject a crash at a named point
     pitree workload --domains 4    # mixed workload throughput
     pitree dump -n 50              # print a small tree's structure
     pitree chaos --seed 42         # crash-sweep + randomized fault runs
     pitree persist --dir DIR       # file-backed DB; --reopen recovers it
                                    # in a fresh process *)

open Cmdliner

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Wellformed = Pitree_core.Wellformed
module Crash_point = Pitree_util.Crash_point
module Kv = Pitree_harness.Kv
module Workload = Pitree_harness.Workload
module Driver = Pitree_harness.Driver

let mk_env page_size consolidation page_oriented_undo =
  Env.create
    {
      Env.default_config with
      page_size;
      pool_capacity = 65536;
      page_oriented_undo;
      consolidation;
    }

let key i = Printf.sprintf "key%08d" i

let print_stats t =
  let s = Blink.stats t in
  Printf.printf
    "stats: inserts=%d searches=%d leaf_splits=%d index_splits=%d \
     root_splits=%d side_traversals=%d postings=%d/%d consolidations=%d\n"
    s.Blink.inserts s.Blink.searches s.Blink.leaf_splits s.Blink.index_splits
    s.Blink.root_splits s.Blink.side_traversals s.Blink.postings_completed
    s.Blink.postings_scheduled s.Blink.consolidations

let verify_and_report t =
  let report = Blink.verify t in
  Format.printf "%a@." Wellformed.pp_report report;
  if Wellformed.ok report then 0 else 1

(* --- demo --- *)

let demo () =
  let env = mk_env 512 true false in
  let t = Blink.create env ~name:"demo" in
  Printf.printf "loading 10000 records...\n%!";
  for i = 0 to 9_999 do
    Blink.insert t ~key:(key i) ~value:(Printf.sprintf "value-%d" i)
  done;
  ignore (Env.drain env);
  Printf.printf "height=%d nodes=%d count=%d\n" (Blink.height t)
    (Blink.node_count t) (Blink.count t);
  Printf.printf "find key00004242 -> %s\n"
    (Option.value (Blink.find t "key00004242") ~default:"<missing>");
  Printf.printf "simulating power failure...\n%!";
  Env.crash env;
  let report = Env.recover env in
  Format.printf "%a@." Pitree_wal.Recovery.pp_report report;
  let t = Option.get (Blink.open_existing env ~name:"demo") in
  Printf.printf "after recovery: count=%d find key00004242 -> %s\n"
    (Blink.count t)
    (Option.value (Blink.find t "key00004242") ~default:"<missing>");
  print_stats t;
  verify_and_report t

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Load, query, crash, recover, verify.")
    Term.(const demo $ const ())

(* --- load --- *)

let load n page_size consolidation =
  let env = mk_env page_size consolidation false in
  let t = Blink.create env ~name:"t" in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    Blink.insert t ~key:(key i) ~value:(Printf.sprintf "v%d" i)
  done;
  ignore (Env.drain env);
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "loaded %d records in %.2fs (%.0f/s); height=%d nodes=%d\n" n dt
    (float_of_int n /. dt) (Blink.height t) (Blink.node_count t);
  print_stats t;
  verify_and_report t

let n_arg =
  Arg.(value & opt int 50_000 & info [ "n" ] ~docv:"N" ~doc:"Records to load.")

let page_arg =
  Arg.(value & opt int 4096 & info [ "page-size" ] ~docv:"BYTES" ~doc:"Page size.")

let consolidation_arg =
  Arg.(value & opt bool true & info [ "consolidation" ] ~doc:"CP vs CNS invariant.")

let load_cmd =
  Cmd.v (Cmd.info "load" ~doc:"Bulk load a B-link Pi-tree; verify and print stats.")
    Term.(const load $ n_arg $ page_arg $ consolidation_arg)

(* --- crash-test --- *)

let crash_test point after n =
  Crash_point.disarm_all ();
  (* The aggressive log-bytes trigger makes the ckpt.* points reachable:
     fuzzy checkpoints fire on the committing thread during the insert
     loop below, exactly as in the chaos harness. *)
  let env =
    Env.create
      {
        Env.default_config with
        page_size = 512;
        pool_capacity = 65536;
        ckpt_log_bytes = Some 65_536;
      }
  in
  let t = Blink.create env ~name:"t" in
  Crash_point.arm point ~after;
  let crashed = ref false in
  (try
     for i = 0 to n - 1 do
       Blink.insert t ~key:(key i) ~value:"v"
     done
   with Crash_point.Crash_requested p ->
     crashed := true;
     Printf.printf "crashed at %s\n" p);
  Crash_point.disarm_all ();
  if not !crashed then Printf.printf "point %S never fired\n" point;
  Env.crash env;
  let report = Env.recover env in
  Format.printf "%a@." Pitree_wal.Recovery.pp_report report;
  let t = Option.get (Blink.open_existing env ~name:"t") in
  Printf.printf "recovered: count=%d\n" (Blink.count t);
  verify_and_report t

let point_arg =
  Arg.(
    value
    & opt string "blink.split.committed"
    & info [ "p"; "point" ] ~docv:"POINT"
        ~doc:
          "Crash point: blink.split.linked, blink.split.committed, \
           blink.root.grown, blink.post.latched, blink.post.updated, \
           blink.post.done, blink.consolidate.linked, combine.applied, \
           ckpt.begin.logged, ckpt.end.logged, ckpt.truncated.")

let after_arg =
  Arg.(value & opt int 3 & info [ "after" ] ~doc:"Fire on the (N+1)-th hit.")

let crash_cmd =
  Cmd.v
    (Cmd.info "crash-test" ~doc:"Inject a crash at a named structure-change point.")
    Term.(const crash_test $ point_arg $ after_arg $ n_arg)

(* --- workload --- *)

let workload domains ops reads inserts deletes zipf no_combine =
  let env =
    Env.create
      {
        Env.default_config with
        page_size = 1024;
        pool_capacity = 65536;
        combine = not no_combine;
      }
  in
  let t = Blink.create env ~name:"t" in
  let inst = Kv.blink t in
  let dist = if zipf > 0.0 then Workload.Zipf zipf else Workload.Uniform in
  let spec =
    Workload.spec ~key_space:100_000 ~read_pct:reads ~insert_pct:inserts
      ~delete_pct:deletes ~dist ()
  in
  Driver.preload inst spec ~n:20_000;
  ignore (Env.drain env);
  let r =
    Driver.run ~env ~domains ~ops_per_domain:(ops / domains) ~seed:1L inst spec
  in
  Format.printf "%a@." Driver.pp_result r;
  verify_and_report t

let domains_arg =
  Arg.(value & opt int 4 & info [ "domains" ] ~doc:"Worker domains.")

let ops_arg = Arg.(value & opt int 40_000 & info [ "ops" ] ~doc:"Total operations.")
let reads_arg = Arg.(value & opt int 70 & info [ "reads" ] ~doc:"Read percent.")
let inserts_arg = Arg.(value & opt int 20 & info [ "inserts" ] ~doc:"Insert percent.")
let deletes_arg = Arg.(value & opt int 10 & info [ "deletes" ] ~doc:"Delete percent.")
let zipf_arg = Arg.(value & opt float 0.9 & info [ "zipf" ] ~doc:"Zipf theta (0 = uniform).")

let w_no_combine_arg =
  Arg.(value & flag & info [ "no-combine" ]
       ~doc:"Disable hot-key write combining (one descent per write).")

let workload_cmd =
  Cmd.v (Cmd.info "workload" ~doc:"Run a mixed workload across domains.")
    Term.(
      const workload $ domains_arg $ ops_arg $ reads_arg $ inserts_arg
      $ deletes_arg $ zipf_arg $ w_no_combine_arg)

(* --- dump --- *)

let dump n =
  let env = mk_env 256 true false in
  let t = Blink.create env ~name:"t" in
  for i = 0 to n - 1 do
    Blink.insert t ~key:(Printf.sprintf "k%03d" i) ~value:(string_of_int i)
  done;
  ignore (Env.drain env);
  Blink.dump t Format.std_formatter;
  Format.print_newline ();
  0

let dump_n_arg =
  Arg.(value & opt int 40 & info [ "n" ] ~doc:"Records (keep small: prints the tree).")

let dump_cmd =
  Cmd.v (Cmd.info "dump" ~doc:"Print a small tree's node structure.")
    Term.(const dump $ dump_n_arg)

(* --- chaos --- *)

let chaos seed iters ops sweep_only quiet =
  let trace = if quiet then fun _ -> () else print_endline in
  let module Chaos = Pitree_harness.Chaos in
  let sweep_summary = Chaos.sweep ~trace ~ops () in
  Format.printf "%a@." Chaos.pp_summary sweep_summary;
  let random_summary =
    if sweep_only then None
    else begin
      let s = Chaos.random_runs ~trace ~ops ~iters ~seed:(Int64.of_int seed) () in
      Format.printf "%a@." Chaos.pp_summary s;
      Some s
    end
  in
  if Chaos.ok sweep_summary && Option.fold ~none:true ~some:Chaos.ok random_summary
  then 0
  else 1

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed for the randomized runs.")

let iters_arg =
  Arg.(value & opt int 25 & info [ "iters" ] ~docv:"N" ~doc:"Randomized runs after the deterministic sweep.")

let chaos_ops_arg =
  Arg.(value & opt int 500 & info [ "ops" ] ~doc:"Workload operations per run.")

let sweep_only_arg =
  Arg.(value & flag & info [ "sweep" ] ~doc:"Deterministic sweep only; skip the randomized runs.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the per-run trace lines.")

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Crash-sweep every registered crash point across all engines, then \
          randomized crash x fault-plan runs (torn writes, transient errors, \
          bit flips); exits non-zero if any run fails recovery checks. Each \
          trace line carries the (point, after, seed, plan) tuple that \
          reproduces the run.")
    Term.(const chaos $ seed_arg $ iters_arg $ chaos_ops_arg $ sweep_only_arg $ quiet_arg)

(* --- persist --- *)

let persist dir n reopen =
  let pages = Filename.concat dir "pages.db" in
  let wal = Filename.concat dir "wal.log" in
  let cfg =
    { Env.default_config with page_size = 4096; pool_capacity = 65536; page_oriented_undo = false; consolidation = true }
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  if reopen then begin
    let env =
      Env.open_from ~disk:(Pitree_storage.Disk.file ~page_size:4096 ~path:pages)
        { cfg with Env.log_path = Some wal }
    in
    let report = Env.recover env in
    Format.printf "%a@." Pitree_wal.Recovery.pp_report report;
    match Blink.open_existing env ~name:"t" with
    | None ->
        print_endline "no tree found (run without --reopen first)";
        1
    | Some t ->
        Printf.printf "reopened: count=%d height=%d
" (Blink.count t) (Blink.height t);
        let rc = verify_and_report t in
        Env.close env;
        rc
  end
  else begin
    let env =
      Env.create ~disk:(Pitree_storage.Disk.file ~page_size:4096 ~path:pages)
        { cfg with Env.log_path = Some wal }
    in
    let t = Blink.create env ~name:"t" in
    for i = 0 to n - 1 do
      Blink.insert t ~key:(key i) ~value:(Printf.sprintf "v%d" i)
    done;
    ignore (Env.drain env);
    Printf.printf "persisted %d records under %s (rerun with --reopen)
" n dir;
    Env.close env;
    0
  end

let dir_arg =
  Arg.(value & opt string "/tmp/pitree-db" & info [ "dir" ] ~docv:"DIR" ~doc:"Database directory.")

let reopen_arg =
  Arg.(value & flag & info [ "reopen" ] ~doc:"Reopen an existing database instead of creating one.")

let persist_n_arg =
  Arg.(value & opt int 10_000 & info [ "n" ] ~doc:"Records to load on create.")

let persist_cmd =
  Cmd.v
    (Cmd.info "persist"
       ~doc:"Create a file-backed database, or --reopen one from a previous run (cross-process recovery).")
    Term.(const persist $ dir_arg $ persist_n_arg $ reopen_arg)

(* --- sim --- *)

let sim engine threads ops keys preload seed walks systematic depth preemptions
    max_schedules consolidation no_olc combine no_combine del_heavy si bug
    expect_bug replay_s quiet =
  let module Scenario = Pitree_sim.Scenario in
  let module Sim = Pitree_sim.Sim in
  let module Mvcc = Pitree_txn.Mvcc in
  (* SI protocol bugs select the snapshot-isolation scenario (and with it
     the TSB engine); structure bugs stay on the blink injection arm. *)
  let mvcc_bug, bug =
    match Mvcc.Testing.of_name bug with
    | Some b -> (b, Blink.Testing.No_bug)
    | None -> (
        ( Mvcc.Testing.No_bug,
          match bug with
          | "none" -> Blink.Testing.No_bug
          | "early-unlatch" -> Blink.Testing.Early_unlatch_split
          | "early-unlatch-merge" -> Blink.Testing.Early_unlatch_merge
          | "bad-post-sep" -> Blink.Testing.Bad_post_sep
          | "no-version-bump" -> Blink.Testing.No_version_bump
          | "ack-before-durable" -> Blink.Testing.Ack_before_durable
          | _ ->
              failwith
                "unknown bug \
                 (none|early-unlatch|early-unlatch-merge|bad-post-sep|no-version-bump|ack-before-durable|stale-snapshot-read|lost-first-committer)"
        ))
  in
  let si = si || mvcc_bug <> Mvcc.Testing.No_bug in
  let engine = if si then "tsb" else engine in
  let engine =
    match Scenario.engine_of_string engine with
    | Some e -> e
    | None -> failwith "unknown engine (blink|tsb|hb)"
  in
  (* [No_version_bump] only misbehaves where a stale node can be acted
     on, i.e. under CP de-allocation: force consolidation on — as does
     [Early_unlatch_merge], which lives inside the consolidation action.
     Likewise [Ack_before_durable] lives in the combining layer: force it
     on. *)
  let consolidation =
    consolidation
    || bug = Blink.Testing.No_version_bump
    || bug = Blink.Testing.Early_unlatch_merge
  in
  let combine =
    (combine || bug = Blink.Testing.Ack_before_durable) && not no_combine
  in
  let cfg =
    {
      Scenario.default with
      Scenario.engine;
      threads;
      ops_per_thread = ops;
      key_space = keys;
      preload;
      seed;
      consolidation;
      olc = not no_olc;
      combine;
      del_heavy;
      bug;
      si;
      mvcc_bug;
    }
  in
  let say fmt =
    if quiet then Format.ifprintf Format.std_formatter fmt
    else Format.printf fmt
  in
  let report_failure what (r : Scenario.report) sched =
    Format.printf "%s FOUND a failing schedule@." what;
    Format.printf "  %a@." Scenario.pp_report r;
    let minimized = Scenario.minimize cfg sched in
    Format.printf
      "  replay: pitree sim --engine %s --threads %d --ops %d --keys %d \
       --preload %d --seed %Ld %s--replay '%s'@."
      (Scenario.engine_to_string engine)
      threads ops keys preload seed
      ((if consolidation then "--consolidation " else "")
      ^ (if no_olc then "--no-olc " else "")
      ^ (if combine then "--combine " else "")
      ^ (if del_heavy then "--del-heavy " else "")
      ^ (if si && mvcc_bug = Mvcc.Testing.No_bug then "--si " else "")
      ^ (match mvcc_bug with
        | Mvcc.Testing.No_bug -> ""
        | Mvcc.Testing.Stale_snapshot_read -> "--bug stale-snapshot-read "
        | Mvcc.Testing.Lost_first_committer -> "--bug lost-first-committer ")
      ^
      match bug with
      | Blink.Testing.No_bug -> ""
      | Blink.Testing.Early_unlatch_split -> "--bug early-unlatch "
      | Blink.Testing.Early_unlatch_merge -> "--bug early-unlatch-merge "
      | Blink.Testing.Bad_post_sep -> "--bug bad-post-sep "
      | Blink.Testing.No_version_bump -> "--bug no-version-bump "
      | Blink.Testing.Ack_before_durable -> "--bug ack-before-durable ")
      (Sim.schedule_to_string minimized)
  in
  let found = ref false in
  (match replay_s with
  | Some s ->
      let sched = Sim.schedule_of_string s in
      let r = Scenario.replay cfg sched in
      Format.printf "replay: %a@." Scenario.pp_report r;
      if Scenario.failed r then found := true
  | None ->
      if systematic then begin
        let stats, failing =
          Scenario.systematic ~max_preemptions:preemptions ~branch_depth:depth
            ~max_schedules cfg
        in
        say "systematic: %d schedules run, %d branches pruned@."
          stats.Sim.schedules_run stats.Sim.pruned;
        match failing with
        | Some (prefix, r) ->
            found := true;
            report_failure "systematic" r
              (match (Scenario.outcome_of r).Sim.failure with
              | Some _ -> r.Scenario.outcome.Sim.schedule
              | None -> prefix)
        | None -> ()
      end;
      if (not !found) && walks > 0 then begin
        let done_, failing = Scenario.random_walks cfg ~walks ~seed in
        say "random walks: %d run@." done_;
        match failing with
        | Some (wseed, r) ->
            found := true;
            Format.printf "walk seed %Ld failed@." wseed;
            report_failure "random walk" r r.Scenario.outcome.Sim.schedule
        | None -> ()
      end);
  if expect_bug then
    if !found then begin
      say "expected bug caught by the oracle@.";
      0
    end
    else begin
      Format.printf "EXPECTED a failure but every schedule passed@.";
      1
    end
  else if !found then 1
  else begin
    say "all schedules passed (linearizable, well-formed)@.";
    0
  end

let sim_engine_arg =
  Arg.(value & opt string "blink" & info [ "engine" ] ~docv:"ENGINE" ~doc:"blink, tsb or hb.")

let sim_threads_arg =
  Arg.(value & opt int 3 & info [ "threads" ] ~doc:"Logical threads (fibers).")

let sim_ops_arg =
  Arg.(value & opt int 4 & info [ "ops" ] ~doc:"Operations per thread.")

let sim_keys_arg =
  Arg.(value & opt int 24 & info [ "keys" ] ~doc:"Distinct keys in the op stream.")

let sim_preload_arg =
  Arg.(value & opt int 8 & info [ "preload" ] ~doc:"Keys inserted before the run.")

let sim_seed_arg =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"Op-stream and walk master seed.")

let sim_walks_arg =
  Arg.(value & opt int 200 & info [ "walks" ] ~doc:"Random-walk schedules to try.")

let sim_systematic_arg =
  Arg.(value & flag & info [ "systematic" ] ~doc:"Run the preemption-bounded DFS first.")

let sim_depth_arg =
  Arg.(value & opt int 6 & info [ "depth" ] ~doc:"Systematic branch depth (decisions).")

let sim_preemptions_arg =
  Arg.(value & opt int 2 & info [ "preemptions" ] ~doc:"Systematic preemption bound.")

let sim_max_schedules_arg =
  Arg.(value & opt int 2000 & info [ "max-schedules" ] ~doc:"Systematic schedule cap.")

let sim_consolidation_arg =
  Arg.(value & flag & info [ "consolidation" ]
         ~doc:"Run under the CP invariant (node consolidation/de-allocation enabled).")

let sim_no_olc_arg =
  Arg.(value & flag & info [ "no-olc" ]
         ~doc:"Disable optimistic latch-free reads (always-latched descent).")

let sim_combine_arg =
  Arg.(value & flag & info [ "combine" ]
         ~doc:"Enable hot-key write combining (off by default in the \
               simulator so the un-combined protocol keeps its compact \
               schedule space; implied by --bug ack-before-durable).")

let sim_no_combine_arg =
  Arg.(value & flag & info [ "no-combine" ]
         ~doc:"Force write combining off (overrides --combine; accepted \
               for flag symmetry with workload/endure).")

let sim_del_heavy_arg =
  Arg.(value & flag & info [ "del-heavy" ]
         ~doc:"Skew the op mix to 50% deletes so leaves drain below the \
               consolidation threshold and merge/free actions run \
               mid-schedule (pair with --consolidation).")

let sim_si_arg =
  Arg.(value & flag & info [ "si" ]
         ~doc:"Run snapshot-isolation transactions (TSB engine forced): \
               each fiber executes a sequence of SI transactions judged \
               by the SI oracle (consistent-cut reads, \
               first-committer-wins) instead of single linearizable ops.")

let sim_bug_arg =
  Arg.(value & opt string "none" & info [ "bug" ] ~docv:"BUG"
         ~doc:"Inject a protocol bug: none, early-unlatch, \
               early-unlatch-merge, bad-post-sep, no-version-bump or \
               ack-before-durable (blink only; no-version-bump and \
               early-unlatch-merge imply --consolidation, \
               ack-before-durable implies --combine), or an SI protocol \
               bug: stale-snapshot-read or lost-first-committer (imply \
               --si).")

let sim_expect_bug_arg =
  Arg.(value & flag & info [ "expect-bug" ]
         ~doc:"Exit 0 iff a failing schedule IS found (oracle validation).")

let sim_replay_arg =
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"SCHEDULE"
         ~doc:"Replay a comma-separated decision list instead of exploring.")

let sim_quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Only report failures.")

let sim_cmd =
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Deterministic schedule exploration: run N logical threads over a \
          tree under controlled interleavings (seeded random walks and/or \
          preemption-bounded systematic search), checking linearizability \
          against a map model and well-formedness at quiesced yield points. \
          Failures print a minimized, replayable schedule.")
    Term.(
      const sim $ sim_engine_arg $ sim_threads_arg $ sim_ops_arg $ sim_keys_arg
      $ sim_preload_arg $ sim_seed_arg $ sim_walks_arg $ sim_systematic_arg
      $ sim_depth_arg $ sim_preemptions_arg $ sim_max_schedules_arg
      $ sim_consolidation_arg $ sim_no_olc_arg $ sim_combine_arg
      $ sim_no_combine_arg $ sim_del_heavy_arg $ sim_si_arg $ sim_bug_arg
      $ sim_expect_bug_arg $ sim_replay_arg $ sim_quiet_arg)

(* --- endure --- *)

let endure keys seconds domains mix theta value_len scan_len pool ckpt_kb
    faults cycles sample seed dir out quiet no_combine slo_p99_ms slo_wal_mb =
  let module Endure = Pitree_harness.Endure in
  match Endure.mix_of_string mix with
  | None ->
      Printf.eprintf "endure: unknown mix %S (A..F, mixed or storm)\n" mix;
      2
  | Some mix ->
      let faults =
        match String.lowercase_ascii faults with
        | "on" | "true" | "1" -> true
        | _ -> false
      in
      let cfg =
        {
          Endure.default_config with
          Endure.keys;
          seconds;
          domains;
          mix;
          theta;
          value_len;
          scan_len;
          pool_capacity = pool;
          ckpt_log_bytes = ckpt_kb * 1024;
          faults;
          crash_cycles = cycles;
          verify_sample = sample;
          seed = Int64.of_int seed;
          dir;
          combine = not no_combine;
          slo_p99_read_ns = slo_p99_ms * 1_000_000;
          slo_wal_bytes = slo_wal_mb * 1024 * 1024;
        }
      in
      let log =
        if quiet then fun s ->
          (* Quiet suppresses progress, not autopsies: on verification
             failure the forensic dump is the only diagnostic artifact. *)
          (if String.length s >= 9 && String.sub s 0 9 = "FORENSICS" then
             Printf.eprintf "endure: %s\n%!" s)
        else fun s -> Printf.printf "endure: %s\n%!" s
      in
      let r = Endure.run ~log cfg in
      let oc = open_out out in
      output_string oc (Endure.to_json r);
      close_out oc;
      if not quiet then Format.printf "%a@." Endure.pp_result r;
      Printf.printf "wrote %s\n%!" out;
      if r.Endure.passed then 0 else 1

let e_keys_arg =
  Arg.(value & opt int 1_000_000 & info [ "keys" ] ~doc:"Preloaded key-space size.")

let e_seconds_arg =
  Arg.(value & opt float 60. & info [ "seconds" ] ~doc:"Measured run duration.")

let e_domains_arg =
  Arg.(value & opt int 4 & info [ "domains" ] ~doc:"Worker domains.")

let e_mix_arg =
  Arg.(value & opt string "mixed"
       & info [ "mix" ] ~doc:"YCSB-shaped mix: A..F, mixed, or storm (update-only skewed write storm).")

let e_theta_arg =
  Arg.(value & opt float 0.99 & info [ "theta" ] ~doc:"Zipf theta (<=0 = uniform).")

let e_value_len_arg =
  Arg.(value & opt int 64 & info [ "value-len" ] ~doc:"Value bytes.")

let e_scan_len_arg =
  Arg.(value & opt int 50 & info [ "scan-len" ] ~doc:"Records per scan op.")

let e_pool_arg =
  Arg.(value & opt int 8192 & info [ "pool" ] ~doc:"Buffer-pool frames.")

let e_ckpt_kb_arg =
  Arg.(value & opt int 4096
       & info [ "ckpt-kb" ] ~doc:"Checkpoint after this much log growth (KiB).")

let e_faults_arg =
  Arg.(value & opt string "on" & info [ "faults" ] ~doc:"Fault injection: on|off.")

let e_cycles_arg =
  Arg.(value & opt int 3 & info [ "cycles" ] ~doc:"Mid-run crash+recover cycles.")

let e_sample_arg =
  Arg.(value & opt int 2000
       & info [ "sample" ] ~doc:"Model keys re-verified per recovery.")

let e_seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let e_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "dir" ] ~docv:"DIR"
           ~doc:"Directory for the page file and WAL (default: fresh temp \
                 dir, removed afterwards).")

let e_out_arg =
  Arg.(value & opt string "BENCH_endure.json"
       & info [ "out" ] ~doc:"Where to write the JSON report.")

let e_quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Only write the JSON report.")

let e_no_combine_arg =
  Arg.(value & flag & info [ "no-combine" ]
       ~doc:"Disable hot-key write combining (one descent per write).")

let e_slo_p99_arg =
  Arg.(value & opt int 50
       & info [ "slo-p99-read-ms" ] ~doc:"SLO: point-read p99 bound (ms).")

let e_slo_wal_arg =
  Arg.(value & opt int 64
       & info [ "slo-wal-mb" ] ~doc:"SLO: WAL file size bound (MiB).")

let endure_cmd =
  Cmd.v
    (Cmd.info "endure"
       ~doc:
         "Endurance rig: YCSB-shaped mixes against a file-backed database \
          under fault injection, automatic checkpointing with log \
          truncation, and mid-run crash+recover cycles — gated by SLOs \
          (zero lost committed writes, complete scans, well-formedness, \
          p99 point-read and WAL-size bounds). Exits 0 iff every SLO \
          passes.")
    Term.(
      const endure $ e_keys_arg $ e_seconds_arg $ e_domains_arg $ e_mix_arg
      $ e_theta_arg $ e_value_len_arg $ e_scan_len_arg $ e_pool_arg
      $ e_ckpt_kb_arg $ e_faults_arg $ e_cycles_arg $ e_sample_arg
      $ e_seed_arg $ e_dir_arg $ e_out_arg $ e_quiet_arg $ e_no_combine_arg
      $ e_slo_p99_arg $ e_slo_wal_arg)

(* ---------- churn ---------- *)

let churn cycles keys band value_len page_size pool out quiet =
  let module Churn = Pitree_harness.Churn in
  let cfg =
    {
      Churn.cycles;
      keys;
      band;
      value_bytes = value_len;
      page_size;
      pool_capacity = pool;
    }
  in
  let log =
    if quiet then fun _ -> () else fun s -> Printf.printf "%s\n%!" s
  in
  let r = Churn.run ~log cfg in
  let oc = open_out out in
  output_string oc (Churn.to_json cfg r);
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if r.Churn.passed then 0 else 1

let ch_cycles_arg =
  Arg.(value & opt int 1_000_000
       & info [ "cycles" ] ~doc:"Insert/delete pairs per engine.")

let ch_keys_arg =
  Arg.(value & opt int 4_096 & info [ "keys" ] ~doc:"Fixed key population.")

let ch_band_arg =
  Arg.(value & opt int 256
       & info [ "band" ] ~doc:"Contiguous keys deleted and re-inserted per \
                               rotation.")

let ch_value_len_arg =
  Arg.(value & opt int 16 & info [ "value-len" ] ~doc:"Value bytes.")

let ch_page_size_arg =
  Arg.(value & opt int 512 & info [ "page-size" ] ~doc:"Page size in bytes.")

let ch_pool_arg =
  Arg.(value & opt int 4096 & info [ "pool" ] ~doc:"Buffer-pool frames.")

let ch_out_arg =
  Arg.(value & opt string "BENCH_churn.json"
       & info [ "out" ] ~doc:"Where to write the JSON report.")

let ch_quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Only write the JSON report.")

let churn_cmd =
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Churn rig: alternating insert/delete cycles over all three \
          engines. Band deletes empty whole leaves, online merges push \
          their pages onto the free list, and the re-insert splits must be \
          served off it — gated on a bounded file (final extent within \
          1.5x the live-page high-water mark) and on the free list serving \
          at least 80% of steady-state allocations. Exits 0 iff every \
          engine passes both gates well-formed.")
    Term.(
      const churn $ ch_cycles_arg $ ch_keys_arg $ ch_band_arg
      $ ch_value_len_arg $ ch_page_size_arg $ ch_pool_arg $ ch_out_arg
      $ ch_quiet_arg)

let main =
  Cmd.group
    (Cmd.info "pitree" ~version:"1.0.0"
       ~doc:"Pi-tree index structures with concurrency and recovery (Lomet & Salzberg, SIGMOD 1992).")
    [ demo_cmd; load_cmd; crash_cmd; workload_cmd; dump_cmd; chaos_cmd; persist_cmd; sim_cmd; endure_cmd; churn_cmd ]

let () = exit (Cmd.eval' main)
