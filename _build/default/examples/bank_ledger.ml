(* Bank ledger on the TSB-tree: every balance update is a new version,
   so the ledger can be queried AS OF any past moment — the multiversion
   access pattern the TSB-tree (paper section 2.2.2, Figure 1) indexes with
   time splits and history nodes.

   Run with:  dune exec examples/bank_ledger.exe *)

module Env = Pitree_env.Env
module Tsb = Pitree_tsb.Tsb

let () =
  let env =
    Env.create { Env.default_config with Env.page_size = 512 }
  in
  let ledger = Tsb.create env ~name:"ledger" in

  (* Month 1: accounts open. *)
  ignore (Tsb.put ledger ~key:"alice" ~value:"1000");
  ignore (Tsb.put ledger ~key:"bob" ~value:"500");
  let end_of_month_1 = Tsb.now ledger in

  (* Month 2: salary, spending, an account closes. *)
  ignore (Tsb.put ledger ~key:"alice" ~value:"3200");
  ignore (Tsb.put ledger ~key:"bob" ~value:"180");
  ignore (Tsb.put ledger ~key:"carol" ~value:"50");
  let end_of_month_2 = Tsb.now ledger in

  (* Month 3: churn. *)
  ignore (Tsb.put ledger ~key:"alice" ~value:"2950");
  ignore (Tsb.remove ledger "bob");
  ignore (Tsb.put ledger ~key:"carol" ~value:"75");

  let show label time =
    Printf.printf "%s:\n" label;
    ignore
      (Tsb.range_asof ledger ~time ?low:None ?high:None ~init:() ~f:(fun () k v ->
           Printf.printf "  %-6s %s\n" k v))
  in
  show "balance sheet, end of month 1" end_of_month_1;
  show "balance sheet, end of month 2" end_of_month_2;
  show "balance sheet, now" max_int;

  (* Per-account audit trail. *)
  Printf.printf "bob's history:\n";
  List.iter
    (fun (ts, v) ->
      Printf.printf "  t=%d %s\n" ts
        (match v with Some v -> v | None -> "<account closed>"))
    (Tsb.history ledger "bob");

  (* Heavy update traffic forces time splits; history stays reachable. *)
  for day = 1 to 400 do
    ignore (Tsb.put ledger ~key:"alice" ~value:(string_of_int (3000 + day)))
  done;
  let s = Tsb.stats ledger in
  Printf.printf
    "after 400 more updates: %d time splits created %d history nodes; \
     month-1 balance still readable: alice=%s\n"
    s.Tsb.time_splits s.Tsb.history_nodes
    (Option.value (Tsb.get_asof ledger "alice" ~time:end_of_month_1) ~default:"?");
  Format.printf "%a@." Pitree_core.Wellformed.pp_report (Tsb.verify ledger)
