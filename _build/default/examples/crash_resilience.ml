(* Crash resilience walkthrough: the paper's headline behavior, visible.

   A Pi-tree structure change is a SEQUENCE of atomic actions (split, then
   index-term posting). We crash the system exactly between them, recover,
   and watch a later search discover the intermediate state through the
   side pointer and schedule the completing atomic action — "crash recovery
   takes no special measures" (paper sections 1 and 5.1).

   Run with:  dune exec examples/crash_resilience.exe *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr

let () =
  (* Tiny pages make splits frequent and the story short. *)
  let env =
    Env.create { Env.default_config with Env.page_size = 256 }
  in
  let t = Blink.create env ~name:"t" in

  (* Load inside one explicit transaction: the splits run as independent
     atomic actions, but nothing drains the posting queue until the
     transaction finishes — so when we "pull the plug" right after commit,
     durable splits exist whose index terms were never posted. *)
  let mgr = Env.txns env in
  let txn = Txn_mgr.begin_txn mgr Txn.User in
  for i = 0 to 999 do
    Blink.insert ~txn t ~key:(Printf.sprintf "key%04d" i) ~value:"v"
  done;
  Txn_mgr.commit mgr txn;
  Printf.printf "before crash: %d postings pending in the (volatile) queue\n"
    (Blink.pending_postings t);

  (* Power failure: buffer pool, lock table, live transactions and the
     completion queue vanish; only flushed pages + the durable log prefix
     survive. *)
  Env.crash env;
  let report = Env.recover env in
  Printf.printf "recovery: %d records redone, %d losers rolled back\n"
    report.Pitree_wal.Recovery.redone
    (List.length report.Pitree_wal.Recovery.loser_txns);

  let t = Option.get (Blink.open_existing env ~name:"t") in
  let wf = Pitree_core.Wellformed.ok (Blink.verify t) in
  Printf.printf "tree well-formed right after recovery (no SMO fixup ran): %b\n" wf;

  (* Normal processing completes the interrupted structure changes: a
     search that must side-step schedules the posting action; draining the
     queue runs it. *)
  Blink.reset_stats t;
  for i = 0 to 999 do
    ignore (Blink.find t (Printf.sprintf "key%04d" i))
  done;
  ignore (Env.drain env);
  let s = Blink.stats t in
  Printf.printf
    "searches after recovery side-stepped %d times and completed %d \
     postings lazily\n"
    s.Blink.side_traversals s.Blink.postings_completed;

  (* And everything is still there. *)
  let missing = ref 0 in
  for i = 0 to 999 do
    if Blink.find t (Printf.sprintf "key%04d" i) = None then incr missing
  done;
  Printf.printf "lost records: %d\n" !missing;
  Format.printf "%a@." Pitree_core.Wellformed.pp_report (Blink.verify t)
