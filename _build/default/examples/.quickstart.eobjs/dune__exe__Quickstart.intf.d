examples/quickstart.mli:
