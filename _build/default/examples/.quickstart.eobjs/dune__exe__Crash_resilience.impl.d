examples/crash_resilience.ml: Format List Option Pitree_blink Pitree_core Pitree_env Pitree_txn Pitree_wal Printf
