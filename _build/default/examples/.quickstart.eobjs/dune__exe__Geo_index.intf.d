examples/geo_index.mli:
