examples/concurrent_workers.ml: Domain Format Int64 List Pitree_blink Pitree_core Pitree_env Pitree_util Printf Unix
