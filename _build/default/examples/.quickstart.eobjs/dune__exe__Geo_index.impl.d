examples/geo_index.ml: Array Format List Pitree_core Pitree_env Pitree_hb Pitree_util Printf String
