examples/bank_ledger.ml: Format List Option Pitree_core Pitree_env Pitree_tsb Printf
