examples/quickstart.ml: Format Pitree_blink Pitree_core Pitree_env Pitree_txn Printf
