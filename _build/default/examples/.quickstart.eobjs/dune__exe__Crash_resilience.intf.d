examples/crash_resilience.mli:
