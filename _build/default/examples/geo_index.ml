(* Spatial point index on the hB-tree (paper section 2.2.3, Figure 2):
   city coordinates in 2-D, looked up by region. The nodes' intra-node
   kd-trees route points through holey-brick subspaces, with sibling
   pointers standing in for the original hB "external" markers.

   Run with:  dune exec examples/geo_index.exe *)

module Env = Pitree_env.Env
module Hb = Pitree_hb.Hb
module Rng = Pitree_util.Rng

let () =
  let env = Env.create { Env.default_config with Env.page_size = 512 } in
  let map = Hb.create env ~name:"cities" ~dims:2 in

  (* A few named cities on a normalized [0,1) x [0,1) map... *)
  let cities =
    [
      ([| 0.20; 0.70 |], "seattle");
      ([| 0.22; 0.45 |], "portland");
      ([| 0.30; 0.20 |], "san-francisco");
      ([| 0.55; 0.30 |], "denver");
      ([| 0.75; 0.35 |], "chicago");
      ([| 0.90; 0.40 |], "boston");
      ([| 0.85; 0.25 |], "new-york");
      ([| 0.70; 0.10 |], "houston");
    ]
  in
  List.iter (fun (p, name) -> Hb.insert map ~point:p ~value:name) cities;

  (* ...plus enough synthetic points to force real structure changes. *)
  let rng = Rng.create 2026L in
  for i = 0 to 4_999 do
    let p = [| Rng.float rng 1.0; Rng.float rng 1.0 |] in
    Hb.insert map ~point:p ~value:(Printf.sprintf "poi-%d" i)
  done;

  (* Point lookup. *)
  (match Hb.find map [| 0.55; 0.30 |] with
  | Some name -> Printf.printf "at (0.55, 0.30): %s\n" name
  | None -> print_endline "nothing at (0.55, 0.30)");

  (* Region query: the north-west quadrant. *)
  Printf.printf "cities in the north-west quadrant:\n";
  ignore
    (Hb.query map ~low:[| 0.0; 0.4 |] ~high:[| 0.5; 1.0 |] ~init:()
       ~f:(fun () p v ->
         if not (String.length v > 3 && String.sub v 0 4 = "poi-") then
           Printf.printf "  %-14s (%.2f, %.2f)\n" v p.(0) p.(1)));

  (* The structural story: kd-tree splits, clipped postings, multi-parent
     marking — the section 3.2.2 / 3.3 machinery. *)
  let s = Hb.stats map in
  Printf.printf
    "structure: %d points, %d data splits, %d index splits, %d clipped \
     index terms, %d multi-parent nodes\n"
    (Hb.count map) s.Hb.data_splits s.Hb.index_splits s.Hb.clipped_postings
    s.Hb.multi_parent_marks;
  Format.printf "%a@." Pitree_core.Wellformed.pp_report (Hb.verify map)
