(* Concurrent workers: several domains hammer one B-link Pi-tree while a
   verifier watches. Splits and index-term postings run as short atomic
   actions interleaved with the workers' reads and writes — nobody holds a
   path of exclusive latches (the paper's concurrency claim, section 6).

   Run with:  dune exec examples/concurrent_workers.exe *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Rng = Pitree_util.Rng

let () =
  let env =
    Env.create { Env.default_config with Env.page_size = 512 }
  in
  let t = Blink.create env ~name:"t" in
  let domains = 4 and per_domain = 3_000 in

  let worker d () =
    let rng = Rng.create (Int64.of_int (1000 + d)) in
    for i = 0 to per_domain - 1 do
      let k = Printf.sprintf "w%d-%05d" d i in
      Blink.insert t ~key:k ~value:(string_of_int (Rng.int rng 1_000_000));
      (* Read someone else's recent key now and then. *)
      if i mod 7 = 0 then begin
        let other = Rng.int rng domains in
        ignore (Blink.find t (Printf.sprintf "w%d-%05d" other (max 0 (i - 1))))
      end
    done
  in
  let t0 = Unix.gettimeofday () in
  let hs = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join hs;
  ignore (Env.drain env);
  let dt = Unix.gettimeofday () -. t0 in

  let total = domains * per_domain in
  Printf.printf "%d workers inserted %d records in %.2fs (%.0f ops/s)\n" domains
    total dt (float_of_int total /. dt);
  Printf.printf "final count: %d (expected %d)\n" (Blink.count t) total;

  let s = Blink.stats t in
  Printf.printf
    "structure changes while workers ran: %d leaf splits, %d index splits, \
     %d root splits, %d postings, %d side-traversals, %d lock backoffs\n"
    s.Blink.leaf_splits s.Blink.index_splits s.Blink.root_splits
    s.Blink.postings_completed s.Blink.side_traversals s.Blink.lock_restarts;
  Format.printf "%a@." Pitree_core.Wellformed.pp_report (Blink.verify t)
