(* Quickstart: create a database environment, open a B-link Pi-tree,
   and use it as an ordered key-value store.

   Run with:  dune exec examples/quickstart.exe *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink

let () =
  (* An environment bundles the page store, buffer pool, write-ahead log,
     lock manager and transaction manager — one per "database". *)
  let env = Env.create Env.default_config in

  (* Trees live in the environment's catalog under a name. *)
  let orders = Blink.create env ~name:"orders" in

  (* Point writes auto-commit (each is a durable user transaction). *)
  Blink.insert orders ~key:"order:1001" ~value:"alice,laptop,999.00";
  Blink.insert orders ~key:"order:1002" ~value:"bob,keyboard,49.00";
  Blink.insert orders ~key:"order:1003" ~value:"carol,monitor,249.00";

  (* Point reads are latch-consistent and lock-free. *)
  (match Blink.find orders "order:1002" with
  | Some v -> Printf.printf "order:1002 -> %s\n" v
  | None -> print_endline "order:1002 missing?!");

  (* Range scans walk the leaf level through sibling pointers. *)
  Printf.printf "all orders:\n";
  ignore
    (Blink.range orders ~low:"order:" ~high:"order:~" ~init:() ~f:(fun () k v ->
         Printf.printf "  %s = %s\n" k v));

  (* Multi-operation transactions: pass ?txn explicitly; abort rolls
     everything back (through the WAL, with logical undo if structure
     changes moved the records meanwhile). *)
  let mgr = Env.txns env in
  let txn = Pitree_txn.Txn_mgr.begin_txn mgr Pitree_txn.Txn.User in
  Blink.insert ~txn orders ~key:"order:1004" ~value:"dave,speaker,89.00";
  ignore (Blink.delete ~txn orders "order:1001");
  Pitree_txn.Txn_mgr.abort mgr txn;
  Printf.printf "after abort: order:1001 %s, order:1004 %s\n"
    (if Blink.find orders "order:1001" <> None then "present" else "MISSING")
    (if Blink.find orders "order:1004" = None then "absent" else "LEAKED");

  (* The tree verifies against the paper's six well-formedness conditions. *)
  let report = Blink.verify orders in
  Format.printf "%a@." Pitree_core.Wellformed.pp_report report
