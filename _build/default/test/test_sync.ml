(* Tests for pitree.sync: S/U/X latches and the latch-order checker. *)

module Latch = Pitree_sync.Latch
module Latch_order = Pitree_sync.Latch_order

let test_s_shared () =
  let l = Latch.create () in
  Latch.acquire l Latch.S;
  Alcotest.(check bool) "second S granted" true (Latch.try_acquire l Latch.S);
  Alcotest.(check bool) "X blocked by readers" false (Latch.try_acquire l Latch.X);
  Latch.release l Latch.S;
  Latch.release l Latch.S;
  Alcotest.(check bool) "X after drain" true (Latch.try_acquire l Latch.X);
  Latch.release l Latch.X

let test_u_mode () =
  let l = Latch.create () in
  Latch.acquire l Latch.U;
  Alcotest.(check bool) "S compatible with U" true (Latch.try_acquire l Latch.S);
  Alcotest.(check bool) "second U blocked" false (Latch.try_acquire l Latch.U);
  Alcotest.(check bool) "X blocked" false (Latch.try_acquire l Latch.X);
  Latch.release l Latch.S;
  Latch.release l Latch.U

let test_x_exclusive () =
  let l = Latch.create () in
  Latch.acquire l Latch.X;
  Alcotest.(check bool) "S blocked" false (Latch.try_acquire l Latch.S);
  Alcotest.(check bool) "U blocked" false (Latch.try_acquire l Latch.U);
  Alcotest.(check bool) "X blocked" false (Latch.try_acquire l Latch.X);
  Latch.release l Latch.X

let test_promote_immediate () =
  let l = Latch.create () in
  Latch.acquire l Latch.U;
  Latch.promote l;
  Alcotest.(check bool) "now exclusive" false (Latch.try_acquire l Latch.S);
  Latch.release l Latch.X

let test_promote_waits_for_readers () =
  let l = Latch.create () in
  Latch.acquire l Latch.U;
  Latch.acquire l Latch.S;
  let promoted = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        Latch.promote l;
        Atomic.set promoted true;
        Latch.release l Latch.X)
      ()
  in
  Thread.delay 0.02;
  Alcotest.(check bool) "promotion blocked by reader" false (Atomic.get promoted);
  (* Promotion pending blocks NEW readers (no starvation). *)
  Alcotest.(check bool) "new S blocked during promotion" false
    (Latch.try_acquire l Latch.S);
  Latch.release l Latch.S;
  Thread.join th;
  Alcotest.(check bool) "promoted after reader left" true (Atomic.get promoted)

let test_promote_without_u () =
  let l = Latch.create () in
  Alcotest.check_raises "promote without U"
    (Invalid_argument "Latch.promote: caller does not hold a U latch")
    (fun () -> Latch.promote l)

let test_demote () =
  let l = Latch.create () in
  Latch.acquire l Latch.X;
  Latch.demote l;
  Alcotest.(check bool) "readers allowed after demote" true
    (Latch.try_acquire l Latch.S);
  Latch.release l Latch.S;
  Latch.release l Latch.U

let test_release_unheld () =
  let l = Latch.create () in
  Alcotest.check_raises "bad release" (Invalid_argument "Latch.release: no S hold")
    (fun () -> Latch.release l Latch.S)

let test_blocking_acquire () =
  let l = Latch.create () in
  Latch.acquire l Latch.X;
  let got = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        Latch.acquire l Latch.S;
        Atomic.set got true;
        Latch.release l Latch.S)
      ()
  in
  Thread.delay 0.02;
  Alcotest.(check bool) "still blocked" false (Atomic.get got);
  Latch.release l Latch.X;
  Thread.join th;
  Alcotest.(check bool) "granted after release" true (Atomic.get got)

let test_stats () =
  let l = Latch.create () in
  Latch.reset_stats l;
  Latch.acquire l Latch.X;
  Latch.release l Latch.X;
  Latch.acquire l Latch.S;
  Latch.release l Latch.S;
  let s = Latch.stats l in
  Alcotest.(check int) "acquisitions" 2 s.Latch.acquisitions;
  Alcotest.(check bool) "hold time recorded" true (s.Latch.hold_ns >= 0)

let test_mutual_exclusion_stress () =
  (* Many threads incrementing a counter under X latches must not lose
     updates. *)
  let l = Latch.create () in
  let counter = ref 0 in
  let per_thread = 2000 and threads = 8 in
  let worker () =
    for _ = 1 to per_thread do
      Latch.acquire l Latch.X;
      counter := !counter + 1;
      Latch.release l Latch.X
    done
  in
  let ths = List.init threads (fun _ -> Thread.create worker ()) in
  List.iter Thread.join ths;
  Alcotest.(check int) "no lost updates" (threads * per_thread) !counter

let test_latch_order_checker () =
  Latch_order.enable true;
  Latch_order.reset ();
  (* Correct order: rank 0 then rank 1. *)
  Latch_order.acquired 0;
  Latch_order.acquired 1;
  Latch_order.released 1;
  Latch_order.released 0;
  Alcotest.(check int) "no violations" 0 (Latch_order.violations ());
  (* Wrong order: child (rank 2) then parent (rank 1). *)
  Latch_order.acquired 2;
  Latch_order.acquired 1;
  Alcotest.(check int) "violation detected" 1 (Latch_order.violations ());
  Latch_order.released 1;
  Latch_order.released 2;
  (* Promotion while holding a higher-ordered resource violates 4.1.1. *)
  Latch_order.reset ();
  Latch_order.acquired 1;
  Latch_order.acquired 5;
  Latch_order.promoting 1;
  Alcotest.(check int) "promotion violation" 1 (Latch_order.violations ());
  Latch_order.released 5;
  Latch_order.released 1;
  Latch_order.enable false;
  Latch_order.reset ()

let test_rank_of_level () =
  (* Root (highest level) must rank before (less than) leaves. *)
  let root = Latch_order.rank_of_level ~root_level:3 3 in
  let leaf = Latch_order.rank_of_level ~root_level:3 0 in
  Alcotest.(check bool) "root first" true (root < leaf);
  Alcotest.(check bool) "space map last" true
    (Latch_order.space_map_rank > leaf)

let suites =
  [
    ( "sync.latch",
      [
        Alcotest.test_case "S shared" `Quick test_s_shared;
        Alcotest.test_case "U mode" `Quick test_u_mode;
        Alcotest.test_case "X exclusive" `Quick test_x_exclusive;
        Alcotest.test_case "promote immediate" `Quick test_promote_immediate;
        Alcotest.test_case "promote waits for readers" `Quick
          test_promote_waits_for_readers;
        Alcotest.test_case "promote without U" `Quick test_promote_without_u;
        Alcotest.test_case "demote" `Quick test_demote;
        Alcotest.test_case "release unheld" `Quick test_release_unheld;
        Alcotest.test_case "blocking acquire" `Quick test_blocking_acquire;
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "mutual exclusion stress" `Slow
          test_mutual_exclusion_stress;
      ] );
    ( "sync.latch_order",
      [
        Alcotest.test_case "order checker" `Quick test_latch_order_checker;
        Alcotest.test_case "rank of level" `Quick test_rank_of_level;
      ] );
  ]
