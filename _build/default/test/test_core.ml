(* Tests for pitree.core: the interval key space, the generic six-condition
   well-formedness checker (against hand-built good and defective trees),
   and saved paths. *)

module K = Pitree_core.Keyspace.Interval
module Wellformed = Pitree_core.Wellformed
module Saved_path = Pitree_core.Saved_path
module WF = Wellformed.Make (K)

let itv low high = K.make ~low ~high

let test_interval_contains () =
  let i = itv (Some "b") (Some "f") in
  Alcotest.(check bool) "inside" true (K.contains i "c");
  Alcotest.(check bool) "low inclusive" true (K.contains i "b");
  Alcotest.(check bool) "high exclusive" false (K.contains i "f");
  Alcotest.(check bool) "below" false (K.contains i "a");
  Alcotest.(check bool) "whole contains all" true (K.contains K.whole "anything")

let test_interval_subset () =
  Alcotest.(check bool) "strict subset" true
    (K.subset (itv (Some "c") (Some "d")) (itv (Some "b") (Some "f")));
  Alcotest.(check bool) "equal" true
    (K.subset (itv (Some "b") (Some "f")) (itv (Some "b") (Some "f")));
  Alcotest.(check bool) "overlap only" false
    (K.subset (itv (Some "a") (Some "d")) (itv (Some "b") (Some "f")));
  Alcotest.(check bool) "everything in whole" true
    (K.subset (itv (Some "x") None) K.whole);
  Alcotest.(check bool) "whole not in finite" false
    (K.subset K.whole (itv (Some "a") (Some "z")));
  Alcotest.(check bool) "empty in anything" true
    (K.subset (itv (Some "q") (Some "q")) (itv (Some "a") (Some "b")))

let test_interval_covers () =
  let target = itv (Some "b") (Some "z") in
  Alcotest.(check bool) "exact tiling" true
    (K.covers [ itv (Some "b") (Some "m"); itv (Some "m") (Some "z") ] target);
  Alcotest.(check bool) "overlapping tiles" true
    (K.covers [ itv (Some "a") (Some "p"); itv (Some "k") None ] target);
  Alcotest.(check bool) "gap" false
    (K.covers [ itv (Some "b") (Some "k"); itv (Some "m") (Some "z") ] target);
  Alcotest.(check bool) "short" false
    (K.covers [ itv (Some "b") (Some "y") ] target);
  Alcotest.(check bool) "unordered input" true
    (K.covers
       [ itv (Some "m") (Some "z"); itv (Some "b") (Some "g"); itv (Some "g") (Some "m") ]
       target);
  Alcotest.(check bool) "whole needs infinite parts" false
    (K.covers [ itv None (Some "m") ] K.whole);
  Alcotest.(check bool) "whole covered" true
    (K.covers [ itv None (Some "m"); itv (Some "m") None ] K.whole)

(* Property: covers agrees with pointwise sampling. *)
let prop_covers_pointwise =
  let open QCheck in
  let bound_gen = Gen.(opt (map (String.make 1) (char_range 'a' 'z'))) in
  let itv_gen = Gen.(map2 (fun l h -> K.make ~low:l ~high:h) bound_gen bound_gen) in
  Test.make ~name:"covers agrees with membership sampling" ~count:300
    (make Gen.(pair (list_size (int_range 0 6) itv_gen) itv_gen))
    (fun (parts, s) ->
      let covered = K.covers parts s in
      (* Sample all 1-char keys; if covers=true then every point of s must
         be in some part. *)
      let points = List.init 26 (fun i -> String.make 1 (Char.chr (97 + i))) in
      let violated =
        List.exists
          (fun p ->
            K.contains s p && not (List.exists (fun part -> K.contains part p) parts))
          points
      in
      (not covered) || not violated)

(* --- the generic checker against synthetic trees --- *)

(* A healthy two-level B-link shape:
       root(3): [-inf,inf) -> children 1,2 ; node 1 --side--> node 2 *)
let good_tree =
  let view id level responsible directly index_terms sibling_terms =
    { WF.id; level; responsible; directly_contained = directly; index_terms; sibling_terms }
  in
  fun pid ->
    match pid with
    | 3 ->
        Some
          (view 3 1 K.whole K.whole
             [ (itv None (Some "m"), 1); (itv (Some "m") None, 2) ]
             [])
    | 1 ->
        Some
          (view 1 0 K.whole (itv None (Some "m")) [] [ (itv (Some "m") None, 2) ])
    | 2 -> Some (view 2 0 (itv (Some "m") None) (itv (Some "m") None) [] [])
    | _ -> None

let test_checker_accepts_good () =
  let report = WF.check ~root:3 ~read:good_tree in
  Alcotest.(check bool) "ok" true (Wellformed.ok report);
  Alcotest.(check int) "three nodes" 3 report.Wellformed.nodes_visited;
  Alcotest.(check int) "two levels" 2 report.Wellformed.levels

let test_checker_intermediate_state_ok () =
  (* A node reachable only via a side pointer (no index term yet) is a
     legal intermediate state — the B-link generalization the paper makes
     central. *)
  let read pid =
    match good_tree pid with
    | Some v when pid = 3 ->
        (* Parent lost node 2's term; node 1's term must cover the range
           through its sibling chain. *)
        Some { v with WF.index_terms = [ (K.whole, 1) ] }
    | v -> v
  in
  let report = WF.check ~root:3 ~read in
  Alcotest.(check bool) "intermediate state is well-formed" true (Wellformed.ok report)

let test_checker_detects_dangling () =
  let read pid = if pid = 2 then None else good_tree pid in
  let report = WF.check ~root:3 ~read in
  Alcotest.(check bool) "dangling pointer detected" false (Wellformed.ok report)

let test_checker_detects_gap () =
  (* Node 1 stops delegating: keys >= "m" are nowhere. *)
  let read pid =
    match good_tree pid with
    | Some v when pid = 1 -> Some { v with WF.sibling_terms = [] ; WF.responsible = K.whole }
    | Some v when pid = 3 -> Some { v with WF.index_terms = [ (K.whole, 1) ] }
    | v -> v
  in
  let report = WF.check ~root:3 ~read in
  Alcotest.(check bool) "coverage gap detected" false (Wellformed.ok report)

let test_checker_detects_escaping_term () =
  (* An index term claims a space its child is not responsible for. *)
  let read pid =
    match good_tree pid with
    | Some v when pid = 3 ->
        Some
          {
            v with
            WF.index_terms = [ (itv None (Some "z"), 1); (itv (Some "m") None, 2) ];
          }
    | Some v when pid = 1 -> Some { v with WF.responsible = itv None (Some "m"); WF.sibling_terms = [] }
    | v -> v
  in
  let report = WF.check ~root:3 ~read in
  Alcotest.(check bool) "escaping term detected" false (Wellformed.ok report)

let test_checker_detects_data_with_index_terms () =
  let read pid =
    match good_tree pid with
    | Some v when pid = 2 -> Some { v with WF.index_terms = [ (K.whole, 1) ] }
    | v -> v
  in
  let report = WF.check ~root:3 ~read in
  Alcotest.(check bool) "condition 5 detected" false (Wellformed.ok report)

let test_checker_handles_cycles () =
  (* Sibling cycle must terminate (and is ill-formed here because of the
     escaping spaces). *)
  let view id responsible sibling =
    {
      WF.id;
      level = 0;
      responsible;
      directly_contained = itv (Some "a") (Some "b");
      index_terms = [];
      sibling_terms = [ (itv (Some "b") None, sibling) ];
    }
  in
  let read = function
    | 1 -> Some (view 1 K.whole 2)
    | 2 -> Some (view 2 (itv (Some "b") None) 1)
    | _ -> None
  in
  let report = WF.check ~root:1 ~read in
  (* Just terminating is the point. *)
  Alcotest.(check int) "visited both" 2 report.Wellformed.nodes_visited

(* --- saved paths --- *)

let test_saved_path () =
  let p = Saved_path.empty in
  let p = Saved_path.push p ~pid:10 ~level:2 ~state_id:5 ~slot:0 in
  let p = Saved_path.push p ~pid:20 ~level:1 ~state_id:9 ~slot:3 in
  (match Saved_path.level p 1 with
  | Some e ->
      Alcotest.(check int) "pid" 20 e.Saved_path.pid;
      Alcotest.(check int) "slot" 3 e.Saved_path.slot
  | None -> Alcotest.fail "level 1 missing");
  Alcotest.(check bool) "level 0 absent" true (Saved_path.level p 0 = None);
  let above = Saved_path.above p 1 in
  Alcotest.(check int) "above keeps strictly higher" 1 (List.length above);
  Alcotest.(check bool) "above holds level 2" true
    (match above with [ e ] -> e.Saved_path.level = 2 | _ -> false)

let suites =
  [
    ( "core.interval",
      [
        Alcotest.test_case "contains" `Quick test_interval_contains;
        Alcotest.test_case "subset" `Quick test_interval_subset;
        Alcotest.test_case "covers" `Quick test_interval_covers;
        QCheck_alcotest.to_alcotest prop_covers_pointwise;
      ] );
    ( "core.wellformed",
      [
        Alcotest.test_case "accepts good tree" `Quick test_checker_accepts_good;
        Alcotest.test_case "intermediate state ok" `Quick
          test_checker_intermediate_state_ok;
        Alcotest.test_case "detects dangling pointer" `Quick test_checker_detects_dangling;
        Alcotest.test_case "detects coverage gap" `Quick test_checker_detects_gap;
        Alcotest.test_case "detects escaping term" `Quick
          test_checker_detects_escaping_term;
        Alcotest.test_case "detects data node with index terms" `Quick
          test_checker_detects_data_with_index_terms;
        Alcotest.test_case "terminates on cycles" `Quick test_checker_handles_cycles;
      ] );
    ("core.saved_path", [ Alcotest.test_case "push/level/above" `Quick test_saved_path ]);
  ]
