test/test_mv_concurrency.ml: Alcotest Atomic Domain Gen Hashtbl Int64 List Option Pitree_core Pitree_env Pitree_hb Pitree_tsb Pitree_util Printf QCheck QCheck_alcotest Test
