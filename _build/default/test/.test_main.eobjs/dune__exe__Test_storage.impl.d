test/test_storage.ml: Alcotest Bytes Filename Gen List Pitree_storage Pitree_sync Pitree_util Printf QCheck QCheck_alcotest String Sys Test
