test/test_tsb.ml: Alcotest Hashtbl List Pitree_core Pitree_env Pitree_tsb Pitree_txn Pitree_util Printf
