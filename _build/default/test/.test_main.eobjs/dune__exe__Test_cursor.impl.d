test/test_cursor.ml: Alcotest Domain Gen Hashtbl List Option Pitree_blink Pitree_env Pitree_util Printf QCheck QCheck_alcotest String Test
