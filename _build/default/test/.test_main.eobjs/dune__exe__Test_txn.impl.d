test/test_txn.ml: Alcotest List Pitree_lock Pitree_storage Pitree_txn Pitree_wal
