test/test_util.ml: Alcotest Array Buffer Bytes Char Fun List Pitree_util Printf QCheck QCheck_alcotest String
