test/test_lock.ml: Alcotest Atomic Gen List Option Pitree_lock QCheck QCheck_alcotest Test Thread
