test/test_sync.ml: Alcotest Atomic List Pitree_sync Thread
