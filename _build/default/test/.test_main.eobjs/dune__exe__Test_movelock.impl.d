test/test_movelock.ml: Alcotest Atomic Domain Pitree_blink Pitree_core Pitree_env Pitree_txn Printf String Thread
