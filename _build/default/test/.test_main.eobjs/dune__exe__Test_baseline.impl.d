test/test_baseline.ml: Alcotest Array Pitree_baseline Pitree_blink Pitree_env Pitree_util Printf
