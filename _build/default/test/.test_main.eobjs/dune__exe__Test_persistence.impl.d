test/test_persistence.ml: Alcotest Array Filename Fun Option Pitree_blink Pitree_core Pitree_env Pitree_storage Pitree_tsb Pitree_wal Printf Sys Unix
