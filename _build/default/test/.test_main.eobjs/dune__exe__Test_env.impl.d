test/test_env.ml: Alcotest List Pitree_env Pitree_storage Pitree_sync Pitree_txn Pitree_wal
