test/test_crash.ml: Alcotest Hashtbl List Pitree_blink Pitree_core Pitree_env Pitree_txn Pitree_wal Printf
