test/test_wal.ml: Alcotest Buffer Bytes Char Gen List Pitree_blink Pitree_core Pitree_env Pitree_storage Pitree_txn Pitree_util Pitree_wal Printf QCheck QCheck_alcotest Test
