test/test_blink.ml: Alcotest Array Gen Hashtbl List Pitree_blink Pitree_core Pitree_env Pitree_txn Pitree_util Printf QCheck QCheck_alcotest String Test
