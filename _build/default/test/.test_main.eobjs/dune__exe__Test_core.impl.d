test/test_core.ml: Alcotest Char Gen List Pitree_core QCheck QCheck_alcotest String Test
