test/test_hb.ml: Alcotest Array Gen Hashtbl Int64 List Option Pitree_core Pitree_env Pitree_hb Pitree_txn Pitree_util Printf QCheck QCheck_alcotest Test
