test/test_concurrency.ml: Alcotest Atomic Domain Hashtbl Int64 List Pitree_baseline Pitree_blink Pitree_core Pitree_env Pitree_harness Pitree_util Printf String
