type resource =
  | Record of { tree : int; key : string }
  | Node of { tree : int; page : int }
  | Tree of int

let pp_resource ppf = function
  | Record { tree; key } -> Fmt.pf ppf "rec(%d,%S)" tree key
  | Node { tree; page } -> Fmt.pf ppf "node(%d,%d)" tree page
  | Tree t -> Fmt.pf ppf "tree(%d)" t

exception Deadlock of { owner : int }

type waiter = {
  w_owner : int;
  w_mode : Lock_mode.t;
  mutable w_granted : bool;
  mutable w_aborted : bool;
}

type queue = {
  mutable granted : (int * Lock_mode.t) list;  (* owner -> mode, one entry per owner *)
  mutable waiting : waiter list;  (* FIFO: head is oldest *)
  cond : Condition.t;
}

type t = {
  mu : Mutex.t;
  table : (resource, queue) Hashtbl.t;
  owned : (int, resource list) Hashtbl.t;  (* owner -> resources held *)
  blocked_on : (int, resource) Hashtbl.t;  (* waiting owner -> resource *)
  mutable acquisitions : int;
  mutable wait_events : int;
  mutable deadlock_count : int;
}

let create () =
  {
    mu = Mutex.create ();
    table = Hashtbl.create 256;
    owned = Hashtbl.create 64;
    blocked_on = Hashtbl.create 16;
    acquisitions = 0;
    wait_events = 0;
    deadlock_count = 0;
  }

let queue_of t res =
  match Hashtbl.find_opt t.table res with
  | Some q -> q
  | None ->
      let q = { granted = []; waiting = []; cond = Condition.create () } in
      Hashtbl.replace t.table res q;
      q

let note_owned t owner res =
  let l = Option.value (Hashtbl.find_opt t.owned owner) ~default:[] in
  if not (List.mem res l) then Hashtbl.replace t.owned owner (res :: l)

(* Compatibility of [mode] with every granted hold except [owner]'s own. *)
let compatible_with_granted q ~owner mode =
  List.for_all
    (fun (o, m) -> o = owner || Lock_mode.compatible mode m)
    q.granted

(* A fresh (non-conversion) request must also respect the FIFO queue: it may
   not overtake earlier waiters. Conversions skip this check. *)
let no_earlier_waiter q ~owner =
  not (List.exists (fun w -> (not w.w_granted) && w.w_owner <> owner) q.waiting)

(* Would owner [o], by waiting on [res], create a cycle in the waits-for
   graph? Caller holds [t.mu]. *)
let creates_cycle t ~owner res mode =
  (* Owners that [owner] would wait for: incompatible granted holders plus
     earlier waiters it may not overtake. *)
  let direct_blockers res mode ~owner =
    match Hashtbl.find_opt t.table res with
    | None -> []
    | Some q ->
        let holders =
          List.filter_map
            (fun (o, m) ->
              if o <> owner && not (Lock_mode.compatible mode m) then Some o
              else None)
            q.granted
        in
        let earlier =
          List.filter_map
            (fun w ->
              if (not w.w_granted) && w.w_owner <> owner then Some w.w_owner
              else None)
            q.waiting
        in
        holders @ earlier
  in
  let rec dfs visited o =
    if o = owner then true
    else if List.mem o visited then false
    else
      match Hashtbl.find_opt t.blocked_on o with
      | None -> false
      | Some res' -> (
          match Hashtbl.find_opt t.table res' with
          | None -> false
          | Some q' -> (
              match List.find_opt (fun w -> w.w_owner = o && not w.w_granted) q'.waiting with
              | None -> false
              | Some w ->
                  let next = direct_blockers res' w.w_mode ~owner:o in
                  List.exists (dfs (o :: visited)) next))
  in
  List.exists (dfs []) (direct_blockers res mode ~owner)

let current_hold q owner =
  List.assoc_opt owner q.granted

let set_hold q owner mode =
  q.granted <- (owner, mode) :: List.remove_assoc owner q.granted

let acquire_inner t ~owner res mode ~block =
  Mutex.lock t.mu;
  let q = queue_of t res in
  let requested =
    match current_hold q owner with
    | Some held ->
        if Lock_mode.strength held >= Lock_mode.strength (Lock_mode.sup held mode)
        then None  (* already strong enough *)
        else Some (Lock_mode.sup held mode)
    | None -> Some mode
  in
  match requested with
  | None ->
      Mutex.unlock t.mu;
      true
  | Some want ->
      let is_conversion = current_hold q owner <> None in
      let grantable () =
        compatible_with_granted q ~owner want
        && (is_conversion || no_earlier_waiter q ~owner)
      in
      if grantable () then begin
        set_hold q owner want;
        note_owned t owner res;
        t.acquisitions <- t.acquisitions + 1;
        Mutex.unlock t.mu;
        true
      end
      else if not block then begin
        Mutex.unlock t.mu;
        false
      end
      else begin
        (* Deadlock check before waiting. *)
        if creates_cycle t ~owner res want then begin
          t.deadlock_count <- t.deadlock_count + 1;
          Mutex.unlock t.mu;
          raise (Deadlock { owner })
        end;
        let w = { w_owner = owner; w_mode = want; w_granted = false; w_aborted = false } in
        (* Conversions wait at the head so they are considered first. *)
        if is_conversion then q.waiting <- w :: q.waiting
        else q.waiting <- q.waiting @ [ w ];
        Hashtbl.replace t.blocked_on owner res;
        t.wait_events <- t.wait_events + 1;
        let rec wait_loop () =
          if w.w_granted then ()
          else begin
            Condition.wait q.cond t.mu;
            wait_loop ()
          end
        in
        (* The releaser performs the grant (sets w_granted and updates
           q.granted) so that FIFO order is respected at wake-up time. *)
        (try wait_loop ()
         with e ->
           q.waiting <- List.filter (fun w' -> w' != w) q.waiting;
           Hashtbl.remove t.blocked_on owner;
           Mutex.unlock t.mu;
           raise e);
        Hashtbl.remove t.blocked_on owner;
        note_owned t owner res;
        t.acquisitions <- t.acquisitions + 1;
        Mutex.unlock t.mu;
        true
      end

(* Caller holds [t.mu]: grant every waiter that can now proceed, in FIFO
   order, stopping at the first fresh request that must keep waiting. *)
let pump t res q =
  ignore t;
  ignore res;
  let rec go = function
    | [] -> []
    | w :: rest ->
        if w.w_granted then w :: go rest
        else
          let is_conversion = List.mem_assoc w.w_owner q.granted in
          if compatible_with_granted q ~owner:w.w_owner w.w_mode then begin
            let new_mode =
              match current_hold q w.w_owner with
              | Some held -> Lock_mode.sup held w.w_mode
              | None -> w.w_mode
            in
            set_hold q w.w_owner new_mode;
            w.w_granted <- true;
            w :: go rest
          end
          else if is_conversion then (* conversion blocks the queue head *)
            w :: rest
          else w :: rest  (* strict FIFO: nothing later may overtake *)
  in
  q.waiting <- List.filter (fun w -> not w.w_granted) (go q.waiting);
  Condition.broadcast q.cond

let acquire t ~owner res mode = ignore (acquire_inner t ~owner res mode ~block:true)
let try_acquire t ~owner res mode = acquire_inner t ~owner res mode ~block:false

let release_one t owner res =
  match Hashtbl.find_opt t.table res with
  | None -> ()
  | Some q ->
      q.granted <- List.remove_assoc owner q.granted;
      pump t res q;
      if q.granted = [] && q.waiting = [] then Hashtbl.remove t.table res

let release t ~owner res =
  Mutex.lock t.mu;
  release_one t owner res;
  (match Hashtbl.find_opt t.owned owner with
  | Some l -> Hashtbl.replace t.owned owner (List.filter (fun r -> r <> res) l)
  | None -> ());
  Mutex.unlock t.mu

let release_all t ~owner =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.owned owner with
  | Some l ->
      List.iter (fun res -> release_one t owner res) l;
      Hashtbl.remove t.owned owner
  | None -> ());
  Mutex.unlock t.mu

let held t ~owner res =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.table res with
    | None -> None
    | Some q -> current_hold q owner
  in
  Mutex.unlock t.mu;
  r

let holders t res =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.table res with None -> [] | Some q -> q.granted
  in
  Mutex.unlock t.mu;
  r

type stats = { acquisitions : int; waits : int; deadlocks : int }

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      acquisitions = t.acquisitions;
      waits = t.wait_events;
      deadlocks = t.deadlock_count;
    }
  in
  Mutex.unlock t.mu;
  s
