type t = IS | IX | S | U | X | Move

let compatible a b =
  match (a, b) with
  | IS, (IS | IX | S | U | Move) | (IX | S | U | Move), IS -> true
  | IX, IX -> true
  | S, (S | U | Move) | (U | Move), S -> true
  | U, U | U, Move | Move, U -> false
  | Move, Move -> false
  | IX, (S | U | Move) | (S | U | Move), IX -> false
  | X, _ | _, X -> false

let strength = function IS -> 0 | IX -> 1 | S -> 2 | U -> 3 | Move -> 4 | X -> 5

let sup a b =
  match (a, b) with
  | IX, (S | U | Move) | (S | U | Move), IX -> X
  | _ -> if strength a >= strength b then a else b

let to_string = function
  | IS -> "IS"
  | IX -> "IX"
  | S -> "S"
  | U -> "U"
  | X -> "X"
  | Move -> "MOVE"

let pp ppf t = Format.pp_print_string ppf (to_string t)
