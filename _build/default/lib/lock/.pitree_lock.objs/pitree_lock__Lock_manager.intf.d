lib/lock/lock_manager.mli: Format Lock_mode
