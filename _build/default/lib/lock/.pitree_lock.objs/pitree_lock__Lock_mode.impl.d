lib/lock/lock_mode.ml: Format
