lib/lock/lock_manager.ml: Condition Fmt Hashtbl List Lock_mode Mutex Option
