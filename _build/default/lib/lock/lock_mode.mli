(** Database lock modes, including the paper's {b move lock} (section 4.2.2).

    A move lock is taken on a node whose records are about to be relocated by
    a structure change under page-oriented UNDO. It must:
    - wait for all transactions updating records to be moved (conflicts with
      X, U and other Move holders);
    - block updates to moved records and space-consuming updates that would
      make the move impossible to undo (same conflicts);
    - admit readers ("since reads do not require undo, concurrent reads can
      be tolerated" — compatible with S and IS).

    IS/IX are included for completeness of the matrix; the index engines use
    S, U, X and Move. *)

type t = IS | IX | S | U | X | Move

val compatible : t -> t -> bool
(** Symmetric compatibility matrix. *)

val sup : t -> t -> t
(** Least mode at least as strong as both (used for lock conversion). Total
    along the strength order IS < IX < S < U < Move < X; [sup] of
    incomparable pairs (e.g. IX and S) escalates to [X]. *)

val strength : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
