type mode = S | U | X

let pp_mode ppf m =
  Format.pp_print_string ppf (match m with S -> "S" | U -> "U" | X -> "X")

type stats = {
  acquisitions : int;
  contended : int;
  wait_ns : int;
  hold_ns : int;
}

(* Global aggregates, updated lock-free so that per-frame latches need no
   registry. *)
let g_acquisitions = Atomic.make 0
let g_contended = Atomic.make 0
let g_wait_ns = Atomic.make 0
let g_hold_ns = Atomic.make 0

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type t = {
  name : string;
  mu : Mutex.t;
  cond : Condition.t;
  mutable readers : int;
  mutable u_held : bool;
  mutable x_held : bool;
  mutable u_wants_x : bool;     (* promotion pending: blocks new S grants *)
  mutable acquired_at : int;    (* ns timestamp of current U/X grant *)
  mutable acquisitions : int;
  mutable contended : int;
  mutable wait_ns : int;
  mutable hold_ns : int;
}

let create ?(name = "latch") () =
  {
    name;
    mu = Mutex.create ();
    cond = Condition.create ();
    readers = 0;
    u_held = false;
    x_held = false;
    u_wants_x = false;
    acquired_at = 0;
    acquisitions = 0;
    contended = 0;
    wait_ns = 0;
    hold_ns = 0;
  }

let name t = t.name

let grantable t = function
  | S -> (not t.x_held) && not t.u_wants_x
  | U -> (not t.u_held) && not t.x_held
  | X -> t.readers = 0 && (not t.u_held) && not t.x_held

let grant t mode =
  (match mode with
  | S -> t.readers <- t.readers + 1
  | U ->
      t.u_held <- true;
      t.acquired_at <- now_ns ()
  | X ->
      t.x_held <- true;
      t.acquired_at <- now_ns ());
  t.acquisitions <- t.acquisitions + 1;
  Atomic.incr g_acquisitions

let acquire t mode =
  Mutex.lock t.mu;
  if grantable t mode then grant t mode
  else begin
    let t0 = now_ns () in
    t.contended <- t.contended + 1;
    Atomic.incr g_contended;
    while not (grantable t mode) do
      Condition.wait t.cond t.mu
    done;
    let dt = now_ns () - t0 in
    t.wait_ns <- t.wait_ns + dt;
    ignore (Atomic.fetch_and_add g_wait_ns dt);
    grant t mode
  end;
  Mutex.unlock t.mu

let try_acquire t mode =
  Mutex.lock t.mu;
  let ok = grantable t mode in
  if ok then grant t mode;
  Mutex.unlock t.mu;
  ok

let promote t =
  Mutex.lock t.mu;
  if not t.u_held then begin
    Mutex.unlock t.mu;
    invalid_arg "Latch.promote: caller does not hold a U latch"
  end;
  t.u_wants_x <- true;
  if t.readers > 0 then begin
    let t0 = now_ns () in
    t.contended <- t.contended + 1;
    Atomic.incr g_contended;
    while t.readers > 0 do
      Condition.wait t.cond t.mu
    done;
    let dt = now_ns () - t0 in
    t.wait_ns <- t.wait_ns + dt;
    ignore (Atomic.fetch_and_add g_wait_ns dt)
  end;
  t.u_held <- false;
  t.x_held <- true;
  t.u_wants_x <- false;
  (* The hold interval continues: keep [acquired_at] from the U grant so
     hold time covers U-then-X as one critical section. *)
  Mutex.unlock t.mu

let demote t =
  Mutex.lock t.mu;
  if not t.x_held then begin
    Mutex.unlock t.mu;
    invalid_arg "Latch.demote: caller does not hold an X latch"
  end;
  t.x_held <- false;
  t.u_held <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu

let finish_hold t =
  let dt = now_ns () - t.acquired_at in
  t.hold_ns <- t.hold_ns + dt;
  ignore (Atomic.fetch_and_add g_hold_ns dt)

let release t mode =
  Mutex.lock t.mu;
  (match mode with
  | S ->
      if t.readers <= 0 then begin
        Mutex.unlock t.mu;
        invalid_arg "Latch.release: no S hold"
      end;
      t.readers <- t.readers - 1
  | U ->
      if not t.u_held then begin
        Mutex.unlock t.mu;
        invalid_arg "Latch.release: no U hold"
      end;
      t.u_held <- false;
      finish_hold t
  | X ->
      if not t.x_held then begin
        Mutex.unlock t.mu;
        invalid_arg "Latch.release: no X hold"
      end;
      t.x_held <- false;
      finish_hold t);
  Condition.broadcast t.cond;
  Mutex.unlock t.mu

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      acquisitions = t.acquisitions;
      contended = t.contended;
      wait_ns = t.wait_ns;
      hold_ns = t.hold_ns;
    }
  in
  Mutex.unlock t.mu;
  s

let reset_stats t =
  Mutex.lock t.mu;
  t.acquisitions <- 0;
  t.contended <- 0;
  t.wait_ns <- 0;
  t.hold_ns <- 0;
  Mutex.unlock t.mu

let global_stats () =
  {
    acquisitions = Atomic.get g_acquisitions;
    contended = Atomic.get g_contended;
    wait_ns = Atomic.get g_wait_ns;
    hold_ns = Atomic.get g_hold_ns;
  }

let reset_global_stats () =
  Atomic.set g_acquisitions 0;
  Atomic.set g_contended 0;
  Atomic.set g_wait_ns 0;
  Atomic.set g_hold_ns 0
