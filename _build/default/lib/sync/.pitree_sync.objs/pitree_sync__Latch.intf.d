lib/sync/latch.mli: Format
