lib/sync/latch_order.mli:
