lib/sync/latch_order.ml: Atomic Domain List
