lib/sync/latch.ml: Atomic Condition Format Mutex Unix
