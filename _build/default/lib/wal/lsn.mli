(** Log sequence numbers.

    Monotonically increasing positions in the log, also used as page state
    identifiers (paper section 5.2). [null] (= 0) orders before every real
    LSN. *)

type t = int

val null : t
val is_null : t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
