module Codec = Pitree_util.Codec

type comp = Remove of { key : string } | Put of { cell : string }

let encode b = function
  | Remove { key } ->
      Codec.put_u8 b 0;
      Codec.put_bytes b key
  | Put { cell } ->
      Codec.put_u8 b 1;
      Codec.put_bytes b cell

let decode r =
  match Codec.get_u8 r with
  | 0 -> Remove { key = Codec.get_bytes r }
  | 1 -> Put { cell = Codec.get_bytes r }
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad comp tag %d" n))

type handler =
  tree:int -> comp:comp -> txn:int -> prev:Lsn.t -> undo_next:Lsn.t -> Lsn.t

let mu = Mutex.create ()
let registered : (int, handler) Hashtbl.t = Hashtbl.create 8

let register_tree tree h =
  Mutex.lock mu;
  Hashtbl.replace registered tree h;
  Mutex.unlock mu

let handler_for tree =
  Mutex.lock mu;
  let h = Hashtbl.find_opt registered tree in
  Mutex.unlock mu;
  h
