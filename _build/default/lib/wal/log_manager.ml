type backing = {
  fd : Unix.file_descr;
  path : string;
  mutable file_end : int;  (* byte offset of the durable tail *)
}

type t = {
  mu : Mutex.t;
  mutable records : string array;
      (* encoded window; lsn n at index n-1-purged *)
  mutable count : int;  (* total LSNs ever appended *)
  mutable purged : int;  (* records discarded from the front by truncation *)
  mutable max_txn : int;  (* highest txn id ever appended (survives purges) *)
  mutable durable : Lsn.t;
  mutable redo_from : Lsn.t;
  mutable forces : int;
  mutable bytes : int;
  backing : backing option;
}

let ckpt_path path = path ^ ".ckpt"

(* Load the durable prefix of a log file: framed records back to back; a
   torn tail (short or CRC-corrupt final record) is discarded, exactly as a
   real log manager does on restart. *)
let load_file path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let buf = Bytes.make size '\000' in
  let rec fill off =
    if off < size then
      let n = Unix.read fd buf off (size - off) in
      if n = 0 then off else fill (off + n)
    else off
  in
  let got = fill 0 in
  let data = Bytes.sub_string buf 0 got in
  let records = ref [] in
  let off = ref 0 in
  (try
     while !off < got do
       let r = Pitree_util.Codec.reader ~pos:!off data in
       let len = Pitree_util.Codec.get_u32 r in
       let total = 4 + len + 4 in
       if !off + total > got then raise Exit;
       let framed = String.sub data !off total in
       (* Validate CRC before accepting. *)
       ignore (Log_record.decode framed);
       records := framed :: !records;
       off := !off + total
     done
   with Exit | Pitree_util.Codec.Corrupt _ -> ());
  (* Truncate any torn tail so future appends start clean. *)
  if !off < got then Unix.ftruncate fd !off;
  (fd, List.rev !records, !off)

let create ?path () =
  match path with
  | None ->
      {
        mu = Mutex.create ();
        records = Array.make 1024 "";
        count = 0;
        purged = 0;
        max_txn = 0;
        durable = Lsn.null;
        redo_from = 1;
        forces = 0;
        bytes = 0;
        backing = None;
      }
  | Some path ->
      let fd, recs, file_end = load_file path in
      let n = List.length recs in
      let arr = Array.make (max 1024 n) "" in
      List.iteri (fun i s -> arr.(i) <- s) recs;
      let redo_from =
        match open_in_bin (ckpt_path path) with
        | ic ->
            let v = try int_of_string (input_line ic) with _ -> 1 in
            close_in ic;
            if v >= 1 && v <= n then v else 1
        | exception Sys_error _ -> 1
      in
      {
        mu = Mutex.create ();
        records = arr;
        count = n;
        purged = 0;
        max_txn =
          List.fold_left
            (fun acc s -> max acc (Log_record.decode s).Log_record.txn)
            0 recs;
        durable = n;
        redo_from;
        forces = 0;
        bytes = List.fold_left (fun a s -> a + String.length s) 0 recs;
        backing = Some { fd; path; file_end };
      }

let window t = t.count - t.purged

let grow t =
  let bigger = Array.make (2 * Array.length t.records) "" in
  Array.blit t.records 0 bigger 0 (window t);
  t.records <- bigger

let append t ~prev ~txn body =
  Mutex.lock t.mu;
  let lsn = t.count + 1 in
  let encoded = Log_record.encode { Log_record.lsn; prev; txn; body } in
  if window t >= Array.length t.records then grow t;
  t.records.(window t) <- encoded;
  t.count <- t.count + 1;
  if txn > t.max_txn then t.max_txn <- txn;
  t.bytes <- t.bytes + String.length encoded;
  Mutex.unlock t.mu;
  lsn

(* Caller holds [t.mu]. Push records (durable, upto] to the backing file. *)
let write_out t upto =
  match t.backing with
  | None -> ()
  | Some b ->
      let buf = Buffer.create 4096 in
      for i = t.durable to upto - 1 do
        Buffer.add_string buf t.records.(i - t.purged)
      done;
      let s = Buffer.contents buf in
      if String.length s > 0 then begin
        ignore (Unix.lseek b.fd b.file_end Unix.SEEK_SET);
        let bytes = Bytes.of_string s in
        let rec push off =
          if off < Bytes.length bytes then
            push (off + Unix.write b.fd bytes off (Bytes.length bytes - off))
        in
        push 0;
        Unix.fsync b.fd;
        b.file_end <- b.file_end + String.length s
      end

let flush t lsn =
  Mutex.lock t.mu;
  if lsn > t.durable then begin
    let upto = min lsn t.count in
    write_out t upto;
    t.durable <- upto;
    t.forces <- t.forces + 1
  end;
  Mutex.unlock t.mu

let flush_all t =
  Mutex.lock t.mu;
  if t.count > t.durable then begin
    write_out t t.count;
    t.durable <- t.count;
    t.forces <- t.forces + 1
  end;
  Mutex.unlock t.mu

let last_lsn t =
  Mutex.lock t.mu;
  let v = t.count in
  Mutex.unlock t.mu;
  v

let flushed_lsn t =
  Mutex.lock t.mu;
  let v = t.durable in
  Mutex.unlock t.mu;
  v

let read t lsn =
  Mutex.lock t.mu;
  if lsn < 1 || lsn > t.count then begin
    Mutex.unlock t.mu;
    invalid_arg (Printf.sprintf "Log_manager.read: bad lsn %d (count %d)" lsn t.count)
  end;
  if lsn <= t.purged then begin
    Mutex.unlock t.mu;
    invalid_arg (Printf.sprintf "Log_manager.read: lsn %d was truncated" lsn)
  end;
  let s = t.records.(lsn - 1 - t.purged) in
  Mutex.unlock t.mu;
  Log_record.decode s

let iter_from t lsn f =
  let get i =
    Mutex.lock t.mu;
    let s =
      if i > t.purged && i <= t.count then Some t.records.(i - 1 - t.purged)
      else None
    in
    Mutex.unlock t.mu;
    s
  in
  let rec go i =
    match get i with
    | None -> ()
    | Some s ->
        f (Log_record.decode s);
        go (i + 1)
  in
  go (max (t.purged + 1) (max 1 lsn))

let max_txn_id t =
  Mutex.lock t.mu;
  let v = t.max_txn in
  Mutex.unlock t.mu;
  v

(* Discard records with lsn < keep_from from the in-memory window. Only
   durable, pre-redo-point records may go (a file-backed log keeps its file
   as the archive). Returns how many records were discarded. *)
let truncate t ~keep_from =
  Mutex.lock t.mu;
  let keep_from = min keep_from (min (t.durable + 1) t.redo_from) in
  let n = max 0 (keep_from - 1 - t.purged) in
  if n > 0 then begin
    let w = window t in
    Array.blit t.records n t.records 0 (w - n);
    Array.fill t.records (w - n) n "";
    t.purged <- t.purged + n
  end;
  Mutex.unlock t.mu;
  n

let redo_start t = t.redo_from

let set_redo_start t lsn =
  t.redo_from <- lsn;
  match t.backing with
  | None -> ()
  | Some b ->
      let oc = open_out_bin (ckpt_path b.path) in
      output_string oc (string_of_int lsn);
      close_out oc

let crash t =
  Mutex.lock t.mu;
  let fresh =
    match t.backing with
    | None ->
        let fresh = create () in
        let kept = t.durable - t.purged in
        fresh.count <- t.durable;
        fresh.purged <- t.purged;
        fresh.max_txn <- t.max_txn;
        fresh.durable <- t.durable;
        fresh.records <- Array.make (max 1024 kept) "";
        Array.blit t.records 0 fresh.records 0 kept;
        fresh.redo_from <- (if t.redo_from <= t.durable then t.redo_from else 1);
        fresh.bytes <-
          Array.fold_left (fun acc s -> acc + String.length s) 0
            (Array.sub fresh.records 0 kept);
        fresh
    | Some b ->
        (* Power failure: only the file survives. Reopen it. *)
        Unix.close b.fd;
        create ~path:b.path ()
  in
  Mutex.unlock t.mu;
  fresh

type stats = { appends : int; forces : int; bytes : int }

let stats t =
  Mutex.lock t.mu;
  let s = { appends = t.count; forces = t.forces; bytes = t.bytes } in
  Mutex.unlock t.mu;
  s
