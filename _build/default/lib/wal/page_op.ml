module Page = Pitree_storage.Page
module Codec = Pitree_util.Codec

type t =
  | Format of { kind : Page.kind; level : int }
  | Reformat of {
      old_kind : Page.kind;
      new_kind : Page.kind;
      old_level : int;
      new_level : int;
    }
  | Insert_slot of { slot : int; cell : string }
  | Delete_slot of { slot : int; cell : string }
  | Replace_slot of { slot : int; old_cell : string; new_cell : string }
  | Set_side_ptr of { old_ptr : int; new_ptr : int }
  | Set_aux_ptr of { old_ptr : int; new_ptr : int }
  | Set_flags of { old_flags : int; new_flags : int }
  | Clear of { cells : string list }
  | Restore of { cells : string list }

let redo page op =
  match op with
  | Format { kind; level } ->
      let fresh = Page.create ~size:(Page.size page) ~id:(Page.id page) ~kind ~level in
      Bytes.blit (Page.raw fresh) 0 (Page.raw page) 0 (Page.size page)
  | Reformat { new_kind; new_level; _ } ->
      Page.set_kind page new_kind;
      Page.set_level page new_level
  | Insert_slot { slot; cell } -> Page.insert page slot cell
  | Delete_slot { slot; cell = _ } -> ignore (Page.delete page slot)
  | Replace_slot { slot; new_cell; _ } -> Page.replace page slot new_cell
  | Set_side_ptr { new_ptr; _ } -> Page.set_side_ptr page new_ptr
  | Set_aux_ptr { new_ptr; _ } -> Page.set_aux_ptr page new_ptr
  | Set_flags { new_flags; _ } -> Page.set_flags page new_flags
  | Clear _ -> Page.clear page
  | Restore { cells } ->
      List.iteri (fun i cell -> Page.insert page i cell) cells

let invert = function
  | Format _ -> Format { kind = Page.Free; level = 0 }
  | Reformat { old_kind; new_kind; old_level; new_level } ->
      Reformat
        { old_kind = new_kind; new_kind = old_kind; old_level = new_level; new_level = old_level }
  | Insert_slot { slot; cell } -> Delete_slot { slot; cell }
  | Delete_slot { slot; cell } -> Insert_slot { slot; cell }
  | Replace_slot { slot; old_cell; new_cell } ->
      Replace_slot { slot; old_cell = new_cell; new_cell = old_cell }
  | Set_side_ptr { old_ptr; new_ptr } ->
      Set_side_ptr { old_ptr = new_ptr; new_ptr = old_ptr }
  | Set_aux_ptr { old_ptr; new_ptr } ->
      Set_aux_ptr { old_ptr = new_ptr; new_ptr = old_ptr }
  | Set_flags { old_flags; new_flags } ->
      Set_flags { old_flags = new_flags; new_flags = old_flags }
  | Clear { cells } -> Restore { cells }
  | Restore { cells } -> Clear { cells }

(* Encoding tags. *)
let tag = function
  | Format _ -> 1
  | Reformat _ -> 2
  | Insert_slot _ -> 3
  | Delete_slot _ -> 4
  | Replace_slot _ -> 5
  | Set_side_ptr _ -> 6
  | Set_aux_ptr _ -> 7
  | Set_flags _ -> 8
  | Clear _ -> 9
  | Restore _ -> 10

let put_cells b cells =
  Codec.put_u32 b (List.length cells);
  List.iter (Codec.put_bytes b) cells

let get_cells r =
  let n = Codec.get_u32 r in
  List.init n (fun _ -> Codec.get_bytes r)

let encode b op =
  Codec.put_u8 b (tag op);
  match op with
  | Format { kind; level } ->
      Codec.put_u8 b (Page.kind_to_int kind);
      Codec.put_u8 b level
  | Reformat { old_kind; new_kind; old_level; new_level } ->
      Codec.put_u8 b (Page.kind_to_int old_kind);
      Codec.put_u8 b (Page.kind_to_int new_kind);
      Codec.put_u8 b old_level;
      Codec.put_u8 b new_level
  | Insert_slot { slot; cell } ->
      Codec.put_u32 b slot;
      Codec.put_bytes b cell
  | Delete_slot { slot; cell } ->
      Codec.put_u32 b slot;
      Codec.put_bytes b cell
  | Replace_slot { slot; old_cell; new_cell } ->
      Codec.put_u32 b slot;
      Codec.put_bytes b old_cell;
      Codec.put_bytes b new_cell
  | Set_side_ptr { old_ptr; new_ptr } ->
      Codec.put_u32 b old_ptr;
      Codec.put_u32 b new_ptr
  | Set_aux_ptr { old_ptr; new_ptr } ->
      Codec.put_u32 b old_ptr;
      Codec.put_u32 b new_ptr
  | Set_flags { old_flags; new_flags } ->
      Codec.put_u32 b old_flags;
      Codec.put_u32 b new_flags
  | Clear { cells } -> put_cells b cells
  | Restore { cells } -> put_cells b cells

let decode r =
  match Codec.get_u8 r with
  | 1 ->
      let kind = Page.kind_of_int (Codec.get_u8 r) in
      let level = Codec.get_u8 r in
      Format { kind; level }
  | 2 ->
      let old_kind = Page.kind_of_int (Codec.get_u8 r) in
      let new_kind = Page.kind_of_int (Codec.get_u8 r) in
      let old_level = Codec.get_u8 r in
      let new_level = Codec.get_u8 r in
      Reformat { old_kind; new_kind; old_level; new_level }
  | 3 ->
      let slot = Codec.get_u32 r in
      let cell = Codec.get_bytes r in
      Insert_slot { slot; cell }
  | 4 ->
      let slot = Codec.get_u32 r in
      let cell = Codec.get_bytes r in
      Delete_slot { slot; cell }
  | 5 ->
      let slot = Codec.get_u32 r in
      let old_cell = Codec.get_bytes r in
      let new_cell = Codec.get_bytes r in
      Replace_slot { slot; old_cell; new_cell }
  | 6 ->
      let old_ptr = Codec.get_u32 r in
      let new_ptr = Codec.get_u32 r in
      Set_side_ptr { old_ptr; new_ptr }
  | 7 ->
      let old_ptr = Codec.get_u32 r in
      let new_ptr = Codec.get_u32 r in
      Set_aux_ptr { old_ptr; new_ptr }
  | 8 ->
      let old_flags = Codec.get_u32 r in
      let new_flags = Codec.get_u32 r in
      Set_flags { old_flags; new_flags }
  | 9 -> Clear { cells = get_cells r }
  | 10 -> Restore { cells = get_cells r }
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad page_op tag %d" n))

let pp ppf = function
  | Format { kind; level } ->
      Fmt.pf ppf "format(%a,l%d)" Page.pp_kind kind level
  | Reformat { new_kind; new_level; _ } ->
      Fmt.pf ppf "reformat(->%a,l%d)" Page.pp_kind new_kind new_level
  | Insert_slot { slot; cell } -> Fmt.pf ppf "ins(%d,%dB)" slot (String.length cell)
  | Delete_slot { slot; _ } -> Fmt.pf ppf "del(%d)" slot
  | Replace_slot { slot; _ } -> Fmt.pf ppf "repl(%d)" slot
  | Set_side_ptr { new_ptr; _ } -> Fmt.pf ppf "side->%d" new_ptr
  | Set_aux_ptr { new_ptr; _ } -> Fmt.pf ppf "aux->%d" new_ptr
  | Set_flags { new_flags; _ } -> Fmt.pf ppf "flags->%d" new_flags
  | Clear { cells } -> Fmt.pf ppf "clear(%d)" (List.length cells)
  | Restore { cells } -> Fmt.pf ppf "restore(%d)" (List.length cells)
