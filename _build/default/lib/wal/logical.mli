(** Logical (access-method) undo support.

    Under page-oriented UNDO, a record's undo happens on the page of the
    original update, and move locks keep structure changes away from
    uncommitted records (paper section 4.2). Under {e non}-page-oriented
    UNDO, independent atomic actions may freely move uncommitted records
    between nodes (section 6: "even data node splitting can occur outside of
    the database transaction") — so rolling back a record update must locate
    the record {e through the access method}, wherever it lives now.

    A leaf update that needs this logs a {!comp}ensation descriptor next to
    its physical redo operation. Rollback dispatches it to the handler the
    access method registered here; the handler re-traverses the tree,
    applies the compensation to whatever page now holds the key, and logs it
    as a CLR (so repeated crashes never undo twice). The handler may trigger
    ordinary structure changes (e.g. a split so a restored record fits).

    The registry is global: linking an access method registers its handler,
    which is exactly what restart recovery needs. *)

type comp =
  | Remove of { key : string }  (** undo of an insert: take the key out *)
  | Put of { cell : string }
      (** undo of a delete or replace: restore this record cell (insert or
          overwrite, keyed by the cell's embedded key) *)

val encode : Buffer.t -> comp -> unit
val decode : Pitree_util.Codec.reader -> comp

type handler =
  tree:int ->
  comp:comp ->
  txn:int ->
  prev:Lsn.t ->
  undo_next:Lsn.t ->
  Lsn.t
(** Perform the compensation for [tree], logging CLR(s) for [txn] chained
    after [prev] with the given [undo_next]. Returns the last CLR's LSN
    ([Lsn.null] if the compensation turned out to be a no-op). *)

val register_tree : int -> handler -> unit
(** Register the handler for one tree (keyed by its root page id / tree
    id). Each access method registers every tree it opens or creates. *)

val handler_for : int -> handler option
