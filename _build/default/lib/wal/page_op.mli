(** Physiological page operations: the unit of logging.

    Each operation describes one change to one page, carrying enough
    information to be both redone and undone page-locally. This is exactly
    what the paper's "page-oriented UNDO" recovery regime assumes: the undo
    of an update happens on the same page as the original update.

    Operations are applied with {!redo}; their page-local inverses come from
    {!invert} (used to generate compensation log records during rollback). *)

type t =
  | Format of { kind : Pitree_storage.Page.kind; level : int }
      (** Initialize a freshly allocated page. Inverse: format as [Free]. *)
  | Reformat of {
      old_kind : Pitree_storage.Page.kind;
      new_kind : Pitree_storage.Page.kind;
      old_level : int;
      new_level : int;
    }  (** Change header kind/level in place, keeping cells. *)
  | Insert_slot of { slot : int; cell : string }
  | Delete_slot of { slot : int; cell : string }
      (** [cell] is the deleted content, needed to undo. *)
  | Replace_slot of { slot : int; old_cell : string; new_cell : string }
  | Set_side_ptr of { old_ptr : int; new_ptr : int }
  | Set_aux_ptr of { old_ptr : int; new_ptr : int }
  | Set_flags of { old_flags : int; new_flags : int }
  | Clear of { cells : string list }
      (** Drop all cells (e.g. moving the old root's content out during a
          root split); [cells] is the prior content, for undo. *)
  | Restore of { cells : string list }  (** Inverse of [Clear]. *)

val redo : Pitree_storage.Page.t -> t -> unit
(** Apply the operation's forward effect. Does NOT touch the page LSN; the
    caller stamps it with the log record's LSN. *)

val invert : t -> t
(** The page-local inverse. [redo p (invert op)] after [redo p op] restores
    the page's logical content. *)

val encode : Buffer.t -> t -> unit
val decode : Pitree_util.Codec.reader -> t

val pp : Format.formatter -> t -> unit
