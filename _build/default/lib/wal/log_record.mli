(** Log records.

    A record belongs to a {e transaction} in the broad sense: either a user
    database transaction or one of the paper's independent {e atomic actions}
    (identified to the recovery manager as a "system transaction",
    section 4.3.2 option (ii)). Records of one transaction are backchained
    through [prev] so rollback can walk them without scanning.

    [Clr] records are compensation log records: redo-only descriptions of an
    undo step. [undo_next] points at the next record of the transaction still
    requiring undo, which makes rollback idempotent across repeated
    crashes. *)

type txn_kind =
  | User  (** database transaction; commit forces the log *)
  | System
      (** atomic action; commit is only {e relatively} durable — no force
          (section 4.3.1) *)

val pp_txn_kind : Format.formatter -> txn_kind -> unit

type lundo = { tree : int; comp : Logical.comp }
(** Logical-undo descriptor attached to leaf-record updates of user
    transactions under non-page-oriented UNDO (see {!Logical}). *)

type body =
  | Begin of { kind : txn_kind }
  | Commit
  | Abort  (** rollback decided; CLRs follow *)
  | End  (** rollback or commit processing finished *)
  | Update of { page : int; op : Page_op.t; lundo : lundo option }
  | Clr of { page : int; op : Page_op.t; undo_next : Lsn.t }
  | Checkpoint of { active : (int * Lsn.t) list }
      (** sharp checkpoint: all dirty pages were flushed first; [active]
          lists live transactions and their last LSN *)

type t = { lsn : Lsn.t; prev : Lsn.t; txn : int; body : body }

val encode : t -> string
val decode : string -> t
(** Raises [Pitree_util.Codec.Corrupt] on framing/CRC errors. *)

val pp : Format.formatter -> t -> unit
