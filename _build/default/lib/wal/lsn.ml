type t = int

let null = 0
let is_null t = t = 0
let compare = Int.compare
let pp = Format.pp_print_int
