lib/wal/log_record.mli: Format Logical Lsn Page_op
