lib/wal/lsn.mli: Format
