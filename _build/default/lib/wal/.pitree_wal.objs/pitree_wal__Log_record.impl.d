lib/wal/log_record.ml: Buffer Fmt Format Int32 List Logical Lsn Page_op Pitree_util Printf String
