lib/wal/recovery.ml: Fmt Hashtbl List Log_manager Log_record Logical Lsn Option Page_op Pitree_storage Pitree_sync Printf
