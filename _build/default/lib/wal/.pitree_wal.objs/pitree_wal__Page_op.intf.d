lib/wal/page_op.mli: Buffer Format Pitree_storage Pitree_util
