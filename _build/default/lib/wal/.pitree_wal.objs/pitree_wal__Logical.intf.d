lib/wal/logical.mli: Buffer Lsn Pitree_util
