lib/wal/logical.ml: Hashtbl Lsn Mutex Pitree_util Printf
