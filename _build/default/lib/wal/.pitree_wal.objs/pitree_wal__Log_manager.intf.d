lib/wal/log_manager.mli: Log_record Lsn
