lib/wal/recovery.mli: Format Log_manager Lsn Pitree_storage
