lib/wal/page_op.ml: Bytes Fmt List Pitree_storage Pitree_util Printf String
