lib/wal/log_manager.ml: Array Buffer Bytes List Log_record Lsn Mutex Pitree_util Printf String Unix
