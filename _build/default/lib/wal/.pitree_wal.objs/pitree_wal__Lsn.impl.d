lib/wal/lsn.ml: Format Int
