(** Zipfian key-popularity sampler.

    Used by the workload generator to model skewed access, the regime in which
    the concurrency differences between index methods are largest. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over ranks [0, n).
    [theta = 0.] degenerates to uniform; typical skew is [0.99].
    Raises [Invalid_argument] if [n <= 0] or [theta < 0.]. *)

val sample : t -> Rng.t -> int
(** Draw a rank; rank 0 is the most popular. Uses the rejection-free
    approximation of Gray et al. (SIGMOD '94). *)

val n : t -> int
