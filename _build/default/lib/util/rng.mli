(** Deterministic pseudo-random number generation (splitmix64).

    Every randomized component of the library (workload generators, property
    tests, crash-injection schedules) draws from an explicit [Rng.t] so that
    runs are reproducible from a seed. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** A generator statistically independent of the parent's subsequent
    output (for handing to worker domains). *)
