let clz x =
  if x = 0 then 64
  else begin
    let x = Int64.of_int x in
    let n = ref 0 in
    let x = ref x in
    if Int64.shift_right_logical !x 32 = 0L then (n := !n + 32; x := Int64.shift_left !x 32);
    if Int64.shift_right_logical !x 48 = 0L then (n := !n + 16; x := Int64.shift_left !x 16);
    if Int64.shift_right_logical !x 56 = 0L then (n := !n + 8; x := Int64.shift_left !x 8);
    if Int64.shift_right_logical !x 60 = 0L then (n := !n + 4; x := Int64.shift_left !x 4);
    if Int64.shift_right_logical !x 62 = 0L then (n := !n + 2; x := Int64.shift_left !x 2);
    if Int64.shift_right_logical !x 63 = 0L then incr n;
    !n
  end

let next_pow2 v =
  if v < 1 then invalid_arg "Bits.next_pow2";
  let rec go p = if p >= v then p else go (p * 2) in
  go 1
