(** Binary encoding helpers shared by the page layout and the log-record
    codec.

    All integers are little-endian. [Buffer]-based writers pair with
    cursor-based readers; readers raise [Corrupt] rather than returning
    partial data, because a short read here always indicates a torn page or
    truncated log record. *)

exception Corrupt of string

(* Writers *)

val put_u8 : Buffer.t -> int -> unit
val put_u16 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
val put_i64 : Buffer.t -> int64 -> unit
val put_int : Buffer.t -> int -> unit
(** 63-bit OCaml int as a 64-bit word. *)

val put_bytes : Buffer.t -> string -> unit
(** Length-prefixed (u32) byte string. *)

val put_float : Buffer.t -> float -> unit

(* Readers: [reader] carries the source string and a mutable offset. *)

type reader

val reader : ?pos:int -> string -> reader
val pos : reader -> int
val remaining : reader -> int

val get_u8 : reader -> int
val get_u16 : reader -> int
val get_u32 : reader -> int
val get_i64 : reader -> int64
val get_int : reader -> int
val get_bytes : reader -> string
val get_float : reader -> float

(* Direct [bytes] accessors for fixed page layouts. *)

val set_u16 : bytes -> int -> int -> unit
val set_u32 : bytes -> int -> int -> unit
val set_i64 : bytes -> int -> int64 -> unit
val read_u16 : bytes -> int -> int
val read_u32 : bytes -> int -> int
val read_i64 : bytes -> int -> int64

val crc32 : string -> int32
(** CRC-32 (IEEE) over the whole string; used for log-record framing. *)
