type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Drop 2 bits so the value fits OCaml's 63-bit int non-negatively. *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = int64 t }
