let escape key =
  let b = Buffer.create (String.length key + 2) in
  String.iter
    (fun c ->
      Buffer.add_char b c;
      if c = '\x00' then Buffer.add_char b '\x01')
    key;
  Buffer.add_string b "\x00\x00";
  Buffer.contents b

let prefix = escape

let composite key time =
  let b = Buffer.create (String.length key + 10) in
  Buffer.add_string b (escape key);
  let t = Int64.of_int time in
  for shift = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical t (8 * shift)) 0xffL)))
  done;
  Buffer.contents b

let decompose s =
  let n = String.length s in
  let b = Buffer.create n in
  let rec scan i =
    if i + 1 >= n then raise (Codec.Corrupt "Ordkey: missing terminator")
    else if s.[i] = '\x00' then
      if s.[i + 1] = '\x00' then i + 2
      else if s.[i + 1] = '\x01' then begin
        Buffer.add_char b '\x00';
        scan (i + 2)
      end
      else raise (Codec.Corrupt "Ordkey: bad escape")
    else begin
      Buffer.add_char b s.[i];
      scan (i + 1)
    end
  in
  let time_off = scan 0 in
  if n - time_off <> 8 then raise (Codec.Corrupt "Ordkey: bad time width");
  let t = ref 0L in
  for i = time_off to n - 1 do
    t := Int64.logor (Int64.shift_left !t 8) (Int64.of_int (Char.code s.[i]))
  done;
  (Buffer.contents b, Int64.to_int !t)

let belongs_to s ~key =
  let p = prefix key in
  String.length s = String.length p + 8 && String.sub s 0 (String.length p) = p
