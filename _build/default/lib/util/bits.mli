(** Small bit tricks shared across the library. *)

val clz : int -> int
(** Count of leading zero bits treating the argument as a 64-bit word.
    [clz 0 = 64]. *)

val next_pow2 : int -> int
(** Smallest power of two >= the argument (argument must be >= 1). *)
