(** Order-preserving composite (key, time) encoding for multiversion
    indexes.

    The TSB-tree stores every version of a record under a single sort key
    so that versions of one key are contiguous and ordered by time. The
    encoding must be {e order-preserving} under plain byte comparison and
    unambiguous for keys containing NUL bytes, so the key part is escaped
    (00 -> 00 01) and terminated (00 00) before the fixed-width big-endian
    timestamp. *)

val composite : string -> int -> string
(** [composite key time]: escaped key, terminator, 8-byte big-endian
    [time]. Comparing composites = comparing (key, time) lexicographically. *)

val decompose : string -> string * int
(** Inverse of {!composite}. Raises [Pitree_util.Codec.Corrupt] on
    malformed input. *)

val prefix : string -> string
(** [prefix key]: the escaped+terminated key with no timestamp — the
    smallest possible composite for [key] is [prefix key ^ eight zero
    bytes], and every composite of [key] starts with [prefix key]. *)

val belongs_to : string -> key:string -> bool
(** Does this composite encode a version of [key]? *)
