exception Corrupt of string

let put_u8 b v = Buffer.add_uint8 b (v land 0xff)
let put_u16 b v = Buffer.add_uint16_le b (v land 0xffff)
let put_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let put_i64 b v = Buffer.add_int64_le b v
let put_int b v = put_i64 b (Int64.of_int v)

let put_bytes b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_float b f = put_i64 b (Int64.bits_of_float f)

type reader = { src : string; mutable off : int }

let reader ?(pos = 0) src = { src; off = pos }
let pos r = r.off
let remaining r = String.length r.src - r.off

let need r n =
  if r.off + n > String.length r.src then
    raise (Corrupt (Printf.sprintf "short read: need %d at %d, have %d" n r.off (String.length r.src)))

let get_u8 r =
  need r 1;
  let v = Char.code r.src.[r.off] in
  r.off <- r.off + 1;
  v

let get_u16 r =
  need r 2;
  let v = String.get_uint16_le r.src r.off in
  r.off <- r.off + 2;
  v

let get_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.src r.off) land 0xffffffff in
  r.off <- r.off + 4;
  v

let get_i64 r =
  need r 8;
  let v = String.get_int64_le r.src r.off in
  r.off <- r.off + 8;
  v

let get_int r = Int64.to_int (get_i64 r)

let get_bytes r =
  let n = get_u32 r in
  need r n;
  let s = String.sub r.src r.off n in
  r.off <- r.off + n;
  s

let get_float r = Int64.float_of_bits (get_i64 r)

let set_u16 b off v = Bytes.set_uint16_le b off (v land 0xffff)
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let set_i64 b off v = Bytes.set_int64_le b off v
let read_u16 b off = Bytes.get_uint16_le b off
let read_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff
let read_i64 b off = Bytes.get_int64_le b off

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xffl) in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  Int32.logxor !crc 0xFFFFFFFFl
