lib/util/codec.mli: Buffer
