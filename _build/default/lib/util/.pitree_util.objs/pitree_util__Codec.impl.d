lib/util/codec.ml: Array Buffer Bytes Char Int32 Int64 Lazy Printf String
