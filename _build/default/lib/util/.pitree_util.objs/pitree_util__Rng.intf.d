lib/util/rng.mli:
