lib/util/histogram.mli:
