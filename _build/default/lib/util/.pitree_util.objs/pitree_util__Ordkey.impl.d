lib/util/ordkey.ml: Buffer Char Codec Int64 String
