lib/util/histogram.ml: Array Bits Float
