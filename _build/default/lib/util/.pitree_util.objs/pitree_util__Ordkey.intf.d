lib/util/ordkey.mli:
