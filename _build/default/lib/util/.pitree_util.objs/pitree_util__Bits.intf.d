lib/util/bits.mli:
