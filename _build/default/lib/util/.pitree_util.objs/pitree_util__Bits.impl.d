lib/util/bits.ml: Int64
