module Page = Pitree_storage.Page
module Codec = Pitree_util.Codec
module Bnode = Pitree_blink.Node

let history_flag = 1

type time_cell = { t_low : int; t_high : int option }

(* Fixed width (16 bytes): a history node's time cell must be exactly the
   size of the current node's, so that a time split can always copy a full
   node's contents into the fresh history page. +inf is the max_int
   sentinel. *)
let time_cell { t_low; t_high } =
  let b = Buffer.create 16 in
  Codec.put_int b t_low;
  Codec.put_int b (match t_high with None -> max_int | Some t -> t);
  Buffer.contents b

let time_of page =
  let r = Codec.reader (Page.get page 1) in
  let t_low = Codec.get_int r in
  let th = Codec.get_int r in
  { t_low; t_high = (if th = max_int then None else Some th) }

type version = Value of string | Tombstone

let version_cell ~composite v =
  let b = Buffer.create 16 in
  (match v with
  | Tombstone -> Codec.put_u8 b 0
  | Value s ->
      Codec.put_u8 b 1;
      Codec.put_bytes b s);
  Bnode.entry_cell ~key:composite ~payload:(Buffer.contents b)

let version_of_payload payload =
  let r = Codec.reader payload in
  match Codec.get_u8 r with
  | 0 -> Tombstone
  | 1 -> Value (Codec.get_bytes r)
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad version tag %d" n))

(* Entries start at slot 2 (fence, time cell, then entries). *)
let base = 2

let entry_count page = Page.slot_count page - base
let slot_of_entry i = i + base
let entry page i = Bnode.entry_of_cell (Page.get page (slot_of_entry i))

let entry_key page i =
  Codec.get_bytes (Codec.reader (Page.get page (slot_of_entry i)))

let find page key =
  let n = entry_count page in
  let rec bs lo hi =
    if lo >= hi then `Not_found lo
    else
      let mid = (lo + hi) / 2 in
      let c = String.compare (entry_key page mid) key in
      if c = 0 then `Found mid else if c < 0 then bs (mid + 1) hi else bs lo mid
  in
  bs 0 n

let floor_entry page key =
  match find page key with
  | `Found i -> Some i
  | `Not_found 0 -> None
  | `Not_found i -> Some (i - 1)

let index_term_cell ~sep ~child =
  let b = Buffer.create 8 in
  Codec.put_u32 b child;
  Bnode.entry_cell ~key:sep ~payload:(Buffer.contents b)

let index_term page i =
  let sep, payload = entry page i in
  (sep, Codec.get_u32 (Codec.reader payload))

let find_child_term page child =
  let n = entry_count page in
  let rec go i =
    if i >= n then None
    else
      let _, c = index_term page i in
      if c = child then Some i else go (i + 1)
  in
  go 0

(* Same encoding and slot as B-link fences. *)
let fence = Bnode.fence

let fence_cell = Bnode.fence_cell

let contains page key =
  match (fence page).Bnode.high with
  | None -> true
  | Some high -> String.compare key high < 0

let split_point page =
  let n = entry_count page in
  assert (n >= 2);
  let size i = String.length (Page.get page (slot_of_entry i)) in
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + size i
  done;
  let half = !total / 2 in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc + size i in
      if acc >= half then i + 1 else go (i + 1) acc
  in
  min (n - 1) (go 0 0)
