lib/tsb/tnode.mli: Pitree_blink Pitree_storage
