lib/tsb/tsb.mli: Pitree_core Pitree_env Pitree_txn
