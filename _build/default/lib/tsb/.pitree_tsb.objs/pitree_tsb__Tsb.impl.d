lib/tsb/tsb.ml: Array Atomic Hashtbl List Mutex Option Pitree_blink Pitree_core Pitree_env Pitree_lock Pitree_storage Pitree_sync Pitree_txn Pitree_util Pitree_wal Printf String Tnode
