lib/tsb/tnode.ml: Buffer Pitree_blink Pitree_storage Pitree_util Printf String
