(** On-page layout of TSB-tree nodes (paper section 2.2.2, Figure 1).

    TSB nodes index {e versions}: the entry sort key is the order-preserving
    composite (key, write-time) of [Pitree_util.Ordkey]. Layout:

    - slot 0: key-space fence, exactly as in B-link nodes
      ([Pitree_blink.Node.fence]) but over composite keys;
    - slot 1: the {b time cell}: [t_low, t_high) — the time slice this node
      covers ([t_high = None] for current nodes, which extend to "now");
    - slots 2..: entries sorted by composite key. In leaves the payload is
      a version: a live value or a deletion tombstone. In index nodes the
      payload is a child pointer.

    Page header reuse: [side_ptr] is the key sibling (as in B-link);
    [aux_ptr] is the {b history sibling pointer} — the newest history node
    holding this node's earlier time slice. History nodes chain through
    their own [aux_ptr] to older slices and carry flag {!history_flag}. *)

module Page = Pitree_storage.Page

val history_flag : int

(** {2 Time cell (slot 1)} *)

type time_cell = { t_low : int; t_high : int option }

val time_cell : time_cell -> string
val time_of : Page.t -> time_cell

(** {2 Versions} *)

type version = Value of string | Tombstone

val version_cell : composite:string -> version -> string
val version_of_payload : string -> version

(** {2 Entries (slots 2..)} *)

val entry_count : Page.t -> int
val slot_of_entry : int -> int
val entry : Page.t -> int -> string * string
(** (composite, payload) *)

val entry_key : Page.t -> int -> string

val find : Page.t -> string -> [ `Found of int | `Not_found of int ]
val floor_entry : Page.t -> string -> int option

val index_term_cell : sep:string -> child:int -> string
val index_term : Page.t -> int -> string * int
val find_child_term : Page.t -> int -> int option

val fence : Page.t -> Pitree_blink.Node.fence
val fence_cell : Pitree_blink.Node.fence -> string
val contains : Page.t -> string -> bool

val split_point : Page.t -> int
(** Byte-balanced split entry index in [1, n-1] (requires >= 2 entries);
    callers snap it to a key boundary. *)
