lib/txn/atomic_action.mli: Txn Txn_mgr
