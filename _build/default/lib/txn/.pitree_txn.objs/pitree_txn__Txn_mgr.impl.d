lib/txn/txn_mgr.ml: Hashtbl List Mutex Pitree_lock Pitree_storage Pitree_wal Txn
