lib/txn/txn.ml: Fmt Pitree_wal
