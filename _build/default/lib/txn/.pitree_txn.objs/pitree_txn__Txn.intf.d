lib/txn/txn.mli: Format Pitree_wal
