lib/txn/crash_point.mli:
