lib/txn/crash_point.ml: Hashtbl Mutex
