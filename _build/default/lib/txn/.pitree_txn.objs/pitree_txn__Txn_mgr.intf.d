lib/txn/txn_mgr.mli: Pitree_lock Pitree_storage Pitree_wal Txn
