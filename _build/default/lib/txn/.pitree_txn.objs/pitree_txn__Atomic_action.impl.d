lib/txn/atomic_action.ml: Crash_point Txn Txn_mgr
