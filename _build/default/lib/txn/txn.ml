type kind = User | System

type state = Active | Committed | Aborted

type t = {
  id : int;
  kind : kind;
  first_lsn : Pitree_wal.Lsn.t;  (* the Begin record *)
  mutable last_lsn : Pitree_wal.Lsn.t;
  mutable state : state;
  mutable updated_nodes : (int * int) list;
  mutable on_commit : (unit -> unit) list;
}

let is_active t = t.state = Active

let add_on_commit t f = t.on_commit <- f :: t.on_commit

let pp ppf t =
  Fmt.pf ppf "txn#%d(%s,%s)" t.id
    (match t.kind with User -> "user" | System -> "sys")
    (match t.state with Active -> "active" | Committed -> "committed" | Aborted -> "aborted")
