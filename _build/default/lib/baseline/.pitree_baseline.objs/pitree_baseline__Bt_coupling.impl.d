lib/baseline/bt_coupling.ml: Array Atomic List Option Pitree_blink Pitree_env Pitree_storage Pitree_sync Pitree_txn Pitree_wal String
