lib/baseline/bt_coupling.mli: Pitree_env
