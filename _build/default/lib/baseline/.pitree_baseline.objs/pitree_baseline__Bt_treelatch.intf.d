lib/baseline/bt_treelatch.mli: Pitree_env
