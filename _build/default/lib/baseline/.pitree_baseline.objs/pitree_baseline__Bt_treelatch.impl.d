lib/baseline/bt_treelatch.ml: Atomic List Option Pitree_blink Pitree_env Pitree_storage Pitree_sync Pitree_txn Pitree_wal String
