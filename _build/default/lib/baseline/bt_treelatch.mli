(** Baseline 2: B+tree with a tree latch serializing structure changes
    (the ARIES/IM contrast class).

    The paper's point of comparison (section 1, innovation 2): "in ARIES/IM
    complete structural changes are serial". This baseline models that
    property directly: every operation holds a tree-level latch in S mode;
    a structure modification (split cascade) acquires it in X mode, so SMOs
    exclude each other {e and} all concurrent operations for their whole
    duration — unlike Pi-tree atomic actions, which only X-latch one or two
    nodes briefly.

    (This is deliberately the {e class} property, not a re-implementation of
    ARIES/IM's finer points — IM lets readers slip past the tree latch in
    more cases; experiment E1/E4 measures the serial-SMO cost that both
    share.)

    Same page/WAL substrate and auto-commit transactions as the other
    engines. Deletes are lazy. *)

type t

val create : Pitree_env.Env.t -> name:string -> t
val insert : t -> key:string -> value:string -> unit
val delete : t -> string -> bool
val find : t -> string -> string option
val count : t -> int
val height : t -> int

type stats = {
  searches : int;
  inserts : int;
  splits : int;
  smo_waits : int;  (** times an operation had to queue behind the tree latch *)
}

val stats : t -> stats
