module Page = Pitree_storage.Page
module Buffer_pool = Pitree_storage.Buffer_pool
module Latch = Pitree_sync.Latch
module Page_op = Pitree_wal.Page_op
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Atomic_action = Pitree_txn.Atomic_action
module Env = Pitree_env.Env
module Node = Pitree_blink.Node

type t = {
  env : Env.t;
  root : int;
  tree_latch : Latch.t;
  c_searches : int Atomic.t;
  c_inserts : int Atomic.t;
  c_splits : int Atomic.t;
  c_smo_waits : int Atomic.t;
}

type stats = { searches : int; inserts : int; splits : int; smo_waits : int }

let pool t = Env.pool t.env
let mgr t = Env.txns t.env
let pin t pid = Buffer_pool.pin (pool t) pid
let unpin t fr = Buffer_pool.unpin (pool t) fr
let page fr = fr.Buffer_pool.page
let latch fr m = Latch.acquire fr.Buffer_pool.latch m
let unlatch fr m = Latch.release fr.Buffer_pool.latch m
let update t txn fr op = ignore (Txn_mgr.update (mgr t) txn fr op)

let create env ~name =
  let root = Env.create_tree env ~name:("btl:" ^ name) ~kind:Page.Data ~level:0 in
  let t =
    {
      env;
      root;
      tree_latch = Latch.create ~name:"tree-latch" ();
      c_searches = Atomic.make 0;
      c_inserts = Atomic.make 0;
      c_splits = Atomic.make 0;
      c_smo_waits = Atomic.make 0;
    }
  in
  Atomic_action.run (mgr t) (fun txn ->
      let fr = pin t root in
      latch fr Latch.X;
      update t txn fr
        (Page_op.Insert_slot { slot = 0; cell = Node.fence_cell Node.whole_fence });
      unlatch fr Latch.X;
      unpin t fr);
  t

let acquire_tree t m =
  if not (Latch.try_acquire t.tree_latch m) then begin
    Atomic.incr t.c_smo_waits;
    Latch.acquire t.tree_latch m
  end

(* Descend with page S-latch coupling; the tree latch (held in S by the
   caller) keeps SMOs away. *)
let rec down_s t fr key =
  let p = page fr in
  if Page.level p = 0 then fr
  else begin
    let i = Option.value (Node.floor_entry p key) ~default:0 in
    let _, child = Node.index_term p i in
    let cfr = pin t child in
    latch cfr Latch.S;
    unlatch fr Latch.S;
    unpin t fr;
    down_s t cfr key
  end

let find t key =
  Atomic.incr t.c_searches;
  acquire_tree t Latch.S;
  let fr = pin t t.root in
  latch fr Latch.S;
  let leaf = down_s t fr key in
  let p = page leaf in
  let r =
    match Node.find p key with
    | `Found i -> Some (snd (Node.record p i))
    | `Not_found _ -> None
  in
  unlatch leaf Latch.S;
  unpin t leaf;
  Latch.release t.tree_latch Latch.S;
  r

let with_autocommit t f =
  let txn = Txn_mgr.begin_txn (mgr t) Txn.User in
  match f txn with
  | v ->
      Txn_mgr.commit (mgr t) txn;
      v
  | exception e ->
      if Txn.is_active txn then Txn_mgr.abort (mgr t) txn;
      raise e

let choose_split p ~key =
  let n = Node.entry_count p in
  if n >= 2 then
    let s = Node.split_point p in
    (s, fst (Node.entry p s))
  else
    let k0 = fst (Node.entry p 0) in
    if String.compare key k0 > 0 then (1, key) else (0, k0)

(* Recursive insert under the X tree latch (no page latches needed: we are
   alone in the tree). Returns the (sep, new sibling) the parent must
   absorb, if this node split. *)
let rec insert_rec t txn pid ~key ~cell =
  let fr = pin t pid in
  let p = page fr in
  let result =
    if Page.level p = 0 then begin
      match Node.find p key with
      | `Found i ->
          let old_cell = Page.get p (Node.slot_of_entry i) in
          update t txn fr
            (Page_op.Replace_slot
               { slot = Node.slot_of_entry i; old_cell; new_cell = cell });
          None
      | `Not_found i ->
          if Page.will_fit p (String.length cell + Page.slot_overhead) then begin
            update t txn fr (Page_op.Insert_slot { slot = Node.slot_of_entry i; cell });
            None
          end
          else Some (split_and_insert t txn fr ~key ~cell)
    end
    else begin
      let i = Option.value (Node.floor_entry p key) ~default:0 in
      let _, child = Node.index_term p i in
      match insert_rec t txn child ~key ~cell with
      | None -> None
      | Some (sep, q) ->
          let term = Node.index_term_cell ~sep ~child:q in
          if Page.will_fit p (String.length term + Page.slot_overhead) then begin
            (match Node.find p sep with
            | `Found _ -> failwith "bt_treelatch: duplicate separator"
            | `Not_found j ->
                update t txn fr
                  (Page_op.Insert_slot { slot = Node.slot_of_entry j; cell = term }));
            None
          end
          else Some (split_and_insert t txn fr ~key:sep ~cell:term)
    end
  in
  unpin t fr;
  result

(* Split [fr] and place [cell] (an entry keyed [key]) in the proper half.
   Returns the (sep, sibling pid) for the parent. *)
and split_and_insert t txn fr ~key ~cell =
  Atomic.incr t.c_splits;
  let p = page fr in
  let n = Node.entry_count p in
  let s, sep = choose_split p ~key in
  let qfr = Env.alloc_page t.env txn ~kind:(Page.kind p) ~level:(Page.level p) in
  update t txn qfr
    (Page_op.Insert_slot { slot = 0; cell = Node.fence_cell Node.whole_fence });
  for i = s to n - 1 do
    update t txn qfr
      (Page_op.Insert_slot
         { slot = Node.slot_of_entry (i - s); cell = Page.get p (Node.slot_of_entry i) })
  done;
  for i = n - 1 downto s do
    update t txn fr
      (Page_op.Delete_slot
         { slot = Node.slot_of_entry i; cell = Page.get p (Node.slot_of_entry i) })
  done;
  let target = if String.compare key sep < 0 then fr else qfr in
  (match Node.find (page target) key with
  | `Found _ -> failwith "bt_treelatch: key reappeared"
  | `Not_found j ->
      update t txn target (Page_op.Insert_slot { slot = Node.slot_of_entry j; cell }));
  let qpid = Page.id (page qfr) in
  unpin t qfr;
  (sep, qpid)

(* Root overflow: move everything into two children, raise the root. *)
let grow_root t txn ~sep ~right =
  let fr = pin t t.root in
  let p = page fr in
  let lfr = Env.alloc_page t.env txn ~kind:(Page.kind p) ~level:(Page.level p) in
  let n = Node.entry_count p in
  update t txn lfr
    (Page_op.Insert_slot { slot = 0; cell = Node.fence_cell Node.whole_fence });
  for i = 0 to n - 1 do
    update t txn lfr
      (Page_op.Insert_slot
         { slot = Node.slot_of_entry i; cell = Page.get p (Node.slot_of_entry i) })
  done;
  let cells = Page.fold p ~init:[] ~f:(fun acc _ c -> c :: acc) in
  update t txn fr (Page_op.Clear { cells = List.rev cells });
  update t txn fr
    (Page_op.Reformat
       {
         old_kind = Page.kind p;
         new_kind = Page.Index;
         old_level = Page.level p;
         new_level = Page.level p + 1;
       });
  update t txn fr
    (Page_op.Insert_slot { slot = 0; cell = Node.fence_cell Node.whole_fence });
  update t txn fr
    (Page_op.Insert_slot
       { slot = 1; cell = Node.index_term_cell ~sep:"" ~child:(Page.id (page lfr)) });
  update t txn fr
    (Page_op.Insert_slot { slot = 2; cell = Node.index_term_cell ~sep ~child:right });
  unpin t lfr;
  unpin t fr

let insert t ~key ~value =
  Atomic.incr t.c_inserts;
  let cell = Node.record_cell ~key ~value in
  (* Optimistic fast path: S tree latch, X only on the leaf. *)
  let fast_path () =
    acquire_tree t Latch.S;
    let fr = pin t t.root in
    latch fr Latch.S;
    let leaf = down_s t fr key in
    (* Re-latch the leaf exclusively. Safe without re-validation: the tree
       latch in S blocks any SMO, so the leaf still owns this key range. *)
    unlatch leaf Latch.S;
    latch leaf Latch.X;
    let p = page leaf in
    let done_ =
      match Node.find p key with
      | `Found i ->
          let old_cell = Page.get p (Node.slot_of_entry i) in
          if
            String.length cell <= String.length old_cell
            || Page.will_fit p (String.length cell)
          then begin
            with_autocommit t (fun txn ->
                update t txn leaf
                  (Page_op.Replace_slot
                     { slot = Node.slot_of_entry i; old_cell; new_cell = cell }));
            true
          end
          else false
      | `Not_found i ->
          if Page.will_fit p (String.length cell + Page.slot_overhead) then begin
            with_autocommit t (fun txn ->
                update t txn leaf
                  (Page_op.Insert_slot { slot = Node.slot_of_entry i; cell }));
            true
          end
          else false
    in
    unlatch leaf Latch.X;
    unpin t leaf;
    Latch.release t.tree_latch Latch.S;
    done_
  in
  if not (fast_path ()) then begin
    (* SMO path: exclusive tree latch serializes the whole structure
       change against every other operation — the property the Pi-tree
       removes. *)
    acquire_tree t Latch.X;
    with_autocommit t (fun txn ->
        match insert_rec t txn t.root ~key ~cell with
        | None -> ()
        | Some (sep, right) -> grow_root t txn ~sep ~right);
    Latch.release t.tree_latch Latch.X
  end

let delete t key =
  acquire_tree t Latch.S;
  let fr = pin t t.root in
  latch fr Latch.S;
  let leaf = down_s t fr key in
  unlatch leaf Latch.S;
  latch leaf Latch.X;
  let p = page leaf in
  let r =
    match Node.find p key with
    | `Found i ->
        let cell = Page.get p (Node.slot_of_entry i) in
        with_autocommit t (fun txn ->
            update t txn leaf
              (Page_op.Delete_slot { slot = Node.slot_of_entry i; cell }));
        true
    | `Not_found _ -> false
  in
  unlatch leaf Latch.X;
  unpin t leaf;
  Latch.release t.tree_latch Latch.S;
  r

let count t =
  let rec go pid =
    let fr = pin t pid in
    let p = page fr in
    let n =
      if Page.level p = 0 then Node.entry_count p
      else
        Node.(
          let total = ref 0 in
          for i = 0 to entry_count p - 1 do
            let _, child = index_term p i in
            total := !total + go child
          done;
          !total)
    in
    unpin t fr;
    n
  in
  go t.root

let height t =
  let fr = pin t t.root in
  let h = Page.level (page fr) + 1 in
  unpin t fr;
  h

let stats t =
  {
    searches = Atomic.get t.c_searches;
    inserts = Atomic.get t.c_inserts;
    splits = Atomic.get t.c_splits;
    smo_waits = Atomic.get t.c_smo_waits;
  }
