module Page = Pitree_storage.Page
module Buffer_pool = Pitree_storage.Buffer_pool
module Latch = Pitree_sync.Latch
module Page_op = Pitree_wal.Page_op
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Atomic_action = Pitree_txn.Atomic_action
module Env = Pitree_env.Env
module Node = Pitree_blink.Node

type t = {
  env : Env.t;
  root : int;
  c_searches : int Atomic.t;
  c_inserts : int Atomic.t;
  c_splits : int Atomic.t;
  c_unsafe : int Atomic.t;
}

type stats = { searches : int; inserts : int; splits : int; unsafe_retained : int }

let pool t = Env.pool t.env
let mgr t = Env.txns t.env

let pin t pid = Buffer_pool.pin (pool t) pid
let unpin t fr = Buffer_pool.unpin (pool t) fr
let page fr = fr.Buffer_pool.page
let latch fr m = Latch.acquire fr.Buffer_pool.latch m
let unlatch fr m = Latch.release fr.Buffer_pool.latch m
let update t txn fr op = ignore (Txn_mgr.update (mgr t) txn fr op)

let create env ~name =
  let root = Env.create_tree env ~name:("btc:" ^ name) ~kind:Page.Data ~level:0 in
  let t =
    {
      env;
      root;
      c_searches = Atomic.make 0;
      c_inserts = Atomic.make 0;
      c_splits = Atomic.make 0;
      c_unsafe = Atomic.make 0;
    }
  in
  Atomic_action.run (mgr t) (fun txn ->
      let fr = pin t root in
      latch fr Latch.X;
      update t txn fr
        (Page_op.Insert_slot { slot = 0; cell = Node.fence_cell Node.whole_fence });
      unlatch fr Latch.X;
      unpin t fr);
  t

(* A node is safe for an insertion wave if it can absorb one more entry of
   roughly this operation's size without splitting. *)
let safe_for p ~need = Page.will_fit p (need + Page.slot_overhead + 32)

let find t key =
  Atomic.incr t.c_searches;
  let rec down fr =
    let p = page fr in
    if Page.level p = 0 then begin
      let r =
        match Node.find p key with
        | `Found i -> Some (snd (Node.record p i))
        | `Not_found _ -> None
      in
      unlatch fr Latch.S;
      unpin t fr;
      r
    end
    else begin
      let i = Option.value (Node.floor_entry p key) ~default:0 in
      let _, child = Node.index_term p i in
      let cfr = pin t child in
      latch cfr Latch.S;
      unlatch fr Latch.S;
      unpin t fr;
      down cfr
    end
  in
  let fr = pin t t.root in
  latch fr Latch.S;
  down fr

(* Split the node at [idx] in the retained X-latched [stack] (root-first;
   every entry except possibly the head may need a split). The new sibling
   term goes into the node above, which is split first if necessary. After
   return, [stack.(idx)] is the node that now owns [key]'s range. *)
let rec make_room t txn stack idx ~key ~need =
  let fr = stack.(idx) in
  let p = page fr in
  if Page.will_fit p (need + Page.slot_overhead) then ()
  else if idx = 0 then begin
    if Page.id p <> t.root then failwith "bt_coupling: safety margin violated";
    (* Root split: contents move to two fresh children; the root page
       itself stays put and gains a level. *)
    Atomic.incr t.c_splits;
    let n = Node.entry_count p in
    let s, sep =
      if n >= 2 then
        let s = Node.split_point p in
        (s, fst (Node.entry p s))
      else
        let k0 = fst (Node.entry p 0) in
        if String.compare key k0 > 0 then (1, key) else (0, k0)
    in
    let lfr = Env.alloc_page t.env txn ~kind:(Page.kind p) ~level:(Page.level p) in
    let rfr = Env.alloc_page t.env txn ~kind:(Page.kind p) ~level:(Page.level p) in
    update t txn lfr
      (Page_op.Insert_slot { slot = 0; cell = Node.fence_cell Node.whole_fence });
    update t txn rfr
      (Page_op.Insert_slot { slot = 0; cell = Node.fence_cell Node.whole_fence });
    for i = 0 to s - 1 do
      update t txn lfr
        (Page_op.Insert_slot
           { slot = Node.slot_of_entry i; cell = Page.get p (Node.slot_of_entry i) })
    done;
    for i = s to n - 1 do
      update t txn rfr
        (Page_op.Insert_slot
           {
             slot = Node.slot_of_entry (i - s);
             cell = Page.get p (Node.slot_of_entry i);
           })
    done;
    let cells = Page.fold p ~init:[] ~f:(fun acc _ c -> c :: acc) in
    update t txn fr (Page_op.Clear { cells = List.rev cells });
    update t txn fr
      (Page_op.Reformat
         {
           old_kind = Page.kind p;
           new_kind = Page.Index;
           old_level = Page.level p;
           new_level = Page.level p + 1;
         });
    update t txn fr
      (Page_op.Insert_slot { slot = 0; cell = Node.fence_cell Node.whole_fence });
    update t txn fr
      (Page_op.Insert_slot
         { slot = 1; cell = Node.index_term_cell ~sep:"" ~child:(Page.id (page lfr)) });
    update t txn fr
      (Page_op.Insert_slot
         { slot = 2; cell = Node.index_term_cell ~sep ~child:(Page.id (page rfr)) });
    (* Replace the root in the stack by the child owning [key]; X-latch it
       (fresh pages are unreachable by others while we hold the root X). *)
    let target, other = if String.compare key sep < 0 then (lfr, rfr) else (rfr, lfr) in
    latch target Latch.X;
    unpin t other;
    unlatch fr Latch.X;
    unpin t fr;
    stack.(0) <- target;
    make_room t txn stack 0 ~key ~need
  end
  else begin
    (* Ordinary split: upper half to a new right sibling; term into the
       parent (make room there first — the parent is retained exactly
       because this node was unsafe). *)
    Atomic.incr t.c_splits;
    let n = Node.entry_count p in
    let s, sep =
      if n >= 2 then
        let s = Node.split_point p in
        (s, fst (Node.entry p s))
      else
        let k0 = fst (Node.entry p 0) in
        if String.compare key k0 > 0 then (1, key) else (0, k0)
    in
    let qfr = Env.alloc_page t.env txn ~kind:(Page.kind p) ~level:(Page.level p) in
    update t txn qfr
      (Page_op.Insert_slot { slot = 0; cell = Node.fence_cell Node.whole_fence });
    for i = s to n - 1 do
      update t txn qfr
        (Page_op.Insert_slot
           {
             slot = Node.slot_of_entry (i - s);
             cell = Page.get p (Node.slot_of_entry i);
           })
    done;
    for i = n - 1 downto s do
      update t txn fr
        (Page_op.Delete_slot
           { slot = Node.slot_of_entry i; cell = Page.get p (Node.slot_of_entry i) })
    done;
    let term = Node.index_term_cell ~sep ~child:(Page.id (page qfr)) in
    make_room t txn stack (idx - 1) ~key:sep ~need:(String.length term);
    let parent = page stack.(idx - 1) in
    (match Node.find parent sep with
    | `Found _ -> failwith "bt_coupling: duplicate separator"
    | `Not_found i ->
        update t txn stack.(idx - 1)
          (Page_op.Insert_slot { slot = Node.slot_of_entry i; cell = term }));
    if String.compare key sep < 0 then unpin t qfr
    else begin
      latch qfr Latch.X;
      unlatch fr Latch.X;
      unpin t fr;
      stack.(idx) <- qfr
    end;
    make_room t txn stack idx ~key ~need
  end

let with_autocommit t f =
  let txn = Txn_mgr.begin_txn (mgr t) Txn.User in
  match f txn with
  | v ->
      Txn_mgr.commit (mgr t) txn;
      v
  | exception e ->
      if Txn.is_active txn then Txn_mgr.abort (mgr t) txn;
      raise e

(* X-latch-coupled descent retaining the unsafe suffix of the path.
   Returns the retained frames, root-of-retained first, leaf last. *)
let descend_retaining t ~key ~need =
  let fr = pin t t.root in
  latch fr Latch.X;
  let rec down retained fr =
    let p = page fr in
    if Page.level p = 0 then List.rev (fr :: retained)
    else begin
      let i = Option.value (Node.floor_entry p key) ~default:0 in
      let _, child = Node.index_term p i in
      let cfr = pin t child in
      latch cfr Latch.X;
      if safe_for (page cfr) ~need then begin
        (* Child cannot split: everything above is releasable. *)
        List.iter
          (fun a ->
            unlatch a Latch.X;
            unpin t a)
          (fr :: retained);
        down [] cfr
      end
      else begin
        Atomic.incr t.c_unsafe;
        down (fr :: retained) cfr
      end
    end
  in
  down [] fr

let insert t ~key ~value =
  Atomic.incr t.c_inserts;
  let cell = Node.record_cell ~key ~value in
  with_autocommit t (fun txn ->
      let stack = Array.of_list (descend_retaining t ~key ~need:(String.length cell)) in
      let release_all () =
        Array.iter
          (fun fr ->
            unlatch fr Latch.X;
            unpin t fr)
          stack
      in
      let leaf_idx = Array.length stack - 1 in
      let p = page stack.(leaf_idx) in
      (match Node.find p key with
      | `Found i ->
          let old_cell = Page.get p (Node.slot_of_entry i) in
          update t txn stack.(leaf_idx)
            (Page_op.Replace_slot
               { slot = Node.slot_of_entry i; old_cell; new_cell = cell })
      | `Not_found _ ->
          make_room t txn stack leaf_idx ~key ~need:(String.length cell);
          let p = page stack.(leaf_idx) in
          (match Node.find p key with
          | `Found _ -> failwith "bt_coupling: key appeared during split"
          | `Not_found i ->
              update t txn stack.(leaf_idx)
                (Page_op.Insert_slot { slot = Node.slot_of_entry i; cell })));
      release_all ())

let delete t key =
  with_autocommit t (fun txn ->
      let rec down fr =
        let p = page fr in
        if Page.level p = 0 then begin
          let r =
            match Node.find p key with
            | `Found i ->
                let cell = Page.get p (Node.slot_of_entry i) in
                update t txn fr
                  (Page_op.Delete_slot { slot = Node.slot_of_entry i; cell });
                true
            | `Not_found _ -> false
          in
          unlatch fr Latch.X;
          unpin t fr;
          r
        end
        else begin
          let i = Option.value (Node.floor_entry p key) ~default:0 in
          let _, child = Node.index_term p i in
          let cfr = pin t child in
          latch cfr Latch.X;
          unlatch fr Latch.X;
          unpin t fr;
          down cfr
        end
      in
      let fr = pin t t.root in
      latch fr Latch.X;
      down fr)

let count t =
  let rec go pid =
    let fr = pin t pid in
    let p = page fr in
    let n =
      if Page.level p = 0 then Node.entry_count p
      else
        Node.(
          let total = ref 0 in
          for i = 0 to entry_count p - 1 do
            let _, child = index_term p i in
            total := !total + go child
          done;
          !total)
    in
    unpin t fr;
    n
  in
  go t.root

let height t =
  let fr = pin t t.root in
  let h = Page.level (page fr) + 1 in
  unpin t fr;
  h

let stats t =
  {
    searches = Atomic.get t.c_searches;
    inserts = Atomic.get t.c_inserts;
    splits = Atomic.get t.c_splits;
    unsafe_retained = Atomic.get t.c_unsafe;
  }
