(** Baseline 1: B+tree with latch coupling (Bayer & Schkolnick class).

    The comparison point the literature calls "lock coupling": writers
    X-latch their whole descent path, releasing an ancestor only once the
    child below it is {e safe} (cannot split); readers S-latch-couple. There
    are no side pointers: a node split must update the parent {e in the same
    operation}, which is why the unsafe path stays X-latched — the source of
    the contention the Pi-tree eliminates.

    Logging uses the same substrate as the Pi-tree engine (each operation is
    an auto-committed transaction), so throughput comparisons isolate the
    concurrency protocol. Deletes are lazy (no merging), a standard
    simplification for this baseline. *)

type t

val create : Pitree_env.Env.t -> name:string -> t
val insert : t -> key:string -> value:string -> unit
val delete : t -> string -> bool
val find : t -> string -> string option
val count : t -> int
val height : t -> int

type stats = {
  searches : int;
  inserts : int;
  splits : int;
  unsafe_retained : int;
      (** ancestor latches retained because the child was unsafe — the
          latch-footprint metric for experiment E4 *)
}

val stats : t -> stats
