(** Key-space abstraction (paper section 2.1.1).

    A Pi-tree is parameterized by a search space. Each node is responsible
    for a {e subspace} of it; a node meets that responsibility by directly
    containing entries or by delegating parts of the subspace to siblings.
    The concrete engines instantiate this signature:

    - B-link trees: points are byte-string keys; subspaces are half-open
      key intervals [low, high).
    - TSB-trees: points are (key, time) pairs; subspaces are rectangles in
      key x time.
    - hB-trees: points are k-dimensional vectors; subspaces are "holey
      bricks" — a bounding box minus extracted boxes.

    [covers] powers the generic well-formedness checker (section 2.1.3,
    condition 4). Engines with complex spaces may implement it by point
    sampling. *)

module type S = sig
  type point
  type subspace

  val whole : subspace
  (** The entire search space (what the root is responsible for). *)

  val contains : subspace -> point -> bool

  val subset : subspace -> subspace -> bool
  (** [subset a b]: is [a] a subspace of [b]? *)

  val is_empty : subspace -> bool

  val covers : subspace list -> subspace -> bool
  (** [covers parts s]: does the union of [parts] contain [s]? *)

  val pp_point : Format.formatter -> point -> unit
  val pp_subspace : Format.formatter -> subspace -> unit
end

(** Half-open byte-string key intervals — the B-link instance, also reused
    by the baselines. [None] bounds are infinities. *)
module Interval : sig
  type bound = string option
  (** [None] as low = -inf; as high = +inf. *)

  type itv = { low : bound; high : bound }

  include S with type point = string and type subspace = itv

  val make : low:bound -> high:bound -> itv
  val compare_bound_low : bound -> bound -> int
  val compare_bound_high : bound -> bound -> int
end
