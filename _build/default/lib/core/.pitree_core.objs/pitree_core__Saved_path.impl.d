lib/core/saved_path.ml: Format List
