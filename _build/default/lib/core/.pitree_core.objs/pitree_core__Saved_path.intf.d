lib/core/saved_path.mli: Format
