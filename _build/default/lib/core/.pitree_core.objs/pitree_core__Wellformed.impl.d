lib/core/wellformed.ml: Format Hashtbl Keyspace List Printf Queue
