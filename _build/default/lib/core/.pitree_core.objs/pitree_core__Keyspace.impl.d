lib/core/keyspace.ml: Format List String
