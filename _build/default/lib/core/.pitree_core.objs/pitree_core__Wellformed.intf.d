lib/core/wellformed.mli: Format Keyspace
