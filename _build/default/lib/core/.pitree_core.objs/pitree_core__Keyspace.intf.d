lib/core/keyspace.mli: Format
