module type S = sig
  type point
  type subspace

  val whole : subspace
  val contains : subspace -> point -> bool
  val subset : subspace -> subspace -> bool
  val is_empty : subspace -> bool
  val covers : subspace list -> subspace -> bool
  val pp_point : Format.formatter -> point -> unit
  val pp_subspace : Format.formatter -> subspace -> unit
end

module Interval = struct
  type bound = string option
  type itv = { low : bound; high : bound }

  type point = string
  type subspace = itv

  let whole = { low = None; high = None }
  let make ~low ~high = { low; high }

  (* Low bounds: None is -infinity. *)
  let compare_bound_low a b =
    match (a, b) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some x, Some y -> String.compare x y

  (* High bounds: None is +infinity. *)
  let compare_bound_high a b =
    match (a, b) with
    | None, None -> 0
    | None, Some _ -> 1
    | Some _, None -> -1
    | Some x, Some y -> String.compare x y

  let contains { low; high } p =
    (match low with None -> true | Some l -> String.compare l p <= 0)
    && match high with None -> true | Some h -> String.compare p h < 0

  let is_empty { low; high } =
    match (low, high) with
    | Some l, Some h -> String.compare l h >= 0
    | _ -> false

  let subset a b =
    is_empty a
    || (compare_bound_low b.low a.low <= 0 && compare_bound_high a.high b.high <= 0)

  (* Exact for intervals: sort parts by low bound and sweep. *)
  let covers parts s =
    if is_empty s then true
    else begin
      let parts = List.filter (fun p -> not (is_empty p)) parts in
      let parts =
        List.sort (fun a b -> compare_bound_low a.low b.low) parts
      in
      (* [cursor] is the low end of the yet-uncovered remainder of [s]. *)
      let rec sweep cursor = function
        | [] -> false
        | p :: rest ->
            if compare_bound_low p.low cursor > 0 then false
            else
              (* p starts at or before cursor; it extends coverage to
                 p.high. *)
              let reach = p.high in
              if compare_bound_high s.high reach <= 0 then true
              else
                let new_cursor =
                  match reach with
                  | None -> assert false (* covered above *)
                  | Some h -> (Some h : bound)
                in
                if compare_bound_low new_cursor cursor > 0 then sweep new_cursor rest
                else sweep cursor rest
      in
      sweep s.low parts
    end

  let pp_point ppf p = Format.fprintf ppf "%S" p

  let pp_bound inf ppf = function
    | None -> Format.pp_print_string ppf inf
    | Some s -> Format.fprintf ppf "%S" s

  let pp_subspace ppf { low; high } =
    Format.fprintf ppf "[%a,%a)" (pp_bound "-inf") low (pp_bound "+inf") high
end
