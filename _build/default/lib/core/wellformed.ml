type error = { node : int; condition : int; message : string }

type report = { nodes_visited : int; levels : int; errors : error list }

let ok r = r.errors = []

let pp_report ppf r =
  if ok r then
    Format.fprintf ppf "well-formed: %d nodes, %d levels" r.nodes_visited r.levels
  else begin
    Format.fprintf ppf "NOT well-formed (%d nodes, %d levels):@," r.nodes_visited
      r.levels;
    List.iter
      (fun e ->
        Format.fprintf ppf "  node %d violates condition %d: %s@," e.node
          e.condition e.message)
      r.errors
  end

module Make (K : Keyspace.S) = struct
  type node_view = {
    id : int;
    level : int;
    responsible : K.subspace;
    directly_contained : K.subspace;
    index_terms : (K.subspace * int) list;
    sibling_terms : (K.subspace * int) list;
  }

  let check ~root ~read =
    let errors = ref [] in
    let err node condition fmt =
      Format.kasprintf
        (fun message -> errors := { node; condition; message } :: !errors)
        fmt
    in
    let visited : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let max_level = ref 0 in
    (* Walk breadth-first. [claimed] is the space the referencing term says
       this node answers for (the whole space at the root). *)
    let queue = Queue.create () in
    Queue.add (root, K.whole, `Root) queue;
    let visit_count = ref 0 in
    while not (Queue.is_empty queue) do
      let pid, claimed, origin = Queue.pop queue in
      match read pid with
      | None ->
          let from =
            match origin with
            | `Root -> "as root"
            | `Index p -> Printf.sprintf "via index term in %d" p
            | `Sibling p -> Printf.sprintf "via sibling term in %d" p
          in
          err pid 1 "pointer (%s) reaches a de-allocated page" from
      | Some view ->
          if view.level > !max_level then max_level := view.level;
          (* Per-reference checks run on every path to the node (clipped
             children have several); the structural per-node checks run
             once. *)
          let first_visit = not (Hashtbl.mem visited pid) in
          Hashtbl.replace visited pid ();
          if first_visit then incr visit_count;
          (* Conditions 2/3/6, referenced-node side: the term's space must
             be one the node is responsible for. *)
          if not (K.subset claimed view.responsible) then
            err pid
              (match origin with `Root -> 6 | `Index _ -> 3 | `Sibling _ -> 2)
              "referenced for %a but only responsible for %a" K.pp_subspace
              claimed K.pp_subspace view.responsible;
          if first_visit then begin
            (* Condition 1: the node meets its responsibility, directly or
               by delegation. *)
            let delegated = List.map fst view.sibling_terms in
            if not (K.covers (view.directly_contained :: delegated) view.responsible)
            then
              err pid 1
                "responsible space %a not covered by directly-contained %a + %d sibling terms"
                K.pp_subspace view.responsible K.pp_subspace
                view.directly_contained
                (List.length view.sibling_terms);
            (* Condition 2, containing-node side: a sibling term describes a
               subspace of its containing node. *)
            List.iter
              (fun (space, _) ->
                if not (K.subset space view.responsible) then
                  err pid 2 "sibling term space %a escapes responsibility %a"
                    K.pp_subspace space K.pp_subspace view.responsible)
              view.sibling_terms;
            (* Condition 5: level 0 nodes are data nodes (have no index
               terms); index nodes live above. *)
            if view.level = 0 && view.index_terms <> [] then
              err pid 5 "data node carries %d index terms"
                (List.length view.index_terms);
            (* Note: an index node with NO index terms is legal as long as
               its sibling terms cover its space (condition 4 below) — it
               can arise in hB-trees when a split delegates every child
               away; searches simply side-step through it. *)
            (* Condition 4: index+sibling terms cover the directly
               contained space. *)
            if view.level > 0 then begin
              let parts =
                List.map fst view.index_terms @ List.map fst view.sibling_terms
              in
              if not (K.covers parts view.directly_contained) then
                err pid 4
                  "index+sibling terms do not cover directly contained %a"
                  K.pp_subspace view.directly_contained
            end;
            (* Children must be one level down; siblings at the same
               level. *)
            List.iter
              (fun (space, child) ->
                match read child with
                | None -> err pid 3 "index term reaches de-allocated page %d" child
                | Some c ->
                    if c.level <> view.level - 1 then
                      err pid 3 "index term to %d crosses levels (%d -> %d)"
                        child view.level c.level;
                    Queue.add (child, space, `Index pid) queue)
              view.index_terms;
            List.iter
              (fun (space, sib) ->
                match read sib with
                | None ->
                    err pid 2 "sibling term reaches de-allocated page %d" sib
                | Some s ->
                    if s.level <> view.level then
                      err pid 2 "sibling term to %d crosses levels" sib;
                    Queue.add (sib, space, `Sibling pid) queue)
              view.sibling_terms
          end
    done;
    (* Condition 6 (root responsibility for the whole space) was seeded into
       the walk; additionally the root must exist. *)
    (match read root with
    | None -> err root 6 "root is de-allocated"
    | Some _ -> ());
    { nodes_visited = !visit_count; levels = !max_level + 1; errors = List.rev !errors }
end
