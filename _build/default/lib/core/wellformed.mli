(** Generic Pi-tree well-formedness checker (paper section 2.1.3).

    An engine exposes each node as a {!node_view}; the checker walks the
    whole structure from the root and verifies the six conditions:

    + each node is responsible for a subspace of the search space;
    + each sibling term describes a subspace of its containing node for
      which the referenced node is responsible;
    + each index term describes a subspace of the index node for which the
      referenced node is responsible;
    + the union of index-term and sibling-term spaces contains the space an
      index node is responsible for;
    + the lowest-level nodes are data nodes;
    + a root exists that is responsible for the entire search space.

    Plus the pointer rule: no pointer may reach a de-allocated node.

    Responsibility is reconstructed during the walk: the root is responsible
    for the whole space; a node reached by a term is responsible for (at
    least) the term's space. With clipping (hB-trees) a node can be reached
    from several parents; its responsibility is then checked against each
    referencing term independently.

    The checker is for tests, the CLI [verify] command and experiment E5;
    it takes no latches and must run on a quiesced tree. *)

type error = { node : int; condition : int; message : string }

type report = {
  nodes_visited : int;
  levels : int;
  errors : error list;
}

val pp_report : Format.formatter -> report -> unit
val ok : report -> bool

module Make (K : Keyspace.S) : sig
  type node_view = {
    id : int;
    level : int;
    responsible : K.subspace;
        (** the space the node is responsible for, directly or through
            delegation to siblings *)
    directly_contained : K.subspace;
        (** the space for which the node holds entries itself *)
    index_terms : (K.subspace * int) list;  (** (space, child pid) *)
    sibling_terms : (K.subspace * int) list;  (** (space, sibling pid) *)
  }

  val check : root:int -> read:(int -> node_view option) -> report
  (** [read pid] returns [None] for a de-allocated page — reaching one via
      any term is an error. Checks per reference: the term's space is a
      subspace of the referenced node's [responsible] space; and per node:
      [directly_contained] plus the sibling-term spaces cover [responsible],
      sibling-term spaces stay inside [responsible], and (for index nodes)
      index+sibling terms cover [directly_contained]. *)
end
