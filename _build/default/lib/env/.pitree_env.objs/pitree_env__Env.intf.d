lib/env/env.mli: Pitree_lock Pitree_storage Pitree_txn Pitree_wal
