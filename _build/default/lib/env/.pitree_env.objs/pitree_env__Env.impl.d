lib/env/env.ml: Buffer Fun List Mutex Pitree_lock Pitree_storage Pitree_sync Pitree_txn Pitree_util Pitree_wal Queue
