(** On-page layout of B-link Pi-tree nodes.

    Every tree node (leaf or index) reserves {b slot 0} for its {e fence
    cell}, which encodes the upper bound of the space the node directly
    contains ([None] = +infinity, i.e. the rightmost node of its level). The
    node's sibling term (paper section 2.1.1) is the pair (fence, side
    pointer): "the space at and above my fence is delegated to the node my
    side pointer references".

    Slots 1.. hold the node's {e entries}, sorted strictly by key:
    - leaf (level 0): (key, value) records;
    - index (level >= 1): (separator, child pid) index terms. A term
      (k, c) means child [c] is approximately responsible for keys >= [k]
      within this node (section 2.2.1); the leftmost term of a level uses
      the empty separator [""].

    This module is pure layout: no latching, no logging. Mutations happen
    via [Page_op]s built from the encoders here. *)

module Page = Pitree_storage.Page

(** {2 Fence}

    The fence cell records three bounds ([None] = infinity):
    - [low]: lower bound of the node's space (never changes after creation,
      except that the root's is -inf);
    - [high]: upper bound of the {e directly contained} space — the
      delegation boundary, moved down by splits and up by consolidations;
    - [resp_high]: upper bound of the space the node is {e responsible} for
      (paper section 2.1.1) — what it answers for, directly or through its
      sibling chain. Set at creation; extended by consolidation when the
      node absorbs a contained sibling's responsibility.

    So: directly contained = [low, high); responsible = [low, resp_high);
    the sibling term = ([high, resp_high), side pointer). *)

type fence = {
  low : string option;
  high : string option;
  resp_high : string option;
}

val fence_cell : fence -> string
val fence : Page.t -> fence
val whole_fence : fence
(** Root fence: responsible for everything. *)

val contains : Page.t -> string -> bool
(** Does the node directly contain [key] (key < high)? (Arrival at the node
    already implies [key >= low].) *)

(** {2 Entries} *)

val entry_cell : key:string -> payload:string -> string
val entry_of_cell : string -> string * string

val entry_count : Page.t -> int
val entry : Page.t -> int -> string * string
(** [entry p i] decodes the [i]-th entry (0-based among entries; slot
    [i+1]). *)

val slot_of_entry : int -> int
(** Entry index -> page slot (adds 1 for the fence). *)

(** {2 Search} *)

val find : Page.t -> string -> [ `Found of int | `Not_found of int ]
(** Binary search among entries. [`Found i]: entry [i] has exactly this
    key. [`Not_found i]: the key would be inserted at entry position [i]. *)

val floor_entry : Page.t -> string -> int option
(** Index of the entry with the largest key [<=] the argument (the index
    term to follow during descent). [None] if all entries order above the
    key. *)

(** {2 Index terms} *)

val index_term_cell : sep:string -> child:int -> string
val index_term : Page.t -> int -> string * int
(** [index_term p i] is the [i]-th entry decoded as (separator, child). *)

val find_child_term : Page.t -> int -> int option
(** Entry index of the index term whose child pointer equals the given pid
    (used by Verify Split, section 5.3). *)

(** {2 Leaf records} *)

val record_cell : key:string -> value:string -> string
val record : Page.t -> int -> string * string

(** {2 Node-level helpers} *)

val split_point : Page.t -> int
(** Entry index at which to split so the byte payload divides about
    evenly; guaranteed in [1, entry_count - 1] (callers must ensure the node
    has at least 2 entries). *)

val utilization : Page.t -> float
(** Fraction of the page's payload capacity in use. *)
