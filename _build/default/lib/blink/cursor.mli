(** Forward cursors over a B-link Pi-tree.

    A cursor is positioned between records and moves forward in key order,
    walking the leaf level through sibling pointers — so it observes
    exactly the intermediate states the Pi-tree guarantees are well-formed,
    and it keeps working while splits, postings and consolidations run
    underneath it.

    Positioning is remembered as (leaf pid, page LSN, last key): on [next],
    if the leaf's state identifier is unchanged the cursor resumes in
    place (section 5.2's saved-state discipline); otherwise it re-seeks the
    last key — so a cursor never misses a record that was present for the
    whole scan, and never returns a key twice. Records inserted or deleted
    concurrently may or may not be observed (ordinary cursor stability).

    Cursors take no locks; each step is latch-consistent. *)

type t

val seek : Blink.t -> string -> t
(** Position before the first record with key >= the argument. *)

val first : Blink.t -> t
(** Position before the smallest record. *)

val next : t -> (string * string) option
(** The next record in key order, advancing the cursor; [None] at the end.
    The cursor stays usable after [None] (new larger keys become
    visible). *)

val peek : t -> (string * string) option
(** Like [next] without advancing. *)

val close : t -> unit
(** Release the cursor's resources (idempotent; cursors hold no latches
    between calls, so this only drops the position). *)

val fold_until :
  t -> limit:int -> init:'a -> f:('a -> string -> string -> 'a) -> 'a
(** Apply [f] to at most [limit] successive records. *)
