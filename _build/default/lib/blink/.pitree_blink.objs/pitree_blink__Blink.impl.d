lib/blink/blink.ml: Atomic Format Hashtbl List Mutex Node Option Pitree_core Pitree_env Pitree_lock Pitree_storage Pitree_sync Pitree_txn Pitree_wal Printf String
