lib/blink/cursor.ml: Blink Node Pitree_storage
