lib/blink/blink.mli: Format Pitree_core Pitree_env Pitree_storage Pitree_txn
