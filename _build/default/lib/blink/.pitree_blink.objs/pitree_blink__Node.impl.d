lib/blink/node.ml: Buffer Pitree_storage Pitree_util Printf String
