lib/blink/cursor.mli: Blink
