lib/blink/node.mli: Pitree_storage
