module Page = Pitree_storage.Page
module Codec = Pitree_util.Codec

(* --- fence --- *)

type fence = {
  low : string option;
  high : string option;
  resp_high : string option;
}

let whole_fence = { low = None; high = None; resp_high = None }

let put_bound b = function
  | None -> Codec.put_u8 b 0
  | Some s ->
      Codec.put_u8 b 1;
      Codec.put_bytes b s

let get_bound r =
  match Codec.get_u8 r with
  | 0 -> None
  | 1 -> Some (Codec.get_bytes r)
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad fence bound tag %d" n))

let fence_cell { low; high; resp_high } =
  let b = Buffer.create 24 in
  put_bound b low;
  put_bound b high;
  put_bound b resp_high;
  Buffer.contents b

let fence page =
  let r = Codec.reader (Page.get page 0) in
  let low = get_bound r in
  let high = get_bound r in
  let resp_high = get_bound r in
  { low; high; resp_high }

let contains page key =
  match (fence page).high with
  | None -> true
  | Some high -> String.compare key high < 0

(* --- entries --- *)

let entry_cell ~key ~payload =
  let b = Buffer.create (String.length key + String.length payload + 8) in
  Codec.put_bytes b key;
  Codec.put_bytes b payload;
  Buffer.contents b

let entry_of_cell cell =
  let r = Codec.reader cell in
  let key = Codec.get_bytes r in
  let payload = Codec.get_bytes r in
  (key, payload)

let entry_count page = Page.slot_count page - 1

let slot_of_entry i = i + 1

let entry page i = entry_of_cell (Page.get page (slot_of_entry i))

let entry_key page i =
  (* Decode just the key (prefix of the cell). *)
  let cell = Page.get page (slot_of_entry i) in
  Codec.get_bytes (Codec.reader cell)

(* --- search --- *)

let find page key =
  let n = entry_count page in
  let rec bs lo hi =
    (* invariant: entries [0,lo) < key, entries [hi,n) > key *)
    if lo >= hi then `Not_found lo
    else
      let mid = (lo + hi) / 2 in
      let c = String.compare (entry_key page mid) key in
      if c = 0 then `Found mid else if c < 0 then bs (mid + 1) hi else bs lo mid
  in
  bs 0 n

let floor_entry page key =
  match find page key with
  | `Found i -> Some i
  | `Not_found 0 -> None
  | `Not_found i -> Some (i - 1)

(* --- index terms --- *)

let index_term_cell ~sep ~child =
  let b = Buffer.create (String.length sep + 8) in
  Codec.put_u32 b child;
  Buffer.contents b |> fun payload -> entry_cell ~key:sep ~payload

let index_term page i =
  let sep, payload = entry page i in
  (sep, Codec.get_u32 (Codec.reader payload))

let find_child_term page child =
  let n = entry_count page in
  let rec go i =
    if i >= n then None
    else
      let _, c = index_term page i in
      if c = child then Some i else go (i + 1)
  in
  go 0

(* --- leaf records --- *)

let record_cell ~key ~value = entry_cell ~key ~payload:value
let record = entry

(* --- helpers --- *)

(* Smallest s >= 1 such that the first s entries carry at least half the
   payload bytes; entries [s, n) move to the new sibling. *)
let split_point page =
  let n = entry_count page in
  assert (n >= 2);
  let size i = String.length (Page.get page (slot_of_entry i)) in
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + size i
  done;
  let half = !total / 2 in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc + size i in
      if acc >= half then i + 1 else go (i + 1) acc
  in
  min (n - 1) (go 0 0)

let utilization page =
  let capacity = Page.size page - Page.header_size in
  float_of_int (Page.used_space page) /. float_of_int capacity
