module Latch = Pitree_sync.Latch

type frame = {
  page : Page.t;
  latch : Latch.t;
  mutable dirty : bool;
  mutable pins : int;
  mutable tick : int;
}

type stats = { hits : int; misses : int; evictions : int; flushes : int }

type t = {
  disk : Disk.t;
  cap : int;
  table : (int, frame) Hashtbl.t;
  mu : Mutex.t;
  wal_flush : int -> unit;
  mutable clock : int;
  mutable dead : bool;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable flushes : int;
}

exception Pool_exhausted

let create ?(capacity = 1024) ~disk ~wal_flush () =
  if capacity < 8 then invalid_arg "Buffer_pool.create: capacity < 8";
  {
    disk;
    cap = capacity;
    table = Hashtbl.create capacity;
    mu = Mutex.create ();
    wal_flush;
    clock = 0;
    dead = false;
    hits = 0;
    misses = 0;
    evictions = 0;
    flushes = 0;
  }

let capacity t = t.cap

let check_alive t = if t.dead then failwith "Buffer_pool: used after crash"

(* Caller holds [t.mu]. *)
let write_out t fr =
  if fr.dirty then begin
    t.wal_flush (Page.lsn fr.page);
    t.disk.Disk.write (Page.id fr.page) (Page.raw fr.page);
    fr.dirty <- false;
    t.flushes <- t.flushes + 1
  end

(* Caller holds [t.mu]. Evict the least-recently-used unpinned frame. *)
let evict_one t =
  let victim = ref None in
  Hashtbl.iter
    (fun pid fr ->
      if fr.pins = 0 then
        match !victim with
        | Some (_, best) when best.tick <= fr.tick -> ()
        | _ -> victim := Some (pid, fr))
    t.table;
  match !victim with
  | None -> raise Pool_exhausted
  | Some (pid, fr) ->
      write_out t fr;
      Hashtbl.remove t.table pid;
      t.evictions <- t.evictions + 1

(* Caller holds [t.mu]. *)
let install t pid page =
  if Hashtbl.length t.table >= t.cap then evict_one t;
  let fr =
    {
      page;
      latch = Latch.create ~name:(Printf.sprintf "page-%d" pid) ();
      dirty = false;
      pins = 1;
      tick = t.clock;
    }
  in
  Hashtbl.replace t.table pid fr;
  fr

let pin_common t pid ~read =
  Mutex.lock t.mu;
  check_alive t;
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.table pid with
  | Some fr ->
      fr.pins <- fr.pins + 1;
      fr.tick <- t.clock;
      t.hits <- t.hits + 1;
      Mutex.unlock t.mu;
      fr
  | None -> (
      t.misses <- t.misses + 1;
      let build_and_install () =
        let page =
          if read then begin
            let buf = Bytes.make t.disk.Disk.page_size '\000' in
            t.disk.Disk.read pid buf;
            Page.of_bytes ~id:pid buf
          end
          else
            (* Freshly allocated page: pre-format minimally so Page accessors
               are safe until the caller's logged Format operation runs. *)
            Page.create ~size:t.disk.Disk.page_size ~id:pid ~kind:Page.Free
              ~level:0
        in
        install t pid page
      in
      match build_and_install () with
      | fr ->
          Mutex.unlock t.mu;
          fr
      | exception e ->
          Mutex.unlock t.mu;
          raise e)

let pin t pid = pin_common t pid ~read:true
let pin_new t pid = pin_common t pid ~read:false

let unpin t fr =
  Mutex.lock t.mu;
  assert (fr.pins > 0);
  fr.pins <- fr.pins - 1;
  Mutex.unlock t.mu

let mark_dirty fr = fr.dirty <- true

let flush_page t fr =
  Mutex.lock t.mu;
  check_alive t;
  write_out t fr;
  Mutex.unlock t.mu

let flush_all t =
  Mutex.lock t.mu;
  check_alive t;
  Hashtbl.iter (fun _ fr -> write_out t fr) t.table;
  Mutex.unlock t.mu

let crash t =
  Mutex.lock t.mu;
  Hashtbl.reset t.table;
  t.dead <- true;
  Mutex.unlock t.mu

let stats t =
  Mutex.lock t.mu;
  let s =
    { hits = t.hits; misses = t.misses; evictions = t.evictions; flushes = t.flushes }
  in
  Mutex.unlock t.mu;
  s
