type t = {
  page_size : int;
  read : int -> bytes -> unit;
  write : int -> bytes -> unit;
  sync : unit -> unit;
  close : unit -> unit;
  read_count : unit -> int;
  write_count : unit -> int;
}

let in_memory ~page_size =
  let store : (int, bytes) Hashtbl.t = Hashtbl.create 1024 in
  let mu = Mutex.create () in
  let reads = ref 0 and writes = ref 0 in
  let read pid buf =
    Mutex.lock mu;
    incr reads;
    match Hashtbl.find_opt store pid with
    | Some b ->
        Bytes.blit b 0 buf 0 page_size;
        Mutex.unlock mu
    | None ->
        Mutex.unlock mu;
        raise Not_found
  in
  let write pid buf =
    Mutex.lock mu;
    incr writes;
    (match Hashtbl.find_opt store pid with
    | Some b -> Bytes.blit buf 0 b 0 page_size
    | None -> Hashtbl.replace store pid (Bytes.sub buf 0 page_size));
    Mutex.unlock mu
  in
  {
    page_size;
    read;
    write;
    sync = (fun () -> ());
    close = (fun () -> ());
    read_count = (fun () -> !reads);
    write_count = (fun () -> !writes);
  }

let file ~page_size ~path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let mu = Mutex.create () in
  let reads = ref 0 and writes = ref 0 in
  let read pid buf =
    Mutex.lock mu;
    incr reads;
    let off = pid * page_size in
    let len = (Unix.fstat fd).Unix.st_size in
    if off + page_size > len then begin
      Mutex.unlock mu;
      raise Not_found
    end;
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    let rec fill pos =
      if pos < page_size then begin
        let n = Unix.read fd buf pos (page_size - pos) in
        if n = 0 then begin
          Mutex.unlock mu;
          raise Not_found
        end;
        fill (pos + n)
      end
    in
    fill 0;
    Mutex.unlock mu;
    (* A hole in the file (all zeroes) means the page was never written. *)
    if Bytes.get_uint16_le buf 0 = 0 then raise Not_found
  in
  let write pid buf =
    Mutex.lock mu;
    incr writes;
    ignore (Unix.lseek fd (pid * page_size) Unix.SEEK_SET);
    let rec push pos =
      if pos < page_size then
        let n = Unix.write fd buf pos (page_size - pos) in
        push (pos + n)
    in
    push 0;
    Mutex.unlock mu
  in
  {
    page_size;
    read;
    write;
    sync = (fun () -> Unix.fsync fd);
    close = (fun () -> Unix.close fd);
    read_count = (fun () -> !reads);
    write_count = (fun () -> !writes);
  }
