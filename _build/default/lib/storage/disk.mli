(** Durable page stores.

    A disk is the durable medium under the buffer pool: pages written here
    survive a crash; everything else does not. Two implementations:

    - {!in_memory}: a crash-faithful store for tests and benchmarks. Writes
      are durable immediately (the volatile layer in the system is the
      buffer pool above, which decides {e when} to write, honoring WAL).
    - {!file}: a real file via [Unix], for the persistence examples.

    Implementations are thread-safe. *)

type t = {
  page_size : int;
  read : int -> bytes -> unit;
      (** [read pid buf] fills [buf] with page [pid]'s durable image.
          Raises [Not_found] when the page was never written. *)
  write : int -> bytes -> unit;  (** durably store page [pid] *)
  sync : unit -> unit;
  close : unit -> unit;
  read_count : unit -> int;
  write_count : unit -> int;
}

val in_memory : page_size:int -> t

val file : page_size:int -> path:string -> t
(** Opens (creating if needed) [path]. Page [pid] lives at byte offset
    [pid * page_size]. A page that was never written reads back as all
    zeroes and is reported via [Not_found] (detected by a zero magic). *)
