lib/storage/buffer_pool.ml: Bytes Disk Hashtbl Mutex Page Pitree_sync Printf
