lib/storage/disk.ml: Bytes Hashtbl Mutex Unix
