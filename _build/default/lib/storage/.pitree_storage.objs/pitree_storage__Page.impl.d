lib/storage/page.ml: Array Bytes Char Format Int64 Pitree_util Printf String
