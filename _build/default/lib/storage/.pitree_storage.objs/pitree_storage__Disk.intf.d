lib/storage/disk.mli:
