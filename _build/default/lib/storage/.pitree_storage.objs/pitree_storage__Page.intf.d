lib/storage/page.mli: Format
