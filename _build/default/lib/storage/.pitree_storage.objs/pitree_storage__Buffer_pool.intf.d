lib/storage/buffer_pool.mli: Disk Page Pitree_sync
