let print ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line row =
    String.concat "  " (List.mapi (fun c cell -> pad cell (List.nth widths c)) row)
  in
  let rule = String.make (String.length (line header)) '-' in
  Printf.printf "\n== %s ==\n%s\n%s\n" title (line header) rule;
  List.iter (fun row -> print_endline (line row)) rows;
  flush stdout

let fmt_f v =
  if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else if v >= 100.0 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v
