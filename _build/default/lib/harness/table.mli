(** Plain-text aligned tables for the benchmark reports. *)

val print : title:string -> header:string list -> string list list -> unit
(** Renders to stdout with a title line, column alignment and a rule. *)

val fmt_f : float -> string
(** Compact float formatting (3 significant-ish digits, k/M suffixes). *)
