lib/harness/driver.ml: Domain Fmt Kv List Pitree_util String Unix Workload
