lib/harness/workload.ml: Char Int64 Option Pitree_util Printf String
