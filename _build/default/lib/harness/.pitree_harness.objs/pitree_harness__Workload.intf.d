lib/harness/workload.mli:
