lib/harness/kv.ml: Pitree_baseline Pitree_blink
