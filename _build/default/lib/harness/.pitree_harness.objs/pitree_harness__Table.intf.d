lib/harness/table.mli:
