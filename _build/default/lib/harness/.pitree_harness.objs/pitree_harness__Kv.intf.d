lib/harness/kv.mli: Pitree_baseline Pitree_blink
