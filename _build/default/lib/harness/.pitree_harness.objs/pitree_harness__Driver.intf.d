lib/harness/driver.mli: Format Kv Workload
