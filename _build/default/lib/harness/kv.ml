module type S = sig
  type t

  val engine_name : string
  val insert : t -> key:string -> value:string -> unit
  val delete : t -> string -> bool
  val find : t -> string -> string option
end

type instance = Inst : (module S with type t = 'a) * 'a -> instance

let name (Inst ((module M), _)) = M.engine_name
let insert (Inst ((module M), t)) ~key ~value = M.insert t ~key ~value
let delete (Inst ((module M), t)) key = M.delete t key
let find (Inst ((module M), t)) key = M.find t key

module Blink_kv = struct
  type t = Pitree_blink.Blink.t

  let engine_name = "pi-tree (b-link)"
  let insert t ~key ~value = Pitree_blink.Blink.insert t ~key ~value
  let delete t k = Pitree_blink.Blink.delete t k
  let find = Pitree_blink.Blink.find
end

module Coupling_kv = struct
  type t = Pitree_baseline.Bt_coupling.t

  let engine_name = "lock-coupling"
  let insert = Pitree_baseline.Bt_coupling.insert
  let delete = Pitree_baseline.Bt_coupling.delete
  let find = Pitree_baseline.Bt_coupling.find
end

module Treelatch_kv = struct
  type t = Pitree_baseline.Bt_treelatch.t

  let engine_name = "tree-latch (serial SMO)"
  let insert = Pitree_baseline.Bt_treelatch.insert
  let delete = Pitree_baseline.Bt_treelatch.delete
  let find = Pitree_baseline.Bt_treelatch.find
end

let blink t = Inst ((module Blink_kv), t)
let coupling t = Inst ((module Coupling_kv), t)
let treelatch t = Inst ((module Treelatch_kv), t)
