(** The multiattribute key space of the hB-tree: k-dimensional points,
    bricks (axis-aligned boxes) and holey bricks (a brick minus extracted
    bricks — paper section 2.2.3).

    Implements {!Pitree_core.Keyspace.S} so the generic well-formedness
    checker runs over hB-trees too. Exact containment/subset tests on holey
    bricks are awkward; [subset] and [covers] use deterministic Monte-Carlo
    sampling over the unit cube (documented, and sound for the test/bench
    workloads, which live in [0,1)^k). *)

type brick = { low : float array; high : float array }
(** Half-open box; [neg_infinity]/[infinity] bounds allowed. *)

type holey = { outer : brick; holes : brick list }

val dims : brick -> int
val whole_brick : int -> brick
val brick_contains : brick -> float array -> bool
val brick_subset : brick -> brick -> bool
val brick_intersects : brick -> brick -> bool
val brick_inter : brick -> brick -> brick
(** Intersection (may be empty). *)

val brick_is_empty : brick -> bool
val pp_brick : Format.formatter -> brick -> unit

val split_brick : brick -> dim:int -> coord:float -> brick * brick
(** (low side, high side). *)

module Make (D : sig
  val k : int
end) : Pitree_core.Keyspace.S with type point = float array and type subspace = holey
