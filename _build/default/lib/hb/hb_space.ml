module Rng = Pitree_util.Rng

type brick = { low : float array; high : float array }

type holey = { outer : brick; holes : brick list }

let dims b = Array.length b.low

let whole_brick k =
  { low = Array.make k neg_infinity; high = Array.make k infinity }

let brick_contains b p =
  let k = dims b in
  let rec go i = i >= k || (b.low.(i) <= p.(i) && p.(i) < b.high.(i) && go (i + 1)) in
  go 0

let brick_is_empty b =
  let k = dims b in
  let rec go i = i < k && (b.low.(i) >= b.high.(i) || go (i + 1)) in
  go 0

let brick_subset a b =
  brick_is_empty a
  ||
  let k = dims a in
  let rec go i = i >= k || (b.low.(i) <= a.low.(i) && a.high.(i) <= b.high.(i) && go (i + 1)) in
  go 0

let brick_inter a b =
  {
    low = Array.init (dims a) (fun i -> max a.low.(i) b.low.(i));
    high = Array.init (dims a) (fun i -> min a.high.(i) b.high.(i));
  }

let brick_intersects a b = not (brick_is_empty (brick_inter a b))

let pp_brick ppf b =
  let bound v = if v = infinity then "+inf" else if v = neg_infinity then "-inf" else Printf.sprintf "%.3f" v in
  Format.fprintf ppf "[%s]"
    (String.concat "; "
       (List.init (dims b) (fun i -> Printf.sprintf "%s,%s" (bound b.low.(i)) (bound b.high.(i)))))

let split_brick b ~dim ~coord =
  let lo = { low = Array.copy b.low; high = Array.copy b.high } in
  let hi = { low = Array.copy b.low; high = Array.copy b.high } in
  lo.high.(dim) <- coord;
  hi.low.(dim) <- coord;
  (lo, hi)

module Make (D : sig
  val k : int
end) =
struct
  type point = float array
  type subspace = holey

  let whole = { outer = whole_brick D.k; holes = [] }

  let contains { outer; holes } p =
    brick_contains outer p && not (List.exists (fun h -> brick_contains h p) holes)

  let is_empty { outer; holes } =
    brick_is_empty outer
    || List.exists (fun h -> brick_subset outer h) holes

  (* Deterministic sampler over a brick, clamped to the unit cube where a
     bound is infinite (test workloads live in [0,1)^k). *)
  let sample_brick rng b =
    Array.init D.k (fun i ->
        let lo = if b.low.(i) = neg_infinity then 0.0 else b.low.(i) in
        let hi = if b.high.(i) = infinity then 1.0 else b.high.(i) in
        if hi <= lo then lo else lo +. Rng.float rng (hi -. lo))

  let samples = 256

  let subset a b =
    is_empty a
    ||
    let rng = Rng.create 0x5B5EDL in
    let ok = ref true in
    let tries = ref 0 in
    while !ok && !tries < samples do
      incr tries;
      let p = sample_brick rng a.outer in
      if contains a p && not (contains b p) then ok := false
    done;
    !ok

  let covers parts s =
    is_empty s
    ||
    let rng = Rng.create 0xC0FFEEL in
    let ok = ref true in
    let tries = ref 0 in
    while !ok && !tries < samples do
      incr tries;
      let p = sample_brick rng s.outer in
      if contains s p && not (List.exists (fun part -> contains part p) parts) then
        ok := false
    done;
    !ok

  let pp_point ppf p =
    Format.fprintf ppf "(%s)"
      (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%.3f") p)))

  let pp_subspace ppf { outer; holes } =
    Format.fprintf ppf "%a minus %d holes" pp_brick outer (List.length holes)
end
