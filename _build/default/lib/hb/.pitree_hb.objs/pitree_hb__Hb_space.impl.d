lib/hb/hb_space.ml: Array Format List Pitree_util Printf String
