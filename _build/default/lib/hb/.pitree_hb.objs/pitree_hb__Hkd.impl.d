lib/hb/hkd.ml: Array Buffer Format Hb_space List Pitree_util Printf
