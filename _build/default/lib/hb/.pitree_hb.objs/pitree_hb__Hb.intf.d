lib/hb/hb.mli: Pitree_core Pitree_env
