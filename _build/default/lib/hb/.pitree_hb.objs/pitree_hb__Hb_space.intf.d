lib/hb/hb_space.mli: Format Pitree_core
