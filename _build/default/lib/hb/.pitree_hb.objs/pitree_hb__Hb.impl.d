lib/hb/hb.ml: Array Atomic Buffer Hashtbl Hb_space Hkd List Mutex Option Pitree_core Pitree_env Pitree_storage Pitree_sync Pitree_txn Pitree_util Pitree_wal Printf String
