lib/hb/hkd.mli: Format Hb_space
