module Codec = Pitree_util.Codec
open Hb_space

type target = Here | Sibling of int | Child of int

type t =
  | Leaf of target
  | Split of { dim : int; coord : float; left : t; right : t }

let rec encode_into b = function
  | Leaf Here -> Codec.put_u8 b 0
  | Leaf (Sibling s) ->
      Codec.put_u8 b 1;
      Codec.put_u32 b s
  | Leaf (Child c) ->
      Codec.put_u8 b 2;
      Codec.put_u32 b c
  | Split { dim; coord; left; right } ->
      Codec.put_u8 b 3;
      Codec.put_u8 b dim;
      Codec.put_float b coord;
      encode_into b left;
      encode_into b right

let encode t =
  let b = Buffer.create 64 in
  encode_into b t;
  Buffer.contents b

let rec decode_from r =
  match Codec.get_u8 r with
  | 0 -> Leaf Here
  | 1 -> Leaf (Sibling (Codec.get_u32 r))
  | 2 -> Leaf (Child (Codec.get_u32 r))
  | 3 ->
      let dim = Codec.get_u8 r in
      let coord = Codec.get_float r in
      let left = decode_from r in
      let right = decode_from r in
      Split { dim; coord; left; right }
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad kd tag %d" n))

let decode s = decode_from (Codec.reader s)

let rec size = function
  | Leaf _ -> 1
  | Split { left; right; _ } -> size left + size right

let rec walk t p =
  match t with
  | Leaf tgt -> tgt
  | Split { dim; coord; left; right } ->
      if p.(dim) < coord then walk left p else walk right p

let rec leaf_regions t brick =
  match t with
  | Leaf tgt -> [ (brick, tgt) ]
  | Split { dim; coord; left; right } ->
      let lo, hi = split_brick brick ~dim ~coord in
      leaf_regions left lo @ leaf_regions right hi

let rec replace_target t ~from ~to_ =
  match t with
  | Leaf tgt -> if tgt = from then Leaf to_ else t
  | Split s ->
      Split
        {
          s with
          left = replace_target s.left ~from ~to_;
          right = replace_target s.right ~from ~to_;
        }

let rec simplify = function
  | Leaf _ as l -> l
  | Split { dim; coord; left; right } -> (
      match (simplify left, simplify right) with
      | (Leaf a as l), Leaf b when a = b -> l
      | left, right -> Split { dim; coord; left; right })

let rec targets acc = function
  | Leaf tgt -> tgt :: acc
  | Split { left; right; _ } -> targets (targets acc left) right

let children t =
  targets [] t
  |> List.filter_map (function Child c -> Some c | Here | Sibling _ -> None)
  |> List.sort_uniq compare

let siblings t =
  targets [] t
  |> List.filter_map (function Sibling s -> Some s | Here | Child _ -> None)
  |> List.sort_uniq compare

(* Build the minimal split path inside [region] isolating [brick], putting
   [inner] there and [outer] on every shaved side. *)
let isolate ~region ~brick ~inner ~outer =
  let k = dims region in
  let rec go region dim =
    if dim >= k then inner
    else begin
      let after_low =
        if brick.low.(dim) > region.low.(dim) then
          let _, hi = split_brick region ~dim ~coord:brick.low.(dim) in
          Split { dim; coord = brick.low.(dim); left = Leaf outer; right = go_high hi dim }
        else go_high region dim
      in
      after_low
    end
  and go_high region dim =
    if brick.high.(dim) < region.high.(dim) then
      let lo, _ = split_brick region ~dim ~coord:brick.high.(dim) in
      Split { dim; coord = brick.high.(dim); left = go lo (dim + 1); right = Leaf outer }
    else go region (dim + 1)
  in
  go region 0

let carve t ~region ~brick target =
  let rec go t region brick =
    if brick_is_empty brick then t
    else
      match t with
      | Split { dim; coord; left; right } ->
          let rlo, rhi = split_brick region ~dim ~coord in
          if brick.high.(dim) <= coord then
            Split { dim; coord; left = go left rlo brick; right }
          else if brick.low.(dim) >= coord then
            Split { dim; coord; left; right = go right rhi brick }
          else begin
            (* The brick straddles the split: clip it (section 3.2.2). *)
            let blo, bhi = split_brick brick ~dim ~coord in
            Split { dim; coord; left = go left rlo blo; right = go right rhi bhi }
          end
      | Leaf (Sibling _) ->
          (* This space is already delegated away; the sibling, not this
             node, answers for it — never carve over it. *)
          t
      | Leaf old ->
          let piece = brick_inter brick region in
          if brick_is_empty piece then t
          else if brick_subset region piece then Leaf target
          else isolate ~region ~brick:piece ~inner:(Leaf target) ~outer:old
  in
  go t region brick

let prune t ~region ~box =
  let rec go t region =
    match t with
    | Leaf _ -> t
    | Split { dim; coord; left; right } ->
        let rlo, rhi = split_brick region ~dim ~coord in
        let lo_live = brick_intersects rlo box in
        let hi_live = brick_intersects rhi box in
        if lo_live && hi_live then
          Split { dim; coord; left = go left rlo; right = go right rhi }
        else if lo_live then go left rlo
        else go right rhi
  in
  go t region

let region_of_target t brick target =
  let rec go t brick =
    match t with
    | Leaf tgt -> if tgt = target then Some brick else None
    | Split { dim; coord; left; right } ->
        let lo, hi = split_brick brick ~dim ~coord in
        (match go left lo with Some r -> Some r | None -> go right hi)
  in
  go t brick

let rec pp ppf = function
  | Leaf Here -> Format.pp_print_string ppf "."
  | Leaf (Sibling s) -> Format.fprintf ppf "S%d" s
  | Leaf (Child c) -> Format.fprintf ppf "C%d" c
  | Split { dim; coord; left; right } ->
      Format.fprintf ppf "(d%d<%.3f %a %a)" dim coord pp left pp right
