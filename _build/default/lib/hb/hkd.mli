(** The intra-node kd-trees of the hB-tree (paper section 2.2.3, Figure 2).

    Each hB node carries a little kd-tree describing how its brick is
    partitioned among: space whose contents live {e here}, space delegated
    to {e sibling} nodes (the Pi-tree sibling terms — these replace the
    "external markers" of the original hB paper, as this paper prescribes),
    and — in index nodes — space assigned to {e child} nodes.

    The tree is serialized into one page cell; structure changes replace it
    with a logged whole-cell operation (physiological logging at kd-tree
    granularity). *)

type target = Here | Sibling of int | Child of int

type t =
  | Leaf of target
  | Split of { dim : int; coord : float; left : t; right : t }
      (** [left]: points with [p.(dim) < coord]. *)

val encode : t -> string
val decode : string -> t

val size : t -> int
(** Number of leaves. *)

val walk : t -> float array -> target
(** Route a point to its target. *)

val leaf_regions : t -> Hb_space.brick -> (Hb_space.brick * target) list
(** All (region, target) leaves, given the node's brick. *)

val replace_target : t -> from:target -> to_:target -> t
(** Substitute every occurrence. *)

val simplify : t -> t
(** Collapse splits whose two children are leaves with the same target
    (arises after consolidation folds delegated space back to [Here], and
    after clipped terms reroute to one child). Routing is unchanged. *)

val children : t -> int list
(** Distinct child pids, in-order. *)

val siblings : t -> int list

val carve : t -> region:Hb_space.brick -> brick:Hb_space.brick -> target -> t
(** [carve kd ~region ~brick target] splices [target] over [brick] into the
    tree (whose root covers [region]): descends existing splits (CLIPPING
    the brick when it straddles one — the clipped target then appears under
    both sides, paper section 3.2.2) and at each reached leaf builds the
    minimal split path isolating [brick], preserving the old target on the
    remainder. *)

val prune : t -> region:Hb_space.brick -> box:Hb_space.brick -> t
(** Restrict the tree (rooted over [region]) to [box]: splits outside the
    box collapse to the surviving side; leaves keep their targets. A child
    whose region straddles the box boundary survives in BOTH prunings of
    the two halves — this is how a hyperplane index-node split clips index
    terms (paper section 3.2.2). *)

val region_of_target : t -> Hb_space.brick -> target -> Hb_space.brick option
(** The region of the (unique) leaf carrying this target, if any. Used to
    recover a sibling's delegated brick during index-term posting. *)

val pp : Format.formatter -> t -> unit
