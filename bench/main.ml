(* Benchmark harness: regenerates every experiment of EXPERIMENTS.md.
   The paper (Lomet & Salzberg, SIGMOD '92) is a design paper whose only
   figures are structural (Figures 1 and 2) and whose performance claims are
   qualitative; each experiment below turns one claim or figure into a
   measured table. Run `dune exec bench/main.exe -- --help` for the list. *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Btc = Pitree_baseline.Bt_coupling
module Btl = Pitree_baseline.Bt_treelatch
module Tsb = Pitree_tsb.Tsb
module Hb = Pitree_hb.Hb
module Latch = Pitree_sync.Latch
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Log_manager = Pitree_wal.Log_manager
module Recovery = Pitree_wal.Recovery
module Crash_point = Pitree_util.Crash_point
module Wellformed = Pitree_core.Wellformed
module Kv = Pitree_harness.Kv
module Workload = Pitree_harness.Workload
module Driver = Pitree_harness.Driver
module Endure = Pitree_harness.Endure
module Churn = Pitree_harness.Churn
module Table = Pitree_harness.Table
module Rng = Pitree_util.Rng
module Zipf = Pitree_util.Zipf
module Combine = Pitree_combine.Combine
module Page = Pitree_storage.Page
module Disk = Pitree_storage.Disk
module Buffer_pool = Pitree_storage.Buffer_pool
module Engine = Pitree_core.Engine
module Blink_engine = Pitree_blink.Blink_engine
module Tsb_engine = Pitree_tsb.Tsb_engine
module Mvcc = Pitree_txn.Mvcc
module Lock_manager = Pitree_lock.Lock_manager
module Clock = Pitree_sync.Clock

let mk_env ?(page_size = 1024) ?(pool = 32768) ?(page_oriented_undo = false)
    ?(consolidation = true) ?log_path ?(wal_group_commit = true)
    ?ckpt_log_bytes ?(olc_reads = true) () =
  Env.create
    {
      Env.default_config with
      page_size;
      pool_capacity = pool;
      page_oriented_undo;
      consolidation;
      log_path;
      wal_group_commit;
      ckpt_log_bytes;
      olc_reads;
    }

(* A file-backed WAL in a scratch location, so force counts are real fsyncs
   (an in-memory log advances durability without forcing anything). *)
let with_file_log f =
  let log_path = Filename.temp_file "pitree_bench" ".wal" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove log_path with Sys_error _ -> ());
      try Sys.remove (log_path ^ ".ckpt") with Sys_error _ -> ())
    (fun () -> f log_path)

type engine = Eblink | Ecoupling | Etreelatch

let engines = [ Eblink; Ecoupling; Etreelatch ]

let instance engine =
  let env = mk_env () in
  let inst =
    match engine with
    | Eblink -> Kv.blink (Blink.create env ~name:"bench")
    | Ecoupling -> Kv.coupling (Btc.create env ~name:"bench")
    | Etreelatch -> Kv.treelatch (Btl.create env ~name:"bench")
  in
  (env, inst)

let fmt_ops = Table.fmt_f

(* ------------------------------------------------------------------ *)
(* E1-E3: throughput scaling across engines (the Srinivasan & Carey
   claim: B-link-style approaches have the highest concurrency).        *)
(* ------------------------------------------------------------------ *)

let scaling_experiment ~title ~spec ~preload ~ops =
  let domain_counts = [ 1; 2; 4; 8 ] in
  let rows =
    List.concat_map
      (fun engine ->
        List.map
          (fun domains ->
            let env, inst = instance engine in
            Driver.preload inst spec ~n:preload;
            ignore (Env.drain env);
            let r = Driver.run ~domains ~ops_per_domain:(ops / domains) ~seed:42L inst spec in
            ignore (Env.drain env);
            [
              Kv.name inst;
              string_of_int domains;
              fmt_ops r.Driver.ops_per_s;
              Printf.sprintf "%.0f" r.Driver.mean_ns;
              string_of_int r.Driver.p99_ns;
            ])
          domain_counts)
      engines
  in
  Table.print ~title ~header:[ "engine"; "domains"; "ops/s"; "mean ns"; "p99 ns" ] rows

let e1 () =
  scaling_experiment
    ~title:"E1: insert-heavy throughput vs domains (100% insert, uniform keys)"
    ~spec:(Workload.spec ~key_space:200_000 ~read_pct:0 ~insert_pct:100 ~delete_pct:0 ())
    ~preload:5_000 ~ops:24_000

let e2 () =
  scaling_experiment
    ~title:"E2: search-only throughput vs domains (100% read, uniform keys)"
    ~spec:(Workload.spec ~key_space:20_000 ~read_pct:100 ())
    ~preload:20_000 ~ops:24_000

let e3 () =
  scaling_experiment
    ~title:"E3: mixed 70/20/10 read/insert/delete, zipf(0.9) skew"
    ~spec:
      (Workload.spec ~key_space:50_000 ~read_pct:70 ~insert_pct:20 ~delete_pct:10
         ~dist:(Workload.Zipf 0.9) ())
    ~preload:10_000 ~ops:24_000

(* ------------------------------------------------------------------ *)
(* E4: latch footprint of structure changes — decomposed atomic actions
   hold exclusive latches on O(1) nodes; path-coupling and tree-latch
   baselines hold them far longer (paper innovation 3).                 *)
(* ------------------------------------------------------------------ *)

let e4 () =
  let spec = Workload.spec ~key_space:200_000 ~read_pct:0 ~insert_pct:100 ~delete_pct:0 () in
  let ops = 20_000 in
  let rows =
    List.map
      (fun engine ->
        let env, inst = instance engine in
        Driver.preload inst spec ~n:2_000;
        ignore (Env.drain env);
        Latch.reset_global_stats ();
        let r = Driver.run ~domains:4 ~ops_per_domain:(ops / 4) ~seed:7L inst spec in
        ignore (Env.drain env);
        let s = Latch.global_stats () in
        let per_op v = float_of_int v /. float_of_int ops in
        [
          Kv.name inst;
          fmt_ops r.Driver.ops_per_s;
          Printf.sprintf "%.2f" (per_op s.Latch.acquisitions);
          Printf.sprintf "%.3f" (per_op s.Latch.contended);
          Printf.sprintf "%.0f" (per_op s.Latch.wait_ns);
          Printf.sprintf "%.0f" (per_op s.Latch.hold_ns);
        ])
      engines
  in
  Table.print
    ~title:
      "E4: latch footprint under insert load, 4 domains (per-op latch \
       acquisitions / contended / wait ns / X+U hold ns)"
    ~header:[ "engine"; "ops/s"; "acq/op"; "cont/op"; "wait ns/op"; "hold ns/op" ]
    rows

(* ------------------------------------------------------------------ *)
(* E5: crash matrix — crash at every named point inside/between atomic
   actions; recovery takes no special measures; completion is lazy
   (paper innovation 4, section 5.1).                                   *)
(* ------------------------------------------------------------------ *)

let e5 () =
  let points =
    [
      ("blink.split.linked", 5);
      ("blink.split.committed", 5);
      ("blink.root.grown", 1);
      ("blink.post.latched", 5);
      ("blink.post.updated", 5);
      ("blink.post.done", 5);
    ]
  in
  let rows =
    List.map
      (fun (point, after) ->
        Crash_point.disarm_all ();
        let env = mk_env ~page_size:256 () in
        let t = Blink.create env ~name:"t" in
        Crash_point.arm point ~after;
        let crashed = ref false in
        (try
           for i = 0 to 3_999 do
             Blink.insert t ~key:(Printf.sprintf "key%06d" i) ~value:"v"
           done
         with Crash_point.Crash_requested _ -> crashed := true);
        Crash_point.disarm_all ();
        (* Simulate the worst case: the log tail happened to reach disk at
           the instant of the failure, so interrupted atomic actions leave
           durable work that recovery must roll back. *)
        Log_manager.flush_all (Env.log env);
        Env.crash env;
        let t0 = Unix.gettimeofday () in
        let report = Env.recover env in
        let recovery_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        let t = Option.get (Blink.open_existing env ~name:"t") in
        let wf = Wellformed.ok (Blink.verify t) in
        (* Count lazy completions triggered by post-recovery searches. *)
        Blink.reset_stats t;
        for i = 0 to 3_999 do
          ignore (Blink.find t (Printf.sprintf "key%06d" i))
        done;
        ignore (Env.drain env);
        let s = Blink.stats t in
        [
          point;
          (if !crashed then "yes" else "no-crash");
          Printf.sprintf "%.1f" recovery_ms;
          string_of_int report.Recovery.redone;
          string_of_int (List.length report.Recovery.loser_txns);
          (if wf then "yes" else "NO");
          string_of_int s.Blink.side_traversals;
          string_of_int s.Blink.postings_completed;
        ])
      points
  in
  Table.print
    ~title:
      "E5: crash injection matrix (recovery does no SMO-specific work; \
       interrupted changes complete lazily via later searches)"
    ~header:
      [ "crash point"; "crashed"; "recov ms"; "redone"; "losers"; "well-formed";
        "side-steps after"; "lazy completions" ]
    rows

(* ------------------------------------------------------------------ *)
(* E6: CNS vs CP invariants (section 5.2): consolidation reclaims space
   at the cost of latch coupling.                                        *)
(* ------------------------------------------------------------------ *)

let e6 () =
  let run consolidation =
    let env = mk_env ~page_size:512 ~consolidation () in
    let t = Blink.create env ~name:"t" in
    let n = 8_000 in
    for i = 0 to n - 1 do
      Blink.insert t ~key:(Printf.sprintf "key%06d" i) ~value:(String.make 16 'v')
    done;
    ignore (Env.drain env);
    let nodes_full = Blink.node_count t in
    Latch.reset_global_stats ();
    Blink.reset_stats t;
    for i = 0 to n - 1 do
      ignore (Blink.delete t (Printf.sprintf "key%06d" i))
    done;
    for _ = 1 to 20 do
      ignore (Env.drain env)
    done;
    let nodes_after = Blink.node_count t in
    let latches = Latch.global_stats () in
    let s = Blink.stats t in
    [
      (if consolidation then "CP (consolidate)" else "CNS (no consolidate)");
      string_of_int nodes_full;
      string_of_int nodes_after;
      string_of_int s.Blink.consolidations;
      Printf.sprintf "%.2f" (float_of_int latches.Latch.acquisitions /. float_of_int n);
      (if Wellformed.ok (Blink.verify t) then "yes" else "NO");
    ]
  in
  Table.print
    ~title:"E6: CNS vs CP — delete the whole tree, observe reclamation vs latch cost"
    ~header:
      [ "mode"; "nodes before"; "nodes after"; "consolidations"; "latch acq/op";
        "well-formed" ]
    [ run false; run true ]

(* ------------------------------------------------------------------ *)
(* E7: Figure 1 — TSB-tree time and key splits; history remains
   reachable through copied pointers.                                    *)
(* ------------------------------------------------------------------ *)

let e7 () =
  let rows =
    List.map
      (fun rounds ->
        let env = mk_env ~page_size:512 ~consolidation:false () in
        let t = Tsb.create env ~name:"v" in
        let keys = 16 in
        let stamps = ref [] in
        for r = 1 to rounds do
          for i = 0 to keys - 1 do
            let ts =
              Tsb.put t ~key:(Printf.sprintf "acct%02d" i)
                ~value:(Printf.sprintf "r%04d" r)
            in
            if r mod 17 = 0 then stamps := (i, r, ts) :: !stamps
          done
        done;
        ignore (Env.drain env);
        let s = Tsb.stats t in
        (* Sampled as-of correctness across the whole history. *)
        let ok = ref 0 and bad = ref 0 in
        List.iter
          (fun (i, r, ts) ->
            match Tsb.get_asof t (Printf.sprintf "acct%02d" i) ~time:ts with
            | Some v when v = Printf.sprintf "r%04d" r -> incr ok
            | _ -> incr bad)
          !stamps;
        let wf = Wellformed.ok (Tsb.verify t) in
        [
          string_of_int (rounds * keys);
          string_of_int s.Tsb.time_splits;
          string_of_int s.Tsb.key_splits;
          string_of_int s.Tsb.history_nodes;
          Printf.sprintf "%d/%d" !ok (!ok + !bad);
          (if wf then "yes" else "NO");
        ])
      [ 50; 200; 800 ]
  in
  Table.print
    ~title:
      "E7 (Figure 1): TSB-tree — versions force time splits; history stays \
       reachable through copied history/key pointers"
    ~header:
      [ "versions"; "time splits"; "key splits"; "history nodes"; "as-of checks";
        "well-formed" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8: Figure 2 — hB-tree with kd-tree sibling terms; clipping and
   multi-parent statistics; region query correctness.                    *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let rows =
    List.map
      (fun (dims, n) ->
        let env = mk_env ~page_size:512 ~consolidation:false () in
        let t = Hb.create env ~name:"h" ~dims in
        let rng = Rng.create 99L in
        let pts =
          Array.init n (fun i ->
              ignore i;
              Array.init dims (fun _ -> Rng.float rng 1.0))
        in
        Array.iteri (fun i p -> Hb.insert t ~point:p ~value:(string_of_int i)) pts;
        ignore (Env.drain env);
        let s = Hb.stats t in
        (* Region-query correctness vs brute force. *)
        let low = Array.make dims 0.25 and high = Array.make dims 0.75 in
        let inside p =
          let rec go i = i >= dims || (p.(i) >= 0.25 && p.(i) < 0.75 && go (i + 1)) in
          go 0
        in
        let expect = Array.to_list pts |> List.filter inside |> List.length in
        let got = Hb.query t ~low ~high ~init:0 ~f:(fun n _ _ -> n + 1) in
        let wf = Wellformed.ok (Hb.verify t) in
        [
          string_of_int dims;
          string_of_int n;
          string_of_int s.Hb.data_splits;
          string_of_int s.Hb.index_splits;
          string_of_int s.Hb.clipped_postings;
          string_of_int s.Hb.multi_parent_marks;
          Printf.sprintf "%d/%d" got expect;
          (if wf then "yes" else "NO");
        ])
      [ (2, 4_000); (3, 6_000); (4, 6_000) ]
  in
  Table.print
    ~title:
      "E8 (Figure 2): hB-tree — kd sibling terms, clipping, multi-parent \
       marking; region queries vs brute force"
    ~header:
      [ "dims"; "points"; "data splits"; "index splits"; "clipped"; "multi-parent";
        "region query"; "well-formed" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9: move locks (section 4.2): under page-oriented UNDO a split waits
   for updaters of the node, admits readers, blocks new updaters.       *)
(* ------------------------------------------------------------------ *)

let e9 () =
  let env = mk_env ~page_size:256 ~page_oriented_undo:true () in
  let t = Blink.create env ~name:"t" in
  (* Fill one leaf nearly full. *)
  let n0 = ref 0 in
  (try
     while true do
       if Blink.height t > 1 then raise Exit;
       Blink.insert t ~key:(Printf.sprintf "key%06d" !n0) ~value:(String.make 24 'v');
       incr n0
     done
   with Exit -> ());
  ignore (Env.drain env);
  (* Transaction T1 updates a record and stays open (holds IX on the
     node it touched). *)
  let mgr = Env.txns env in
  let t1 = Txn_mgr.begin_txn mgr Txn.User in
  Blink.insert ~txn:t1 t ~key:"key000001" ~value:(String.make 24 'w');
  (* A concurrent autocommit insert that needs a split of that node must
     wait for T1; readers keep running meanwhile. *)
  let split_done = Atomic.make 0.0 in
  let writer =
    Domain.spawn (fun () ->
        (* Keys sorting right after T1's record land in the same leaf and
           overflow it, forcing a split of the node T1 holds IX on. *)
        let t0 = Unix.gettimeofday () in
        for j = 0 to 5 do
          Blink.insert t
            ~key:(Printf.sprintf "key000001a%d" j)
            ~value:(String.make 48 'z')
        done;
        Atomic.set split_done (Unix.gettimeofday () -. t0))
  in
  Thread.delay 0.05;
  let blocked_at_50ms = Atomic.get split_done = 0.0 in
  (* Reads tolerated while the mover waits (move locks are compatible with
     readers). *)
  let t_read0 = Unix.gettimeofday () in
  let read_ok = Blink.find t "key000001" <> None in
  let read_ms = (Unix.gettimeofday () -. t_read0) *. 1000.0 in
  Thread.delay 0.05;
  Txn_mgr.commit mgr t1;
  Domain.join writer;
  ignore (Env.drain env);
  let split_wait_ms = Atomic.get split_done *. 1000.0 in
  Table.print
    ~title:
      "E9: move locks under page-oriented UNDO — the split waits for the \
       updating transaction; readers are not blocked"
    ~header:[ "observation"; "value" ]
    [
      [ "splitter blocked while T1 active (50ms in)"; (if blocked_at_50ms then "yes" else "NO") ];
      [ "reader proceeded during block"; (if read_ok then "yes" else "NO") ];
      [ "reader latency (ms)"; Printf.sprintf "%.2f" read_ms ];
      [ "splitter total wait (ms, ~100 expected)"; Printf.sprintf "%.1f" split_wait_ms ];
      [ "tree well-formed after"; (if Wellformed.ok (Blink.verify t) then "yes" else "NO") ];
    ]

(* ------------------------------------------------------------------ *)
(* E10: relative durability (section 4.3.1): atomic actions do not force
   the log; their commit rides on the next user commit.                 *)
(* ------------------------------------------------------------------ *)

let e10 () =
  let count_forces ~relative =
    with_file_log (fun log_path ->
        let env = mk_env ~log_path () in
        let mgr = Env.txns env in
        let log = Env.log env in
        let before = (Log_manager.stats log).Log_manager.forces in
        for _ = 1 to 1000 do
          let kind = if relative then Txn.System else Txn.User in
          let txn = Txn_mgr.begin_txn mgr kind in
          Txn_mgr.commit mgr txn
        done;
        (* One closing user commit carries the batch to durability. *)
        let txn = Txn_mgr.begin_txn mgr Txn.User in
        Txn_mgr.commit mgr txn;
        (Log_manager.stats log).Log_manager.forces - before)
  in
  let sys = count_forces ~relative:true in
  let usr = count_forces ~relative:false in
  Table.print
    ~title:
      "E10: relative durability — log forces for 1000 structure-change \
       actions (+1 user commit)"
    ~header:[ "commit discipline"; "log forces" ]
    [
      [ "atomic actions (no force, section 4.3.1)"; string_of_int sys ];
      [ "if they were user transactions"; string_of_int usr ];
    ]

(* ------------------------------------------------------------------ *)
(* E11: saved-path state (section 5.2): postings reuse the remembered
   path, verified by state identifiers, instead of re-searching from
   the root.                                                             *)
(* ------------------------------------------------------------------ *)

let e11 () =
  let run consolidation =
    let env = mk_env ~page_size:512 ~consolidation () in
    let t = Blink.create env ~name:"t" in
    for i = 0 to 14_999 do
      Blink.insert t ~key:(Printf.sprintf "key%06d" i) ~value:"v"
    done;
    ignore (Env.drain env);
    let s = Blink.stats t in
    let total = s.Blink.path_reuse_hits + s.Blink.full_retraversals in
    [
      (if consolidation then "CP" else "CNS");
      string_of_int s.Blink.postings_completed;
      string_of_int s.Blink.path_reuse_hits;
      string_of_int s.Blink.full_retraversals;
      (if total = 0 then "-"
       else
         Printf.sprintf "%.1f%%"
           (100.0 *. float_of_int s.Blink.path_reuse_hits /. float_of_int total));
    ]
  in
  Table.print
    ~title:
      "E11: saved-path reuse in posting actions (state identifiers verify \
       the remembered path, section 5.2)"
    ~header:[ "mode"; "postings"; "path reused"; "root re-traversals"; "reuse rate" ]
    [ run false; run true ]

(* ------------------------------------------------------------------ *)
(* E12 (ablation): move-lock granularity under page-oriented UNDO
   (section 4.2.2 discusses both realizations). Mixed updaters +
   splitters; finer locks mean fewer split waits.                        *)
(* ------------------------------------------------------------------ *)

let e12 () =
  let run granularity =
    let env = mk_env ~page_size:512 ~page_oriented_undo:true () in
    let t = Blink.create env ~name:"t" in
    Blink.set_move_granularity t granularity;
    let inst = Kv.blink t in
    let spec =
      Workload.spec ~key_space:20_000 ~read_pct:20 ~insert_pct:70 ~delete_pct:10
        ~dist:(Workload.Zipf 0.9) ()
    in
    Driver.preload inst spec ~n:5_000;
    ignore (Env.drain env);
    let r = Driver.run ~domains:4 ~ops_per_domain:4_000 ~seed:12L inst spec in
    ignore (Env.drain env);
    let s = Blink.stats t in
    [
      (match granularity with `Node -> "node-granule Move lock" | `Record -> "per-record U locks");
      fmt_ops r.Driver.ops_per_s;
      string_of_int s.Blink.leaf_splits;
      string_of_int s.Blink.lock_restarts;
      (if Wellformed.ok (Blink.verify t) then "yes" else "NO");
    ]
  in
  Table.print
    ~title:
      "E12 (ablation): move-lock realization (section 4.2.2) — node granule        vs per-record locks, page-oriented UNDO, 4 domains"
    ~header:[ "realization"; "ops/s"; "leaf splits"; "lock backoffs"; "well-formed" ]
    [ run `Node; run `Record ]

(* ------------------------------------------------------------------ *)
(* E13 (ablation): page size — split frequency vs per-op cost.           *)
(* ------------------------------------------------------------------ *)

let e13 () =
  let rows =
    List.map
      (fun page_size ->
        let env = mk_env ~page_size () in
        let t = Blink.create env ~name:"t" in
        let n = 20_000 in
        let t0 = Unix.gettimeofday () in
        for i = 0 to n - 1 do
          Blink.insert t ~key:(Printf.sprintf "key%08d" i) ~value:(String.make 16 'v')
        done;
        ignore (Env.drain env);
        let dt = Unix.gettimeofday () -. t0 in
        let s = Blink.stats t in
        [
          string_of_int page_size;
          fmt_ops (float_of_int n /. dt);
          string_of_int (Blink.height t);
          string_of_int (Blink.node_count t);
          string_of_int s.Blink.leaf_splits;
          string_of_int (s.Blink.postings_completed + s.Blink.postings_noop);
        ])
      [ 256; 512; 1024; 4096; 16384 ]
  in
  Table.print
    ~title:"E13 (ablation): page size — 20k sequential inserts"
    ~header:[ "page B"; "inserts/s"; "height"; "nodes"; "leaf splits"; "posting actions" ]
    rows

(* ------------------------------------------------------------------ *)
(* E14 (ablation): access skew — hot-key contention across engines.      *)
(* ------------------------------------------------------------------ *)

let e14 () =
  let rows =
    List.concat_map
      (fun theta ->
        List.map
          (fun engine ->
            let env, inst = instance engine in
            let spec =
              Workload.spec ~key_space:50_000 ~read_pct:50 ~insert_pct:50
                ~delete_pct:0
                ~dist:(if theta = 0.0 then Workload.Uniform else Workload.Zipf theta)
                ()
            in
            Driver.preload inst spec ~n:10_000;
            ignore (Env.drain env);
            let r = Driver.run ~domains:4 ~ops_per_domain:4_000 ~seed:5L inst spec in
            ignore (Env.drain env);
            [
              (if theta = 0.0 then "uniform" else Printf.sprintf "zipf %.2f" theta);
              Kv.name inst;
              fmt_ops r.Driver.ops_per_s;
              string_of_int r.Driver.p99_ns;
            ])
          engines)
      [ 0.0; 0.9; 1.2 ]
  in
  Table.print
    ~title:"E14 (ablation): access skew, 50/50 read/insert, 4 domains"
    ~header:[ "distribution"; "engine"; "ops/s"; "p99 ns" ]
    rows

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel): per-operation latencies.                 *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let env = mk_env () in
  let t = Blink.create env ~name:"m" in
  for i = 0 to 49_999 do
    Blink.insert t ~key:(Printf.sprintf "key%08d" i) ~value:(String.make 16 'v')
  done;
  ignore (Env.drain env);
  let rng = Rng.create 5L in
  let next_insert = ref 50_000 in
  let tests =
    [
      Test.make ~name:"blink.find(hit)"
        (Staged.stage (fun () ->
             ignore (Blink.find t (Printf.sprintf "key%08d" (Rng.int rng 50_000)))));
      Test.make ~name:"blink.find(miss)"
        (Staged.stage (fun () -> ignore (Blink.find t "nope")));
      Test.make ~name:"blink.insert(new)"
        (Staged.stage (fun () ->
             let i = !next_insert in
             incr next_insert;
             Blink.insert t ~key:(Printf.sprintf "key%08d" i) ~value:"v"));
      Test.make ~name:"blink.range(100)"
        (Staged.stage (fun () ->
             let lo = Rng.int rng 40_000 in
             ignore
               (Blink.range t
                  ~low:(Printf.sprintf "key%08d" lo)
                  ~high:(Printf.sprintf "key%08d" (lo + 100))
                  ~init:0
                  ~f:(fun n _ _ -> n + 1))));
    ]
  in
  let grouped = Test.make_grouped ~name:"micro" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> Printf.sprintf "%.0f" e
        | _ -> "?"
      in
      rows := [ name; est ] :: !rows)
    results;
  Table.print ~title:"Micro-benchmarks (Bechamel, ns/op)"
    ~header:[ "operation"; "ns/op" ]
    (List.sort compare !rows);
  (* Recovery replay rate: synthetic restart over the loaded tree's log. *)
  let n_records = Log_manager.last_lsn (Env.log env) in
  Env.crash env;
  let t0 = Unix.gettimeofday () in
  let _ = Env.recover env in
  let dt = Unix.gettimeofday () -. t0 in
  Table.print ~title:"Recovery replay rate" ~header:[ "metric"; "value" ]
    [
      [ "log records"; string_of_int n_records ];
      [ "restart time (ms)"; Printf.sprintf "%.1f" (dt *. 1000.0) ];
      [ "records/s"; fmt_ops (float_of_int n_records /. dt) ];
    ]

(* ------------------------------------------------------------------ *)
(* WAL group commit: a commit-heavy storm of user transactions across
   domains, group-commit pipeline vs the serial hold-the-mutex-across-fsync
   baseline. Emits BENCH_wal.json so the perf trajectory has data points.   *)
(* ------------------------------------------------------------------ *)

type wal_run = {
  w_mode : string;
  w_domains : int;
  w_committed : int;
  w_elapsed_s : float;
  w_commits_per_s : float;
  w_stats : Log_manager.stats;
}

let wal_commit_storm ~group_commit ~domains ~txns_per_domain =
  with_file_log (fun log_path ->
      let env = mk_env ~log_path ~wal_group_commit:group_commit () in
      let t = Blink.create env ~name:"wal" in
      let mgr = Env.txns env in
      let log = Env.log env in
      let forces0 = (Log_manager.stats log).Log_manager.forces in
      let t0 = Unix.gettimeofday () in
      let work d =
        for i = 0 to txns_per_domain - 1 do
          let txn = Txn_mgr.begin_txn mgr Txn.User in
          Blink.insert ~txn t
            ~key:(Printf.sprintf "d%02d-%06d" d i)
            ~value:"v";
          Txn_mgr.commit mgr txn
        done
      in
      (if domains = 1 then work 0
       else
         List.init domains (fun d -> Domain.spawn (fun () -> work d))
         |> List.iter Domain.join);
      let dt = Unix.gettimeofday () -. t0 in
      ignore (Env.drain env);
      let s = Log_manager.stats log in
      let committed = domains * txns_per_domain in
      {
        w_mode = (if group_commit then "group" else "serial");
        w_domains = domains;
        w_committed = committed;
        w_elapsed_s = dt;
        w_commits_per_s = float_of_int committed /. dt;
        w_stats = { s with Log_manager.forces = s.Log_manager.forces - forces0 };
      })

let wal_json_of_runs ~txns_per_domain runs =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"wal_group_commit\",\n";
  Printf.bprintf b "  \"txns_per_domain\": %d,\n" txns_per_domain;
  Buffer.add_string b "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      let s = r.w_stats in
      Printf.bprintf b
        "    {\"mode\": %S, \"domains\": %d, \"committed\": %d, \
         \"elapsed_s\": %.4f, \"commits_per_s\": %.1f, \"forces\": %d, \
         \"flushes\": %d, \"flush_requests\": %d, \"appends\": %d, \
         \"batch_mean\": %.2f, \"batch_p99\": %d, \"batch_max\": %d, \
         \"wait_mean_ns\": %.0f, \"wait_p50_ns\": %d, \"wait_p99_ns\": %d, \
         \"batching_observed\": %b}%s\n"
        r.w_mode r.w_domains r.w_committed r.w_elapsed_s r.w_commits_per_s
        s.Log_manager.forces s.Log_manager.flushes s.Log_manager.flush_requests
        s.Log_manager.appends s.Log_manager.batch_mean s.Log_manager.batch_p99
        s.Log_manager.batch_max s.Log_manager.wait_mean_ns
        s.Log_manager.wait_p50_ns s.Log_manager.wait_p99_ns
        (s.Log_manager.forces < r.w_committed)
        (if i = List.length runs - 1 then "" else ",")
    )
    runs;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let wal_impl ~txns_per_domain ~domain_counts ~out () =
  let runs =
    List.concat_map
      (fun group_commit ->
        List.map
          (fun domains -> wal_commit_storm ~group_commit ~domains ~txns_per_domain)
          domain_counts)
      [ false; true ]
  in
  let rows =
    List.map
      (fun r ->
        let s = r.w_stats in
        [
          r.w_mode;
          string_of_int r.w_domains;
          string_of_int r.w_committed;
          fmt_ops r.w_commits_per_s;
          string_of_int s.Log_manager.forces;
          Printf.sprintf "%.2f" s.Log_manager.batch_mean;
          string_of_int s.Log_manager.batch_p99;
          string_of_int s.Log_manager.wait_p50_ns;
          string_of_int s.Log_manager.wait_p99_ns;
        ])
      runs
  in
  Table.print
    ~title:
      (Printf.sprintf
         "WAL group commit: user-commit storm (%d txns/domain, file-backed \
          log); serial = pre-group-commit baseline"
         txns_per_domain)
    ~header:
      [ "mode"; "domains"; "commits"; "commits/s"; "forces"; "batch mean";
        "batch p99"; "wait p50 ns"; "wait p99 ns" ]
    rows;
  let oc = open_out out in
  output_string oc (wal_json_of_runs ~txns_per_domain runs);
  close_out oc;
  Printf.printf "wrote %s\n%!" out

let wal () = wal_impl ~txns_per_domain:1000 ~domain_counts:[ 1; 2; 4; 8 ] ~out:"BENCH_wal.json" ()

let wal_smoke () =
  wal_impl ~txns_per_domain:100 ~domain_counts:[ 4 ] ~out:"BENCH_wal.json" ()

(* ------------------------------------------------------------------ *)
(* Buffer pool: direct pin/unpin workloads against the pool alone (no
   engine, no WAL noise), sharded vs the legacy single-mutex baseline
   (?shards:1). Emits BENCH_pool.json.                                   *)
(* ------------------------------------------------------------------ *)

type pool_run = {
  b_workload : string;
  b_mode : string;
  b_domains : int;
  b_ops : int;
  b_elapsed_s : float;
  b_ops_per_s : float;
  b_stats : Buffer_pool.stats;
}

(* A disk image of [npages] checksummed pages with distinguishable content.
   [delay] simulates device latency on every read and write (an in-memory
   disk is otherwise instantaneous, which hides exactly the serialization
   this bench exists to measure). *)
let pool_disk ~page_size ~npages ~delay =
  let disk = Disk.in_memory ~page_size in
  for pid = 0 to npages - 1 do
    let p = Page.create ~size:page_size ~id:pid ~kind:Page.Data ~level:0 in
    Page.insert p 0 (Printf.sprintf "payload-%06d" pid);
    Page.stamp_checksum p;
    disk.Disk.write pid (Page.raw p)
  done;
  if delay <= 0.0 then disk
  else
    {
      disk with
      Disk.read = (fun pid buf -> Thread.delay delay; disk.Disk.read pid buf);
      write = (fun pid buf -> Thread.delay delay; disk.Disk.write pid buf);
    }

type pool_workload = Ppoint | Pscan | Pmixed | Phot

let pool_workload_name = function
  | Ppoint -> "point"
  | Pscan -> "scan"
  | Pmixed -> "mixed"
  | Phot -> "hot"

let pool_npages = 4096
let pool_disk_delay = 0.00005 (* 50us: NVMe-ish device latency *)

(* point: uniform point reads over a working set twice the pool — a steady
   miss stream against a 50us device. scan: sequential sweeps through a
   pool an eighth of the working set — eviction churn. mixed: zipf(0.9)
   reads with 10% dirtying against a quarter-size pool — clock quality
   plus write-back. hot: all-resident uniform reads on an instant disk —
   isolates pin-path mutex arithmetic.

   The "single" baseline reproduces the pre-sharding discipline: ?shards:1
   AND one mutex held across every pool call — so a miss's device read (and
   an eviction's write-back) blocks every other pin, which is exactly what
   the seed pool's global mutex did. The sharded arm requests shards
   explicitly (2x the domain count, at least 8) so the comparison is
   meaningful even where [Domain.recommended_domain_count] is low (CI
   containers). *)
let pool_run ~workload ~sharded ~domains ~ops_per_domain =
  let page_size = 512 in
  let npages = pool_npages in
  let delay = if workload = Phot then 0.0 else pool_disk_delay in
  let disk = pool_disk ~page_size ~npages ~delay in
  let capacity =
    match workload with
    | Ppoint -> npages / 2
    | Pscan -> npages / 8
    | Pmixed -> npages / 4
    | Phot -> npages
  in
  let shards = if sharded then max 8 (2 * domains) else 1 in
  let pool = Buffer_pool.create ~capacity ~shards ~disk ~wal_flush:(fun _ -> ()) () in
  let legacy_mu = Mutex.create () in
  let with_legacy f =
    if sharded then f ()
    else begin
      Mutex.lock legacy_mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock legacy_mu) f
    end
  in
  (if workload = Phot then
     (* Warm the pool so the measured phase is all hits. *)
     for pid = 0 to npages - 1 do
       Buffer_pool.unpin pool (Buffer_pool.pin pool pid)
     done);
  let work d =
    let rng = Rng.create (Int64.of_int ((d * 7919) + 13)) in
    let zipf = Zipf.create ~n:npages ~theta:0.9 in
    let next_scan = ref (d * npages / max 1 domains) in
    for _ = 1 to ops_per_domain do
      let pid =
        match workload with
        | Ppoint | Phot -> Rng.int rng npages
        | Pscan ->
            let p = !next_scan in
            next_scan := (p + 1) mod npages;
            p
        | Pmixed -> Zipf.sample zipf rng
      in
      let fr = with_legacy (fun () -> Buffer_pool.pin pool pid) in
      ignore (Page.get fr.Buffer_pool.page 0);
      if workload = Pmixed && Rng.int rng 10 = 0 then Buffer_pool.mark_dirty fr;
      with_legacy (fun () -> Buffer_pool.unpin pool fr)
    done
  in
  let s0 = Buffer_pool.stats pool in
  let t0 = Unix.gettimeofday () in
  (if domains = 1 then work 0
   else List.init domains (fun d -> Domain.spawn (fun () -> work d)) |> List.iter Domain.join);
  let dt = Unix.gettimeofday () -. t0 in
  let s1 = Buffer_pool.stats pool in
  let ops = domains * ops_per_domain in
  let hits = s1.Buffer_pool.hits - s0.Buffer_pool.hits in
  let misses = s1.Buffer_pool.misses - s0.Buffer_pool.misses in
  let pins = hits + misses in
  let stats =
    {
      s1 with
      Buffer_pool.hits;
      misses;
      evictions = s1.Buffer_pool.evictions - s0.Buffer_pool.evictions;
      flushes = s1.Buffer_pool.flushes - s0.Buffer_pool.flushes;
      hit_ratio = (if pins = 0 then 0.0 else float_of_int hits /. float_of_int pins);
    }
  in
  {
    b_workload = pool_workload_name workload;
    b_mode = (if sharded then "sharded" else "single");
    b_domains = domains;
    b_ops = ops;
    b_elapsed_s = dt;
    b_ops_per_s = float_of_int ops /. dt;
    b_stats = stats;
  }

let pool_json_of_runs runs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"pool_sharded\",\n";
  Printf.bprintf b "  \"npages\": %d,\n" pool_npages;
  (* The headline acceptance number: sharded vs single-mutex throughput on
     the most contended configuration present (point reads, max domains). *)
  let point_at mode =
    List.filter (fun r -> r.b_workload = "point" && r.b_mode = mode) runs
    |> List.fold_left (fun best r -> match best with
         | Some b when b.b_domains >= r.b_domains -> Some b
         | _ -> Some r) None
  in
  (match (point_at "sharded", point_at "single") with
  | Some s, Some g when g.b_ops_per_s > 0.0 && s.b_domains = g.b_domains ->
      Printf.bprintf b
        "  \"point_speedup_domains\": %d,\n  \"point_speedup\": %.2f,\n"
        s.b_domains (s.b_ops_per_s /. g.b_ops_per_s)
  | _ -> ());
  Buffer.add_string b "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      let s = r.b_stats in
      Printf.bprintf b
        "    {\"workload\": %S, \"mode\": %S, \"domains\": %d, \"shards\": %d, \
         \"ops\": %d, \"elapsed_s\": %.4f, \"ops_per_s\": %.1f, \"hits\": %d, \
         \"misses\": %d, \"hit_ratio\": %.4f, \"evictions\": %d, \"flushes\": %d, \
         \"miss_wait_mean_ns\": %.0f, \"miss_wait_p99_ns\": %d}%s\n"
        r.b_workload r.b_mode r.b_domains s.Buffer_pool.shards r.b_ops
        r.b_elapsed_s r.b_ops_per_s s.Buffer_pool.hits s.Buffer_pool.misses
        s.Buffer_pool.hit_ratio s.Buffer_pool.evictions s.Buffer_pool.flushes
        s.Buffer_pool.miss_wait_mean_ns s.Buffer_pool.miss_wait_p99_ns
        (if i = List.length runs - 1 then "" else ","))
    runs;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let pool_impl ~workloads ~domain_counts ~ops_per_domain ~out () =
  let runs =
    List.concat_map
      (fun workload ->
        List.concat_map
          (fun domains ->
            List.map
              (fun sharded ->
                pool_run ~workload ~sharded ~domains
                  ~ops_per_domain:(ops_per_domain workload))
              [ false; true ])
          domain_counts)
      workloads
  in
  let rows =
    List.map
      (fun r ->
        let s = r.b_stats in
        [
          r.b_workload;
          r.b_mode;
          string_of_int r.b_domains;
          string_of_int s.Buffer_pool.shards;
          fmt_ops r.b_ops_per_s;
          Printf.sprintf "%.1f%%" (100.0 *. s.Buffer_pool.hit_ratio);
          string_of_int s.Buffer_pool.evictions;
          Printf.sprintf "%.0f" s.Buffer_pool.miss_wait_mean_ns;
          string_of_int s.Buffer_pool.miss_wait_p99_ns;
        ])
      runs
  in
  Table.print
    ~title:
      "Buffer pool: direct pin/unpin throughput, sharded (off-mutex miss \
       I/O) vs single-mutex-held-across-I/O baseline (4096 pages, 50us \
       simulated device latency except hot)"
    ~header:
      [ "workload"; "mode"; "domains"; "shards"; "pins/s"; "hit%"; "evict";
        "missI/O ns"; "p99 ns" ]
    rows;
  let oc = open_out out in
  output_string oc (pool_json_of_runs runs);
  close_out oc;
  Printf.printf "wrote %s\n%!" out

(* Budgets differ by two orders of magnitude because point/scan/mixed run
   against the 50us-latency disk (miss-bound) while hot is all-resident. *)
let pool_ops_full = function
  | Ppoint -> 2_000
  | Pscan -> 1_000
  | Pmixed -> 2_000
  | Phot -> 50_000

let pool_bench () =
  pool_impl
    ~workloads:[ Ppoint; Pscan; Pmixed; Phot ]
    ~domain_counts:[ 1; 2; 4; 8 ]
    ~ops_per_domain:pool_ops_full ~out:"BENCH_pool.json" ()

let pool_smoke () =
  pool_impl ~workloads:[ Ppoint ] ~domain_counts:[ 4 ]
    ~ops_per_domain:(fun _ -> 500)
    ~out:"BENCH_pool.json" ()

(* ------------------------------------------------------------------ *)
(* Fuzzy checkpoints: restart work bounded by work-since-checkpoint (not
   total history), log file space reclaimed by truncation, and the
   reader-observed write-back stall of sharp vs fuzzy modes. Emits
   BENCH_ckpt.json.                                                      *)
(* ------------------------------------------------------------------ *)

type ckpt_run = {
  c_mode : string;
  c_history : int;
  c_log_records : int;  (* records retained in the log at crash time *)
  c_file_bytes : int;  (* WAL file size at crash time *)
  c_ckpts : int;
  c_trunc_records : int;
  c_trunc_bytes : int;
  c_restart_ms : float;
  c_analyzed : int;
  c_redone : int;
}

(* Load [history] autocommit inserts — with the log-bytes fuzzy-checkpoint
   trigger on or off — then crash with the whole log tail durable (the
   worst case for restart work) and measure recovery. *)
let ckpt_history_run ~fuzzy ~history =
  with_file_log (fun log_path ->
      let env =
        mk_env ~page_size:512 ~pool:1024 ~log_path
          ?ckpt_log_bytes:(if fuzzy then Some 65_536 else None) ()
      in
      let t = Blink.create env ~name:"ckpt" in
      for i = 0 to history - 1 do
        Blink.insert t
          ~key:(Printf.sprintf "key%08d" i)
          ~value:(String.make 16 'v')
      done;
      ignore (Env.drain env);
      let log = Env.log env in
      let es = Env.stats env in
      let file_bytes = Option.value (Log_manager.file_bytes log) ~default:0 in
      let log_records =
        Log_manager.last_lsn log - Log_manager.first_lsn log + 1
      in
      Log_manager.flush_all log;
      Env.crash env;
      let t0 = Unix.gettimeofday () in
      let report = Env.recover env in
      let restart_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let t = Option.get (Blink.open_existing env ~name:"ckpt") in
      (match Blink.find t (Printf.sprintf "key%08d" (history - 1)) with
      | Some _ -> ()
      | None -> failwith "ckpt bench: committed key lost across recovery");
      if not (Wellformed.ok (Blink.verify t)) then
        failwith "ckpt bench: tree not well-formed after recovery";
      {
        c_mode = (if fuzzy then "fuzzy" else "none");
        c_history = history;
        c_log_records = log_records;
        c_file_bytes = file_bytes;
        c_ckpts = es.Env.checkpoints;
        c_trunc_records = es.Env.ckpt_records_truncated;
        c_trunc_bytes = es.Env.ckpt_bytes_truncated;
        c_restart_ms = restart_ms;
        c_analyzed = report.Recovery.analyzed;
        c_redone = report.Recovery.redone;
      })

(* Reader-observed stall: two domains run point reads while one explicit
   checkpoint per round writes back freshly dirtied pages. Sharp write-back
   holds each shard's mutex across its flushes, so concurrent pins block;
   fuzzy write-back holds only one page's S latch at a time. (Writers are
   quiesced during the checkpoint itself — sharp mode requires that.) *)
let ckpt_stall_run ~mode ~rounds ~dirty_per_round =
  let env = mk_env ~page_size:512 ~pool:8192 () in
  let t = Blink.create env ~name:"stall" in
  for i = 0 to 9_999 do
    Blink.insert t ~key:(Printf.sprintf "key%08d" i) ~value:(String.make 16 'v')
  done;
  ignore (Env.drain env);
  let next = ref 10_000 in
  let max_find_ns = ref 0 and ckpt_s = ref 0.0 and finds = ref 0 in
  for _ = 1 to rounds do
    for _ = 1 to dirty_per_round do
      let i = !next in
      incr next;
      Blink.insert t
        ~key:(Printf.sprintf "key%08d" i)
        ~value:(String.make 16 'v')
    done;
    ignore (Env.drain env);
    let key_hi = !next in
    let running = Atomic.make true in
    let readers =
      List.init 2 (fun d ->
          Domain.spawn (fun () ->
              let rng = Rng.create (Int64.of_int (d + 1)) in
              let worst = ref 0 and n = ref 0 in
              while Atomic.get running do
                let k = Printf.sprintf "key%08d" (Rng.int rng key_hi) in
                let t0 = Pitree_sync.Clock.now_ns () in
                ignore (Blink.find t k);
                let dt = Pitree_sync.Clock.now_ns () - t0 in
                if dt > !worst then worst := dt;
                incr n
              done;
              (!worst, !n)))
    in
    let t0 = Unix.gettimeofday () in
    Env.checkpoint ~mode env;
    ckpt_s := !ckpt_s +. (Unix.gettimeofday () -. t0);
    Atomic.set running false;
    List.iter
      (fun d ->
        let worst, n = Domain.join d in
        if worst > !max_find_ns then max_find_ns := worst;
        finds := !finds + n)
      readers
  done;
  ( (match mode with `Sharp -> "sharp" | `Fuzzy -> "fuzzy"),
    rounds,
    !ckpt_s,
    !max_find_ns,
    !finds )

let ckpt_json ~runs ~stalls =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"bench\": \"ckpt\",\n";
  (* Headline acceptance: at the largest history, restart analysis with
     checkpoints is a fraction of analysis without them. *)
  let at mode =
    List.filter (fun r -> r.c_mode = mode) runs
    |> List.fold_left
         (fun best r ->
           match best with
           | Some b when b.c_history >= r.c_history -> Some b
           | _ -> Some r)
         None
  in
  (match (at "fuzzy", at "none") with
  | Some f, Some n when n.c_analyzed > 0 && f.c_history = n.c_history ->
      Printf.bprintf b
        "  \"history_ops\": %d,\n  \"analyzed_fuzzy\": %d,\n  \
         \"analyzed_none\": %d,\n  \"bounded_restart\": %b,\n"
        f.c_history f.c_analyzed n.c_analyzed (f.c_analyzed < n.c_analyzed / 2)
  | _ -> ());
  Buffer.add_string b "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"mode\": %S, \"history_ops\": %d, \"log_records\": %d, \
         \"log_file_bytes\": %d, \"checkpoints\": %d, \
         \"records_truncated\": %d, \"bytes_truncated\": %d, \
         \"restart_ms\": %.2f, \"analyzed\": %d, \"redone\": %d}%s\n"
        r.c_mode r.c_history r.c_log_records r.c_file_bytes r.c_ckpts
        r.c_trunc_records r.c_trunc_bytes r.c_restart_ms r.c_analyzed
        r.c_redone
        (if i = List.length runs - 1 then "" else ","))
    runs;
  Buffer.add_string b "  ],\n  \"stall\": [\n";
  List.iteri
    (fun i (mode, rounds, ck_s, max_ns, finds) ->
      Printf.bprintf b
        "    {\"mode\": %S, \"rounds\": %d, \"checkpoint_s\": %.4f, \
         \"max_find_ns\": %d, \"finds\": %d}%s\n"
        mode rounds ck_s max_ns finds
        (if i = List.length stalls - 1 then "" else ","))
    stalls;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let ckpt_impl ~histories ~stall_rounds ~stall_dirty ~out () =
  let runs =
    List.concat_map
      (fun history ->
        List.map (fun fuzzy -> ckpt_history_run ~fuzzy ~history) [ false; true ])
      histories
  in
  Table.print
    ~title:
      "Fuzzy checkpoints: restart work and WAL file size vs history length \
       (log-bytes trigger at 64KiB; crash with the full tail durable)"
    ~header:
      [ "mode"; "history"; "log records"; "WAL bytes"; "ckpts"; "trunc recs";
        "restart ms"; "analyzed"; "redone" ]
    (List.map
       (fun r ->
         [
           r.c_mode;
           string_of_int r.c_history;
           string_of_int r.c_log_records;
           string_of_int r.c_file_bytes;
           string_of_int r.c_ckpts;
           string_of_int r.c_trunc_records;
           Printf.sprintf "%.1f" r.c_restart_ms;
           string_of_int r.c_analyzed;
           string_of_int r.c_redone;
         ])
       runs);
  let stalls =
    List.map
      (fun mode ->
        ckpt_stall_run ~mode ~rounds:stall_rounds ~dirty_per_round:stall_dirty)
      [ `Sharp; `Fuzzy ]
  in
  Table.print
    ~title:
      "Checkpoint write-back stall seen by concurrent readers (2 domains of \
       point reads during each checkpoint)"
    ~header:[ "mode"; "rounds"; "ckpt total s"; "worst find ns"; "finds" ]
    (List.map
       (fun (mode, rounds, ck_s, max_ns, finds) ->
         [
           mode;
           string_of_int rounds;
           Printf.sprintf "%.4f" ck_s;
           string_of_int max_ns;
           string_of_int finds;
         ])
       stalls);
  let oc = open_out out in
  output_string oc (ckpt_json ~runs ~stalls);
  close_out oc;
  Printf.printf "wrote %s\n%!" out

let ckpt () =
  ckpt_impl
    ~histories:[ 2_000; 8_000; 16_000 ]
    ~stall_rounds:10 ~stall_dirty:2_000 ~out:"BENCH_ckpt.json" ()

let ckpt_smoke () =
  ckpt_impl ~histories:[ 800 ] ~stall_rounds:2 ~stall_dirty:400
    ~out:"BENCH_ckpt.json" ()

(* ------------------------------------------------------------------ *)
(* E21 / churn: alternating insert/delete cycles over all three engines —
   node deletion + online merge must keep the file bounded, with freed
   pages cycling through the meta-page free list. Emits BENCH_churn.json
   (gated: extent <= 1.5x live high-water mark, >= 80% of post-warmup
   allocations served by the free list).                                 *)
(* ------------------------------------------------------------------ *)

let churn_impl cfg ~out =
  let res = Churn.run ~log:(Printf.printf "%s\n%!") cfg in
  Table.print
    ~title:
      (Printf.sprintf
         "E21: churn — %d insert/delete cycles per engine (%d keys, \
          %d-key bands); merges must bound the file and feed the free list"
         cfg.Churn.cycles cfg.Churn.keys cfg.Churn.band)
    ~header:
      [ "engine"; "cycles"; "cycles/s"; "used hwm"; "extent"; "ratio";
        "reused/alloc"; "reuse%"; "freed"; "well-formed"; "gates" ]
    (List.map
       (fun r ->
         [
           r.Churn.r_engine;
           string_of_int r.Churn.r_cycles;
           fmt_ops r.Churn.r_cycles_per_s;
           string_of_int r.Churn.r_used_hwm;
           string_of_int r.Churn.r_extent_final;
           Printf.sprintf "%.2f" r.Churn.r_extent_ratio;
           Printf.sprintf "%d/%d" r.Churn.r_post_reused r.Churn.r_post_allocated;
           Printf.sprintf "%.1f%%" (100.0 *. r.Churn.r_reuse_ratio);
           string_of_int r.Churn.r_pages_freed;
           (if r.Churn.r_well_formed then "yes" else "NO");
           (if Churn.ok r then "pass" else "FAIL");
         ])
       res.Churn.runs);
  let oc = open_out out in
  output_string oc (Churn.to_json cfg res);
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if not res.Churn.passed then exit 1

let churn () = churn_impl Churn.default_config ~out:"BENCH_churn.json"

let churn_smoke () =
  churn_impl
    { Churn.default_config with Churn.cycles = 20_000; keys = 2_048; band = 256 }
    ~out:"BENCH_churn.json"

(* ------------------------------------------------------------------ *)

(* E18: the endurance rig (see lib/harness/endure.ml and the pitree
   endure subcommand for the full-scale run). The smoke variant keeps CI
   honest: mixed load, faults on, one crash cycle, all SLOs gated. *)
let endure_impl cfg ~out =
  let r = Endure.run ~log:(Printf.printf "%s\n%!") cfg in
  Format.printf "%a@." Endure.pp_result r;
  let oc = open_out out in
  output_string oc (Endure.to_json r);
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if not r.Endure.passed then exit 1

let endure () =
  endure_impl
    { Endure.default_config with Endure.seconds = 30.0; keys = 200_000 }
    ~out:"BENCH_endure.json"

let endure_smoke () =
  endure_impl
    {
      Endure.default_config with
      Endure.keys = 20_000;
      seconds = 4.0;
      domains = 2;
      pool_capacity = 1024;
      ckpt_log_bytes = 262_144;
      crash_cycles = 1;
      verify_sample = 500;
    }
    ~out:"BENCH_endure.json"

(* ------------------------------------------------------------------ *)
(* E19 / olc: optimistic latch-free read descents vs the S-latched
   path. All-resident tree (pool >> data) so the comparison isolates
   descent synchronization; read-only point and scan mixes measure the
   latch-free win, the mixed workload measures the restart/fallback
   ladder's cost under writers. Emits BENCH_olc.json.                   *)
(* ------------------------------------------------------------------ *)

type olc_run = {
  o_workload : string;
  o_mode : string;  (* "latched" | "optimistic" *)
  o_domains : int;
  o_result : Driver.result;
  o_restarts : int;
  o_fallbacks : int;
}

let olc_storm ~olc_reads ~workload ~spec ~domains ~ops_per_domain ~preload =
  let env = mk_env ~olc_reads () in
  let t = Blink.create env ~name:"bench" in
  let inst = Kv.blink t in
  Driver.preload inst spec ~n:preload;
  ignore (Env.drain env);
  let s0 = Blink.stats t in
  let r = Driver.run ~domains ~ops_per_domain ~seed:7L inst spec in
  let s1 = Blink.stats t in
  {
    o_workload = workload;
    o_mode = (if olc_reads then "optimistic" else "latched");
    o_domains = domains;
    o_result = r;
    o_restarts = s1.Blink.olc_restarts - s0.Blink.olc_restarts;
    o_fallbacks = s1.Blink.olc_fallbacks - s0.Blink.olc_fallbacks;
  }

let olc_json_of_runs ~key_space ~headline runs =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"olc_reads\",\n";
  Printf.bprintf b "  \"key_space\": %d,\n" key_space;
  Buffer.add_string b "  \"headline\": {\n";
  List.iteri
    (fun i (w, sp) ->
      Printf.bprintf b "    %S: %.2f%s\n" w sp
        (if i = List.length headline - 1 then "" else ","))
    headline;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"workload\": %S, \"mode\": %S, \"domains\": %d, \"ops\": %d, \
         \"elapsed_s\": %.4f, \"ops_per_s\": %.1f, \"p50_ns\": %d, \
         \"p99_ns\": %d, \"olc_restarts\": %d, \"olc_fallbacks\": %d}%s\n"
        r.o_workload r.o_mode r.o_domains r.o_result.Driver.total_ops
        r.o_result.Driver.elapsed_s r.o_result.Driver.ops_per_s
        r.o_result.Driver.p50_ns r.o_result.Driver.p99_ns r.o_restarts
        r.o_fallbacks
        (if i = List.length runs - 1 then "" else ","))
    runs;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let olc_impl ~key_space ~point_ops ~scan_ops ~mixed_ops ~domain_counts ~out () =
  let specs =
    [
      ( "point-uniform",
        Workload.spec ~key_space ~dist:Workload.Uniform (),
        point_ops );
      ( "point-zipf",
        Workload.spec ~key_space ~dist:(Workload.Zipf 0.99) (),
        point_ops );
      ( "scan-uniform",
        Workload.spec ~key_space ~read_pct:0 ~scan_pct:100 ~scan_len:50
          ~dist:Workload.Uniform (),
        scan_ops );
      ( "scan-zipf",
        Workload.spec ~key_space ~read_pct:0 ~scan_pct:100 ~scan_len:50
          ~dist:(Workload.Zipf 0.99) (),
        scan_ops );
      ( "point-mixed",
        Workload.spec ~key_space ~read_pct:80 ~insert_pct:10 ~delete_pct:10
          ~dist:(Workload.Zipf 0.99) (),
        mixed_ops );
    ]
  in
  let runs =
    List.concat_map
      (fun (workload, spec, ops) ->
        List.concat_map
          (fun domains ->
            List.map
              (fun olc_reads ->
                olc_storm ~olc_reads ~workload ~spec ~domains
                  ~ops_per_domain:ops ~preload:key_space)
              [ false; true ])
          domain_counts)
      specs
  in
  let rows =
    List.map
      (fun r ->
        [
          r.o_workload;
          r.o_mode;
          string_of_int r.o_domains;
          fmt_ops r.o_result.Driver.ops_per_s;
          string_of_int r.o_result.Driver.p50_ns;
          string_of_int r.o_result.Driver.p99_ns;
          string_of_int r.o_restarts;
          string_of_int r.o_fallbacks;
        ])
      runs
  in
  Table.print
    ~title:
      (Printf.sprintf
         "OLC reads: latched vs optimistic descent (%d keys, all-resident)"
         key_space)
    ~header:
      [ "workload"; "mode"; "domains"; "ops/s"; "p50 ns"; "p99 ns";
        "restarts"; "fallbacks" ]
    rows;
  (* Headline: optimistic/latched speedup per workload at the highest
     domain count. *)
  let top = List.fold_left max 1 domain_counts in
  let rate workload mode =
    List.find_opt
      (fun r -> r.o_workload = workload && r.o_mode = mode && r.o_domains = top)
      runs
    |> Option.map (fun r -> r.o_result.Driver.ops_per_s)
  in
  let headline =
    List.filter_map
      (fun (w, _, _) ->
        match (rate w "latched", rate w "optimistic") with
        | Some l, Some o when l > 0.0 -> Some (w, o /. l)
        | _ -> None)
      specs
  in
  Table.print
    ~title:(Printf.sprintf "OLC speedup at %d domains (optimistic / latched)" top)
    ~header:[ "workload"; "speedup" ]
    (List.map (fun (w, sp) -> [ w; Printf.sprintf "%.2fx" sp ]) headline);
  let oc = open_out out in
  output_string oc (olc_json_of_runs ~key_space ~headline runs);
  close_out oc;
  Printf.printf "wrote %s\n%!" out

let olc () =
  olc_impl ~key_space:50_000 ~point_ops:100_000 ~scan_ops:4_000
    ~mixed_ops:50_000 ~domain_counts:[ 1; 2; 4; 8 ] ~out:"BENCH_olc.json" ()

let olc_smoke () =
  olc_impl ~key_space:5_000 ~point_ops:10_000 ~scan_ops:400 ~mixed_ops:5_000
    ~domain_counts:[ 2 ] ~out:"BENCH_olc.json" ()

(* ------------------------------------------------------------------ *)
(* E20 / combine: hot-key write combining under a skewed write storm.
   Update-only Zipf(0.99) puts over a small key space, so the hottest
   keys collide constantly; with combining on, colliding writers share
   one descent, one leaf latch and one commit flush enrollment per
   batch. Same op count with combining off is the baseline. Gated: the
   funnel must actually reduce work (batch fan-in, leaf descents, WAL
   flush requests), not just move it. Emits BENCH_combine.json.        *)
(* ------------------------------------------------------------------ *)

type combine_run = {
  m_mode : string;  (* "direct" | "combined" *)
  m_result : Driver.result;
  m_descents : int;
  m_flush_requests : int;
  m_logical_commits : int;
  m_combine : Combine.stats option;
}

let combine_storm ~combine ~window_us ~slots ~page_size ~domains
    ~ops_per_domain ~key_space ~log_path =
  let env =
    Env.create
      {
        Env.default_config with
        page_size;
        pool_capacity = 32768;
        log_path = Some log_path;
        combine;
        combine_slots = slots;
        combine_window_us = window_us;
      }
  in
  let t = Blink.create env ~name:"bench" in
  let inst = Kv.blink t in
  let spec =
    Workload.spec ~key_space ~read_pct:0 ~insert_pct:100
      ~dist:(Workload.Zipf 0.99) ()
  in
  Driver.preload inst spec ~n:key_space;
  ignore (Env.drain env);
  (* Exclude the single-threaded preload (batches of one) from the
     combining distribution the gates judge. *)
  Combine.reset_stats ();
  let s0 = Blink.stats t in
  let w0 = Log_manager.stats (Env.log env) in
  let r = Driver.run ~env ~domains ~ops_per_domain ~seed:11L inst spec in
  let s1 = Blink.stats t in
  let w1 = Log_manager.stats (Env.log env) in
  {
    m_mode = (if combine then "combined" else "direct");
    m_result = r;
    m_descents = s1.Blink.descents - s0.Blink.descents;
    m_flush_requests =
      w1.Log_manager.flush_requests - w0.Log_manager.flush_requests;
    m_logical_commits =
      w1.Log_manager.logical_commits - w0.Log_manager.logical_commits;
    m_combine = (if combine then Some (Combine.stats ()) else None);
  }

let combine_json ~key_space ~domains ~ops ~window_us ~slots ~runs
    ~batch_mean ~descent_ratio ~flush_ratio ~gates ~passed =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"combine\",\n";
  Printf.bprintf b
    "  \"key_space\": %d, \"domains\": %d, \"ops\": %d, \"window_us\": %d, \
     \"slots\": %d,\n"
    key_space domains ops window_us slots;
  Buffer.add_string b "  \"runs\": [\n";
  List.iteri
    (fun i m ->
      let c_reqs, c_batches, c_handbacks, c_mean, c_max =
        match m.m_combine with
        | Some c ->
            ( c.Combine.reqs, c.Combine.batches, c.Combine.handbacks,
              c.Combine.batch_mean, c.Combine.batch_max )
        | None -> (0, 0, 0, 0.0, 0)
      in
      Printf.bprintf b
        "    {\"mode\": %S, \"ops\": %d, \"elapsed_s\": %.4f, \"ops_per_s\": \
         %.1f, \"p99_ns\": %d, \"descents\": %d, \"flush_requests\": %d, \
         \"logical_commits\": %d, \"combine_reqs\": %d, \"batches\": %d, \
         \"handbacks\": %d, \"batch_mean\": %.2f, \"batch_max\": %d}%s\n"
        m.m_mode m.m_result.Driver.total_ops m.m_result.Driver.elapsed_s
        m.m_result.Driver.ops_per_s m.m_result.Driver.p99_ns m.m_descents
        m.m_flush_requests m.m_logical_commits c_reqs c_batches c_handbacks
        c_mean c_max
        (if i = List.length runs - 1 then "" else ","))
    runs;
  Buffer.add_string b "  ],\n";
  Printf.bprintf b
    "  \"headline\": {\"batch_mean\": %.2f, \"descent_reduction\": %.2f, \
     \"flush_request_reduction\": %.2f},\n"
    batch_mean descent_ratio flush_ratio;
  let g_mean, g_descents, g_flush = gates in
  Printf.bprintf b
    "  \"gates\": {\"batch_mean_gt\": %.2f, \"descents_ratio_ge\": %.2f, \
     \"flush_requests_ratio_ge\": %.2f, \"passed\": %b}\n"
    g_mean g_descents g_flush passed;
  Buffer.add_string b "}\n";
  Buffer.contents b

let combine_impl ~key_space ~page_size ~domains ~ops_per_domain ~window_us
    ~slots ~gates ~out () =
  let storm combine =
    with_file_log (fun log_path ->
        combine_storm ~combine ~window_us ~slots ~page_size ~domains
          ~ops_per_domain ~key_space ~log_path)
  in
  let direct = storm false in
  let combined = storm true in
  let runs = [ direct; combined ] in
  Table.print
    ~title:
      (Printf.sprintf
         "Write combining: Zipf(0.99) update storm, %d keys, %d domains x %d \
          ops (window %dus, %d slots)"
         key_space domains ops_per_domain window_us slots)
    ~header:
      [ "mode"; "ops/s"; "p99 ns"; "descents"; "flush reqs"; "commits";
        "batch mean"; "batch max"; "handbacks" ]
    (List.map
       (fun m ->
         let c_mean, c_max, c_hb =
           match m.m_combine with
           | Some c -> (c.Combine.batch_mean, c.Combine.batch_max, c.Combine.handbacks)
           | None -> (0.0, 0, 0)
         in
         [
           m.m_mode;
           fmt_ops m.m_result.Driver.ops_per_s;
           string_of_int m.m_result.Driver.p99_ns;
           string_of_int m.m_descents;
           string_of_int m.m_flush_requests;
           string_of_int m.m_logical_commits;
           Printf.sprintf "%.2f" c_mean;
           string_of_int c_max;
           string_of_int c_hb;
         ])
       runs);
  let ratio a b = if b = 0 then Float.infinity else float_of_int a /. float_of_int b in
  let descent_ratio = ratio direct.m_descents combined.m_descents in
  let flush_ratio = ratio direct.m_flush_requests combined.m_flush_requests in
  let batch_mean =
    match combined.m_combine with Some c -> c.Combine.batch_mean | None -> 0.0
  in
  let g_mean, g_descents, g_flush = gates in
  let passed =
    batch_mean > g_mean && descent_ratio >= g_descents
    && flush_ratio >= g_flush
  in
  Printf.printf
    "headline: batch_mean %.2f (gate > %.2f), descents %.2fx fewer (gate >= \
     %.2fx), flush requests %.2fx fewer (gate >= %.2fx) -> %s\n%!"
    batch_mean g_mean descent_ratio g_descents flush_ratio g_flush
    (if passed then "PASS" else "FAIL");
  let oc = open_out out in
  output_string oc
    (combine_json ~key_space ~domains ~ops:(domains * ops_per_domain)
       ~window_us ~slots ~runs ~batch_mean ~descent_ratio ~flush_ratio ~gates
       ~passed);
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if not passed then exit 1

let combine_bench () =
  combine_impl ~key_space:256 ~page_size:8192 ~domains:8 ~ops_per_domain:5_000
    ~window_us:1_500 ~slots:4 ~gates:(1.5, 2.0, 1.5) ~out:"BENCH_combine.json"
    ()

let combine_smoke () =
  combine_impl ~key_space:64 ~page_size:4096 ~domains:4 ~ops_per_domain:1_500
    ~window_us:1_000 ~slots:4 ~gates:(1.2, 1.2, 1.2) ~out:"BENCH_combine.json"
    ()

(* ------------------------------------------------------------------ *)
(* E22 / mvcc: snapshot-isolation read storm. Readers run point reads
   inside transactions while writers storm the same key space. "locked"
   is the B-link engine's locked-read path (record S locks under the
   no-wait rule); "si" is the TSB engine under [si_txns], where every
   read is an as-of read against the version store. Gated: a quiescent
   SI read phase must make zero lock-manager calls and suffer zero
   latch contention, and all its reads must be served as snapshot
   reads. Emits BENCH_mvcc.json.                                       *)
(* ------------------------------------------------------------------ *)

type mvcc_run = {
  v_mode : string;  (* "locked" | "si" *)
  v_reads : int;
  v_read_p50 : int;
  v_read_p99 : int;
  v_reads_per_s : float;
  v_write_commits : int;
  v_conflicts : int;
  v_lock_acq : int;
  v_lock_waits : int;
}

type mvcc_gate = {
  g_reads : int;
  g_lock_calls : int;
  g_lock_waits : int;
  g_latch_contended : int;
  g_si_reads : int;
}

let pct_of samples p =
  let n = Array.length samples in
  if n = 0 then 0
  else begin
    Array.sort compare samples;
    samples.(min (n - 1) (int_of_float (float_of_int n *. p)))
  end

let mvcc_storm ~si ~keys ~reader_domains ~writer_domains ~read_txns
    ~reads_per_txn ~writes_per_txn =
  let env =
    Env.create
      {
        Env.default_config with
        page_size = 1024;
        pool_capacity = 32768;
        si_txns = si;
        consolidation = false;
      }
  in
  let key i = Printf.sprintf "key%06d" i in
  let mgr = Env.txns env in
  let inst =
    if si then Tsb_engine.inst (Tsb.create env ~name:"bench")
    else Blink_engine.inst (Blink.create env ~name:"bench")
  in
  for i = 0 to keys - 1 do
    Engine.insert inst ~key:(key i) ~value:(String.make 16 'v')
  done;
  ignore (Env.drain env);
  let begin_txn () =
    if si then Mvcc.begin_snapshot mgr else Txn_mgr.begin_txn mgr Txn.User
  in
  let commit txn =
    if si then ignore (Mvcc.commit mgr txn : int option)
    else Txn_mgr.commit mgr txn
  in
  let stop = Atomic.make false in
  let writer d =
    let rng = Rng.create (Int64.of_int (1000 + d)) in
    let commits = ref 0 and conflicts = ref 0 in
    while not (Atomic.get stop) do
      let txn = begin_txn () in
      try
        for _ = 1 to writes_per_txn do
          Engine.insert ~txn inst ~key:(key (Rng.int rng keys))
            ~value:(Printf.sprintf "w%d" d)
        done;
        commit txn;
        incr commits
      with Mvcc.Write_conflict _ -> incr conflicts
    done;
    (!commits, !conflicts)
  in
  let reader d =
    let rng = Rng.create (Int64.of_int (1 + d)) in
    let samples = Array.make (read_txns * reads_per_txn) 0 in
    let i = ref 0 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to read_txns do
      let txn = begin_txn () in
      for _ = 1 to reads_per_txn do
        let k = key (Rng.int rng keys) in
        let s = Clock.now_ns () in
        ignore (Engine.find ~txn inst k : string option);
        samples.(!i) <- Clock.now_ns () - s;
        incr i
      done;
      commit txn
    done;
    (samples, Unix.gettimeofday () -. t0)
  in
  let l0 = Lock_manager.stats (Env.locks env) in
  let ws = List.init writer_domains (fun d -> Domain.spawn (fun () -> writer d)) in
  let rs = List.init reader_domains (fun d -> Domain.spawn (fun () -> reader d)) in
  let reader_results = List.map Domain.join rs in
  Atomic.set stop true;
  let writer_results = List.map Domain.join ws in
  let l1 = Lock_manager.stats (Env.locks env) in
  ignore (Env.drain env);
  let samples = Array.concat (List.map fst reader_results) in
  let elapsed = List.fold_left (fun a (_, s) -> Float.max a s) 0.0 reader_results in
  let commits = List.fold_left (fun a (c, _) -> a + c) 0 writer_results in
  let conflicts = List.fold_left (fun a (_, c) -> a + c) 0 writer_results in
  let run =
    {
      v_mode = (if si then "si" else "locked");
      v_reads = Array.length samples;
      v_read_p50 = pct_of samples 0.50;
      v_read_p99 = pct_of samples 0.99;
      v_reads_per_s =
        (if elapsed > 0.0 then float_of_int (Array.length samples) /. elapsed
         else 0.0);
      v_write_commits = commits;
      v_conflicts = conflicts;
      v_lock_acq = l1.Lock_manager.acquisitions - l0.Lock_manager.acquisitions;
      v_lock_waits = l1.Lock_manager.waits - l0.Lock_manager.waits;
    }
  in
  (* Quiescent gate phase: with the writers gone, a pure SI read txn must
     touch neither the lock manager nor a contended latch, and every read
     must be served from the snapshot. *)
  let gate =
    if not si then None
    else begin
      let l0 = Lock_manager.stats (Env.locks env) in
      let a0 = Latch.global_stats () in
      let m0 = Mvcc.stats () in
      let rng = Rng.create 99L in
      let n = 2_000 in
      let txn = Mvcc.begin_snapshot mgr in
      for _ = 1 to n do
        ignore (Engine.find ~txn inst (key (Rng.int rng keys)) : string option)
      done;
      ignore (Mvcc.commit mgr txn : int option);
      let l1 = Lock_manager.stats (Env.locks env) in
      let a1 = Latch.global_stats () in
      let d = Mvcc.sub_stats (Mvcc.stats ()) m0 in
      Some
        {
          g_reads = n;
          g_lock_calls = l1.Lock_manager.acquisitions - l0.Lock_manager.acquisitions;
          g_lock_waits = l1.Lock_manager.waits - l0.Lock_manager.waits;
          g_latch_contended = a1.Latch.contended - a0.Latch.contended;
          g_si_reads = d.Mvcc.si_reads;
        }
    end
  in
  (run, gate)

let mvcc_json ~keys ~reader_domains ~writer_domains ~runs ~gate ~passed =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"mvcc\",\n";
  Printf.bprintf b
    "  \"keys\": %d, \"reader_domains\": %d, \"writer_domains\": %d,\n" keys
    reader_domains writer_domains;
  Buffer.add_string b "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      let denom = r.v_write_commits + r.v_conflicts in
      Printf.bprintf b
        "    {\"mode\": %S, \"reads\": %d, \"reads_per_s\": %.1f, \"p50_ns\": \
         %d, \"p99_ns\": %d, \"write_commits\": %d, \"aborts\": %d, \
         \"conflict_rate\": %.4f, \"lock_acquisitions\": %d, \"lock_waits\": \
         %d}%s\n"
        r.v_mode r.v_reads r.v_reads_per_s r.v_read_p50 r.v_read_p99
        r.v_write_commits r.v_conflicts
        (if denom = 0 then 0.0
         else float_of_int r.v_conflicts /. float_of_int denom)
        r.v_lock_acq r.v_lock_waits
        (if i = List.length runs - 1 then "" else ","))
    runs;
  Buffer.add_string b "  ],\n";
  (match gate with
  | Some g ->
      Printf.bprintf b
        "  \"gates\": {\"quiescent_si_reads\": %d, \"lock_calls\": %d, \
         \"lock_waits\": %d, \"latch_contended\": %d, \"si_reads_served\": \
         %d, \"passed\": %b}\n"
        g.g_reads g.g_lock_calls g.g_lock_waits g.g_latch_contended
        g.g_si_reads passed
  | None -> Printf.bprintf b "  \"gates\": {\"passed\": %b}\n" passed);
  Buffer.add_string b "}\n";
  Buffer.contents b

let mvcc_impl ~keys ~reader_domains ~writer_domains ~read_txns ~reads_per_txn
    ~writes_per_txn ~out () =
  let locked, _ =
    mvcc_storm ~si:false ~keys ~reader_domains ~writer_domains ~read_txns
      ~reads_per_txn ~writes_per_txn
  in
  let si, gate =
    mvcc_storm ~si:true ~keys ~reader_domains ~writer_domains ~read_txns
      ~reads_per_txn ~writes_per_txn
  in
  let runs = [ locked; si ] in
  Table.print
    ~title:
      (Printf.sprintf
         "MVCC read storm: %d readers x %d txns x %d reads vs %d writers \
          (%d keys)"
         reader_domains read_txns reads_per_txn writer_domains keys)
    ~header:
      [ "mode"; "reads/s"; "p50 ns"; "p99 ns"; "write commits"; "aborts";
        "lock acq"; "lock waits" ]
    (List.map
       (fun r ->
         [
           r.v_mode;
           fmt_ops r.v_reads_per_s;
           string_of_int r.v_read_p50;
           string_of_int r.v_read_p99;
           string_of_int r.v_write_commits;
           string_of_int r.v_conflicts;
           string_of_int r.v_lock_acq;
           string_of_int r.v_lock_waits;
         ])
       runs);
  let g = Option.get gate in
  let passed =
    g.g_lock_calls = 0 && g.g_lock_waits = 0 && g.g_latch_contended = 0
    && g.g_si_reads >= g.g_reads
  in
  Printf.printf
    "gate: quiescent SI phase made %d lock calls / %d waits / %d contended \
     latches over %d reads (%d served as snapshot reads) -> %s\n%!"
    g.g_lock_calls g.g_lock_waits g.g_latch_contended g.g_reads g.g_si_reads
    (if passed then "PASS" else "FAIL");
  let oc = open_out out in
  output_string oc
    (mvcc_json ~keys ~reader_domains ~writer_domains ~runs ~gate ~passed);
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if not passed then exit 1

let mvcc_bench () =
  mvcc_impl ~keys:20_000 ~reader_domains:4 ~writer_domains:2 ~read_txns:400
    ~reads_per_txn:16 ~writes_per_txn:4 ~out:"BENCH_mvcc.json" ()

let mvcc_smoke () =
  mvcc_impl ~keys:2_000 ~reader_domains:2 ~writer_domains:1 ~read_txns:100
    ~reads_per_txn:8 ~writes_per_txn:4 ~out:"BENCH_mvcc.json" ()

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14);
    ("wal", wal); ("wal-smoke", wal_smoke);
    ("pool", pool_bench); ("pool-smoke", pool_smoke);
    ("ckpt", ckpt); ("ckpt-smoke", ckpt_smoke);
    ("endure", endure); ("endure-smoke", endure_smoke);
    ("churn", churn); ("churn-smoke", churn_smoke);
    ("olc", olc); ("olc-smoke", olc_smoke);
    ("combine", combine_bench); ("combine-smoke", combine_smoke);
    ("mvcc", mvcc_bench); ("mvcc-smoke", mvcc_smoke);
    ("micro", micro);
  ]

(* smoke variants would overwrite the full runs' JSON artifacts *)
let smoke_variants =
  [ "wal-smoke"; "pool-smoke"; "ckpt-smoke"; "endure-smoke"; "olc-smoke";
    "combine-smoke"; "churn-smoke"; "mvcc-smoke" ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [ "--help" ] | [ "-h" ] ->
      print_endline
        "usage: bench/main.exe [e1 .. e14 | wal | wal-smoke | pool | \
         pool-smoke | ckpt | ckpt-smoke | endure | endure-smoke | olc | \
         olc-smoke | combine | combine-smoke | churn | churn-smoke | mvcc | \
         mvcc-smoke | micro | all]";
      List.iter (fun (n, _) -> Printf.printf "  %s\n" n) experiments
  | [] | [ "all" ] ->
      List.iter
        (fun (name, f) ->
          Printf.printf "\n### running %s ...\n%!" name;
          f ())
        (List.filter (fun (n, _) -> not (List.mem n smoke_variants)) experiments)
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None -> Printf.eprintf "unknown experiment %S\n" name)
        names
