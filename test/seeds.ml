(* Central seed control for randomized tests.

   Default seeds are fixed, so a plain `dune runtest` is reproducible.
   Setting PITREE_SEED=<int64> reseeds every randomized test from that
   base — each test derives its own stream from the base and its name —
   and any failure prints the PITREE_SEED value that replays it. *)

let base, overridden =
  match Sys.getenv_opt "PITREE_SEED" with
  | None -> (0L, false)
  | Some s -> (
      match Int64.of_string_opt s with
      | Some v -> (v, true)
      | None ->
          failwith (Printf.sprintf "PITREE_SEED=%S is not a valid int64" s))

(* SplitMix64 finalizer over base + hash(name): distinct tests get
   well-separated streams from the same base. *)
let derive name =
  let z = ref (Int64.add base (Int64.of_int (Hashtbl.hash name))) in
  z := Int64.add !z 0x9E3779B97F4A7C15L;
  z :=
    Int64.mul
      (Int64.logxor !z (Int64.shift_right_logical !z 30))
      0xBF58476D1CE4E5B9L;
  z :=
    Int64.mul
      (Int64.logxor !z (Int64.shift_right_logical !z 27))
      0x94D049BB133111EBL;
  Int64.logxor !z (Int64.shift_right_logical !z 31)

let report name seed =
  Printf.eprintf
    "[seeds] %s failed (seed %Ld); replay with PITREE_SEED=%Ld%s\n%!" name seed
    base
    (if overridden then "" else " (the default)")

(* Run [f seed] with the test's derived seed; print the replay line on any
   failure. *)
let with_seed name f =
  let seed = derive name in
  try f seed
  with e ->
    report name seed;
    raise e

(* For tests whose seeds are derived at module level (several fixed
   sub-seeds offset from one derived base): just print the replay line on
   failure. *)
let guard name f =
  try f ()
  with e ->
    report name (derive name);
    raise e
