(* Hot-key write combining: the elimination funnel itself, its blink
   integration (visibility, durability, handback to the split path), the
   crash point between batch apply and batch commit, follower/pool
   interaction under a tight frame budget, and the endurance-rig knobs
   that ride along (storm mix, pinned pool shards, logical commits). *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Combine = Pitree_combine.Combine
module Wellformed = Pitree_core.Wellformed
module Crash_point = Pitree_util.Crash_point
module Log_manager = Pitree_wal.Log_manager
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Endure = Pitree_harness.Endure
module Stats = Pitree_harness.Stats
module Buffer_pool = Pitree_storage.Buffer_pool

let check_wf t =
  let report = Blink.verify t in
  if not (Wellformed.ok report) then
    Alcotest.failf "tree not well-formed: %a" Wellformed.pp_report report

let mk_cfg ?(page_size = 256) ?(pool = 4096) ?(combine = true)
    ?(window_us = 0) () =
  {
    Env.default_config with
    page_size;
    pool_capacity = pool;
    combine;
    combine_window_us = window_us;
  }

(* --- the funnel in isolation --- *)

(* One leader, three stragglers: the first submit elects itself and its
   apply blocks on [gate]; the stragglers publish into the claimed slot
   meanwhile, so once the gate opens they settle as one batch. *)
let test_funnel_batches () =
  Combine.reset_stats ();
  let gate = Atomic.make false in
  let first = Atomic.make true in
  let c =
    Combine.create ~slots:1
      ~apply:(fun reqs ->
        if Atomic.compare_and_set first true false then
          while not (Atomic.get gate) do
            Thread.yield ()
          done;
        Array.map (fun x -> x * 2) reqs)
      ()
  in
  let results = Array.make 4 0 in
  let spawn i = Thread.create (fun () -> results.(i) <- Combine.submit c ~hash:0 (i + 1)) () in
  let t0 = spawn 0 in
  (* The leader bumps the batch counter before it enters apply. *)
  while (Combine.stats ()).Combine.batches < 1 do
    Thread.yield ()
  done;
  let rest = List.map spawn [ 1; 2; 3 ] in
  while (Combine.stats ()).Combine.reqs < 4 do
    Thread.yield ()
  done;
  Thread.delay 0.2 (* let the stragglers publish into the slot *);
  Atomic.set gate true;
  List.iter Thread.join (t0 :: rest);
  Array.iteri
    (fun i r -> Alcotest.(check int) "result = req * 2" ((i + 1) * 2) r)
    results;
  let s = Combine.stats () in
  Alcotest.(check int) "all requests funneled" 4 s.Combine.reqs;
  Alcotest.(check bool) "stragglers settled as one batch" true
    (s.Combine.batch_max >= 2);
  Alcotest.(check bool)
    (Printf.sprintf "batches (%d) < reqs" s.Combine.batches)
    true
    (s.Combine.batches < s.Combine.reqs)

(* --- blink integration --- *)

let key i = Printf.sprintf "key%06d" i

(* With combining on, non-transactional puts route through the funnel
   even single-threaded (batches of one): every put must be visible
   immediately and survive crash recovery. *)
let test_combined_puts_visible_durable () =
  Combine.reset_stats ();
  let env = Env.create (mk_cfg ()) in
  let t = Blink.create env ~name:"t" in
  for i = 0 to 99 do
    Blink.insert t ~key:(key i) ~value:(Printf.sprintf "v%d" i)
  done;
  for i = 0 to 99 do
    Alcotest.(check (option string)) "visible"
      (Some (Printf.sprintf "v%d" i))
      (Blink.find t (key i))
  done;
  Alcotest.(check bool) "puts went through the funnel" true
    ((Combine.stats ()).Combine.reqs >= 100);
  check_wf t;
  Env.crash env;
  ignore (Env.recover env);
  match Blink.open_existing env ~name:"t" with
  | None -> Alcotest.fail "tree vanished after recovery"
  | Some t ->
      for i = 0 to 99 do
        Alcotest.(check (option string)) "durable"
          (Some (Printf.sprintf "v%d" i))
          (Blink.find t (key i))
      done;
      check_wf t

(* A batched update that no longer fits its leaf is handed back to the
   ordinary insert path (which splits), never silently dropped. Filling a
   256-byte leaf and then growing one record forces exactly that. *)
let test_handback_feeds_split_path () =
  Combine.reset_stats ();
  let env = Env.create (mk_cfg ()) in
  let t = Blink.create env ~name:"t" in
  for i = 0 to 199 do
    Blink.insert t ~key:(key i) ~value:"small"
  done;
  let big = String.make 120 'B' in
  let hb0 = (Combine.stats ()).Combine.handbacks in
  for i = 0 to 199 do
    Blink.insert t ~key:(key i) ~value:big
  done;
  let hb1 = (Combine.stats ()).Combine.handbacks in
  Alcotest.(check bool)
    (Printf.sprintf "handbacks grew (%d -> %d)" hb0 hb1)
    true (hb1 > hb0);
  for i = 0 to 199 do
    Alcotest.(check (option string)) "grown value present" (Some big)
      (Blink.find t (key i))
  done;
  check_wf t

(* Multi-threaded write storm over disjoint per-thread key ranges with a
   combining window: whatever the batching, every acked put must be the
   key's final state and the tree must stay well-formed. *)
let test_storm_correctness () =
  Combine.reset_stats ();
  let env = Env.create (mk_cfg ~window_us:1_000 ()) in
  let t = Blink.create env ~name:"t" in
  let threads = 4 and per = 120 in
  let value w i = Printf.sprintf "w%d.%d" w i in
  let workers =
    List.init threads (fun w ->
        Thread.create
          (fun () ->
            for i = 0 to per - 1 do
              Blink.insert t ~key:(key ((w * per) + i)) ~value:(value w i)
            done)
          ())
  in
  List.iter Thread.join workers;
  for w = 0 to threads - 1 do
    for i = 0 to per - 1 do
      Alcotest.(check (option string)) "acked put is final state"
        (Some (value w i))
        (Blink.find t (key ((w * per) + i)))
    done
  done;
  check_wf t;
  let s = Combine.stats () in
  Alcotest.(check int) "every put funneled" (threads * per) s.Combine.reqs

(* --- crash at combine.applied: all-or-nothing batches --- *)

(* The crash point sits after the batch is applied to the leaf but before
   its transaction commits. A crash there must roll the whole batch back:
   puts that raised [Crash_requested] leave no trace, puts acked before
   the crash survive recovery bit-for-bit. *)
let test_crash_at_combine_applied () =
  Crash_point.disarm_all ();
  Crash_point.reset_counts ();
  let env = Env.create (mk_cfg ()) in
  let t = Blink.create env ~name:"t" in
  let acked = Hashtbl.create 32 and doomed = Hashtbl.create 4 in
  Crash_point.arm Combine.crash_point_applied ~after:12;
  (* Put until the armed point fires, then stop cold — the fault model is
     a power failure at that instant, not a process that soldiers on. *)
  (try
     for i = 0 to 29 do
       let v = Printf.sprintf "v%d" i in
       try
         Blink.insert t ~key:(key i) ~value:v;
         Hashtbl.replace acked (key i) v
       with Crash_point.Crash_requested _ as e ->
         Hashtbl.replace doomed (key i) v;
         raise e
     done
   with Crash_point.Crash_requested _ -> ());
  Alcotest.(check bool) "the crash point fired" true (Hashtbl.length doomed > 0);
  Env.crash env;
  ignore (Env.recover env);
  (match Blink.open_existing env ~name:"t" with
  | None -> Alcotest.fail "tree vanished after recovery"
  | Some t ->
      Hashtbl.iter
        (fun k v ->
          Alcotest.(check (option string)) ("acked " ^ k) (Some v)
            (Blink.find t k))
        acked;
      Hashtbl.iter
        (fun k _ ->
          Alcotest.(check (option string)) ("unacked " ^ k ^ " rolled back")
            None (Blink.find t k))
        doomed;
      check_wf t);
  Crash_point.disarm_all ()

(* Same point under a concurrent storm, so the doomed batch can have real
   fan-in: every member of it raises (no torn acks) and none of their
   values survive recovery, while everything acked does. *)
let test_crash_at_combine_applied_storm () =
  Crash_point.disarm_all ();
  Crash_point.reset_counts ();
  let env = Env.create (mk_cfg ~window_us:1_000 ()) in
  let t = Blink.create env ~name:"t" in
  let mu = Mutex.create () in
  let acked = Hashtbl.create 256 and doomed = Hashtbl.create 16 in
  let note tbl k v =
    Mutex.lock mu;
    Hashtbl.replace tbl k v;
    Mutex.unlock mu
  in
  Crash_point.arm Combine.crash_point_applied ~after:8;
  let threads = 3 and per = 80 in
  let workers =
    List.init threads (fun w ->
        Thread.create
          (fun () ->
            (* A worker that sees the crash (as doomed leader or doomed
               follower) stops dead, like a domain losing power. *)
            try
              for i = 0 to per - 1 do
                let k = key ((w * per) + i) in
                let v = Printf.sprintf "w%d.%d" w i in
                try
                  Blink.insert t ~key:k ~value:v;
                  note acked k v
                with Crash_point.Crash_requested _ as e ->
                  note doomed k v;
                  raise e
              done
            with Crash_point.Crash_requested _ -> ())
          ())
  in
  List.iter Thread.join workers;
  Alcotest.(check bool) "the crash point fired" true (Hashtbl.length doomed > 0);
  Env.crash env;
  ignore (Env.recover env);
  (match Blink.open_existing env ~name:"t" with
  | None -> Alcotest.fail "tree vanished after recovery"
  | Some t ->
      Hashtbl.iter
        (fun k v ->
          Alcotest.(check (option string)) ("acked " ^ k) (Some v)
            (Blink.find t k))
        acked;
      Hashtbl.iter
        (fun k _ ->
          Alcotest.(check (option string)) ("doomed " ^ k ^ " rolled back")
            None (Blink.find t k))
        doomed;
      check_wf t);
  Crash_point.disarm_all ()

(* --- parked followers hold nothing --- *)

(* A follower parks on its slot's condvar holding no pins, latches or
   locks, so a storm with a long combining window stays live even when
   the buffer pool barely fits one descent per thread. If followers
   parked while pinned, the 16-frame pool would exhaust its bounded pin
   attempts under four concurrent writers and deep 256-byte pages. *)
let test_tight_pool_parked_followers () =
  Combine.reset_stats ();
  let env =
    Env.create
      {
        (mk_cfg ~pool:16 ~window_us:1_500 ()) with
        Env.pool_pin_attempts = Some 50;
      }
  in
  let t = Blink.create env ~name:"t" in
  let threads = 4 and per = 80 in
  let workers =
    List.init threads (fun w ->
        Thread.create
          (fun () ->
            for i = 0 to per - 1 do
              Blink.insert t
                ~key:(key (((w * per) + i) mod 64))
                ~value:(Printf.sprintf "w%d.%d" w i)
            done)
          ())
  in
  List.iter Thread.join workers;
  check_wf t;
  for i = 0 to 63 do
    Alcotest.(check bool) "key present" true (Blink.find t (key i) <> None)
  done

(* --- WAL accounting: one flush enrollment, N commits --- *)

let test_logical_commits_credit () =
  let env = Env.create (mk_cfg ~combine:false ()) in
  let t = Blink.create env ~name:"t" in
  let log = Env.log env in
  let before = Log_manager.stats log in
  let mgr = Env.txns env in
  let txn = Txn_mgr.begin_txn mgr Txn.User in
  Blink.insert ~txn t ~key:"a" ~value:"1";
  Txn_mgr.commit ~commits:5 mgr txn;
  let after = Log_manager.stats log in
  Alcotest.(check int) "one flush request"
    1
    (after.Log_manager.flush_requests - before.Log_manager.flush_requests);
  Alcotest.(check int) "five logical commits credited" 5
    (after.Log_manager.logical_commits - before.Log_manager.logical_commits);
  let txn = Txn_mgr.begin_txn mgr Txn.User in
  Blink.insert ~txn t ~key:"b" ~value:"2";
  Txn_mgr.commit mgr txn;
  let final = Log_manager.stats log in
  Alcotest.(check int) "default credit is one" 6
    (final.Log_manager.logical_commits - before.Log_manager.logical_commits)

(* --- endurance rig satellites --- *)

(* The pool's shard count must be pinned, not left to the core-count
   default: on a single-CPU host [Domain.recommended_domain_count] is 1,
   which silently serialized every pin behind one shard lock (the
   "shards": 1 row BENCH_endure.json used to show at 8 domains). *)
let test_endure_pool_shards_pinned () =
  let cfg8 = { Endure.default_config with Endure.domains = 8 } in
  let env_cfg = Endure.env_config cfg8 ~wal_path:"/tmp/pitree_test.wal" in
  Alcotest.(check (option int)) "8 domains -> 16 shards" (Some 16)
    env_cfg.Env.pool_shards;
  let cfg1 = { Endure.default_config with Endure.domains = 1 } in
  let env_cfg = Endure.env_config cfg1 ~wal_path:"/tmp/pitree_test.wal" in
  Alcotest.(check (option int)) "never below 8 shards" (Some 8)
    env_cfg.Env.pool_shards;
  let off = { cfg8 with Endure.combine = false } in
  let env_cfg = Endure.env_config off ~wal_path:"/tmp/pitree_test.wal" in
  Alcotest.(check bool) "combine flag propagates" false env_cfg.Env.combine

(* A miniature update-only write storm through the rig: combining on, so
   the report must carry an ok [combine_reqs] SLO row proving the funnel
   engaged, and the pool must show the pinned shard count. *)
let test_endure_storm_mix () =
  let cfg =
    {
      Endure.default_config with
      Endure.keys = 2_000;
      seconds = 1.5;
      domains = 2;
      mix = Endure.Storm;
      theta = 0.99;
      pool_capacity = 1024;
      ckpt_log_bytes = 524_288;
      faults = false;
      crash_cycles = 0;
      verify_sample = 200;
    }
  in
  let r = Endure.run cfg in
  if not r.Endure.passed then
    Alcotest.failf "storm run failed SLOs: %a" Endure.pp_result r;
  (match
     List.find_opt (fun s -> s.Endure.name = "combine_reqs") r.Endure.slos
   with
  | None -> Alcotest.fail "no combine_reqs SLO row in a combining storm run"
  | Some s ->
      Alcotest.(check bool) "combine_reqs SLO ok" true s.Endure.ok;
      Alcotest.(check bool) "funnel actually engaged" true (s.Endure.actual >= 1.));
  match r.Endure.stats.Stats.pool with
  | None -> Alcotest.fail "no pool stats in report"
  | Some p ->
      Alcotest.(check bool)
        (Printf.sprintf "pool shards pinned (%d >= 8)" p.Buffer_pool.shards)
        true
        (p.Buffer_pool.shards >= 8)

let suites =
  [
    ( "combine",
      [
        Alcotest.test_case "funnel batches stragglers" `Quick
          test_funnel_batches;
        Alcotest.test_case "combined puts visible + durable" `Quick
          test_combined_puts_visible_durable;
        Alcotest.test_case "handback feeds the split path" `Quick
          test_handback_feeds_split_path;
        Alcotest.test_case "storm correctness" `Quick test_storm_correctness;
        Alcotest.test_case "crash at combine.applied" `Quick
          test_crash_at_combine_applied;
        Alcotest.test_case "crash at combine.applied under storm" `Quick
          test_crash_at_combine_applied_storm;
        Alcotest.test_case "tight pool: parked followers hold nothing" `Quick
          test_tight_pool_parked_followers;
        Alcotest.test_case "logical commits credited per batch" `Quick
          test_logical_commits_credit;
        Alcotest.test_case "endure pool shards pinned" `Quick
          test_endure_pool_shards_pinned;
        Alcotest.test_case "endure storm mix + combine SLO" `Slow
          test_endure_storm_mix;
      ] );
  ]
