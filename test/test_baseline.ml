(* Tests for the comparison baselines: lock-coupling B+tree and tree-latch
   (serial SMO) B+tree. *)

module Env = Pitree_env.Env
module Btc = Pitree_baseline.Bt_coupling
module Btl = Pitree_baseline.Bt_treelatch

let cfg () =
  {
    Env.default_config with
    page_size = 256;
    pool_capacity = 4096;
    page_oriented_undo = false;
    consolidation = false;
  }

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "val%06d" i

let test_coupling_basic () =
  let env = Env.create (cfg ()) in
  let t = Btc.create env ~name:"c" in
  Alcotest.(check (option string)) "empty" None (Btc.find t "x");
  Btc.insert t ~key:"a" ~value:"1";
  Btc.insert t ~key:"a" ~value:"2";
  Alcotest.(check (option string)) "overwrite" (Some "2") (Btc.find t "a");
  Alcotest.(check int) "count" 1 (Btc.count t)

let test_coupling_many () =
  Seeds.with_seed "baseline.coupling-many" @@ fun seed ->
  let env = Env.create (cfg ()) in
  let t = Btc.create env ~name:"c" in
  let n = 2000 in
  let rng = Pitree_util.Rng.create seed in
  let keys = Array.init n key in
  Pitree_util.Rng.shuffle rng keys;
  Array.iter (fun k -> Btc.insert t ~key:k ~value:("v" ^ k)) keys;
  Alcotest.(check int) "count" n (Btc.count t);
  Alcotest.(check bool) "grew" true (Btc.height t > 1);
  Array.iter
    (fun k ->
      match Btc.find t k with
      | Some v when v = "v" ^ k -> ()
      | _ -> Alcotest.failf "lost %s" k)
    keys;
  let s = Btc.stats t in
  Alcotest.(check bool) "splits" true (s.Btc.splits > 10);
  Alcotest.(check bool) "unsafe retention tracked" true (s.Btc.unsafe_retained >= 0)

let test_coupling_delete () =
  let env = Env.create (cfg ()) in
  let t = Btc.create env ~name:"c" in
  for i = 0 to 499 do
    Btc.insert t ~key:(key i) ~value:(value i)
  done;
  for i = 0 to 499 do
    if i mod 3 = 0 then
      Alcotest.(check bool) "deleted" true (Btc.delete t (key i))
  done;
  Alcotest.(check bool) "absent" false (Btc.delete t "zz");
  for i = 0 to 499 do
    let expect = if i mod 3 = 0 then None else Some (value i) in
    Alcotest.(check (option string)) (key i) expect (Btc.find t (key i))
  done

let test_treelatch_basic () =
  let env = Env.create (cfg ()) in
  let t = Btl.create env ~name:"l" in
  Btl.insert t ~key:"a" ~value:"1";
  Btl.insert t ~key:"b" ~value:"2";
  Btl.insert t ~key:"a" ~value:"3";
  Alcotest.(check (option string)) "a" (Some "3") (Btl.find t "a");
  Alcotest.(check (option string)) "b" (Some "2") (Btl.find t "b");
  Alcotest.(check int) "count" 2 (Btl.count t)

let test_treelatch_many () =
  Seeds.with_seed "baseline.treelatch-many" @@ fun seed ->
  let env = Env.create (cfg ()) in
  let t = Btl.create env ~name:"l" in
  let n = 2000 in
  let rng = Pitree_util.Rng.create seed in
  let keys = Array.init n key in
  Pitree_util.Rng.shuffle rng keys;
  Array.iter (fun k -> Btl.insert t ~key:k ~value:("v" ^ k)) keys;
  Alcotest.(check int) "count" n (Btl.count t);
  Alcotest.(check bool) "grew" true (Btl.height t > 1);
  Array.iter
    (fun k ->
      match Btl.find t k with
      | Some v when v = "v" ^ k -> ()
      | _ -> Alcotest.failf "lost %s" k)
    keys;
  Alcotest.(check bool) "splits" true ((Btl.stats t).Btl.splits > 10)

let test_treelatch_delete () =
  let env = Env.create (cfg ()) in
  let t = Btl.create env ~name:"l" in
  for i = 0 to 299 do
    Btl.insert t ~key:(key i) ~value:(value i)
  done;
  for i = 0 to 299 do
    if i mod 2 = 1 then ignore (Btl.delete t (key i))
  done;
  Alcotest.(check int) "count" 150 (Btl.count t)

let test_same_env_coexistence () =
  (* All three engines share one environment (one pool, one log, one lock
     manager) — as in the paper's DBMS setting. *)
  let env = Env.create (cfg ()) in
  let b = Pitree_blink.Blink.create env ~name:"b" in
  let c = Btc.create env ~name:"c" in
  let l = Btl.create env ~name:"l" in
  for i = 0 to 299 do
    Pitree_blink.Blink.insert b ~key:(key i) ~value:"b";
    Btc.insert c ~key:(key i) ~value:"c";
    Btl.insert l ~key:(key i) ~value:"l"
  done;
  ignore (Env.drain env);
  Alcotest.(check (option string)) "b" (Some "b") (Pitree_blink.Blink.find b (key 7));
  Alcotest.(check (option string)) "c" (Some "c") (Btc.find c (key 7));
  Alcotest.(check (option string)) "l" (Some "l") (Btl.find l (key 7));
  Alcotest.(check int) "b count" 300 (Pitree_blink.Blink.count b);
  Alcotest.(check int) "c count" 300 (Btc.count c);
  Alcotest.(check int) "l count" 300 (Btl.count l)

let suites =
  [
    ( "baseline.coupling",
      [
        Alcotest.test_case "basic" `Quick test_coupling_basic;
        Alcotest.test_case "many" `Quick test_coupling_many;
        Alcotest.test_case "delete" `Quick test_coupling_delete;
      ] );
    ( "baseline.treelatch",
      [
        Alcotest.test_case "basic" `Quick test_treelatch_basic;
        Alcotest.test_case "many" `Quick test_treelatch_many;
        Alcotest.test_case "delete" `Quick test_treelatch_delete;
      ] );
    ( "baseline.shared-env",
      [ Alcotest.test_case "coexistence" `Quick test_same_env_coexistence ] );
  ]
