(* Tests for pitree.storage: slotted pages, disks, buffer pool. *)

module Page = Pitree_storage.Page
module Disk = Pitree_storage.Disk
module Buffer_pool = Pitree_storage.Buffer_pool
module Latch = Pitree_sync.Latch

let mk_page () = Page.create ~size:512 ~id:7 ~kind:Page.Data ~level:0

let test_page_fresh () =
  let p = mk_page () in
  Alcotest.(check int) "id" 7 (Page.id p);
  Alcotest.(check int) "level" 0 (Page.level p);
  Alcotest.(check int) "slots" 0 (Page.slot_count p);
  Alcotest.(check int) "lsn" 0 (Page.lsn p);
  Alcotest.(check int) "side nil" Page.nil (Page.side_ptr p)

let test_page_insert_get () =
  let p = mk_page () in
  Page.insert p 0 "bbb";
  Page.insert p 0 "aaa";
  Page.insert p 2 "ccc";
  Alcotest.(check int) "count" 3 (Page.slot_count p);
  Alcotest.(check string) "slot0" "aaa" (Page.get p 0);
  Alcotest.(check string) "slot1" "bbb" (Page.get p 1);
  Alcotest.(check string) "slot2" "ccc" (Page.get p 2)

let test_page_delete () =
  let p = mk_page () in
  List.iteri (fun i c -> Page.insert p i c) [ "a"; "b"; "c" ];
  let removed = Page.delete p 1 in
  Alcotest.(check string) "removed" "b" removed;
  Alcotest.(check int) "count" 2 (Page.slot_count p);
  Alcotest.(check string) "shifted" "c" (Page.get p 1)

let test_page_replace () =
  let p = mk_page () in
  Page.insert p 0 "short";
  Page.replace p 0 "muchlongercell";
  Alcotest.(check string) "grown" "muchlongercell" (Page.get p 0);
  Page.replace p 0 "s";
  Alcotest.(check string) "shrunk" "s" (Page.get p 0)

let test_page_full () =
  let p = mk_page () in
  Alcotest.check_raises "too big" Page.Page_full (fun () ->
      Page.insert p 0 (String.make 600 'x'))

let test_page_fill_and_compact () =
  let p = mk_page () in
  (* Fill with 20-byte cells, delete every other one, then insert a cell
     that only fits after compaction. *)
  let cell i = Printf.sprintf "%020d" i in
  let n = ref 0 in
  (try
     while true do
       Page.insert p (Page.slot_count p) (cell !n);
       incr n
     done
   with Page.Page_full -> ());
  Alcotest.(check bool) "filled several" true (!n > 10);
  let before = Page.slot_count p in
  for i = before - 1 downto 0 do
    if i mod 2 = 0 then ignore (Page.delete p i)
  done;
  let big = String.make 60 'y' in
  Page.insert p 0 big;
  Alcotest.(check string) "compaction made room" big (Page.get p 0)

let test_page_of_bytes_roundtrip () =
  let p = mk_page () in
  Page.insert p 0 "persist";
  Page.set_side_ptr p 33;
  Page.set_lsn p 99;
  let copy = Page.of_bytes ~id:7 (Bytes.copy (Page.raw p)) in
  Alcotest.(check string) "cell" "persist" (Page.get copy 0);
  Alcotest.(check int) "side" 33 (Page.side_ptr copy);
  Alcotest.(check int) "lsn" 99 (Page.lsn copy)

let test_page_bad_magic () =
  Alcotest.(check bool) "bad magic raises" true
    (match Page.of_bytes ~id:1 (Bytes.make 512 '\000') with
    | exception Pitree_util.Codec.Corrupt _ -> true
    | _ -> false)

let test_page_bounds () =
  let p = mk_page () in
  Alcotest.(check bool) "get oob" true
    (match Page.get p 0 with exception Invalid_argument _ -> true | _ -> false);
  Alcotest.(check bool) "insert oob" true
    (match Page.insert p 1 "x" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Property: a page behaves like a list of cells under random
   insert/delete/replace. *)
let prop_page_model =
  let open QCheck in
  let op_gen =
    Gen.(
      frequency
        [
          (4, map2 (fun i s -> `Insert (i, s)) small_nat (string_size (int_range 1 20)));
          (2, map (fun i -> `Delete i) small_nat);
          (2, map2 (fun i s -> `Replace (i, s)) small_nat (string_size (int_range 1 20)));
        ])
  in
  Test.make ~name:"page = list model" ~count:300
    (make Gen.(list_size (int_range 0 60) op_gen))
    (fun ops ->
      let p = Page.create ~size:2048 ~id:1 ~kind:Page.Data ~level:0 in
      let model = ref [] in
      let apply op =
        match op with
        | `Insert (i, s) ->
            let n = List.length !model in
            let i = if n = 0 then 0 else i mod (n + 1) in
            (match Page.insert p i s with
            | () ->
                let before = List.filteri (fun j _ -> j < i) !model in
                let after = List.filteri (fun j _ -> j >= i) !model in
                model := before @ (s :: after)
            | exception Page.Page_full -> ())
        | `Delete i ->
            let n = List.length !model in
            if n > 0 then begin
              let i = i mod n in
              ignore (Page.delete p i);
              model := List.filteri (fun j _ -> j <> i) !model
            end
        | `Replace (i, s) ->
            let n = List.length !model in
            if n > 0 then begin
              let i = i mod n in
              match Page.replace p i s with
              | () -> model := List.mapi (fun j old -> if j = i then s else old) !model
              | exception Page.Page_full -> ()
            end
      in
      List.iter apply ops;
      let actual = Page.fold p ~init:[] ~f:(fun acc _ c -> c :: acc) in
      List.rev actual = !model)

let test_mem_disk () =
  let d = Disk.in_memory ~page_size:128 in
  let buf = Bytes.make 128 'a' in
  d.Disk.write 3 buf;
  let out = Bytes.make 128 '\000' in
  d.Disk.read 3 out;
  Alcotest.(check bytes) "roundtrip" buf out;
  Alcotest.(check bool) "missing page" true
    (match d.Disk.read 9 out with exception Not_found -> true | _ -> false);
  Alcotest.(check int) "write count" 1 (d.Disk.write_count ())

let test_file_disk () =
  let path = Filename.temp_file "pitree" ".db" in
  let d = Disk.file ~page_size:256 ~path in
  let mk c =
    let p = Page.create ~size:256 ~id:2 ~kind:Page.Data ~level:0 in
    Page.insert p 0 (String.make 5 c);
    Page.raw p
  in
  d.Disk.write 2 (mk 'q');
  d.Disk.write 5 (mk 'r');
  d.Disk.sync ();
  d.Disk.close ();
  (* Reopen and read back. *)
  let d2 = Disk.file ~page_size:256 ~path in
  let out = Bytes.make 256 '\000' in
  d2.Disk.read 5 out;
  let p = Page.of_bytes ~id:5 out in
  Alcotest.(check string) "cell from file" "rrrrr" (Page.get p 0);
  Alcotest.(check bool) "hole is missing" true
    (match d2.Disk.read 3 out with exception Not_found -> true | _ -> false);
  d2.Disk.close ();
  Sys.remove path

let mk_pool ?(capacity = 8) ?(wal_flush = fun _ -> ()) () =
  let disk = Disk.in_memory ~page_size:256 in
  (disk, Buffer_pool.create ~capacity ~disk ~wal_flush ())

let write_page pool pid content =
  let fr = Buffer_pool.pin_new pool pid in
  let fresh = Page.create ~size:256 ~id:pid ~kind:Page.Data ~level:0 in
  Bytes.blit (Page.raw fresh) 0 (Page.raw fr.Buffer_pool.page) 0 256;
  Page.insert fr.Buffer_pool.page 0 content;
  Buffer_pool.mark_dirty fr;
  Buffer_pool.unpin pool fr;
  fr

let test_pool_pin_hit () =
  let _, pool = mk_pool () in
  ignore (write_page pool 2 "x");
  let fr = Buffer_pool.pin pool 2 in
  Alcotest.(check string) "cached content" "x" (Page.get fr.Buffer_pool.page 0);
  Buffer_pool.unpin pool fr;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "one miss (initial pin_new)" 1 s.Buffer_pool.misses;
  Alcotest.(check int) "one hit" 1 s.Buffer_pool.hits

let test_pool_eviction_writes_back () =
  let disk, pool = mk_pool ~capacity:8 () in
  for pid = 2 to 20 do
    ignore (write_page pool pid (Printf.sprintf "p%d" pid))
  done;
  (* Early pages were evicted; they must be readable from disk again. *)
  let fr = Buffer_pool.pin pool 2 in
  Alcotest.(check string) "evicted page reloaded" "p2" (Page.get fr.Buffer_pool.page 0);
  Buffer_pool.unpin pool fr;
  Alcotest.(check bool) "disk saw writes" true (disk.Disk.write_count () > 0);
  let s = Buffer_pool.stats pool in
  Alcotest.(check bool) "evictions happened" true (s.Buffer_pool.evictions > 0)

let test_pool_exhausted () =
  let _, pool = mk_pool ~capacity:8 () in
  let frames = List.init 8 (fun i -> Buffer_pool.pin_new pool (i + 2)) in
  Alcotest.check_raises "all pinned" Buffer_pool.Pool_exhausted (fun () ->
      ignore (Buffer_pool.pin_new pool 100));
  List.iter (Buffer_pool.unpin pool) frames

let test_pool_wal_barrier () =
  (* Dirty pages must trigger wal_flush(page lsn) before reaching disk. *)
  let flushed = ref (-1) in
  let disk = Disk.in_memory ~page_size:256 in
  let pool =
    Buffer_pool.create ~capacity:8 ~disk ~wal_flush:(fun lsn -> flushed := lsn) ()
  in
  let fr = Buffer_pool.pin_new pool 2 in
  let fresh = Page.create ~size:256 ~id:2 ~kind:Page.Data ~level:0 in
  Bytes.blit (Page.raw fresh) 0 (Page.raw fr.Buffer_pool.page) 0 256;
  Page.set_lsn fr.Buffer_pool.page 77;
  Buffer_pool.mark_dirty fr;
  Buffer_pool.flush_page pool fr;
  Buffer_pool.unpin pool fr;
  Alcotest.(check int) "wal flushed to page lsn" 77 !flushed

let test_pool_crash_loses_unflushed () =
  let disk, pool = mk_pool ~capacity:64 () in
  ignore (write_page pool 2 "will-be-lost");
  Buffer_pool.crash pool;
  let out = Bytes.make 256 '\000' in
  Alcotest.(check bool) "never reached disk" true
    (match disk.Disk.read 2 out with exception Not_found -> true | _ -> false);
  Alcotest.(check bool) "pool dead" true
    (match Buffer_pool.pin pool 2 with
    | exception Failure _ -> true
    | _ -> false)

let test_pool_flush_all_persists () =
  let disk, pool = mk_pool ~capacity:64 () in
  ignore (write_page pool 2 "durable");
  Buffer_pool.flush_all pool;
  Buffer_pool.crash pool;
  let pool2 = Buffer_pool.create ~capacity:8 ~disk ~wal_flush:(fun _ -> ()) () in
  let fr = Buffer_pool.pin pool2 2 in
  Alcotest.(check string) "survived crash" "durable" (Page.get fr.Buffer_pool.page 0);
  Buffer_pool.unpin pool2 fr

let test_pool_crash_flush_ignores_latches () =
  (* The chaos harness tears dirty pages on the way down from workloads
     that crashed mid-atomic-action, with page X latches still held —
     flush_all would self-deadlock on them (single thread, latched
     flush). crash_flush must dump the dirty frames regardless. *)
  let disk, pool = mk_pool ~capacity:8 () in
  ignore (write_page pool 2 "torn-candidate");
  let fr = Buffer_pool.pin pool 2 in
  Latch.acquire fr.Buffer_pool.latch Latch.X;
  Buffer_pool.crash_flush pool;
  Latch.release fr.Buffer_pool.latch Latch.X;
  Buffer_pool.unpin pool fr;
  Buffer_pool.crash pool;
  let pool2 = Buffer_pool.create ~capacity:8 ~disk ~wal_flush:(fun _ -> ()) () in
  let fr = Buffer_pool.pin pool2 2 in
  Alcotest.(check string) "X-latched dirty page reached disk" "torn-candidate"
    (Page.get fr.Buffer_pool.page 0);
  Buffer_pool.unpin pool2 fr

(* ---- sharded pool: eviction policy, WAL ordering, concurrency ---- *)

let stamp_disk_pages disk ~n =
  for pid = 0 to n - 1 do
    let p = Page.create ~size:256 ~id:pid ~kind:Page.Data ~level:0 in
    Page.insert p 0 (Printf.sprintf "d%d" pid);
    Page.stamp_checksum p;
    disk.Disk.write pid (Page.raw p)
  done

let test_pool_evict_wal_before_data () =
  (* A dirty page picked by the eviction clock must have its LSN forced to
     the WAL before its bytes reach the disk. *)
  let flushed = ref [] in
  let inner = Disk.in_memory ~page_size:256 in
  let writes = ref [] in
  let disk =
    {
      inner with
      Disk.write =
        (fun pid buf ->
          (* Snapshot the WAL high-water marks seen at write time. *)
          writes := (pid, !flushed) :: !writes;
          inner.Disk.write pid buf);
    }
  in
  let pool =
    Buffer_pool.create ~capacity:8 ~shards:1 ~disk
      ~wal_flush:(fun lsn -> flushed := lsn :: !flushed)
      ()
  in
  for pid = 0 to 7 do
    let fr = Buffer_pool.pin_new pool pid in
    let fresh = Page.create ~size:256 ~id:pid ~kind:Page.Data ~level:0 in
    Bytes.blit (Page.raw fresh) 0 (Page.raw fr.Buffer_pool.page) 0 256;
    Page.set_lsn fr.Buffer_pool.page (100 + pid);
    Buffer_pool.mark_dirty fr;
    Buffer_pool.unpin pool fr
  done;
  (* One more install forces the clock to evict (and write back) a dirty
     victim. *)
  Buffer_pool.unpin pool (Buffer_pool.pin_new pool 99);
  let s = Buffer_pool.stats pool in
  Alcotest.(check bool) "eviction happened" true (s.Buffer_pool.evictions >= 1);
  Alcotest.(check bool) "a write-back happened" true (!writes <> []);
  List.iter
    (fun (pid, flushed_then) ->
      Alcotest.(check bool)
        (Printf.sprintf "wal covered page %d before its data write" pid)
        true
        (List.mem (100 + pid) flushed_then))
    !writes

let test_pool_never_evicts_pinned () =
  let _, pool = mk_pool ~capacity:8 () in
  (* Keep 7 frames pinned; leave a single victim candidate. *)
  let pinned = List.init 7 (fun i -> Buffer_pool.pin_new pool i) in
  Buffer_pool.unpin pool (Buffer_pool.pin_new pool 7);
  (* Repeated installs can only ever recycle the one unpinned slot. *)
  for pid = 100 to 120 do
    Buffer_pool.unpin pool (Buffer_pool.pin_new pool pid)
  done;
  let before = (Buffer_pool.stats pool).Buffer_pool.misses in
  (* Every pinned page must still be resident, in its original frame. *)
  List.iter
    (fun (fr : Buffer_pool.frame) ->
      let fr2 = Buffer_pool.pin pool fr.Buffer_pool.pid in
      Alcotest.(check bool) "same frame" true (fr2 == fr);
      Buffer_pool.unpin pool fr2)
    pinned;
  let after = (Buffer_pool.stats pool).Buffer_pool.misses in
  Alcotest.(check int) "no pinned frame was evicted" before after;
  List.iter (Buffer_pool.unpin pool) pinned

let test_pool_clock_second_chance () =
  (* A re-referenced frame survives the sweep that evicts its unreferenced
     neighbors. *)
  let _, pool = mk_pool ~capacity:8 () in
  for pid = 0 to 7 do
    Buffer_pool.unpin pool (Buffer_pool.pin_new pool pid)
  done;
  (* Every frame is referenced: the first install strips all the reference
     bits on its first revolution and takes slot 0 (page 0). *)
  Buffer_pool.unpin pool (Buffer_pool.pin_new pool 100);
  (* Re-reference page 2; it must now outlive the next sweeps... *)
  Buffer_pool.unpin pool (Buffer_pool.pin pool 2);
  (* ...which take pages 1 and 3 instead. *)
  Buffer_pool.unpin pool (Buffer_pool.pin_new pool 101);
  Buffer_pool.unpin pool (Buffer_pool.pin_new pool 102);
  let resident pid =
    let before = (Buffer_pool.stats pool).Buffer_pool.misses in
    Buffer_pool.unpin pool (Buffer_pool.pin_new pool pid);
    (Buffer_pool.stats pool).Buffer_pool.misses = before
  in
  Alcotest.(check bool) "page 2 survived (second chance)" true (resident 2);
  Alcotest.(check bool) "page 0 was the first victim" false (resident 0);
  Alcotest.(check bool) "page 1 evicted" false (resident 1)

let test_pool_miss_does_not_block_hits () =
  (* Acceptance: even with a single shard, a slow miss on one page must not
     block hits on other resident pages — the shard mutex is released
     around the device read. *)
  let inner = Disk.in_memory ~page_size:256 in
  stamp_disk_pages inner ~n:9;
  let disk =
    {
      inner with
      Disk.read =
        (fun pid buf ->
          if pid = 8 then Thread.delay 0.3;
          inner.Disk.read pid buf);
    }
  in
  let pool =
    Buffer_pool.create ~capacity:8 ~shards:1 ~disk ~wal_flush:(fun _ -> ()) ()
  in
  for pid = 0 to 3 do
    Buffer_pool.unpin pool (Buffer_pool.pin pool pid)
  done;
  let t0 = Unix.gettimeofday () in
  let slow =
    Domain.spawn (fun () -> Buffer_pool.unpin pool (Buffer_pool.pin pool 8))
  in
  Thread.delay 0.02 (* let the miss reach the (slow) device *);
  for _ = 1 to 1_000 do
    for pid = 0 to 3 do
      Buffer_pool.unpin pool (Buffer_pool.pin pool pid)
    done
  done;
  let hits_done = Unix.gettimeofday () -. t0 in
  Domain.join slow;
  let miss_done = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "4000 hits completed while the miss was in flight"
    true
    (hits_done < 0.25);
  Alcotest.(check bool) "slow miss completed" true (miss_done >= 0.3)

let pool_storm ~shards () =
  let domains = 4 and per = 2_000 and npages = 128 in
  let disk = Disk.in_memory ~page_size:256 in
  stamp_disk_pages disk ~n:npages;
  let pool =
    Buffer_pool.create ~capacity:64 ~shards ~disk ~wal_flush:(fun _ -> ()) ()
  in
  let work d =
    let st = ref ((d * 7919) + 13) in
    for _ = 1 to per do
      st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
      let fr = Buffer_pool.pin pool (!st mod npages) in
      Alcotest.(check int) "frame pid" (!st mod npages) fr.Buffer_pool.pid;
      Buffer_pool.unpin pool fr
    done
  in
  List.init domains (fun d -> Domain.spawn (fun () -> work d))
  |> List.iter Domain.join;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "hits + misses = pins" (domains * per)
    (s.Buffer_pool.hits + s.Buffer_pool.misses);
  (* All pins were released: every resident page can be flushed and the
     whole capacity can be repinned without exhaustion. *)
  Buffer_pool.flush_all pool;
  let frames = List.init 64 (fun pid -> Buffer_pool.pin pool pid) in
  List.iter (Buffer_pool.unpin pool) frames

let test_pool_storm_sharded () = pool_storm ~shards:8 ()
let test_pool_storm_single () = pool_storm ~shards:1 ()

let test_pool_flush_all_vs_mutator () =
  (* flush_all racing page mutators (the sharp-checkpoint path). Each
     mutation rewrites a page's two records to the same fresh token
     under the frame's X latch; a flusher writing mid-mutation would
     persist a torn image with mismatched records. Every disk write is
     parsed and checked, and once the mutators quiesce one more sweep
     must leave nothing dirty and everything durable. *)
  let npages = 16 in
  let inner = Disk.in_memory ~page_size:256 in
  let torn = Atomic.make 0 in
  let disk =
    {
      inner with
      Disk.write =
        (fun pid buf ->
          let p = Page.of_bytes ~id:pid (Bytes.copy buf) in
          if Page.get p 0 <> Page.get p 1 then Atomic.incr torn;
          inner.Disk.write pid buf);
    }
  in
  let pool =
    Buffer_pool.create ~capacity:npages ~shards:1 ~disk ~wal_flush:(fun _ -> ()) ()
  in
  for pid = 0 to npages - 1 do
    let fr = Buffer_pool.pin_new pool pid in
    let fresh = Page.create ~size:256 ~id:pid ~kind:Page.Data ~level:0 in
    Bytes.blit (Page.raw fresh) 0 (Page.raw fr.Buffer_pool.page) 0 256;
    Page.insert fr.Buffer_pool.page 0 "t0";
    Page.insert fr.Buffer_pool.page 1 "t0";
    Buffer_pool.mark_dirty fr;
    Buffer_pool.unpin pool fr
  done;
  let mutate d () =
    for i = 1 to 600 do
      let pid = ((d * 31) + (i * 7)) mod npages in
      let fr = Buffer_pool.pin pool pid in
      Latch.acquire fr.Buffer_pool.latch Latch.X;
      let tok = Printf.sprintf "t%d.%d" d i in
      Page.replace fr.Buffer_pool.page 0 tok;
      Page.replace fr.Buffer_pool.page 1 tok;
      Buffer_pool.mark_dirty fr;
      Latch.release fr.Buffer_pool.latch Latch.X;
      Buffer_pool.unpin pool fr
    done
  in
  let hs = List.init 3 (fun d -> Domain.spawn (mutate d)) in
  for _ = 1 to 40 do
    Buffer_pool.flush_all pool
  done;
  List.iter Domain.join hs;
  Buffer_pool.flush_all pool;
  Alcotest.(check int) "no torn image ever reached the disk" 0
    (Atomic.get torn);
  Alcotest.(check (list (pair int int))) "nothing left dirty" []
    (Buffer_pool.dirty_pages pool);
  (* The flushed images are the live ones: reopening from the same disk
     must reproduce every page's current content. *)
  let live =
    List.init npages (fun pid ->
        let fr = Buffer_pool.pin pool pid in
        let c = Page.get fr.Buffer_pool.page 0 in
        Buffer_pool.unpin pool fr;
        (pid, c))
  in
  Buffer_pool.crash pool;
  let pool2 = Buffer_pool.create ~capacity:npages ~disk ~wal_flush:(fun _ -> ()) () in
  List.iter
    (fun (pid, c) ->
      let fr = Buffer_pool.pin pool2 pid in
      Alcotest.(check string)
        (Printf.sprintf "page %d durable" pid)
        c
        (Page.get fr.Buffer_pool.page 0);
      Buffer_pool.unpin pool2 fr)
    live

let suites =
  [
    ( "storage.page",
      [
        Alcotest.test_case "fresh" `Quick test_page_fresh;
        Alcotest.test_case "insert/get" `Quick test_page_insert_get;
        Alcotest.test_case "delete" `Quick test_page_delete;
        Alcotest.test_case "replace" `Quick test_page_replace;
        Alcotest.test_case "page full" `Quick test_page_full;
        Alcotest.test_case "fill and compact" `Quick test_page_fill_and_compact;
        Alcotest.test_case "bytes roundtrip" `Quick test_page_of_bytes_roundtrip;
        Alcotest.test_case "bad magic" `Quick test_page_bad_magic;
        Alcotest.test_case "bounds" `Quick test_page_bounds;
        QCheck_alcotest.to_alcotest prop_page_model;
      ] );
    ( "storage.disk",
      [
        Alcotest.test_case "in-memory" `Quick test_mem_disk;
        Alcotest.test_case "file-backed" `Quick test_file_disk;
      ] );
    ( "storage.pool",
      [
        Alcotest.test_case "pin hit" `Quick test_pool_pin_hit;
        Alcotest.test_case "eviction writes back" `Quick test_pool_eviction_writes_back;
        Alcotest.test_case "exhaustion" `Quick test_pool_exhausted;
        Alcotest.test_case "wal barrier" `Quick test_pool_wal_barrier;
        Alcotest.test_case "crash loses unflushed" `Quick test_pool_crash_loses_unflushed;
        Alcotest.test_case "flush_all persists" `Quick test_pool_flush_all_persists;
        Alcotest.test_case "crash_flush ignores held latches" `Quick
          test_pool_crash_flush_ignores_latches;
        Alcotest.test_case "evict: WAL before data" `Quick
          test_pool_evict_wal_before_data;
        Alcotest.test_case "evict: never pinned" `Quick
          test_pool_never_evicts_pinned;
        Alcotest.test_case "clock second chance" `Quick
          test_pool_clock_second_chance;
        Alcotest.test_case "slow miss doesn't block hits" `Quick
          test_pool_miss_does_not_block_hits;
        Alcotest.test_case "4-domain storm (sharded)" `Quick
          test_pool_storm_sharded;
        Alcotest.test_case "4-domain storm (single)" `Quick
          test_pool_storm_single;
        Alcotest.test_case "flush_all vs mutators" `Quick
          test_pool_flush_all_vs_mutator;
      ] );
  ]
