(* The generic well-formedness checker against hand-built trees: a legal
   tree passes, and a dedicated violation of each section 2.1.3 condition
   (plus the dangling-pointer rule) is rejected with the right condition
   number. Node views are faked over the Interval keyspace — no pages, no
   engine. *)

module Wellformed = Pitree_core.Wellformed
module Interval = Pitree_core.Keyspace.Interval
module WF = Wellformed.Make (Interval)

let itv low high = Interval.make ~low ~high
let whole = itv None None

let node ?(level = 0) ?(index = []) ?(siblings = []) id responsible
    ?(directly = responsible) () =
  {
    WF.id;
    level;
    responsible;
    directly_contained = directly;
    index_terms = index;
    sibling_terms = siblings;
  }

let check nodes ~root =
  WF.check ~root ~read:(fun pid ->
      List.find_opt (fun v -> v.WF.id = pid) nodes)

let conditions r =
  List.sort_uniq compare
    (List.map (fun e -> e.Wellformed.condition) r.Wellformed.errors)

let expect_violation name cond r =
  if Wellformed.ok r then
    Alcotest.failf "%s: malformed tree accepted" name
  else if not (List.mem cond (conditions r)) then
    Alcotest.failf "%s: expected condition %d among %a" name cond
      Fmt.(Dump.list int)
      (conditions r)

(* A legal 2-level tree: root indexes two leaves; the left leaf delegates
   part of its space to a third leaf through a sibling term (the B-link
   shape after an unposted split). *)
let legal_tree =
  [
    node 1 ~level:1 whole
      ~index:[ (itv None (Some "m"), 2); (itv (Some "m") None, 3) ]
      ();
    node 2
      (itv None (Some "m"))
      ~directly:(itv None (Some "g"))
      ~siblings:[ (itv (Some "g") (Some "m"), 4) ]
      ();
    node 3 (itv (Some "m") None) ();
    node 4 (itv (Some "g") (Some "m")) ();
  ]

let test_legal_tree_passes () =
  let r = check legal_tree ~root:1 in
  if not (Wellformed.ok r) then
    Alcotest.failf "legal tree rejected: %a" Wellformed.pp_report r;
  Alcotest.(check int) "all nodes visited" 4 r.Wellformed.nodes_visited;
  Alcotest.(check int) "levels" 2 r.Wellformed.levels

(* Condition 1: a node must meet its responsibility directly or through
   sibling delegation. Here the left leaf answers for [-inf,"m") but only
   contains [-inf,"g") and delegates nothing. *)
let test_condition1_uncovered_responsibility () =
  let nodes =
    [
      node 1 ~level:1 whole
        ~index:[ (itv None (Some "m"), 2); (itv (Some "m") None, 3) ]
        ();
      node 2 (itv None (Some "m")) ~directly:(itv None (Some "g")) ();
      node 3 (itv (Some "m") None) ();
    ]
  in
  expect_violation "condition 1" 1 (check nodes ~root:1)

(* Condition 2: a sibling term must describe a subspace of its containing
   node. This leaf delegates space beyond its own responsibility. *)
let test_condition2_sibling_escapes () =
  let nodes =
    [
      node 1 ~level:1 whole
        ~index:[ (itv None (Some "m"), 2); (itv (Some "m") None, 3) ]
        ();
      node 2
        (itv None (Some "m"))
        ~directly:(itv None (Some "m"))
        ~siblings:[ (itv (Some "m") (Some "z"), 3) ]
        ();
      node 3 (itv (Some "m") None) ();
    ]
  in
  expect_violation "condition 2" 2 (check nodes ~root:1)

(* Condition 3: an index term must describe space its child is responsible
   for. The root claims child 2 answers for [-inf,"m"), but the child is
   only responsible for ["c","m") — exactly what the Bad_post_sep injected
   bug produces. *)
let test_condition3_bad_separator () =
  let nodes =
    [
      node 1 ~level:1 whole
        ~index:[ (itv None (Some "m"), 2); (itv (Some "m") None, 3) ]
        ();
      node 2 (itv (Some "c") (Some "m")) ();
      node 3 (itv (Some "m") None) ();
    ]
  in
  expect_violation "condition 3" 3 (check nodes ~root:1)

(* Condition 4: an index node's index+sibling terms must cover the space it
   directly contains — otherwise a search can fall into a hole. *)
let test_condition4_hole_in_index () =
  let nodes =
    [
      node 1 ~level:1 whole ~index:[ (itv None (Some "m"), 2) ] ();
      node 2 (itv None (Some "m")) ();
    ]
  in
  expect_violation "condition 4" 4 (check nodes ~root:1)

(* Condition 5: level-0 nodes are data nodes; one carrying index terms is
   structurally corrupt. *)
let test_condition5_data_node_with_index_terms () =
  let nodes =
    [
      node 1 ~level:1 whole ~index:[ (whole, 2) ] ();
      node 2 whole ~index:[ (itv None (Some "m"), 3) ] ();
      node 3 (itv None (Some "m")) ();
    ]
  in
  expect_violation "condition 5" 5 (check nodes ~root:1)

(* Condition 6: the root must be responsible for the entire space. *)
let test_condition6_root_not_whole () =
  let nodes = [ node 1 (itv (Some "a") None) () ] in
  expect_violation "condition 6" 6 (check nodes ~root:1)

let test_root_deallocated () =
  expect_violation "missing root" 6 (check [] ~root:1)

(* Pointer rule: no term may reach a de-allocated node. *)
let test_dangling_index_pointer () =
  let nodes =
    [
      node 1 ~level:1 whole
        ~index:[ (itv None (Some "m"), 99); (itv (Some "m") None, 3) ]
        ();
      node 3 (itv (Some "m") None) ();
    ]
  in
  expect_violation "dangling pointer" 3 (check nodes ~root:1)

let test_dangling_sibling_pointer () =
  let nodes =
    [
      node 1 ~level:1 whole ~index:[ (whole, 2) ] ();
      node 2 whole
        ~directly:(itv None (Some "g"))
        ~siblings:[ (itv (Some "g") None, 77) ]
        ();
    ]
  in
  expect_violation "dangling sibling" 2 (check nodes ~root:1)

let suites =
  [
    ( "wellformed",
      [
        Alcotest.test_case "legal tree passes" `Quick test_legal_tree_passes;
        Alcotest.test_case "condition 1: uncovered responsibility" `Quick
          test_condition1_uncovered_responsibility;
        Alcotest.test_case "condition 2: sibling escapes" `Quick
          test_condition2_sibling_escapes;
        Alcotest.test_case "condition 3: bad separator" `Quick
          test_condition3_bad_separator;
        Alcotest.test_case "condition 4: hole in index" `Quick
          test_condition4_hole_in_index;
        Alcotest.test_case "condition 5: data node with index terms" `Quick
          test_condition5_data_node_with_index_terms;
        Alcotest.test_case "condition 6: root not whole" `Quick
          test_condition6_root_not_whole;
        Alcotest.test_case "root de-allocated" `Quick test_root_deallocated;
        Alcotest.test_case "dangling index pointer" `Quick
          test_dangling_index_pointer;
        Alcotest.test_case "dangling sibling pointer" `Quick
          test_dangling_sibling_pointer;
      ] );
  ]
