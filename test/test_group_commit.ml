(* Group commit: a multi-domain user-commit storm against a file-backed
   WAL. Checks the two contractual properties of the pipeline:

   (a) durability of acknowledgment — every commit that RETURNED before the
       power failure survives recovery (no flush_all before the crash: the
       group-commit path itself must have made the records durable);
   (b) batching — under >= 4 concurrent committers the number of real
       fsyncs is strictly less than the number of committed transactions.

   Plus the classic lost-acknowledgment window: a crash injected between
   the batch fsync and the waiter wakeup ("wal.group.synced") must leave
   the committed-but-unacknowledged transaction durable. *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Log_manager = Pitree_wal.Log_manager
module Crash_point = Pitree_util.Crash_point
module Wellformed = Pitree_core.Wellformed

let cfg =
  {
    Env.default_config with
    page_size = 512;
    pool_capacity = 8192;
    page_oriented_undo = false;
    consolidation = true;
  }

let with_file_log f =
  let path = Filename.temp_file "pitree_gc" ".wal" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".ckpt") with Sys_error _ -> ())
    (fun () -> f path)

let commit_one mgr t k =
  let txn = Txn_mgr.begin_txn mgr Txn.User in
  Blink.insert ~txn t ~key:k ~value:"v";
  Txn_mgr.commit mgr txn

let test_commit_storm_durability () =
  with_file_log (fun log_path ->
      let env = Env.create { cfg with Env.log_path = Some log_path } in
      let t = Blink.create env ~name:"t" in
      let mgr = Env.txns env in
      let domains = 4 and per = 150 in
      let key d i = Printf.sprintf "d%dk%04d" d i in
      let handles =
        List.init domains (fun d ->
            Domain.spawn (fun () ->
                for i = 0 to per - 1 do
                  commit_one mgr t (key d i)
                done))
      in
      List.iter Domain.join handles;
      let committed = domains * per in
      let s = Log_manager.stats (Env.log env) in
      Alcotest.(check bool)
        (Printf.sprintf "batching observed: %d forces < %d commits"
           s.Log_manager.forces committed)
        true
        (s.Log_manager.forces < committed);
      Alcotest.(check bool) "forces happened at all" true (s.Log_manager.forces > 0);
      Alcotest.(check bool) "a multi-request batch formed" true
        (s.Log_manager.batch_max > 1);
      (* Power failure with NO preceding flush_all: acknowledged commits
         must already be durable by the group-commit contract. *)
      Env.crash env;
      ignore (Env.recover env);
      let t = Option.get (Blink.open_existing env ~name:"t") in
      for d = 0 to domains - 1 do
        for i = 0 to per - 1 do
          match Blink.find t (key d i) with
          | Some "v" -> ()
          | Some other ->
              Alcotest.failf "committed %s has wrong value %s" (key d i) other
          | None -> Alcotest.failf "committed %s lost after crash" (key d i)
        done
      done;
      Alcotest.(check bool) "well-formed after recovery" true
        (Wellformed.ok (Blink.verify t)))

let test_crash_between_sync_and_wakeup () =
  with_file_log (fun log_path ->
      Crash_point.disarm_all ();
      let env = Env.create { cfg with Env.log_path = Some log_path } in
      let t = Blink.create env ~name:"t" in
      let mgr = Env.txns env in
      commit_one mgr t "acked0";
      commit_one mgr t "acked1";
      commit_one mgr t "acked2";
      Crash_point.arm "wal.group.synced" ~after:0;
      let fired =
        match commit_one mgr t "window" with
        | () -> false
        | exception Crash_point.Crash_requested _ -> true
      in
      Crash_point.disarm_all ();
      Alcotest.(check bool) "crash fired in the wakeup window" true fired;
      Env.crash env;
      ignore (Env.recover env);
      let t = Option.get (Blink.open_existing env ~name:"t") in
      (* The batch reached disk before the crash, so even the transaction
         whose committer was never woken is a winner: lost acknowledgment,
         never lost work. *)
      List.iter
        (fun k ->
          Alcotest.(check (option string)) k (Some "v") (Blink.find t k))
        [ "acked0"; "acked1"; "acked2"; "window" ];
      Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t)))

let test_waiters_all_released () =
  (* Concurrent committers on an in-memory log: nobody must wedge on the
     condition variable, and durability must cover every commit. *)
  let env = Env.create cfg in
  let t = Blink.create env ~name:"t" in
  let mgr = Env.txns env in
  let handles =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 99 do
              commit_one mgr t (Printf.sprintf "m%dk%03d" d i)
            done))
  in
  List.iter Domain.join handles;
  let log = Env.log env in
  (* Every commit's flush returned, so only End records appended after the
     chronologically last flush (at most one per domain) can be volatile. *)
  Alcotest.(check bool) "durable horizon covers all commits" true
    (Log_manager.flushed_lsn log >= Log_manager.last_lsn log - 4);
  let s = Log_manager.stats log in
  Alcotest.(check int) "in-memory storm: zero real fsyncs" 0 s.Log_manager.forces;
  Alcotest.(check bool) "requests were served" true
    (s.Log_manager.flush_requests >= 400)

let suites =
  [
    ( "wal.group_commit",
      [
        Alcotest.test_case "commit storm: durability + batching" `Quick
          test_commit_storm_durability;
        Alcotest.test_case "crash between batch sync and wakeup" `Quick
          test_crash_between_sync_and_wakeup;
        Alcotest.test_case "waiters all released (in-memory)" `Quick
          test_waiters_all_released;
      ] );
  ]
