(* Move-lock granularity (section 4.2.2): the node-granule realization
   blocks a split behind ANY updater of the node; the record-set
   realization only waits for updaters of records actually being moved. *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Wellformed = Pitree_core.Wellformed

let cfg () =
  {
    Env.default_config with
    page_size = 256;
    pool_capacity = 4096;
    page_oriented_undo = true;
    consolidation = true;
  }

(* Build a tree of height >= 2 and return it with one leaf nearly full:
   keys key000000.. ascending, 24-byte values. Returns the max key index
   loaded. *)
let build () =
  let env = Env.create (cfg ()) in
  let t = Blink.create env ~name:"t" in
  let i = ref 0 in
  while Blink.height t < 2 do
    Blink.insert t ~key:(Printf.sprintf "key%06d" !i) ~value:(String.make 24 'v');
    incr i
  done;
  ignore (Env.drain env);
  (env, t, !i)

let test_record_granularity_allows_unrelated_split () =
  let env, t, _ = build () in
  Blink.set_move_granularity t `Record;
  (* T1 updates the SMALLEST key of the leaf at "key000001..." — a record
     that stays in the lower half of any split. *)
  let mgr = Env.txns env in
  let t1 = Txn_mgr.begin_txn mgr Txn.User in
  Blink.insert ~txn:t1 t ~key:"key000000" ~value:(String.make 24 'w');
  (* Concurrent inserts of large upper-half keys force a split of that
     leaf. Under `Record the mover only U-locks the moved (upper) records,
     so it must NOT wait for T1. *)
  let done_ = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        for j = 0 to 5 do
          Blink.insert t
            ~key:(Printf.sprintf "key000000z%d" j)
            ~value:(String.make 48 'z')
        done;
        Atomic.set done_ true)
  in
  (* Give it a moment; it must complete while T1 is still open. *)
  let rec wait n = if n > 0 && not (Atomic.get done_) then (Thread.delay 0.02; wait (n-1)) in
  wait 100;
  Alcotest.(check bool) "split proceeded despite open updater of lower half"
    true (Atomic.get done_);
  Txn_mgr.commit mgr t1;
  Domain.join d;
  ignore (Env.drain env);
  Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t))

let test_node_granularity_blocks_same_case () =
  let env, t, _ = build () in
  Blink.set_move_granularity t `Node;
  let mgr = Env.txns env in
  let t1 = Txn_mgr.begin_txn mgr Txn.User in
  Blink.insert ~txn:t1 t ~key:"key000000" ~value:(String.make 24 'w');
  let done_ = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        for j = 0 to 5 do
          Blink.insert t
            ~key:(Printf.sprintf "key000000z%d" j)
            ~value:(String.make 48 'z')
        done;
        Atomic.set done_ true)
  in
  Thread.delay 0.08;
  Alcotest.(check bool) "node-granule lock blocks the split behind T1" false
    (Atomic.get done_);
  Txn_mgr.commit mgr t1;
  Domain.join d;
  Alcotest.(check bool) "completed after commit" true (Atomic.get done_);
  ignore (Env.drain env);
  Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t))

let test_record_granularity_still_waits_for_moved_records () =
  let env, t, _ = build () in
  Blink.set_move_granularity t `Record;
  let mgr = Env.txns env in
  (* T1 updates a key that WILL be in the moved (upper) half: make it the
     largest key of the target leaf ("...zz" sorts after the splitter's
     "...z0".."z5"), and the top entry always moves in a split. *)
  let t1 = Txn_mgr.begin_txn mgr Txn.User in
  Blink.insert ~txn:t1 t ~key:"key000000zz" ~value:(String.make 24 'w');
  let done_ = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        for j = 0 to 5 do
          Blink.insert t
            ~key:(Printf.sprintf "key000000z%d" j)
            ~value:(String.make 48 'z')
        done;
        Atomic.set done_ true)
  in
  Thread.delay 0.08;
  Alcotest.(check bool) "split waits for updater of a moved record" false
    (Atomic.get done_);
  Txn_mgr.commit mgr t1;
  Domain.join d;
  Alcotest.(check bool) "completed after commit" true (Atomic.get done_);
  ignore (Env.drain env);
  Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t));
  Alcotest.(check (option string)) "all records correct" (Some (String.make 24 'w'))
    (Blink.find t "key000000zz")

let test_record_granularity_correctness_under_load () =
  let env, t, _ = build () in
  Blink.set_move_granularity t `Record;
  for i = 0 to 1_499 do
    Blink.insert t ~key:(Printf.sprintf "key%06d" i) ~value:(Printf.sprintf "v%d" i)
  done;
  ignore (Env.drain env);
  Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t));
  for i = 0 to 1_499 do
    match Blink.find t (Printf.sprintf "key%06d" i) with
    | Some v when v = Printf.sprintf "v%d" i -> ()
    | _ -> Alcotest.failf "lost key%06d" i
  done

let suites =
  [
    ( "movelock.granularity",
      [
        Alcotest.test_case "record locks allow unrelated split" `Slow
          test_record_granularity_allows_unrelated_split;
        Alcotest.test_case "node lock blocks same case" `Slow
          test_node_granularity_blocks_same_case;
        Alcotest.test_case "record locks still protect moved records" `Slow
          test_record_granularity_still_waits_for_moved_records;
        Alcotest.test_case "correctness under load" `Quick
          test_record_granularity_correctness_under_load;
      ] );
  ]
