(* One conformance suite, three engines: every [Pitree_core.Engine.S]
   implementation must agree on the interface's observable contract —
   empty-tree edges, insert/find/overwrite, observed deletes, ordered
   scans (where served), [?txn] commit/abort, and crash+recover. The
   suite is generated from a per-engine harness record, so a new engine
   (or a protocol change in one) picks up the whole battery by adding
   one record. *)

module Env = Pitree_env.Env
module Engine = Pitree_core.Engine
module Txn_mgr = Pitree_txn.Txn_mgr
module Txn = Pitree_txn.Txn
module Blink = Pitree_blink.Blink
module Tsb = Pitree_tsb.Tsb
module Hb = Pitree_hb.Hb

let cfg () =
  {
    Env.default_config with
    page_size = 512;
    pool_capacity = 8192;
    page_oriented_undo = false;
    consolidation = false;
  }

type harness = {
  hname : string;
  make : Env.t -> Engine.instance;
  reopen : Env.t -> Engine.instance option;
  ordered_scan : bool;
      (* hB hashes keys to points, so ordered scans report 0 by contract *)
  observed_delete : bool;
      (* TSB's delete through [Engine] observes liveness like the others;
         all three currently do — kept explicit for future engines *)
}
[@@warning "-69"]

let harnesses =
  [
    {
      hname = "blink";
      make = (fun env -> Pitree_blink.Blink_engine.inst (Blink.create env ~name:"c"));
      reopen =
        (fun env ->
          Option.map Pitree_blink.Blink_engine.inst
            (Blink.open_existing env ~name:"c"));
      ordered_scan = true;
      observed_delete = true;
    };
    {
      hname = "tsb";
      make = (fun env -> Pitree_tsb.Tsb_engine.inst (Tsb.create env ~name:"c"));
      reopen =
        (fun env ->
          Option.map Pitree_tsb.Tsb_engine.inst
            (Tsb.open_existing env ~name:"c"));
      ordered_scan = true;
      observed_delete = true;
    };
    {
      hname = "hb";
      make =
        (fun env -> Pitree_hb.Hb_engine.inst (Hb.create env ~name:"c" ~dims:2));
      reopen =
        (fun env ->
          Option.map Pitree_hb.Hb_engine.inst (Hb.open_existing env ~name:"c"));
      ordered_scan = false;
      observed_delete = true;
    };
  ]

let key i = Printf.sprintf "k%04d" i
let get = Alcotest.(check (option string))

let test_empty_tree h () =
  let env = Env.create (cfg ()) in
  let e = h.make env in
  get "find on empty" None (Engine.find e (key 0));
  Alcotest.(check bool) "delete on empty" false (Engine.delete e (key 0));
  Alcotest.(check int) "scan on empty" 0 (Engine.scan e ~low:"" ~n:10);
  get "find empty-string key" None (Engine.find e "")

let test_insert_find_overwrite h () =
  let env = Env.create (cfg ()) in
  let e = h.make env in
  for i = 0 to 49 do
    Engine.insert e ~key:(key i) ~value:(Printf.sprintf "v%d" i)
  done;
  for i = 0 to 49 do
    get (key i) (Some (Printf.sprintf "v%d" i)) (Engine.find e (key i))
  done;
  get "missing key" None (Engine.find e (key 99));
  Engine.insert e ~key:(key 7) ~value:"updated";
  get "overwrite visible" (Some "updated") (Engine.find e (key 7));
  ignore (Env.drain env)

let test_delete h () =
  let env = Env.create (cfg ()) in
  let e = h.make env in
  Engine.insert e ~key:"k" ~value:"v";
  Alcotest.(check bool) "delete live" true (Engine.delete e "k");
  get "deleted" None (Engine.find e "k");
  Alcotest.(check bool) "delete dead" false (Engine.delete e "k");
  Engine.insert e ~key:"k" ~value:"again";
  get "reinsert after delete" (Some "again") (Engine.find e "k")

let test_scan h () =
  let env = Env.create (cfg ()) in
  let e = h.make env in
  for i = 0 to 29 do
    Engine.insert e ~key:(key i) ~value:"v"
  done;
  ignore (Engine.delete e (key 3));
  if h.ordered_scan then begin
    Alcotest.(check int) "full scan" 29 (Engine.scan e ~low:"" ~n:100);
    Alcotest.(check int) "scan bounded by n" 10 (Engine.scan e ~low:"" ~n:10);
    Alcotest.(check int) "scan from midpoint" 10
      (Engine.scan e ~low:(key 20) ~n:100)
  end
  else
    Alcotest.(check int) "unordered engine reports 0" 0
      (Engine.scan e ~low:"" ~n:100)

let test_txn_commit_abort h () =
  let env = Env.create (cfg ()) in
  let e = h.make env in
  let mgr = Env.txns env in
  Engine.insert e ~key:"base" ~value:"v";
  (* Committed transactional writes become visible... *)
  let txn = Txn_mgr.begin_txn mgr Txn.User in
  Engine.insert ~txn e ~key:"tk" ~value:"tv";
  get "find ~txn sees own write or pre-state" (Some "v")
    (Engine.find ~txn e "base");
  Txn_mgr.commit mgr txn;
  get "committed write visible" (Some "tv") (Engine.find e "tk");
  (* ...aborted ones roll back. *)
  let txn = Txn_mgr.begin_txn mgr Txn.User in
  Engine.insert ~txn e ~key:"ak" ~value:"av";
  Txn_mgr.abort mgr txn;
  get "aborted write invisible" None (Engine.find e "ak");
  get "committed survives neighbor abort" (Some "tv") (Engine.find e "tk")

let test_crash_recover h () =
  let env = Env.create (cfg ()) in
  let e = h.make env in
  for i = 0 to 39 do
    Engine.insert e ~key:(key i) ~value:(Printf.sprintf "v%d" i)
  done;
  ignore (Engine.delete e (key 5));
  ignore (Env.drain env);
  Env.crash env;
  ignore (Env.recover env);
  let e =
    match h.reopen env with
    | Some e -> e
    | None -> Alcotest.failf "%s: tree lost across crash" h.hname
  in
  for i = 0 to 39 do
    if i = 5 then get "delete durable" None (Engine.find e (key 5))
    else get (key i) (Some (Printf.sprintf "v%d" i)) (Engine.find e (key i))
  done;
  (* The recovered tree accepts new work. *)
  Engine.insert e ~key:"after" ~value:"crash";
  get "post-recovery insert" (Some "crash") (Engine.find e "after")

let suites =
  List.map
    (fun h ->
      ( "engine." ^ h.hname,
        [
          Alcotest.test_case "empty tree edges" `Quick (test_empty_tree h);
          Alcotest.test_case "insert/find/overwrite" `Quick
            (test_insert_find_overwrite h);
          Alcotest.test_case "observed delete" `Quick (test_delete h);
          Alcotest.test_case "scan" `Quick (test_scan h);
          Alcotest.test_case "?txn commit/abort" `Quick
            (test_txn_commit_abort h);
          Alcotest.test_case "crash + recover" `Quick (test_crash_recover h);
        ] ))
    harnesses
