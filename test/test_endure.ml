(* The endurance rig and its supporting knobs: log truncation racing a
   transient-write fault plan with a crash at [ckpt.truncated], the
   post-recovery checkpoint watermark, configurable pin backoff with
   seeded jitter, and a miniature end-to-end [Endure.run]. *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Disk = Pitree_storage.Disk
module Buffer_pool = Pitree_storage.Buffer_pool
module Log_manager = Pitree_wal.Log_manager
module Recovery = Pitree_wal.Recovery
module Lsn = Pitree_wal.Lsn
module Crash_point = Pitree_util.Crash_point
module Wellformed = Pitree_core.Wellformed
module Endure = Pitree_harness.Endure
module Log_record = Pitree_wal.Log_record
module Txn_mgr = Pitree_txn.Txn_mgr
module Txn = Pitree_txn.Txn

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let with_temp_dir f =
  let dir = Filename.temp_file "pitree_endure" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> Sys.remove (Filename.concat dir name))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* Physical truncation racing a transient-write fault plan, with a crash
   landing at [ckpt.truncated] — i.e. immediately after the log prefix was
   physically dropped. The durable prefix of history is gone, so recovery
   has exactly one way back in: the [.ckpt] master-record sidecar published
   at step 5 of the checkpoint protocol. It must bound analysis to the
   surviving suffix and lose nothing committed, even though the page file
   writes were absorbing transient faults the whole time. *)
let test_truncate_race_crash () =
  with_temp_dir (fun dir ->
      let pages = Filename.concat dir "pages.db" in
      let wal = Filename.concat dir "wal.log" in
      let base = Disk.file ~page_size:512 ~path:pages in
      let disk, ctl = Disk.Faulty.wrap ~seed:11L base in
      let cfg =
        {
          Env.default_config with
          page_size = 512;
          pool_capacity = 256;
          log_path = Some wal;
          ckpt_log_bytes = Some 8192;
        }
      in
      let env = Env.create ~disk cfg in
      let t = Blink.create env ~name:"t" in
      Disk.Faulty.set_plan ctl
        { Disk.Faulty.no_faults with Disk.Faulty.transient_write = 0.3 };
      (* The third log-growth checkpoint dies right after truncating. *)
      Crash_point.arm "ckpt.truncated" ~after:2;
      let crashed = ref false in
      let inserted = ref 0 in
      (try
         for i = 0 to 49_999 do
           Blink.insert t ~key:(Printf.sprintf "k%06d" i) ~value:"v";
           inserted := i + 1
         done
       with Crash_point.Crash_requested _ -> crashed := true);
      Crash_point.disarm_all ();
      Alcotest.(check bool) "crash point fired" true !crashed;
      Log_manager.flush_all (Env.log env);
      Disk.Faulty.set_plan ctl Disk.Faulty.no_faults;
      Env.crash env;
      let last = Log_manager.last_lsn (Env.log env) in
      let report = Env.recover env in
      (* The master record survived truncation and recovery used it: the
         log starts mid-history yet analysis began at the checkpoint, not
         at the (missing) origin. *)
      Alcotest.(check bool) "master record found" true
        (Log_manager.checkpoint_lsn (Env.log env) <> Lsn.null);
      Alcotest.(check bool) "log starts mid-history" true
        (Log_manager.first_lsn (Env.log env) > 1);
      Alcotest.(check bool)
        (Printf.sprintf "analysis bounded (%d analyzed, %d total)"
           report.Recovery.analyzed last)
        true
        (report.Recovery.analyzed < last);
      let t = Option.get (Blink.open_existing env ~name:"t") in
      Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t));
      (* Every committed insert — including those whose page writes hit
         transient faults — must be readable. *)
      for i = 0 to !inserted - 1 do
        let k = Printf.sprintf "k%06d" i in
        if Blink.find t k <> Some "v" then Alcotest.failf "%s lost" k
      done;
      Env.close env)

(* Regression: orphaned redo records against a torn page. Truncation keeps
   everything at or above a single [keep_from]; when a live transaction's
   Begin pins that point between a page's full-page image and later updates
   of the same dirty epoch, the image is dropped but the updates survive as
   orphans. Against a valid durable image they are harmless (the page-LSN
   guard skips them), but if the page is torn at crash, redo rebuilds it
   from scratch at LSN 0 — the guard passes — and applying e.g. a slot
   replacement to an empty page kills recovery mid-redo, leaving a virgin
   page still referenced by sibling pointers. Redo must skip a rebuilt
   page's records until a base-establishing one (image or format) arrives.

   The final checkpoint is hand-crafted with a stale dirty-page-table
   rec_lsn, reproducing what the write_back/DPT-capture race emits when a
   page is re-dirtied mid-checkpoint while its page LSN predates the
   truncation point: a redo floor below the log's first retained record. *)
let test_orphans_vs_torn_page () =
  with_temp_dir (fun dir ->
      let pages = Filename.concat dir "pages.db" in
      let base = Disk.file ~page_size:512 ~path:pages in
      let disk, ctl = Disk.Faulty.wrap ~seed:5L base in
      let cfg =
        {
          Env.default_config with
          page_size = 512;
          pool_capacity = 64;
          log_path = Some (Filename.concat dir "wal.log");
        }
      in
      let env = Env.create ~disk cfg in
      let t = Blink.create env ~name:"t" in
      let key i = Printf.sprintf "k%02d" i in
      for i = 0 to 7 do
        Blink.insert t ~key:(key i) ~value:"v0"
      done;
      (* Quiesce: everything durable, log truncated past the inserts. *)
      Env.checkpoint ~mode:`Sharp env;
      (* Epoch 1: first touch after the checkpoint logs the protecting
         full-page image, then a slot replacement. *)
      Blink.insert t ~key:(key 0) ~value:"v1";
      (* A live transaction pins truncation here — between the epoch-1
         image and the updates that follow. *)
      let txn = Txn_mgr.begin_txn (Env.txns env) Txn.User in
      (* The future orphans: replacements of existing keys, so their redo
         is invalid against an empty rebuilt page. *)
      Blink.insert t ~key:(key 1) ~value:"v1";
      Blink.insert t ~key:(key 2) ~value:"v1";
      (* Genuine fuzzy checkpoint: write_back cleans the leaf (empty DPT),
         and truncation keeps from the live txn's Begin — dropping the
         epoch-1 image but retaining the two replacements above it. *)
      Env.checkpoint ~mode:`Fuzzy env;
      let log = Env.log env in
      Alcotest.(check bool) "orphans retained: log starts mid-epoch" true
        (Log_manager.first_lsn log > 1);
      Txn_mgr.commit (Env.txns env) txn;
      (* Epoch 2: re-dirty the leaf — a fresh image protects this epoch. *)
      Blink.insert t ~key:(key 3) ~value:"v2";
      let leaf_pid =
        match Buffer_pool.dirty_pages (Env.pool env) with
        | [ (pid, _) ] -> pid
        | l -> Alcotest.failf "expected one dirty page, got %d" (List.length l)
      in
      (* Craft the stale-floor checkpoint: a DPT rec_lsn at the log's first
         retained record drags the redo point below the epoch-2 image, so
         restart replays the orphans. No truncation follows it — exactly
         the window the race leaves open. *)
      let stale = Log_manager.first_lsn log in
      let bb =
        Log_manager.append log ~prev:Lsn.null ~txn:0 Log_record.Begin_checkpoint
      in
      let ee =
        Log_manager.append log ~prev:bb ~txn:0
          (Log_record.End_checkpoint
             { begin_lsn = bb; dpt = [ (leaf_pid, stale) ]; att = [] })
      in
      Log_manager.flush log ee;
      Log_manager.set_checkpoint log ~lsn:ee ~redo:stale;
      Log_manager.flush_all log;
      (* Tear the leaf on its way out, then crash. *)
      Disk.Faulty.set_plan ctl
        {
          Disk.Faulty.no_faults with
          Disk.Faulty.torn_write = 1.0;
          protected_pids = [ 1 ];
        };
      (try Buffer_pool.flush_all (Env.pool env)
       with Disk.Disk_error _ -> ());
      Disk.Faulty.set_plan ctl Disk.Faulty.no_faults;
      Env.crash env;
      let report = Env.recover env in
      Alcotest.(check bool) "leaf was torn" true
        (report.Pitree_wal.Recovery.torn_pages >= 1);
      let t = Option.get (Blink.open_existing env ~name:"t") in
      Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t));
      let expect = [ "v1"; "v1"; "v1"; "v2"; "v0"; "v0"; "v0"; "v0" ] in
      List.iteri
        (fun i v ->
          Alcotest.(check (option string)) (key i) (Some v)
            (Blink.find t (key i)))
        expect;
      Env.close env)

(* Regression: the log-growth trigger compares the WAL's append counter
   against a watermark recorded at the last checkpoint. The counter
   restarts at zero when a crash rebuilds the log manager, so an un-rebased
   watermark left the checkpointer (and truncation) dormant until the new
   log outgrew the entire pre-crash one. Recovery must rebase it. *)
let test_watermark_rebased_after_recovery () =
  with_temp_dir (fun dir ->
      let pages = Filename.concat dir "pages.db" in
      let cfg =
        {
          Env.default_config with
          page_size = 512;
          pool_capacity = 256;
          log_path = Some (Filename.concat dir "wal.log");
          ckpt_log_bytes = Some 8192;
        }
      in
      let env =
        Env.create ~disk:(Disk.file ~page_size:512 ~path:pages) cfg
      in
      let t = Blink.create env ~name:"t" in
      for i = 0 to 4_999 do
        Blink.insert t ~key:(Printf.sprintf "a%05d" i) ~value:"v"
      done;
      ignore (Env.drain env);
      let before_crash = (Env.stats env).Env.checkpoints in
      Alcotest.(check bool) "checkpoints ran before crash" true
        (before_crash > 0);
      Log_manager.flush_all (Env.log env);
      Env.crash env;
      ignore (Env.recover env);
      let t = Option.get (Blink.open_existing env ~name:"t") in
      (* Far less work than the pre-crash total, but well past the 8 KiB
         trigger measured from the recovery point. *)
      for i = 0 to 999 do
        Blink.insert t ~key:(Printf.sprintf "b%05d" i) ~value:"v"
      done;
      ignore (Env.drain env);
      Alcotest.(check bool)
        (Printf.sprintf "checkpoints resumed after recovery (%d -> %d)"
           before_crash (Env.stats env).Env.checkpoints)
        true
        ((Env.stats env).Env.checkpoints > before_crash);
      Env.close env)

(* [pin_attempts] bounds the full-shard retry ladder: a single-shard pool
   with every frame pinned must raise [Pool_exhausted] after the
   configured two waits — quickly — and recover as soon as a pin drops. *)
let test_pin_backoff_config () =
  let disk = Disk.in_memory ~page_size:256 in
  let pool =
    Buffer_pool.create ~capacity:8 ~shards:1 ~pin_attempts:2 ~disk
      ~wal_flush:(fun _ -> ())
      ()
  in
  Alcotest.(check int) "pin_attempts" 2 (Buffer_pool.pin_attempts pool);
  let cap = Buffer_pool.capacity pool in
  let frames = List.init cap (fun i -> Buffer_pool.pin_new pool (i + 2)) in
  let t0 = Unix.gettimeofday () in
  Alcotest.check_raises "exhausted" Buffer_pool.Pool_exhausted (fun () ->
      ignore (Buffer_pool.pin_new pool (cap + 2)));
  let waited = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "gave up after the 2-attempt ladder (%.3fs)" waited)
    true (waited < 0.05);
  Buffer_pool.unpin pool (List.hd frames);
  let f = Buffer_pool.pin_new pool (cap + 2) in
  Buffer_pool.unpin pool f;
  List.iter (Buffer_pool.unpin pool) (List.tl frames)

(* The knob plumbs through [Env.config]. *)
let test_pin_attempts_via_env () =
  let cfg =
    {
      Env.default_config with
      page_size = 256;
      pool_capacity = 64;
      pool_pin_attempts = Some 3;
    }
  in
  let env = Env.create cfg in
  Alcotest.(check int) "env-configured pin_attempts" 3
    (Buffer_pool.pin_attempts (Env.pool env));
  Env.close env

(* Seeded jitter: equal seeds reproduce equal backoff sequences, different
   seeds diverge, and every wait lands in [0.5, 1.5) x the un-jittered
   capped-exponential nominal. *)
let test_backoff_jitter () =
  let mk seed =
    Buffer_pool.create ~capacity:8 ~shards:1 ~backoff_seed:seed
      ~disk:(Disk.in_memory ~page_size:256)
      ~wal_flush:(fun _ -> ())
      ()
  in
  let draws pool =
    List.init 32 (fun i ->
        Buffer_pool.Testing.backoff_duration pool ~attempt:(i mod 8))
  in
  let a = draws (mk 7) and b = draws (mk 7) and c = draws (mk 8) in
  Alcotest.(check (list (float 0.0))) "same seed, same sequence" a b;
  Alcotest.(check bool) "different seed diverges" true (a <> c);
  List.iteri
    (fun i d ->
      let nominal = min (0.0002 *. (2.0 ** float_of_int (min (i mod 8) 4))) 0.002 in
      if not (d >= 0.5 *. nominal && d < 1.5 *. nominal) then
        Alcotest.failf "draw %d: %.6fs outside [0.5, 1.5) x %.6fs" i d nominal)
    a

(* Regression: rec_lsn used to be (page LSN + 1) — sound, but arbitrarily
   loose. One update to a cold page whose LSN predates the last checkpoint
   dragged the redo floor (and with it the truncation keep-point) below
   the retained log, and under steady Zipf traffic over a million keys
   some checkpoint interval always contains one: the acceptance run logged
   19 checkpoints, zero records truncated, a 103 MB WAL. A freshly created
   page (LSN 0) was worse — rec_lsn 1 floors truncation at the origin.
   The pool now samples an installed WAL-tail source at the clean→dirty
   transition (the first un-persisted record is appended after it, so
   tail + 1 is sound and tight), keeping the page-LSN fallback only for
   source-less pools. *)
let test_rec_lsn_from_wal_tail () =
  let pool =
    Buffer_pool.create ~capacity:8 ~shards:1
      ~disk:(Disk.in_memory ~page_size:256)
      ~wal_flush:(fun _ -> ())
      ()
  in
  let tail = ref 41 in
  Buffer_pool.set_lsn_source pool (Some (fun () -> !tail));
  let fr = Buffer_pool.pin_new pool 2 in
  Buffer_pool.mark_dirty fr;
  Alcotest.(check (list (pair int int)))
    "fresh page: rec_lsn = tail + 1"
    [ (2, 42) ]
    (Buffer_pool.dirty_pages pool);
  Buffer_pool.flush_page pool fr;
  tail := 99;
  Pitree_storage.Page.set_lsn fr.Buffer_pool.page 7;
  Buffer_pool.mark_dirty fr;
  Alcotest.(check (list (pair int int)))
    "cold page: rec_lsn = tail + 1, not its stale page LSN"
    [ (2, 100) ]
    (Buffer_pool.dirty_pages pool);
  Buffer_pool.flush_page pool fr;
  Buffer_pool.set_lsn_source pool None;
  Buffer_pool.mark_dirty fr;
  Alcotest.(check (list (pair int int)))
    "no source installed: page LSN + 1 fallback"
    [ (2, 8) ]
    (Buffer_pool.dirty_pages pool);
  Buffer_pool.unpin pool fr

(* Miniature end-to-end run: one crash cycle, faults on, a few seconds of
   mixed load over a small key space. Every SLO must hold and the JSON
   document must carry the per-kind p999 and fault counters CI parses. *)
let test_endure_smoke () =
  let cfg =
    {
      Endure.default_config with
      Endure.keys = 4_000;
      seconds = 1.2;
      domains = 2;
      pool_capacity = 1024;
      ckpt_log_bytes = 262_144;
      crash_cycles = 1;
      verify_sample = 400;
      seed = 99L;
    }
  in
  let r = Endure.run cfg in
  Alcotest.(check int) "no lost writes" 0 r.Endure.lost_writes;
  Alcotest.(check int) "no scan shortfalls" 0 r.Endure.scan_shortfalls;
  Alcotest.(check int) "no wellformed failures" 0 r.Endure.wellformed_failures;
  Alcotest.(check int) "crash cycles" 1 r.Endure.cycles_done;
  Alcotest.(check bool) "passed" true r.Endure.passed;
  let json = Endure.to_json r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in JSON") true (contains json needle))
    [ "\"p999_ns\""; "\"faults\""; "\"slos\""; "\"passed\": true" ]

let suites =
  [
    ( "endure",
      [
        Alcotest.test_case "truncate races faults + crash at ckpt.truncated"
          `Quick test_truncate_race_crash;
        Alcotest.test_case "orphaned redo records vs torn page" `Quick
          test_orphans_vs_torn_page;
        Alcotest.test_case "ckpt watermark rebased after recovery" `Quick
          test_watermark_rebased_after_recovery;
        Alcotest.test_case "pin backoff: bounded attempts" `Quick
          test_pin_backoff_config;
        Alcotest.test_case "pin backoff: env plumbing" `Quick
          test_pin_attempts_via_env;
        Alcotest.test_case "pin backoff: seeded jitter" `Quick
          test_backoff_jitter;
        Alcotest.test_case "rec_lsn from WAL tail" `Quick
          test_rec_lsn_from_wal_tail;
        Alcotest.test_case "endure smoke" `Slow test_endure_smoke;
      ] );
  ]
