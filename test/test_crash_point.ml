(* Tests for the crash-point registry and arming machinery. *)

module Crash_point = Pitree_util.Crash_point

(* The global registry is shared with the engine modules (which register
   their points at module-init time), so tests use a distinct namespace
   and never assert on the registry's exact contents. *)

let fresh () =
  Crash_point.disarm_all ();
  Crash_point.reset_counts ()

let test_register_and_enumerate () =
  fresh ();
  Crash_point.register "cptest.b";
  Crash_point.register "cptest.a";
  Crash_point.register "cptest.a";
  let names = Crash_point.all_names () in
  Alcotest.(check bool) "a present" true (List.mem "cptest.a" names);
  Alcotest.(check bool) "b present" true (List.mem "cptest.b" names);
  Alcotest.(check int) "no duplicate from re-register" 1
    (List.length (List.filter (String.equal "cptest.a") names));
  let rec sorted = function
    | a :: (b :: _ as rest) -> String.compare a b <= 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted names)

let test_engine_points_preregistered () =
  (* Engines register at module-init: merely linking them populates the
     registry, before any workload has hit a point. *)
  let names = Crash_point.all_names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [
      "blink.split.linked";
      "blink.post.updated";
      "hb.split.linked";
      "tsb.timesplit.linked";
    ]

let test_hit_registers_implicitly () =
  fresh ();
  Crash_point.hit "cptest.implicit";
  Alcotest.(check bool) "registered by hit" true
    (List.mem "cptest.implicit" (Crash_point.all_names ()))

let test_arm_after_zero_fires_first_hit () =
  fresh ();
  Crash_point.arm "cptest.p" ~after:0;
  Alcotest.check_raises "first hit fires"
    (Crash_point.Crash_requested "cptest.p") (fun () ->
      Crash_point.hit "cptest.p")

let test_arm_countdown () =
  fresh ();
  Crash_point.arm "cptest.p" ~after:2;
  Crash_point.hit "cptest.p";
  Crash_point.hit "cptest.p";
  Alcotest.check_raises "third hit fires"
    (Crash_point.Crash_requested "cptest.p") (fun () ->
      Crash_point.hit "cptest.p");
  (* Once fired, the point is spent. *)
  Crash_point.hit "cptest.p"

let test_disarm_all () =
  fresh ();
  Crash_point.arm "cptest.p" ~after:0;
  Crash_point.arm "cptest.q" ~after:0;
  Crash_point.disarm_all ();
  Crash_point.hit "cptest.p";
  Crash_point.hit "cptest.q"

let test_hit_counts () =
  fresh ();
  Alcotest.(check int) "zero before" 0 (Crash_point.hit_count "cptest.c");
  Crash_point.hit "cptest.c";
  Crash_point.hit "cptest.c";
  Crash_point.hit "cptest.c";
  Alcotest.(check int) "three hits" 3 (Crash_point.hit_count "cptest.c");
  Crash_point.reset_counts ();
  Alcotest.(check int) "reset" 0 (Crash_point.hit_count "cptest.c")

let suites =
  [
    ( "crash_point",
      [
        Alcotest.test_case "register + all_names" `Quick
          test_register_and_enumerate;
        Alcotest.test_case "engine points pre-registered" `Quick
          test_engine_points_preregistered;
        Alcotest.test_case "hit registers implicitly" `Quick
          test_hit_registers_implicitly;
        Alcotest.test_case "arm after:0" `Quick
          test_arm_after_zero_fires_first_hit;
        Alcotest.test_case "arm countdown" `Quick test_arm_countdown;
        Alcotest.test_case "disarm_all" `Quick test_disarm_all;
        Alcotest.test_case "hit counts" `Quick test_hit_counts;
      ] );
  ]
