(* Crash-recovery tests: the paper's innovation 4 — "when a system crash
   occurs during the sequence of atomic actions that constitutes a complete
   Pi-tree structure change, crash recovery takes no special measures". We
   inject crashes at every named point inside and between atomic actions,
   recover, and require (a) a well-formed tree, (b) no lost committed data,
   (c) interrupted structure changes completed lazily by later traversals. *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Wellformed = Pitree_core.Wellformed
module Crash_point = Pitree_util.Crash_point
module Log_manager = Pitree_wal.Log_manager

let cfg ?(page_oriented_undo = false) () =
  {
    Env.default_config with
    page_size = 256;
    pool_capacity = 4096;
    page_oriented_undo;
    consolidation = true;
  }

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "val%06d" i

let check_wf t =
  let report = Blink.verify t in
  if not (Wellformed.ok report) then
    Alcotest.failf "tree not well-formed after recovery: %a" Wellformed.pp_report
      report

(* Run [load] until the armed crash point fires (or the load completes),
   then crash + recover, reattach to the tree, and validate. [committed]
   maps each key to the value that MUST be present (autocommit = every
   insert whose call returned is committed and, after its commit forced the
   log, durable). *)
let crash_and_recover env name =
  Env.crash env;
  let _report = Env.recover env in
  match Blink.open_existing env ~name with
  | Some t -> t
  | None -> Alcotest.fail "tree vanished from catalog after recovery"

let run_with_crash ~point ~after ?(page_oriented_undo = false) () =
  Crash_point.disarm_all ();
  let env = Env.create (cfg ~page_oriented_undo ()) in
  let t = Blink.create env ~name:"t" in
  let committed = Hashtbl.create 512 in
  let crashed = ref false in
  Crash_point.arm point ~after;
  (try
     for i = 0 to 799 do
       Blink.insert t ~key:(key i) ~value:(value i);
       Hashtbl.replace committed (key i) (value i)
     done
   with Crash_point.Crash_requested _ -> crashed := true);
  Crash_point.disarm_all ();
  let t = crash_and_recover env "t" in
  check_wf t;
  (* Durability: every insert that completed before the crash was committed
     with a forced log, so it must be present with the right value. *)
  Hashtbl.iter
    (fun k v ->
      match Blink.find t k with
      | Some v' when v' = v -> ()
      | Some v' -> Alcotest.failf "corrupted %s: %s" k v'
      | None -> Alcotest.failf "lost committed key %s (crash at %s)" k point)
    committed;
  (* The tree keeps working: do more inserts through the recovered state. *)
  for i = 800 to 899 do
    Blink.insert t ~key:(key i) ~value:(value i)
  done;
  ignore (Env.drain env);
  check_wf t;
  (!crashed, t, env)

let test_crash_point point () =
  (* Crash at the first firing AND at a later firing of the point, to catch
     both young-tree and deep-tree states. *)
  List.iter
    (fun after ->
      let crashed, _, _ = run_with_crash ~point ~after () in
      if after = 0 && not crashed then
        Alcotest.failf "crash point %s never fired" point)
    [ 0; 5 ]

let test_crash_between_actions_completion () =
  (* Create the durable intermediate state deliberately: inserts inside an
     explicit transaction perform their splits as independent atomic
     actions but nothing drains the posting queue; the transaction's commit
     forces the log (making the splits durable, by relative durability);
     then we crash before any posting ran. The intermediate state persists
     across recovery; a later search must detect it (side traversal) and
     schedule the completing atomic action (section 5.1). *)
  Crash_point.disarm_all ();
  let env = Env.create (cfg ()) in
  let t = Blink.create env ~name:"t" in
  let mgr = Env.txns env in
  let txn = Pitree_txn.Txn_mgr.begin_txn mgr Pitree_txn.Txn.User in
  for i = 0 to 799 do
    Blink.insert ~txn t ~key:(key i) ~value:(value i)
  done;
  Pitree_txn.Txn_mgr.commit mgr txn;
  Alcotest.(check bool) "postings still pending" true
    (Blink.pending_postings t > 0);
  let t = crash_and_recover env "t" in
  check_wf t;
  Blink.reset_stats t;
  (* Recovery itself must not have completed the posting: it takes no
     special measures. The side pointer is still the only route, so a scan
     of all keys triggers side traversals and schedules the posting. *)
  for i = 0 to 799 do
    ignore (Blink.find t (key i))
  done;
  ignore (Env.drain env);
  let s = Blink.stats t in
  Alcotest.(check bool)
    (Printf.sprintf "completion happened lazily (side=%d posted=%d)"
       s.Blink.side_traversals s.Blink.postings_completed)
    true
    (s.Blink.side_traversals > 0);
  check_wf t

let test_crash_mid_action_rolls_back () =
  (* Crash INSIDE the split action (after the sibling is linked, before
     commit): recovery must roll the whole action back — all or nothing. *)
  Crash_point.disarm_all ();
  let env = Env.create (cfg ()) in
  let t = Blink.create env ~name:"t" in
  Crash_point.arm "blink.split.linked" ~after:3;
  let crashed = ref false in
  (try
     for i = 0 to 799 do
       Blink.insert t ~key:(key i) ~value:(value i)
     done
   with Crash_point.Crash_requested _ -> crashed := true);
  Alcotest.(check bool) "crashed mid-action" true !crashed;
  Crash_point.disarm_all ();
  (* Pretend the log tail reached disk just before the power failed, so
     recovery has real undo work to do for the interrupted action. *)
  Log_manager.flush_all (Env.log env);
  let report = (Env.crash env; Env.recover env) in
  Alcotest.(check bool) "some transaction rolled back" true
    (report.Pitree_wal.Recovery.loser_txns <> []);
  let t =
    match Blink.open_existing env ~name:"t" with
    | Some t -> t
    | None -> Alcotest.fail "tree lost"
  in
  check_wf t

let test_repeated_crashes () =
  (* Crash, recover, crash again during recovery-completed state, etc. *)
  Crash_point.disarm_all ();
  let env = Env.create (cfg ()) in
  let t = ref (Blink.create env ~name:"t") in
  let committed = Hashtbl.create 512 in
  let next = ref 0 in
  for round = 0 to 4 do
    Crash_point.arm "blink.split.linked" ~after:round;
    (try
       for _ = 1 to 150 do
         let i = !next in
         incr next;
         Blink.insert !t ~key:(key i) ~value:(value i);
         Hashtbl.replace committed (key i) (value i)
       done;
       Crash_point.disarm_all ()
     with Crash_point.Crash_requested _ -> ());
    Crash_point.disarm_all ();
    t := crash_and_recover env "t";
    check_wf !t
  done;
  Hashtbl.iter
    (fun k v ->
      match Blink.find !t k with
      | Some v' when v' = v -> ()
      | _ -> Alcotest.failf "lost %s after repeated crashes" k)
    committed

let test_crash_during_consolidation () =
  Crash_point.disarm_all ();
  let env = Env.create (cfg ()) in
  let t = Blink.create env ~name:"t" in
  for i = 0 to 799 do
    Blink.insert t ~key:(key i) ~value:(value i)
  done;
  ignore (Env.drain env);
  Crash_point.arm "blink.consolidate.linked" ~after:2;
  let crashed = ref false in
  (try
     for i = 0 to 799 do
       ignore (Blink.delete t (key i));
       ignore (Env.drain (Blink.env t))
     done
   with Crash_point.Crash_requested _ -> crashed := true);
  Crash_point.disarm_all ();
  if not !crashed then Alcotest.fail "consolidation crash point never fired";
  let t = crash_and_recover env "t" in
  check_wf t;
  (* Consolidation is a single atomic action across two levels: it either
     happened entirely or not at all; either way no data may be lost. *)
  let remaining = Blink.count t in
  Alcotest.(check bool) "remaining sane" true (remaining >= 0 && remaining <= 800)

let test_crash_uncommitted_txn_rolled_back () =
  Crash_point.disarm_all ();
  let env = Env.create (cfg ()) in
  let t = Blink.create env ~name:"t" in
  for i = 0 to 99 do
    Blink.insert t ~key:(key i) ~value:(value i)
  done;
  (* Force everything committed so far to be durable, then start a txn and
     crash without committing it. *)
  let mgr = Env.txns env in
  let txn = Pitree_txn.Txn_mgr.begin_txn mgr Pitree_txn.Txn.User in
  for i = 100 to 199 do
    Blink.insert ~txn t ~key:(key i) ~value:(value i)
  done;
  (* Make the uncommitted txn's updates durable-but-uncommitted, to force
     real undo work at recovery (not just lost tail). *)
  Log_manager.flush_all (Env.log env);
  let t = crash_and_recover env "t" in
  check_wf t;
  for i = 0 to 99 do
    Alcotest.(check (option string)) (key i) (Some (value i)) (Blink.find t (key i))
  done;
  for i = 100 to 199 do
    Alcotest.(check (option string))
      (Printf.sprintf "uncommitted %s rolled back" (key i))
      None (Blink.find t (key i))
  done

let test_unflushed_commits_lost_cleanly () =
  (* System-transaction commits are only relatively durable: a crash can
     lose them wholesale, but never partially. *)
  Crash_point.disarm_all ();
  let env = Env.create (cfg ()) in
  let t = Blink.create env ~name:"t" in
  for i = 0 to 399 do
    Blink.insert t ~key:(key i) ~value:(value i)
  done;
  let t = crash_and_recover env "t" in
  check_wf t;
  (* Autocommit forces the log at each commit, so everything survives. *)
  Alcotest.(check int) "all committed data" 400 (Blink.count t)

let test_page_oriented_crash_matrix () =
  List.iter
    (fun point ->
      let _ = run_with_crash ~point ~after:2 ~page_oriented_undo:true () in
      ())
    [ "blink.split.linked"; "blink.split.committed"; "blink.post.updated" ]

let points =
  [
    "blink.split.linked";
    "blink.split.committed";
    "blink.root.grown";
    "blink.post.latched";
    "blink.post.updated";
    "blink.post.done";
  ]

let suites =
  [
    ( "crash.points",
      List.map
        (fun p -> Alcotest.test_case p `Quick (test_crash_point p))
        points );
    ( "crash.protocol",
      [
        Alcotest.test_case "completion after crash between actions" `Quick
          test_crash_between_actions_completion;
        Alcotest.test_case "mid-action rollback" `Quick
          test_crash_mid_action_rolls_back;
        Alcotest.test_case "repeated crashes" `Quick test_repeated_crashes;
        Alcotest.test_case "crash during consolidation" `Quick
          test_crash_during_consolidation;
        Alcotest.test_case "uncommitted txn rolled back" `Quick
          test_crash_uncommitted_txn_rolled_back;
        Alcotest.test_case "clean loss of unflushed tail" `Quick
          test_unflushed_commits_lost_cleanly;
        Alcotest.test_case "page-oriented undo crash matrix" `Quick
          test_page_oriented_crash_matrix;
      ] );
  ]
