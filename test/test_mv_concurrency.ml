(* Multi-domain tests for the TSB (multiversion) and hB (multiattribute)
   engines, plus a TSB model-based property: both engines run the same
   Pi-tree protocol, so they must stay correct under parallel writers. *)

module Env = Pitree_env.Env
module Tsb = Pitree_tsb.Tsb
module Hb = Pitree_hb.Hb
module Wellformed = Pitree_core.Wellformed
module Rng = Pitree_util.Rng

let cfg () =
  {
    Env.default_config with
    page_size = 512;
    pool_capacity = 8192;
    page_oriented_undo = false;
    consolidation = false;
  }

let test_tsb_parallel_writers () =
  let env = Env.create (cfg ()) in
  let t = Tsb.create env ~name:"v" in
  let domains = 4 and per = 300 in
  (* Each domain owns disjoint keys; every version it writes must be
     visible at its stamp afterwards. *)
  let work d () =
    let out = ref [] in
    for i = 0 to per - 1 do
      let k = Printf.sprintf "d%d-%04d" d (i mod 40) in
      let v = Printf.sprintf "%d.%d" d i in
      let ts = Tsb.put t ~key:k ~value:v in
      out := (k, ts, v) :: !out
    done;
    !out
  in
  let hs = List.init domains (fun d -> Domain.spawn (work d)) in
  let written = List.concat_map Domain.join hs in
  ignore (Env.drain env);
  let report = Tsb.verify t in
  if not (Wellformed.ok report) then
    Alcotest.failf "tsb not well-formed: %a" Wellformed.pp_report report;
  (* Timestamps must be unique (the tree clock is shared). *)
  let stamps = List.map (fun (_, ts, _) -> ts) written in
  Alcotest.(check int) "unique stamps" (List.length stamps)
    (List.length (List.sort_uniq compare stamps));
  List.iter
    (fun (k, ts, v) ->
      match Tsb.get_asof t k ~time:ts with
      | Some v' when v' = v -> ()
      | _ -> Alcotest.failf "lost version %s@%d" k ts)
    written

let test_tsb_readers_during_writes () =
  Seeds.with_seed "mv.tsb.readers-during-writes" @@ fun seed ->
  let env = Env.create (cfg ()) in
  let t = Tsb.create env ~name:"v" in
  for i = 0 to 39 do
    ignore (Tsb.put t ~key:(Printf.sprintf "k%02d" i) ~value:"base")
  done;
  let snap = Tsb.now t in
  let stop = Atomic.make false in
  let reader () =
    let rng = Rng.create seed in
    let n = ref 0 in
    while not (Atomic.get stop) do
      let k = Printf.sprintf "k%02d" (Rng.int rng 40) in
      (* The snapshot view must be immutable no matter what writers do. *)
      (match Tsb.get_asof t k ~time:snap with
      | Some "base" -> ()
      | other ->
          Alcotest.failf "snapshot changed: %s"
            (Option.value other ~default:"<none>"));
      incr n
    done;
    !n
  in
  let writer () =
    for round = 1 to 200 do
      for i = 0 to 39 do
        ignore (Tsb.put t ~key:(Printf.sprintf "k%02d" i) ~value:(string_of_int round))
      done
    done;
    Atomic.set stop true
  in
  let r = Domain.spawn reader in
  let w = Domain.spawn writer in
  Domain.join w;
  let reads = Domain.join r in
  ignore (Env.drain env);
  Alcotest.(check bool) "reader progressed" true (reads > 0);
  Alcotest.(check bool) "well-formed" true (Wellformed.ok (Tsb.verify t))

let test_hb_parallel_writers () =
  Seeds.with_seed "mv.hb.parallel-writers" @@ fun seed ->
  let env = Env.create (cfg ()) in
  let t = Hb.create env ~name:"h" ~dims:2 in
  let domains = 4 and per = 400 in
  let work d () =
    let rng = Rng.create (Int64.add seed (Int64.of_int (500 + d))) in
    let mine = ref [] in
    for i = 0 to per - 1 do
      (* Disjoint x-bands per domain keep final contents deterministic. *)
      let p =
        [| (float_of_int d +. Rng.float rng 1.0) /. float_of_int domains;
           Rng.float rng 1.0 |]
      in
      Hb.insert t ~point:p ~value:(Printf.sprintf "%d.%d" d i);
      mine := (p, Printf.sprintf "%d.%d" d i) :: !mine
    done;
    !mine
  in
  let hs = List.init domains (fun d -> Domain.spawn (work d)) in
  let written = List.concat_map Domain.join hs in
  ignore (Env.drain env);
  let report = Hb.verify t in
  if not (Wellformed.ok report) then
    Alcotest.failf "hb not well-formed: %a" Wellformed.pp_report report;
  Alcotest.(check int) "count" (domains * per) (Hb.count t);
  List.iter
    (fun (p, v) ->
      match Hb.find t p with
      | Some v' when v' = v -> ()
      | _ -> Alcotest.failf "lost point of %s" v)
    written

(* Property: the TSB behaves as a versioned map — after a random script of
   puts/removes, every (key, time) query agrees with a pure model replay. *)
let prop_tsb_versioned_map =
  let open QCheck in
  let op_gen =
    Gen.(
      frequency
        [
          (6, map2 (fun k v -> `Put (k mod 20, v)) small_nat small_nat);
          (2, map (fun k -> `Remove (k mod 20)) small_nat);
        ])
  in
  Test.make ~name:"tsb = versioned map model" ~count:20
    (make Gen.(list_size (int_range 50 300) op_gen))
    (fun ops ->
      let env = Env.create (cfg ()) in
      let t = Tsb.create env ~name:"v" in
      (* model: per key, assoc list of (stamp, value option), newest first *)
      let model : (int, (int * string option) list) Hashtbl.t = Hashtbl.create 20 in
      let record k ts v =
        let prev = Option.value (Hashtbl.find_opt model k) ~default:[] in
        Hashtbl.replace model k ((ts, v) :: prev)
      in
      List.iter
        (fun op ->
          match op with
          | `Put (k, v) ->
              let ts = Tsb.put t ~key:(string_of_int k) ~value:(string_of_int v) in
              record k ts (Some (string_of_int v))
          | `Remove k ->
              let ts = Tsb.remove t (string_of_int k) in
              record k ts None)
        ops;
      ignore (Env.drain env);
      if not (Wellformed.ok (Tsb.verify t)) then Test.fail_report "not well-formed";
      let horizon = Tsb.now t in
      (* Probe every key at a sample of times. *)
      Hashtbl.iter
        (fun k versions ->
          let expect_at time =
            match List.find_opt (fun (ts, _) -> ts <= time) versions with
            | Some (_, v) -> v
            | None -> None
          in
          List.iter
            (fun time ->
              let got = Tsb.get_asof t (string_of_int k) ~time in
              if got <> expect_at time then
                Test.fail_reportf "key %d at t=%d: got %s want %s" k time
                  (Option.value got ~default:"-")
                  (Option.value (expect_at time) ~default:"-"))
            [ 1; horizon / 3; horizon / 2; horizon - 1; horizon; max_int ];
          (* Full history must equal the model's (sorted) version list. *)
          let hist = Tsb.history t (string_of_int k) in
          let model_hist = List.rev versions in
          if hist <> model_hist then Test.fail_reportf "history mismatch on %d" k)
        model;
      true)

let suites =
  [
    ( "mv.tsb",
      [
        Alcotest.test_case "parallel writers" `Slow test_tsb_parallel_writers;
        Alcotest.test_case "snapshot readers during writes" `Slow
          test_tsb_readers_during_writes;
        QCheck_alcotest.to_alcotest prop_tsb_versioned_map;
      ] );
    ( "mv.hb",
      [ Alcotest.test_case "parallel writers" `Slow test_hb_parallel_writers ] );
  ]
