(* Unit tests for pitree.wal: log records, page ops, log manager, recovery. *)

module Page = Pitree_storage.Page
module Disk = Pitree_storage.Disk
module Buffer_pool = Pitree_storage.Buffer_pool
module Lsn = Pitree_wal.Lsn
module Page_op = Pitree_wal.Page_op
module Log_record = Pitree_wal.Log_record
module Log_manager = Pitree_wal.Log_manager
module Logical = Pitree_wal.Logical
module Recovery = Pitree_wal.Recovery

let sample_ops =
  [
    Page_op.Format { kind = Page.Data; level = 0 };
    Page_op.Reformat
      { old_kind = Page.Data; new_kind = Page.Index; old_level = 0; new_level = 1 };
    Page_op.Insert_slot { slot = 3; cell = "hello" };
    Page_op.Delete_slot { slot = 0; cell = "bye\x00bye" };
    Page_op.Replace_slot { slot = 7; old_cell = "a"; new_cell = "bb" };
    Page_op.Set_side_ptr { old_ptr = 0; new_ptr = 42 };
    Page_op.Set_aux_ptr { old_ptr = 9; new_ptr = 0 };
    Page_op.Set_flags { old_flags = 0; new_flags = 257 };
    Page_op.Clear { cells = [ "x"; "yy"; "zzz" ] };
    Page_op.Restore { cells = [ ""; "q" ] };
  ]

let test_page_op_codec () =
  List.iter
    (fun op ->
      let b = Buffer.create 32 in
      Page_op.encode b op;
      let decoded = Page_op.decode (Pitree_util.Codec.reader (Buffer.contents b)) in
      if decoded <> op then
        Alcotest.failf "page op roundtrip failed: %a" Page_op.pp op)
    sample_ops

let test_page_op_invert_involution () =
  List.iter
    (fun op ->
      let original = Page_op.invert (Page_op.invert op) in
      (* invert is an involution except Format (whose inverse is lossy by
         design: fresh allocations only). *)
      match op with
      | Page_op.Format _ -> ()
      | _ ->
          if original <> op then
            Alcotest.failf "invert not involutive on %a" Page_op.pp op)
    sample_ops

let test_page_op_undo_restores () =
  (* Applying op then its inverse restores the page content. *)
  let p = Page.create ~size:512 ~id:1 ~kind:Page.Data ~level:0 in
  Page.insert p 0 "zero";
  Page.insert p 1 "one";
  Page.set_side_ptr p 5;
  let snapshot () = Bytes.to_string (Bytes.copy (Page.raw p)) in
  let ops =
    [
      Page_op.Insert_slot { slot = 1; cell = "inserted" };
      Page_op.Delete_slot { slot = 0; cell = "zero" };
      Page_op.Replace_slot { slot = 0; old_cell = "zero"; new_cell = "ZERO!" };
      Page_op.Set_side_ptr { old_ptr = 5; new_ptr = 77 };
      Page_op.Clear { cells = [ "zero"; "one" ] };
    ]
  in
  List.iter
    (fun op ->
      let before = snapshot () in
      Page_op.redo p op;
      Page_op.redo p (Page_op.invert op);
      (* Compare logical content, not raw bytes (heap layout may differ). *)
      let restored = Page.fold p ~init:[] ~f:(fun acc _ c -> c :: acc) in
      let q = Page.of_bytes ~id:1 (Bytes.of_string before) in
      let original = Page.fold q ~init:[] ~f:(fun acc _ c -> c :: acc) in
      if restored <> original || Page.side_ptr p <> Page.side_ptr q then
        Alcotest.failf "undo failed to restore after %a" Page_op.pp op)
    ops

let roundtrip_record r =
  let decoded = Log_record.decode (Log_record.encode r) in
  if decoded <> r then Alcotest.failf "log record roundtrip: %a" Log_record.pp r

let test_log_record_codec () =
  List.iter roundtrip_record
    [
      { Log_record.lsn = 1; prev = 0; txn = 5; body = Log_record.Begin { kind = Log_record.User } };
      { lsn = 2; prev = 1; txn = 5; body = Log_record.Commit };
      { lsn = 3; prev = 2; txn = 5; body = Log_record.Abort };
      { lsn = 4; prev = 3; txn = 5; body = Log_record.End };
      {
        lsn = 5;
        prev = 4;
        txn = 5;
        body =
          Log_record.Update
            { page = 9; op = Page_op.Insert_slot { slot = 1; cell = "x" }; lundo = None };
      };
      {
        lsn = 6;
        prev = 5;
        txn = 5;
        body =
          Log_record.Update
            {
              page = 9;
              op = Page_op.Delete_slot { slot = 1; cell = "x" };
              lundo =
                Some { Log_record.tree = 2; comp = Logical.Put { cell = "x" } };
            };
      };
      {
        lsn = 7;
        prev = 6;
        txn = 5;
        body =
          Log_record.Clr
            { page = 9; op = Page_op.Insert_slot { slot = 1; cell = "x" }; undo_next = 3 };
      };
      {
        lsn = 8;
        prev = 0;
        txn = 0;
        body = Log_record.Page_image { page = 4; image = String.make 64 '\xAB' };
      };
      { lsn = 8; prev = 0; txn = 0; body = Log_record.Begin_checkpoint };
      {
        lsn = 9;
        prev = 0;
        txn = 0;
        body =
          Log_record.End_checkpoint
            {
              begin_lsn = 8;
              dpt = [ (9, 4); (12, 7) ];
              att = [ (5, 6, false); (7, 2, true) ];
            };
      };
    ]

let test_log_record_crc () =
  let r =
    { Log_record.lsn = 1; prev = 0; txn = 1; body = Log_record.Commit }
  in
  let encoded = Bytes.of_string (Log_record.encode r) in
  Bytes.set encoded 6 (Char.chr (Char.code (Bytes.get encoded 6) lxor 1));
  Alcotest.(check bool) "corruption detected" true
    (match Log_record.decode (Bytes.to_string encoded) with
    | exception Pitree_util.Codec.Corrupt _ -> true
    | _ -> false)

let test_log_manager_basics () =
  let log = Log_manager.create () in
  let l1 = Log_manager.append log ~prev:0 ~txn:1 (Log_record.Begin { kind = Log_record.User }) in
  let l2 = Log_manager.append log ~prev:l1 ~txn:1 Log_record.Commit in
  Alcotest.(check int) "dense lsns" (l1 + 1) l2;
  Alcotest.(check int) "last" l2 (Log_manager.last_lsn log);
  Alcotest.(check int) "nothing durable yet" 0 (Log_manager.flushed_lsn log);
  Log_manager.flush log l1;
  Alcotest.(check int) "durable to l1" l1 (Log_manager.flushed_lsn log);
  let r = Log_manager.read log l2 in
  Alcotest.(check bool) "read back" true (r.Log_record.body = Log_record.Commit);
  let seen = ref [] in
  Log_manager.iter_from log 1 (fun r -> seen := r.Log_record.lsn :: !seen);
  Alcotest.(check (list int)) "iteration order" [ l2; l1 ] !seen

let test_log_crash_truncates () =
  let log = Log_manager.create () in
  let l1 = Log_manager.append log ~prev:0 ~txn:1 (Log_record.Begin { kind = Log_record.User }) in
  let _l2 = Log_manager.append log ~prev:l1 ~txn:1 Log_record.Commit in
  Log_manager.flush log l1;
  let log' = Log_manager.crash log in
  Alcotest.(check int) "volatile tail lost" l1 (Log_manager.last_lsn log');
  Alcotest.(check int) "durable kept" l1 (Log_manager.flushed_lsn log');
  (* Appending continues with dense LSNs. *)
  let l3 = Log_manager.append log' ~prev:0 ~txn:2 (Log_record.Begin { kind = Log_record.System }) in
  Alcotest.(check int) "dense after crash" (l1 + 1) l3

let test_truncation () =
  let log = Log_manager.create () in
  let lsns =
    List.init 10 (fun i ->
        Log_manager.append log ~prev:0 ~txn:(i + 1)
          (Log_record.Begin { kind = Log_record.User }))
  in
  let l5 = List.nth lsns 4 in
  (* Nothing durable yet: truncation is clamped to a no-op. *)
  Alcotest.(check int) "clamped to durable" 0 (Log_manager.truncate log ~keep_from:l5);
  Log_manager.flush_all log;
  Log_manager.set_checkpoint log ~lsn:l5 ~redo:l5;
  Alcotest.(check int) "discards prefix" 4 (Log_manager.truncate log ~keep_from:l5);
  (* Truncated reads fail loudly; surviving reads fine. *)
  Alcotest.(check bool) "read below truncation raises" true
    (match Log_manager.read log 2 with exception Invalid_argument _ -> true | _ -> false);
  Alcotest.(check int) "surviving record" l5 (Log_manager.read log l5).Log_record.lsn;
  (* Iteration skips the discarded prefix. *)
  let seen = ref 0 in
  Log_manager.iter_from log 1 (fun _ -> incr seen);
  Alcotest.(check int) "iter over window" 6 !seen;
  (* Appends continue with dense LSNs and max txn id survives. *)
  let l11 = Log_manager.append log ~prev:0 ~txn:99 Log_record.Commit in
  Alcotest.(check int) "dense" 11 l11;
  Alcotest.(check int) "max txn tracked" 99 (Log_manager.max_txn_id log);
  (* Crash keeps the truncation offset. *)
  Log_manager.flush_all log;
  let log' = Log_manager.crash log in
  Alcotest.(check int) "count preserved" 11 (Log_manager.last_lsn log');
  Alcotest.(check int) "still truncated" l5 (Log_manager.read log' l5).Log_record.lsn

let test_truncation_respects_active_txn () =
  (* End to end: a long-running transaction across a checkpoint keeps its
     undo chain readable; abort after the checkpoint still works. *)
  let module Env = Pitree_env.Env in
  let module Blink = Pitree_blink.Blink in
  let env =
    Env.create
      { Env.default_config with page_size = 256; pool_capacity = 2048; page_oriented_undo = false; consolidation = true }
  in
  let t = Blink.create env ~name:"t" in
  let mgr = Pitree_env.Env.txns env in
  let txn = Pitree_txn.Txn_mgr.begin_txn mgr Pitree_txn.Txn.User in
  for i = 0 to 99 do
    Blink.insert ~txn t ~key:(Printf.sprintf "old%03d" i) ~value:"x"
  done;
  (* Checkpoint + lots of unrelated committed traffic: truncation must stop
     at the open transaction's Begin. *)
  Env.checkpoint env;
  for i = 0 to 399 do
    Blink.insert t ~key:(Printf.sprintf "new%03d" i) ~value:"y"
  done;
  Env.checkpoint env;
  Pitree_txn.Txn_mgr.abort mgr txn;
  ignore (Env.drain env);
  Alcotest.(check bool) "well-formed after late abort" true
    (Pitree_core.Wellformed.ok (Blink.verify t));
  Alcotest.(check int) "only committed rows remain" 400 (Blink.count t)

let test_force_counting () =
  (* Forces count real fsyncs only. An in-memory log advances the
     durability horizon without syncing anything — charging it a force
     skewed the §4.3.1 counter. *)
  let log = Log_manager.create () in
  let l1 = Log_manager.append log ~prev:0 ~txn:1 Log_record.Commit in
  Log_manager.flush log l1;
  Log_manager.flush log l1;
  (* second is a no-op *)
  let s = Log_manager.stats log in
  Alcotest.(check int) "in-memory: no real fsyncs" 0 s.Log_manager.forces;
  Alcotest.(check int) "in-memory: one durability advance" 1 s.Log_manager.flushes;
  Alcotest.(check int) "durable anyway" l1 (Log_manager.flushed_lsn log);
  (* File-backed: exactly one fsync for the commit; the no-op repeat and a
     flush aimed past the appended tail write zero bytes and add none. *)
  let path = Filename.temp_file "pitree_force" ".wal" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".ckpt") with Sys_error _ -> ())
    (fun () ->
      let log = Log_manager.create ~path () in
      let l1 = Log_manager.append log ~prev:0 ~txn:1 Log_record.Commit in
      Log_manager.flush log l1;
      Log_manager.flush log l1;
      Log_manager.flush log (l1 + 5);
      let s = Log_manager.stats log in
      Alcotest.(check int) "file-backed: exactly one fsync" 1 s.Log_manager.forces;
      Alcotest.(check int) "one request coalesced" 1 s.Log_manager.flush_requests;
      Alcotest.(check bool) "batch mean is 1" true
        (abs_float (s.Log_manager.batch_mean -. 1.0) < 1e-9))

(* Recovery micro-scenario without any engine: two pages, one winner and
   one loser transaction. *)
let test_recovery_redo_undo () =
  let disk = Disk.in_memory ~page_size:256 in
  let log = Log_manager.create () in
  let pool =
    Buffer_pool.create ~capacity:16 ~disk ~wal_flush:(fun l -> Log_manager.flush log l) ()
  in
  let apply txn prev fr op =
    let lsn =
      Log_manager.append log ~prev ~txn
        (Log_record.Update { page = Page.id fr.Buffer_pool.page; op; lundo = None })
    in
    Pitree_wal.Page_op.redo fr.Buffer_pool.page op;
    Page.set_lsn fr.Buffer_pool.page lsn;
    Buffer_pool.mark_dirty fr;
    lsn
  in
  (* Winner txn 1 formats page 5 and inserts; loser txn 2 inserts into it
     but never commits. *)
  let fr = Buffer_pool.pin_new pool 5 in
  let b1 = Log_manager.append log ~prev:0 ~txn:1 (Log_record.Begin { kind = Log_record.User }) in
  let u1 = apply 1 b1 fr (Page_op.Format { kind = Page.Data; level = 0 }) in
  let u2 = apply 1 u1 fr (Page_op.Insert_slot { slot = 0; cell = "winner" }) in
  let c1 = Log_manager.append log ~prev:u2 ~txn:1 Log_record.Commit in
  ignore (Log_manager.append log ~prev:c1 ~txn:1 Log_record.End);
  let b2 = Log_manager.append log ~prev:0 ~txn:2 (Log_record.Begin { kind = Log_record.User }) in
  ignore (apply 2 b2 fr (Page_op.Insert_slot { slot = 1; cell = "loser" }));
  Buffer_pool.unpin pool fr;
  (* Crash with everything in the durable log but nothing flushed to disk. *)
  Log_manager.flush_all log;
  Buffer_pool.crash pool;
  let log = Log_manager.crash log in
  let pool2 =
    Buffer_pool.create ~capacity:16 ~disk ~wal_flush:(fun l -> Log_manager.flush log l) ()
  in
  let report = Recovery.run ~log ~pool:pool2 in
  Alcotest.(check (list int)) "loser identified" [ 2 ] report.Recovery.loser_txns;
  Alcotest.(check bool) "redo happened" true (report.Recovery.redone > 0);
  let fr = Buffer_pool.pin pool2 5 in
  Alcotest.(check int) "one cell" 1 (Page.slot_count fr.Buffer_pool.page);
  Alcotest.(check string) "winner survived" "winner" (Page.get fr.Buffer_pool.page 0);
  Buffer_pool.unpin pool2 fr

let test_recovery_idempotent () =
  (* Running recovery twice (double crash during restart) is harmless. *)
  let disk = Disk.in_memory ~page_size:256 in
  let log = Log_manager.create () in
  let pool =
    Buffer_pool.create ~capacity:16 ~disk ~wal_flush:(fun l -> Log_manager.flush log l) ()
  in
  let fr = Buffer_pool.pin_new pool 3 in
  let b = Log_manager.append log ~prev:0 ~txn:1 (Log_record.Begin { kind = Log_record.System }) in
  let u =
    Log_manager.append log ~prev:b ~txn:1
      (Log_record.Update
         { page = 3; op = Page_op.Format { kind = Page.Data; level = 0 }; lundo = None })
  in
  Pitree_wal.Page_op.redo fr.Buffer_pool.page (Page_op.Format { kind = Page.Data; level = 0 });
  Page.set_lsn fr.Buffer_pool.page u;
  Buffer_pool.mark_dirty fr;
  Buffer_pool.unpin pool fr;
  Log_manager.flush_all log;
  Buffer_pool.crash pool;
  let log = Log_manager.crash log in
  let pool2 =
    Buffer_pool.create ~capacity:16 ~disk ~wal_flush:(fun l -> Log_manager.flush log l) ()
  in
  let r1 = Recovery.run ~log ~pool:pool2 in
  Alcotest.(check (list int)) "system action rolled back" [ 1 ] r1.Recovery.loser_txns;
  (* Crash again mid-restart (after recovery's CLRs are durable). *)
  Buffer_pool.crash pool2;
  let log = Log_manager.crash log in
  let pool3 =
    Buffer_pool.create ~capacity:16 ~disk ~wal_flush:(fun l -> Log_manager.flush log l) ()
  in
  let r2 = Recovery.run ~log ~pool:pool3 in
  Alcotest.(check (list int)) "no losers second time" [] r2.Recovery.loser_txns

(* Property: encode/decode of random log records. *)
let prop_log_record_roundtrip =
  let open QCheck in
  let op_gen =
    Gen.(
      oneof
        [
          map2 (fun slot cell -> Page_op.Insert_slot { slot; cell }) small_nat string;
          map2 (fun slot cell -> Page_op.Delete_slot { slot; cell }) small_nat string;
          map2
            (fun o n -> Page_op.Set_side_ptr { old_ptr = o; new_ptr = n })
            small_nat small_nat;
          map (fun cells -> Page_op.Clear { cells }) (small_list string);
        ])
  in
  let record_gen =
    Gen.(
      map2
        (fun (lsn, prev, txn) (page, op) ->
          { Log_record.lsn; prev; txn; body = Log_record.Update { page; op; lundo = None } })
        (triple small_nat small_nat small_nat)
        (pair small_nat op_gen))
  in
  Test.make ~name:"log record roundtrip" ~count:300 (make record_gen) (fun r ->
      Log_record.decode (Log_record.encode r) = r)

let suites =
  [
    ( "wal.page_op",
      [
        Alcotest.test_case "codec" `Quick test_page_op_codec;
        Alcotest.test_case "invert involution" `Quick test_page_op_invert_involution;
        Alcotest.test_case "undo restores" `Quick test_page_op_undo_restores;
      ] );
    ( "wal.log_record",
      [
        Alcotest.test_case "codec" `Quick test_log_record_codec;
        Alcotest.test_case "crc detects corruption" `Quick test_log_record_crc;
        QCheck_alcotest.to_alcotest prop_log_record_roundtrip;
      ] );
    ( "wal.log_manager",
      [
        Alcotest.test_case "basics" `Quick test_log_manager_basics;
        Alcotest.test_case "crash truncates" `Quick test_log_crash_truncates;
        Alcotest.test_case "log truncation" `Quick test_truncation;
        Alcotest.test_case "truncation respects active txn" `Quick
          test_truncation_respects_active_txn;
        Alcotest.test_case "force counting" `Quick test_force_counting;
      ] );
    ( "wal.recovery",
      [
        Alcotest.test_case "redo + undo" `Quick test_recovery_redo_undo;
        Alcotest.test_case "idempotent restart" `Quick test_recovery_idempotent;
      ] );
  ]
