(* Integration tests for the B-link Pi-tree engine. *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Wellformed = Pitree_core.Wellformed
module Crash_point = Pitree_util.Crash_point

let small_cfg ?(page_oriented_undo = false) ?(consolidation = true) () =
  (* Tiny pages force deep trees and frequent structure changes. *)
  {
    Env.default_config with
    page_size = 256;
    pool_capacity = 4096;
    page_oriented_undo;
    consolidation;
  }

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "val%06d" i

let check_wf t =
  let report = Blink.verify t in
  if not (Wellformed.ok report) then
    Alcotest.failf "tree not well-formed: %a" Wellformed.pp_report report

let mk ?page_oriented_undo ?consolidation () =
  let env = Env.create (small_cfg ?page_oriented_undo ?consolidation ()) in
  (env, Blink.create env ~name:"t")

let test_empty () =
  let _, t = mk () in
  Alcotest.(check (option string)) "find on empty" None (Blink.find t "nope");
  Alcotest.(check int) "count" 0 (Blink.count t);
  check_wf t

let test_insert_find_one () =
  let _, t = mk () in
  Blink.insert t ~key:"a" ~value:"1";
  Alcotest.(check (option string)) "hit" (Some "1") (Blink.find t "a");
  Alcotest.(check (option string)) "miss" None (Blink.find t "b");
  check_wf t

let test_overwrite () =
  let _, t = mk () in
  Blink.insert t ~key:"a" ~value:"1";
  Blink.insert t ~key:"a" ~value:"22222";
  Alcotest.(check (option string)) "overwritten" (Some "22222") (Blink.find t "a");
  Alcotest.(check int) "still one record" 1 (Blink.count t)

let test_many_sequential () =
  let env, t = mk () in
  let n = 2000 in
  for i = 0 to n - 1 do
    Blink.insert t ~key:(key i) ~value:(value i)
  done;
  ignore (Env.drain env);
  check_wf t;
  Alcotest.(check int) "count" n (Blink.count t);
  Alcotest.(check bool) "tree actually grew" true (Blink.height t > 1);
  for i = 0 to n - 1 do
    match Blink.find t (key i) with
    | Some v when v = value i -> ()
    | Some v -> Alcotest.failf "wrong value for %s: %s" (key i) v
    | None -> Alcotest.failf "lost key %s" (key i)
  done;
  let s = Blink.stats t in
  Alcotest.(check bool) "splits happened" true (s.Blink.leaf_splits > 10);
  Alcotest.(check bool) "postings completed" true (s.Blink.postings_completed > 0)

let test_many_random () =
  Seeds.with_seed "blink.many-random" @@ fun seed ->
  let env, t = mk () in
  let rng = Pitree_util.Rng.create seed in
  let n = 2000 in
  let keys = Array.init n key in
  Pitree_util.Rng.shuffle rng keys;
  Array.iter (fun k -> Blink.insert t ~key:k ~value:("v" ^ k)) keys;
  ignore (Env.drain env);
  check_wf t;
  Alcotest.(check int) "count" n (Blink.count t);
  Array.iter
    (fun k ->
      match Blink.find t k with
      | Some v when v = "v" ^ k -> ()
      | _ -> Alcotest.failf "lost or wrong key %s" k)
    keys

let test_range () =
  let _, t = mk () in
  for i = 0 to 499 do
    Blink.insert t ~key:(key i) ~value:(value i)
  done;
  let collected =
    Blink.range t ~low:(key 100) ~high:(key 200) ~init:[] ~f:(fun acc k _ ->
        k :: acc)
  in
  let collected = List.rev collected in
  Alcotest.(check int) "100 keys" 100 (List.length collected);
  Alcotest.(check string) "first" (key 100) (List.hd collected);
  Alcotest.(check string) "last" (key 199) (List.nth collected 99);
  (* Sortedness *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> String.compare a b < 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted collected)

let test_delete () =
  let env, t = mk () in
  for i = 0 to 499 do
    Blink.insert t ~key:(key i) ~value:(value i)
  done;
  for i = 0 to 499 do
    if i mod 2 = 0 then
      Alcotest.(check bool) "deleted" true (Blink.delete t (key i))
  done;
  Alcotest.(check bool) "absent delete" false (Blink.delete t "nonexistent");
  ignore (Env.drain env);
  check_wf t;
  Alcotest.(check int) "half remain" 250 (Blink.count t);
  for i = 0 to 499 do
    let expect = if i mod 2 = 0 then None else Some (value i) in
    Alcotest.(check (option string)) (key i) expect (Blink.find t (key i))
  done

let test_delete_all_consolidates () =
  let env, t = mk ~consolidation:true () in
  let n = 1500 in
  for i = 0 to n - 1 do
    Blink.insert t ~key:(key i) ~value:(value i)
  done;
  ignore (Env.drain env);
  let nodes_full = Blink.node_count t in
  for i = 0 to n - 1 do
    ignore (Blink.delete t (key i))
  done;
  ignore (Env.drain env);
  (* Drain repeatedly: consolidations can cascade. *)
  for _ = 1 to 10 do
    ignore (Env.drain env)
  done;
  check_wf t;
  Alcotest.(check int) "empty" 0 (Blink.count t);
  let s = Blink.stats t in
  Alcotest.(check bool)
    (Printf.sprintf "consolidations ran (%d)" s.Blink.consolidations)
    true
    (s.Blink.consolidations > 0);
  Alcotest.(check bool)
    (Printf.sprintf "nodes reclaimed (%d -> %d)" nodes_full (Blink.node_count t))
    true
    (Blink.node_count t < nodes_full)

let test_cns_mode () =
  (* Consolidation disabled: deletes never merge nodes; tree stays
     well-formed; traversals hold one latch at a time. *)
  let env, t = mk ~consolidation:false () in
  for i = 0 to 999 do
    Blink.insert t ~key:(key i) ~value:(value i)
  done;
  for i = 0 to 999 do
    ignore (Blink.delete t (key i))
  done;
  ignore (Env.drain env);
  check_wf t;
  Alcotest.(check int) "empty" 0 (Blink.count t);
  Alcotest.(check int) "no consolidations" 0 (Blink.stats t).Blink.consolidations

let test_page_oriented_undo_mode () =
  let env, t = mk ~page_oriented_undo:true () in
  let n = 1200 in
  for i = 0 to n - 1 do
    Blink.insert t ~key:(key i) ~value:(value i)
  done;
  ignore (Env.drain env);
  check_wf t;
  Alcotest.(check int) "count" n (Blink.count t)

let test_explicit_txn_commit () =
  let env, t = mk () in
  let mgr = Env.txns env in
  let txn = Pitree_txn.Txn_mgr.begin_txn mgr Pitree_txn.Txn.User in
  Blink.insert ~txn t ~key:"a" ~value:"1";
  Blink.insert ~txn t ~key:"b" ~value:"2";
  Pitree_txn.Txn_mgr.commit mgr txn;
  Alcotest.(check (option string)) "a" (Some "1") (Blink.find t "a");
  Alcotest.(check (option string)) "b" (Some "2") (Blink.find t "b")

let test_explicit_txn_abort () =
  let env, t = mk () in
  let mgr = Env.txns env in
  Blink.insert t ~key:"keep" ~value:"1";
  let txn = Pitree_txn.Txn_mgr.begin_txn mgr Pitree_txn.Txn.User in
  Blink.insert ~txn t ~key:"gone" ~value:"2";
  Blink.insert ~txn t ~key:"keep" ~value:"overwritten";
  ignore (Blink.delete ~txn t "keep");
  Pitree_txn.Txn_mgr.abort mgr txn;
  Alcotest.(check (option string)) "rolled back insert" None (Blink.find t "gone");
  Alcotest.(check (option string)) "rolled back delete+overwrite" (Some "1")
    (Blink.find t "keep");
  check_wf t

let test_txn_abort_with_split () =
  (* A transaction whose inserts caused splits: abort undoes the records
     but the (independent) splits persist; tree stays well-formed. *)
  let env, t = mk () in
  let mgr = Env.txns env in
  let txn = Pitree_txn.Txn_mgr.begin_txn mgr Pitree_txn.Txn.User in
  for i = 0 to 300 do
    Blink.insert ~txn t ~key:(key i) ~value:(value i)
  done;
  Pitree_txn.Txn_mgr.abort mgr txn;
  ignore (Env.drain env);
  check_wf t;
  Alcotest.(check int) "all rolled back" 0 (Blink.count t);
  Alcotest.(check bool) "splits survived the abort" true
    ((Blink.stats t).Blink.leaf_splits > 0)

let test_lazy_posting_via_search () =
  (* Posting tasks dropped (simulating crash between atomic actions) are
     re-discovered by searches that traverse side pointers. *)
  let env, t = mk () in
  for i = 0 to 999 do
    Blink.insert t ~key:(key i) ~value:(value i)
  done;
  ignore (Env.drain env);
  let s0 = Blink.stats t in
  Alcotest.(check bool) "side traversals occurred" true (s0.Blink.side_traversals > 0);
  check_wf t

let test_olc_free_whitelist () =
  (* A latch-free descent can land on a page a merge already freed: the
     OLC transient whitelist must classify it as a restart (free-listed
     pages read kind [Free]), never decode free-list bytes as a node. *)
  let module Olc = Pitree_storage.Olc in
  let module Page = Pitree_storage.Page in
  let module Bp = Pitree_storage.Buffer_pool in
  let module Latch = Pitree_sync.Latch in
  let env, _t = mk () in
  let pid =
    Pitree_txn.Atomic_action.run (Env.txns env) (fun txn ->
        let fr = Env.alloc_page env txn ~kind:Page.Data ~level:0 in
        let pid = Page.id fr.Bp.page in
        Latch.acquire fr.Bp.latch Latch.X;
        Env.dealloc_page env txn fr;
        Latch.release fr.Bp.latch Latch.X;
        Bp.unpin (Env.pool env) fr;
        pid)
  in
  let fr = Bp.pin (Env.pool env) pid in
  Alcotest.(check bool) "kind reads Free" true (Page.kind fr.Bp.page = Page.Free);
  (match Olc.live fr.Bp.page with
  | () -> Alcotest.fail "Olc.live accepted a free page"
  | exception Olc.Restart -> ());
  Alcotest.(check bool) "Restart is transient" true (Olc.transient Olc.Restart);
  Bp.unpin (Env.pool env) fr

let test_olc_decoding_guard () =
  (* The transient whitelist admits only tagged exceptions: a bare
     Failure/Invalid_argument is a genuine invariant violation and must
     escape the restart ladder. Decode regions wrap themselves in
     [Olc.decoding], which re-checks the version word at the point of
     failure — stable bytes re-raise (real bug), torn bytes restart. *)
  let module Olc = Pitree_storage.Olc in
  let module Page = Pitree_storage.Page in
  let module Bp = Pitree_storage.Buffer_pool in
  let module Latch = Pitree_sync.Latch in
  Alcotest.(check bool) "Failure not transient" false
    (Olc.transient (Failure "bug"));
  Alcotest.(check bool) "Invalid_argument not transient" false
    (Olc.transient (Invalid_argument "index out of bounds"));
  let env, _t = mk () in
  let fr =
    Pitree_txn.Atomic_action.run (Env.txns env) (fun txn ->
        Env.alloc_page env txn ~kind:Page.Data ~level:0)
  in
  let v = Olc.snapshot fr in
  (* Stable bytes: the failure is real and must escape unchanged. *)
  (match Olc.decoding fr v (fun () -> failwith "bug") with
  | _ -> Alcotest.fail "decoding returned"
  | exception Failure m ->
      Alcotest.(check string) "failure escapes on stable bytes" "bug" m
  | exception Olc.Restart ->
      Alcotest.fail "decoding converted a real bug to Restart");
  (* Torn bytes (version word moved): the same failure is a restart. *)
  Latch.acquire fr.Bp.latch Latch.X;
  Latch.release fr.Bp.latch Latch.X;
  (match Olc.decoding fr v (fun () -> failwith "bug") with
  | _ -> Alcotest.fail "decoding returned"
  | exception Olc.Restart -> ()
  | exception Failure _ ->
      Alcotest.fail "decoding let a torn-state failure escape");
  (* A decode that succeeds passes its value through untouched. *)
  Alcotest.(check int) "pass-through" 7
    (Olc.decoding fr (Olc.snapshot fr) (fun () -> 7));
  Bp.unpin (Env.pool env) fr

let test_free_under_latchfree_scan () =
  (* Consolidations free leaves onto the env free list while other
     threads run latch-free scans and finds over the same tree: every
     descent that steps onto a freed page must restart (or fall back),
     never crash a reader or return garbage. *)
  let env, t = mk () in
  let n = 400 in
  for i = 0 to n - 1 do
    Blink.insert t ~key:(key i) ~value:(value i)
  done;
  ignore (Env.drain env);
  let stop = Atomic.make false in
  let failures = Atomic.make 0 in
  let reader () =
    try
      while not (Atomic.get stop) do
        ignore (Blink.range t ?low:None ?high:None ~init:0 ~f:(fun a _ _ -> a + 1));
        for i = 0 to 20 do
          ignore (Blink.find t (key (i * 17 mod n)))
        done
      done
    with _ -> Atomic.incr failures
  in
  let readers = List.init 3 (fun _ -> Thread.create reader ()) in
  (* Keep a survivor prefix; deleting the rest drains leaves below the
     consolidation threshold, and the auto-drained merges free them. *)
  for i = 20 to n - 1 do
    ignore (Blink.delete t (key i))
  done;
  ignore (Env.drain env);
  Atomic.set stop true;
  List.iter Thread.join readers;
  Alcotest.(check int) "no reader died" 0 (Atomic.get failures);
  Alcotest.(check bool) "leaves were freed under the scan storm" true
    ((Env.stats env).Env.pages_freed > 0);
  check_wf t;
  for i = 0 to 19 do
    Alcotest.(check (option string)) (key i) (Some (value i)) (Blink.find t (key i))
  done

let test_olc_scan_wider_than_pool () =
  (* An optimistic scan pins every leaf it visits until its final
     validation pass, so a scan wider than the pool must exhaust it,
     drop every pin, and fall back to the latched protocol — never
     leaking [Pool_exhausted] to the caller or pins to the pool. With
     one frame of headroom a single leaked pin per attempt would wedge
     the pool within a few iterations. *)
  let env =
    Env.create
      {
        (small_cfg ()) with
        Env.pool_capacity = 8;
        pool_shards = Some 1;
      }
  in
  let t = Blink.create env ~name:"t" in
  let n = 300 in
  for i = 0 to n - 1 do
    Blink.insert t ~key:(key i) ~value:(value i)
  done;
  ignore (Env.drain env);
  Alcotest.(check bool) "tree much wider than the pool" true
    ((Blink.stats t).Blink.leaf_splits > 16);
  for _ = 1 to 20 do
    Alcotest.(check int) "full scan correct at 1-frame headroom" n
      (Blink.count t)
  done;
  Alcotest.(check bool) "scans fell back to the latched path" true
    ((Blink.stats t).Blink.olc_fallbacks > 0);
  (* Point reads (two pins at a time) still succeed optimistically. *)
  let r0 = (Blink.stats t).Blink.olc_fallbacks in
  for i = 0 to n - 1 do
    Alcotest.(check (option string))
      (Printf.sprintf "find %d" i)
      (Some (value i))
      (Blink.find t (key i))
  done;
  Alcotest.(check int) "no fallbacks on point reads" r0
    (Blink.stats t).Blink.olc_fallbacks

let test_find_locked_repeatable () =
  let env, t = mk () in
  Blink.insert t ~key:"a" ~value:"1";
  let mgr = Env.txns env in
  let txn = Pitree_txn.Txn_mgr.begin_txn mgr Pitree_txn.Txn.User in
  Alcotest.(check (option string)) "read" (Some "1") (Blink.find ~txn t "a");
  (* S lock held: a concurrent writer would block; same-txn re-read works. *)
  Alcotest.(check (option string)) "re-read" (Some "1") (Blink.find ~txn t "a");
  Pitree_txn.Txn_mgr.commit mgr txn

let test_open_existing () =
  let env, t = mk () in
  Blink.insert t ~key:"a" ~value:"1";
  (match Blink.open_existing env ~name:"t" with
  | None -> Alcotest.fail "tree not found"
  | Some t2 ->
      Alcotest.(check int) "same root" (Blink.root t) (Blink.root t2);
      Alcotest.(check (option string)) "data visible" (Some "1") (Blink.find t2 "a"));
  Alcotest.(check bool) "missing tree" true
    (Blink.open_existing env ~name:"zzz" = None)

let test_large_values () =
  let _, t = mk () in
  (* Values close to the page capacity still work (one record per leaf). *)
  let big = String.make 120 'x' in
  for i = 0 to 49 do
    Blink.insert t ~key:(key i) ~value:big
  done;
  Alcotest.(check int) "count" 50 (Blink.count t);
  check_wf t

let test_binary_keys () =
  let _, t = mk () in
  let keys = [ "\x00"; "\x00\x00"; "\xff"; "a\x00b"; "" ] in
  List.iteri (fun i k -> Blink.insert t ~key:k ~value:(string_of_int i)) keys;
  List.iteri
    (fun i k ->
      Alcotest.(check (option string)) (String.escaped k) (Some (string_of_int i))
        (Blink.find t k))
    keys;
  check_wf t

(* Property: after an arbitrary interleaving of inserts and deletes, the
   tree contents match a reference map and the tree is well-formed. *)
let prop_tree_matches_model =
  let open QCheck in
  let op_gen =
    Gen.(
      frequency
        [
          (5, map2 (fun k v -> `Insert (k, v)) (int_bound 400) small_nat);
          (3, map (fun k -> `Delete k) (int_bound 400));
        ])
  in
  Test.make ~name:"blink matches model map" ~count:30
    (make Gen.(list_size (int_range 50 400) op_gen))
    (fun ops ->
      let env, t = mk () in
      let model : (string, string) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun op ->
          match op with
          | `Insert (k, v) ->
              let k = key k and v = string_of_int v in
              Blink.insert t ~key:k ~value:v;
              Hashtbl.replace model k v
          | `Delete k ->
              let k = key k in
              let existed_model = Hashtbl.mem model k in
              let existed_tree = Blink.delete t k in
              if existed_model <> existed_tree then
                Test.fail_reportf "delete disagreement on %s" k;
              Hashtbl.remove model k)
        ops;
      ignore (Env.drain env);
      if not (Wellformed.ok (Blink.verify t)) then Test.fail_report "not well-formed";
      Hashtbl.iter
        (fun k v ->
          match Blink.find t k with
          | Some v' when v' = v -> ()
          | _ -> Test.fail_reportf "mismatch on %s" k)
        model;
      Blink.count t = Hashtbl.length model)

let suites =
  [
    ( "blink.basic",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "insert/find one" `Quick test_insert_find_one;
        Alcotest.test_case "overwrite" `Quick test_overwrite;
        Alcotest.test_case "many sequential" `Quick test_many_sequential;
        Alcotest.test_case "many random" `Quick test_many_random;
        Alcotest.test_case "range" `Quick test_range;
        Alcotest.test_case "large values" `Quick test_large_values;
        Alcotest.test_case "binary keys" `Quick test_binary_keys;
        Alcotest.test_case "open existing" `Quick test_open_existing;
      ] );
    ( "blink.delete",
      [
        Alcotest.test_case "delete half" `Quick test_delete;
        Alcotest.test_case "delete all consolidates" `Quick
          test_delete_all_consolidates;
        Alcotest.test_case "CNS mode" `Quick test_cns_mode;
      ] );
    ( "blink.txn",
      [
        Alcotest.test_case "commit" `Quick test_explicit_txn_commit;
        Alcotest.test_case "abort" `Quick test_explicit_txn_abort;
        Alcotest.test_case "abort with splits" `Quick test_txn_abort_with_split;
        Alcotest.test_case "find ~txn" `Quick test_find_locked_repeatable;
        Alcotest.test_case "page-oriented undo mode" `Quick
          test_page_oriented_undo_mode;
      ] );
    ( "blink.protocol",
      [
        Alcotest.test_case "lazy posting via search" `Quick
          test_lazy_posting_via_search;
        Alcotest.test_case "olc free-page whitelist" `Quick
          test_olc_free_whitelist;
        Alcotest.test_case "olc decoding guard" `Quick test_olc_decoding_guard;
        Alcotest.test_case "free leaf under latch-free scan" `Quick
          test_free_under_latchfree_scan;
        Alcotest.test_case "olc scan wider than pool" `Quick
          test_olc_scan_wider_than_pool;
        QCheck_alcotest.to_alcotest prop_tree_matches_model;
      ] );
  ]
