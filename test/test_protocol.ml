(* Deeper protocol tests: the section 4.2/5.x machinery under adversarial
   schedules — in-transaction splits, deferred postings, latch ordering,
   eviction pressure, checkpoints, and randomized crash fuzzing. *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Wellformed = Pitree_core.Wellformed
module Latch_order = Pitree_sync.Latch_order
module Lock_manager = Pitree_lock.Lock_manager
module Lock_mode = Pitree_lock.Lock_mode
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Crash_point = Pitree_util.Crash_point
module Log_manager = Pitree_wal.Log_manager
module Rng = Pitree_util.Rng

let cfg ?(page_size = 256) ?(pool = 4096) ?(page_oriented_undo = false)
    ?(consolidation = true) () =
  { Env.default_config with page_size; pool_capacity = pool; page_oriented_undo; consolidation }

let key i = Printf.sprintf "key%06d" i

let check_wf t =
  let report = Blink.verify t in
  if not (Wellformed.ok report) then
    Alcotest.failf "not well-formed: %a" Wellformed.pp_report report

(* The in-transaction split path (section 4.2.1): a transaction that has
   already updated records in a node and then overflows it must split
   INSIDE the transaction; abort undoes the split; the index term is never
   posted. *)
let test_in_txn_split_abort () =
  let env = Env.create (cfg ~page_oriented_undo:true ()) in
  let t = Blink.create env ~name:"t" in
  let mgr = Env.txns env in
  let txn = Txn_mgr.begin_txn mgr Txn.User in
  (* All updates from one txn into one leaf until it must split. *)
  let i = ref 0 in
  let s0 = Blink.stats t in
  while (Blink.stats t).Blink.leaf_splits + (Blink.stats t).Blink.root_splits
        = s0.Blink.leaf_splits + s0.Blink.root_splits do
    Blink.insert ~txn t ~key:(key !i) ~value:(String.make 24 'v');
    incr i
  done;
  (* The split happened inside the txn (it had updated this node). *)
  Txn_mgr.abort mgr txn;
  ignore (Env.drain env);
  check_wf t;
  Alcotest.(check int) "everything rolled back" 0 (Blink.count t);
  Alcotest.(check int) "no posting for the undone split" 0
    (Blink.pending_postings t)

let test_in_txn_split_commit_defers_posting () =
  let env = Env.create (cfg ~page_oriented_undo:true ()) in
  let t = Blink.create env ~name:"t" in
  let mgr = Env.txns env in
  let txn = Txn_mgr.begin_txn mgr Txn.User in
  (* Force height >= 2 first so splits post (root growth posts nothing). *)
  Txn_mgr.commit mgr txn;
  for i = 0 to 199 do
    Blink.insert t ~key:(key i) ~value:(String.make 24 'v')
  done;
  ignore (Env.drain env);
  let txn = Txn_mgr.begin_txn mgr Txn.User in
  let base = 1_000 in
  let i = ref 0 in
  let target = (Blink.stats t).Blink.leaf_splits + 1 in
  while (Blink.stats t).Blink.leaf_splits < target do
    Blink.insert ~txn t ~key:(key (base + !i)) ~value:(String.make 24 'w');
    incr i
  done;
  (* The split of a node this txn updated ran in-transaction: its posting
     must not be scheduled before commit (section 4.2.2). *)
  let pending_before = Blink.pending_postings t in
  Txn_mgr.commit mgr txn;
  let pending_after = Blink.pending_postings t in
  Alcotest.(check bool)
    (Printf.sprintf "posting deferred to commit (%d -> %d)" pending_before
       pending_after)
    true
    (pending_after >= pending_before);
  ignore (Env.drain env);
  check_wf t

let test_latch_order_clean () =
  (* The engine's own traversals must never violate the section 4.1.1
     latch order (parents before children, space map last). *)
  Latch_order.reset ();
  Latch_order.enable true;
  let env = Env.create (cfg ()) in
  let t = Blink.create env ~name:"t" in
  for i = 0 to 1_499 do
    Blink.insert t ~key:(key i) ~value:"v"
  done;
  for i = 0 to 1_499 do
    if i mod 3 = 0 then ignore (Blink.delete t (key i))
  done;
  ignore (Env.drain env);
  for _ = 1 to 10 do
    ignore (Env.drain env)
  done;
  Latch_order.enable false;
  Alcotest.(check int) "no latch-order violations" 0 (Latch_order.violations ());
  Latch_order.reset ();
  check_wf t

let test_eviction_pressure () =
  (* A pool far smaller than the tree: every operation faults pages in and
     out; the WAL barrier and pin discipline must hold. *)
  let env = Env.create (cfg ~page_size:256 ~pool:16 ()) in
  let t = Blink.create env ~name:"t" in
  let n = 2_000 in
  for i = 0 to n - 1 do
    Blink.insert t ~key:(key i) ~value:(Printf.sprintf "val%06d" i)
  done;
  ignore (Env.drain env);
  check_wf t;
  for i = 0 to n - 1 do
    match Blink.find t (key i) with
    | Some v when v = Printf.sprintf "val%06d" i -> ()
    | _ -> Alcotest.failf "lost %s under eviction pressure" (key i)
  done;
  let stats = Pitree_storage.Buffer_pool.stats (Env.pool env) in
  Alcotest.(check bool) "evictions actually happened" true
    (stats.Pitree_storage.Buffer_pool.evictions > 100)

let test_eviction_then_crash () =
  (* With heavy eviction many pages are already on disk at crash time; redo
     must skip them (page LSN test) and still converge. *)
  let env = Env.create (cfg ~page_size:256 ~pool:16 ()) in
  let t = Blink.create env ~name:"t" in
  for i = 0 to 999 do
    Blink.insert t ~key:(key i) ~value:"v"
  done;
  Env.crash env;
  let report = Env.recover env in
  Alcotest.(check bool) "some redo skipped (pages already current)" true
    (report.Pitree_wal.Recovery.skipped > 0);
  let t = Option.get (Blink.open_existing env ~name:"t") in
  check_wf t;
  Alcotest.(check int) "all data" 1000 (Blink.count t);
  ignore t

let test_checkpoint_then_crash () =
  let env = Env.create (cfg ()) in
  let t = Blink.create env ~name:"t" in
  for i = 0 to 499 do
    Blink.insert t ~key:(key i) ~value:"v"
  done;
  Env.checkpoint env;
  for i = 500 to 999 do
    Blink.insert t ~key:(key i) ~value:"v"
  done;
  Env.crash env;
  let report = Env.recover env in
  (* Analysis starts at the checkpoint, not at LSN 1. *)
  let full_log = Log_manager.last_lsn (Env.log env) in
  Alcotest.(check bool)
    (Printf.sprintf "bounded analysis (%d < %d)" report.Pitree_wal.Recovery.analyzed full_log)
    true
    (report.Pitree_wal.Recovery.analyzed < full_log);
  let t = Option.get (Blink.open_existing env ~name:"t") in
  check_wf t;
  Alcotest.(check int) "all data" 1000 (Blink.count t)

let test_posting_completion_idempotent () =
  (* Force the same completion to be discovered many times: searches during
     the pending window re-schedule at most one task, and the action itself
     re-tests (noop when already posted). *)
  let env = Env.create (cfg ()) in
  let t = Blink.create env ~name:"t" in
  let mgr = Env.txns env in
  let txn = Txn_mgr.begin_txn mgr Txn.User in
  for i = 0 to 599 do
    Blink.insert ~txn t ~key:(key i) ~value:"v"
  done;
  Txn_mgr.commit mgr txn;
  (* Postings pending; run a wave of searches (each would re-discover) then
     drain once. *)
  Blink.reset_stats t;
  for _ = 1 to 3 do
    for i = 0 to 599 do
      if i mod 7 = 0 then ignore (Blink.find t (key i))
    done
  done;
  ignore (Env.drain env);
  ignore (Env.drain env);
  let s = Blink.stats t in
  check_wf t;
  Alcotest.(check bool)
    (Printf.sprintf "noop re-tests bounded (completed=%d noop=%d)"
       s.Blink.postings_completed s.Blink.postings_noop)
    true
    (s.Blink.postings_noop <= s.Blink.postings_completed + s.Blink.postings_scheduled + 600)

let test_no_wait_rule_backoff () =
  (* A reader-writer lock conflict on a record must trigger the no-wait
     backoff (release latch, blocking acquire, re-descend), not a hang. *)
  let env = Env.create (cfg ()) in
  let t = Blink.create env ~name:"t" in
  Blink.insert t ~key:"a" ~value:"1";
  let mgr = Env.txns env in
  let t1 = Txn_mgr.begin_txn mgr Txn.User in
  (* t1 holds an X record lock on "a". *)
  Blink.insert ~txn:t1 t ~key:"a" ~value:"2";
  let finished = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        (* autocommit writer must wait for t1's lock, without deadlock. *)
        Blink.insert t ~key:"a" ~value:"3";
        Atomic.set finished true)
  in
  Thread.delay 0.03;
  Alcotest.(check bool) "writer blocked on lock" false (Atomic.get finished);
  Txn_mgr.commit mgr t1;
  Domain.join d;
  Alcotest.(check bool) "writer finished after commit" true (Atomic.get finished);
  Alcotest.(check (option string)) "last write wins" (Some "3") (Blink.find t "a");
  Alcotest.(check bool) "backoff counted" true
    ((Blink.stats t).Blink.lock_restarts >= 1)

(* Randomized crash fuzz: arbitrary crash point, arbitrary arming count,
   random committed prefix — after recovery the tree is well-formed and
   every auto-committed key is present. *)
let prop_crash_fuzz =
  let open QCheck in
  let points =
    [|
      "blink.split.linked"; "blink.split.committed"; "blink.root.grown";
      "blink.post.latched"; "blink.post.updated"; "blink.post.done";
      "blink.consolidate.linked";
    |]
  in
  Test.make ~name:"randomized crash fuzz" ~count:25
    (make Gen.(triple (int_bound 6) (int_bound 8) (int_range 200 700)))
    (fun (pi, after, n) ->
      Crash_point.disarm_all ();
      let env = Env.create (cfg ()) in
      let t = Blink.create env ~name:"t" in
      let committed = Hashtbl.create 64 in
      Crash_point.arm points.(pi) ~after;
      (try
         for i = 0 to n - 1 do
           (* Model bookkeeping is ordered so that a crash landing inside
              an operation can only leave the TREE ahead of the model,
              never behind: inserts update the model after the fact,
              deletes before. *)
           Blink.insert t ~key:(key i) ~value:(Printf.sprintf "v%d" i);
           Hashtbl.replace committed (key i) (Printf.sprintf "v%d" i);
           if i mod 3 = 0 then begin
             Hashtbl.remove committed (key (i / 2));
             ignore (Blink.delete t (key (i / 2)))
           end
         done
       with Crash_point.Crash_requested _ -> ());
      Crash_point.disarm_all ();
      Env.crash env;
      ignore (Env.recover env);
      let t = Option.get (Blink.open_existing env ~name:"t") in
      if not (Wellformed.ok (Blink.verify t)) then
        Test.fail_report "not well-formed after fuzzed crash";
      Hashtbl.iter
        (fun k v ->
          match Blink.find t k with
          | Some v' when v' = v -> ()
          | _ -> Test.fail_reportf "lost committed %s" k)
        committed;
      true)

let suites =
  [
    ( "protocol.txn-splits",
      [
        Alcotest.test_case "in-txn split + abort" `Quick test_in_txn_split_abort;
        Alcotest.test_case "in-txn split defers posting" `Quick
          test_in_txn_split_commit_defers_posting;
      ] );
    ( "protocol.invariants",
      [
        Alcotest.test_case "latch order clean" `Quick test_latch_order_clean;
        Alcotest.test_case "posting idempotent" `Quick
          test_posting_completion_idempotent;
        Alcotest.test_case "no-wait rule backoff" `Slow test_no_wait_rule_backoff;
      ] );
    ( "protocol.storage",
      [
        Alcotest.test_case "eviction pressure" `Quick test_eviction_pressure;
        Alcotest.test_case "eviction then crash" `Quick test_eviction_then_crash;
        Alcotest.test_case "checkpoint then crash" `Quick test_checkpoint_then_crash;
      ] );
    ( "protocol.fuzz", [ QCheck_alcotest.to_alcotest prop_crash_fuzz ] );
  ]
