(* Differential fuzz: the three engines against a flat in-memory model,
   sharing one environment, with a simulated crash + recovery mid-stream.
   Every operation autocommits, so each call that returned before the crash
   must survive it. Failures print the (seed, op count) pair that replays
   them; PITREE_SEED reseeds the whole run. *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Tsb = Pitree_tsb.Tsb
module Hb = Pitree_hb.Hb
module Wellformed = Pitree_core.Wellformed
module Rng = Pitree_util.Rng

let cfg =
  {
    Env.default_config with
    page_size = 256;
    pool_capacity = 8192;
    page_oriented_undo = false;
    consolidation = true;
  }

let key i = Printf.sprintf "k%03d" i

(* hB points mirror the key index, so the model can stay string-keyed. *)
let point i = [| float_of_int i; float_of_int ((i * 7) mod 64) |]

type trees = { blink : Blink.t; tsb : Tsb.t; hb : Hb.t }

let attach_all env =
  match
    ( Blink.open_existing env ~name:"fb",
      Tsb.open_existing env ~name:"ft",
      Hb.open_existing env ~name:"fh" )
  with
  | Some blink, Some tsb, Some hb -> { blink; tsb; hb }
  | _ -> Alcotest.fail "a tree vanished from the catalog after recovery"

let check_wf what report =
  if not (Wellformed.ok report) then
    Alcotest.failf "%s not well-formed: %a" what Wellformed.pp_report report

(* One random op applied to one engine and its model, results compared. *)
let step rng trees models op_no ~fail =
  let engine = Rng.int rng 3 in
  let model = models.(engine) in
  let i = Rng.int rng 120 in
  let k = key i in
  let die msg = fail op_no msg in
  match Rng.int rng 100 with
  | r when r < 55 ->
      (* put, with growing values to exercise overwrite splits; sized so
         two versions of a key fit in one tsb node (the engine's record
         limit at this page size) *)
      let v = Printf.sprintf "v%d.%s" op_no (String.make (Rng.int rng 40) 'y') in
      (match engine with
      | 0 -> Blink.insert trees.blink ~key:k ~value:v
      | 1 -> ignore (Tsb.put trees.tsb ~key:k ~value:v)
      | _ -> Hb.insert trees.hb ~point:(point i) ~value:v);
      Hashtbl.replace model k v
  | r when r < 80 -> (
      let expect = Hashtbl.find_opt model k in
      let got =
        match engine with
        | 0 -> Blink.find trees.blink k
        | 1 -> Tsb.get trees.tsb k
        | _ -> Hb.find trees.hb (point i)
      in
      if got <> expect then
        die
          (Printf.sprintf "engine %d: get %s = %S, model says %S" engine k
             (Option.value got ~default:"<none>")
             (Option.value expect ~default:"<none>")))
  | _ -> (
      let expect = Hashtbl.mem model k in
      Hashtbl.remove model k;
      match engine with
      | 0 ->
          let got = Blink.delete trees.blink k in
          if got <> expect then
            die
              (Printf.sprintf "blink: delete %s = %b, model says %b" k got
                 expect)
      | 1 -> ignore (Tsb.remove trees.tsb k)
      | _ ->
          let got = Hb.delete trees.hb (point i) in
          if got <> expect then
            die
              (Printf.sprintf "hb: delete %s = %b, model says %b" k got expect))

let final_check trees models =
  check_wf "blink" (Blink.verify trees.blink);
  check_wf "tsb" (Tsb.verify trees.tsb);
  check_wf "hb" (Hb.verify trees.hb);
  Hashtbl.iter
    (fun k v ->
      if Blink.find trees.blink k <> Some v then
        Alcotest.failf "blink lost %s" k)
    models.(0);
  Hashtbl.iter
    (fun k v ->
      if Tsb.get trees.tsb k <> Some v then Alcotest.failf "tsb lost %s" k)
    models.(1);
  Hashtbl.iter
    (fun k v ->
      let i = int_of_string (String.sub k 1 (String.length k - 1)) in
      if Hb.find trees.hb (point i) <> Some v then
        Alcotest.failf "hb lost %s" k)
    models.(2);
  (* blink's range scan must agree with the whole model, in order *)
  let want =
    List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) models.(0) [])
  in
  let got =
    List.rev
      (Blink.range trees.blink ?low:None ?high:None ~init:[]
         ~f:(fun acc k v -> (k, v) :: acc))
  in
  if got <> want then
    Alcotest.failf "blink range scan disagrees with model (%d vs %d entries)"
      (List.length got) (List.length want)

let test_differential_fuzz () =
  let name = "fuzz.differential" in
  let seed = Seeds.derive name in
  let ops = 900 in
  let fail op_no msg =
    Alcotest.failf "%s (replay: seed=%Ld op=%d; PITREE_SEED=%Ld)" msg seed
      op_no Seeds.base
  in
  Seeds.guard name @@ fun () ->
  let rng = Rng.create seed in
  let env = Env.create cfg in
  Fun.protect ~finally:(fun () -> try Env.close env with _ -> ())
  @@ fun () ->
  let trees =
    {
      blink = Blink.create env ~name:"fb";
      tsb = Tsb.create env ~name:"ft";
      hb = Hb.create env ~name:"fh" ~dims:2;
    }
  in
  let models = Array.init 3 (fun _ -> Hashtbl.create 256) in
  let trees = ref trees in
  let crash_at = (ops / 2) + Rng.int rng (ops / 4) in
  for op_no = 1 to ops do
    step rng !trees models op_no ~fail;
    if op_no = crash_at then begin
      ignore (Env.drain env);
      Env.crash env;
      ignore (Env.recover env);
      trees := attach_all env;
      (* everything that committed before the crash must have survived *)
      final_check !trees models
    end
  done;
  ignore (Env.drain env);
  final_check !trees models

(* Merge-heavy round: saturate all three engines, then alternate waves of
   contiguous deletes — emptying whole leaves, so consolidation, index-term
   removal and free-list pushes run constantly — with re-insert waves that
   pull pages back off the free list, crashing mid-stream. Each engine must
   recover every committed survivor and stay well-formed while pages cycle
   through the free list; tsb additionally runs gc pulses so history drains
   and empty-leaf merges happen between waves. *)
let test_merge_heavy_fuzz () =
  let name = "fuzz.merge_heavy" in
  let seed = Seeds.derive name in
  Seeds.guard name @@ fun () ->
  let rng = Rng.create seed in
  let env = Env.create cfg in
  Fun.protect ~finally:(fun () -> try Env.close env with _ -> ())
  @@ fun () ->
  let trees =
    ref
      {
        blink = Blink.create env ~name:"fb";
        tsb = Tsb.create env ~name:"ft";
        hb = Hb.create env ~name:"fh" ~dims:2;
      }
  in
  let models = Array.init 3 (fun _ -> Hashtbl.create 256) in
  let put engine i v =
    let k = key i in
    (match engine with
    | 0 -> Blink.insert !trees.blink ~key:k ~value:v
    | 1 -> ignore (Tsb.put !trees.tsb ~key:k ~value:v)
    | _ -> Hb.insert !trees.hb ~point:(point i) ~value:v);
    Hashtbl.replace models.(engine) k v
  in
  let del engine i =
    let k = key i in
    (match engine with
    | 0 -> ignore (Blink.delete !trees.blink k : bool)
    | 1 -> ignore (Tsb.remove !trees.tsb k)
    | _ -> ignore (Hb.delete !trees.hb (point i) : bool));
    Hashtbl.remove models.(engine) k
  in
  (* dense preload so band deletes hit populated leaves *)
  for engine = 0 to 2 do
    for i = 0 to 119 do
      put engine i (Printf.sprintf "seed%d.%d" engine i)
    done
  done;
  for wave = 1 to 8 do
    (* a contiguous band of deletes empties whole leaves in every engine *)
    let b = Rng.int rng 90 in
    for engine = 0 to 2 do
      for i = b to b + 29 do
        del engine i
      done
    done;
    (* tsb: expire everything and collect — drains history chains and
       merges the leaves the band just emptied *)
    Tsb.set_horizon !trees.tsb (Tsb.now !trees.tsb);
    ignore (Tsb.gc !trees.tsb : int);
    (* re-inserts pull freed pages back into service *)
    for _ = 1 to 25 do
      let engine = Rng.int rng 3 in
      let i = Rng.int rng 120 in
      put engine i (Printf.sprintf "w%d.%s" wave (String.make (Rng.int rng 40) 'z'))
    done;
    if wave = 4 then begin
      ignore (Env.drain env);
      Env.crash env;
      ignore (Env.recover env);
      trees := attach_all env;
      (* everything that committed before the crash must have survived *)
      final_check !trees models
    end
  done;
  ignore (Env.drain env);
  final_check !trees models;
  (* the churn must really have cycled pages through the free list *)
  let s = Env.stats env in
  if s.Env.pages_freed = 0 then Alcotest.fail "no pages were freed";
  if s.Env.pages_reused = 0 then Alcotest.fail "no freed pages were re-used"

(* Differential MVCC round: truly concurrent snapshot-isolation
   transactions (4 domains) against the sequential multi-version model
   the SI oracle replays — every read must match the latest version
   committed at or before its snapshot, every committed write-write
   overlap must have aborted, and a crash+recover between the two phases
   must preserve the visibility of every committed version at its exact
   commit timestamp while in-flight snapshots abort cleanly. *)
let test_mvcc_differential_fuzz () =
  let module Mvcc = Pitree_txn.Mvcc in
  let module Tsb_engine = Pitree_tsb.Tsb_engine in
  let module Si_oracle = Pitree_sim.Si_oracle in
  let name = "fuzz.mvcc" in
  let seed = Seeds.derive name in
  Seeds.guard name @@ fun () ->
  let env = Env.create { cfg with Env.consolidation = false; si_txns = true } in
  Fun.protect ~finally:(fun () -> try Env.close env with _ -> ())
  @@ fun () ->
  let t = ref (Tsb.create env ~name:"fm") in
  let keys = 24 in
  let init =
    List.init keys (fun i ->
        let k = key i and v = Printf.sprintf "init.%d" i in
        (k, v, Tsb.put !t ~key:k ~value:v))
  in
  ignore (Env.drain env);
  let domains = 4 and txns_per = 50 in
  (* One domain's phase: run [txns_per] SI transactions, recording what
     each observed for the oracle. *)
  let work phase d () =
    let rng = Rng.create (Int64.add seed (Int64.of_int ((phase * 101) + d))) in
    let mgr = Env.txns env in
    let t = !t in
    let recorded = ref [] in
    for _ = 1 to txns_per do
      let txn = Mvcc.begin_snapshot mgr in
      let read_ts =
        match Mvcc.si_of txn with
        | Some si -> si.Pitree_txn.Txn.read_ts
        | None -> assert false
      in
      let ops =
        List.init
          (1 + Rng.int rng 3)
          (fun _ ->
            let k = key (Rng.int rng keys) in
            match Rng.int rng 100 with
            | r when r < 40 ->
                let v = Printf.sprintf "p%d.d%d.%d" phase d (Rng.int rng 1000) in
                Tsb_engine.insert ~txn t ~key:k ~value:v;
                Si_oracle.Write (k, Some v)
            | r when r < 85 -> Si_oracle.Read (k, Tsb_engine.find ~txn t k)
            | _ ->
                if Tsb_engine.delete ~txn t k then Si_oracle.Write (k, None)
                else Si_oracle.Read (k, None))
      in
      let outcome =
        match Mvcc.commit mgr txn with
        | Some ts -> Si_oracle.Committed ts
        | None -> Si_oracle.Committed read_ts (* read-only, empty write set *)
        | exception Mvcc.Write_conflict _ -> Si_oracle.Aborted
      in
      recorded := { Si_oracle.fiber = d; read_ts; ops; outcome } :: !recorded
    done;
    !recorded
  in
  let run_phase phase =
    List.init domains (fun d -> Domain.spawn (work phase d))
    |> List.concat_map Domain.join
  in
  let judge what txns =
    match Si_oracle.check ~init txns with
    | Si_oracle.Ok -> ()
    | Si_oracle.Violation m ->
        Alcotest.failf "%s: %s (PITREE_SEED=%Ld)" what m Seeds.base
  in
  let phase1 = run_phase 1 in
  judge "phase 1" phase1;
  (* A snapshot in flight across the crash must abort, never misread. *)
  let straddler = Mvcc.begin_snapshot (Env.txns env) in
  ignore (Env.drain env);
  Env.crash env;
  ignore (Env.recover env);
  t := (match Tsb.open_existing env ~name:"fm" with
       | Some t -> t
       | None -> Alcotest.fail "tsb tree vanished after recovery");
  (match Tsb_engine.find ~txn:straddler !t (key 0) with
  | _ -> Alcotest.fail "straddling snapshot served a read after recovery"
  | exception Mvcc.Stale_snapshot -> ());
  (* Every committed version must still be visible at its exact commit
     timestamp — commit order and version stamps survived the crash. *)
  let committed_writes txns =
    List.concat_map
      (fun tx ->
        match tx.Si_oracle.outcome with
        | Si_oracle.Aborted -> []
        | Si_oracle.Committed ts ->
            let final = Hashtbl.create 4 in
            List.iter
              (function
                | Si_oracle.Write (k, v) -> Hashtbl.replace final k v
                | Si_oracle.Read _ -> ())
              tx.Si_oracle.ops;
            Hashtbl.fold (fun k v acc -> (k, v, ts) :: acc) final [])
      txns
  in
  List.iter
    (fun (k, v, ts) ->
      let got = Tsb.get_asof !t k ~time:ts in
      if got <> v then
        Alcotest.failf
          "version %s@%d lost across crash: got %s, committed %s \
           (PITREE_SEED=%Ld)"
          k ts
          (Option.value got ~default:"<none>")
          (Option.value v ~default:"<none>")
          Seeds.base)
    (committed_writes phase1);
  (* Phase 2 continues against the recovered allocator; the combined
     history must still replay as one SI history (timestamps never
     collide or regress across the crash). *)
  let phase2 = run_phase 2 in
  judge "phase 1 + recovery + phase 2" (phase1 @ phase2);
  let all_ts =
    List.filter_map
      (fun tx ->
        match tx.Si_oracle.outcome with
        | Si_oracle.Committed ts
          when List.exists
                 (function Si_oracle.Write _ -> true | _ -> false)
                 tx.Si_oracle.ops ->
            Some ts
        | _ -> None)
      (phase1 @ phase2)
  in
  Alcotest.(check int)
    "commit timestamps unique across crash"
    (List.length all_ts)
    (List.length (List.sort_uniq compare all_ts));
  check_wf "tsb" (Tsb.verify !t)

(* Regression: a version too large for its tsb node used to send
   [split_current] into a restart loop (each futile time split leaking a
   history node) before dying with "too many restarts". It must now fail
   fast with [Page_full] and leave the tree well-formed and usable. *)
let test_tsb_oversized_record_fails_fast () =
  let env = Env.create cfg in
  Fun.protect ~finally:(fun () -> try Env.close env with _ -> ())
  @@ fun () ->
  let t = Tsb.create env ~name:"big" in
  let big = String.make 90 'y' in
  (match
     for i = 1 to 12 do
       ignore (Tsb.put t ~key:"k" ~value:(Printf.sprintf "%d%s" i big))
     done
   with
  | () -> Alcotest.fail "oversized versions accepted"
  | exception Pitree_storage.Page.Page_full -> ());
  (* the failed put aborted cleanly; the tree still works *)
  ignore (Tsb.put t ~key:"k2" ~value:"small");
  Alcotest.(check (option string)) "tree usable" (Some "small")
    (Tsb.get t "k2");
  check_wf "tsb" (Tsb.verify t)

let suites =
  [
    ( "fuzz",
      [
        Alcotest.test_case "differential (blink+tsb+hb, crash mid-stream)"
          `Slow test_differential_fuzz;
        Alcotest.test_case "merge-heavy (band deletes, gc, crash mid-stream)"
          `Slow test_merge_heavy_fuzz;
        Alcotest.test_case
          "mvcc differential (concurrent SI vs model, crash mid-stream)" `Slow
          test_mvcc_differential_fuzz;
        Alcotest.test_case "tsb oversized record fails fast" `Quick
          test_tsb_oversized_record_fails_fast;
      ] );
  ]
