(* Unit tests for pitree.txn: transactions, atomic actions, relative
   durability (section 4.3.1), crash points. *)

module Page = Pitree_storage.Page
module Disk = Pitree_storage.Disk
module Buffer_pool = Pitree_storage.Buffer_pool
module Log_manager = Pitree_wal.Log_manager
module Log_record = Pitree_wal.Log_record
module Page_op = Pitree_wal.Page_op
module Lock_manager = Pitree_lock.Lock_manager
module Lock_mode = Pitree_lock.Lock_mode
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Atomic_action = Pitree_txn.Atomic_action
module Crash_point = Pitree_util.Crash_point

let setup () =
  let disk = Disk.in_memory ~page_size:256 in
  let log = Log_manager.create () in
  let pool =
    Buffer_pool.create ~capacity:32 ~disk ~wal_flush:(fun l -> Log_manager.flush log l) ()
  in
  let locks = Lock_manager.create () in
  (log, pool, Txn_mgr.create ~log ~pool ~locks ())

let fresh_page mgr txn pool pid =
  let fr = Buffer_pool.pin_new pool pid in
  ignore (Txn_mgr.update mgr txn fr (Page_op.Format { kind = Page.Data; level = 0 }));
  fr

let test_commit_forces_user_log () =
  let log, pool, mgr = setup () in
  let txn = Txn_mgr.begin_txn mgr Txn.User in
  let fr = fresh_page mgr txn pool 5 in
  ignore (Txn_mgr.update mgr txn fr (Page_op.Insert_slot { slot = 0; cell = "x" }));
  Buffer_pool.unpin pool fr;
  Alcotest.(check int) "nothing durable before commit" 0 (Log_manager.flushed_lsn log);
  Txn_mgr.commit mgr txn;
  Alcotest.(check bool) "user commit forced the log" true
    (Log_manager.flushed_lsn log >= 3)

let test_system_commit_not_forced () =
  (* Relative durability: atomic-action commits do not force. *)
  let log, pool, mgr = setup () in
  let txn = Txn_mgr.begin_txn mgr Txn.System in
  let fr = fresh_page mgr txn pool 5 in
  Buffer_pool.unpin pool fr;
  Txn_mgr.commit mgr txn;
  Alcotest.(check int) "no force on system commit" 0 (Log_manager.flushed_lsn log);
  (* The next user commit makes it durable. *)
  let u = Txn_mgr.begin_txn mgr Txn.User in
  Txn_mgr.commit mgr u;
  Alcotest.(check bool) "carried to durability by user commit" true
    (Log_manager.flushed_lsn log >= Log_manager.last_lsn log - 1)

let test_abort_undoes () =
  let _log, pool, mgr = setup () in
  (* Committed base state. *)
  let t0 = Txn_mgr.begin_txn mgr Txn.User in
  let fr = fresh_page mgr t0 pool 5 in
  ignore (Txn_mgr.update mgr t0 fr (Page_op.Insert_slot { slot = 0; cell = "base" }));
  Txn_mgr.commit mgr t0;
  (* Aborted txn mutates then rolls back. *)
  let t1 = Txn_mgr.begin_txn mgr Txn.User in
  ignore (Txn_mgr.update mgr t1 fr (Page_op.Insert_slot { slot = 1; cell = "doomed" }));
  ignore
    (Txn_mgr.update mgr t1 fr
       (Page_op.Replace_slot { slot = 0; old_cell = "base"; new_cell = "overwr" }));
  Txn_mgr.abort mgr t1;
  Alcotest.(check int) "one cell" 1 (Page.slot_count fr.Buffer_pool.page);
  Alcotest.(check string) "restored" "base" (Page.get fr.Buffer_pool.page 0);
  Buffer_pool.unpin pool fr

let test_abort_releases_locks () =
  let _log, pool, mgr = setup () in
  ignore pool;
  let locks = Txn_mgr.locks mgr in
  let t1 = Txn_mgr.begin_txn mgr Txn.User in
  Lock_manager.acquire locks ~owner:t1.Txn.id
    (Lock_manager.Record { tree = 1; key = "k" })
    Lock_mode.X;
  Txn_mgr.abort mgr t1;
  Alcotest.(check bool) "lock released by abort" true
    (Lock_manager.try_acquire locks ~owner:999
       (Lock_manager.Record { tree = 1; key = "k" })
       Lock_mode.X)

let test_atomic_action_commits () =
  let _log, pool, mgr = setup () in
  let v =
    Atomic_action.run mgr (fun txn ->
        let fr = fresh_page mgr txn pool 7 in
        ignore (Txn_mgr.update mgr txn fr (Page_op.Insert_slot { slot = 0; cell = "aa" }));
        Buffer_pool.unpin pool fr;
        42)
  in
  Alcotest.(check int) "returns value" 42 v;
  let fr = Buffer_pool.pin pool 7 in
  Alcotest.(check string) "effect persisted" "aa" (Page.get fr.Buffer_pool.page 0);
  Buffer_pool.unpin pool fr

let test_atomic_action_aborts_on_exn () =
  let _log, pool, mgr = setup () in
  (* Page must exist beforehand so we can observe the rollback. *)
  let t0 = Txn_mgr.begin_txn mgr Txn.User in
  let fr = fresh_page mgr t0 pool 7 in
  Txn_mgr.commit mgr t0;
  (match
     Atomic_action.run mgr (fun txn ->
         ignore (Txn_mgr.update mgr txn fr (Page_op.Insert_slot { slot = 0; cell = "zz" }));
         failwith "boom")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected exception");
  Alcotest.(check int) "rolled back" 0 (Page.slot_count fr.Buffer_pool.page);
  Alcotest.(check int) "no live txns" 0 (Txn_mgr.active_count mgr);
  Buffer_pool.unpin pool fr

let test_on_commit_callbacks () =
  let _log, _pool, mgr = setup () in
  let fired = ref [] in
  let t = Txn_mgr.begin_txn mgr Txn.User in
  Txn.add_on_commit t (fun () -> fired := 1 :: !fired);
  Txn.add_on_commit t (fun () -> fired := 2 :: !fired);
  Alcotest.(check (list int)) "not before commit" [] !fired;
  Txn_mgr.commit mgr t;
  Alcotest.(check (list int)) "in order after commit" [ 2; 1 ] !fired;
  (* Aborted transactions never fire them. *)
  let t2 = Txn_mgr.begin_txn mgr Txn.User in
  Txn.add_on_commit t2 (fun () -> fired := 3 :: !fired);
  Txn_mgr.abort mgr t2;
  Alcotest.(check (list int)) "abort drops callbacks" [ 2; 1 ] !fired

let test_active_tracking () =
  let _log, _pool, mgr = setup () in
  let t1 = Txn_mgr.begin_txn mgr Txn.User in
  let t2 = Txn_mgr.begin_txn mgr Txn.System in
  Alcotest.(check int) "two active" 2 (Txn_mgr.active_count mgr);
  Alcotest.(check bool) "listed with lsns" true
    (List.length (Txn_mgr.active mgr) = 2);
  Txn_mgr.commit mgr t1;
  Txn_mgr.abort mgr t2;
  Alcotest.(check int) "none active" 0 (Txn_mgr.active_count mgr)

let test_crash_points () =
  Crash_point.disarm_all ();
  Crash_point.reset_counts ();
  Crash_point.hit "p";
  Alcotest.(check int) "counted" 1 (Crash_point.hit_count "p");
  Crash_point.arm "p" ~after:2;
  Crash_point.hit "p";
  Crash_point.hit "p";
  Alcotest.(check bool) "fires on third" true
    (match Crash_point.hit "p" with
    | exception Crash_point.Crash_requested "p" -> true
    | _ -> false);
  (* One-shot: disarmed after firing. *)
  Crash_point.hit "p";
  Crash_point.disarm_all ()

let suites =
  [
    ( "txn.durability",
      [
        Alcotest.test_case "user commit forces" `Quick test_commit_forces_user_log;
        Alcotest.test_case "system commit relative" `Quick test_system_commit_not_forced;
      ] );
    ( "txn.lifecycle",
      [
        Alcotest.test_case "abort undoes" `Quick test_abort_undoes;
        Alcotest.test_case "abort releases locks" `Quick test_abort_releases_locks;
        Alcotest.test_case "atomic action commits" `Quick test_atomic_action_commits;
        Alcotest.test_case "atomic action aborts on exn" `Quick
          test_atomic_action_aborts_on_exn;
        Alcotest.test_case "on-commit callbacks" `Quick test_on_commit_callbacks;
        Alcotest.test_case "active tracking" `Quick test_active_tracking;
        Alcotest.test_case "crash points" `Quick test_crash_points;
      ] );
  ]
