(* Tests for the hB-tree (multiattribute) engine — section 2.2.3 / Figure 2. *)

module Env = Pitree_env.Env
module Hb = Pitree_hb.Hb
module Hkd = Pitree_hb.Hkd
module Hb_space = Pitree_hb.Hb_space
module Wellformed = Pitree_core.Wellformed
module Rng = Pitree_util.Rng

let cfg () =
  {
    Env.default_config with
    page_size = 512;
    pool_capacity = 8192;
    page_oriented_undo = false;
    consolidation = false;
  }

let mk ?(dims = 2) () =
  let env = Env.create (cfg ()) in
  (env, Hb.create env ~name:"h" ~dims)

let check_wf t =
  let report = Hb.verify t in
  if not (Wellformed.ok report) then
    Alcotest.failf "hb not well-formed: %a" Wellformed.pp_report report

let pt x y = [| x; y |]

let random_points n seed =
  let rng = Rng.create seed in
  Array.init n (fun i ->
      ignore i;
      pt (Rng.float rng 1.0) (Rng.float rng 1.0))

(* --- kd-tree unit tests --- *)

let test_kd_codec () =
  let kd =
    Hkd.Split
      {
        dim = 0;
        coord = 0.5;
        left = Hkd.Leaf (Hkd.Child 3);
        right =
          Hkd.Split
            {
              dim = 1;
              coord = 0.25;
              left = Hkd.Leaf Hkd.Here;
              right = Hkd.Leaf (Hkd.Sibling 9);
            };
      }
  in
  Alcotest.(check bool) "roundtrip" true (Hkd.decode (Hkd.encode kd) = kd);
  Alcotest.(check int) "size" 3 (Hkd.size kd);
  Alcotest.(check bool) "walk left" true (Hkd.walk kd (pt 0.1 0.9) = Hkd.Child 3);
  Alcotest.(check bool) "walk here" true (Hkd.walk kd (pt 0.7 0.1) = Hkd.Here);
  Alcotest.(check bool) "walk sibling" true (Hkd.walk kd (pt 0.7 0.7) = Hkd.Sibling 9)

let test_kd_carve_simple () =
  let region = Hb_space.whole_brick 2 in
  let b = { Hb_space.low = [| 0.25; 0.25 |]; high = [| 0.5; 0.5 |] } in
  let kd = Hkd.carve (Hkd.Leaf Hkd.Here) ~region ~brick:b (Hkd.Sibling 7) in
  Alcotest.(check bool) "inside goes to sibling" true
    (Hkd.walk kd (pt 0.3 0.3) = Hkd.Sibling 7);
  Alcotest.(check bool) "outside stays here" true (Hkd.walk kd (pt 0.7 0.7) = Hkd.Here);
  Alcotest.(check bool) "boundary high excluded" true
    (Hkd.walk kd (pt 0.5 0.3) = Hkd.Here);
  (* Leaf regions must still tile the region. *)
  Seeds.with_seed "hb.kd-carve-tiling" @@ fun seed ->
  let leaves = Hkd.leaf_regions kd region in
  let rng = Rng.create seed in
  for _ = 1 to 500 do
    let p = pt (Rng.float rng 1.0) (Rng.float rng 1.0) in
    let owners = List.filter (fun (r, _) -> Hb_space.brick_contains r p) leaves in
    Alcotest.(check int) "exactly one leaf owns each point" 1 (List.length owners)
  done

let test_kd_carve_clips () =
  (* Carving a brick across an existing split clips it: the target appears
     in both subtrees (section 3.2.2). *)
  let region = Hb_space.whole_brick 2 in
  let kd0 =
    Hkd.Split
      { dim = 0; coord = 0.5; left = Hkd.Leaf (Hkd.Child 1); right = Hkd.Leaf (Hkd.Child 2) }
  in
  let b = { Hb_space.low = [| 0.4; 0.4 |]; high = [| 0.6; 0.6 |] } in
  let kd = Hkd.carve kd0 ~region ~brick:b (Hkd.Child 9) in
  let count9 =
    Hkd.leaf_regions kd region
    |> List.filter (fun (_, tgt) -> tgt = Hkd.Child 9)
    |> List.length
  in
  Alcotest.(check bool) "clipped into both halves" true (count9 >= 2);
  Alcotest.(check bool) "routes inside" true (Hkd.walk kd (pt 0.45 0.5) = Hkd.Child 9);
  Alcotest.(check bool) "routes inside right" true (Hkd.walk kd (pt 0.55 0.5) = Hkd.Child 9);
  Alcotest.(check bool) "old children intact" true
    (Hkd.walk kd (pt 0.1 0.1) = Hkd.Child 1 && Hkd.walk kd (pt 0.9 0.9) = Hkd.Child 2)

let test_kd_region_of_target () =
  let region = Hb_space.whole_brick 2 in
  let b = { Hb_space.low = [| 0.5; 0.0 |]; high = [| 1.0; 0.5 |] } in
  let kd = Hkd.carve (Hkd.Leaf Hkd.Here) ~region ~brick:b (Hkd.Sibling 4) in
  match Hkd.region_of_target kd region (Hkd.Sibling 4) with
  | None -> Alcotest.fail "sibling region not found"
  | Some r ->
      Alcotest.(check bool) "region matches" true
        (Hb_space.brick_contains r (pt 0.7 0.2) && not (Hb_space.brick_contains r (pt 0.2 0.2)))

(* --- engine tests --- *)

let test_insert_find () =
  let _, t = mk () in
  Hb.insert t ~point:(pt 0.1 0.2) ~value:"a";
  Hb.insert t ~point:(pt 0.9 0.8) ~value:"b";
  Alcotest.(check (option string)) "a" (Some "a") (Hb.find t (pt 0.1 0.2));
  Alcotest.(check (option string)) "b" (Some "b") (Hb.find t (pt 0.9 0.8));
  Alcotest.(check (option string)) "miss" None (Hb.find t (pt 0.5 0.5));
  Hb.insert t ~point:(pt 0.1 0.2) ~value:"a2";
  Alcotest.(check (option string)) "overwrite" (Some "a2") (Hb.find t (pt 0.1 0.2));
  Alcotest.(check int) "count" 2 (Hb.count t);
  check_wf t

let test_dims_checked () =
  let _, t = mk () in
  Alcotest.(check bool) "bad dims rejected" true
    (match Hb.insert t ~point:[| 0.5 |] ~value:"x" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_many_points () =
  let env, t = mk () in
  let pts = random_points 1200 11L in
  Array.iteri (fun i p -> Hb.insert t ~point:p ~value:(string_of_int i)) pts;
  ignore (Env.drain env);
  check_wf t;
  Alcotest.(check int) "count" 1200 (Hb.count t);
  Array.iteri
    (fun i p ->
      match Hb.find t p with
      | Some v when v = string_of_int i -> ()
      | _ -> Alcotest.failf "lost point %d" i)
    pts;
  let s = Hb.stats t in
  Alcotest.(check bool) "data splits" true (s.Hb.data_splits > 5);
  Alcotest.(check bool) "postings" true (s.Hb.postings_completed > 0)

let test_tree_grows () =
  let env, t = mk () in
  let pts = random_points 3000 12L in
  Array.iteri (fun i p -> Hb.insert t ~point:p ~value:(string_of_int i)) pts;
  ignore (Env.drain env);
  check_wf t;
  let s = Hb.stats t in
  Alcotest.(check bool) "root split" true (s.Hb.root_splits > 0);
  Alcotest.(check int) "count" 3000 (Hb.count t)

let test_region_query () =
  let env, t = mk () in
  let pts = random_points 800 13L in
  Array.iteri (fun i p -> Hb.insert t ~point:p ~value:(string_of_int i)) pts;
  ignore (Env.drain env);
  let low = [| 0.25; 0.25 |] and high = [| 0.75; 0.75 |] in
  let inside p = p.(0) >= 0.25 && p.(0) < 0.75 && p.(1) >= 0.25 && p.(1) < 0.75 in
  let expected =
    Array.to_list pts |> List.filter inside |> List.length
  in
  let got = Hb.query t ~low ~high ~init:0 ~f:(fun n p _ ->
      if not (inside p) then Alcotest.fail "query returned outside point";
      n + 1)
  in
  Alcotest.(check int) "region count" expected got

let test_delete () =
  let env, t = mk () in
  let pts = random_points 400 14L in
  Array.iteri (fun i p -> Hb.insert t ~point:p ~value:(string_of_int i)) pts;
  ignore (Env.drain env);
  Array.iteri
    (fun i p -> if i mod 2 = 0 then Alcotest.(check bool) "deleted" true (Hb.delete t p))
    pts;
  Alcotest.(check bool) "absent" false (Hb.delete t (pt 2.0 2.0));
  Alcotest.(check int) "half left" 200 (Hb.count t);
  check_wf t

let test_clipping_and_multiparent () =
  (* Heavy load in 3 dims reliably produces postings whose bricks straddle
     parent partitions (clipping) and, as index nodes split, multi-parent
     children. *)
  Seeds.with_seed "hb.clipping-multiparent" @@ fun seed ->
  let env, t = mk ~dims:3 () in
  let rng = Rng.create seed in
  for i = 0 to 4999 do
    let p = [| Rng.float rng 1.0; Rng.float rng 1.0; Rng.float rng 1.0 |] in
    Hb.insert t ~point:p ~value:(string_of_int i)
  done;
  ignore (Env.drain env);
  check_wf t;
  let s = Hb.stats t in
  Alcotest.(check bool)
    (Printf.sprintf "clipping occurred (%d)" s.Hb.clipped_postings)
    true (s.Hb.clipped_postings > 0);
  Alcotest.(check int) "count" 5000 (Hb.count t)

let test_crash_recovery () =
  let env, t = mk () in
  let pts = random_points 700 16L in
  Array.iteri (fun i p -> Hb.insert t ~point:p ~value:(string_of_int i)) pts;
  (* Crash with postings pending (queue drained on autocommit, so force
     some pending state by crashing right after a burst). *)
  Env.crash env;
  ignore (Env.recover env);
  let t =
    match Hb.open_existing env ~name:"h" with
    | Some t -> t
    | None -> Alcotest.fail "hb tree lost"
  in
  check_wf t;
  Array.iteri
    (fun i p ->
      match Hb.find t p with
      | Some v when v = string_of_int i -> ()
      | _ -> Alcotest.failf "lost point %d after crash" i)
    pts;
  (* Keep working after recovery. *)
  Hb.insert t ~point:(pt 0.123 0.456) ~value:"post-crash";
  Alcotest.(check (option string)) "post-crash insert" (Some "post-crash")
    (Hb.find t (pt 0.123 0.456))

let test_lazy_posting_after_crash () =
  (* Same protocol as the B-link engine: a split whose posting was lost to
     a crash is completed by later traversals through the sibling marker. *)
  Pitree_util.Crash_point.disarm_all ();
  let env, t = mk () in
  let mgr = Env.txns env in
  let txn = Pitree_txn.Txn_mgr.begin_txn mgr Pitree_txn.Txn.User in
  let pts = random_points 700 17L in
  Array.iteri
    (fun i p ->
      Hb.insert t ~point:p ~value:(string_of_int i);
      ignore (txn, i))
    pts;
  Pitree_txn.Txn_mgr.commit mgr txn;
  Env.crash env;
  ignore (Env.recover env);
  let t = Option.get (Hb.open_existing env ~name:"h") in
  check_wf t;
  Array.iteri
    (fun i p ->
      match Hb.find t p with
      | Some v when v = string_of_int i -> ()
      | _ -> Alcotest.failf "lost point %d" i)
    pts

(* Property: hB matches a list model for random inserts/deletes/queries. *)
let prop_hb_model =
  let open QCheck in
  Test.make ~name:"hb matches model" ~count:15
    (make Gen.(pair (int_range 100 400) (int_bound 1000)))
    (fun (n, seed) ->
      let env, t = mk () in
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      let model = Hashtbl.create 64 in
      for i = 0 to n - 1 do
        let p = pt (Rng.float rng 1.0) (Rng.float rng 1.0) in
        if Rng.int rng 10 < 8 then begin
          Hb.insert t ~point:p ~value:(string_of_int i);
          Hashtbl.replace model p (string_of_int i)
        end
        else begin
          let del_tree = Hb.delete t p in
          let del_model = Hashtbl.mem model p in
          if del_tree <> del_model then Test.fail_report "delete disagreement";
          Hashtbl.remove model p
        end
      done;
      ignore (Env.drain env);
      if not (Wellformed.ok (Hb.verify t)) then Test.fail_report "not well-formed";
      Hashtbl.iter
        (fun p v ->
          match Hb.find t p with
          | Some v' when v' = v -> ()
          | _ -> Test.fail_report "lost point")
        model;
      Hb.count t = Hashtbl.length model)

let test_empty_node_consolidation () =
  (* Section 3.3: an emptied data node folds back into its containing
     sibling — but only when a single parent references it. *)
  let env = Env.create { (cfg ()) with Env.consolidation = true } in
  let t = Hb.create env ~name:"h" ~dims:2 in
  let pts = random_points 1500 21L in
  Array.iteri (fun i p -> Hb.insert t ~point:p ~value:(string_of_int i)) pts;
  ignore (Env.drain env);
  let nodes_full =
    (* node count via a full query walk is awkward; use verify's visit
       count. *)
    (Hb.verify t).Wellformed.nodes_visited
  in
  (* Delete everything; empty nodes schedule consolidations. *)
  Array.iter (fun p -> ignore (Hb.delete t p)) pts;
  for _ = 1 to 20 do
    ignore (Env.drain env)
  done;
  check_wf t;
  Alcotest.(check int) "empty" 0 (Hb.count t);
  let s = Hb.stats t in
  Alcotest.(check bool)
    (Printf.sprintf "consolidations ran (%d, skipped %d)" s.Hb.consolidations
       s.Hb.consolidations_skipped)
    true
    (s.Hb.consolidations > 0);
  let nodes_after = (Hb.verify t).Wellformed.nodes_visited in
  Alcotest.(check bool)
    (Printf.sprintf "nodes reclaimed (%d -> %d)" nodes_full nodes_after)
    true
    (nodes_after < nodes_full);
  (* The tree keeps working. *)
  Array.iteri (fun i p -> Hb.insert t ~point:p ~value:(string_of_int i)) pts;
  ignore (Env.drain env);
  check_wf t;
  Alcotest.(check int) "reinsert works" 1500 (Hb.count t)

let test_consolidation_respects_multi_parent () =
  (* Multi-parent nodes must never be consolidated; we can at least check
     that a heavy 3-d workload with deletes stays well-formed and that
     skips were recorded when constraints failed. *)
  Seeds.with_seed "hb.consolidation-multiparent" @@ fun seed ->
  let env = Env.create { (cfg ()) with Env.consolidation = true } in
  let t = Hb.create env ~name:"h" ~dims:3 in
  let rng = Rng.create seed in
  let pts =
    Array.init 3000 (fun _ ->
        [| Rng.float rng 1.0; Rng.float rng 1.0; Rng.float rng 1.0 |])
  in
  Array.iteri (fun i p -> Hb.insert t ~point:p ~value:(string_of_int i)) pts;
  ignore (Env.drain env);
  Array.iteri (fun i p -> if i mod 2 = 0 then ignore (Hb.delete t p)) pts;
  for _ = 1 to 10 do
    ignore (Env.drain env)
  done;
  check_wf t;
  Alcotest.(check int) "half remain" 1500 (Hb.count t)

let suites =
  [
    ( "hb.kd",
      [
        Alcotest.test_case "codec+walk" `Quick test_kd_codec;
        Alcotest.test_case "carve simple" `Quick test_kd_carve_simple;
        Alcotest.test_case "carve clips" `Quick test_kd_carve_clips;
        Alcotest.test_case "region of target" `Quick test_kd_region_of_target;
      ] );
    ( "hb.basic",
      [
        Alcotest.test_case "insert/find" `Quick test_insert_find;
        Alcotest.test_case "dims checked" `Quick test_dims_checked;
        Alcotest.test_case "many points" `Quick test_many_points;
        Alcotest.test_case "tree grows" `Quick test_tree_grows;
        Alcotest.test_case "region query" `Quick test_region_query;
        Alcotest.test_case "delete" `Quick test_delete;
      ] );
    ( "hb.protocol",
      [
        Alcotest.test_case "clipping + multi-parent" `Slow
          test_clipping_and_multiparent;
        Alcotest.test_case "crash recovery" `Quick test_crash_recovery;
        Alcotest.test_case "lazy posting after crash" `Quick
          test_lazy_posting_after_crash;
        QCheck_alcotest.to_alcotest prop_hb_model;
      ] );
    ( "hb.consolidation",
      [
        Alcotest.test_case "empty-node consolidation" `Quick
          test_empty_node_consolidation;
        Alcotest.test_case "multi-parent constraint" `Slow
          test_consolidation_respects_multi_parent;
      ] );
  ]
