(* Cross-"process" persistence: file-backed pages + file-backed log. A new
   Env built over the same files (as a fresh process would) must recover
   the database — both after a clean close and after an unclean stop. *)

module Env = Pitree_env.Env
module Disk = Pitree_storage.Disk
module Blink = Pitree_blink.Blink
module Tsb = Pitree_tsb.Tsb
module Log_manager = Pitree_wal.Log_manager
module Wellformed = Pitree_core.Wellformed

let cfg = { Env.default_config with page_size = 512; pool_capacity = 512; page_oriented_undo = false; consolidation = true }

let with_tmpdir f =
  let dir = Filename.temp_file "pitree" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let paths dir = (Filename.concat dir "pages.db", Filename.concat dir "wal.log")

let key i = Printf.sprintf "key%06d" i

let test_clean_close_reopen () =
  with_tmpdir (fun dir ->
      let pages, wal = paths dir in
      (* "Process 1": create, load, close cleanly. *)
      let env =
        Env.create ~disk:(Disk.file ~page_size:512 ~path:pages)
          { cfg with Env.log_path = Some wal }
      in
      let t = Blink.create env ~name:"t" in
      for i = 0 to 999 do
        Blink.insert t ~key:(key i) ~value:(Printf.sprintf "v%d" i)
      done;
      ignore (Env.drain env);
      Env.close env;
      (* "Process 2": reopen from the files. *)
      let env2 =
        Env.open_from ~disk:(Disk.file ~page_size:512 ~path:pages)
          { cfg with Env.log_path = Some wal }
      in
      let report = Env.recover env2 in
      Alcotest.(check (list int)) "clean close: no losers" []
        report.Pitree_wal.Recovery.loser_txns;
      let t2 =
        match Blink.open_existing env2 ~name:"t" with
        | Some t -> t
        | None -> Alcotest.fail "catalog lost across restart"
      in
      Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t2));
      for i = 0 to 999 do
        Alcotest.(check (option string)) (key i)
          (Some (Printf.sprintf "v%d" i))
          (Blink.find t2 (key i))
      done;
      (* And the reopened database accepts writes. *)
      Blink.insert t2 ~key:"post-restart" ~value:"yes";
      Alcotest.(check (option string)) "writable" (Some "yes")
        (Blink.find t2 "post-restart");
      Env.close env2)

let test_unclean_stop_replays_log () =
  with_tmpdir (fun dir ->
      let pages, wal = paths dir in
      (* "Process 1": load and just stop — no close, no checkpoint. Commits
         forced the log file; most pages never reached the page file. *)
      let env =
        Env.create ~disk:(Disk.file ~page_size:512 ~path:pages)
          { cfg with Env.log_path = Some wal }
      in
      let t = Blink.create env ~name:"t" in
      for i = 0 to 499 do
        Blink.insert t ~key:(key i) ~value:"v"
      done;
      ignore (Env.drain env);
      (* no close: simulate the process dying *)
      (* "Process 2". *)
      let env2 =
        Env.open_from ~disk:(Disk.file ~page_size:512 ~path:pages)
          { cfg with Env.log_path = Some wal }
      in
      let report = Env.recover env2 in
      Alcotest.(check bool) "log replayed" true (report.Pitree_wal.Recovery.redone > 0);
      let t2 = Option.get (Blink.open_existing env2 ~name:"t") in
      Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t2));
      Alcotest.(check int) "all committed data" 500 (Blink.count t2);
      Env.close env2)

let test_torn_log_tail_discarded () =
  with_tmpdir (fun dir ->
      let pages, wal = paths dir in
      let env =
        Env.create ~disk:(Disk.file ~page_size:512 ~path:pages)
          { cfg with Env.log_path = Some wal }
      in
      let t = Blink.create env ~name:"t" in
      for i = 0 to 199 do
        Blink.insert t ~key:(key i) ~value:"v"
      done;
      ignore (Env.drain env);
      Log_manager.flush_all (Env.log env);
      (* Corrupt the log's tail, as a power failure mid-write would. *)
      let fd = Unix.openfile wal [ Unix.O_RDWR ] 0o644 in
      let size = (Unix.fstat fd).Unix.st_size in
      Unix.ftruncate fd (size - 7);
      Unix.close fd;
      let env2 =
        Env.open_from ~disk:(Disk.file ~page_size:512 ~path:pages)
          { cfg with Env.log_path = Some wal }
      in
      ignore (Env.recover env2);
      let t2 = Option.get (Blink.open_existing env2 ~name:"t") in
      Alcotest.(check bool) "well-formed despite torn tail" true
        (Wellformed.ok (Blink.verify t2));
      (* The record whose log tail was torn may be lost; everything before
         must be intact and consistent. *)
      let n = Blink.count t2 in
      Alcotest.(check bool) (Printf.sprintf "count sane (%d)" n) true
        (n >= 198 && n <= 200);
      Env.close env2)

let test_tsb_persists () =
  with_tmpdir (fun dir ->
      let pages, wal = paths dir in
      let env =
        Env.create ~disk:(Disk.file ~page_size:512 ~path:pages)
          { cfg with Env.log_path = Some wal }
      in
      let t = Tsb.create env ~name:"v" in
      let t1 = Tsb.put t ~key:"k" ~value:"old" in
      ignore (Tsb.put t ~key:"k" ~value:"new");
      Env.close env;
      let env2 =
        Env.open_from ~disk:(Disk.file ~page_size:512 ~path:pages)
          { cfg with Env.log_path = Some wal }
      in
      ignore (Env.recover env2);
      let t2 = Option.get (Tsb.open_existing env2 ~name:"v") in
      Alcotest.(check (option string)) "current survives" (Some "new") (Tsb.get t2 "k");
      Alcotest.(check (option string)) "history survives" (Some "old")
        (Tsb.get_asof t2 "k" ~time:t1);
      (* Clock advanced past recovered stamps. *)
      let t3 = Tsb.put t2 ~key:"k" ~value:"newer" in
      Alcotest.(check bool) "clock monotone across restart" true (t3 > t1);
      Env.close env2)

let suites =
  [
    ( "persistence.files",
      [
        Alcotest.test_case "clean close + reopen" `Quick test_clean_close_reopen;
        Alcotest.test_case "unclean stop replays log" `Quick
          test_unclean_stop_replays_log;
        Alcotest.test_case "torn log tail discarded" `Quick
          test_torn_log_tail_discarded;
        Alcotest.test_case "tsb persists" `Quick test_tsb_persists;
      ] );
  ]
