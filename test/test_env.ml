(* Unit tests for pitree.env: page allocation (logged, abortable), the
   catalog, checkpoints, the completion queue, crash/recover lifecycle. *)

module Page = Pitree_storage.Page
module Buffer_pool = Pitree_storage.Buffer_pool
module Log_manager = Pitree_wal.Log_manager
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Atomic_action = Pitree_txn.Atomic_action
module Env = Pitree_env.Env

let cfg =
  {
    Env.default_config with
    page_size = 256;
    pool_capacity = 256;
    page_oriented_undo = false;
    consolidation = true;
  }

let test_alloc_monotonic () =
  let env = Env.create cfg in
  let pids =
    Atomic_action.run (Env.txns env) (fun txn ->
        List.init 5 (fun _ ->
            let fr = Env.alloc_page env txn ~kind:Page.Data ~level:0 in
            let pid = Page.id fr.Buffer_pool.page in
            Buffer_pool.unpin (Env.pool env) fr;
            pid))
  in
  Alcotest.(check bool) "distinct and increasing" true
    (List.sort_uniq compare pids = pids && List.length pids = 5)

let test_dealloc_reuses () =
  let env = Env.create cfg in
  let pid =
    Atomic_action.run (Env.txns env) (fun txn ->
        let fr = Env.alloc_page env txn ~kind:Page.Data ~level:0 in
        let pid = Page.id fr.Buffer_pool.page in
        Pitree_sync.Latch.acquire fr.Buffer_pool.latch Pitree_sync.Latch.X;
        Env.dealloc_page env txn fr;
        Pitree_sync.Latch.release fr.Buffer_pool.latch Pitree_sync.Latch.X;
        Buffer_pool.unpin (Env.pool env) fr;
        pid)
  in
  (* Next allocation pops the free list. *)
  let pid2 =
    Atomic_action.run (Env.txns env) (fun txn ->
        let fr = Env.alloc_page env txn ~kind:Page.Index ~level:2 in
        let p = Page.id fr.Buffer_pool.page in
        Alcotest.(check int) "reformatted level" 2 (Page.level fr.Buffer_pool.page);
        Alcotest.(check bool) "kind set" true (Page.kind fr.Buffer_pool.page = Page.Index);
        Buffer_pool.unpin (Env.pool env) fr;
        p)
  in
  Alcotest.(check int) "page id reused" pid pid2

let test_aborted_alloc_returns_page () =
  let env = Env.create cfg in
  let mgr = Env.txns env in
  let t1 = Txn_mgr.begin_txn mgr Txn.User in
  let fr = Env.alloc_page env t1 ~kind:Page.Data ~level:0 in
  let pid = Page.id fr.Buffer_pool.page in
  Buffer_pool.unpin (Env.pool env) fr;
  Txn_mgr.abort mgr t1;
  (* The same pid must be handed out again (the meta-page counter and the
     page format were rolled back). *)
  let pid2 =
    Atomic_action.run mgr (fun txn ->
        let fr = Env.alloc_page env txn ~kind:Page.Data ~level:0 in
        let p = Page.id fr.Buffer_pool.page in
        Buffer_pool.unpin (Env.pool env) fr;
        p)
  in
  Alcotest.(check int) "allocation undone by abort" pid pid2

let test_catalog () =
  let env = Env.create cfg in
  let r1 = Env.create_tree env ~name:"alpha" ~kind:Page.Data ~level:0 in
  let r2 = Env.create_tree env ~name:"beta" ~kind:Page.Data ~level:0 in
  Alcotest.(check bool) "distinct roots" true (r1 <> r2);
  Alcotest.(check (option int)) "find alpha" (Some r1) (Env.find_tree env ~name:"alpha");
  Alcotest.(check (option int)) "find beta" (Some r2) (Env.find_tree env ~name:"beta");
  Alcotest.(check (option int)) "missing" None (Env.find_tree env ~name:"gamma");
  Alcotest.(check int) "list" 2 (List.length (Env.list_trees env))

let test_catalog_survives_crash () =
  let env = Env.create cfg in
  let r1 = Env.create_tree env ~name:"alpha" ~kind:Page.Data ~level:0 in
  Env.checkpoint env;
  Env.crash env;
  ignore (Env.recover env);
  Alcotest.(check (option int)) "catalog recovered" (Some r1)
    (Env.find_tree env ~name:"alpha")

let test_completion_queue () =
  let env = Env.create cfg in
  let log = ref [] in
  Env.schedule env (fun () -> log := `A :: !log);
  Env.schedule env (fun () ->
      log := `B :: !log;
      (* Tasks may reschedule. *)
      Env.schedule env (fun () -> log := `C :: !log));
  Alcotest.(check int) "pending" 2 (Env.pending env);
  let ran = Env.drain env in
  Alcotest.(check int) "ran all incl rescheduled" 3 ran;
  Alcotest.(check bool) "order" true (!log = [ `C; `B; `A ]);
  Alcotest.(check int) "queue empty" 0 (Env.pending env)

let test_crash_drops_tasks () =
  let env = Env.create cfg in
  Env.schedule env (fun () -> ());
  Env.crash env;
  ignore (Env.recover env);
  Alcotest.(check int) "tasks lost by crash (by design)" 0 (Env.pending env)

let test_checkpoint_truncates_redo () =
  let env = Env.create cfg in
  ignore (Env.create_tree env ~name:"t" ~kind:Page.Data ~level:0);
  let before = Log_manager.redo_start (Env.log env) in
  Env.checkpoint env;
  let after = Log_manager.redo_start (Env.log env) in
  Alcotest.(check bool) "redo point advanced" true (after > before);
  (* Recovery from the checkpoint still works. *)
  Env.crash env;
  let report = Env.recover env in
  Alcotest.(check bool) "analysis bounded by checkpoint" true
    (report.Pitree_wal.Recovery.analyzed < 20)

let test_recover_requires_crash () =
  let env = Env.create cfg in
  Alcotest.(check bool) "recover without crash rejected" true
    (match Env.recover env with exception Invalid_argument _ -> true | _ -> false)

let test_stats () =
  let env = Env.create cfg in
  ignore (Env.create_tree env ~name:"t" ~kind:Page.Data ~level:0);
  let s = Env.stats env in
  Alcotest.(check bool) "allocs counted" true (s.Env.pages_allocated >= 1)

let suites =
  [
    ( "env.alloc",
      [
        Alcotest.test_case "monotonic" `Quick test_alloc_monotonic;
        Alcotest.test_case "dealloc reuses" `Quick test_dealloc_reuses;
        Alcotest.test_case "aborted alloc returns page" `Quick
          test_aborted_alloc_returns_page;
      ] );
    ( "env.catalog",
      [
        Alcotest.test_case "create/find/list" `Quick test_catalog;
        Alcotest.test_case "survives crash" `Quick test_catalog_survives_crash;
      ] );
    ( "env.completion",
      [
        Alcotest.test_case "queue" `Quick test_completion_queue;
        Alcotest.test_case "crash drops tasks" `Quick test_crash_drops_tasks;
      ] );
    ( "env.lifecycle",
      [
        Alcotest.test_case "checkpoint truncates redo" `Quick
          test_checkpoint_truncates_redo;
        Alcotest.test_case "recover requires crash" `Quick test_recover_requires_crash;
        Alcotest.test_case "stats" `Quick test_stats;
      ] );
  ]
