(* Unit tests for pitree.lock: compatibility matrix (incl. move locks),
   lock manager, waits-for deadlock detection. *)

module Lock_mode = Pitree_lock.Lock_mode
module Lock_manager = Pitree_lock.Lock_manager

let m = Lock_mode.compatible

let test_matrix_standard () =
  (* Standard S/X/U/IS/IX relationships. *)
  Alcotest.(check bool) "S+S" true (m Lock_mode.S Lock_mode.S);
  Alcotest.(check bool) "S+X" false (m Lock_mode.S Lock_mode.X);
  Alcotest.(check bool) "X+X" false (m Lock_mode.X Lock_mode.X);
  Alcotest.(check bool) "U+S" true (m Lock_mode.U Lock_mode.S);
  Alcotest.(check bool) "S+U" true (m Lock_mode.S Lock_mode.U);
  Alcotest.(check bool) "U+U" false (m Lock_mode.U Lock_mode.U);
  Alcotest.(check bool) "IS+IX" true (m Lock_mode.IS Lock_mode.IX);
  Alcotest.(check bool) "IX+IX" true (m Lock_mode.IX Lock_mode.IX);
  Alcotest.(check bool) "IX+S" false (m Lock_mode.IX Lock_mode.S)

let test_matrix_move () =
  (* Section 4.2.2: move locks tolerate readers, conflict with updates. *)
  Alcotest.(check bool) "Move+S compatible (reads tolerated)" true
    (m Lock_mode.Move Lock_mode.S);
  Alcotest.(check bool) "Move+IS compatible" true (m Lock_mode.Move Lock_mode.IS);
  Alcotest.(check bool) "Move+X conflicts" false (m Lock_mode.Move Lock_mode.X);
  Alcotest.(check bool) "Move+U conflicts" false (m Lock_mode.Move Lock_mode.U);
  Alcotest.(check bool) "Move+IX conflicts (updaters blocked)" false
    (m Lock_mode.Move Lock_mode.IX);
  Alcotest.(check bool) "Move+Move conflicts" false (m Lock_mode.Move Lock_mode.Move)

let test_matrix_symmetric () =
  let all = [ Lock_mode.IS; IX; S; U; X; Move ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if m a b <> m b a then
            Alcotest.failf "asymmetric: %s vs %s" (Lock_mode.to_string a)
              (Lock_mode.to_string b))
        all)
    all

let res k = Lock_manager.Record { tree = 1; key = k }
let node p = Lock_manager.Node { tree = 1; page = p }

let test_grant_and_conflict () =
  let lm = Lock_manager.create () in
  Lock_manager.acquire lm ~owner:1 (res "a") Lock_mode.S;
  Alcotest.(check bool) "S shares" true
    (Lock_manager.try_acquire lm ~owner:2 (res "a") Lock_mode.S);
  Alcotest.(check bool) "X blocked" false
    (Lock_manager.try_acquire lm ~owner:3 (res "a") Lock_mode.X);
  Lock_manager.release lm ~owner:1 (res "a");
  Lock_manager.release lm ~owner:2 (res "a");
  Alcotest.(check bool) "X after releases" true
    (Lock_manager.try_acquire lm ~owner:3 (res "a") Lock_mode.X)

let test_reentrant_and_conversion () =
  let lm = Lock_manager.create () in
  Lock_manager.acquire lm ~owner:1 (res "a") Lock_mode.S;
  (* Same mode again: no-op. *)
  Alcotest.(check bool) "re-grant" true
    (Lock_manager.try_acquire lm ~owner:1 (res "a") Lock_mode.S);
  (* Upgrade S->X with no other holders. *)
  Alcotest.(check bool) "upgrade" true
    (Lock_manager.try_acquire lm ~owner:1 (res "a") Lock_mode.X);
  Alcotest.(check (option string)) "held X" (Some "X")
    (Option.map Lock_mode.to_string (Lock_manager.held lm ~owner:1 (res "a")));
  (* Downgrade request is absorbed (sup X S = X). *)
  Alcotest.(check bool) "absorbed" true
    (Lock_manager.try_acquire lm ~owner:1 (res "a") Lock_mode.S);
  Alcotest.(check (option string)) "still X" (Some "X")
    (Option.map Lock_mode.to_string (Lock_manager.held lm ~owner:1 (res "a")))

let test_conversion_blocked_by_others () =
  let lm = Lock_manager.create () in
  Lock_manager.acquire lm ~owner:1 (res "a") Lock_mode.S;
  Lock_manager.acquire lm ~owner:2 (res "a") Lock_mode.S;
  Alcotest.(check bool) "upgrade blocked by second reader" false
    (Lock_manager.try_acquire lm ~owner:1 (res "a") Lock_mode.X)

let test_ix_then_move_conversion () =
  (* The in-transaction split path: IX + Move converts to X. *)
  let lm = Lock_manager.create () in
  Lock_manager.acquire lm ~owner:1 (node 5) Lock_mode.IX;
  Alcotest.(check bool) "convert to move" true
    (Lock_manager.try_acquire lm ~owner:1 (node 5) Lock_mode.Move);
  Alcotest.(check (option string)) "escalated to X" (Some "X")
    (Option.map Lock_mode.to_string (Lock_manager.held lm ~owner:1 (node 5)));
  (* Another updater's IX must now wait. *)
  Alcotest.(check bool) "other IX blocked" false
    (Lock_manager.try_acquire lm ~owner:2 (node 5) Lock_mode.IX)

let test_release_all () =
  let lm = Lock_manager.create () in
  Lock_manager.acquire lm ~owner:1 (res "a") Lock_mode.X;
  Lock_manager.acquire lm ~owner:1 (res "b") Lock_mode.S;
  Lock_manager.acquire lm ~owner:1 (node 2) Lock_mode.IX;
  Lock_manager.release_all lm ~owner:1;
  Alcotest.(check bool) "a free" true
    (Lock_manager.try_acquire lm ~owner:2 (res "a") Lock_mode.X);
  Alcotest.(check bool) "b free" true
    (Lock_manager.try_acquire lm ~owner:2 (res "b") Lock_mode.X);
  Alcotest.(check bool) "node free" true
    (Lock_manager.try_acquire lm ~owner:2 (node 2) Lock_mode.Move)

let test_blocking_grant () =
  let lm = Lock_manager.create () in
  Lock_manager.acquire lm ~owner:1 (res "a") Lock_mode.X;
  let granted = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        Lock_manager.acquire lm ~owner:2 (res "a") Lock_mode.S;
        Atomic.set granted true)
      ()
  in
  Thread.delay 0.02;
  Alcotest.(check bool) "waiting" false (Atomic.get granted);
  Lock_manager.release lm ~owner:1 (res "a");
  Thread.join th;
  Alcotest.(check bool) "granted after release" true (Atomic.get granted);
  let s = Lock_manager.stats lm in
  Alcotest.(check bool) "wait counted" true (s.Lock_manager.waits >= 1)

let test_fifo_no_starvation () =
  (* A waiting X must not be starved by later S requests. *)
  let lm = Lock_manager.create () in
  Lock_manager.acquire lm ~owner:1 (res "a") Lock_mode.S;
  let x_granted = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        Lock_manager.acquire lm ~owner:2 (res "a") Lock_mode.X;
        Atomic.set x_granted true)
      ()
  in
  Thread.delay 0.02;
  (* A later S (fresh request) must queue behind the waiting X. *)
  Alcotest.(check bool) "later S queues" false
    (Lock_manager.try_acquire lm ~owner:3 (res "a") Lock_mode.S);
  Lock_manager.release lm ~owner:1 (res "a");
  Thread.join th;
  Alcotest.(check bool) "X got it" true (Atomic.get x_granted);
  Lock_manager.release lm ~owner:2 (res "a")

let test_deadlock_detection () =
  let lm = Lock_manager.create () in
  Lock_manager.acquire lm ~owner:1 (res "a") Lock_mode.X;
  Lock_manager.acquire lm ~owner:2 (res "b") Lock_mode.X;
  (* owner 2 waits for a (held by 1). *)
  let t2 =
    Thread.create (fun () ->
        try Lock_manager.acquire lm ~owner:2 (res "a") Lock_mode.X
        with Lock_manager.Deadlock _ -> ())
      ()
  in
  Thread.delay 0.02;
  (* owner 1 requesting b closes the cycle: must raise, not hang. *)
  let deadlocked =
    match Lock_manager.acquire lm ~owner:1 (res "b") Lock_mode.X with
    | () -> false
    | exception Lock_manager.Deadlock { owner } -> owner = 1
  in
  Alcotest.(check bool) "deadlock detected on requester" true deadlocked;
  (* Clean up: release everything so the blocked thread can finish. *)
  Lock_manager.release_all lm ~owner:1;
  Thread.join t2;
  Lock_manager.release_all lm ~owner:2;
  let s = Lock_manager.stats lm in
  Alcotest.(check bool) "deadlock counted" true (s.Lock_manager.deadlocks >= 1)

let test_move_lock_protocol () =
  (* The end-to-end section 4.2.2 story at the lock-manager level: a mover
     waits for updaters, tolerates readers, blocks new updaters. *)
  let lm = Lock_manager.create () in
  (* Updater holds IX (it updated a record in the node). *)
  Lock_manager.acquire lm ~owner:10 (node 7) Lock_mode.IX;
  (* Mover cannot take the move lock yet. *)
  Alcotest.(check bool) "mover waits for updater" false
    (Lock_manager.try_acquire lm ~owner:20 (node 7) Lock_mode.Move);
  Lock_manager.release_all lm ~owner:10;
  Alcotest.(check bool) "mover proceeds" true
    (Lock_manager.try_acquire lm ~owner:20 (node 7) Lock_mode.Move);
  (* Readers tolerated during the move. *)
  Alcotest.(check bool) "reader tolerated" true
    (Lock_manager.try_acquire lm ~owner:30 (node 7) Lock_mode.S);
  (* New updaters blocked during the move. *)
  Alcotest.(check bool) "new updater blocked" false
    (Lock_manager.try_acquire lm ~owner:40 (node 7) Lock_mode.IX)

(* Property: random acquire/release sequences never grant two incompatible
   holds simultaneously. *)
let prop_no_incompatible_grants =
  let open QCheck in
  let mode_gen =
    Gen.oneofl [ Lock_mode.IS; Lock_mode.IX; Lock_mode.S; Lock_mode.U; Lock_mode.X; Lock_mode.Move ]
  in
  let op_gen =
    Gen.(
      oneof
        [
          map3 (fun o r md -> `Try (o mod 5, r mod 3, md)) small_nat small_nat mode_gen;
          map2 (fun o r -> `Release (o mod 5, r mod 3)) small_nat small_nat;
        ])
  in
  Test.make ~name:"lock manager grants stay compatible" ~count:200
    (make Gen.(list_size (int_range 10 80) op_gen))
    (fun ops ->
      let lm = Lock_manager.create () in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Try (o, r, md) -> ignore (Lock_manager.try_acquire lm ~owner:o (res (string_of_int r)) md)
          | `Release (o, r) -> Lock_manager.release lm ~owner:o (res (string_of_int r)))
        ops;
      for r = 0 to 2 do
        let holders = Lock_manager.holders lm (res (string_of_int r)) in
        List.iteri
          (fun i (o1, m1) ->
            List.iteri
              (fun j (o2, m2) ->
                if i < j && o1 <> o2 && not (Lock_mode.compatible m1 m2) then ok := false)
              holders)
          holders
      done;
      !ok)

let test_striped_disjoint_parallel () =
  (* Domains hammering disjoint resources spread across stripes: all
     acquisitions must be granted without waits or deadlocks, and the
     striped counters must add up. *)
  let lm = Lock_manager.create ~stripes:8 () in
  let domains = 4 and per = 1_000 in
  let work d =
    for i = 1 to per do
      let r = res (Printf.sprintf "d%d-%d" d i) in
      Lock_manager.acquire lm ~owner:(d + 1) r Lock_mode.X;
      Lock_manager.release lm ~owner:(d + 1) r
    done
  in
  List.init domains (fun d -> Domain.spawn (fun () -> work d))
  |> List.iter Domain.join;
  let s = Lock_manager.stats lm in
  Alcotest.(check int) "every acquisition counted" (domains * per)
    s.Lock_manager.acquisitions;
  Alcotest.(check int) "no deadlocks" 0 s.Lock_manager.deadlocks

let test_release_all_many_holds () =
  (* release_all over thousands of holds exercises the O(1) per-owner
     index rather than a scan of every queue in every stripe. *)
  let lm = Lock_manager.create () in
  for i = 0 to 4_999 do
    Lock_manager.acquire lm ~owner:9 (res (string_of_int i)) Lock_mode.X
  done;
  Lock_manager.release_all lm ~owner:9;
  Alcotest.(check bool) "first freed" true
    (Lock_manager.try_acquire lm ~owner:10 (res "0") Lock_mode.X);
  Alcotest.(check bool) "last freed" true
    (Lock_manager.try_acquire lm ~owner:10 (res "4999") Lock_mode.X);
  (* A second release_all for the same owner is a no-op. *)
  Lock_manager.release_all lm ~owner:9;
  Lock_manager.release_all lm ~owner:10

let test_cross_stripe_deadlock () =
  (* The waits-for graph spans stripes: a 2-cycle whose resources live in
     different stripes must still be caught. With only 2 stripes and many
     resource names, the two are near-certain to differ; assert detection
     regardless. *)
  let lm = Lock_manager.create ~stripes:2 () in
  Lock_manager.acquire lm ~owner:1 (res "left") Lock_mode.X;
  Lock_manager.acquire lm ~owner:2 (res "right") Lock_mode.X;
  let t2 =
    Thread.create
      (fun () ->
        try Lock_manager.acquire lm ~owner:2 (res "left") Lock_mode.X
        with Lock_manager.Deadlock _ -> ())
      ()
  in
  Thread.delay 0.02;
  let deadlocked =
    match Lock_manager.acquire lm ~owner:1 (res "right") Lock_mode.X with
    | () -> false
    | exception Lock_manager.Deadlock { owner } -> owner = 1
  in
  Alcotest.(check bool) "cross-stripe cycle detected" true deadlocked;
  Lock_manager.release_all lm ~owner:1;
  Thread.join t2;
  Lock_manager.release_all lm ~owner:2

let suites =
  [
    ( "lock.matrix",
      [
        Alcotest.test_case "standard modes" `Quick test_matrix_standard;
        Alcotest.test_case "move lock row" `Quick test_matrix_move;
        Alcotest.test_case "symmetric" `Quick test_matrix_symmetric;
      ] );
    ( "lock.manager",
      [
        Alcotest.test_case "grant and conflict" `Quick test_grant_and_conflict;
        Alcotest.test_case "re-entrant + conversion" `Quick test_reentrant_and_conversion;
        Alcotest.test_case "conversion blocked" `Quick test_conversion_blocked_by_others;
        Alcotest.test_case "IX->Move conversion" `Quick test_ix_then_move_conversion;
        Alcotest.test_case "release all" `Quick test_release_all;
        Alcotest.test_case "blocking grant" `Quick test_blocking_grant;
        Alcotest.test_case "FIFO no starvation" `Quick test_fifo_no_starvation;
        Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
        Alcotest.test_case "move lock protocol" `Quick test_move_lock_protocol;
        Alcotest.test_case "striped disjoint parallel" `Quick
          test_striped_disjoint_parallel;
        Alcotest.test_case "release_all many holds" `Quick
          test_release_all_many_holds;
        Alcotest.test_case "cross-stripe deadlock" `Quick
          test_cross_stripe_deadlock;
        QCheck_alcotest.to_alcotest prop_no_incompatible_grants;
      ] );
  ]
