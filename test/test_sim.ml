(* Tests for the deterministic scheduler (lib/sim): bit-for-bit replay,
   deadlock detection, the linearizability checker, and the end-to-end
   oracles catching deliberately injected protocol bugs. *)

module Sim = Pitree_sim.Sim
module Linearize = Pitree_sim.Linearize
module Scenario = Pitree_sim.Scenario
module Latch = Pitree_sync.Latch
module Version = Pitree_sync.Version
module Sched_hook = Pitree_util.Sched_hook
module Blink = Pitree_blink.Blink

let event_sig (e : Sim.event) =
  Printf.sprintf "%d:%d:%s" e.Sim.step e.Sim.fiber e.Sim.label

let small_cfg engine =
  { Scenario.default with Scenario.engine; threads = 3; ops_per_thread = 3 }

(* --- determinism --- *)

(* The same (cfg, walk seed) must produce the same schedule, the same event
   trace and the same verdict; replaying the recorded schedule must
   reproduce the trace again. *)
let test_replay_determinism () =
  let cfg = small_cfg Scenario.Blink in
  let r1 = Scenario.run cfg ~policy:(Sim.Walk 42L) in
  let r2 = Scenario.run cfg ~policy:(Sim.Walk 42L) in
  let sched o = Sim.schedule_to_string o.Sim.schedule in
  Alcotest.(check string) "same schedule" (sched r1.Scenario.outcome)
    (sched r2.Scenario.outcome);
  Alcotest.(check (list string)) "same events"
    (List.map event_sig r1.Scenario.outcome.Sim.events)
    (List.map event_sig r2.Scenario.outcome.Sim.events);
  Alcotest.(check bool) "same verdict" true
    (r1.Scenario.verdict = r2.Scenario.verdict);
  Alcotest.(check bool) "walk passes" false (Scenario.failed r1);
  let r3 = Scenario.replay cfg r1.Scenario.outcome.Sim.schedule in
  Alcotest.(check (list string)) "replay reproduces events"
    (List.map event_sig r1.Scenario.outcome.Sim.events)
    (List.map event_sig r3.Scenario.outcome.Sim.events)

let test_schedule_string_roundtrip () =
  let s = [ 0; 2; 1; 1; 0 ] in
  Alcotest.(check (list int)) "roundtrip" s
    (Sim.schedule_of_string (Sim.schedule_to_string s));
  Alcotest.(check (list int)) "empty" [] (Sim.schedule_of_string "")

(* --- deadlock detection --- *)

(* ABBA latch acquisition: some interleaving deadlocks, and the scheduler
   must (a) find it under random walks, (b) report every live fiber as
   blocked, (c) reproduce it from the recorded schedule. *)
let test_deadlock_detected () =
  let run seed_or_replay =
    let a = Latch.create ~name:"A" () and b = Latch.create ~name:"B" () in
    let grab x y () =
      Latch.acquire x Latch.X;
      Latch.acquire y Latch.X;
      Latch.release y Latch.X;
      Latch.release x Latch.X
    in
    Sim.run
      { Sim.default_config with Sim.policy = seed_or_replay }
      [ grab a b; grab b a ]
  in
  let rec hunt seed =
    if seed > 64L then Alcotest.fail "no deadlock found in 64 walks"
    else
      let o = run (Sim.Walk seed) in
      match o.Sim.failure with
      | Some (Sim.Deadlock blocked) -> (o, blocked)
      | Some f -> Alcotest.failf "unexpected failure: %a" Sim.pp_failure f
      | None -> hunt (Int64.add seed 1L)
  in
  let o, blocked = hunt 1L in
  Alcotest.(check int) "both fibers blocked" 2 (List.length blocked);
  let o' = run (Sim.Replay o.Sim.schedule) in
  match o'.Sim.failure with
  | Some (Sim.Deadlock _) -> ()
  | f ->
      Alcotest.failf "replay did not reproduce the deadlock: %a"
        Fmt.(option Sim.pp_failure)
        f

(* --- linearizability checker unit tests --- *)

let ev fiber op res inv ret = { Linearize.fiber; op; res; inv; ret }

let check_verdict name expected hist ~init =
  let v = Linearize.check ~init hist in
  let got = match v with Linearize.Linearizable -> true | _ -> false in
  Alcotest.(check bool) name expected got

let test_linearize_sequential () =
  check_verdict "sequential legal" true ~init:[]
    [
      ev 0 (Linearize.Put ("k", "v")) Linearize.Ok_put 1 2;
      ev 0 (Linearize.Get "k") (Linearize.Value (Some "v")) 3 4;
      ev 0 (Linearize.Del "k") (Linearize.Deleted true) 5 6;
      ev 0 (Linearize.Get "k") (Linearize.Value None) 7 8;
    ]

let test_linearize_concurrent_orders () =
  (* get overlaps the put, so either order is a legal linearization; here
     it must be placed after the put. *)
  check_verdict "overlap resolved" true ~init:[]
    [
      ev 0 (Linearize.Put ("k", "new")) Linearize.Ok_put 1 5;
      ev 1 (Linearize.Get "k") (Linearize.Value (Some "new")) 2 4;
    ]

let test_linearize_stale_read_illegal () =
  (* put returned before the get was invoked: real-time order forces the
     get to observe it. *)
  check_verdict "stale read rejected" false ~init:[]
    [
      ev 0 (Linearize.Put ("k", "v")) Linearize.Ok_put 1 2;
      ev 1 (Linearize.Get "k") (Linearize.Value None) 3 4;
    ]

let test_linearize_lost_update_illegal () =
  check_verdict "lost update rejected" false
    ~init:[ ("k", "init") ]
    [
      ev 0 (Linearize.Put ("k", "a")) Linearize.Ok_put 1 2;
      ev 1 (Linearize.Put ("k", "b")) Linearize.Ok_put 3 4;
      ev 0 (Linearize.Get "k") (Linearize.Value (Some "a")) 5 6;
    ]

let test_linearize_blind_del_and_range () =
  check_verdict "blind delete + range" true
    ~init:[ ("a", "1"); ("b", "2"); ("c", "3") ]
    [
      ev 0 (Linearize.Blind_del "b") Linearize.Ok_put 1 2;
      ev 1
        (Linearize.Range (Some "a", Some "z"))
        (Linearize.Keys [ ("a", "1"); ("c", "3") ])
        3 4;
    ]

(* --- the version-word read-validate protocol (OLC) --- *)

(* One writer mutates a two-field record under the version-word protocol
   (lock; write a; write b; publish) while a reader runs the optimistic
   side (snapshot; read a; read b; validate). Exhaustively explore the
   interleavings: a successful validate must imply a consistent pair on
   every schedule, and the torn-read window must actually be reachable
   (some schedule reads a half-applied pair — and validate rejects it).
   This pins the ordering contract the buffer pool's unpin audit and
   [Olc] rely on. *)
let test_version_torn_read_window () =
  let torn_rejected = ref 0 and clean_reads = ref 0 in
  let run decisions =
    let w = Version.make ~name:"n" 0 in
    let a = ref 0 and b = ref 0 in
    let writer () =
      Version.lock w;
      incr a;
      (* the mid-mutation instant a torn reader could observe *)
      Sched_hook.yield Sched_hook.Version "ver:mid-write";
      incr b;
      Version.publish w 1
    in
    let reader () =
      let v = Version.snapshot w in
      if not (Version.is_locked v) then begin
        let ra = !a in
        Sched_hook.yield Sched_hook.Version "ver:mid-read";
        let rb = !b in
        if Version.validate w v then begin
          incr clean_reads;
          if ra <> rb then
            failwith (Printf.sprintf "validated a torn read: a=%d b=%d" ra rb)
        end
        else if ra <> rb then incr torn_rejected
      end
    in
    Sim.run
      { Sim.default_config with Sim.policy = Sim.Replay decisions }
      [ writer; reader ]
  in
  let stats, failing = Sim.explore ~max_preemptions:4 ~branch_depth:10 ~run () in
  (match failing with
  | None -> ()
  | Some (prefix, o) ->
      Alcotest.failf "torn read validated at prefix %s: %a"
        (Sim.schedule_to_string prefix)
        Fmt.(option Sim.pp_failure)
        o.Sim.failure);
  Alcotest.(check bool) "explored more than one schedule" true
    (stats.Sim.schedules_run > 1);
  Alcotest.(check bool) "the torn window is reachable (and rejected)" true
    (!torn_rejected > 0);
  Alcotest.(check bool) "some reads validated" true (!clean_reads > 0)

(* --- the oracles catch injected protocol bugs --- *)

(* Dropping the X latch mid-split (after records moved to the sibling,
   before the fence shrinks) lets a concurrent reader miss committed keys:
   the linearizability oracle must object within a few random walks, and
   the minimized schedule must still fail. *)
let test_injected_early_unlatch_caught () =
  Seeds.guard "sim.bug.early-unlatch" @@ fun () ->
  let cfg =
    {
      Scenario.default with
      Scenario.bug = Blink.Testing.Early_unlatch_split;
    }
  in
  match Scenario.random_walks cfg ~walks:120 ~seed:(Seeds.derive "sim.walks") with
  | _, None -> Alcotest.fail "oracle missed the injected early-unlatch bug"
  | _, Some (wseed, r) ->
      Alcotest.(check bool) "report failed" true (Scenario.failed r);
      let sched = r.Scenario.outcome.Sim.schedule in
      let small = Scenario.minimize cfg sched in
      Alcotest.(check bool) "minimized no longer than original" true
        (List.length small <= List.length sched);
      let r' = Scenario.replay cfg small in
      if not (Scenario.failed r') then
        Alcotest.failf "minimized schedule of walk %Ld no longer fails" wseed

(* A writer that skips its version bump defeats optimistic validation:
   readers can validate a read that raced a split or a consolidation and
   return an answer no linearization explains. Only a workload heavy
   enough to split and consolidate under contention exposes it, so this
   runs the scenario at 4 fibers x 8 ops over 16 keys. *)
let test_injected_no_version_bump_caught () =
  Seeds.guard "sim.bug.no-version-bump" @@ fun () ->
  let cfg =
    {
      Scenario.default with
      Scenario.bug = Blink.Testing.No_version_bump;
      consolidation = true;
      olc = true;
      threads = 4;
      ops_per_thread = 8;
      key_space = 16;
      preload = 12;
    }
  in
  match
    Scenario.random_walks cfg ~walks:400
      ~seed:(Seeds.derive "sim.bug.no-version-bump")
  with
  | _, None -> Alcotest.fail "oracle missed the injected no-version-bump bug"
  | _, Some (_, r) ->
      Alcotest.(check bool) "report failed" true (Scenario.failed r)

(* With write combining on, concurrent puts collide on publication slots
   and a leader applies whole batches as one atomic action; the extra
   publish/elect/apply/broadcast yield points open those interleavings to
   the scheduler and every schedule must still linearize. *)
let test_combine_clean_walks () =
  Seeds.guard "sim.combine.walks" @@ fun () ->
  let cfg = { Scenario.default with Scenario.combine = true } in
  match
    Scenario.random_walks cfg ~walks:40 ~seed:(Seeds.derive "sim.combine.walks")
  with
  | _, None -> ()
  | _, Some (wseed, r) ->
      Alcotest.failf "combining schedule (walk seed %Ld) failed: %a" wseed
        Scenario.pp_report r

(* A combiner that acknowledges followers before the batch is applied and
   committed hands out results for writes that are neither visible nor
   durable: a follower's later read of its own key misses the write, and
   the linearizability oracle must object. The bug only manifests through
   the combining funnel, so the scenario forces [combine = true]. *)
let test_injected_ack_before_durable_caught () =
  Seeds.guard "sim.bug.ack-before-durable" @@ fun () ->
  let cfg =
    {
      Scenario.default with
      Scenario.combine = true;
      Scenario.bug = Blink.Testing.Ack_before_durable;
    }
  in
  match
    Scenario.random_walks cfg ~walks:200
      ~seed:(Seeds.derive "sim.bug.ack-before-durable")
  with
  | _, None -> Alcotest.fail "oracle missed the injected ack-before-durable bug"
  | _, Some (_, r) ->
      Alcotest.(check bool) "report failed" true (Scenario.failed r)

(* A separator one byte short violates section 2.1.3 condition 3 (the index
   term describes space the child is not responsible for): the
   well-formedness oracle must reject the tree. *)
let test_injected_bad_sep_caught () =
  let cfg =
    { Scenario.default with Scenario.bug = Blink.Testing.Bad_post_sep }
  in
  let r = Scenario.replay cfg [] in
  Alcotest.(check bool) "oracle objects" true (Scenario.failed r)

(* --- clean sweeps: no false positives --- *)

let clean_sweep engine () =
  Seeds.guard ("sim.sweep." ^ Scenario.engine_to_string engine) @@ fun () ->
  let cfg = small_cfg engine in
  let seed = Seeds.derive ("sim.sweep." ^ Scenario.engine_to_string engine) in
  match Scenario.random_walks cfg ~walks:25 ~seed with
  | n, None -> Alcotest.(check int) "all walks run" 25 n
  | _, Some (wseed, r) ->
      Alcotest.failf "clean %s run failed at walk seed %Ld: %a"
        (Scenario.engine_to_string engine)
        wseed Scenario.pp_report r

let test_systematic_smoke () =
  let cfg = small_cfg Scenario.Blink in
  let stats, failing =
    Scenario.systematic ~max_preemptions:2 ~branch_depth:5 ~max_schedules:120
      cfg
  in
  Alcotest.(check bool) "ran schedules" true (stats.Sim.schedules_run >= 1);
  match failing with
  | None -> ()
  | Some (prefix, r) ->
      Alcotest.failf "systematic found a failure at prefix %s: %a"
        (Sim.schedule_to_string prefix)
        Scenario.pp_report r

let suites =
  [
    ( "sim.scheduler",
      [
        Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
        Alcotest.test_case "schedule string roundtrip" `Quick
          test_schedule_string_roundtrip;
        Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
      ] );
    ( "sim.linearize",
      [
        Alcotest.test_case "sequential" `Quick test_linearize_sequential;
        Alcotest.test_case "concurrent overlap" `Quick
          test_linearize_concurrent_orders;
        Alcotest.test_case "stale read" `Quick test_linearize_stale_read_illegal;
        Alcotest.test_case "lost update" `Quick
          test_linearize_lost_update_illegal;
        Alcotest.test_case "blind del + range" `Quick
          test_linearize_blind_del_and_range;
      ] );
    ( "sim.version",
      [
        Alcotest.test_case "torn-read window rejected" `Quick
          test_version_torn_read_window;
      ] );
    ( "sim.oracle",
      [
        Alcotest.test_case "early unlatch caught" `Slow
          test_injected_early_unlatch_caught;
        Alcotest.test_case "no version bump caught" `Slow
          test_injected_no_version_bump_caught;
        Alcotest.test_case "combining clean walks" `Slow
          test_combine_clean_walks;
        Alcotest.test_case "ack before durable caught" `Slow
          test_injected_ack_before_durable_caught;
        Alcotest.test_case "bad separator caught" `Slow
          test_injected_bad_sep_caught;
        Alcotest.test_case "blink clean sweep" `Slow
          (clean_sweep Scenario.Blink);
        Alcotest.test_case "tsb clean sweep" `Slow (clean_sweep Scenario.Tsb);
        Alcotest.test_case "hb clean sweep" `Slow (clean_sweep Scenario.Hb);
        Alcotest.test_case "systematic smoke" `Slow test_systematic_smoke;
      ] );
  ]
