(* Tests for the storage fault-injection layer: Disk.Faulty, page
   checksums, buffer-pool retry, torn-write recovery, and the chaos
   harness. *)

module Page = Pitree_storage.Page
module Disk = Pitree_storage.Disk
module Buffer_pool = Pitree_storage.Buffer_pool
module Log_manager = Pitree_wal.Log_manager
module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Wellformed = Pitree_core.Wellformed
module Chaos = Pitree_harness.Chaos

let page_size = 256

(* All fault seeds offset a PITREE_SEED-derived base, so the whole file
   reseeds together while call sites keep distinct streams. *)
let fault_base = Seeds.derive "faults"

let mk_faulty ?(seed = 11L) ?(plan = Disk.Faulty.no_faults) () =
  Disk.Faulty.wrap ~seed:(Int64.add fault_base seed) ~plan
    (Disk.in_memory ~page_size)

let image c = Bytes.make page_size c

let is_transient = function
  | Disk.Disk_error { transient; _ } -> transient
  | _ -> Alcotest.fail "expected Disk_error"

(* --- Disk.Faulty unit tests --- *)

let test_no_faults_passthrough () =
  let disk, ctl = mk_faulty () in
  disk.Disk.write 3 (image 'x');
  let buf = image '\000' in
  disk.Disk.read 3 buf;
  Alcotest.(check bytes) "roundtrip" (image 'x') buf;
  let c = Disk.Faulty.counters ctl in
  Alcotest.(check int) "no faults drawn" 0
    (c.Disk.Faulty.torn_writes + c.Disk.Faulty.transient_reads
   + c.Disk.Faulty.transient_writes + c.Disk.Faulty.bit_flips
   + c.Disk.Faulty.fail_stops)

let test_transient_read () =
  let plan = { Disk.Faulty.no_faults with Disk.Faulty.transient_read = 1.0 } in
  let disk, ctl = mk_faulty () in
  disk.Disk.write 1 (image 'a');
  Disk.Faulty.set_plan ctl plan;
  let buf = image '\000' in
  (match disk.Disk.read 1 buf with
  | () -> Alcotest.fail "read should have failed"
  | exception e -> Alcotest.(check bool) "transient" true (is_transient e));
  Disk.Faulty.set_plan ctl Disk.Faulty.no_faults;
  disk.Disk.read 1 buf;
  Alcotest.(check bytes) "content untouched" (image 'a') buf;
  Alcotest.(check int) "counted" 1
    (Disk.Faulty.counters ctl).Disk.Faulty.transient_reads

let test_transient_write_writes_nothing () =
  let disk, ctl = mk_faulty () in
  disk.Disk.write 1 (image 'a');
  Disk.Faulty.set_plan ctl
    { Disk.Faulty.no_faults with Disk.Faulty.transient_write = 1.0 };
  (match disk.Disk.write 1 (image 'b') with
  | () -> Alcotest.fail "write should have failed"
  | exception e -> Alcotest.(check bool) "transient" true (is_transient e));
  Disk.Faulty.set_plan ctl Disk.Faulty.no_faults;
  let buf = image '\000' in
  disk.Disk.read 1 buf;
  Alcotest.(check bytes) "old image intact" (image 'a') buf

let test_bit_flip_is_read_only () =
  let disk, ctl = mk_faulty () in
  disk.Disk.write 1 (image 'a');
  Disk.Faulty.set_plan ctl
    { Disk.Faulty.no_faults with Disk.Faulty.bit_flip = 1.0 };
  let flipped = image '\000' in
  disk.Disk.read 1 flipped;
  let diff_bits = ref 0 in
  Bytes.iteri
    (fun i c ->
      let x = Char.code c lxor Char.code (Bytes.get (image 'a') i) in
      let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
      diff_bits := !diff_bits + pop x)
    flipped;
  Alcotest.(check int) "exactly one bit flipped" 1 !diff_bits;
  Disk.Faulty.set_plan ctl Disk.Faulty.no_faults;
  let clean = image '\000' in
  disk.Disk.read 1 clean;
  Alcotest.(check bytes) "durable image clean" (image 'a') clean

let test_torn_write () =
  let disk, ctl = mk_faulty () in
  disk.Disk.write 1 (image 'a');
  Disk.Faulty.set_plan ctl
    { Disk.Faulty.no_faults with Disk.Faulty.torn_write = 1.0 };
  (match disk.Disk.write 1 (image 'b') with
  | () -> Alcotest.fail "torn write should raise"
  | exception e ->
      Alcotest.(check bool) "non-transient" false (is_transient e));
  Disk.Faulty.set_plan ctl Disk.Faulty.no_faults;
  let buf = image '\000' in
  disk.Disk.read 1 buf;
  Alcotest.(check char) "prefix is new" 'b' (Bytes.get buf 0);
  Alcotest.(check char) "tail is old" 'a' (Bytes.get buf (page_size - 1));
  Alcotest.(check int) "counted" 1
    (Disk.Faulty.counters ctl).Disk.Faulty.torn_writes

let test_fail_stop () =
  let disk, ctl = mk_faulty () in
  disk.Disk.write 1 (image 'a');
  (* The setup write above already counted as one operation. *)
  Disk.Faulty.set_plan ctl
    { Disk.Faulty.no_faults with Disk.Faulty.fail_stop_after = Some 3 };
  let buf = image '\000' in
  disk.Disk.read 1 buf;
  disk.Disk.read 1 buf;
  (match disk.Disk.read 1 buf with
  | () -> Alcotest.fail "device should be dead"
  | exception e ->
      Alcotest.(check bool) "non-transient" false (is_transient e));
  Alcotest.check_raises "stays dead"
    (Disk.Disk_error { pid = 1; op = "write"; transient = false })
    (fun () -> disk.Disk.write 1 (image 'b'));
  Alcotest.(check bool) "counted" true
    ((Disk.Faulty.counters ctl).Disk.Faulty.fail_stops >= 2)

let test_protected_pids () =
  let plan =
    {
      Disk.Faulty.no_faults with
      Disk.Faulty.transient_read = 1.0;
      protected_pids = [ 5 ];
    }
  in
  let disk, ctl = mk_faulty () in
  disk.Disk.write 5 (image 'm');
  disk.Disk.write 6 (image 'd');
  Disk.Faulty.set_plan ctl plan;
  let buf = image '\000' in
  disk.Disk.read 5 buf;
  Alcotest.(check bytes) "protected page reads fine" (image 'm') buf;
  Alcotest.check_raises "unprotected page faults"
    (Disk.Disk_error { pid = 6; op = "read"; transient = true })
    (fun () -> disk.Disk.read 6 buf)

(* --- page checksum tests --- *)

let mk_stamped () =
  let p = Page.create ~size:page_size ~id:9 ~kind:Page.Data ~level:0 in
  Page.insert p 0 "hello";
  Page.insert p 1 "world";
  Page.stamp_checksum p;
  p

let test_checksum_roundtrip () =
  let p = mk_stamped () in
  Alcotest.(check bool) "checksum_ok" true (Page.checksum_ok p);
  let q = Page.of_durable ~id:9 (Bytes.copy (Page.raw p)) in
  Alcotest.(check string) "cells survive" "hello" (Page.get q 0)

let test_checksum_stale_after_mutation () =
  let p = mk_stamped () in
  Page.insert p 2 "more";
  Alcotest.(check bool) "stale" false (Page.checksum_ok p)

let test_corrupt_byte_detected () =
  let p = mk_stamped () in
  let buf = Bytes.copy (Page.raw p) in
  (* Flip a bit in the cell area (far from the header). *)
  let off = page_size - 3 in
  Bytes.set buf off (Char.chr (Char.code (Bytes.get buf off) lxor 0x10));
  match Page.of_durable ~id:9 buf with
  | _ -> Alcotest.fail "corruption undetected"
  | exception Page.Corrupt { pid = 9; what = Page.Checksum _ } -> ()
  | exception Page.Corrupt _ -> Alcotest.fail "wrong corruption class"

let test_torn_header_detected () =
  let buf = Bytes.make page_size '\000' in
  match Page.of_durable ~id:4 buf with
  | _ -> Alcotest.fail "bad magic undetected"
  | exception Page.Corrupt { pid = 4; what = Page.Torn } -> ()
  | exception Page.Corrupt _ -> Alcotest.fail "wrong corruption class"

(* --- buffer-pool retry tests --- *)

let mk_pool ?(capacity = 8) disk =
  Buffer_pool.create ~capacity ~disk ~wal_flush:(fun _ -> ()) ()

let seed_pages disk n =
  let clean = mk_pool disk in
  for pid = 1 to n do
    let fr = Buffer_pool.pin_new clean pid in
    let fresh =
      Page.create ~size:page_size ~id:pid ~kind:Page.Data ~level:0
    in
    Bytes.blit (Page.raw fresh) 0 (Page.raw fr.Buffer_pool.page) 0 page_size;
    Page.insert fr.Buffer_pool.page 0 (Printf.sprintf "cell%d" pid);
    Buffer_pool.mark_dirty fr;
    Buffer_pool.unpin clean fr
  done;
  Buffer_pool.flush_all clean

let test_pool_absorbs_transient_reads () =
  let disk, ctl = mk_faulty ~seed:3L () in
  seed_pages disk 24;
  Disk.Faulty.set_plan ctl
    { Disk.Faulty.no_faults with Disk.Faulty.transient_read = 0.3 };
  let pool = mk_pool disk in
  for pid = 1 to 24 do
    let fr = Buffer_pool.pin pool pid in
    Alcotest.(check string)
      "right content"
      (Printf.sprintf "cell%d" pid)
      (Page.get fr.Buffer_pool.page 0);
    Buffer_pool.unpin pool fr
  done;
  let s = Buffer_pool.stats pool in
  Alcotest.(check bool) "retries happened" true (s.Buffer_pool.retried_reads > 0);
  Alcotest.(check bool) "counter matches" true
    ((Disk.Faulty.counters ctl).Disk.Faulty.transient_reads > 0)

let test_pool_absorbs_bit_flips () =
  let disk, ctl = mk_faulty ~seed:4L () in
  seed_pages disk 16;
  Disk.Faulty.set_plan ctl
    { Disk.Faulty.no_faults with Disk.Faulty.bit_flip = 0.4 };
  let pool = mk_pool disk in
  for pid = 1 to 16 do
    let fr = Buffer_pool.pin pool pid in
    Alcotest.(check string)
      "no silent corruption"
      (Printf.sprintf "cell%d" pid)
      (Page.get fr.Buffer_pool.page 0);
    Buffer_pool.unpin pool fr
  done;
  Alcotest.(check bool) "flips were drawn" true
    ((Disk.Faulty.counters ctl).Disk.Faulty.bit_flips > 0)

let test_pool_absorbs_transient_writes () =
  let disk, ctl = mk_faulty ~seed:5L () in
  Disk.Faulty.set_plan ctl
    { Disk.Faulty.no_faults with Disk.Faulty.transient_write = 0.5 };
  let pool = mk_pool ~capacity:32 disk in
  for pid = 1 to 16 do
    let fr = Buffer_pool.pin_new pool pid in
    let fresh =
      Page.create ~size:page_size ~id:pid ~kind:Page.Data ~level:0
    in
    Bytes.blit (Page.raw fresh) 0 (Page.raw fr.Buffer_pool.page) 0 page_size;
    Page.insert fr.Buffer_pool.page 0 "x";
    Buffer_pool.mark_dirty fr;
    Buffer_pool.unpin pool fr
  done;
  Buffer_pool.flush_all pool;
  let s = Buffer_pool.stats pool in
  Alcotest.(check bool) "write retries happened" true
    (s.Buffer_pool.retried_writes > 0);
  Disk.Faulty.set_plan ctl Disk.Faulty.no_faults;
  let pool2 = mk_pool disk in
  for pid = 1 to 16 do
    let fr = Buffer_pool.pin pool2 pid in
    Alcotest.(check string) "flushed despite faults" "x"
      (Page.get fr.Buffer_pool.page 0);
    Buffer_pool.unpin pool2 fr
  done

(* --- end-to-end: torn write on a data page, then crash and recovery --- *)

let cfg =
  {
    Env.default_config with
    page_size;
    pool_capacity = 64;
    page_oriented_undo = false;
    consolidation = true;
  }

let key i = Printf.sprintf "key%04d" i

let test_torn_page_recovery () =
  let disk, ctl = mk_faulty ~seed:21L () in
  let env = Env.create ~disk cfg in
  let t = Blink.create env ~name:"t" in
  for i = 0 to 199 do
    Blink.insert t ~key:(key i) ~value:(string_of_int i)
  done;
  ignore (Env.drain env);
  Buffer_pool.flush_all (Env.pool env);
  (* Dirty more pages, make their log records durable, then tear the first
     dirty-page write of the final flush. *)
  for i = 200 to 299 do
    Blink.insert t ~key:(key i) ~value:(string_of_int i)
  done;
  ignore (Env.drain env);
  Log_manager.flush_all (Env.log env);
  Disk.Faulty.set_plan ctl
    {
      Disk.Faulty.no_faults with
      Disk.Faulty.torn_write = 1.0;
      protected_pids = [ 1 ];
    };
  (match Buffer_pool.flush_all (Env.pool env) with
  | () -> Alcotest.fail "flush should hit the torn write"
  | exception Disk.Disk_error { transient = false; _ } -> ());
  Alcotest.(check int) "one torn write" 1
    (Disk.Faulty.counters ctl).Disk.Faulty.torn_writes;
  Disk.Faulty.set_plan ctl Disk.Faulty.no_faults;
  Env.crash env;
  let report = Env.recover env in
  Alcotest.(check bool) "torn page detected and rebuilt" true
    (report.Pitree_wal.Recovery.torn_pages >= 1);
  let t = Option.get (Blink.open_existing env ~name:"t") in
  for i = 0 to 299 do
    Alcotest.(check (option string))
      (key i)
      (Some (string_of_int i))
      (Blink.find t (key i))
  done;
  Alcotest.(check bool) "wellformed" true (Wellformed.ok (Blink.verify t))

(* --- recovery under a flaky read path --- *)

let test_recovery_with_transient_reads () =
  let disk, ctl = mk_faulty ~seed:22L () in
  let env = Env.create ~disk cfg in
  let t = Blink.create env ~name:"t" in
  for i = 0 to 299 do
    Blink.insert t ~key:(key i) ~value:(string_of_int i)
  done;
  ignore (Env.drain env);
  Log_manager.flush_all (Env.log env);
  Buffer_pool.flush_all (Env.pool env);
  (* 30% transient read errors across restart: recovery and the reloads
     below must absorb them all. *)
  Disk.Faulty.set_plan ctl
    { Disk.Faulty.no_faults with Disk.Faulty.transient_read = 0.3 };
  Env.crash env;
  ignore (Env.recover env);
  let t = Option.get (Blink.open_existing env ~name:"t") in
  for i = 0 to 299 do
    Alcotest.(check (option string))
      (key i)
      (Some (string_of_int i))
      (Blink.find t (key i))
  done;
  let s = Buffer_pool.stats (Env.pool env) in
  Alcotest.(check bool) "retries observable" true
    (s.Buffer_pool.retried_reads > 0);
  Disk.Faulty.set_plan ctl Disk.Faulty.no_faults;
  Alcotest.(check bool) "wellformed" true (Wellformed.ok (Blink.verify t))

(* --- chaos harness --- *)

let test_chaos_sweep () =
  let s = Chaos.sweep ~ops:400 () in
  Alcotest.(check bool) "every point swept" true (s.Chaos.runs >= 39);
  Alcotest.(check bool) "most crashes fired" true (s.Chaos.fired > 0);
  (match s.Chaos.failures with
  | [] -> ()
  | o :: _ ->
      Alcotest.failf "sweep failures: %a" (fun ppf -> Chaos.pp_outcome ppf) o);
  Alcotest.(check bool) "ok" true (Chaos.ok s)

let test_chaos_random () =
  let s = Chaos.random_runs ~ops:300 ~iters:6 ~seed:(Int64.add fault_base 9L) () in
  Alcotest.(check int) "all runs executed" 6 s.Chaos.runs;
  (match s.Chaos.failures with
  | [] -> ()
  | o :: _ ->
      Alcotest.failf "random failures: %a" (fun ppf -> Chaos.pp_outcome ppf) o);
  Alcotest.(check bool) "ok" true (Chaos.ok s)

(* Every case prints the PITREE_SEED replay line if it fails. *)
let tc name speed f =
  Alcotest.test_case name speed (fun () -> Seeds.guard ("faults." ^ name) f)

let suites =
  [
    ( "faults.disk",
      [
        tc "passthrough" `Quick test_no_faults_passthrough;
        tc "transient read" `Quick test_transient_read;
        tc "transient write" `Quick
          test_transient_write_writes_nothing;
        tc "bit flip" `Quick test_bit_flip_is_read_only;
        tc "torn write" `Quick test_torn_write;
        tc "fail stop" `Quick test_fail_stop;
        tc "protected pids" `Quick test_protected_pids;
      ] );
    ( "faults.checksum",
      [
        tc "roundtrip" `Quick test_checksum_roundtrip;
        tc "stale when dirty" `Quick
          test_checksum_stale_after_mutation;
        tc "corrupt byte" `Quick test_corrupt_byte_detected;
        tc "torn header" `Quick test_torn_header_detected;
      ] );
    ( "faults.pool",
      [
        tc "transient reads absorbed" `Quick
          test_pool_absorbs_transient_reads;
        tc "bit flips absorbed" `Quick
          test_pool_absorbs_bit_flips;
        tc "transient writes absorbed" `Quick
          test_pool_absorbs_transient_writes;
      ] );
    ( "faults.recovery",
      [
        tc "torn page rebuilt from log" `Quick
          test_torn_page_recovery;
        tc "flaky reads across restart" `Quick
          test_recovery_with_transient_reads;
      ] );
    ( "faults.chaos",
      [
        tc "crash-point sweep" `Slow test_chaos_sweep;
        tc "randomized runs" `Slow test_chaos_random;
      ] );
  ]
