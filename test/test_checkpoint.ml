(* Fuzzy checkpoints: exact ATT/DPT snapshots under live transactions,
   truncation safety, bounded restart, and cross-process restart after the
   log has been physically truncated. *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Disk = Pitree_storage.Disk
module Log_manager = Pitree_wal.Log_manager
module Recovery = Pitree_wal.Recovery
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Wellformed = Pitree_core.Wellformed

let cfg =
  {
    Env.default_config with
    page_size = 256;
    pool_capacity = 256;
    page_oriented_undo = false;
    consolidation = true;
  }

let key d i = Printf.sprintf "d%dk%05d" d i

(* Fuzzy checkpoints taken while writer domains commit and an uncommitted
   transaction stays open: after a crash, recovery from the checkpoint must
   keep exactly the committed updates — none lost (the checkpoint must not
   claim undurable work as durable), none double-applied (redo is
   LSN-guarded), losers rolled back. *)
let test_fuzzy_concurrent_with_writers () =
  let env = Env.create cfg in
  let t = Blink.create env ~name:"t" in
  let mgr = Env.txns env in
  (* Uncommitted transaction spanning every checkpoint below. *)
  let unc = Txn_mgr.begin_txn mgr Txn.User in
  let unc_keys = List.init 16 (fun i -> Printf.sprintf "unc%04d" i) in
  List.iter (fun k -> Blink.insert ~txn:unc t ~key:k ~value:"doomed") unc_keys;
  let per = 400 in
  let writers =
    List.init 2 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Blink.insert t ~key:(key d i) ~value:(Printf.sprintf "v%d.%d" d i)
            done))
  in
  (* Checkpoint repeatedly while the writers run. *)
  for _ = 1 to 5 do
    Env.checkpoint ~mode:`Fuzzy env;
    Thread.delay 0.001
  done;
  List.iter Domain.join writers;
  Env.checkpoint ~mode:`Fuzzy env;
  let total_records = Log_manager.last_lsn (Env.log env) in
  Log_manager.flush_all (Env.log env);
  Env.crash env;
  let report = Env.recover env in
  let t = Option.get (Blink.open_existing env ~name:"t") in
  Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t));
  for d = 0 to 1 do
    for i = 0 to per - 1 do
      Alcotest.(check (option string))
        (key d i)
        (Some (Printf.sprintf "v%d.%d" d i))
        (Blink.find t (key d i))
    done
  done;
  List.iter
    (fun k ->
      Alcotest.(check (option string)) (k ^ " rolled back") None (Blink.find t k))
    unc_keys;
  Alcotest.(check bool)
    (Printf.sprintf "analysis bounded (%d analyzed, %d total records)"
       report.Recovery.analyzed total_records)
    true
    (report.Recovery.analyzed < total_records)

(* Checkpoints racing live aborts: begin_checkpoint waits out in-flight
   rollbacks (the [undoing] counter), so the snapshot never captures a
   mid-abort transaction whose CLRs it cannot see. *)
let test_fuzzy_concurrent_with_aborts () =
  let env = Env.create cfg in
  let t = Blink.create env ~name:"t" in
  let mgr = Env.txns env in
  let aborter =
    Domain.spawn (fun () ->
        for i = 0 to 149 do
          let txn = Txn_mgr.begin_txn mgr Txn.User in
          Blink.insert ~txn t ~key:(Printf.sprintf "ab%04d" i) ~value:"x";
          Txn_mgr.abort mgr txn
        done)
  in
  for _ = 1 to 8 do
    Env.checkpoint ~mode:`Fuzzy env
  done;
  Domain.join aborter;
  Env.checkpoint ~mode:`Fuzzy env;
  Log_manager.flush_all (Env.log env);
  Env.crash env;
  ignore (Env.recover env);
  let t = Option.get (Blink.open_existing env ~name:"t") in
  Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t));
  for i = 0 to 149 do
    Alcotest.(check (option string))
      (Printf.sprintf "aborted ab%04d stays gone" i)
      None
      (Blink.find t (Printf.sprintf "ab%04d" i))
  done

(* Truncation floor: after a checkpoint, every record at or above the redo
   point — and the full backchain of any live transaction — survives. *)
let test_truncation_floor () =
  let env = Env.create cfg in
  let t = Blink.create env ~name:"t" in
  for i = 0 to 299 do
    Blink.insert t ~key:(Printf.sprintf "k%05d" i) ~value:"v"
  done;
  ignore (Env.drain env);
  let mgr = Env.txns env in
  (* A live transaction whose Begin predates the checkpoint: its records
     must survive truncation so a later abort can roll it back. *)
  let live = Txn_mgr.begin_txn mgr Txn.User in
  Blink.insert ~txn:live t ~key:"live0" ~value:"tentative";
  let live_first = live.Txn.first_lsn in
  Env.checkpoint ~mode:`Fuzzy env;
  let log = Env.log env in
  let first = Log_manager.first_lsn log in
  let redo = Log_manager.redo_start log in
  Alcotest.(check bool) "something was truncated" true (first > 1);
  Alcotest.(check bool) "redo point survives" true (first <= redo);
  Alcotest.(check bool) "live txn backchain survives" true (first <= live_first);
  ignore (Log_manager.read log redo);
  ignore (Log_manager.read log live_first);
  Alcotest.(check bool) "below the floor is gone" true
    (first = 1
    || match Log_manager.read log (first - 1) with
       | exception Invalid_argument _ -> true
       | _ -> false);
  (* The live transaction can still abort through the truncated log. *)
  Txn_mgr.abort mgr live;
  Alcotest.(check (option string)) "tentative update undone" None
    (Blink.find t "live0");
  Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t))

(* Restart work is bounded by work-since-checkpoint, not total history:
   same workload with and without the log-bytes trigger. *)
let test_bounded_restart () =
  let run ~auto =
    let env =
      Env.create
        { cfg with Env.ckpt_log_bytes = (if auto then Some 16_384 else None) }
    in
    let t = Blink.create env ~name:"t" in
    for i = 0 to 1_499 do
      Blink.insert t ~key:(Printf.sprintf "k%05d" i) ~value:"v"
    done;
    ignore (Env.drain env);
    Log_manager.flush_all (Env.log env);
    Env.crash env;
    let report = Env.recover env in
    let t = Option.get (Blink.open_existing env ~name:"t") in
    Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t));
    Alcotest.(check (option string)) "data intact" (Some "v")
      (Blink.find t "k00042");
    (report.Recovery.analyzed, (Env.stats env).Env.checkpoints)
  in
  let with_ckpt, ckpts = run ~auto:true in
  let without, _ = run ~auto:false in
  Alcotest.(check bool) "trigger fired" true (ckpts > 1);
  Alcotest.(check bool)
    (Printf.sprintf "analysis bounded: %d (ckpt) vs %d (none)" with_ckpt without)
    true
    (with_ckpt < without / 2)

(* Cross-process restart after physical truncation: the WAL file was
   rewritten (prefix dropped, fd swapped); a fresh process must reload it,
   find the master record, and recover. The file must also have shrunk. *)
let test_open_from_after_truncation () =
  let dir = Filename.temp_file "pitree_ckpt" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let pages = Filename.concat dir "pages.db" in
      let wal = Filename.concat dir "wal.log" in
      let fcfg = { cfg with Env.log_path = Some wal } in
      let env =
        Env.create ~disk:(Disk.file ~page_size:256 ~path:pages) fcfg
      in
      let t = Blink.create env ~name:"t" in
      for i = 0 to 599 do
        Blink.insert t ~key:(Printf.sprintf "k%05d" i) ~value:"v"
      done;
      ignore (Env.drain env);
      let before = Option.get (Log_manager.file_bytes (Env.log env)) in
      Env.checkpoint ~mode:`Fuzzy env;
      let after = Option.get (Log_manager.file_bytes (Env.log env)) in
      Alcotest.(check bool)
        (Printf.sprintf "WAL file shrank (%d -> %d bytes)" before after)
        true (after < before);
      (* More work after the truncation, then a clean close. *)
      for i = 600 to 799 do
        Blink.insert t ~key:(Printf.sprintf "k%05d" i) ~value:"v"
      done;
      ignore (Env.drain env);
      Env.close env;
      (* "Process 2". *)
      let env2 = Env.open_from ~disk:(Disk.file ~page_size:256 ~path:pages) fcfg in
      let report = Env.recover env2 in
      Alcotest.(check (list int)) "no losers" [] report.Recovery.loser_txns;
      let t2 = Option.get (Blink.open_existing env2 ~name:"t") in
      Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t2));
      for i = 0 to 799 do
        Alcotest.(check (option string))
          (Printf.sprintf "k%05d" i)
          (Some "v")
          (Blink.find t2 (Printf.sprintf "k%05d" i))
      done;
      Env.close env2)

(* A torn durable image after truncation: the page's pre-checkpoint history
   is no longer in the log, so rebuilding it depends on the full-page-write
   record logged at its clean→dirty transition. Without full-page writes
   redo would apply slot operations to an empty page and die (or lose the
   page); with them, every committed update survives. *)
let test_torn_page_after_truncation () =
  let base = Disk.in_memory ~page_size:256 in
  let disk, ctl = Disk.Faulty.wrap ~seed:7L base in
  let env = Env.create ~disk cfg in
  let t = Blink.create env ~name:"t" in
  for i = 0 to 399 do
    Blink.insert t ~key:(Printf.sprintf "k%05d" i) ~value:"v1"
  done;
  ignore (Env.drain env);
  (* Flushes every page clean and truncates their history out of the log. *)
  Env.checkpoint ~mode:`Fuzzy env;
  Alcotest.(check bool) "history truncated" true
    (Log_manager.first_lsn (Env.log env) > 1);
  (* Re-dirty the pages: each clean→dirty transition must log an image. *)
  for i = 0 to 399 do
    Blink.insert t ~key:(Printf.sprintf "k%05d" i) ~value:"v2"
  done;
  ignore (Env.drain env);
  Log_manager.flush_all (Env.log env);
  (* Power failure mid-flush: every dirty page's durable image tears. *)
  Disk.Faulty.set_plan ctl
    {
      Disk.Faulty.no_faults with
      Disk.Faulty.torn_write = 1.0;
      protected_pids = [ 1 ];
    };
  (try Pitree_storage.Buffer_pool.flush_all (Env.pool env)
   with Disk.Disk_error _ -> ());
  Disk.Faulty.set_plan ctl Disk.Faulty.no_faults;
  Env.crash env;
  let report = Env.recover env in
  Alcotest.(check bool) "some pages were torn" true
    (report.Recovery.torn_pages > 0);
  let t = Option.get (Blink.open_existing env ~name:"t") in
  Alcotest.(check bool) "well-formed" true (Wellformed.ok (Blink.verify t));
  for i = 0 to 399 do
    Alcotest.(check (option string))
      (Printf.sprintf "k%05d rebuilt from page image" i)
      (Some "v2")
      (Blink.find t (Printf.sprintf "k%05d" i))
  done

let test_open_from_requires_log_path () =
  Alcotest.(check bool) "open_from without log_path rejected" true
    (match Env.open_from cfg with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Checkpoint stats surface through Env.stats. *)
let test_ckpt_stats () =
  let env = Env.create cfg in
  let t = Blink.create env ~name:"t" in
  for i = 0 to 199 do
    Blink.insert t ~key:(Printf.sprintf "k%05d" i) ~value:"v"
  done;
  ignore (Env.drain env);
  let s0 = Env.stats env in
  Env.checkpoint ~mode:`Fuzzy env;
  let s1 = Env.stats env in
  Alcotest.(check int) "checkpoint counted" (s0.Env.checkpoints + 1)
    s1.Env.checkpoints;
  Alcotest.(check bool) "pages written back" true
    (s1.Env.ckpt_pages_written > s0.Env.ckpt_pages_written);
  Alcotest.(check bool) "records truncated" true
    (s1.Env.ckpt_records_truncated > s0.Env.ckpt_records_truncated)

let suites =
  [
    ( "checkpoint",
      [
        Alcotest.test_case "fuzzy with concurrent writers" `Quick
          test_fuzzy_concurrent_with_writers;
        Alcotest.test_case "fuzzy with concurrent aborts" `Quick
          test_fuzzy_concurrent_with_aborts;
        Alcotest.test_case "truncation floor" `Quick test_truncation_floor;
        Alcotest.test_case "bounded restart" `Quick test_bounded_restart;
        Alcotest.test_case "open_from after truncation" `Quick
          test_open_from_after_truncation;
        Alcotest.test_case "torn page after truncation" `Quick
          test_torn_page_after_truncation;
        Alcotest.test_case "open_from requires log_path" `Quick
          test_open_from_requires_log_path;
        Alcotest.test_case "checkpoint stats" `Quick test_ckpt_stats;
      ] );
  ]
