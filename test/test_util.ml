(* Tests for pitree.util: PRNG, Zipf, histogram, codec. *)

module Rng = Pitree_util.Rng
module Zipf = Pitree_util.Zipf
module Histogram = Pitree_util.Histogram
module Codec = Pitree_util.Codec
module Bits = Pitree_util.Bits

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done;
  for _ = 1 to 10_000 do
    let f = Rng.float r 3.5 in
    if f < 0.0 || f >= 3.5 then Alcotest.failf "float out of bounds: %f" f
  done

let test_rng_split_independent () =
  let a = Rng.create 1L in
  let b = Rng.split a in
  let xs = List.init 32 (fun _ -> Rng.int64 a) in
  let ys = List.init 32 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_uniformity () =
  let r = Rng.create 99L in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int r 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d wildly off: %d vs %d" i c expected)
    counts

let test_shuffle_permutes () =
  let r = Rng.create 3L in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted;
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 100 Fun.id)

let test_zipf_uniform_theta0 () =
  let z = Zipf.create ~n:100 ~theta:0.0 in
  let r = Rng.create 5L in
  for _ = 1 to 1000 do
    let v = Zipf.sample z r in
    if v < 0 || v >= 100 then Alcotest.failf "zipf out of range: %d" v
  done

let test_zipf_skew () =
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let r = Rng.create 6L in
  let hot = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Zipf.sample z r < 10 then incr hot
  done;
  (* With theta=0.99 the top-10 of 1000 ranks should absorb far more than
     the uniform 1%. *)
  Alcotest.(check bool)
    (Printf.sprintf "top-10 ranks hot (%d/%d)" !hot n)
    true
    (float_of_int !hot /. float_of_int n > 0.2)

let test_zipf_bounds_high_skew () =
  let z = Zipf.create ~n:10 ~theta:1.2 in
  let r = Rng.create 11L in
  for _ = 1 to 10_000 do
    let v = Zipf.sample z r in
    if v < 0 || v >= 10 then Alcotest.failf "out of range: %d" v
  done

let test_histogram_basic () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 4; 8; 1000 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check int) "total" 1015 (Histogram.total h);
  Alcotest.(check int) "max" 1000 (Histogram.max_value h);
  Alcotest.(check bool) "mean" true (abs_float (Histogram.mean h -. 203.0) < 0.01)

let test_histogram_percentile () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.record h i
  done;
  let p50 = Histogram.percentile h 50.0 in
  let p99 = Histogram.percentile h 99.0 in
  Alcotest.(check bool) (Printf.sprintf "p50=%d in [256,1024]" p50) true (p50 >= 256 && p50 <= 1024);
  Alcotest.(check bool) (Printf.sprintf "p99=%d >= p50" p99) true (p99 >= p50)

let test_histogram_percentile_exact () =
  (* A single sample of 100 lands in bucket [64,128); every percentile
     reports that bucket's geometric midpoint round(2^6.5) = 91, never the
     exclusive upper bound 128 that used to overestimate by up to 2x. *)
  let h = Histogram.create () in
  Histogram.record h 100;
  Alcotest.(check int) "p50 of singleton" 91 (Histogram.percentile h 50.0);
  Alcotest.(check int) "p99 of singleton" 91 (Histogram.percentile h 99.0);
  (* 1..1000: rank ceil(500) falls in [256,512) -> 362; rank 990 falls in
     [512,1024) -> 724. *)
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.record h i
  done;
  Alcotest.(check int) "p50 of 1..1000" 362 (Histogram.percentile h 50.0);
  Alcotest.(check int) "p99 of 1..1000" 724 (Histogram.percentile h 99.0);
  (* Nearest-rank: with samples {1, 1000}, p50 is rank ceil(0.5*2) = 1, the
     FIRST sample — the old truncation skipped to the second bucket and
     returned 1024. *)
  let h = Histogram.create () in
  Histogram.record h 1;
  Histogram.record h 1000;
  Alcotest.(check int) "p50 of {1,1000}" 1 (Histogram.percentile h 50.0);
  Alcotest.(check int) "p100 of {1,1000}" 724 (Histogram.percentile h 100.0);
  (* The zero bucket reports 0, not a midpoint. *)
  let h = Histogram.create () in
  Histogram.record h 0;
  Alcotest.(check int) "zero bucket" 0 (Histogram.percentile h 99.0)

let test_histogram_p999 () =
  (* 1..10000: rank ceil(9990) falls in [8192,16384) -> round(2^13.5) =
     11585; p999 sits at or above p99 and below max. *)
  let h = Histogram.create () in
  for i = 1 to 10_000 do
    Histogram.record h i
  done;
  Alcotest.(check int) "p999 of 1..10000" 11585 (Histogram.p999 h);
  Alcotest.(check bool) "p99 <= p999" true
    (Histogram.percentile h 99.0 <= Histogram.p999 h);
  (* With fewer than 1000 samples, nearest-rank p999 is the max sample's
     bucket — same as p100. *)
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 3 ];
  Alcotest.(check int) "p999 of 3 samples = p100"
    (Histogram.percentile h 100.0)
    (Histogram.p999 h)

let test_histogram_merge_assoc () =
  (* merge is associative (and commutative): bucket-wise addition. Any
     grouping of per-domain histograms must report identical percentiles,
     count, total and max. *)
  let mk seed n =
    let st = Random.State.make [| seed |] in
    let h = Histogram.create () in
    for _ = 1 to n do
      Histogram.record h (Random.State.int st 1_000_000)
    done;
    h
  in
  let a = mk 1 500 and b = mk 2 700 and c = mk 3 300 in
  let l = Histogram.merge (Histogram.merge a b) c in
  let r = Histogram.merge a (Histogram.merge b c) in
  Alcotest.(check int) "count" (Histogram.count l) (Histogram.count r);
  Alcotest.(check int) "total" (Histogram.total l) (Histogram.total r);
  Alcotest.(check int) "max" (Histogram.max_value l) (Histogram.max_value r);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%.1f" p)
        (Histogram.percentile l p) (Histogram.percentile r p))
    [ 50.0; 90.0; 99.0; 99.9; 100.0 ]

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 5;
  Histogram.record b 500;
  let m = Histogram.merge a b in
  Alcotest.(check int) "merged count" 2 (Histogram.count m);
  Alcotest.(check int) "merged total" 505 (Histogram.total m);
  Alcotest.(check int) "a unchanged" 1 (Histogram.count a)

let test_codec_roundtrip () =
  let b = Buffer.create 64 in
  Codec.put_u8 b 200;
  Codec.put_u16 b 40000;
  Codec.put_u32 b 3_000_000_000;
  Codec.put_i64 b (-42L);
  Codec.put_int b 123456789;
  Codec.put_bytes b "hello \x00 world";
  Codec.put_float b 3.14159;
  let r = Codec.reader (Buffer.contents b) in
  Alcotest.(check int) "u8" 200 (Codec.get_u8 r);
  Alcotest.(check int) "u16" 40000 (Codec.get_u16 r);
  Alcotest.(check int) "u32" 3_000_000_000 (Codec.get_u32 r);
  Alcotest.(check int64) "i64" (-42L) (Codec.get_i64 r);
  Alcotest.(check int) "int" 123456789 (Codec.get_int r);
  Alcotest.(check string) "bytes" "hello \x00 world" (Codec.get_bytes r);
  Alcotest.(check (float 0.000001)) "float" 3.14159 (Codec.get_float r);
  Alcotest.(check int) "consumed all" 0 (Codec.remaining r)

let test_codec_short_read () =
  let r = Codec.reader "ab" in
  Alcotest.check_raises "short" (Codec.Corrupt "short read: need 4 at 0, have 2")
    (fun () -> ignore (Codec.get_u32 r))

let test_codec_bytes_inplace () =
  let b = Bytes.make 16 '\000' in
  Codec.set_u16 b 0 513;
  Codec.set_u32 b 2 70000;
  Codec.set_i64 b 6 99L;
  Alcotest.(check int) "u16" 513 (Codec.read_u16 b 0);
  Alcotest.(check int) "u32" 70000 (Codec.read_u32 b 2);
  Alcotest.(check int64) "i64" 99L (Codec.read_i64 b 6)

let test_crc32_known () =
  (* Standard test vector: crc32("123456789") = 0xCBF43926 *)
  Alcotest.(check int32) "crc32 vector" 0xCBF43926l (Codec.crc32 "123456789");
  Alcotest.(check bool) "differs" true (Codec.crc32 "a" <> Codec.crc32 "b")

let test_bits () =
  Alcotest.(check int) "clz 0" 64 (Bits.clz 0);
  Alcotest.(check int) "clz 1" 63 (Bits.clz 1);
  Alcotest.(check int) "clz 255" 56 (Bits.clz 255);
  Alcotest.(check int) "next_pow2 1" 1 (Bits.next_pow2 1);
  Alcotest.(check int) "next_pow2 5" 8 (Bits.next_pow2 5);
  Alcotest.(check int) "next_pow2 64" 64 (Bits.next_pow2 64)

(* Property: codec string roundtrip for arbitrary payloads. *)
let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"codec bytes roundtrip" ~count:500
    QCheck.(small_list string)
    (fun ss ->
      let b = Buffer.create 64 in
      List.iter (Codec.put_bytes b) ss;
      let r = Codec.reader (Buffer.contents b) in
      List.for_all (fun s -> String.equal s (Codec.get_bytes r)) ss)

let prop_crc_detects_flip =
  QCheck.Test.make ~name:"crc32 detects single-byte flip" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 1 64)) small_nat)
    (fun (s, i) ->
      QCheck.assume (String.length s > 0);
      let i = i mod String.length s in
      let flipped = Bytes.of_string s in
      Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 0x01));
      Codec.crc32 s <> Codec.crc32 (Bytes.to_string flipped))

let suites =
  [
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
        Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
      ] );
    ( "util.zipf",
      [
        Alcotest.test_case "theta 0 uniform" `Quick test_zipf_uniform_theta0;
        Alcotest.test_case "skew" `Quick test_zipf_skew;
        Alcotest.test_case "bounds at high skew" `Quick test_zipf_bounds_high_skew;
      ] );
    ( "util.histogram",
      [
        Alcotest.test_case "basic" `Quick test_histogram_basic;
        Alcotest.test_case "percentile" `Quick test_histogram_percentile;
        Alcotest.test_case "percentile exact midpoints" `Quick
          test_histogram_percentile_exact;
        Alcotest.test_case "merge" `Quick test_histogram_merge;
        Alcotest.test_case "p999" `Quick test_histogram_p999;
        Alcotest.test_case "merge associativity" `Quick
          test_histogram_merge_assoc;
      ] );
    ( "util.codec",
      [
        Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
        Alcotest.test_case "short read" `Quick test_codec_short_read;
        Alcotest.test_case "in-place bytes" `Quick test_codec_bytes_inplace;
        Alcotest.test_case "crc32 vector" `Quick test_crc32_known;
        Alcotest.test_case "bits" `Quick test_bits;
        QCheck_alcotest.to_alcotest prop_bytes_roundtrip;
        QCheck_alcotest.to_alcotest prop_crc_detects_flip;
      ] );
  ]
