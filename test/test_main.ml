let () =
  Alcotest.run "pitree"
    (Test_util.suites @ Test_sync.suites @ Test_storage.suites @ Test_wal.suites @ Test_lock.suites @ Test_txn.suites @ Test_env.suites @ Test_core.suites @ Test_blink.suites @ Test_crash.suites @ Test_baseline.suites @ Test_concurrency.suites @ Test_tsb.suites @ Test_hb.suites @ Test_protocol.suites @ Test_persistence.suites @ Test_cursor.suites @ Test_movelock.suites @ Test_mv_concurrency.suites @ Test_crash_point.suites @ Test_faults.suites @ Test_group_commit.suites @ Test_checkpoint.suites @ Test_wellformed.suites @ Test_sim.suites @ Test_fuzz.suites)
