(* Multi-domain stress tests: the engines must stay correct under true
   parallel execution (latches, lock manager, buffer pool, WAL all shared).
   On a single-core host these still exercise preemption interleavings. *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Wellformed = Pitree_core.Wellformed
module Btc = Pitree_baseline.Bt_coupling
module Btl = Pitree_baseline.Bt_treelatch
module Rng = Pitree_util.Rng

let cfg ?(consolidation = true) () =
  {
    Env.default_config with
    page_size = 512;
    pool_capacity = 8192;
    page_oriented_undo = false;
    consolidation;
  }

let key i = Printf.sprintf "key%06d" i

let check_wf t =
  let report = Blink.verify t in
  if not (Wellformed.ok report) then
    Alcotest.failf "tree not well-formed: %a" Wellformed.pp_report report

(* Partitioned writers: each domain owns a disjoint key slice, so the final
   contents are fully deterministic even under races in the structure. *)
let test_blink_partitioned_writers () =
  let env = Env.create (cfg ()) in
  let t = Blink.create env ~name:"t" in
  let domains = 4 and per = 400 in
  let work d () =
    for i = 0 to per - 1 do
      let k = key ((d * per) + i) in
      Blink.insert t ~key:k ~value:("v" ^ k)
    done
  in
  let hs = List.init domains (fun d -> Domain.spawn (work d)) in
  List.iter Domain.join hs;
  ignore (Env.drain env);
  check_wf t;
  Alcotest.(check int) "all present" (domains * per) (Blink.count t);
  for i = 0 to (domains * per) - 1 do
    match Blink.find t (key i) with
    | Some v when v = "v" ^ key i -> ()
    | _ -> Alcotest.failf "lost %s" (key i)
  done

(* Contending writers on the same keys: last write wins nondeterministically,
   but the structure must stay well-formed, keys unique, values valid. *)
let test_blink_contending_writers () =
  Seeds.with_seed "concurrency.blink.contending" @@ fun seed ->
  let env = Env.create (cfg ()) in
  let t = Blink.create env ~name:"t" in
  let domains = 4 and ops = 1200 and space = 300 in
  let work d () =
    let rng = Rng.create (Int64.add seed (Int64.of_int (100 + d))) in
    for _ = 1 to ops do
      let k = key (Rng.int rng space) in
      match Rng.int rng 3 with
      | 0 -> Blink.insert t ~key:k ~value:(Printf.sprintf "d%d" d)
      | 1 -> ignore (Blink.delete t k)
      | _ -> ignore (Blink.find t k)
    done
  in
  let hs = List.init domains (fun d -> Domain.spawn (work d)) in
  List.iter Domain.join hs;
  ignore (Env.drain env);
  check_wf t;
  (* Every surviving record must carry a value some domain wrote. *)
  let n =
    Blink.range t ?low:None ?high:None ~init:0 ~f:(fun n k v ->
        if String.length v <> 2 || v.[0] <> 'd' then
          Alcotest.failf "corrupt value %S at %s" v k;
        n + 1)
  in
  Alcotest.(check bool) "cardinality sane" true (n <= space);
  (* No duplicate keys across leaves. *)
  let seen = Hashtbl.create 64 in
  ignore
    (Blink.range t ?low:None ?high:None ~init:() ~f:(fun () k _ ->
         if Hashtbl.mem seen k then Alcotest.failf "duplicate key %s" k;
         Hashtbl.replace seen k ()))

let test_blink_readers_vs_writers () =
  Seeds.with_seed "concurrency.blink.readers-vs-writers" @@ fun seed ->
  let env = Env.create (cfg ()) in
  let t = Blink.create env ~name:"t" in
  for i = 0 to 499 do
    Blink.insert t ~key:(key i) ~value:"init"
  done;
  ignore (Env.drain env);
  let stop = Atomic.make false in
  let reader () =
    let rng = Rng.create seed in
    let reads = ref 0 in
    while not (Atomic.get stop) do
      let k = key (Rng.int rng 500) in
      (match Blink.find t k with
      | Some _ -> ()
      | None -> Alcotest.failf "reader lost pre-loaded key %s" k);
      incr reads
    done;
    !reads
  in
  let writer () =
    for i = 500 to 1499 do
      Blink.insert t ~key:(key i) ~value:"w"
    done;
    Atomic.set stop true
  in
  let r = Domain.spawn reader in
  let w = Domain.spawn writer in
  Domain.join w;
  Atomic.set stop true;
  let reads = Domain.join r in
  ignore (Env.drain env);
  check_wf t;
  Alcotest.(check bool) "reader made progress" true (reads > 0);
  Alcotest.(check int) "all data" 1500 (Blink.count t)

let test_blink_olc_storm_tight_pool () =
  (* Optimistic readers hammering a pool with almost no headroom while a
     writer churns the tree. Each abandoned attempt must drop its pins
     before retrying: a single leaked pin per restart would wedge a
     16-frame pool within seconds, surfacing as [Pool_exhausted] from
     [find] — which must never escape the optimistic ladder. *)
  Seeds.with_seed "concurrency.blink.olc-storm" @@ fun seed ->
  let env =
    Env.create { (cfg ()) with Env.pool_capacity = 16; pool_shards = Some 1 }
  in
  let t = Blink.create env ~name:"t" in
  let n = 400 in
  for i = 0 to n - 1 do
    Blink.insert t ~key:(key i) ~value:"init"
  done;
  ignore (Env.drain env);
  let stop = Atomic.make false in
  let reader d () =
    let rng = Rng.create (Int64.add seed (Int64.of_int d)) in
    let reads = ref 0 in
    while not (Atomic.get stop) do
      let k = key (Rng.int rng n) in
      (match Blink.find t k with
      | Some _ -> ()
      | None -> Alcotest.failf "reader lost pre-loaded key %s" k);
      incr reads
    done;
    !reads
  in
  let writer () =
    (* Overwrites bump versions (forcing restarts) without changing the
       key population the readers assert on. *)
    let rng = Rng.create (Int64.add seed 1000L) in
    for i = 1 to 4_000 do
      Blink.insert t ~key:(key (Rng.int rng n)) ~value:(string_of_int i)
    done;
    Atomic.set stop true
  in
  let rs = List.init 3 (fun d -> Domain.spawn (reader d)) in
  let w = Domain.spawn writer in
  Domain.join w;
  Atomic.set stop true;
  let reads = List.map Domain.join rs in
  ignore (Env.drain env);
  check_wf t;
  List.iter
    (fun r -> Alcotest.(check bool) "reader made progress" true (r > 0))
    reads;
  Alcotest.(check int) "population intact" n (Blink.count t);
  (* The pool still has its full (tiny) capacity: nothing leaked. *)
  for i = 0 to n - 1 do
    ignore (Blink.find t (key i))
  done

let test_blink_cns_parallel () =
  let env = Env.create (cfg ~consolidation:false ()) in
  let t = Blink.create env ~name:"t" in
  let domains = 3 and per = 400 in
  let work d () =
    for i = 0 to per - 1 do
      Blink.insert t ~key:(key ((d * per) + i)) ~value:"x"
    done
  in
  let hs = List.init domains (fun d -> Domain.spawn (work d)) in
  List.iter Domain.join hs;
  ignore (Env.drain env);
  check_wf t;
  Alcotest.(check int) "all present" (domains * per) (Blink.count t)

let test_coupling_parallel () =
  let env = Env.create (cfg ()) in
  let t = Btc.create env ~name:"c" in
  let domains = 4 and per = 300 in
  let work d () =
    for i = 0 to per - 1 do
      Btc.insert t ~key:(key ((d * per) + i)) ~value:"x"
    done
  in
  let hs = List.init domains (fun d -> Domain.spawn (work d)) in
  List.iter Domain.join hs;
  Alcotest.(check int) "all present" (domains * per) (Btc.count t)

let test_treelatch_parallel () =
  let env = Env.create (cfg ()) in
  let t = Btl.create env ~name:"l" in
  let domains = 4 and per = 300 in
  let work d () =
    for i = 0 to per - 1 do
      Btl.insert t ~key:(key ((d * per) + i)) ~value:"x"
    done
  in
  let hs = List.init domains (fun d -> Domain.spawn (work d)) in
  List.iter Domain.join hs;
  Alcotest.(check int) "all present" (domains * per) (Btl.count t)

let test_driver_smoke () =
  Seeds.with_seed "concurrency.driver.smoke" @@ fun seed ->
  (* The benchmark driver end to end on a small mixed workload. *)
  let env = Env.create (cfg ()) in
  let t = Blink.create env ~name:"t" in
  let inst = Pitree_harness.Kv.blink t in
  let spec =
    Pitree_harness.Workload.spec ~key_space:500 ~read_pct:60 ~insert_pct:30
      ~delete_pct:10 ~dist:(Pitree_harness.Workload.Zipf 0.9) ()
  in
  Pitree_harness.Driver.preload inst spec ~n:200;
  let r = Pitree_harness.Driver.run ~domains:2 ~ops_per_domain:500 ~seed inst spec in
  ignore (Env.drain env);
  check_wf t;
  Alcotest.(check int) "ops counted" 1000 r.Pitree_harness.Driver.total_ops;
  Alcotest.(check bool) "throughput positive" true (r.Pitree_harness.Driver.ops_per_s > 0.0)

let suites =
  [
    ( "concurrency.blink",
      [
        Alcotest.test_case "partitioned writers" `Slow test_blink_partitioned_writers;
        Alcotest.test_case "contending writers" `Slow test_blink_contending_writers;
        Alcotest.test_case "readers vs writers" `Slow test_blink_readers_vs_writers;
        Alcotest.test_case "olc storm at tight pool" `Slow
          test_blink_olc_storm_tight_pool;
        Alcotest.test_case "CNS parallel" `Slow test_blink_cns_parallel;
      ] );
    ( "concurrency.baselines",
      [
        Alcotest.test_case "coupling parallel" `Slow test_coupling_parallel;
        Alcotest.test_case "treelatch parallel" `Slow test_treelatch_parallel;
      ] );
    ( "concurrency.driver",
      [ Alcotest.test_case "driver smoke" `Slow test_driver_smoke ] );
  ]
