(* Tests for the TSB-tree (multiversion) engine — section 2.2.2 / Figure 1. *)

module Env = Pitree_env.Env
module Tsb = Pitree_tsb.Tsb
module Wellformed = Pitree_core.Wellformed
module Ordkey = Pitree_util.Ordkey

let cfg () =
  {
    Env.default_config with
    page_size = 512;
    pool_capacity = 8192;
    page_oriented_undo = false;
    consolidation = false;
  }

let mk () =
  let env = Env.create (cfg ()) in
  (env, Tsb.create env ~name:"v")

let check_wf t =
  let report = Tsb.verify t in
  if not (Wellformed.ok report) then
    Alcotest.failf "tsb not well-formed: %a" Wellformed.pp_report report

let test_ordkey_roundtrip () =
  List.iter
    (fun (k, t) ->
      let c = Ordkey.composite k t in
      let k', t' = Ordkey.decompose c in
      Alcotest.(check string) "key" k k';
      Alcotest.(check int) "time" t t')
    [ ("", 0); ("abc", 42); ("a\x00b", 7); ("\x00\x00", max_int); ("z", 1) ]

let test_ordkey_ordering () =
  (* Composite order = (key, time) lexicographic. *)
  let c = Ordkey.composite in
  Alcotest.(check bool) "same key, time asc" true (c "a" 1 < c "a" 2);
  Alcotest.(check bool) "key order dominates" true (c "a" 999 < c "b" 0);
  Alcotest.(check bool) "nul-safe" true (c "a" 5 < c "a\x00" 0);
  Alcotest.(check bool) "prefix groups" true
    (Ordkey.belongs_to (c "a" 3) ~key:"a" && not (Ordkey.belongs_to (c "ab" 3) ~key:"a"))

let test_put_get () =
  let _, t = mk () in
  let t1 = Tsb.put t ~key:"alice" ~value:"100" in
  Alcotest.(check (option string)) "current" (Some "100") (Tsb.get t "alice");
  Alcotest.(check (option string)) "missing" None (Tsb.get t "bob");
  Alcotest.(check bool) "stamp positive" true (t1 > 0)

let test_versions () =
  let _, t = mk () in
  let t1 = Tsb.put t ~key:"k" ~value:"v1" in
  let t2 = Tsb.put t ~key:"k" ~value:"v2" in
  let t3 = Tsb.put t ~key:"k" ~value:"v3" in
  Alcotest.(check (option string)) "current" (Some "v3") (Tsb.get t "k");
  Alcotest.(check (option string)) "asof t1" (Some "v1") (Tsb.get_asof t "k" ~time:t1);
  Alcotest.(check (option string)) "asof t2" (Some "v2") (Tsb.get_asof t "k" ~time:t2);
  Alcotest.(check (option string)) "asof t3" (Some "v3") (Tsb.get_asof t "k" ~time:t3);
  Alcotest.(check (option string)) "asof between" (Some "v2")
    (Tsb.get_asof t "k" ~time:(t3 - 1));
  Alcotest.(check (option string)) "before birth" None (Tsb.get_asof t "k" ~time:(t1 - 1))

let test_tombstone () =
  let _, t = mk () in
  let t1 = Tsb.put t ~key:"k" ~value:"v1" in
  let td = Tsb.remove t "k" in
  Alcotest.(check (option string)) "deleted now" None (Tsb.get t "k");
  Alcotest.(check (option string)) "alive in the past" (Some "v1")
    (Tsb.get_asof t "k" ~time:t1);
  let t2 = Tsb.put t ~key:"k" ~value:"v2" in
  Alcotest.(check (option string)) "reborn" (Some "v2") (Tsb.get t "k");
  Alcotest.(check (option string)) "tombstone epoch" None
    (Tsb.get_asof t "k" ~time:td);
  ignore t2

let test_history () =
  let _, t = mk () in
  let t1 = Tsb.put t ~key:"k" ~value:"a" in
  let t2 = Tsb.remove t "k" in
  let t3 = Tsb.put t ~key:"k" ~value:"b" in
  Alcotest.(check (list (pair int (option string))))
    "full history"
    [ (t1, Some "a"); (t2, None); (t3, Some "b") ]
    (Tsb.history t "k")

let test_time_splits_preserve_history () =
  (* Many versions of few keys force time splits; every historical read
     must still be answerable through the history chains. *)
  let _, t = mk () in
  let keys = [ "a"; "b"; "c"; "d" ] in
  let stamps = Hashtbl.create 64 in
  for round = 1 to 120 do
    List.iter
      (fun k ->
        let v = Printf.sprintf "%s-%d" k round in
        let ts = Tsb.put t ~key:k ~value:v in
        Hashtbl.replace stamps (k, round) (ts, v))
      keys
  done;
  let s = Tsb.stats t in
  Alcotest.(check bool)
    (Printf.sprintf "time splits happened (%d)" s.Tsb.time_splits)
    true (s.Tsb.time_splits > 0);
  Alcotest.(check bool) "history nodes created" true (s.Tsb.history_nodes > 0);
  check_wf t;
  (* Every recorded version must be visible as of its stamp. *)
  Hashtbl.iter
    (fun (k, _) (ts, v) ->
      match Tsb.get_asof t k ~time:ts with
      | Some v' when v' = v -> ()
      | Some v' -> Alcotest.failf "wrong version of %s at %d: %s (want %s)" k ts v' v
      | None -> Alcotest.failf "lost version of %s at %d" k ts)
    stamps

let test_key_splits_copy_history_pointer () =
  (* Figure 1: after a key split the NEW current node must answer
     historical queries for its key range via the copied history pointer. *)
  let env, t = mk () in
  (* Phase 1: few keys, many versions -> time splits build history. *)
  for round = 1 to 60 do
    for i = 0 to 7 do
      ignore (Tsb.put t ~key:(Printf.sprintf "key%02d" i) ~value:(Printf.sprintf "r%d" round))
    done
  done;
  let early = Tsb.now t in
  (* Phase 2: many keys -> key splits. *)
  for i = 0 to 199 do
    ignore (Tsb.put t ~key:(Printf.sprintf "key%03d" i) ~value:"wide")
  done;
  ignore (Env.drain env);
  let s = Tsb.stats t in
  Alcotest.(check bool) "key splits happened" true (s.Tsb.key_splits > 0);
  Alcotest.(check bool) "time splits happened" true (s.Tsb.time_splits > 0);
  check_wf t;
  (* Historical reads for the phase-1 keys must survive the key splits. *)
  for i = 0 to 7 do
    let k = Printf.sprintf "key%02d" i in
    match Tsb.get_asof t k ~time:early with
    | Some v -> Alcotest.(check string) ("early " ^ k) "r60" v
    | None -> Alcotest.failf "history lost for %s after key splits" k
  done

let test_many_keys_tree_growth () =
  let env, t = mk () in
  let n = 1500 in
  for i = 0 to n - 1 do
    ignore (Tsb.put t ~key:(Printf.sprintf "key%06d" i) ~value:(string_of_int i))
  done;
  ignore (Env.drain env);
  check_wf t;
  for i = 0 to n - 1 do
    let k = Printf.sprintf "key%06d" i in
    Alcotest.(check (option string)) k (Some (string_of_int i)) (Tsb.get t k)
  done;
  Alcotest.(check bool) "root split" true ((Tsb.stats t).Tsb.root_splits > 0)

let test_snapshot_scan () =
  let _, t = mk () in
  ignore (Tsb.put t ~key:"a" ~value:"1");
  ignore (Tsb.put t ~key:"b" ~value:"2");
  let snap = Tsb.now t in
  ignore (Tsb.put t ~key:"b" ~value:"2'");
  ignore (Tsb.put t ~key:"c" ~value:"3");
  ignore (Tsb.remove t "a");
  (* Snapshot at [snap]: a=1, b=2; now: b=2', c=3. *)
  let at time =
    Tsb.range_asof t ~time ?low:None ?high:None ~init:[] ~f:(fun acc k v ->
        (k, v) :: acc)
    |> List.rev
  in
  Alcotest.(check (list (pair string string)))
    "snapshot" [ ("a", "1"); ("b", "2") ] (at snap);
  Alcotest.(check (list (pair string string)))
    "now" [ ("b", "2'"); ("c", "3") ] (at max_int)

let test_range_asof_bounds () =
  let _, t = mk () in
  for i = 0 to 19 do
    ignore (Tsb.put t ~key:(Printf.sprintf "k%02d" i) ~value:"x")
  done;
  let keys =
    Tsb.range_asof t ~time:max_int ~low:"k05" ~high:"k10" ~init:[]
      ~f:(fun acc k _ -> k :: acc)
    |> List.rev
  in
  Alcotest.(check (list string)) "bounds" [ "k05"; "k06"; "k07"; "k08"; "k09" ] keys

let test_crash_recovery () =
  let env, t = mk () in
  let stamps = ref [] in
  for round = 1 to 40 do
    for i = 0 to 5 do
      let k = Printf.sprintf "key%02d" i in
      let ts = Tsb.put t ~key:k ~value:(Printf.sprintf "%s-%d" k round) in
      stamps := (k, ts, Printf.sprintf "%s-%d" k round) :: !stamps
    done
  done;
  Env.crash env;
  ignore (Env.recover env);
  let t =
    match Tsb.open_existing env ~name:"v" with
    | Some t -> t
    | None -> Alcotest.fail "tsb tree lost"
  in
  check_wf t;
  List.iter
    (fun (k, ts, v) ->
      match Tsb.get_asof t k ~time:ts with
      | Some v' when v' = v -> ()
      | _ -> Alcotest.failf "lost version %s@%d after crash" k ts)
    !stamps;
  (* The recovered clock must not reissue old stamps. *)
  let ts = Tsb.put t ~key:"key00" ~value:"fresh" in
  List.iter (fun (_, old, _) -> assert (ts > old)) !stamps;
  Alcotest.(check (option string)) "writes continue" (Some "fresh") (Tsb.get t "key00")

let test_gc_drains_history () =
  (* Build history via time splits, then raise the horizon to "now" and gc:
     every chain tail is fully expired, so the chains are cut and their
     nodes go back to the environment free list; surviving (current) reads
     are unchanged. *)
  let env, t = mk () in
  for round = 1 to 120 do
    List.iter
      (fun k -> ignore (Tsb.put t ~key:k ~value:(Printf.sprintf "%s-%d" k round)))
      [ "a"; "b"; "c"; "d" ]
  done;
  ignore (Env.drain env);
  let s0 = Tsb.stats t in
  Alcotest.(check bool) "history built" true (s0.Tsb.history_nodes > 0);
  Tsb.set_horizon t (Tsb.now t);
  let freed = Tsb.gc t in
  check_wf t;
  Alcotest.(check bool)
    (Printf.sprintf "chain tails freed (%d)" freed)
    true (freed > 0);
  let s = Tsb.stats t in
  Alcotest.(check bool) "drain counted" true (s.Tsb.history_nodes_freed > 0);
  Alcotest.(check bool) "free list populated" true (Env.free_list_length env > 0);
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        ("current " ^ k)
        (Some (Printf.sprintf "%s-120" k))
        (Tsb.get t k))
    [ "a"; "b"; "c"; "d" ];
  (* Freed pages are really reused by the next allocations. *)
  let reused0 = (Env.stats env).Env.pages_reused in
  for round = 1 to 120 do
    List.iter
      (fun k -> ignore (Tsb.put t ~key:k ~value:(Printf.sprintf "%s-bis-%d" k round)))
      [ "a"; "b"; "c"; "d" ]
  done;
  Alcotest.(check bool) "free list reused" true
    ((Env.stats env).Env.pages_reused > reused0)

let test_gc_purges_and_merges () =
  (* Delete a whole key range, then gc with horizon = now: the tombstone
     runs purge, emptied leaves merge into their left siblings, and the
     merged pages are freed. *)
  let env, t = mk () in
  let n = 400 in
  for i = 0 to n - 1 do
    ignore (Tsb.put t ~key:(Printf.sprintf "key%04d" i) ~value:(String.make 40 'v'))
  done;
  ignore (Env.drain env);
  (* Tombstone everything except a survivor prefix. *)
  for i = 40 to n - 1 do
    ignore (Tsb.remove t (Printf.sprintf "key%04d" i))
  done;
  ignore (Env.drain env);
  Tsb.set_horizon t (Tsb.now t);
  let freed = Tsb.gc t in
  check_wf t;
  let s = Tsb.stats t in
  Alcotest.(check bool)
    (Printf.sprintf "purged tombstone runs (%d)" s.Tsb.tombstones_purged)
    true
    (s.Tsb.tombstones_purged > 0);
  Alcotest.(check bool)
    (Printf.sprintf "emptied leaves merged (%d merges, %d freed)" s.Tsb.merges freed)
    true (s.Tsb.merges > 0);
  (* Deleted keys read as absent at every surviving time; survivors live. *)
  for i = 0 to 39 do
    Alcotest.(check (option string))
      (Printf.sprintf "survivor %d" i)
      (Some (String.make 40 'v'))
      (Tsb.get t (Printf.sprintf "key%04d" i))
  done;
  for i = 40 to n - 1 do
    Alcotest.(check (option string))
      (Printf.sprintf "gone %d" i)
      None
      (Tsb.get t (Printf.sprintf "key%04d" i))
  done;
  (* Writes after gc still work and split normally. *)
  for i = 0 to 99 do
    ignore (Tsb.put t ~key:(Printf.sprintf "new%04d" i) ~value:"fresh")
  done;
  ignore (Env.drain env);
  check_wf t

let test_gc_crash_recovery () =
  (* Crash right after gc and recover: the cut chains, purged runs and
     merged leaves must all replay to a well-formed tree. *)
  let env, t = mk () in
  for round = 1 to 60 do
    for i = 0 to 11 do
      ignore (Tsb.put t ~key:(Printf.sprintf "key%02d" i) ~value:(Printf.sprintf "r%d" round))
    done
  done;
  for i = 6 to 11 do
    ignore (Tsb.remove t (Printf.sprintf "key%02d" i))
  done;
  ignore (Env.drain env);
  Tsb.set_horizon t (Tsb.now t);
  ignore (Tsb.gc t : int);
  Env.crash env;
  ignore (Env.recover env);
  let t =
    match Tsb.open_existing env ~name:"v" with
    | Some t -> t
    | None -> Alcotest.fail "tsb tree lost"
  in
  check_wf t;
  for i = 0 to 5 do
    Alcotest.(check (option string))
      (Printf.sprintf "survivor %d" i)
      (Some "r60")
      (Tsb.get t (Printf.sprintf "key%02d" i))
  done;
  for i = 6 to 11 do
    Alcotest.(check (option string))
      (Printf.sprintf "gone %d" i)
      None
      (Tsb.get t (Printf.sprintf "key%02d" i))
  done

let test_txn_abort_discards_version () =
  let env, t = mk () in
  ignore (Tsb.put t ~key:"k" ~value:"keep");
  let mgr = Env.txns env in
  let txn = Pitree_txn.Txn_mgr.begin_txn mgr Pitree_txn.Txn.User in
  ignore (Tsb.put ~txn t ~key:"k" ~value:"doomed");
  Pitree_txn.Txn_mgr.abort mgr txn;
  Alcotest.(check (option string)) "aborted version invisible" (Some "keep")
    (Tsb.get t "k");
  Alcotest.(check int) "history clean" 1 (List.length (Tsb.history t "k"))

let suites =
  [
    ( "tsb.ordkey",
      [
        Alcotest.test_case "roundtrip" `Quick test_ordkey_roundtrip;
        Alcotest.test_case "ordering" `Quick test_ordkey_ordering;
      ] );
    ( "tsb.basic",
      [
        Alcotest.test_case "put/get" `Quick test_put_get;
        Alcotest.test_case "versions" `Quick test_versions;
        Alcotest.test_case "tombstone" `Quick test_tombstone;
        Alcotest.test_case "history" `Quick test_history;
      ] );
    ( "tsb.splits",
      [
        Alcotest.test_case "time splits preserve history" `Quick
          test_time_splits_preserve_history;
        Alcotest.test_case "key splits copy history ptr (Fig 1)" `Quick
          test_key_splits_copy_history_pointer;
        Alcotest.test_case "tree growth" `Quick test_many_keys_tree_growth;
      ] );
    ( "tsb.queries",
      [
        Alcotest.test_case "snapshot scan" `Quick test_snapshot_scan;
        Alcotest.test_case "range bounds" `Quick test_range_asof_bounds;
      ] );
    ( "tsb.gc",
      [
        Alcotest.test_case "horizon gc drains history" `Quick test_gc_drains_history;
        Alcotest.test_case "gc purges tombstones and merges leaves" `Quick
          test_gc_purges_and_merges;
        Alcotest.test_case "gc then crash recovers" `Quick test_gc_crash_recovery;
      ] );
    ( "tsb.recovery",
      [
        Alcotest.test_case "crash recovery" `Quick test_crash_recovery;
        Alcotest.test_case "txn abort discards version" `Quick
          test_txn_abort_discards_version;
      ] );
  ]
