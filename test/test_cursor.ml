(* Cursor tests: forward iteration stability under concurrent structure
   changes, saved-state resumption, boundary cases. *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Cursor = Pitree_blink.Cursor
module Rng = Pitree_util.Rng

let cfg ?(consolidation = true) () =
  { Env.default_config with page_size = 256; pool_capacity = 4096; page_oriented_undo = false; consolidation }

let key i = Printf.sprintf "key%06d" i

let mk ?consolidation () =
  let env = Env.create (cfg ?consolidation ()) in
  (env, Blink.create env ~name:"t")

let test_empty () =
  let _, t = mk () in
  let c = Cursor.first t in
  Alcotest.(check bool) "empty" true (Cursor.next c = None);
  Alcotest.(check bool) "still empty" true (Cursor.next c = None);
  Cursor.close c

let test_full_scan () =
  let env, t = mk () in
  let n = 1_000 in
  for i = 0 to n - 1 do
    Blink.insert t ~key:(key i) ~value:(string_of_int i)
  done;
  ignore (Env.drain env);
  let c = Cursor.first t in
  let rec collect acc =
    match Cursor.next c with None -> List.rev acc | Some (k, _) -> collect (k :: acc)
  in
  let keys = collect [] in
  Alcotest.(check int) "all records" n (List.length keys);
  Alcotest.(check string) "first" (key 0) (List.hd keys);
  let rec sorted = function
    | a :: (b :: _ as rest) -> String.compare a b < 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly sorted" true (sorted keys)

let test_seek () =
  let _, t = mk () in
  for i = 0 to 99 do
    Blink.insert t ~key:(key (2 * i)) ~value:"v"
  done;
  (* Seek to a present key. *)
  let c = Cursor.seek t (key 10) in
  Alcotest.(check (option string)) "exact seek" (Some (key 10))
    (Option.map fst (Cursor.next c));
  (* Seek between keys lands on the successor. *)
  let c = Cursor.seek t (key 11) in
  Alcotest.(check (option string)) "gap seek" (Some (key 12))
    (Option.map fst (Cursor.next c));
  (* Seek past the end. *)
  let c = Cursor.seek t "zzz" in
  Alcotest.(check bool) "past end" true (Cursor.next c = None)

let test_peek_does_not_advance () =
  let _, t = mk () in
  Blink.insert t ~key:"a" ~value:"1";
  Blink.insert t ~key:"b" ~value:"2";
  let c = Cursor.first t in
  Alcotest.(check (option string)) "peek a" (Some "a") (Option.map fst (Cursor.peek c));
  Alcotest.(check (option string)) "peek again" (Some "a") (Option.map fst (Cursor.peek c));
  Alcotest.(check (option string)) "next a" (Some "a") (Option.map fst (Cursor.next c));
  Alcotest.(check (option string)) "next b" (Some "b") (Option.map fst (Cursor.next c))

let test_sees_new_tail () =
  (* After returning None, a cursor picks up later insertions of larger
     keys. *)
  let _, t = mk () in
  Blink.insert t ~key:"a" ~value:"1";
  let c = Cursor.first t in
  ignore (Cursor.next c);
  Alcotest.(check bool) "exhausted" true (Cursor.next c = None);
  Blink.insert t ~key:"b" ~value:"2";
  Alcotest.(check (option string)) "new tail visible" (Some "b")
    (Option.map fst (Cursor.next c))

let test_stable_under_splits () =
  (* Interleave scanning with insertions that split the leaves the cursor
     is walking: pre-existing keys must each be returned exactly once. *)
  let env, t = mk () in
  let n = 600 in
  for i = 0 to n - 1 do
    Blink.insert t ~key:(key (2 * i)) ~value:"old"
  done;
  ignore (Env.drain env);
  let c = Cursor.first t in
  let seen = Hashtbl.create 64 in
  let olds = ref 0 in
  let inserted = ref n in
  let rec walk () =
    match Cursor.next c with
    | None -> ()
    | Some (k, v) ->
        if Hashtbl.mem seen k then Alcotest.failf "duplicate %s" k;
        Hashtbl.replace seen k ();
        if v = "old" then incr olds;
        (* Every few steps, stuff odd keys BEHIND and AHEAD of the cursor
           to force splits of already-visited and upcoming leaves. *)
        if Hashtbl.length seen mod 13 = 0 then begin
          Blink.insert t ~key:(key ((2 * !inserted) + 1)) ~value:"new";
          incr inserted;
          Blink.insert t ~key:(k ^ "!") ~value:"new"
        end;
        walk ()
  in
  walk ();
  Alcotest.(check int) "every pre-existing key seen once" n !olds

let test_stable_under_consolidation () =
  (* Deletions + consolidations while scanning: the cursor re-seeks when
     its remembered leaf is consolidated away. *)
  let env, t = mk ~consolidation:true () in
  let n = 800 in
  for i = 0 to n - 1 do
    Blink.insert t ~key:(key i) ~value:"v"
  done;
  ignore (Env.drain env);
  let c = Cursor.first t in
  let seen = ref 0 in
  let rec walk () =
    match Cursor.next c with
    | None -> ()
    | Some (k, _) ->
        incr seen;
        (* Delete a key far ahead, then drain (runs consolidations). *)
        let i = int_of_string (String.sub k 3 6) in
        if i mod 10 = 0 && i + 300 < n then begin
          ignore (Blink.delete t (key (i + 300)));
          ignore (Env.drain env)
        end;
        walk ()
  in
  walk ();
  (* Everything not deleted before the cursor passed it must be seen; the
     count is bounded by [n] and at least [n] minus deletions. *)
  Alcotest.(check bool)
    (Printf.sprintf "sane count %d" !seen)
    true
    (!seen <= n && !seen >= n - (n / 10))

let test_fold_until () =
  let _, t = mk () in
  for i = 0 to 49 do
    Blink.insert t ~key:(key i) ~value:"v"
  done;
  let c = Cursor.first t in
  let batch = Cursor.fold_until c ~limit:20 ~init:0 ~f:(fun n _ _ -> n + 1) in
  Alcotest.(check int) "first batch" 20 batch;
  let rest = Cursor.fold_until c ~limit:100 ~init:0 ~f:(fun n _ _ -> n + 1) in
  Alcotest.(check int) "remainder resumes where it left off" 30 rest

let test_concurrent_cursor_and_writers () =
  Seeds.with_seed "cursor.concurrent-writers" @@ fun seed ->
  let env, t = mk () in
  for i = 0 to 499 do
    Blink.insert t ~key:(key (2 * i)) ~value:"base"
  done;
  ignore (Env.drain env);
  let writer =
    Domain.spawn (fun () ->
        let rng = Rng.create seed in
        for _ = 1 to 1_000 do
          Blink.insert t ~key:(key (Rng.int rng 2_000)) ~value:"w"
        done)
  in
  (* Scan repeatedly while the writer runs. *)
  for _ = 1 to 5 do
    let c = Cursor.first t in
    let prev = ref "" in
    let rec walk () =
      match Cursor.next c with
      | None -> ()
      | Some (k, _) ->
          if String.compare k !prev <= 0 then
            Alcotest.failf "order violated: %s after %s" k !prev;
          prev := k;
          walk ()
    in
    walk ()
  done;
  Domain.join writer;
  ignore (Env.drain env)

(* Property: cursor scan = range fold = sorted model, for arbitrary
   insert/delete scripts. *)
let prop_cursor_equals_range =
  let open QCheck in
  let op_gen =
    Gen.(
      frequency
        [
          (4, map2 (fun k v -> `Insert (k mod 300, v)) small_nat small_nat);
          (2, map (fun k -> `Delete (k mod 300)) small_nat);
        ])
  in
  Test.make ~name:"cursor = range = model" ~count:25
    (make Gen.(list_size (int_range 20 250) op_gen))
    (fun ops ->
      let env, t = mk () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun op ->
          match op with
          | `Insert (k, v) ->
              Blink.insert t ~key:(key k) ~value:(string_of_int v);
              Hashtbl.replace model (key k) (string_of_int v)
          | `Delete k ->
              ignore (Blink.delete t (key k));
              Hashtbl.remove model (key k))
        ops;
      ignore (Env.drain env);
      let via_cursor =
        let c = Cursor.first t in
        let rec go acc =
          match Cursor.next c with None -> List.rev acc | Some kv -> go (kv :: acc)
        in
        go []
      in
      let via_range =
        Blink.range t ?low:None ?high:None ~init:[] ~f:(fun acc k v -> (k, v) :: acc)
        |> List.rev
      in
      let via_model =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
        |> List.sort compare
      in
      via_cursor = via_range && via_range = via_model)

let suites =
  [
    ( "cursor",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "full scan" `Quick test_full_scan;
        Alcotest.test_case "seek" `Quick test_seek;
        Alcotest.test_case "peek" `Quick test_peek_does_not_advance;
        Alcotest.test_case "sees new tail" `Quick test_sees_new_tail;
        Alcotest.test_case "stable under splits" `Quick test_stable_under_splits;
        Alcotest.test_case "stable under consolidation" `Quick
          test_stable_under_consolidation;
        Alcotest.test_case "fold_until" `Quick test_fold_until;
        Alcotest.test_case "concurrent with writers" `Slow
          test_concurrent_cursor_and_writers;
        QCheck_alcotest.to_alcotest prop_cursor_equals_range;
      ] );
  ]
