(* Tests for snapshot-isolation transactions (Mvcc + Snapshot allocator):
   snapshot reads, first-committer-wins, the write-skew anomaly SI
   permits, commit-timestamp recovery, crash points inside commit, the
   GC-horizon clamp, and the zero-lock/zero-latch-wait guarantee for
   snapshot reads. *)

module Env = Pitree_env.Env
module Tsb = Pitree_tsb.Tsb
module Tsb_engine = Pitree_tsb.Tsb_engine
module Mvcc = Pitree_txn.Mvcc
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Snapshot = Pitree_txn.Snapshot
module Lock_manager = Pitree_lock.Lock_manager
module Latch = Pitree_sync.Latch
module Crash_point = Pitree_util.Crash_point
module Recovery = Pitree_wal.Recovery

let cfg () =
  {
    Env.default_config with
    page_size = 512;
    pool_capacity = 8192;
    page_oriented_undo = false;
    consolidation = false;
    si_txns = true;
  }

let mk () =
  let env = Env.create (cfg ()) in
  (env, Tsb.create env ~name:"v")

let get = Alcotest.(check (option string))

(* --- allocator unit tests ---------------------------------------------- *)

let test_alloc_monotone () =
  let s = Snapshot.create () in
  let a = Snapshot.allocate s in
  let b = Snapshot.allocate s in
  let c = Snapshot.allocate s in
  Alcotest.(check (list int)) "consecutive" [ 1; 2; 3 ] [ a; b; c ];
  (* Watermark only advances past retired prefixes: retiring the middle
     allocation alone moves nothing. *)
  Alcotest.(check int) "watermark 0" 0 (Snapshot.completed s);
  Snapshot.retire_all s [ b ];
  Alcotest.(check int) "gap holds watermark" 0 (Snapshot.completed s);
  Snapshot.retire_all s [ a ];
  Alcotest.(check int) "prefix retired -> 2" 2 (Snapshot.completed s);
  Snapshot.retire_all s [ c ];
  Alcotest.(check int) "all retired -> 3" 3 (Snapshot.completed s)

let test_alloc_observe_floor () =
  let s = Snapshot.create () in
  Snapshot.observe_floor s 41;
  Alcotest.(check int) "watermark seeded" 41 (Snapshot.completed s);
  Alcotest.(check int) "next above floor" 42 (Snapshot.allocate s);
  (* An in-flight allocation below a later floor blocks the watermark
     (the floor only raises [next]). *)
  Snapshot.observe_floor s 50;
  Alcotest.(check bool) "inflight 42 holds watermark" true
    (Snapshot.completed s < 42);
  Snapshot.retire_all s [ 42 ];
  Alcotest.(check int) "retire releases to floor" 50 (Snapshot.completed s);
  Alcotest.(check int) "allocate past floor" 51 (Snapshot.allocate s)

let test_alloc_pins_and_gc_cap () =
  let s = Snapshot.create () in
  let ts = Snapshot.allocate s in
  Snapshot.retire_all s [ ts ];
  let r1 = Snapshot.begin_snapshot s in
  Alcotest.(check int) "snapshot pins watermark" ts r1;
  Alcotest.(check int) "live" 1 (Snapshot.live_snapshots s);
  (* No checkpoint yet: GC may retire nothing. *)
  Alcotest.(check int) "gc_cap floor-bound" 0 (Snapshot.gc_cap s);
  Snapshot.note_checkpoint s;
  Alcotest.(check int) "ckpt floor = watermark" ts (Snapshot.checkpoint_floor s);
  (* Now the live snapshot is the binding constraint. *)
  Alcotest.(check int) "gc_cap snapshot-bound" (r1 - 1) (Snapshot.gc_cap s);
  Snapshot.release_snapshot s r1;
  Alcotest.(check int) "released" 0 (Snapshot.live_snapshots s);
  Alcotest.(check int) "gc_cap = ckpt floor" ts (Snapshot.gc_cap s)

(* Satellite: commit-timestamp monotonicity under a multi-domain
   allocation storm — timestamps unique, a fiber's own un-retired
   allocation always bounds the watermark its snapshots pin. *)
let test_alloc_storm () =
  let s = Snapshot.create () in
  let domains = 4 and per = 500 in
  let work _ () =
    let mine = ref [] in
    let last = ref 0 in
    for _ = 1 to per do
      let ts = Snapshot.allocate s in
      if ts <= !last then Alcotest.failf "non-monotone: %d after %d" ts !last;
      last := ts;
      let r = Snapshot.begin_snapshot s in
      if r >= ts then
        Alcotest.failf "snapshot %d not below own in-flight %d" r ts;
      Snapshot.release_snapshot s r;
      Snapshot.retire_all s [ ts ];
      mine := ts :: !mine
    done;
    !mine
  in
  let all =
    List.init domains (fun d -> Domain.spawn (work d))
    |> List.concat_map Domain.join
  in
  Alcotest.(check int) "unique" (domains * per)
    (List.length (List.sort_uniq compare all));
  Alcotest.(check int) "watermark = max after quiesce"
    (List.fold_left max 0 all) (Snapshot.completed s);
  Alcotest.(check int) "nothing live" 0 (Snapshot.live_snapshots s)

(* --- SI transaction basics --------------------------------------------- *)

let test_si_basics () =
  let env, t = mk () in
  ignore (Tsb.put t ~key:"a" ~value:"v0");
  let mgr = Env.txns env in
  let txn = Mvcc.begin_snapshot mgr in
  get "snapshot sees preload" (Some "v0") (Tsb_engine.find ~txn t "a");
  Tsb_engine.insert ~txn t ~key:"b" ~value:"v1";
  get "own write visible inside" (Some "v1") (Tsb_engine.find ~txn t "b");
  get "buffered write invisible outside" None (Tsb.get t "b");
  let ts = match Mvcc.commit mgr txn with Some ts -> ts | None -> -1 in
  Alcotest.(check bool) "writer got a commit ts" true (ts > 0);
  get "installed at commit" (Some "v1") (Tsb.get t "b");
  get "visible at commit ts" (Some "v1") (Tsb.get_asof t "b" ~time:ts);
  get "absent before commit ts" None (Tsb.get_asof t "b" ~time:(ts - 1));
  (* Read-only transactions commit without a timestamp. *)
  let ro = Mvcc.begin_snapshot mgr in
  get "ro read" (Some "v1") (Tsb_engine.find ~txn:ro t "b");
  Alcotest.(check bool) "read-only commit has no ts" true
    (Mvcc.commit mgr ro = None)

let test_si_snapshot_stable () =
  let env, t = mk () in
  ignore (Tsb.put t ~key:"k" ~value:"old");
  let mgr = Env.txns env in
  let txn = Mvcc.begin_snapshot mgr in
  get "before overwrite" (Some "old") (Tsb_engine.find ~txn t "k");
  ignore (Tsb.put t ~key:"k" ~value:"new");
  ignore (Tsb.remove t "k");
  get "snapshot unmoved by put+delete" (Some "old") (Tsb_engine.find ~txn t "k");
  Alcotest.(check int) "scan sees snapshot" 1
    (Tsb_engine.scan ~txn t ~low:"" ~n:10);
  ignore (Mvcc.commit mgr txn);
  let txn2 = Mvcc.begin_snapshot mgr in
  get "fresh snapshot sees tombstone" None (Tsb_engine.find ~txn:txn2 t "k");
  ignore (Mvcc.commit mgr txn2)

let test_si_delete_buffers () =
  let env, t = mk () in
  ignore (Tsb.put t ~key:"k" ~value:"v");
  let mgr = Env.txns env in
  let txn = Mvcc.begin_snapshot mgr in
  Alcotest.(check bool) "delete observes live" true (Tsb_engine.delete ~txn t "k");
  get "tombstone buffered" None (Tsb_engine.find ~txn t "k");
  Alcotest.(check bool) "second delete observes dead" false
    (Tsb_engine.delete ~txn t "k");
  get "still live outside" (Some "v") (Tsb.get t "k");
  ignore (Mvcc.commit mgr txn);
  get "tombstone installed" None (Tsb.get t "k")

(* --- first-committer-wins ---------------------------------------------- *)

let test_si_fcw_conflict () =
  let env, t = mk () in
  ignore (Tsb.put t ~key:"k" ~value:"base");
  let mgr = Env.txns env in
  let s0 = Mvcc.stats () in
  let t1 = Mvcc.begin_snapshot mgr in
  let t2 = Mvcc.begin_snapshot mgr in
  Tsb_engine.insert ~txn:t1 t ~key:"k" ~value:"first";
  Tsb_engine.insert ~txn:t2 t ~key:"k" ~value:"second";
  Alcotest.(check bool) "first committer wins" true
    (Mvcc.commit mgr t1 <> None);
  (match Mvcc.commit mgr t2 with
  | _ -> Alcotest.fail "second committer must conflict"
  | exception Mvcc.Write_conflict { key; _ } ->
      Alcotest.(check string) "conflicting key" "k" key);
  Alcotest.(check bool) "loser aborted" false (Txn.is_active t2);
  get "winner's value stands" (Some "first") (Tsb.get t "k");
  let d = Mvcc.sub_stats (Mvcc.stats ()) s0 in
  Alcotest.(check int) "one conflict counted" 1 d.Mvcc.conflicts;
  Alcotest.(check int) "one abort counted" 1 d.Mvcc.aborted

(* Write skew is the anomaly SI permits: both transactions read both
   keys, write disjoint keys, and both MUST commit — this is the
   documented expected-pass history (degrading SI to FCW-on-reads or
   upgrading to serializability would fail it). *)
let test_si_write_skew_permitted () =
  let env, t = mk () in
  ignore (Tsb.put t ~key:"x" ~value:"1");
  ignore (Tsb.put t ~key:"y" ~value:"1");
  let mgr = Env.txns env in
  let t1 = Mvcc.begin_snapshot mgr in
  let t2 = Mvcc.begin_snapshot mgr in
  get "t1 reads x" (Some "1") (Tsb_engine.find ~txn:t1 t "x");
  get "t1 reads y" (Some "1") (Tsb_engine.find ~txn:t1 t "y");
  get "t2 reads x" (Some "1") (Tsb_engine.find ~txn:t2 t "x");
  get "t2 reads y" (Some "1") (Tsb_engine.find ~txn:t2 t "y");
  Tsb_engine.insert ~txn:t1 t ~key:"y" ~value:"t1";
  Tsb_engine.insert ~txn:t2 t ~key:"x" ~value:"t2";
  Alcotest.(check bool) "t1 commits" true (Mvcc.commit mgr t1 <> None);
  Alcotest.(check bool) "t2 commits (disjoint write sets)" true
    (Mvcc.commit mgr t2 <> None);
  get "t1's write" (Some "t1") (Tsb.get t "y");
  get "t2's write" (Some "t2") (Tsb.get t "x")

(* --- the zero-lock / zero-latch-wait read guarantee --------------------- *)

let test_si_reads_lock_free () =
  let env, t = mk () in
  for i = 0 to 63 do
    ignore (Tsb.put t ~key:(Printf.sprintf "k%02d" i) ~value:"v")
  done;
  ignore (Env.drain env);
  let mgr = Env.txns env in
  let txn = Mvcc.begin_snapshot mgr in
  let locks0 = (Lock_manager.stats (Env.locks env)).Lock_manager.acquisitions in
  let latch0 = (Latch.global_stats ()).Latch.contended in
  for round = 0 to 4 do
    ignore round;
    for i = 0 to 63 do
      ignore (Tsb_engine.find ~txn t (Printf.sprintf "k%02d" i))
    done
  done;
  ignore (Tsb_engine.scan ~txn t ~low:"" ~n:100);
  let locks1 = (Lock_manager.stats (Env.locks env)).Lock_manager.acquisitions in
  let latch1 = (Latch.global_stats ()).Latch.contended in
  Alcotest.(check int) "zero lock-manager calls" 0 (locks1 - locks0);
  Alcotest.(check int) "zero latch waits" 0 (latch1 - latch0);
  let si = Option.get (Mvcc.si_of txn) in
  Alcotest.(check bool) "reads accounted" true (si.Txn.si_reads >= 320);
  ignore (Mvcc.commit mgr txn)

(* --- crash + recovery --------------------------------------------------- *)

let test_si_stale_snapshot_after_recover () =
  let env, t = mk () in
  ignore (Tsb.put t ~key:"k" ~value:"v");
  let txn = Mvcc.begin_snapshot (Env.txns env) in
  get "live before crash" (Some "v") (Tsb_engine.find ~txn t "k");
  Env.crash env;
  ignore (Env.recover env);
  let t = Option.get (Tsb.open_existing env ~name:"v") in
  let s0 = Mvcc.stats () in
  (match Tsb_engine.find ~txn t "k" with
  | _ -> Alcotest.fail "stale snapshot must not read"
  | exception Mvcc.Stale_snapshot -> ());
  let d = Mvcc.sub_stats (Mvcc.stats ()) s0 in
  Alcotest.(check int) "stale abort counted" 1 d.Mvcc.stale_aborts;
  (* Commit of the straddling transaction fails the same way. *)
  (match Mvcc.commit (Env.txns env) txn with
  | _ -> Alcotest.fail "stale snapshot must not commit"
  | exception Mvcc.Stale_snapshot -> ());
  (* Fresh transactions against the recovered allocator work. *)
  let txn2 = Mvcc.begin_snapshot (Env.txns env) in
  get "recovered state" (Some "v") (Tsb_engine.find ~txn:txn2 t "k");
  ignore (Mvcc.commit (Env.txns env) txn2)

(* Satellite: recovery rebuilds the allocator from Commit_ts records —
   the recovered floor covers every pre-crash commit timestamp, so new
   timestamps never collide with durable versions. *)
let test_si_recovery_rebuilds_allocator () =
  let env, t = mk () in
  let commit_one mgr t k v =
    let txn = Mvcc.begin_snapshot mgr in
    Tsb_engine.insert ~txn t ~key:k ~value:v;
    match Mvcc.commit mgr txn with Some ts -> ts | None -> assert false
  in
  let ts1 = commit_one (Env.txns env) t "a" "1" in
  let ts2 = commit_one (Env.txns env) t "b" "2" in
  Alcotest.(check bool) "tss increase" true (ts2 > ts1);
  Env.crash env;
  let report = Env.recover env in
  Alcotest.(check bool) "analysis saw Commit_ts" true
    (report.Recovery.max_commit_ts >= ts2);
  let t = Option.get (Tsb.open_existing env ~name:"v") in
  let mgr = Env.txns env in
  Alcotest.(check bool) "allocator floor covers old commits" true
    (Snapshot.completed (Txn_mgr.snapshots mgr) >= ts2);
  (* A fresh snapshot reads the pre-crash commits... *)
  let txn = Mvcc.begin_snapshot mgr in
  get "a" (Some "1") (Tsb_engine.find ~txn t "a");
  get "b" (Some "2") (Tsb_engine.find ~txn t "b");
  ignore (Mvcc.commit mgr txn);
  (* ...and a fresh commit stamps strictly above them. *)
  let ts3 = commit_one mgr t "c" "3" in
  Alcotest.(check bool) "new ts above recovered floor" true (ts3 > ts2);
  get "old version untouched" (Some "2") (Tsb.get_asof t "b" ~time:ts2)

(* Satellite: crash points inside the commit sequence, including the
   window between timestamp allocation and the Commit_ts record. At
   every point the transaction never committed, so recovery must erase
   its buffered writes and the snapshot state must be exactly
   pre-transaction. *)
let test_si_commit_crash_points () =
  List.iter
    (fun point ->
      Fun.protect ~finally:Crash_point.disarm_all @@ fun () ->
      let env, t = mk () in
      ignore (Tsb.put t ~key:"k" ~value:"base");
      let mgr = Env.txns env in
      let txn = Mvcc.begin_snapshot mgr in
      Tsb_engine.insert ~txn t ~key:"k" ~value:"doomed";
      Tsb_engine.insert ~txn t ~key:"k2" ~value:"doomed2";
      Crash_point.arm point ~after:0;
      (match Mvcc.commit mgr txn with
      | _ -> Alcotest.failf "%s: commit survived an armed crash point" point
      | exception Crash_point.Crash_requested _ -> ());
      Crash_point.disarm_all ();
      Env.crash env;
      ignore (Env.recover env);
      let t = Option.get (Tsb.open_existing env ~name:"v") in
      get (point ^ ": write rolled back") (Some "base") (Tsb.get t "k");
      get (point ^ ": second write rolled back") None (Tsb.get t "k2");
      (* The allocator recovered past whatever the doomed commit used. *)
      let txn2 = Mvcc.begin_snapshot (Env.txns env) in
      Tsb_engine.insert ~txn:txn2 t ~key:"k" ~value:"after";
      Alcotest.(check bool)
        (point ^ ": post-recovery commit works")
        true
        (Mvcc.commit (Env.txns env) txn2 <> None);
      get (point ^ ": post-recovery value") (Some "after") (Tsb.get t "k"))
    [ "mvcc.commit.validated"; "mvcc.commit.allocated"; "mvcc.commit.logged" ]

(* --- GC horizon --------------------------------------------------------- *)

let test_si_gc_horizon_clamp () =
  let env, t = mk () in
  for i = 0 to 9 do
    ignore (Tsb.put t ~key:"k" ~value:(string_of_int i))
  done;
  let mgr = Env.txns env in
  let snap = Txn_mgr.snapshots mgr in
  (* Before any checkpoint the floor is 0: GC may retire nothing. *)
  Tsb.set_horizon t 1_000_000;
  Alcotest.(check int) "no checkpoint -> horizon pinned at 0" 0
    (Tsb.horizon t);
  (* A live snapshot bounds the horizon below its read timestamp even
     after a checkpoint raises the floor. *)
  let txn = Mvcc.begin_snapshot mgr in
  let read_ts = (Option.get (Mvcc.si_of txn)).Txn.read_ts in
  for i = 10 to 19 do
    ignore (Tsb.put t ~key:"k" ~value:(string_of_int i))
  done;
  Env.checkpoint env;
  Tsb.set_horizon t 1_000_000;
  Alcotest.(check bool) "live snapshot bounds horizon" true
    (Tsb.horizon t < read_ts);
  get "snapshot still readable" (Some "9")
    (Tsb.get_asof t "k" ~time:read_ts);
  ignore (Mvcc.commit mgr txn);
  (* Snapshot released: the checkpoint floor is the binding constraint. *)
  Tsb.set_horizon t 1_000_000;
  Alcotest.(check int) "released -> horizon = ckpt floor"
    (Snapshot.checkpoint_floor snap) (Tsb.horizon t);
  Alcotest.(check bool) "floor advanced" true (Tsb.horizon t >= read_ts)

let suites =
  [
    ( "mvcc",
      [
        Alcotest.test_case "allocator monotone watermark" `Quick
          test_alloc_monotone;
        Alcotest.test_case "allocator observe_floor" `Quick
          test_alloc_observe_floor;
        Alcotest.test_case "allocator pins + gc_cap" `Quick
          test_alloc_pins_and_gc_cap;
        Alcotest.test_case "allocator 4-domain storm" `Quick test_alloc_storm;
        Alcotest.test_case "si basics" `Quick test_si_basics;
        Alcotest.test_case "snapshot stable under writes" `Quick
          test_si_snapshot_stable;
        Alcotest.test_case "delete buffers tombstone" `Quick
          test_si_delete_buffers;
        Alcotest.test_case "first committer wins" `Quick test_si_fcw_conflict;
        Alcotest.test_case "write skew permitted" `Quick
          test_si_write_skew_permitted;
        Alcotest.test_case "snapshot reads: zero locks, zero latch waits"
          `Quick test_si_reads_lock_free;
        Alcotest.test_case "stale snapshot after recover" `Quick
          test_si_stale_snapshot_after_recover;
        Alcotest.test_case "recovery rebuilds allocator" `Quick
          test_si_recovery_rebuilds_allocator;
        Alcotest.test_case "commit crash points" `Quick
          test_si_commit_crash_points;
        Alcotest.test_case "gc horizon clamp" `Quick test_si_gc_horizon_clamp;
      ] );
  ]
