(** Crash recovery and transaction rollback.

    ARIES-style three passes — analysis, redo, undo — specialized to the
    paper's needs:

    - {b Atomic actions take no special measures} (paper innovation 4): an
      atomic action whose Commit record is durable is a winner; one that is
      not is a loser and is rolled back whole, restoring the tree to the
      well-formed state between atomic actions. No structure-change-specific
      logic exists here at all.
    - Undo is page-oriented: every undo step re-applies the inverse page
      operation to the original page and is logged as a CLR whose
      [undo_next] backchains past it, so repeated crashes during recovery
      never undo twice.

    {!rollback} is the same walk used by live transaction abort. *)

type report = {
  analyzed : int;      (** records scanned by analysis *)
  redone : int;        (** page operations re-applied *)
  skipped : int;       (** redo skipped because the page was already current *)
  loser_txns : int list;  (** transactions rolled back *)
  clrs_written : int;
  committed_unended : int;  (** winners that just needed an End record *)
  torn_pages : int;
      (** pages whose durable image failed checksum verification (torn
          write or bit rot) and were rebuilt purely from redo history *)
  retried_reads : int;
      (** disk reads the buffer pool re-issued during this restart to
          absorb transient errors *)
  max_commit_ts : int;
      (** largest [Commit_ts] timestamp seen during analysis (0 if none);
          seeds the rebuilt {!Pitree_txn.Snapshot} allocator *)
}

val pp_report : Format.formatter -> report -> unit

val run : log:Log_manager.t -> pool:Pitree_storage.Buffer_pool.t -> report
(** Bring the database to a consistent state after [Log_manager.crash] /
    [Buffer_pool.crash]. On return, all effects of winners are in the
    buffer pool and all losers are fully undone (with CLRs and End records
    in the log, which is flushed). *)

val rollback :
  ?prev:Lsn.t ->
  log:Log_manager.t ->
  pool:Pitree_storage.Buffer_pool.t ->
  txn:int ->
  from_lsn:Lsn.t ->
  unit ->
  Lsn.t
(** [rollback ~log ~pool ~txn ~from_lsn ()] undoes [txn]'s updates starting
    at its most recent record [from_lsn], writing CLRs backchained from
    [?prev] (default [from_lsn], normally the Abort record's LSN). Returns
    the LSN of the last CLR written ([Lsn.null] if none). The caller is
    responsible for the surrounding Abort/End records. Pages touched are
    pinned, X-latched and unlatched internally. *)
