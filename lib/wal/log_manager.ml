module Histogram = Pitree_util.Histogram
module Crash_point = Pitree_util.Crash_point

type backing = {
  fd : Unix.file_descr;
  path : string;
  mutable file_end : int;  (* byte offset of the durable tail *)
}

type t = {
  mu : Mutex.t;
  cond : Condition.t;  (* signalled when [durable] advances or a leader retires *)
  group_commit : bool;
  mutable records : string array;
      (* encoded window; lsn n at index n-1-purged *)
  mutable count : int;  (* total LSNs ever appended *)
  mutable purged : int;  (* records discarded from the front by truncation *)
  mutable max_txn : int;  (* highest txn id ever appended (survives purges) *)
  mutable durable : Lsn.t;
  mutable redo_from : Lsn.t;
  (* --- group-commit pipeline state (all under [mu]) --- *)
  mutable flushing : bool;  (* a leader currently owns the write path *)
  mutable flush_target : Lsn.t;  (* highest durability anyone has asked for *)
  mutable pending : Lsn.t list;  (* enrolled requests not yet durable *)
  (* --- stats (all under [mu]) --- *)
  mutable forces : int;  (* real fsyncs only *)
  mutable flushes : int;  (* durability-advance events (incl. in-memory) *)
  mutable flush_requests : int;  (* flush calls that found undurable records *)
  mutable bytes : int;
  batch_hist : Histogram.t;  (* enrolled requests covered per flush event *)
  wait_hist : Histogram.t;  (* ns a committer spent blocked in [flush] *)
  backing : backing option;
}

(* Registered up front so sweep harnesses can enumerate it before it ever
   fires. It sits between the batch reaching disk and the waiters being
   woken: the classic lost-acknowledgment window of group commit. *)
let crash_point_synced = "wal.group.synced"

let () = Crash_point.register crash_point_synced

let ckpt_path path = path ^ ".ckpt"

(* Load the durable prefix of a log file: framed records back to back; a
   torn tail (short or CRC-corrupt final record) is discarded, exactly as a
   real log manager does on restart. *)
let load_file path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let buf = Bytes.make size '\000' in
  let rec fill off =
    if off < size then
      let n = Unix.read fd buf off (size - off) in
      if n = 0 then off else fill (off + n)
    else off
  in
  let got = fill 0 in
  let data = Bytes.sub_string buf 0 got in
  let records = ref [] in
  let off = ref 0 in
  (try
     while !off < got do
       let r = Pitree_util.Codec.reader ~pos:!off data in
       let len = Pitree_util.Codec.get_u32 r in
       let total = 4 + len + 4 in
       if !off + total > got then raise Exit;
       let framed = String.sub data !off total in
       (* Validate CRC before accepting. *)
       ignore (Log_record.decode framed);
       records := framed :: !records;
       off := !off + total
     done
   with Exit | Pitree_util.Codec.Corrupt _ -> ());
  (* Truncate any torn tail so future appends start clean. *)
  if !off < got then Unix.ftruncate fd !off;
  (fd, List.rev !records, !off)

let create ?path ?(group_commit = true) () =
  match path with
  | None ->
      {
        mu = Mutex.create ();
        cond = Condition.create ();
        group_commit;
        records = Array.make 1024 "";
        count = 0;
        purged = 0;
        max_txn = 0;
        durable = Lsn.null;
        redo_from = 1;
        flushing = false;
        flush_target = Lsn.null;
        pending = [];
        forces = 0;
        flushes = 0;
        flush_requests = 0;
        bytes = 0;
        batch_hist = Histogram.create ();
        wait_hist = Histogram.create ();
        backing = None;
      }
  | Some path ->
      let fd, recs, file_end = load_file path in
      let n = List.length recs in
      let arr = Array.make (max 1024 n) "" in
      List.iteri (fun i s -> arr.(i) <- s) recs;
      let redo_from =
        match open_in_bin (ckpt_path path) with
        | ic ->
            let v = try int_of_string (input_line ic) with _ -> 1 in
            close_in ic;
            if v >= 1 && v <= n then v else 1
        | exception Sys_error _ -> 1
      in
      {
        mu = Mutex.create ();
        cond = Condition.create ();
        group_commit;
        records = arr;
        count = n;
        purged = 0;
        max_txn =
          List.fold_left
            (fun acc s -> max acc (Log_record.decode s).Log_record.txn)
            0 recs;
        durable = n;
        redo_from;
        flushing = false;
        flush_target = Lsn.null;
        pending = [];
        forces = 0;
        flushes = 0;
        flush_requests = 0;
        bytes = List.fold_left (fun a s -> a + String.length s) 0 recs;
        batch_hist = Histogram.create ();
        wait_hist = Histogram.create ();
        backing = Some { fd; path; file_end };
      }

let window t = t.count - t.purged

let grow t =
  let bigger = Array.make (2 * Array.length t.records) "" in
  Array.blit t.records 0 bigger 0 (window t);
  t.records <- bigger

let append t ~prev ~txn body =
  Mutex.lock t.mu;
  let lsn = t.count + 1 in
  let encoded = Log_record.encode { Log_record.lsn; prev; txn; body } in
  if window t >= Array.length t.records then grow t;
  t.records.(window t) <- encoded;
  t.count <- t.count + 1;
  if txn > t.max_txn then t.max_txn <- txn;
  t.bytes <- t.bytes + String.length encoded;
  Mutex.unlock t.mu;
  lsn

(* Caller holds [t.mu]. Concatenate the frames (durable, upto]. *)
let gather t upto =
  let buf = Buffer.create 4096 in
  for i = t.durable to upto - 1 do
    Buffer.add_string buf t.records.(i - t.purged)
  done;
  Buffer.contents buf

(* One sequential write + one fsync for the whole batch. Only the leader
   (flushing = true) reaches this, so the fd and [file_end] are private to
   it for the duration. Returns true iff a real fsync happened. *)
let write_payload b payload =
  if String.length payload = 0 then false
  else begin
    ignore (Unix.lseek b.fd b.file_end Unix.SEEK_SET);
    let bytes = Bytes.of_string payload in
    let rec push off =
      if off < Bytes.length bytes then
        push (off + Unix.write b.fd bytes off (Bytes.length bytes - off))
    in
    push 0;
    Unix.fsync b.fd;
    b.file_end <- b.file_end + String.length payload;
    true
  end

(* Group-commit core. [mu] is held on entry and exit. The calling thread
   either waits for a leader to cover its LSN or becomes the leader itself:
   it snapshots everything requested so far, performs one write + fsync
   with [mu] released (serial mode keeps it held, reproducing the
   pre-group-commit force path for baseline measurement), publishes the new
   durability horizon and wakes every covered waiter. Requests that arrive
   while the leader is in the write path accumulate for the next leader —
   the pipeline that lets N concurrent committers share O(1) fsyncs. *)
let rec flush_locked t target =
  if t.durable >= target then ()
  else if t.flushing then begin
    Condition.wait t.cond t.mu;
    flush_locked t target
  end
  else begin
    t.flushing <- true;
    let upto = min t.flush_target t.count in
    let payload = match t.backing with None -> "" | Some _ -> gather t upto in
    let synced =
      match t.backing with
      | None -> false
      | Some b ->
          if t.group_commit then begin
            Mutex.unlock t.mu;
            let synced =
              match write_payload b payload with
              | synced -> synced
              | exception e ->
                  (* Leave the pipeline electable before re-raising. *)
                  Mutex.lock t.mu;
                  t.flushing <- false;
                  Condition.broadcast t.cond;
                  Mutex.unlock t.mu;
                  raise e
            in
            Mutex.lock t.mu;
            synced
          end
          else begin
            match write_payload b payload with
            | synced -> synced
            | exception e ->
                t.flushing <- false;
                Condition.broadcast t.cond;
                Mutex.unlock t.mu;
                raise e
          end
    in
    t.durable <- upto;
    t.flushes <- t.flushes + 1;
    if synced then t.forces <- t.forces + 1;
    let covered, rest = List.partition (fun l -> l <= upto) t.pending in
    t.pending <- rest;
    if covered <> [] then Histogram.record t.batch_hist (List.length covered);
    t.flushing <- false;
    (* The batch is durable but its waiters have not been woken yet: a crash
       here loses acknowledgments, never committed work. The hook runs
       outside [mu] so a simulated crash unwinds with the manager unlocked
       and electable. *)
    Mutex.unlock t.mu;
    (try Crash_point.hit crash_point_synced
     with e ->
       Mutex.lock t.mu;
       Condition.broadcast t.cond;
       Mutex.unlock t.mu;
       raise e);
    Mutex.lock t.mu;
    Condition.broadcast t.cond;
    (* [upto >= target] (the target was folded into [flush_target] before
       election), so this returns immediately. *)
    flush_locked t target
  end

let flush t lsn =
  Mutex.lock t.mu;
  let target = min lsn t.count in
  if target > t.durable then begin
    let t0 = Unix.gettimeofday () in
    t.flush_requests <- t.flush_requests + 1;
    if target > t.flush_target then t.flush_target <- target;
    t.pending <- target :: t.pending;
    flush_locked t target;
    Histogram.record t.wait_hist
      (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
  end;
  Mutex.unlock t.mu

let flush_all t =
  Mutex.lock t.mu;
  let target = t.count in
  Mutex.unlock t.mu;
  flush t target

let last_lsn t =
  Mutex.lock t.mu;
  let v = t.count in
  Mutex.unlock t.mu;
  v

let flushed_lsn t =
  Mutex.lock t.mu;
  let v = t.durable in
  Mutex.unlock t.mu;
  v

let read t lsn =
  Mutex.lock t.mu;
  if lsn < 1 || lsn > t.count then begin
    Mutex.unlock t.mu;
    invalid_arg (Printf.sprintf "Log_manager.read: bad lsn %d (count %d)" lsn t.count)
  end;
  if lsn <= t.purged then begin
    Mutex.unlock t.mu;
    invalid_arg (Printf.sprintf "Log_manager.read: lsn %d was truncated" lsn)
  end;
  let s = t.records.(lsn - 1 - t.purged) in
  Mutex.unlock t.mu;
  Log_record.decode s

let iter_from t lsn f =
  let get i =
    Mutex.lock t.mu;
    let s =
      if i > t.purged && i <= t.count then Some t.records.(i - 1 - t.purged)
      else None
    in
    Mutex.unlock t.mu;
    s
  in
  let rec go i =
    match get i with
    | None -> ()
    | Some s ->
        f (Log_record.decode s);
        go (i + 1)
  in
  go (max (t.purged + 1) (max 1 lsn))

let max_txn_id t =
  Mutex.lock t.mu;
  let v = t.max_txn in
  Mutex.unlock t.mu;
  v

(* Discard records with lsn < keep_from from the in-memory window. Only
   durable, pre-redo-point records may go (a file-backed log keeps its file
   as the archive). Returns how many records were discarded. The clamp to
   [durable] also protects a concurrent leader: the batch it is writing is
   entirely above [durable], so truncation never slides records out from
   under it. *)
let truncate t ~keep_from =
  Mutex.lock t.mu;
  let keep_from = min keep_from (min (t.durable + 1) t.redo_from) in
  let n = max 0 (keep_from - 1 - t.purged) in
  if n > 0 then begin
    let w = window t in
    Array.blit t.records n t.records 0 (w - n);
    Array.fill t.records (w - n) n "";
    t.purged <- t.purged + n
  end;
  Mutex.unlock t.mu;
  n

let redo_start t = t.redo_from

let set_redo_start t lsn =
  t.redo_from <- lsn;
  match t.backing with
  | None -> ()
  | Some b ->
      let oc = open_out_bin (ckpt_path b.path) in
      output_string oc (string_of_int lsn);
      close_out oc

let crash t =
  Mutex.lock t.mu;
  let fresh =
    match t.backing with
    | None ->
        let fresh = create ~group_commit:t.group_commit () in
        let kept = t.durable - t.purged in
        fresh.count <- t.durable;
        fresh.purged <- t.purged;
        fresh.max_txn <- t.max_txn;
        fresh.durable <- t.durable;
        fresh.records <- Array.make (max 1024 kept) "";
        Array.blit t.records 0 fresh.records 0 kept;
        fresh.redo_from <- (if t.redo_from <= t.durable then t.redo_from else 1);
        fresh.bytes <-
          Array.fold_left (fun acc s -> acc + String.length s) 0
            (Array.sub fresh.records 0 kept);
        fresh
    | Some b ->
        (* Power failure: only the file survives. Reopen it. *)
        Unix.close b.fd;
        create ~path:b.path ~group_commit:t.group_commit ()
  in
  Mutex.unlock t.mu;
  fresh

type stats = {
  appends : int;
  forces : int;
  flushes : int;
  flush_requests : int;
  bytes : int;
  batch_mean : float;
  batch_p99 : int;
  batch_max : int;
  wait_mean_ns : float;
  wait_p50_ns : int;
  wait_p99_ns : int;
}

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      appends = t.count;
      forces = t.forces;
      flushes = t.flushes;
      flush_requests = t.flush_requests;
      bytes = t.bytes;
      batch_mean = Histogram.mean t.batch_hist;
      batch_p99 = Histogram.percentile t.batch_hist 99.0;
      batch_max = Histogram.max_value t.batch_hist;
      wait_mean_ns = Histogram.mean t.wait_hist;
      wait_p50_ns = Histogram.percentile t.wait_hist 50.0;
      wait_p99_ns = Histogram.percentile t.wait_hist 99.0;
    }
  in
  Mutex.unlock t.mu;
  s

let pp_stats ppf s =
  Format.fprintf ppf
    "wal: appends=%d forces=%d flushes=%d requests=%d bytes=%d \
     batch{mean=%.2f p99=%d max=%d} wait_ns{mean=%.0f p50=%d p99=%d}"
    s.appends s.forces s.flushes s.flush_requests s.bytes s.batch_mean
    s.batch_p99 s.batch_max s.wait_mean_ns s.wait_p50_ns s.wait_p99_ns
