module Histogram = Pitree_util.Histogram
module Crash_point = Pitree_util.Crash_point

type backing = {
  mutable fd : Unix.file_descr;  (* replaced when truncation rewrites the file *)
  path : string;
  mutable file_end : int;  (* byte offset of the durable tail *)
}

type t = {
  mu : Mutex.t;
  cond : Condition.t;  (* signalled when [durable] advances or a leader retires *)
  group_commit : bool;
  mutable records : string array;
      (* encoded window; lsn n at index n-1-purged *)
  mutable count : int;  (* total LSNs ever appended *)
  mutable purged : int;  (* records discarded from the front by truncation *)
  mutable max_txn : int;  (* highest txn id ever appended (survives purges) *)
  mutable durable : Lsn.t;
  mutable redo_from : Lsn.t;
  mutable ckpt_lsn : Lsn.t;  (* last complete End_checkpoint (null if none) *)
  (* --- group-commit pipeline state (all under [mu]) --- *)
  mutable flushing : bool;  (* a leader currently owns the write path *)
  mutable flush_target : Lsn.t;  (* highest durability anyone has asked for *)
  mutable pending : Lsn.t list;  (* enrolled requests not yet durable *)
  (* --- stats (all under [mu]) --- *)
  mutable forces : int;  (* real fsyncs only *)
  mutable flushes : int;  (* durability-advance events (incl. in-memory) *)
  mutable flush_requests : int;  (* flush calls that found undurable records *)
  mutable logical_commits : int;
      (* commits covered by those requests: a combined batch enrolls once
         for N commits, so logical_commits / flush_requests is the
         write-combining fan-in on top of group commit's *)
  mutable bytes : int;
  mutable truncations : int;
  mutable truncated_records : int;
  mutable truncated_bytes : int;
  batch_hist : Histogram.t;  (* enrolled requests covered per flush event *)
  wait_hist : Histogram.t;  (* ns a committer spent blocked in [flush] *)
  backing : backing option;
}

(* Registered up front so sweep harnesses can enumerate it before it ever
   fires. It sits between the batch reaching disk and the waiters being
   woken: the classic lost-acknowledgment window of group commit. *)
let crash_point_synced = "wal.group.synced"

let () = Crash_point.register crash_point_synced

let ckpt_path path = path ^ ".ckpt"

(* The master record: where recovery finds the last complete checkpoint.
   Two integers — the End_checkpoint record's LSN and the redo floor
   (min rec_lsn over its dirty-page table) — kept in a tiny sidecar next to
   the log file rather than in a logged page (a logged page's own recovery
   would depend on the very pointer it stores). *)
let write_master path ~ckpt ~redo =
  let oc = open_out_bin (ckpt_path path) in
  output_string oc (string_of_int ckpt);
  output_char oc '\n';
  output_string oc (string_of_int redo);
  close_out oc

let read_master path =
  match open_in_bin (ckpt_path path) with
  | ic ->
      let line () = try Some (int_of_string (String.trim (input_line ic))) with _ -> None in
      let ckpt = line () in
      let redo = line () in
      close_in ic;
      (match (ckpt, redo) with
      | Some c, Some r -> (c, r)
      | Some c, None -> (c, c)  (* legacy single-int sidecar: redo at the record *)
      | _ -> (Lsn.null, Lsn.null))
  | exception Sys_error _ -> (Lsn.null, Lsn.null)

(* Load the durable prefix of a log file: framed records back to back; a
   torn tail (short or CRC-corrupt final record) is discarded, exactly as a
   real log manager does on restart. The file may start mid-history (after
   a truncation); the first record's embedded LSN tells us how much of the
   prefix was reclaimed. *)
let load_file path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let buf = Bytes.make size '\000' in
  let rec fill off =
    if off < size then
      let n = Unix.read fd buf off (size - off) in
      if n = 0 then off else fill (off + n)
    else off
  in
  let got = fill 0 in
  let data = Bytes.sub_string buf 0 got in
  let records = ref [] in
  let off = ref 0 in
  (try
     while !off < got do
       let r = Pitree_util.Codec.reader ~pos:!off data in
       let len = Pitree_util.Codec.get_u32 r in
       let total = 4 + len + 4 in
       if !off + total > got then raise Exit;
       let framed = String.sub data !off total in
       (* Validate CRC before accepting. *)
       ignore (Log_record.decode framed);
       records := framed :: !records;
       off := !off + total
     done
   with Exit | Pitree_util.Codec.Corrupt _ -> ());
  (* Truncate any torn tail so future appends start clean. *)
  if !off < got then Unix.ftruncate fd !off;
  (fd, List.rev !records, !off)

let create ?path ?(group_commit = true) () =
  match path with
  | None ->
      {
        mu = Mutex.create ();
        cond = Condition.create ();
        group_commit;
        records = Array.make 1024 "";
        count = 0;
        purged = 0;
        max_txn = 0;
        durable = Lsn.null;
        redo_from = 1;
        ckpt_lsn = Lsn.null;
        flushing = false;
        flush_target = Lsn.null;
        pending = [];
        forces = 0;
        flushes = 0;
        flush_requests = 0;
        logical_commits = 0;
        bytes = 0;
        truncations = 0;
        truncated_records = 0;
        truncated_bytes = 0;
        batch_hist = Histogram.create ();
        wait_hist = Histogram.create ();
        backing = None;
      }
  | Some path ->
      let fd, recs, file_end = load_file path in
      let n = List.length recs in
      let arr = Array.make (max 1024 n) "" in
      List.iteri (fun i s -> arr.(i) <- s) recs;
      (* A truncated log starts mid-history: the purged prefix is implied
         by the first surviving record's LSN. *)
      let purged =
        match recs with
        | [] -> 0
        | first :: _ -> (Log_record.decode first).Log_record.lsn - 1
      in
      let count = purged + n in
      let master_ckpt, master_redo = read_master path in
      let valid v = v >= purged + 1 && v <= count in
      let ckpt_lsn = if valid master_ckpt then master_ckpt else Lsn.null in
      let redo_from =
        if Lsn.is_null ckpt_lsn then purged + 1
        else if valid master_redo then master_redo
        else purged + 1
      in
      {
        mu = Mutex.create ();
        cond = Condition.create ();
        group_commit;
        records = arr;
        count;
        purged;
        max_txn =
          List.fold_left
            (fun acc s -> max acc (Log_record.decode s).Log_record.txn)
            0 recs;
        durable = count;
        redo_from;
        ckpt_lsn;
        flushing = false;
        flush_target = Lsn.null;
        pending = [];
        forces = 0;
        flushes = 0;
        flush_requests = 0;
        logical_commits = 0;
        bytes = List.fold_left (fun a s -> a + String.length s) 0 recs;
        truncations = 0;
        truncated_records = 0;
        truncated_bytes = 0;
        batch_hist = Histogram.create ();
        wait_hist = Histogram.create ();
        backing = Some { fd; path; file_end };
      }

let window t = t.count - t.purged

let grow t =
  let bigger = Array.make (2 * Array.length t.records) "" in
  Array.blit t.records 0 bigger 0 (window t);
  t.records <- bigger

let append t ~prev ~txn body =
  Mutex.lock t.mu;
  let lsn = t.count + 1 in
  let encoded = Log_record.encode { Log_record.lsn; prev; txn; body } in
  if window t >= Array.length t.records then grow t;
  t.records.(window t) <- encoded;
  t.count <- t.count + 1;
  if txn > t.max_txn then t.max_txn <- txn;
  t.bytes <- t.bytes + String.length encoded;
  Mutex.unlock t.mu;
  lsn

(* Caller holds [t.mu]. Concatenate the frames (durable, upto]. *)
let gather t upto =
  let buf = Buffer.create 4096 in
  for i = t.durable to upto - 1 do
    Buffer.add_string buf t.records.(i - t.purged)
  done;
  Buffer.contents buf

(* One sequential write + one fsync for the whole batch. Only the leader
   (flushing = true) reaches this, so the fd and [file_end] are private to
   it for the duration. Returns true iff a real fsync happened. *)
let write_payload b payload =
  if String.length payload = 0 then false
  else begin
    ignore (Unix.lseek b.fd b.file_end Unix.SEEK_SET);
    let bytes = Bytes.of_string payload in
    let rec push off =
      if off < Bytes.length bytes then
        push (off + Unix.write b.fd bytes off (Bytes.length bytes - off))
    in
    push 0;
    Unix.fsync b.fd;
    b.file_end <- b.file_end + String.length payload;
    true
  end

(* Group-commit core. [mu] is held on entry and exit. The calling thread
   either waits for a leader to cover its LSN or becomes the leader itself:
   it snapshots everything requested so far, performs one write + fsync
   with [mu] released (serial mode keeps it held, reproducing the
   pre-group-commit force path for baseline measurement), publishes the new
   durability horizon and wakes every covered waiter. Requests that arrive
   while the leader is in the write path accumulate for the next leader —
   the pipeline that lets N concurrent committers share O(1) fsyncs. *)
let rec flush_locked t target =
  if t.durable >= target then ()
  else if t.flushing then begin
    Condition.wait t.cond t.mu;
    flush_locked t target
  end
  else begin
    t.flushing <- true;
    let upto = min t.flush_target t.count in
    let payload = match t.backing with None -> "" | Some _ -> gather t upto in
    let synced =
      match t.backing with
      | None -> false
      | Some b ->
          if t.group_commit then begin
            Mutex.unlock t.mu;
            let synced =
              match write_payload b payload with
              | synced -> synced
              | exception e ->
                  (* Leave the pipeline electable before re-raising. *)
                  Mutex.lock t.mu;
                  t.flushing <- false;
                  Condition.broadcast t.cond;
                  Mutex.unlock t.mu;
                  raise e
            in
            Mutex.lock t.mu;
            synced
          end
          else begin
            match write_payload b payload with
            | synced -> synced
            | exception e ->
                t.flushing <- false;
                Condition.broadcast t.cond;
                Mutex.unlock t.mu;
                raise e
          end
    in
    t.durable <- upto;
    t.flushes <- t.flushes + 1;
    if synced then t.forces <- t.forces + 1;
    let covered, rest = List.partition (fun l -> l <= upto) t.pending in
    t.pending <- rest;
    if covered <> [] then Histogram.record t.batch_hist (List.length covered);
    t.flushing <- false;
    (* The batch is durable but its waiters have not been woken yet: a crash
       here loses acknowledgments, never committed work. The hook runs
       outside [mu] so a simulated crash unwinds with the manager unlocked
       and electable. *)
    Mutex.unlock t.mu;
    (try Crash_point.hit crash_point_synced
     with e ->
       Mutex.lock t.mu;
       Condition.broadcast t.cond;
       Mutex.unlock t.mu;
       raise e);
    Mutex.lock t.mu;
    Condition.broadcast t.cond;
    (* [upto >= target] (the target was folded into [flush_target] before
       election), so this returns immediately. *)
    flush_locked t target
  end

let flush ?(commits = 1) t lsn =
  Mutex.lock t.mu;
  let target = min lsn t.count in
  if target > t.durable then begin
    let t0 = Unix.gettimeofday () in
    t.flush_requests <- t.flush_requests + 1;
    t.logical_commits <- t.logical_commits + commits;
    if target > t.flush_target then t.flush_target <- target;
    t.pending <- target :: t.pending;
    flush_locked t target;
    Histogram.record t.wait_hist
      (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
  end;
  Mutex.unlock t.mu

let flush_all t =
  Mutex.lock t.mu;
  let target = t.count in
  Mutex.unlock t.mu;
  flush t target

let last_lsn t =
  Mutex.lock t.mu;
  let v = t.count in
  Mutex.unlock t.mu;
  v

let flushed_lsn t =
  Mutex.lock t.mu;
  let v = t.durable in
  Mutex.unlock t.mu;
  v

let first_lsn t =
  Mutex.lock t.mu;
  let v = t.purged + 1 in
  Mutex.unlock t.mu;
  v

let file_bytes t =
  Mutex.lock t.mu;
  let v = Option.map (fun b -> b.file_end) t.backing in
  Mutex.unlock t.mu;
  v

let read t lsn =
  Mutex.lock t.mu;
  if lsn < 1 || lsn > t.count then begin
    Mutex.unlock t.mu;
    invalid_arg (Printf.sprintf "Log_manager.read: bad lsn %d (count %d)" lsn t.count)
  end;
  if lsn <= t.purged then begin
    Mutex.unlock t.mu;
    invalid_arg (Printf.sprintf "Log_manager.read: lsn %d was truncated" lsn)
  end;
  let s = t.records.(lsn - 1 - t.purged) in
  Mutex.unlock t.mu;
  Log_record.decode s

let iter_from t lsn f =
  let get i =
    Mutex.lock t.mu;
    let s =
      if i > t.purged && i <= t.count then Some t.records.(i - 1 - t.purged)
      else None
    in
    Mutex.unlock t.mu;
    s
  in
  let rec go i =
    match get i with
    | None -> ()
    | Some s ->
        f (Log_record.decode s);
        go (i + 1)
  in
  go (max (t.purged + 1) (max 1 lsn))

let max_txn_id t =
  Mutex.lock t.mu;
  let v = t.max_txn in
  Mutex.unlock t.mu;
  v

(* Discard records with lsn < keep_from, reclaiming their space. Only
   durable, pre-redo-point records may go (the clamp is the safety net for
   the documented contract: truncation never removes records at or above
   the redo point, nor records a group-commit leader has yet to write).
   For a file-backed log the surviving durable window is rewritten to a
   temporary file which is fsynced and renamed over the log — the file
   itself shrinks, and a crash during the rewrite leaves either the old or
   the new file, both complete. Returns how many records were discarded. *)
let truncate t ~keep_from =
  Mutex.lock t.mu;
  (* An in-flight leader reads the fd and file offset with [mu] released;
     wait until it retires before touching the file. While we hold [mu] no
     new leader can be elected. *)
  while t.flushing do
    Condition.wait t.cond t.mu
  done;
  let keep_from = min keep_from (min (t.durable + 1) t.redo_from) in
  let n = max 0 (keep_from - 1 - t.purged) in
  if n > 0 then begin
    let w = window t in
    let dropped_bytes = ref 0 in
    for i = 0 to n - 1 do
      dropped_bytes := !dropped_bytes + String.length t.records.(i)
    done;
    Array.blit t.records n t.records 0 (w - n);
    Array.fill t.records (w - n) n "";
    t.purged <- t.purged + n;
    t.truncations <- t.truncations + 1;
    t.truncated_records <- t.truncated_records + n;
    t.truncated_bytes <- t.truncated_bytes + !dropped_bytes;
    match t.backing with
    | None -> ()
    | Some b ->
        (* Rewrite the durable window [keep_from, durable]; the volatile
           tail above [durable] was never in the file. *)
        let buf = Buffer.create 4096 in
        for i = t.purged to t.durable - 1 do
          Buffer.add_string buf t.records.(i - t.purged)
        done;
        let payload = Buffer.contents buf in
        let tmp = b.path ^ ".tmp" in
        let fd = Unix.openfile tmp [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
        let bytes = Bytes.of_string payload in
        let rec push off =
          if off < Bytes.length bytes then
            push (off + Unix.write fd bytes off (Bytes.length bytes - off))
        in
        push 0;
        Unix.fsync fd;
        Unix.close fd;
        Unix.rename tmp b.path;
        Unix.close b.fd;
        b.fd <- Unix.openfile b.path [ Unix.O_RDWR ] 0o644;
        b.file_end <- String.length payload
  end;
  Mutex.unlock t.mu;
  n

let redo_start t = t.redo_from
let checkpoint_lsn t = t.ckpt_lsn

(* Publish a completed checkpoint: [lsn] is its End_checkpoint record,
   [redo] the redo floor recovery may start from. Persisted to the master
   sidecar before returning, so a crash immediately after sees it. *)
let set_checkpoint t ~lsn ~redo =
  Mutex.lock t.mu;
  t.ckpt_lsn <- lsn;
  t.redo_from <- redo;
  (match t.backing with
  | None -> ()
  | Some b -> write_master b.path ~ckpt:lsn ~redo);
  Mutex.unlock t.mu

let crash t =
  Mutex.lock t.mu;
  let fresh =
    match t.backing with
    | None ->
        let fresh = create ~group_commit:t.group_commit () in
        let kept = t.durable - t.purged in
        fresh.count <- t.durable;
        fresh.purged <- t.purged;
        fresh.max_txn <- t.max_txn;
        fresh.durable <- t.durable;
        fresh.records <- Array.make (max 1024 kept) "";
        Array.blit t.records 0 fresh.records 0 kept;
        fresh.redo_from <-
          (if t.redo_from <= t.durable then t.redo_from else t.purged + 1);
        fresh.ckpt_lsn <- (if t.ckpt_lsn <= t.durable then t.ckpt_lsn else Lsn.null);
        fresh.bytes <-
          Array.fold_left (fun acc s -> acc + String.length s) 0
            (Array.sub fresh.records 0 kept);
        fresh
    | Some b ->
        (* Power failure: only the file survives. Reopen it. *)
        Unix.close b.fd;
        create ~path:b.path ~group_commit:t.group_commit ()
  in
  Mutex.unlock t.mu;
  fresh

type stats = {
  appends : int;
  forces : int;
  flushes : int;
  flush_requests : int;
  logical_commits : int;
  bytes : int;
  batch_mean : float;
  batch_p99 : int;
  batch_max : int;
  wait_mean_ns : float;
  wait_p50_ns : int;
  wait_p99_ns : int;
  truncations : int;
  truncated_records : int;
  truncated_bytes : int;
}

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      appends = t.count;
      forces = t.forces;
      flushes = t.flushes;
      flush_requests = t.flush_requests;
      logical_commits = t.logical_commits;
      bytes = t.bytes;
      batch_mean = Histogram.mean t.batch_hist;
      batch_p99 = Histogram.percentile t.batch_hist 99.0;
      batch_max = Histogram.max_value t.batch_hist;
      wait_mean_ns = Histogram.mean t.wait_hist;
      wait_p50_ns = Histogram.percentile t.wait_hist 50.0;
      wait_p99_ns = Histogram.percentile t.wait_hist 99.0;
      truncations = t.truncations;
      truncated_records = t.truncated_records;
      truncated_bytes = t.truncated_bytes;
    }
  in
  Mutex.unlock t.mu;
  s

let pp_stats ppf s =
  Format.fprintf ppf
    "wal: appends=%d forces=%d flushes=%d requests=%d commits=%d bytes=%d \
     batch{mean=%.2f p99=%d max=%d} wait_ns{mean=%.0f p50=%d p99=%d} \
     trunc{n=%d records=%d bytes=%d}"
    s.appends s.forces s.flushes s.flush_requests s.logical_commits s.bytes
    s.batch_mean
    s.batch_p99 s.batch_max s.wait_mean_ns s.wait_p50_ns s.wait_p99_ns
    s.truncations s.truncated_records s.truncated_bytes
