module Page = Pitree_storage.Page
module Buffer_pool = Pitree_storage.Buffer_pool
module Latch = Pitree_sync.Latch

type report = {
  analyzed : int;
  redone : int;
  skipped : int;
  loser_txns : int list;
  clrs_written : int;
  committed_unended : int;
  torn_pages : int;
  retried_reads : int;
  max_commit_ts : int;
}

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>recovery: analyzed=%d redone=%d skipped=%d losers=[%a] clrs=%d \
     ended=%d torn=%d retried_reads=%d max_commit_ts=%d@]"
    r.analyzed r.redone r.skipped
    Fmt.(list ~sep:(any ",") int)
    r.loser_txns r.clrs_written r.committed_unended r.torn_pages
    r.retried_reads r.max_commit_ts

(* Pages whose durable image failed verification during this restart: they
   were rebuilt from scratch by redo (repeating history from their Format
   record), exactly as if they had never reached disk. *)
let torn_count = Atomic.make 0

(* Pin the page, creating an empty frame when it has no durable image yet
   (its Format record is about to be redone) — or when the durable image is
   torn or corrupt: a page that cannot be trusted is a page that was never
   written, and redo rebuilds it from the log. When [rebuilding] is given,
   a page that fell back to an empty frame is recorded in it: redo must
   withhold slot-level records from such a page until a base-establishing
   record (full-page image or Format) re-creates its contents. *)
let pin_or_new ?rebuilding pool pid =
  let fresh () =
    (match rebuilding with
    | Some tbl -> Hashtbl.replace tbl pid ()
    | None -> ());
    Buffer_pool.pin_new pool pid
  in
  match Buffer_pool.pin pool pid with
  | fr -> fr
  | exception Not_found -> fresh ()
  | exception Page.Corrupt _ ->
      Atomic.incr torn_count;
      fresh ()

(* Apply one undo step for [record] (an Update), writing a CLR. Returns the
   CLR's lsn. [prev] is the transaction's latest log record, to backchain. *)
let undo_update ~log ~pool ~txn ~prev ~page:pid ~op ~undo_next =
  let inverse = Page_op.invert op in
  let fr = pin_or_new pool pid in
  Latch.acquire fr.Buffer_pool.latch Latch.X;
  (* Dirty before the CLR is appended and before mutating: rec_lsn must be
     captured from the pre-CLR page LSN (or a checkpoint's dirty-page table
     would claim the CLR's effect is already durable), and the full-page
     image the transition may log must precede the CLR it covers. *)
  Buffer_pool.mark_dirty fr;
  let clr_lsn =
    Log_manager.append log ~prev ~txn
      (Log_record.Clr { page = pid; op = inverse; undo_next })
  in
  Page_op.redo fr.Buffer_pool.page inverse;
  Page.set_lsn fr.Buffer_pool.page clr_lsn;
  Latch.release fr.Buffer_pool.latch Latch.X;
  Buffer_pool.unpin pool fr;
  clr_lsn

let rollback ?prev ~log ~pool ~txn ~from_lsn () =
  let rec go cur prev last_clr =
    if Lsn.is_null cur then last_clr
    else
      let r = Log_manager.read log cur in
      assert (r.Log_record.txn = txn);
      match r.Log_record.body with
      | Log_record.Update { page; op; lundo = None } ->
          let clr =
            undo_update ~log ~pool ~txn ~prev ~page ~op
              ~undo_next:r.Log_record.prev
          in
          go r.Log_record.prev clr clr
      | Log_record.Update { lundo = Some { Log_record.tree; comp }; _ } ->
          (* Non-page-oriented undo: compensate through the access method
             (the record may have been moved by committed structure
             changes). *)
          let h =
            match Logical.handler_for tree with
            | Some h -> h
            | None ->
                failwith
                  (Printf.sprintf
                     "Recovery: logical-undo record for tree %d but no \
                      access-method handler registered"
                     tree)
          in
          let clr = h ~tree ~comp ~txn ~prev ~undo_next:r.Log_record.prev in
          if Lsn.is_null clr then go r.Log_record.prev prev last_clr
          else go r.Log_record.prev clr clr
      | Log_record.Clr { undo_next; _ } ->
          (* Already-undone tail: jump past it. *)
          go undo_next prev last_clr
      | Log_record.Begin _ -> last_clr
      | Log_record.Commit | Log_record.Abort | Log_record.End
      | Log_record.Page_image _ | Log_record.Begin_checkpoint
      | Log_record.End_checkpoint _ | Log_record.Commit_ts _ ->
          go r.Log_record.prev prev last_clr
  in
  go from_lsn (Option.value prev ~default:from_lsn) Lsn.null

type att_entry = { mutable last : Lsn.t; mutable committed : bool }

let run ~log ~pool =
  let torn_before = Atomic.get torn_count in
  let pool_stats_before = Buffer_pool.stats pool in
  (* --- Analysis --- *)
  let att : (int, att_entry) Hashtbl.t = Hashtbl.create 64 in
  let analyzed = ref 0 in
  (* Largest commit timestamp seen during analysis: seeds the reborn
     Snapshot allocator so post-restart timestamps never collide with
     pre-crash versions. Losers' timestamps count too — their versions
     are undone, but the allocator must still move past them. *)
  let max_commit_ts = ref 0 in
  (* Start from the last complete checkpoint: seed the ATT from its
     End_checkpoint record, then scan forward from the matching
     Begin_checkpoint — Commit/End records logged between the two fence
     records must still be observed, or a transaction that finished during
     the checkpoint would be mistaken for a loser. The redo point is
     min(begin_lsn, min rec_lsn over the dirty-page table): everything
     below it was in some durable page image when the checkpoint
     completed. *)
  let ckpt = Log_manager.checkpoint_lsn log in
  let start, redo_from =
    if Lsn.is_null ckpt then
      let s = Log_manager.redo_start log in
      (s, s)
    else
      match (Log_manager.read log ckpt).Log_record.body with
      | Log_record.End_checkpoint { begin_lsn; dpt; att = ckpt_att } ->
          List.iter
            (fun (txn, lsn, committed) ->
              Hashtbl.replace att txn { last = lsn; committed })
            ckpt_att;
          let floor =
            List.fold_left (fun acc (_, r) -> min acc r) begin_lsn dpt
          in
          (begin_lsn, floor)
      | _ ->
          let s = Log_manager.redo_start log in
          (s, s)
  in
  Log_manager.iter_from log start (fun r ->
      incr analyzed;
      let entry txn =
        match Hashtbl.find_opt att txn with
        | Some e -> e
        | None ->
            let e = { last = Lsn.null; committed = false } in
            Hashtbl.replace att txn e;
            e
      in
      match r.Log_record.body with
      | Log_record.Begin _ -> (entry r.Log_record.txn).last <- r.Log_record.lsn
      | Log_record.Update _ | Log_record.Clr _ ->
          (entry r.Log_record.txn).last <- r.Log_record.lsn
      | Log_record.Commit -> (entry r.Log_record.txn).committed <- true
      | Log_record.Abort -> (entry r.Log_record.txn).last <- r.Log_record.lsn
      | Log_record.End -> Hashtbl.remove att r.Log_record.txn
      | Log_record.Commit_ts { ts } ->
          max_commit_ts := max !max_commit_ts ts
      | Log_record.Page_image _ | Log_record.Begin_checkpoint
      | Log_record.End_checkpoint _ ->
          ());
  (* --- Redo (repeating history) --- *)
  (* Replaying history must not re-log it: suppress the full-page-write
     hook for the duration of redo (undo below re-enables it — a CLR that
     dirties a still-clean page needs its image protected like any other
     update). *)
  let fpw = Buffer_pool.image_logger pool in
  Buffer_pool.set_image_logger pool None;
  (* Likewise the WAL-tail rec_lsn source: during redo it would point past
     the records being replayed, overstating what the durable image holds.
     Rebuilt pages fall back to rec_lsn = 1 — conservative, and gone by the
     end of restart, which flushes the pool. *)
  let lsrc = Buffer_pool.lsn_source pool in
  Buffer_pool.set_lsn_source pool None;
  let redone = ref 0 and skipped = ref 0 in
  (* Pages whose durable image was lost (torn or never written): until a
     base-establishing record rebuilds one, its retained slot-level records
     are *orphans* — leftovers of an older dirty epoch whose protecting
     full-page image was truncated after a successful flush made them
     redundant. Against a valid durable image the LSN guard skips them; a
     from-scratch frame has LSN 0 and would try to replay them against a
     page that does not hold the state they assume (the observed failure:
     Replace_slot on an empty page). The page the orphans describe is
     covered by the base that must follow in the scan — a lost page was
     dirty at the crash, and its last clean->dirty transition logged a
     full-page image (or its Format is retained, for pages dirty since
     birth: their rec_lsn — the WAL tail at creation — floors truncation
     at or below the Format) at or above the redo point. *)
  let rebuilding : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  Log_manager.iter_from log redo_from (fun r ->
      let apply ~base page mutate =
        let fr = pin_or_new ~rebuilding pool page in
        if base then Hashtbl.remove rebuilding page;
        if Hashtbl.mem rebuilding page then incr skipped
        else if Page.lsn fr.Buffer_pool.page < r.Log_record.lsn then begin
          Buffer_pool.mark_dirty fr;
          mutate fr.Buffer_pool.page;
          Page.set_lsn fr.Buffer_pool.page r.Log_record.lsn;
          incr redone
        end
        else incr skipped;
        Buffer_pool.unpin pool fr
      in
      match r.Log_record.body with
      | Log_record.Update { page; op; _ } | Log_record.Clr { page; op; _ } ->
          let base = match op with Page_op.Format _ -> true | _ -> false in
          apply ~base page (fun p -> Page_op.redo p op)
      | Log_record.Page_image { page; image } ->
          (* Full-page write: rebuilds a page whose durable image is torn
             and whose older history is truncated away. The LSN guard skips
             it whenever the durable image is already at or past it. *)
          apply ~base:true page (fun p ->
              Bytes.blit_string image 0 (Page.raw p) 0 (String.length image))
      | _ -> ());
  Buffer_pool.set_image_logger pool fpw;
  Buffer_pool.set_lsn_source pool lsrc;
  (* --- Undo losers --- *)
  let losers = ref [] and ended = ref 0 and clrs = ref 0 in
  Hashtbl.iter
    (fun txn e ->
      if e.committed then begin
        (* Winner missing its End record: close it out. *)
        ignore (Log_manager.append log ~prev:e.last ~txn Log_record.End);
        incr ended
      end
      else losers := (txn, e) :: !losers)
    att;
  let clr_count_before = Log_manager.last_lsn log in
  (* Undo all losers in a single merged backward scan, always taking the
     globally greatest not-yet-undone LSN (ARIES). Per-transaction order
     would be wrong: page-oriented undo of a record is valid only while
     the page still holds the exact state that op left, and undoing an
     earlier-LSN loser first (say a user transaction whose logical undo
     re-traverses the tree) can shift cells out from under a dangling
     system transaction's physical slot operations. *)
  let cursors =
    List.map
      (fun (txn, e) ->
        let abort_lsn =
          Log_manager.append log ~prev:e.last ~txn Log_record.Abort
        in
        (txn, ref e.last, ref abort_lsn))
      !losers
  in
  let rec undo_pass () =
    let best =
      List.fold_left
        (fun acc ((_, next, _) as c) ->
          if Lsn.is_null !next then acc
          else
            match acc with
            | Some (_, n, _) when !n >= !next -> acc
            | _ -> Some c)
        None cursors
    in
    match best with
    | None -> ()
    | Some (txn, next, prev) ->
        let r = Log_manager.read log !next in
        assert (r.Log_record.txn = txn);
        (match r.Log_record.body with
        | Log_record.Update { page; op; lundo = None } ->
            let clr =
              undo_update ~log ~pool ~txn ~prev:!prev ~page ~op
                ~undo_next:r.Log_record.prev
            in
            prev := clr;
            next := r.Log_record.prev
        | Log_record.Update { lundo = Some { Log_record.tree; comp }; _ } ->
            let h =
              match Logical.handler_for tree with
              | Some h -> h
              | None ->
                  failwith
                    (Printf.sprintf
                       "Recovery: logical-undo record for tree %d but no \
                        access-method handler registered"
                       tree)
            in
            let clr =
              h ~tree ~comp ~txn ~prev:!prev ~undo_next:r.Log_record.prev
            in
            if not (Lsn.is_null clr) then prev := clr;
            next := r.Log_record.prev
        | Log_record.Clr { undo_next; _ } ->
            (* Already-undone tail: jump past it. *)
            next := undo_next
        | Log_record.Begin _ -> next := Lsn.null
        | Log_record.Commit | Log_record.Abort | Log_record.End
        | Log_record.Page_image _ | Log_record.Begin_checkpoint
        | Log_record.End_checkpoint _ | Log_record.Commit_ts _ ->
            next := r.Log_record.prev);
        undo_pass ()
  in
  undo_pass ();
  List.iter
    (fun (txn, _, prev) ->
      ignore (Log_manager.append log ~prev:!prev ~txn Log_record.End))
    cursors;
  clrs := Log_manager.last_lsn log - clr_count_before - (2 * List.length !losers);
  Log_manager.flush_all log;
  (* End-of-restart flush (ARIES takes a checkpoint here). Pages redone
     above were dirtied with the image logger suppressed, so their old —
     possibly torn — durable images are not protected by a logged full-page
     write. Writing them back makes every durable image valid again; the
     next clean→dirty transition then logs a fresh image, restoring
     torn-page protection for the next crash. *)
  Buffer_pool.flush_all pool;
  let pool_stats_after = Buffer_pool.stats pool in
  {
    analyzed = !analyzed;
    redone = !redone;
    skipped = !skipped;
    loser_txns = List.map fst !losers;
    clrs_written = !clrs;
    committed_unended = !ended;
    torn_pages = Atomic.get torn_count - torn_before;
    retried_reads =
      pool_stats_after.Buffer_pool.retried_reads
      - pool_stats_before.Buffer_pool.retried_reads;
    max_commit_ts = !max_commit_ts;
  }
