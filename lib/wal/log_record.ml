module Codec = Pitree_util.Codec

type txn_kind = User | System

let pp_txn_kind ppf k =
  Format.pp_print_string ppf (match k with User -> "user" | System -> "system")

type lundo = { tree : int; comp : Logical.comp }

type body =
  | Begin of { kind : txn_kind }
  | Commit
  | Abort
  | End
  | Update of { page : int; op : Page_op.t; lundo : lundo option }
  | Clr of { page : int; op : Page_op.t; undo_next : Lsn.t }
  | Page_image of { page : int; image : string }
  | Begin_checkpoint
  | End_checkpoint of {
      begin_lsn : Lsn.t;
      dpt : (int * Lsn.t) list;
      att : (int * Lsn.t * bool) list;
    }
  | Commit_ts of { ts : int }

type t = { lsn : Lsn.t; prev : Lsn.t; txn : int; body : body }

let body_tag = function
  | Begin _ -> 1
  | Commit -> 2
  | Abort -> 3
  | End -> 4
  | Update _ -> 5
  | Clr _ -> 6
  | Page_image _ -> 7
  | Begin_checkpoint -> 8
  | End_checkpoint _ -> 9
  | Commit_ts _ -> 10

let encode t =
  let b = Buffer.create 64 in
  Codec.put_int b t.lsn;
  Codec.put_int b t.prev;
  Codec.put_int b t.txn;
  Codec.put_u8 b (body_tag t.body);
  (match t.body with
  | Begin { kind } -> Codec.put_u8 b (match kind with User -> 0 | System -> 1)
  | Commit | Abort | End -> ()
  | Update { page; op; lundo } ->
      Codec.put_u32 b page;
      (match lundo with
      | None -> Codec.put_u8 b 0
      | Some { tree; comp } ->
          Codec.put_u8 b 1;
          Codec.put_u32 b tree;
          Logical.encode b comp);
      Page_op.encode b op
  | Clr { page; op; undo_next } ->
      Codec.put_u32 b page;
      Codec.put_int b undo_next;
      Page_op.encode b op
  | Page_image { page; image } ->
      Codec.put_u32 b page;
      Codec.put_bytes b image
  | Begin_checkpoint -> ()
  | End_checkpoint { begin_lsn; dpt; att } ->
      Codec.put_int b begin_lsn;
      Codec.put_u32 b (List.length dpt);
      List.iter
        (fun (page, rec_lsn) ->
          Codec.put_u32 b page;
          Codec.put_int b rec_lsn)
        dpt;
      Codec.put_u32 b (List.length att);
      List.iter
        (fun (txn, lsn, committed) ->
          Codec.put_int b txn;
          Codec.put_int b lsn;
          Codec.put_u8 b (if committed then 1 else 0))
        att
  | Commit_ts { ts } -> Codec.put_int b ts);
  let payload = Buffer.contents b in
  let framed = Buffer.create (String.length payload + 8) in
  Codec.put_u32 framed (String.length payload);
  Buffer.add_string framed payload;
  Codec.put_u32 framed (Int32.to_int (Codec.crc32 payload) land 0xffffffff);
  Buffer.contents framed

let decode s =
  let r = Codec.reader s in
  let len = Codec.get_u32 r in
  if Codec.remaining r < len + 4 then raise (Codec.Corrupt "log record truncated");
  let payload = String.sub s (Codec.pos r) len in
  let r2 = Codec.reader ~pos:(Codec.pos r + len) s in
  let crc = Codec.get_u32 r2 in
  if crc <> Int32.to_int (Codec.crc32 payload) land 0xffffffff then
    raise (Codec.Corrupt "log record CRC mismatch");
  let r = Codec.reader payload in
  let lsn = Codec.get_int r in
  let prev = Codec.get_int r in
  let txn = Codec.get_int r in
  let body =
    match Codec.get_u8 r with
    | 1 ->
        let kind = if Codec.get_u8 r = 0 then User else System in
        Begin { kind }
    | 2 -> Commit
    | 3 -> Abort
    | 4 -> End
    | 5 ->
        let page = Codec.get_u32 r in
        let lundo =
          match Codec.get_u8 r with
          | 0 -> None
          | 1 ->
              let tree = Codec.get_u32 r in
              let comp = Logical.decode r in
              Some { tree; comp }
          | n -> raise (Codec.Corrupt (Printf.sprintf "bad lundo tag %d" n))
        in
        let op = Page_op.decode r in
        Update { page; op; lundo }
    | 6 ->
        let page = Codec.get_u32 r in
        let undo_next = Codec.get_int r in
        let op = Page_op.decode r in
        Clr { page; op; undo_next }
    | 7 ->
        let page = Codec.get_u32 r in
        let image = Codec.get_bytes r in
        Page_image { page; image }
    | 8 -> Begin_checkpoint
    | 9 ->
        let begin_lsn = Codec.get_int r in
        let ndpt = Codec.get_u32 r in
        let dpt =
          List.init ndpt (fun _ ->
              let page = Codec.get_u32 r in
              let rec_lsn = Codec.get_int r in
              (page, rec_lsn))
        in
        let natt = Codec.get_u32 r in
        let att =
          List.init natt (fun _ ->
              let txn = Codec.get_int r in
              let lsn = Codec.get_int r in
              let committed = Codec.get_u8 r = 1 in
              (txn, lsn, committed))
        in
        End_checkpoint { begin_lsn; dpt; att }
    | 10 ->
        let ts = Codec.get_int r in
        Commit_ts { ts }
    | n -> raise (Codec.Corrupt (Printf.sprintf "bad log body tag %d" n))
  in
  { lsn; prev; txn; body }

let pp ppf t =
  let body ppf = function
    | Begin { kind } -> Fmt.pf ppf "begin(%a)" pp_txn_kind kind
    | Commit -> Fmt.string ppf "commit"
    | Abort -> Fmt.string ppf "abort"
    | End -> Fmt.string ppf "end"
    | Update { page; op; lundo } ->
        Fmt.pf ppf "update p%d %a%s" page Page_op.pp op
          (match lundo with None -> "" | Some _ -> " +lundo")
    | Clr { page; op; undo_next } ->
        Fmt.pf ppf "clr p%d %a undo_next=%d" page Page_op.pp op undo_next
    | Page_image { page; image } ->
        Fmt.pf ppf "page_image p%d %dB" page (String.length image)
    | Begin_checkpoint -> Fmt.string ppf "begin_checkpoint"
    | End_checkpoint { begin_lsn; dpt; att } ->
        Fmt.pf ppf "end_checkpoint(begin=%d %d dirty %d active)" begin_lsn
          (List.length dpt) (List.length att)
    | Commit_ts { ts } -> Fmt.pf ppf "commit_ts %d" ts
  in
  Fmt.pf ppf "[%d txn=%d prev=%d %a]" t.lsn t.txn t.prev body t.body
