(** Log records.

    A record belongs to a {e transaction} in the broad sense: either a user
    database transaction or one of the paper's independent {e atomic actions}
    (identified to the recovery manager as a "system transaction",
    section 4.3.2 option (ii)). Records of one transaction are backchained
    through [prev] so rollback can walk them without scanning.

    [Clr] records are compensation log records: redo-only descriptions of an
    undo step. [undo_next] points at the next record of the transaction still
    requiring undo, which makes rollback idempotent across repeated
    crashes. *)

type txn_kind =
  | User  (** database transaction; commit forces the log *)
  | System
      (** atomic action; commit is only {e relatively} durable — no force
          (section 4.3.1) *)

val pp_txn_kind : Format.formatter -> txn_kind -> unit

type lundo = { tree : int; comp : Logical.comp }
(** Logical-undo descriptor attached to leaf-record updates of user
    transactions under non-page-oriented UNDO (see {!Logical}). *)

type body =
  | Begin of { kind : txn_kind }
  | Commit
  | Abort  (** rollback decided; CLRs follow *)
  | End  (** rollback or commit processing finished *)
  | Update of { page : int; op : Page_op.t; lundo : lundo option }
  | Clr of { page : int; op : Page_op.t; undo_next : Lsn.t }
  | Page_image of { page : int; image : string }
      (** full-page write: the page's complete pre-update image, logged at
          each clean→dirty transition (outside any transaction, redo-only).
          Because it is appended after the transition computes the frame's
          rec_lsn, its LSN is ≥ that rec_lsn and therefore ≥ every future
          redo point — it survives log truncation. Redo uses it to rebuild
          a page whose durable image is torn even though the page's older
          history has been truncated away. *)
  | Begin_checkpoint
      (** fence for a fuzzy checkpoint: the ATT in the matching
          [End_checkpoint] is exactly consistent as of this LSN, and
          analysis scans forward from here *)
  | End_checkpoint of {
      begin_lsn : Lsn.t;  (** LSN of the matching [Begin_checkpoint] *)
      dpt : (int * Lsn.t) list;
          (** dirty-page table: page id → rec_lsn (a lower bound on the
              first log record whose effect is not yet in the page's
              durable image); recovery's redo point is
              [min(begin_lsn, min rec_lsn)] *)
      att : (int * Lsn.t * bool) list;
          (** active-transaction table as of [begin_lsn]: txn id, last
              LSN, and whether a Commit record was already logged (its
              End is merely outstanding) *)
    }
  | Commit_ts of { ts : int }
      (** the single commit timestamp an SI transaction stamped its write
          set with, logged just before its Commit record; analysis tracks
          the maximum so recovery can seed the reborn commit-timestamp
          allocator (see {!Pitree_txn.Snapshot}) *)

type t = { lsn : Lsn.t; prev : Lsn.t; txn : int; body : body }

val encode : t -> string
val decode : string -> t
(** Raises [Pitree_util.Codec.Corrupt] on framing/CRC errors. *)

val pp : Format.formatter -> t -> unit
