(** The log manager: an append-only record store with an explicit
    durability boundary.

    Records are stored encoded; the volatile tail ([flushed_lsn], last_lsn]
    is lost by {!crash}, which models exactly what a power failure preserves.
    User-transaction commits force the log; atomic-action commits do not
    (relative durability, section 4.3.1) — the force counter feeds
    experiment E10.

    {2 Group commit}

    {!flush} is a group-commit pipeline rather than a
    mutex-across-fsync: a committer enrolls its LSN and blocks until the
    durability horizon covers it. The first enrolled committer with no
    flush in flight becomes the {e leader}: it snapshots every request
    accumulated so far, performs one sequential write and one [fsync] for
    the whole batch with the manager unlocked, publishes the new horizon
    and wakes every covered waiter. Committers arriving while the leader is
    in the write path accumulate for the next leader — N concurrent
    committers share O(1) fsyncs instead of serializing on one each.
    Crash semantics are unchanged: {!flush} returns only after the
    requested LSN is durable, so an acknowledged commit survives a crash at
    any instant, including the window between the batch write and the
    waiter wakeup (crash point ["wal.group.synced"], registered at module
    initialization).

    LSNs are 1-based and dense: record [n] is the [n]-th append. *)

type t

val create : ?path:string -> ?group_commit:bool -> unit -> t
(** In-memory by default. With [path], the durable prefix is backed by an
    append-only file: [flush] writes and fsyncs, restart ({!create} on the
    same path) reloads the prefix (discarding a torn tail), and the redo
    point persists in a [path ^ ".ckpt"] sidecar — so recovery works across
    process restarts, not just simulated crashes. [group_commit] (default
    true) selects the batched force pipeline; [false] reproduces the
    serial hold-the-mutex-across-fsync path, kept as the measured baseline
    for the group-commit benchmark. *)

val append : t -> prev:Lsn.t -> txn:int -> Log_record.body -> Lsn.t
(** Assigns the next LSN, encodes and stores the record. Short critical
    section; never does IO. *)

val flush : t -> Lsn.t -> unit
(** Make everything up to [lsn] durable (group commit, see above). No-op if
    already durable. Returns only once durability covers [lsn]. *)

val flush_all : t -> unit

val last_lsn : t -> Lsn.t
val flushed_lsn : t -> Lsn.t

val read : t -> Lsn.t -> Log_record.t
(** Raises [Invalid_argument] for an LSN that was never appended. *)

val iter_from : t -> Lsn.t -> (Log_record.t -> unit) -> unit
(** [iter_from t lsn f] applies [f] to records [lsn], [lsn+1], ... in order. *)

val redo_start : t -> Lsn.t
(** Where recovery's redo pass begins: just after the last sharp
    checkpoint, else LSN 1. *)

val set_redo_start : t -> Lsn.t -> unit

val truncate : t -> keep_from:Lsn.t -> int
(** Discard in-memory records with LSN below [keep_from], clamped so that
    nothing undurable or at/after the redo point is lost; the caller must
    also keep everything the oldest active transaction could still undo
    (see [Txn_mgr.oldest_first_lsn]). Returns the number of records
    discarded. Reading a truncated LSN raises [Invalid_argument]. A
    file-backed log keeps its file intact as the archive. *)

val max_txn_id : t -> int
(** Highest transaction id ever appended (tracked across truncation). *)

val crash : t -> t
(** A new manager holding only the durable prefix (the volatile tail is
    discarded), preserving [redo_start] if it is still durable. For a
    file-backed log this literally reopens the file. The old manager must
    not be used afterwards. *)

type stats = {
  appends : int;
  forces : int;
      (** real fsyncs only — an in-memory log or an empty batch advances
          durability without counting a force (the §4.3.1 counter must not
          be skewed by no-op flushes) *)
  flushes : int;  (** durability-advance events, including in-memory ones *)
  flush_requests : int;
      (** flush calls that found undurable records and had to wait *)
  bytes : int;  (** encoded bytes ever appended *)
  batch_mean : float;  (** mean flush requests coalesced per flush event *)
  batch_p99 : int;
  batch_max : int;
  wait_mean_ns : float;  (** time a committer spent blocked in {!flush} *)
  wait_p50_ns : int;
  wait_p99_ns : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
