(** The log manager: an append-only record store with an explicit
    durability boundary.

    Records are stored encoded; the volatile tail ([flushed_lsn], last_lsn]
    is lost by {!crash}, which models exactly what a power failure preserves.
    User-transaction commits force the log; atomic-action commits do not
    (relative durability, section 4.3.1) — the force counter feeds
    experiment E10.

    {2 Group commit}

    {!flush} is a group-commit pipeline rather than a
    mutex-across-fsync: a committer enrolls its LSN and blocks until the
    durability horizon covers it. The first enrolled committer with no
    flush in flight becomes the {e leader}: it snapshots every request
    accumulated so far, performs one sequential write and one [fsync] for
    the whole batch with the manager unlocked, publishes the new horizon
    and wakes every covered waiter. Committers arriving while the leader is
    in the write path accumulate for the next leader — N concurrent
    committers share O(1) fsyncs instead of serializing on one each.
    Crash semantics are unchanged: {!flush} returns only after the
    requested LSN is durable, so an acknowledged commit survives a crash at
    any instant, including the window between the batch write and the
    waiter wakeup (crash point ["wal.group.synced"], registered at module
    initialization).

    LSNs are 1-based and dense: record [n] is the [n]-th append. *)

type t

val create : ?path:string -> ?group_commit:bool -> unit -> t
(** In-memory by default. With [path], the durable prefix is backed by an
    append-only file: [flush] writes and fsyncs, restart ({!create} on the
    same path) reloads the prefix (discarding a torn tail), and the redo
    point persists in a [path ^ ".ckpt"] sidecar — so recovery works across
    process restarts, not just simulated crashes. [group_commit] (default
    true) selects the batched force pipeline; [false] reproduces the
    serial hold-the-mutex-across-fsync path, kept as the measured baseline
    for the group-commit benchmark. *)

val append : t -> prev:Lsn.t -> txn:int -> Log_record.body -> Lsn.t
(** Assigns the next LSN, encodes and stores the record. Short critical
    section; never does IO. *)

val flush : ?commits:int -> t -> Lsn.t -> unit
(** Make everything up to [lsn] durable (group commit, see above). No-op if
    already durable. Returns only once durability covers [lsn]. [commits]
    (default 1) is how many logical commits this single enrollment covers —
    a combined write batch commits once for N user puts — and only feeds
    the [logical_commits] counter. *)

val flush_all : t -> unit

val last_lsn : t -> Lsn.t
val flushed_lsn : t -> Lsn.t

val read : t -> Lsn.t -> Log_record.t
(** Raises [Invalid_argument] for an LSN that was never appended. *)

val iter_from : t -> Lsn.t -> (Log_record.t -> unit) -> unit
(** [iter_from t lsn f] applies [f] to records [lsn], [lsn+1], ... in order. *)

val redo_start : t -> Lsn.t
(** The redo floor: the lowest LSN recovery's redo pass may need
    (min rec_lsn over the last checkpoint's dirty-page table, or the first
    retained LSN when no checkpoint has completed). *)

val checkpoint_lsn : t -> Lsn.t
(** LSN of the last complete checkpoint's [End_checkpoint] record
    ([Lsn.null] if none) — where recovery's analysis pass finds its
    seed. This is the ARIES master record; for a file-backed log it is
    persisted (together with the redo floor) in the [path ^ ".ckpt"]
    sidecar. *)

val set_checkpoint : t -> lsn:Lsn.t -> redo:Lsn.t -> unit
(** Publish a completed checkpoint: [lsn] is its (already durable)
    [End_checkpoint] record, [redo] the new redo floor. Persists the
    master record before returning. *)

val truncate : t -> keep_from:Lsn.t -> int
(** Discard records with LSN below [keep_from] and reclaim their space,
    clamped so that nothing undurable or at/after the redo floor is lost;
    the caller must also keep everything the oldest active transaction
    could still undo (see [Txn_mgr.oldest_first_lsn]). Returns the number
    of records discarded. Reading a truncated LSN raises
    [Invalid_argument]. A file-backed log physically rewrites its file
    (write surviving window to a temporary file, fsync, rename), so the
    file shrinks; a crash mid-rewrite leaves a complete old or new file. *)

val first_lsn : t -> Lsn.t
(** Lowest LSN still readable (1 until a truncation discards a prefix). *)

val file_bytes : t -> int option
(** Current size in bytes of the backing file's durable prefix ([None]
    for an in-memory log). Shrinks when {!truncate} reclaims space. *)

val max_txn_id : t -> int
(** Highest transaction id ever appended (tracked across truncation). *)

val crash : t -> t
(** A new manager holding only the durable prefix (the volatile tail is
    discarded), preserving the checkpoint master record if it is still
    durable. For a file-backed log this literally reopens the file. The
    old manager must not be used afterwards. *)

type stats = {
  appends : int;
  forces : int;
      (** real fsyncs only — an in-memory log or an empty batch advances
          durability without counting a force (the §4.3.1 counter must not
          be skewed by no-op flushes) *)
  flushes : int;  (** durability-advance events, including in-memory ones *)
  flush_requests : int;
      (** flush calls that found undurable records and had to wait *)
  logical_commits : int;
      (** logical commits covered by those requests ([flush ~commits]) —
          [logical_commits / flush_requests] is the write-combining fan-in
          stacked on top of group commit's [batch_mean] *)
  bytes : int;  (** encoded bytes ever appended *)
  batch_mean : float;  (** mean flush requests coalesced per flush event *)
  batch_p99 : int;
  batch_max : int;
  wait_mean_ns : float;  (** time a committer spent blocked in {!flush} *)
  wait_p50_ns : int;
  wait_p99_ns : int;
  truncations : int;  (** truncate calls that discarded at least one record *)
  truncated_records : int;
  truncated_bytes : int;  (** encoded bytes reclaimed by truncation *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
