(** Ready-made sim scenarios over the three tree engines.

    A scenario builds a deterministic environment (in-memory disk, serial
    WAL, single pool shard, no checkpoint triggers), preloads a tree,
    generates per-fiber operation scripts from [cfg.seed], runs them under
    {!Sim.run} with the requested policy, and judges the result with three
    oracles: the per-step quiesced {!Pitree_core.Wellformed} invariant, a
    final well-formedness check after draining pending postings, and the
    {!Linearize} checker over the recorded history. *)

type engine = Blink | Tsb | Hb

val engine_of_string : string -> engine option
val engine_to_string : engine -> string

type cfg = {
  engine : engine;
  threads : int;
  ops_per_thread : int;
  key_space : int;  (** distinct keys: "k0000" .. *)
  preload : int;  (** keys inserted (and modeled) before the run *)
  seed : int64;  (** operation-stream seed (orthogonal to the walk seed) *)
  page_size : int;
  consolidation : bool;
  olc : bool;
      (** optimistic latch-free reads ([Env.config.olc_reads]); the
          version-word snapshot/validate yield points only exist on this
          path *)
  combine : bool;
      (** hot-key write combining ([Env.config.combine]); default [false]
          here — combining-enabled scenarios opt into the extra
          publish/elect/apply/broadcast yield points so the baseline
          schedule space stays compact *)
  del_heavy : bool;
      (** skew the generated op mix to 50% deletes (default: 15%) so
          leaves drain below the consolidation threshold and merge/free
          actions run mid-schedule *)
  check_wellformed : bool;  (** re-check §2.1.3 at quiesced yield points *)
  check_every : int;
  bug : Pitree_blink.Blink.Testing.bug;  (** blink only; ignored otherwise *)
  si : bool;
      (** run snapshot-isolation transactions instead of single ops: the
          TSB engine is forced, [Env.config.si_txns] is on, each fiber's
          script becomes a sequence of SI transactions, and the judge is
          {!Si_oracle} (consistent-cut reads + first-committer-wins)
          surfaced through the same {!Linearize.verdict} *)
  mvcc_bug : Pitree_txn.Mvcc.Testing.bug;
      (** SI protocol bug to inject (si runs only; ignored otherwise) *)
  max_steps : int;
}

val default : cfg
(** 3 fibers x 4 ops, 24 keys, 8 preloaded, 512-byte pages, CNS, blink. *)

type report = {
  outcome : Sim.outcome;
  verdict : Linearize.verdict option;  (** [None] if the run itself failed *)
  history : Linearize.event list;
  wf_errors : string option;  (** final well-formedness, post-drain *)
}

val failed : report -> bool
(** Any oracle objected: run failure, final wf errors, or an illegal
    history. *)

val run : cfg -> policy:Sim.policy -> report

val outcome_of : report -> Sim.outcome
(** The run's outcome with post-run oracle verdicts folded into
    [failure], so {!Sim.explore} / {!Sim.minimize} see them. *)

val random_walks :
  cfg -> walks:int -> seed:int64 -> int * (int64 * report) option
(** Run up to [walks] seeded random schedules (walk i's seed derives from
    [seed] and i, printed on failure). Returns (walks completed, first
    failure as (walk seed, report)). *)

val systematic :
  ?max_preemptions:int ->
  ?branch_depth:int ->
  ?max_schedules:int ->
  cfg ->
  Sim.explore_stats * (int list * report) option
(** Preemption-bounded DFS via {!Sim.explore}. *)

val minimize : cfg -> int list -> int list
(** Shrink a failing schedule to its shortest failing prefix. *)

val replay : cfg -> int list -> report
(** [run cfg ~policy:(Replay s)]. *)

val pp_report : Format.formatter -> report -> unit
