module Sched_hook = Pitree_util.Sched_hook
module Rng = Pitree_util.Rng

type kind = Sched_hook.kind = Acquire | Release | Lock | Cond | Point | Version

exception Aborted

type event = { step : int; fiber : int; kind : kind; label : string }

type choice = {
  enabled : (int * string) list;
  chosen : int;
  preempted : bool;
}

type failure =
  | Deadlock of (int * string) list
  | Invariant_violation of { step : int; message : string }
  | Fiber_raised of { fiber : int; message : string }
  | Replay_divergence of { at : int; message : string }
  | Out_of_steps

type outcome = {
  schedule : int list;
  choices : choice list;
  events : event list;
  steps : int;
  failure : failure option;
}

type policy = Walk of int64 | Replay of int list

type config = {
  policy : policy;
  max_steps : int;
  invariant : (unit -> string option) option;
  check_every : int;
}

let default_config =
  { policy = Walk 1L; max_steps = 200_000; invariant = None; check_every = 1 }

(* ---------- fibers ---------- *)

type _ Effect.t +=
  | Yield : (kind * string) -> unit Effect.t
  | Park : (kind * string * (unit -> bool)) -> unit Effect.t

type fstate =
  | Ready of string  (* parked at a yield; label = where *)
  | Waiting of string * (unit -> bool)
  | Done
  | Raised of exn

type fiber = {
  id : int;
  mutable st : fstate;
  mutable k : (unit, unit) Effect.Deep.continuation option;
  mutable body : (unit -> unit) option;  (* not yet started *)
}

type state = {
  fibers : fiber array;
  mutable cur : int option;
  mutable ticks : int;
  mutable latches : int;  (* latches currently held across all fibers *)
  mutable steps : int;
  mutable aborting : bool;
  mutable events : event list;  (* reversed *)
  mutable choices : choice list;  (* reversed *)
}

let active_sim : state option ref = ref None

let stamp () =
  match !active_sim with
  | Some st ->
      st.ticks <- st.ticks + 1;
      st.ticks
  | None -> 0

let tag_of = function
  | Acquire -> "acq"
  | Release -> "rel"
  | Lock -> "lock"
  | Cond -> "cond"
  | Point -> "point"
  | Version -> "ver"

let label_of kind l = tag_of kind ^ ":" ^ l

(* The handler fibers see through Sched_hook. During post-run cleanup
   ([aborting]) nothing may suspend again: yields become no-ops and
   unsatisfiable waits abort the fiber, so one [discontinue] fully
   unwinds it. *)
let handler st =
  {
    Sched_hook.yield =
      (fun kind l -> if not st.aborting then Effect.perform (Yield (kind, l)));
    wait =
      (fun kind l pred ->
        if st.aborting then begin
          if not (pred ()) then raise Aborted
        end
        else
          while not (pred ()) do
            Effect.perform (Park (kind, l, pred))
          done);
    note_latch = (fun d -> st.latches <- st.latches + d);
    fiber_id = (fun () -> st.cur);
  }

(* Run fiber [f] until it parks, finishes or raises. *)
let resume st f =
  st.cur <- Some f.id;
  let record kind l =
    st.events <- { step = st.steps; fiber = f.id; kind; label = l } :: st.events
  in
  let effc : type a. a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option
      = function
    | Yield (kind, l) ->
        Some
          (fun k ->
            record kind l;
            f.k <- Some k;
            f.st <- Ready (label_of kind l))
    | Park (kind, l, pred) ->
        Some
          (fun k ->
            record kind l;
            f.k <- Some k;
            f.st <- Waiting (label_of kind l, pred))
    | _ -> None
  in
  (match f.body with
  | Some body ->
      f.body <- None;
      Effect.Deep.match_with body ()
        {
          retc = (fun () -> f.st <- Done);
          exnc = (fun e -> f.st <- Raised e);
          effc;
        }
  | None -> (
      match f.k with
      | Some k ->
          f.k <- None;
          Effect.Deep.continue k ()
      | None -> assert false));
  st.cur <- None

exception Stop of failure

let run cfg bodies =
  if !active_sim <> None then invalid_arg "Sim.run: not reentrant";
  let st =
    {
      fibers =
        Array.of_list
          (List.mapi
             (fun i b -> { id = i; st = Ready "start"; k = None; body = Some b })
             bodies);
      cur = None;
      ticks = 0;
      latches = 0;
      steps = 0;
      aborting = false;
      events = [];
      choices = [];
    }
  in
  Pitree_sync.Latch_order.reset_fibers ();
  Sched_hook.install (handler st);
  active_sim := Some st;
  let finish failure =
    st.aborting <- true;
    Array.iter
      (fun f ->
        f.body <- None;
        match f.k with
        | Some k ->
            f.k <- None;
            st.cur <- Some f.id;
            (try Effect.Deep.discontinue k Aborted with _ -> ());
            st.cur <- None
        | None -> ())
      st.fibers;
    active_sim := None;
    Sched_hook.uninstall ();
    {
      schedule = List.rev_map (fun c -> c.chosen) st.choices;
      choices = List.rev st.choices;
      events = List.rev st.events;
      steps = st.steps;
      failure;
    }
  in
  let enabled_of () =
    Array.fold_right
      (fun f acc ->
        match f.st with
        | Ready l -> (f.id, l) :: acc
        | Waiting (l, p) -> if p () then (f.id, l) :: acc else acc
        | Done | Raised _ -> acc)
      st.fibers []
  in
  let blocked_of () =
    Array.fold_right
      (fun f acc ->
        match f.st with Waiting (l, _) -> (f.id, l) :: acc | _ -> acc)
      st.fibers []
  in
  let rng = match cfg.policy with Walk seed -> Some (Rng.create seed) | Replay _ -> None in
  let replay = ref (match cfg.policy with Replay l -> l | Walk _ -> []) in
  let prev = ref (-1) in
  match
    let rec loop () =
      if
        Array.for_all
          (fun f -> match f.st with Done | Raised _ -> true | _ -> false)
          st.fibers
      then ()
      else if st.steps >= cfg.max_steps then raise (Stop Out_of_steps)
      else begin
        let enabled = enabled_of () in
        (match enabled with
        | [] -> raise (Stop (Deadlock (blocked_of ())))
        | _ ->
            let chosen =
              match !replay with
              | c :: rest ->
                  replay := rest;
                  if List.mem_assoc c enabled then c
                  else
                    raise
                      (Stop
                         (Replay_divergence
                            {
                              at = st.steps;
                              message =
                                Printf.sprintf
                                  "replay chose fiber %d but enabled = {%s}" c
                                  (String.concat ","
                                     (List.map
                                        (fun (i, _) -> string_of_int i)
                                        enabled));
                            }))
              | [] -> (
                  match rng with
                  | Some r -> fst (List.nth enabled (Rng.int r (List.length enabled)))
                  | None ->
                      if List.mem_assoc !prev enabled then !prev
                      else fst (List.hd enabled))
            in
            let preempted =
              !prev >= 0 && chosen <> !prev && List.mem_assoc !prev enabled
            in
            st.choices <- { enabled; chosen; preempted } :: st.choices;
            st.steps <- st.steps + 1;
            let f = st.fibers.(chosen) in
            resume st f;
            (match f.st with
            | Raised e ->
                raise
                  (Stop
                     (Fiber_raised
                        { fiber = f.id; message = Printexc.to_string e }))
            | _ -> ());
            prev := chosen;
            (match cfg.invariant with
            | Some check when st.latches = 0 && st.steps mod cfg.check_every = 0
              -> (
                match check () with
                | None -> ()
                | Some message ->
                    raise (Stop (Invariant_violation { step = st.steps; message }))
                )
            | _ -> ()));
        loop ()
      end
    in
    loop ()
  with
  | () -> finish None
  | exception Stop f -> finish (Some f)
  | exception e ->
      (* Scheduler-level surprise (bug in the sim itself): clean up, then
         let it propagate. *)
      ignore (finish (Some (Fiber_raised { fiber = -1; message = Printexc.to_string e })));
      raise e

(* ---------- pretty-printing ---------- *)

let pp_failure ppf = function
  | Deadlock blocked ->
      Format.fprintf ppf "deadlock: %s"
        (String.concat ", "
           (List.map (fun (i, l) -> Printf.sprintf "fiber %d at %s" i l) blocked))
  | Invariant_violation { step; message } ->
      Format.fprintf ppf "invariant violated at step %d: %s" step message
  | Fiber_raised { fiber; message } ->
      Format.fprintf ppf "fiber %d raised: %s" fiber message
  | Replay_divergence { at; message } ->
      Format.fprintf ppf "replay diverged at step %d: %s" at message
  | Out_of_steps -> Format.fprintf ppf "step budget exhausted (livelock?)"

let schedule_to_string s = String.concat "," (List.map string_of_int s)

let schedule_of_string s =
  if String.trim s = "" then []
  else List.map (fun x -> int_of_string (String.trim x)) (String.split_on_char ',' s)

let pp_outcome ppf (o : outcome) =
  Format.fprintf ppf "steps=%d schedule=[%s]%a" o.steps
    (schedule_to_string o.schedule)
    (fun ppf -> function
      | None -> Format.fprintf ppf " ok"
      | Some f -> Format.fprintf ppf " FAILED: %a" pp_failure f)
    o.failure

(* ---------- systematic exploration ---------- *)

type explore_stats = { schedules_run : int; pruned : int }

(* DPOR-lite commutativity: two parked latch (or lock) actions on
   different resources are treated as independent, so scheduling B before
   A at a branch point is skipped. Heuristic: the *segment* each fiber
   runs after the parked action may still touch shared state — random
   walks cover what this prune skips. *)
let independent a b =
  let cls l =
    match String.index_opt l ':' with
    | None -> ("", l)
    | Some i -> (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
  in
  let ka, ra = cls a and kb, rb = cls b in
  let latchish k = k = "acq" || k = "rel" in
  (latchish ka && latchish kb && ra <> rb) || (ka = "lock" && kb = "lock" && ra <> rb)

let explore ?(max_preemptions = 2) ?(branch_depth = 6) ?(max_schedules = 2000)
    ~run () =
  let seen = Hashtbl.create 97 in
  let key p = schedule_to_string p in
  let stack = Stack.create () in
  Stack.push [] stack;
  Hashtbl.replace seen (key []) ();
  let schedules = ref 0 and pruned = ref 0 in
  let failing = ref None in
  while !failing = None && (not (Stack.is_empty stack)) && !schedules < max_schedules do
    let prefix = Stack.pop stack in
    let out = run prefix in
    incr schedules;
    if out.failure <> None then failing := Some (prefix, out)
    else begin
      let choices = Array.of_list out.choices in
      let limit = min (Array.length choices) branch_depth in
      (* preempts.(i) = preemptions among the first i decisions *)
      let preempts = Array.make (limit + 1) 0 in
      for i = 0 to limit - 1 do
        preempts.(i + 1) <- preempts.(i) + (if choices.(i).preempted then 1 else 0)
      done;
      let taken = List.map (fun c -> c.chosen) out.choices in
      for i = List.length prefix to limit - 1 do
        let d = choices.(i) in
        let prev_runner = if i = 0 then -1 else choices.(i - 1).chosen in
        let chosen_label = List.assoc d.chosen d.enabled in
        List.iter
          (fun (fid, lbl) ->
            if fid <> d.chosen then begin
              let would_preempt =
                prev_runner >= 0 && fid <> prev_runner
                && List.mem_assoc prev_runner d.enabled
              in
              if preempts.(i) + (if would_preempt then 1 else 0) > max_preemptions
              then ()
              else if independent lbl chosen_label then incr pruned
              else begin
                let p = List.filteri (fun j _ -> j < i) taken @ [ fid ] in
                let k = key p in
                if not (Hashtbl.mem seen k) then begin
                  Hashtbl.replace seen k ();
                  Stack.push p stack
                end
              end
            end)
          d.enabled
      done
    end
  done;
  ({ schedules_run = !schedules; pruned = !pruned }, !failing)

let minimize ~run schedule =
  let fails p = (run p).failure <> None in
  if fails [] then []
  else if not (fails schedule) then schedule
  else begin
    let arr = Array.of_list schedule in
    let take n = Array.to_list (Array.sub arr 0 n) in
    (* fails (take hi) holds; shrink assuming rough monotonicity, verify. *)
    let lo = ref 0 and hi = ref (Array.length arr) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fails (take mid) then hi := mid else lo := mid
    done;
    take !hi
  end
