(** Deterministic cooperative scheduler for interleaving exploration.

    Runs N logical threads (fibers, via OCaml effects) on one OS thread.
    The synchronization primitives yield to this scheduler through
    {!Pitree_util.Sched_hook} at every latch acquire/release, lock-manager
    wait, buffer-pool frame wait and [Crash_point] hit, so the interleaving
    of the fibers is chosen {e here} — replayable bit-for-bit from a seed
    (policy {!Walk}) or from an explicit decision list (policy {!Replay}).

    On top of [run] sit {!explore} (bounded systematic search:
    preemption-bounded DFS over scheduling decisions with a DPOR-lite
    commutativity prune) and {!minimize} (shortest failing decision
    prefix).

    A run is deterministic iff the fiber bodies are: the environment must
    use an in-memory disk, serial WAL (no group commit), no checkpoint
    triggers, and no [Domain.spawn] — see [Scenario.make_env]. *)

type kind = Pitree_util.Sched_hook.kind =
  | Acquire
  | Release
  | Lock
  | Cond
  | Point
  | Version

exception Aborted
(** Raised {e into} parked fibers during post-run cleanup so their
    protect/abort handlers run. Fiber bodies should not catch it. *)

type event = { step : int; fiber : int; kind : kind; label : string }

type choice = {
  enabled : (int * string) list;
      (** runnable fibers at this decision, with the label each is parked
          at ("tag:resource", or "start" before the first step) *)
  chosen : int;
  preempted : bool;
      (** the previous fiber could have continued but was switched away
          from — the currency of preemption-bounded search *)
}

type failure =
  | Deadlock of (int * string) list  (** every live fiber blocked *)
  | Invariant_violation of { step : int; message : string }
  | Fiber_raised of { fiber : int; message : string }
  | Replay_divergence of { at : int; message : string }
      (** a replayed decision named a fiber that is not enabled — a
          determinism bug, never expected *)
  | Out_of_steps

type outcome = {
  schedule : int list;  (** the fiber chosen at each step, in order *)
  choices : choice list;
  events : event list;
  steps : int;
  failure : failure option;
}

type policy =
  | Walk of int64  (** uniform random among enabled fibers, seeded *)
  | Replay of int list
      (** follow the given decisions, then default policy: keep running
          the current fiber while enabled, else lowest enabled id *)

type config = {
  policy : policy;
  max_steps : int;
  invariant : (unit -> string option) option;
      (** checked between steps, only at quiesced instants (no latch held
          by any fiber) — the paper's claim is that the structure is
          well-formed exactly there *)
  check_every : int;  (** run the invariant every n-th step (>= 1) *)
}

val default_config : config

val run : config -> (unit -> unit) list -> outcome
(** Execute the fiber bodies to completion under the policy. Installs the
    {!Pitree_util.Sched_hook} handler for the duration; cleans up (aborts
    parked fibers, uninstalls) on every path. Not reentrant. *)

val stamp : unit -> int
(** Monotone logical clock for history recording; increments per call.
    Total-ordered with the run's execution order, so an operation that
    returns before another is invoked gets a strictly smaller stamp.
    Returns 0 outside a run. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_outcome : Format.formatter -> outcome -> unit

val schedule_to_string : int list -> string
(** Comma-separated, for printing replayable traces. *)

val schedule_of_string : string -> int list

(** {2 Systematic exploration} *)

type explore_stats = {
  schedules_run : int;
  pruned : int;  (** branches skipped by the DPOR-lite commutativity rule *)
}

val explore :
  ?max_preemptions:int ->
  (* default 2 *)
  ?branch_depth:int ->
  (* branch only within the first n decisions; default 6 *)
  ?max_schedules:int ->
  (* default 2000 *)
  run:(int list -> outcome) ->
  unit ->
  explore_stats * (int list * outcome) option
(** Depth-first search over scheduling decisions: run the empty prefix,
    then for every decision point within [branch_depth] try each enabled
    alternative whose switch stays within [max_preemptions] preemptions,
    skipping alternatives whose parked action is commutative with the
    chosen one (two latch/lock steps on different resources — a heuristic
    prune, documented in DESIGN.md §12). Stops at the first failing
    outcome, returning its decision prefix. *)

val minimize : run:(int list -> outcome) -> int list -> int list
(** Shortest failing prefix of the given schedule (binary search, exact
    thanks to deterministic replay; returns the input if it cannot
    reproduce the failure). *)
