(* Snapshot-isolation checker for multi-version transaction histories.

   Unlike the linearizability checker there is no search: SI commits are
   totally ordered by their commit timestamps and every read declares the
   snapshot it ran against, so the legal outcome of each operation is
   fully determined — the oracle just replays and compares.

   Two obligations are checked:

   - consistent-cut reads: every read inside a transaction must observe
     the latest version committed at or before the transaction's read
     timestamp, overlaid with the transaction's own earlier writes —
     reads of aborted transactions included (their snapshots were valid
     while they ran);

   - first-committer-wins on committed writes: no two committed
     transactions may write a common key when one's commit timestamp
     falls inside the other's (read_ts, commit_ts] window.

   Both properties hold because the watermark allocator only exposes a
   read timestamp once every allocation at or below it has been retired,
   so a version with ts <= read_ts was durably decided before the
   snapshot began. *)

type op =
  | Read of string * string option
      (** key and the value the transaction actually observed *)
  | Write of string * string option  (** buffered put ([None] = delete) *)

type outcome = Committed of int | Aborted

type txn = { fiber : int; read_ts : int; ops : op list; outcome : outcome }

type verdict = Ok | Violation of string

(* Committed versions of one key, newest first: (commit_ts, value). *)
let versions_of ~init txns =
  let tbl : (string, (int * string option) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let add key ts v =
    let old = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
    Hashtbl.replace tbl key ((ts, v) :: old)
  in
  List.iter (fun (k, v, ts) -> add k ts (Some v)) init;
  List.iter
    (fun t ->
      match t.outcome with
      | Aborted -> ()
      | Committed ts ->
          (* Last buffered write per key is what commit installs. *)
          let final = Hashtbl.create 8 in
          List.iter
            (function Write (k, v) -> Hashtbl.replace final k v | Read _ -> ())
            t.ops;
          Hashtbl.iter (fun k v -> add k ts v) final)
    txns;
  Hashtbl.iter
    (fun k vs ->
      Hashtbl.replace tbl k
        (List.sort (fun (a, _) (b, _) -> compare b a) vs))
    tbl;
  tbl

let visible versions ~read_ts key =
  match Hashtbl.find_opt versions key with
  | None -> None
  | Some vs -> (
      match List.find_opt (fun (ts, _) -> ts <= read_ts) vs with
      | Some (_, v) -> v
      | None -> None)

let str = function None -> "<none>" | Some v -> v

let check_reads versions t =
  let own = Hashtbl.create 8 in
  let rec go = function
    | [] -> Ok
    | Write (k, v) :: rest ->
        Hashtbl.replace own k v;
        go rest
    | Read (k, seen) :: rest ->
        let expect =
          match Hashtbl.find_opt own k with
          | Some v -> v
          | None -> visible versions ~read_ts:t.read_ts k
        in
        if seen <> expect then
          Violation
            (Printf.sprintf
               "fiber %d (read_ts %d%s): read %S saw %s, snapshot holds %s"
               t.fiber t.read_ts
               (match t.outcome with
               | Committed ts -> Printf.sprintf ", committed %d" ts
               | Aborted -> ", aborted")
               k (str seen) (str expect))
        else go rest
  in
  go t.ops

let write_set t =
  List.filter_map (function Write (k, _) -> Some k | Read _ -> None) t.ops
  |> List.sort_uniq compare

(* First-committer-wins: a committed txn must not have a committed rival
   writer of any of its keys inside its (read_ts, commit_ts) window. *)
let check_fcw txns =
  let committed =
    List.filter_map
      (fun t ->
        match t.outcome with
        | Committed ts -> Some (t, ts, write_set t)
        | Aborted -> None)
      txns
  in
  let rec go = function
    | [] -> Ok
    | (t, ts, ws) :: rest -> (
        let rival =
          List.find_opt
            (fun (_, ts', ws') ->
              ts' <> ts
              && ts' > t.read_ts && ts' < ts
              && List.exists (fun k -> List.mem k ws') ws)
            committed
        in
        match rival with
        | Some (t', ts', ws') ->
            let k =
              List.find (fun k -> List.mem k ws') ws
            in
            Violation
              (Printf.sprintf
                 "lost first committer: fiber %d (read_ts %d, committed %d) \
                  and fiber %d (committed %d) both wrote %S"
                 t.fiber t.read_ts ts t'.fiber ts' k)
        | None -> go rest)
  in
  go committed

let check ~init txns =
  let versions = versions_of ~init txns in
  let rec reads = function
    | [] -> Ok
    | t :: rest -> (
        match check_reads versions t with Ok -> reads rest | v -> v)
  in
  match reads txns with Ok -> check_fcw txns | v -> v

let pp_verdict ppf = function
  | Ok -> Format.fprintf ppf "snapshot-consistent"
  | Violation m -> Format.fprintf ppf "SI violation: %s" m
