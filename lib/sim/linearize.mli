(** Wing–Gong-style linearizability checker for key-value histories.

    A history is a set of operations, each with an invocation and a
    return stamp from {!Sim.stamp}. The checker searches for a total
    order that (a) respects real time — an operation that returned before
    another was invoked comes first — and (b) replays legally against a
    sequential string map. The search places one minimal (unpreceded)
    pending operation at a time, memoized on (placed-set, map state), per
    Wing & Gong 1993. Exponential in the worst case; fine for the short
    histories the schedule explorer produces (tens of operations). *)

type op =
  | Get of string
  | Put of string * string
  | Del of string  (** observed presence: result carries a bool *)
  | Blind_del of string  (** tombstone write, no observed presence (TSB) *)
  | Range of string option * string option  (** fold over [low, high) *)

type res =
  | Value of string option  (** for [Get] *)
  | Ok_put  (** for [Put] and [Blind_del] *)
  | Deleted of bool  (** for [Del] *)
  | Keys of (string * string) list  (** for [Range], in key order *)

type event = { fiber : int; op : op; res : res; inv : int; ret : int }

type verdict = Linearizable | Illegal of string

val check : ?init:(string * string) list -> event list -> verdict
(** [init] is the map contents before any operation ran (the preload). *)

val pp_op : Format.formatter -> op -> unit
val pp_res : Format.formatter -> res -> unit
val pp_event : Format.formatter -> event -> unit
val pp_verdict : Format.formatter -> verdict -> unit
