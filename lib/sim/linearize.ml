module SMap = Map.Make (String)

type op =
  | Get of string
  | Put of string * string
  | Del of string
  | Blind_del of string
  | Range of string option * string option

type res =
  | Value of string option
  | Ok_put
  | Deleted of bool
  | Keys of (string * string) list

type event = { fiber : int; op : op; res : res; inv : int; ret : int }

type verdict = Linearizable | Illegal of string

let apply op (m : string SMap.t) : res * string SMap.t =
  match op with
  | Get k -> (Value (SMap.find_opt k m), m)
  | Put (k, v) -> (Ok_put, SMap.add k v m)
  | Del k -> (Deleted (SMap.mem k m), SMap.remove k m)
  | Blind_del k -> (Ok_put, SMap.remove k m)
  | Range (lo, hi) ->
      let inside k =
        (match lo with None -> true | Some l -> String.compare l k <= 0)
        && match hi with None -> true | Some h -> String.compare k h < 0
      in
      (Keys (List.filter (fun (k, _) -> inside k) (SMap.bindings m)), m)

let pp_op ppf = function
  | Get k -> Format.fprintf ppf "get %S" k
  | Put (k, v) -> Format.fprintf ppf "put %S=%S" k v
  | Del k -> Format.fprintf ppf "del %S" k
  | Blind_del k -> Format.fprintf ppf "bdel %S" k
  | Range (lo, hi) ->
      let s = function None -> "-inf" | Some k -> Printf.sprintf "%S" k in
      Format.fprintf ppf "range [%s,%s)" (s lo) (s hi)

let pp_res ppf = function
  | Value None -> Format.fprintf ppf "none"
  | Value (Some v) -> Format.fprintf ppf "%S" v
  | Ok_put -> Format.fprintf ppf "ok"
  | Deleted b -> Format.fprintf ppf "deleted=%b" b
  | Keys kvs -> Format.fprintf ppf "%d keys" (List.length kvs)

let pp_event ppf e =
  Format.fprintf ppf "[f%d %d..%d] %a -> %a" e.fiber e.inv e.ret pp_op e.op
    pp_res e.res

let pp_verdict ppf = function
  | Linearizable -> Format.fprintf ppf "linearizable"
  | Illegal m -> Format.fprintf ppf "NOT linearizable: %s" m

exception Found

let check ?(init = []) (hist : event list) : verdict =
  let evs = Array.of_list hist in
  let n = Array.length evs in
  if n = 0 then Linearizable
  else begin
    let m0 = List.fold_left (fun m (k, v) -> SMap.add k v m) SMap.empty init in
    (* i must precede j iff i returned before j was invoked *)
    let preds =
      Array.init n (fun j ->
          let acc = ref [] in
          for i = n - 1 downto 0 do
            if evs.(i).ret < evs.(j).inv then acc := i :: !acc
          done;
          !acc)
    in
    let seen = Hashtbl.create 1024 in
    let serialize m =
      SMap.fold (fun k v acc -> acc ^ k ^ "\001" ^ v ^ "\002") m ""
    in
    let bits = Bytes.make n '0' in
    let deepest = ref 0 in
    let stuck_example = ref None in
    let rec go count m =
      if count = n then raise Found;
      if count > !deepest then begin
        deepest := count;
        stuck_example := None
      end;
      for i = 0 to n - 1 do
        if
          Bytes.get bits i = '0'
          && List.for_all (fun p -> Bytes.get bits p = '1') preds.(i)
        then begin
          let r, m' = apply evs.(i).op m in
          if r = evs.(i).res then begin
            Bytes.set bits i '1';
            let key = Bytes.to_string bits ^ "|" ^ serialize m' in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              go (count + 1) m'
            end;
            Bytes.set bits i '0'
          end
          else if count = !deepest && !stuck_example = None then
            stuck_example := Some (evs.(i), r)
        end
      done
    in
    match go 0 m0 with
    | () ->
        let detail =
          match !stuck_example with
          | Some (e, model_res) ->
              Format.asprintf "; e.g. %a but a legal map gives %a" pp_event e
                pp_res model_res
          | None -> ""
        in
        Illegal
          (Printf.sprintf "no legal order for %d ops (best prefix %d)%s" n
             !deepest detail)
    | exception Found -> Linearizable
  end
