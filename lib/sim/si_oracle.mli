(** Snapshot-isolation checker for multi-version transaction histories.

    No search is needed: SI commits are totally ordered by commit
    timestamp and every transaction declares the snapshot it read
    against, so each operation's legal outcome is fully determined —
    the oracle replays and compares. Checks consistent-cut reads
    (every read observes the latest version committed at or before the
    transaction's read timestamp, overlaid with its own earlier writes;
    aborted transactions' reads included) and first-committer-wins on
    committed writes. *)

type op =
  | Read of string * string option
      (** key and the value the transaction actually observed *)
  | Write of string * string option  (** buffered put ([None] = delete) *)

type outcome = Committed of int  (** commit timestamp *) | Aborted

type txn = {
  fiber : int;
  read_ts : int;  (** pinned snapshot timestamp *)
  ops : op list;  (** program order *)
  outcome : outcome;
}

type verdict = Ok | Violation of string

val check : init:(string * string * int) list -> txn list -> verdict
(** [init] is the preloaded state: (key, value, version timestamp). *)

val pp_verdict : Format.formatter -> verdict -> unit
