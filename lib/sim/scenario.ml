module Rng = Pitree_util.Rng
module Env = Pitree_env.Env
module Wellformed = Pitree_core.Wellformed
module Engine = Pitree_core.Engine
module Blink = Pitree_blink.Blink
module Tsb = Pitree_tsb.Tsb
module Hb = Pitree_hb.Hb
module Mvcc = Pitree_txn.Mvcc
module Txn = Pitree_txn.Txn

type engine = Blink | Tsb | Hb

let engine_of_string = function
  | "blink" -> Some Blink
  | "tsb" -> Some Tsb
  | "hb" -> Some Hb
  | _ -> None

let engine_to_string = function Blink -> "blink" | Tsb -> "tsb" | Hb -> "hb"

type cfg = {
  engine : engine;
  threads : int;
  ops_per_thread : int;
  key_space : int;
  preload : int;
  seed : int64;
  page_size : int;
  consolidation : bool;
  olc : bool;
  combine : bool;
  del_heavy : bool;
      (* skew the op mix toward deletes (50%) so leaves drain below the
         consolidation threshold and merges run mid-schedule *)
  check_wellformed : bool;
  check_every : int;
  bug : Pitree_blink.Blink.Testing.bug;
  si : bool;
      (* run snapshot-isolation transactions (TSB engine forced): each
         fiber's script becomes a sequence of SI transactions judged by
         [Si_oracle] instead of [Linearize] *)
  mvcc_bug : Mvcc.Testing.bug;
  max_steps : int;
}

let default =
  {
    engine = Blink;
    threads = 3;
    ops_per_thread = 4;
    key_space = 24;
    preload = 8;
    seed = 1L;
    page_size = 512;
    consolidation = false;
    olc = true;
    (* Off by default: the un-combined protocol keeps its compact schedule
       space (and its regression baselines); combining-enabled scenarios
       opt in to the extra publish/elect/apply/broadcast yield points. *)
    combine = false;
    del_heavy = false;
    check_wellformed = true;
    check_every = 1;
    bug = Pitree_blink.Blink.Testing.No_bug;
    si = false;
    mvcc_bug = Mvcc.Testing.No_bug;
    max_steps = 200_000;
  }

type report = {
  outcome : Sim.outcome;
  verdict : Linearize.verdict option;
  history : Linearize.event list;
  wf_errors : string option;
}

let failed r =
  r.outcome.Sim.failure <> None
  || r.wf_errors <> None
  || match r.verdict with Some (Linearize.Illegal _) -> true | _ -> false

let outcome_of r =
  match r.outcome.Sim.failure with
  | Some _ -> r.outcome
  | None ->
      let failure =
        match (r.wf_errors, r.verdict) with
        | Some m, _ ->
            Some
              (Sim.Invariant_violation
                 { step = r.outcome.Sim.steps; message = "final wellformed: " ^ m })
        | None, Some (Linearize.Illegal m) ->
            Some
              (Sim.Invariant_violation
                 { step = r.outcome.Sim.steps; message = "linearizability: " ^ m })
        | _ -> None
      in
      { r.outcome with Sim.failure }

(* Deterministic substrate: in-memory disk and log, serial WAL (the
   group-commit leader election reads real state), one pool shard, no
   checkpoint triggers, pool big enough that eviction never runs. *)
let make_env cfg =
  Env.create
    {
      Env.default_config with
      page_size = cfg.page_size;
      pool_capacity = 4096;
      consolidation = cfg.consolidation;
      olc_reads = cfg.olc;
      combine = cfg.combine;
      (* The combining window is a wall-clock heuristic; keep the
         substrate deterministic (it is skipped under the scheduler
         anyway). *)
      combine_window_us = 0;
      wal_group_commit = false;
      si_txns = cfg.si;
      pool_shards = Some 1;
      log_path = None;
      ckpt_log_bytes = None;
      ckpt_interval_s = None;
    }

let key cfg i = Printf.sprintf "k%04d" (i mod cfg.key_space)

type handle = H_blink of Blink.t | H_tsb of Tsb.t | H_hb of Hb.t

let make_tree cfg env =
  match cfg.engine with
  | Blink -> H_blink (Blink.create env ~name:"sim")
  | Tsb -> H_tsb (Tsb.create env ~name:"sim")
  | Hb -> H_hb (Hb.create env ~name:"sim" ~dims:2)

let inst_of = function
  | H_blink t -> Pitree_blink.Blink_engine.inst t
  | H_tsb t -> Pitree_tsb.Tsb_engine.inst t
  | H_hb t -> Pitree_hb.Hb_engine.inst t

(* Point, update and blind-delete ops go through the uniform [Engine]
   interface — the same code path the driver, endurance rig and chaos
   harness exercise — so every engine's structure machinery (splits,
   merges, frees) is reached from one place. [Del] (observed boolean) and
   [Range] keep engine-specific dispatch: TSB's delete is a blind
   tombstone and only the B-link engine serves ordered key-value ranges. *)
let exec handle inst (op : Linearize.op) : Linearize.res =
  match op with
  | Get k -> Value (Engine.find inst k)
  | Put (k, v) ->
      Engine.insert inst ~key:k ~value:v;
      Ok_put
  | Blind_del k ->
      ignore (Engine.delete inst k);
      Ok_put
  | Del k -> (
      match handle with
      | H_tsb _ -> invalid_arg "Scenario.exec: unsupported TSB op"
      | H_blink _ | H_hb _ -> Deleted (Engine.delete inst k))
  | Range (lo, hi) -> (
      match handle with
      | H_blink t ->
          Keys
            (List.rev
               (Blink.range t ?low:lo ?high:hi ~init:[] ~f:(fun acc k v ->
                    (k, v) :: acc)))
      | H_tsb _ | H_hb _ -> invalid_arg "Scenario.exec: unsupported Range op")

let verify_handle = function
  | H_blink t -> Blink.verify t
  | H_tsb t -> Tsb.verify t
  | H_hb t -> Hb.verify t

let wf_of_report r =
  if Wellformed.ok r then None
  else Some (Format.asprintf "%a" Wellformed.pp_report r)

(* Scripts are fully generated before the run so the op stream depends
   only on [cfg.seed], never on the schedule. Run-phase values are padded
   well past the preload values so overwrites grow their leaf and splits
   happen *during* the run — the interleavings of multi-action structure
   changes are the whole point. *)
let gen_script cfg rng tid : Linearize.op list =
  (* Default mix: half puts, a quarter reads. [del_heavy] flips the skew
     to half deletes so leaves drain below the consolidation threshold
     and merges (with their free-list pushes) run mid-schedule. *)
  let put_below, get_below, del_below =
    if cfg.del_heavy then (30, 45, 95) else (50, 75, 90)
  in
  List.init cfg.ops_per_thread (fun j ->
      let r = Rng.int rng 100 in
      let k = key cfg (Rng.int rng cfg.key_space) in
      if r < put_below then
        Linearize.Put (k, Printf.sprintf "t%d.%d.%s" tid j (String.make 60 'x'))
      else if r < get_below then Linearize.Get k
      else if r < del_below then
        match cfg.engine with
        | Tsb -> Linearize.Blind_del k
        | Blink | Hb -> Linearize.Del k
      else
        match cfg.engine with
        | Blink ->
            let k2 = key cfg (Rng.int rng cfg.key_space) in
            let lo, hi = if k <= k2 then (k, k2) else (k2, k) in
            Linearize.Range (Some lo, Some hi)
        | Tsb | Hb -> Linearize.Get k)

let run_lin cfg ~policy =
  let env = make_env cfg in
  Fun.protect ~finally:(fun () ->
      Blink.Testing.set_bug Blink.Testing.No_bug;
      try Env.close env with _ -> ())
  @@ fun () ->
  let handle = make_tree cfg env in
  let inst = inst_of handle in
  let init =
    List.init cfg.preload (fun i -> (key cfg i, Printf.sprintf "init.%d" i))
  in
  List.iter (fun (k, v) -> ignore (exec handle inst (Linearize.Put (k, v)))) init;
  ignore (Env.drain env);
  Blink.Testing.set_bug cfg.bug;
  let master = Rng.create cfg.seed in
  let scripts = List.init cfg.threads (fun tid -> gen_script cfg (Rng.split master) tid) in
  let histories = Array.make cfg.threads [] in
  let bodies =
    List.mapi
      (fun tid script () ->
        List.iter
          (fun op ->
            let inv = Sim.stamp () in
            let res = exec handle inst op in
            let ret = Sim.stamp () in
            histories.(tid) <-
              { Linearize.fiber = tid; op; res; inv; ret } :: histories.(tid))
          script)
      scripts
  in
  let invariant =
    if cfg.check_wellformed then
      Some (fun () -> wf_of_report (verify_handle handle))
    else None
  in
  let outcome =
    Sim.run
      { Sim.policy; max_steps = cfg.max_steps; invariant; check_every = cfg.check_every }
      bodies
  in
  (* The injected bug stays armed through the post-run drain: postings the
     schedule left queued must misbehave the same way mid-run ones do. The
     [Fun.protect] finally disarms it. *)
  let history =
    List.concat_map (fun h -> List.rev h) (Array.to_list histories)
  in
  match outcome.Sim.failure with
  | Some _ -> { outcome; verdict = None; history; wf_errors = None }
  | None ->
      ignore (Env.drain env);
      let wf_errors = wf_of_report (verify_handle handle) in
      let verdict = Some (Linearize.check ~init history) in
      { outcome; verdict; history; wf_errors }

(* ---------- snapshot-isolation scenarios ----------

   Each fiber runs a sequence of SI transactions ([Mvcc.begin_snapshot]
   .. [Mvcc.commit]) against a TSB tree, recording per transaction the
   pinned read timestamp, every operation with what it observed, and the
   outcome (commit timestamp or first-committer-wins abort). The judge
   is [Si_oracle] — no linearization search: SI histories are fully
   determined by (read_ts, commit_ts), so the oracle replays and
   compares. The verdict is surfaced through the same [Linearize.verdict]
   so the explore/minimize/CLI plumbing is unchanged. *)

(* A transaction script: 2-4 ops, write-heavy over a small key space so
   schedules actually produce overlapping (read_ts, commit_ts) windows —
   both injected bugs only misbehave when transactions race. *)
let gen_si_script cfg rng tid :
    [ `Get of string | `Put of string * string | `Del of string ] list list =
  List.init cfg.ops_per_thread (fun j ->
      let n = 2 + Rng.int rng 3 in
      List.init n (fun i ->
          let r = Rng.int rng 100 in
          let k = key cfg (Rng.int rng cfg.key_space) in
          if r < 45 then `Put (k, Printf.sprintf "t%d.%d.%d" tid j i)
          else if r < 85 then `Get k
          else `Del k))

let run_si cfg ~policy =
  let env = make_env cfg in
  Fun.protect ~finally:(fun () ->
      Mvcc.Testing.arm Mvcc.Testing.No_bug;
      try Env.close env with _ -> ())
  @@ fun () ->
  let tree = Tsb.create env ~name:"sim" in
  let inst = Pitree_tsb.Tsb_engine.inst tree in
  let mgr = Env.txns env in
  (* Preload through plain autocommit puts, capturing each version's
     timestamp — the oracle's base state. *)
  let init =
    List.init cfg.preload (fun i ->
        let k = key cfg i and v = Printf.sprintf "init.%d" i in
        let ts = Tsb.put tree ~key:k ~value:v in
        (k, v, ts))
  in
  ignore (Env.drain env);
  Mvcc.Testing.arm cfg.mvcc_bug;
  let master = Rng.create cfg.seed in
  let scripts =
    List.init cfg.threads (fun tid -> gen_si_script cfg (Rng.split master) tid)
  in
  let recorded = Array.make cfg.threads [] in
  let bodies =
    List.mapi
      (fun tid script () ->
        List.iter
          (fun txn_ops ->
            let txn = Mvcc.begin_snapshot mgr in
            let read_ts =
              match Mvcc.si_of txn with
              | Some si -> si.Txn.read_ts
              | None -> assert false
            in
            let ops =
              List.map
                (fun sop ->
                  match sop with
                  | `Put (k, v) ->
                      Engine.insert ~txn inst ~key:k ~value:v;
                      Si_oracle.Write (k, Some v)
                  | `Get k -> Si_oracle.Read (k, Engine.find ~txn inst k)
                  | `Del k ->
                      (* The engine only buffers a tombstone when the key
                         is live at the snapshot; a [false] return is an
                         observation that it was not. *)
                      if Engine.delete ~txn inst k then
                        Si_oracle.Write (k, None)
                      else Si_oracle.Read (k, None))
                txn_ops
            in
            let outcome =
              match Mvcc.commit mgr txn with
              | Some ts -> Si_oracle.Committed ts
              | None ->
                  (* Read-only: commits without installing anything; give
                     it its read timestamp (empty write set — it can
                     neither conflict nor contribute versions). *)
                  Si_oracle.Committed read_ts
              | exception Mvcc.Write_conflict _ -> Si_oracle.Aborted
            in
            recorded.(tid) <-
              { Si_oracle.fiber = tid; read_ts; ops; outcome }
              :: recorded.(tid))
          script)
      scripts
  in
  let invariant =
    if cfg.check_wellformed then
      Some (fun () -> wf_of_report (Tsb.verify tree))
    else None
  in
  let outcome =
    Sim.run
      { Sim.policy; max_steps = cfg.max_steps; invariant;
        check_every = cfg.check_every }
      bodies
  in
  let txns = List.concat_map List.rev (Array.to_list recorded) in
  match outcome.Sim.failure with
  | Some _ -> { outcome; verdict = None; history = []; wf_errors = None }
  | None ->
      ignore (Env.drain env);
      let wf_errors = wf_of_report (Tsb.verify tree) in
      let verdict =
        match Si_oracle.check ~init txns with
        | Si_oracle.Ok -> Some Linearize.Linearizable
        | Si_oracle.Violation m -> Some (Linearize.Illegal ("si: " ^ m))
      in
      { outcome; verdict; history = []; wf_errors }

let run cfg ~policy =
  if cfg.si then run_si cfg ~policy else run_lin cfg ~policy

let replay cfg schedule = run cfg ~policy:(Sim.Replay schedule)

let walk_seed base i =
  Int64.add base (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (i + 1)))

let random_walks cfg ~walks ~seed =
  let rec go i =
    if i >= walks then (walks, None)
    else begin
      let ws = walk_seed seed i in
      let r = run cfg ~policy:(Sim.Walk ws) in
      if failed r then (i + 1, Some (ws, r)) else go (i + 1)
    end
  in
  go 0

let systematic ?max_preemptions ?branch_depth ?max_schedules cfg =
  let last = ref None in
  let stats, failing =
    Sim.explore ?max_preemptions ?branch_depth ?max_schedules
      ~run:(fun prefix ->
        let r = run cfg ~policy:(Sim.Replay prefix) in
        last := Some r;
        outcome_of r)
      ()
  in
  match failing with
  | None -> (stats, None)
  | Some (prefix, _) -> (
      match !last with
      | Some r -> (stats, Some (prefix, r))
      | None -> (stats, None))

let minimize cfg schedule =
  Sim.minimize ~run:(fun prefix -> outcome_of (replay cfg prefix)) schedule

let pp_report ppf r =
  Format.fprintf ppf "%a" Sim.pp_outcome (outcome_of r);
  match r.verdict with
  | Some v -> Format.fprintf ppf "; history %d ops: %a" (List.length r.history) Linearize.pp_verdict v
  | None -> ()
