module Histogram = Pitree_util.Histogram
module Sched_hook = Pitree_util.Sched_hook
module Crash_point = Pitree_util.Crash_point

let crash_point_applied = "combine.applied"

let () = Crash_point.register crash_point_applied

(* ---------- process-wide stats ----------

   One stats block across every combiner, mirroring how the WAL's
   group-commit metrics live on the log manager: counters are atomics,
   histograms share one mutex (Histogram is not thread-safe). *)

let n_reqs = Atomic.make 0
let n_batches = Atomic.make 0
let n_combined = Atomic.make 0
let n_handbacks = Atomic.make 0
let n_window_waits = Atomic.make 0
let stats_mu = Mutex.create ()
let batch_hist = Histogram.create ()
let follower_wait_hist = Histogram.create ()

let note_handback () = Atomic.incr n_handbacks

type stats = {
  reqs : int;
  batches : int;
  combined : int;
  handbacks : int;
  window_waits : int;
  batch_mean : float;
  batch_p99 : int;
  batch_max : int;
  follower_wait_mean_ns : float;
  follower_wait_p99_ns : int;
}

let stats () =
  Mutex.lock stats_mu;
  let s =
    {
      reqs = Atomic.get n_reqs;
      batches = Atomic.get n_batches;
      combined = Atomic.get n_combined;
      handbacks = Atomic.get n_handbacks;
      window_waits = Atomic.get n_window_waits;
      batch_mean = Histogram.mean batch_hist;
      batch_p99 = Histogram.percentile batch_hist 99.0;
      batch_max = Histogram.max_value batch_hist;
      follower_wait_mean_ns = Histogram.mean follower_wait_hist;
      follower_wait_p99_ns = Histogram.percentile follower_wait_hist 99.0;
    }
  in
  Mutex.unlock stats_mu;
  s

let reset_stats () =
  Mutex.lock stats_mu;
  Atomic.set n_reqs 0;
  Atomic.set n_batches 0;
  Atomic.set n_combined 0;
  Atomic.set n_handbacks 0;
  Atomic.set n_window_waits 0;
  Histogram.reset batch_hist;
  Histogram.reset follower_wait_hist;
  Mutex.unlock stats_mu

let pp_stats ppf s =
  Format.fprintf ppf
    "reqs %d  batches %d  combined %d  handbacks %d  window_waits %d@ \
     batch mean %.2f  p99 %d  max %d@ follower wait mean %.0f ns  p99 %d ns"
    s.reqs s.batches s.combined s.handbacks s.window_waits s.batch_mean
    s.batch_p99 s.batch_max s.follower_wait_mean_ns s.follower_wait_p99_ns

module Testing = struct
  let ack_before_durable = ref false
  let set_ack_before_durable b = ack_before_durable := b
end

(* ---------- the funnel ---------- *)

type ('req, 'res) pending = {
  req : 'req;
  mutable res : 'res option;
  mutable exn : exn option;
  mutable done_ : bool;
}

type ('req, 'res) slot = {
  mu : Mutex.t;
  cond : Condition.t;
  (* [combining]: a leader owns the slot; arrivals queue behind it and
     park. Invariant (both flipped under [mu]): a pending with
     [not done_] while [not combining] is still in [queue] — a leader
     marks its whole batch done before it clears [combining]. *)
  mutable combining : bool;
  mutable queue : ('req, 'res) pending list;  (* newest first *)
}

type ('req, 'res) t = {
  slots : ('req, 'res) slot array;
  mask : int;
  window_us : int;
  early_res : 'res option;
  apply : 'req array -> 'res array;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(slots = 64) ?(window_us = 0) ?early_res ~apply () =
  let n = next_pow2 (max 1 slots) in
  {
    slots =
      Array.init n (fun _ ->
          {
            mu = Mutex.create ();
            cond = Condition.create ();
            combining = false;
            queue = [];
          });
    mask = n - 1;
    window_us;
    early_res;
    apply;
  }

(* Broadcast results (or the leader's exception) to the whole batch and
   release the slot. *)
let settle slot batch ~fill =
  Mutex.lock slot.mu;
  Array.iteri
    (fun i p ->
      if not p.done_ then begin
        fill i p;
        p.done_ <- true
      end)
    batch;
  slot.combining <- false;
  Condition.broadcast slot.cond;
  Mutex.unlock slot.mu;
  Sched_hook.yield Sched_hook.Point "combine.broadcast"

let run_batch t slot batch =
  let n = Array.length batch in
  Atomic.incr n_batches;
  if n >= 2 then ignore (Atomic.fetch_and_add n_combined n);
  Mutex.lock stats_mu;
  Histogram.record batch_hist n;
  Mutex.unlock stats_mu;
  let reqs = Array.map (fun p -> p.req) batch in
  (match (!Testing.ack_before_durable, t.early_res) with
  | true, Some er ->
      (* Injected bug: ack every follower optimistically, then apply.
         The acked writes are neither durable nor visible yet. *)
      settle slot batch ~fill:(fun _ p -> p.res <- Some er);
      Sched_hook.yield Sched_hook.Point "combine.apply";
      ignore (t.apply reqs)
  | _ -> (
      Sched_hook.yield Sched_hook.Point "combine.apply";
      match t.apply reqs with
      | results ->
          if Array.length results <> n then
            invalid_arg "Combine: apply returned a short batch";
          settle slot batch ~fill:(fun i p -> p.res <- Some results.(i))
      | exception e ->
          settle slot batch ~fill:(fun _ p -> p.exn <- Some e);
          raise e))

let submit t ~hash req =
  Atomic.incr n_reqs;
  let slot = t.slots.(hash land t.mask) in
  let p = { req; res = None; exn = None; done_ = false } in
  let sim = Sched_hook.active () in
  Mutex.lock slot.mu;
  slot.queue <- p :: slot.queue;
  Mutex.unlock slot.mu;
  Sched_hook.yield Sched_hook.Point "combine.publish";
  let t0 = Unix.gettimeofday () in
  let led = ref false in
  let finish () =
    if not !led then begin
      let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
      Mutex.lock stats_mu;
      Histogram.record follower_wait_hist ns;
      Mutex.unlock stats_mu
    end;
    match p.exn with
    | Some e -> raise e
    | None -> (
        match p.res with
        | Some r -> r
        | None -> failwith "Combine: batch settled without a result")
  in
  let rec loop () =
    Mutex.lock slot.mu;
    if p.done_ then begin
      Mutex.unlock slot.mu;
      finish ()
    end
    else if slot.combining then begin
      (* Follower: park holding nothing — no pins, latches or locks. *)
      if sim then begin
        Mutex.unlock slot.mu;
        Sched_hook.wait Sched_hook.Cond "combine.follower" (fun () ->
            p.done_ || not slot.combining)
      end
      else begin
        while (not p.done_) && slot.combining do
          Condition.wait slot.cond slot.mu
        done;
        Mutex.unlock slot.mu
      end;
      loop ()
    end
    else begin
      (* Leader election: the slot is idle and p is still queued. *)
      led := true;
      slot.combining <- true;
      if (not sim) && t.window_us > 0 then begin
        (* Hold the election open so the storm can pile in. The slot is
           already claimed, so arrivals during the wait park rather than
           elect; [window_us] trades a bounded latency add for fan-in
           (it defaults to 0 — group commit downstream remains the
           no-added-latency batching layer). *)
        Atomic.incr n_window_waits;
        Mutex.unlock slot.mu;
        Thread.delay (float_of_int t.window_us *. 1e-6);
        Mutex.lock slot.mu
      end;
      let batch = Array.of_list (List.rev slot.queue) in
      slot.queue <- [];
      Mutex.unlock slot.mu;
      Sched_hook.yield Sched_hook.Point "combine.elect";
      run_batch t slot batch;
      loop ()
    end
  in
  loop ()
