(** Hot-key write combining (elimination funnel) for the engines' update
    paths — ROADMAP open item 3, after "Elimination (a,b)-trees with fast,
    durable updates" (PAPERS.md).

    Writers hash their request to a {e publication slot}. The first arrival
    on an idle slot becomes the {b combiner}: it drains the slot's queue and
    applies the whole batch through the engine-supplied [apply] callback —
    one descent, one X latch, one physiological log-record batch with one
    durability enrollment — while later arrivals park on the slot's condvar
    exactly like the group-commit followers in [Log_manager.flush]. The
    leader then broadcasts per-request results. A request the batch could
    not serve (key outside the reached leaf, record lock busy, cell does
    not fit) is {e handed back}: the caller re-runs it through the normal
    single-op path, so nothing is ever silently dropped.

    The layer is engine-agnostic: ['req] and ['res] are chosen by the
    caller, and [apply] must return one result per request, in order.
    Under the deterministic scheduler ([Sched_hook.active ()]) followers
    park on sim waits instead of condvars and the protocol exposes yield
    points [combine.publish], [combine.elect], [combine.apply] and
    [combine.broadcast], so the Wing–Gong oracle can check that combined
    updates are atomic and acked only after they are durable. *)

type ('req, 'res) t

val create :
  ?slots:int ->
  ?window_us:int ->
  ?early_res:'res ->
  apply:('req array -> 'res array) ->
  unit ->
  ('req, 'res) t
(** [create ~apply ()] builds a combiner.

    [slots] is the number of publication slots, rounded up to a power of
    two (default 64). [window_us] — a newly elected leader holds the
    election open for this long so concurrent writers can publish into
    the batch, trading a bounded latency add for fan-in; [0] (the
    default) applies immediately, leaving the WAL's group commit as the
    only deliberate batching delay. The window is skipped under the
    deterministic scheduler. [early_res] is the
    optimistic per-request result used only by the injected
    ack-before-durable bug ({!Testing}); combiners that never participate
    in that test may omit it. [apply batch] must return an array of the
    same length: result [i] answers request [i]. If [apply] raises, every
    request in the batch observes the exception. *)

val submit : ('req, 'res) t -> hash:int -> 'req -> 'res
(** Publish a request and wait for its result. The calling thread may be
    elected leader and run [apply] itself; otherwise it parks (holding no
    latches, pins or locks) until the leader broadcasts. Re-raises the
    leader's exception if the batch failed wholesale. *)

val crash_point_applied : string
(** ["combine.applied"] — engines hit this inside [apply] after the leaf
    updates but before the batch commit, so the chaos sweep can prove a
    crash mid-batch recovers all-or-nothing and never acks a torn batch. *)

val note_handback : unit -> unit
(** Engines call this when a combined request is re-run through the
    normal path, so the handback rate shows up in {!stats}. *)

type stats = {
  reqs : int;  (** requests submitted through any combiner *)
  batches : int;  (** leader elections that applied a batch *)
  combined : int;  (** requests that shared a batch of size >= 2 *)
  handbacks : int;  (** requests re-run through the normal path *)
  window_waits : int;  (** elections that held the combining window open *)
  batch_mean : float;
  batch_p99 : int;
  batch_max : int;
  follower_wait_mean_ns : float;
  follower_wait_p99_ns : int;
}

val stats : unit -> stats
(** Process-wide counters across every combiner (engines share them the
    way [Buffer_pool] shards share one stats block). *)

val reset_stats : unit -> unit

val pp_stats : Format.formatter -> stats -> unit

module Testing : sig
  val set_ack_before_durable : bool -> unit
  (** Injected bug: the leader broadcasts success to its followers {e
      before} applying and committing the batch. A combined put is acked
      while not yet durable — and not even visible — so a schedule where
      the acked writer's later read misses its own write is linearizable
      nowhere, and the sim oracle must flag it ([pitree sim --bug
      ack-before-durable --expect-bug]). Requires the combiner to have
      been created with [early_res]. *)
end
