module Page = Pitree_storage.Page
module Buffer_pool = Pitree_storage.Buffer_pool
module Latch = Pitree_sync.Latch
module Version = Pitree_sync.Version
module Olc = Pitree_storage.Olc
module Latch_order = Pitree_sync.Latch_order
module Page_op = Pitree_wal.Page_op
module Lsn = Pitree_wal.Lsn
module Log_record = Pitree_wal.Log_record
module Log_manager = Pitree_wal.Log_manager
module Logical = Pitree_wal.Logical
module Lock_mode = Pitree_lock.Lock_mode
module Lock_manager = Pitree_lock.Lock_manager
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Atomic_action = Pitree_txn.Atomic_action
module Crash_point = Pitree_util.Crash_point
module Combine = Pitree_combine.Combine
module Env = Pitree_env.Env
module Saved_path = Pitree_core.Saved_path
module Wellformed = Pitree_core.Wellformed
module Keyspace = Pitree_core.Keyspace

(* Every Crash_point.hit site in this engine, pre-registered so sweep
   harnesses can enumerate them before any fires. *)
let () =
  List.iter Crash_point.register
    [
      "blink.split.linked";
      "blink.split.committed";
      "blink.root.grown";
      "blink.post.latched";
      "blink.post.updated";
      "blink.post.done";
      "blink.consolidate.linked";
      "blink.merge.moved";
      "blink.merge.freed";
    ]

type stats = {
  searches : int;
  inserts : int;
  deletes : int;
  leaf_splits : int;
  index_splits : int;
  root_splits : int;
  side_traversals : int;
  postings_scheduled : int;
  postings_completed : int;
  postings_noop : int;
  consolidations : int;
  consolidations_skipped : int;
  path_reuse_hits : int;
  full_retraversals : int;
  lock_restarts : int;
  olc_restarts : int;
  olc_fallbacks : int;
  descents : int;
}

(* Mutable atomic counters behind the frozen [stats] snapshot. *)
type counters = {
  c_searches : int Atomic.t;
  c_inserts : int Atomic.t;
  c_deletes : int Atomic.t;
  c_leaf_splits : int Atomic.t;
  c_index_splits : int Atomic.t;
  c_root_splits : int Atomic.t;
  c_side_traversals : int Atomic.t;
  c_postings_scheduled : int Atomic.t;
  c_postings_completed : int Atomic.t;
  c_postings_noop : int Atomic.t;
  c_consolidations : int Atomic.t;
  c_consolidations_skipped : int Atomic.t;
  c_path_reuse_hits : int Atomic.t;
  c_full_retraversals : int Atomic.t;
  c_lock_restarts : int Atomic.t;
  c_olc_restarts : int Atomic.t;
  c_olc_fallbacks : int Atomic.t;
  c_descents : int Atomic.t;
}

let fresh_counters () =
  {
    c_searches = Atomic.make 0;
    c_inserts = Atomic.make 0;
    c_deletes = Atomic.make 0;
    c_leaf_splits = Atomic.make 0;
    c_index_splits = Atomic.make 0;
    c_root_splits = Atomic.make 0;
    c_side_traversals = Atomic.make 0;
    c_postings_scheduled = Atomic.make 0;
    c_postings_completed = Atomic.make 0;
    c_postings_noop = Atomic.make 0;
    c_consolidations = Atomic.make 0;
    c_consolidations_skipped = Atomic.make 0;
    c_path_reuse_hits = Atomic.make 0;
    c_full_retraversals = Atomic.make 0;
    c_lock_restarts = Atomic.make 0;
    c_olc_restarts = Atomic.make 0;
    c_olc_fallbacks = Atomic.make 0;
    c_descents = Atomic.make 0;
  }

let bump c = Atomic.incr c

type t = {
  env : Env.t;
  name : string;
  root : int;
  c : counters;
  (* Dedup of queued posting tasks, keyed by the pid whose term is being
     posted. Purely an optimization: posting is idempotent anyway. *)
  pending : (int, unit) Hashtbl.t;
  pending_mu : Mutex.t;
  (* Dedup of queued consolidation tasks, keyed by under-utilized pid. *)
  pending_consol : (int, unit) Hashtbl.t;
  (* How move locks are realized under page-oriented UNDO (section 4.2.2):
     one node-granule lock, or one U lock per record to be moved. *)
  mutable move_granularity : [ `Node | `Record ];
  (* A permanently pinned root frame for latch-free descents: pinned
     frames are never evicted, so optimistic readers skip the root's
     shard mutex entirely (the hottest pin in the tree). Keyed by pool
     identity — recovery replaces the pool object, invalidating the
     cache. *)
  root_cache : (Buffer_pool.t * Buffer_pool.frame) option Atomic.t;
  (* Hot-key write combining: non-transactional inserts funnel through
     this per-tree combiner ([Env.config.combine]). A combined request
     the batch could not serve is [Handback]: the caller re-runs it on
     the normal single-op path. *)
  mutable combiner : (string * string, comb_res) Combine.t option;
}

and comb_res = Applied | Handback

let env t = t.env
let name t = t.name
let root t = t.root
let set_move_granularity t g = t.move_granularity <- g
let move_granularity t = t.move_granularity

(* ---------- frame helpers ---------- *)

let pool t = Env.pool t.env
let mgr t = Env.txns t.env
let locks t = Env.locks t.env
let cfg t = Env.config t.env

let pin t pid = Buffer_pool.pin (pool t) pid
let unpin t fr = Buffer_pool.unpin (pool t) fr

(* Latch rank for deadlock-avoidance checking: parents (higher levels)
   before children. *)
let rank page = 255 - Page.level page

let latch fr m =
  Latch.acquire fr.Buffer_pool.latch m;
  Latch_order.acquired (rank fr.Buffer_pool.page)

let unlatch fr m =
  Latch_order.released (rank fr.Buffer_pool.page);
  Latch.release fr.Buffer_pool.latch m

(* For the rare callers that changed the node's LEVEL while holding the X
   latch (root growth, de-allocation): release the order-checker entry at
   the rank recorded when the latch was taken. *)
let unlatch_at rank0 fr m =
  Latch_order.released rank0;
  Latch.release fr.Buffer_pool.latch m

let promote fr =
  Latch_order.promoting (rank fr.Buffer_pool.page);
  Latch.promote fr.Buffer_pool.latch

let page fr = fr.Buffer_pool.page

(* Test-only protocol-bug injection (validated by lib/sim's schedule
   explorer): deliberately break the split protocol so the oracles —
   linearizability and well-formedness — can be shown to catch it. *)
type injected_bug =
  | No_bug
  | Early_unlatch_split
  | Early_unlatch_merge
      (* drop every latch mid-merge, after the containing node took over
         the contained node's space but before the parent's index term is
         removed: two nodes directly claim the same key space *)
  | Bad_post_sep
  | No_version_bump
      (* writers take and release X latches correctly but never touch the
         node's version word, so optimistic readers validate stale reads *)
  | Ack_before_durable
      (* the combining leader broadcasts success to its followers before
         the batch is applied or committed (Combine.Testing) *)

let injected_bug = ref No_bug

(* Logged page update under [txn]; caller holds the X latch. *)
let update t txn fr op = ignore (Txn_mgr.update (mgr t) txn fr op)

(* Leaf-record update by a user transaction. Under non-page-oriented UNDO
   it carries a logical-undo descriptor, because committed independent
   structure changes may move the record before this transaction
   finishes (sections 4.2, 6). *)
let update_record t txn fr op ~comp =
  let lundo =
    if (cfg t).Env.page_oriented_undo || txn.Txn.kind <> Txn.User then None
    else Some { Log_record.tree = t.root; comp }
  in
  ignore (Txn_mgr.update ?lundo (mgr t) txn fr op)

(* ---------- creation ---------- *)

(* Forward declarations: creation registers trees with the logical-undo
   registry defined further down; the posting action needs the traversal
   machinery and vice versa. *)
let register_tree_fwd : (t -> unit) ref = ref (fun _ -> ())
let register_tree_hook t = !register_tree_fwd t

(* Forward declaration: the combiner's batch apply needs the whole
   traversal/lock machinery below. *)
let attach_combiner_fwd : (t -> unit) ref = ref (fun _ -> ())
let attach_combiner t = !attach_combiner_fwd t

let create e ~name =
  let root = Env.create_tree e ~name ~kind:Page.Data ~level:0 in
  let t =
    {
      env = e;
      name;
      root;
      c = fresh_counters ();
      pending = Hashtbl.create 16;
      pending_mu = Mutex.create ();
      pending_consol = Hashtbl.create 16;
      move_granularity = `Node;
      root_cache = Atomic.make None;
      combiner = None;
    }
  in
  (* Give the root its fence cell (responsible for the whole space). *)
  Atomic_action.run (mgr t) (fun txn ->
      let fr = pin t root in
      latch fr Latch.X;
      update t txn fr
        (Page_op.Insert_slot { slot = 0; cell = Node.fence_cell Node.whole_fence });
      unlatch fr Latch.X;
      unpin t fr);
  register_tree_hook t;
  attach_combiner t;
  t

(* For file-persistent databases restarted in a fresh process: recovery may
   need this tree's logical-undo handler BEFORE the catalog is readable, so
   callers that persist root pids externally can pre-register. *)
let register_for_recovery e ~root =
  register_tree_hook
    {
      env = e;
      name = Printf.sprintf "<recovery:%d>" root;
      root;
      c = fresh_counters ();
      pending = Hashtbl.create 4;
      pending_mu = Mutex.create ();
      pending_consol = Hashtbl.create 4;
      move_granularity = `Node;
      root_cache = Atomic.make None;
      combiner = None;
    }

let open_existing e ~name =
  match Env.find_tree e ~name with
  | None -> None
  | Some root ->
      let t =
        {
          env = e;
          name;
          root;
          c = fresh_counters ();
          pending = Hashtbl.create 16;
          pending_mu = Mutex.create ();
          pending_consol = Hashtbl.create 16;
          move_granularity = `Node;
          root_cache = Atomic.make None;
          combiner = None;
        }
      in
      register_tree_hook t;
      attach_combiner t;
      Some t

(* ---------- posting scheduling (section 5.1) ---------- *)

let move_locked t pid =
  List.exists
    (fun (_, m) -> m = Lock_mode.Move || m = Lock_mode.X)
    (Lock_manager.holders (locks t) (Lock_manager.Node { tree = t.root; page = pid }))

(* Forward declaration: the posting action needs the traversal machinery
   and vice versa. *)
let post_action :
    (t -> level:int -> path:Saved_path.t -> address:int -> key:string -> unit) ref
  =
  ref (fun _ ~level:_ ~path:_ ~address:_ ~key:_ -> assert false)

(* Called when a traversal at [level] follows the side pointer of
   [container] looking for [key]: the index term for the sibling may be
   missing one level up. [path] holds the nodes above [level] already
   traversed. *)
let maybe_schedule_posting t ~level ~container ~sibling ~path ~key =
  (* A move lock on the split node means the split's transaction has not
     committed: do not post its index term (section 4.2.2). *)
  if (not (cfg t).Env.page_oriented_undo) || not (move_locked t container) then begin
    Mutex.lock t.pending_mu;
    let fresh = not (Hashtbl.mem t.pending sibling) in
    if fresh then Hashtbl.replace t.pending sibling ();
    Mutex.unlock t.pending_mu;
    if fresh then begin
      bump t.c.c_postings_scheduled;
      Env.schedule t.env (fun () ->
          Mutex.lock t.pending_mu;
          Hashtbl.remove t.pending sibling;
          Mutex.unlock t.pending_mu;
          !post_action t ~level:(level + 1) ~path ~address:sibling ~key)
    end
  end

let pending_postings t =
  Mutex.lock t.pending_mu;
  let n = Hashtbl.length t.pending in
  Mutex.unlock t.pending_mu;
  n

(* ---------- traversal ---------- *)

(* Side-step along sibling pointers (same level) until the node directly
   contains [key]. [fr] is latched in [m]; returns the (possibly different)
   frame latched in [m]. Missing index terms discovered on the way are
   scheduled for posting. *)
let rec side_step t ~key ~m ~path fr =
  let p = page fr in
  if Node.contains p key then fr
  else begin
    bump t.c.c_side_traversals;
    let sib = Page.side_ptr p in
    assert (sib <> Page.nil);
    maybe_schedule_posting t ~level:(Page.level p) ~container:(Page.id p)
      ~sibling:sib ~path ~key;
    let sfr = pin t sib in
    if (cfg t).Env.consolidation then begin
      (* CP: latch-couple so the target cannot be de-allocated while we
         de-reference the pointer (section 5.2.2). *)
      latch sfr m;
      unlatch fr m;
      unpin t fr
    end
    else begin
      (* CNS: nodes are immortal; one latch at a time suffices. *)
      unlatch fr m;
      unpin t fr;
      latch sfr m
    end;
    side_step t ~key ~m ~path sfr
  end

(* Descend from [fr] (latched; S above [target], [mode] at [target]) to the
   node at [target] whose directly-contained space includes [key]. Returns
   the saved path of the levels above [target] and the latched frame. *)
let rec descend_from t ~key ~target ~mode fr path =
  let p = page fr in
  let level = Page.level p in
  let m = if level > target then Latch.S else mode in
  let fr = side_step t ~key ~m ~path fr in
  let p = page fr in
  if level = target then (path, fr)
  else begin
    let i =
      match Node.floor_entry p key with
      | Some i -> i
      | None ->
          (* Index nodes always carry a least separator <= every key they
             directly contain (the leftmost uses ""). *)
          assert false
    in
    let _, child = Node.index_term p i in
    let path =
      Saved_path.push path ~pid:(Page.id p) ~level ~state_id:(Page.lsn p) ~slot:i
    in
    let cfr = pin t child in
    let cm = if level - 1 > target then Latch.S else mode in
    if (cfg t).Env.consolidation then begin
      latch cfr cm;
      unlatch fr m;
      unpin t fr
    end
    else begin
      unlatch fr m;
      unpin t fr;
      latch cfr cm
    end;
    descend_from t ~key ~target ~mode cfr path
  end

(* Entry point: latch the root with the right mode for its current level
   and descend. *)
let rec descend t ~key ~target ~mode =
  if target = 0 then bump t.c.c_descents;
  let fr = pin t t.root in
  let guess_above = Page.level (page fr) > target in
  let m = if guess_above then Latch.S else mode in
  latch fr m;
  if (Page.level (page fr) > target) <> guess_above then begin
    (* The root grew between the unlatched peek and the latch. *)
    unlatch fr m;
    unpin t fr;
    descend t ~key ~target ~mode
  end
  else descend_from t ~key ~target ~mode fr Saved_path.empty

(* ---------- optimistic (latch-free) descent ----------

   Searches and range scans normally descend without taking a single
   latch: each node's frame latch carries a version word (twice the page
   LSN when quiescent, odd while a writer holds the X latch — see
   Pitree_sync.Version), and a reader proves each node read was
   consistent by snapshotting the word before reading and re-checking it
   before acting on anything it read. A failed check raises
   [Olc.Restart]; the whole descent restarts from the root, and after
   [Olc.max_restarts] failures the reader falls back to the classic
   S-latched path, so pathological write storms degrade to the paper's
   protocol instead of livelocking.

   Pins are still taken (frames must not be recycled under the reader),
   but the root — the hottest pin in the tree, taken by every descent —
   comes from a permanently pinned cached frame, so the root costs one
   atomic increment instead of a shard mutex.

   Under the CP invariant a node reached through a validated pointer can
   still be de-allocated before the reader pins it ("de-allocation is a
   node update", section 5.2.2 strategy (b), bumps the victim's LSN and
   hence its version word — but the reader has not latched anything, so
   nothing blocks the consolidator). Defence: after pinning the child,
   re-validate the PARENT's word; unchanged means the index term (or
   side pointer) still stood after the pin, and a pinned frame cannot be
   recycled, so the child is (or safely was) the node the pointer named. *)

let olc_enabled t = (cfg t).Env.olc_reads
let olc_snapshot = Olc.snapshot
let olc_validate = Olc.validate

(* The permanently pinned root frame. Keyed by pool identity: [crash]
   replaces the pool object, orphaning the old entry (and its pin) along
   with the pool itself. The CAS race on first installation is benign —
   the loser just drops the extra pin it took for the cache. *)
let pin_root t =
  let pl = pool t in
  match Atomic.get t.root_cache with
  | Some (p, fr) when p == pl ->
      Buffer_pool.repin pl fr;
      fr
  | stale ->
      let fr = pin t t.root in
      Buffer_pool.repin pl fr (* the cache's own, permanent pin *);
      if not (Atomic.compare_and_set t.root_cache stale (Some (pl, fr))) then
        unpin t fr;
      fr

(* One node of the optimistic descent: decide where [key] routes without
   holding any latch, proving every pointer read against the version word
   before returning it. *)
let olc_eval ~key fr =
  let v = olc_snapshot fr in
  let p = page fr in
  (* A stale pointer can land on a page a consolidation already freed
     (free-listed pages keep their latch and version word): explicitly a
     transient state — restart, don't decode free-list bytes as a node. *)
  Olc.live p;
  (* The routing reads below parse unvalidated bytes; [Olc.decoding]
     turns a decode blow-up on a torn snapshot into a restart while
     letting the same failure on stable bytes escape as a real bug. *)
  Olc.decoding fr v @@ fun () ->
  if not (Node.contains p key) then begin
    (* Capture everything the side chase will act on (the root's level
       can change in place) BEFORE the validation that proves the reads
       were not torn. *)
    let sib = Page.side_ptr p in
    let level = Page.level p in
    olc_validate fr v;
    if sib = Page.nil then raise Olc.Restart;
    `Next (v, sib, `Side level)
  end
  else if Page.level p = 0 then begin
    (* Prove this really is the leaf directly containing [key] before the
       caller reads records out of it. *)
    olc_validate fr v;
    `Leaf v
  end
  else
    match Node.floor_entry p key with
    | None -> raise Olc.Restart (* torn read: index nodes have a least sep *)
    | Some i ->
        let _, child = Node.index_term p i in
        olc_validate fr v;
        `Next (v, child, `Child)

(* Descend from the pinned [fr] to the leaf directly containing [key].
   Returns the leaf pinned (never latched) with a validated snapshot of
   its version word. Owns [fr]'s pin: every exit path, including every
   raise, drops every pin this descent still holds. *)
let rec olc_step t ~key fr =
  match olc_eval ~key fr with
  | exception e ->
      unpin t fr;
      raise e
  | `Leaf v -> (fr, v)
  | `Next (v, next, kind) -> (
      let nfr =
        match pin t next with
        | nfr -> nfr
        | exception e ->
            unpin t fr;
            raise e
      in
      (* CP de-allocation defence (see the section comment): re-validate
         the parent now that the child is pinned. *)
      match olc_validate fr v with
      | exception e ->
          unpin t nfr;
          unpin t fr;
          raise e
      | () ->
          (match kind with
          | `Side level ->
              bump t.c.c_side_traversals;
              (* Only validated side chases reach here, so the posting
                 queue never sees a pid (or level) from a torn read. *)
              maybe_schedule_posting t ~level
                ~container:(Page.id (page fr))
                ~sibling:next ~path:Saved_path.empty ~key
          | `Child -> ());
          unpin t fr;
          olc_step t ~key nfr)

(* Counted restarts + latched fallback, on the shared Olc loop. *)
let olc_protected t ~attempt ~fallback =
  Olc.protect ~restarts:t.c.c_olc_restarts ~fallbacks:t.c.c_olc_fallbacks
    ~attempt ~fallback ()

(* ---------- node split (section 3.2.1) ---------- *)

(* Split the node in [fr] (X-latched, pinned) under [txn]. Returns
   (separator, sibling frame) with the sibling pinned but not latched —
   nothing else can reach it until the caller releases [fr]'s X latch.
   Steps 1-5 of section 3.2.1; step 6 (posting) is the caller's business
   because its timing depends on the transactional context. *)
(* Pick the split position and separator. Normally the byte-balanced
   midpoint; a single-entry node (possible with near-page-size records)
   splits around the pending key so that the retried insert finds room. *)
let choose_split p ~pending =
  let n = Node.entry_count p in
  if n >= 2 then begin
    let s = Node.split_point p in
    (s, fst (Node.entry p s))
  end
  else begin
    assert (n = 1);
    let k0, _ = Node.entry p 0 in
    match pending with
    | Some k when String.compare k k0 > 0 -> (1, k)
    | _ -> (0, k0)
  end

let split_node t txn fr ~pending =
  let p = page fr in
  let n = Node.entry_count p in
  let s, sep = choose_split p ~pending in
  let f = Node.fence p in
  let qfr =
    Env.alloc_page t.env txn ~kind:(Page.kind p) ~level:(Page.level p)
  in
  let q = page qfr in
  (* New sibling: delegated [sep, old high); responsible through the old
     sibling chain, so it inherits fence.high/resp_high and the side
     pointer (section 3.2.1 step 3: "include any sibling terms to subspaces
     for which the new node is now responsible"). *)
  update t txn qfr
    (Page_op.Insert_slot
       {
         slot = 0;
         cell =
           Node.fence_cell
             { Node.low = Some sep; high = f.Node.high; resp_high = f.Node.resp_high };
       });
  for i = s to n - 1 do
    let cell = Page.get p (Node.slot_of_entry i) in
    update t txn qfr
      (Page_op.Insert_slot { slot = Node.slot_of_entry (i - s); cell })
  done;
  if Page.side_ptr p <> Page.nil then
    update t txn qfr
      (Page_op.Set_side_ptr { old_ptr = Page.nil; new_ptr = Page.side_ptr p });
  (* Original node: keep [low, sep), delegate the rest to the sibling. *)
  for i = n - 1 downto s do
    let cell = Page.get p (Node.slot_of_entry i) in
    update t txn fr (Page_op.Delete_slot { slot = Node.slot_of_entry i; cell })
  done;
  (* Injected bug 1: drop the X latch after moving the upper records out
     but before shrinking the fence — a reader slipping into the window
     sees the node still claiming [low, old high) with those records
     gone, and wrongly reports their keys absent. *)
  if !injected_bug = Early_unlatch_split then begin
    unlatch fr Latch.X;
    Pitree_util.Sched_hook.yield Point "blink.bug.window";
    latch fr Latch.X
  end;
  update t txn fr
    (Page_op.Replace_slot
       {
         slot = 0;
         old_cell = Node.fence_cell f;
         new_cell =
           Node.fence_cell
             { Node.low = f.Node.low; high = Some sep; resp_high = f.Node.resp_high };
       });
  update t txn fr
    (Page_op.Set_side_ptr { old_ptr = Page.side_ptr p; new_ptr = Page.id q });
  if Page.level p = 0 then bump t.c.c_leaf_splits else bump t.c.c_index_splits;
  Crash_point.hit "blink.split.linked";
  (sep, qfr)

(* Root growth (section 5.3 Space Test, root case). [fr] is the root,
   X-latched and full. The root's contents move to fresh nodes one level
   down; the root itself becomes an index node one level up and never
   moves. Returns the two children (pinned, unlatched): (left, sep, right). *)
let grow_root t txn fr ~pending =
  let sep, qfr = split_node t txn fr ~pending in
  let p = page fr in
  let n = Node.entry_count p in
  let lfr = Env.alloc_page t.env txn ~kind:(Page.kind p) ~level:(Page.level p) in
  (* Left child takes everything the (post-split) root still holds. *)
  update t txn lfr
    (Page_op.Insert_slot { slot = 0; cell = Page.get p 0 });
  for i = 0 to n - 1 do
    update t txn lfr
      (Page_op.Insert_slot
         { slot = Node.slot_of_entry i; cell = Page.get p (Node.slot_of_entry i) })
  done;
  update t txn lfr
    (Page_op.Set_side_ptr { old_ptr = Page.nil; new_ptr = Page.id (page qfr) });
  (* Strip the root and raise it one level. *)
  let cells = Page.fold p ~init:[] ~f:(fun acc _ c -> c :: acc) in
  update t txn fr (Page_op.Clear { cells = List.rev cells });
  update t txn fr
    (Page_op.Set_side_ptr { old_ptr = Page.side_ptr p; new_ptr = Page.nil });
  update t txn fr
    (Page_op.Reformat
       {
         old_kind = Page.kind p;
         new_kind = Page.Index;
         old_level = Page.level p;
         new_level = Page.level p + 1;
       });
  update t txn fr
    (Page_op.Insert_slot { slot = 0; cell = Node.fence_cell Node.whole_fence });
  update t txn fr
    (Page_op.Insert_slot
       {
         slot = 1;
         cell = Node.index_term_cell ~sep:"" ~child:(Page.id (page lfr));
       });
  update t txn fr
    (Page_op.Insert_slot
       {
         slot = 2;
         cell = Node.index_term_cell ~sep ~child:(Page.id (page qfr));
       });
  bump t.c.c_root_splits;
  Crash_point.hit "blink.root.grown";
  (lfr, sep, qfr)

(* ---------- the index-term posting action (section 5.3) ---------- *)

(* Step 1 (Search): reach the node at [level] whose directly-contained
   space includes [key], U-latched — reusing the saved path when state
   identifiers allow (section 5.2). *)
let search_for_posting t ~key ~level ~path =
  let consolidation = (cfg t).Env.consolidation in
  (* Candidate re-entry points, nearest level first. *)
  let candidates =
    List.filter (fun e -> e.Saved_path.level >= level) path
    |> List.sort (fun a b -> compare a.Saved_path.level b.Saved_path.level)
  in
  let from_root () =
    bump t.c.c_full_retraversals;
    let _, fr = descend t ~key ~target:level ~mode:Latch.U in
    fr
  in
  let rec try_candidates = function
    | [] -> from_root ()
    | e :: rest -> (
        match pin t e.Saved_path.pid with
        | exception Not_found -> try_candidates rest
        | fr
          when consolidation
               && (let w = Version.peek (Latch.version fr.Buffer_pool.latch) in
                   (not (Version.is_locked w)) && not (Saved_path.matches e ~version:w))
          ->
            (* Latch-free rejection: an even version word that disagrees
               with the remembered state identifier proves the node has
               changed — no point latching it just to discover that. (An
               odd word proves nothing either way; fall through to the
               latched check.) *)
            unpin t fr;
            try_candidates rest
        | fr ->
            let m = if e.Saved_path.level = level then Latch.U else Latch.S in
            latch fr m;
            let p = page fr in
            let usable =
              if consolidation then
                (* CP + "de-allocation is a node update": an unchanged state
                   identifier proves the node is still the one we saw
                   (section 5.2.2 strategy (b)). *)
                Page.lsn p = e.Saved_path.state_id
              else
                (* CNS: nodes are immortal; any index node at the right
                   level can be re-searched. *)
                Page.kind p = Page.Index && Page.level p = e.Saved_path.level
            in
            if not usable then begin
              unlatch fr m;
              unpin t fr;
              try_candidates rest
            end
            else begin
              bump t.c.c_path_reuse_hits;
              if e.Saved_path.level = level then
                side_step t ~key ~m:Latch.U ~path:Saved_path.empty fr
              else
                let _, fr =
                  descend_from t ~key ~target:level ~mode:Latch.U fr
                    Saved_path.empty
                in
                fr
            end)
  in
  try_candidates candidates

(* Space Test (section 5.3 step 3): make room in the X-latched [fr] for
   [need] bytes at [poskey], splitting (or growing the root) as necessary.
   Returns the X-latched frame whose space contains [poskey]. Splits
   performed here schedule their own postings through [on_split]. *)
let rec ensure_space t txn fr ~poskey ~need ~on_split =
  let p = page fr in
  if Page.will_fit p (need + Page.slot_overhead) then fr
  else if Page.id p = t.root then begin
    let rank0 = rank p in
    let lfr, sep, qfr = grow_root t txn fr ~pending:(Some poskey) in
    (* Descend one level to whichever new node owns [poskey]. *)
    let target, other =
      if String.compare poskey sep < 0 then (lfr, qfr) else (qfr, lfr)
    in
    latch target Latch.X;
    unpin t other;
    unlatch_at rank0 fr Latch.X;
    unpin t fr;
    ensure_space t txn target ~poskey ~need ~on_split
  end
  else begin
    let sep, qfr = split_node t txn fr ~pending:(Some poskey) in
    on_split ~node:fr ~sep ~sibling:(Page.id (page qfr));
    if String.compare poskey sep < 0 then begin
      unpin t qfr;
      ensure_space t txn fr ~poskey ~need ~on_split
    end
    else begin
      latch qfr Latch.X;
      unlatch fr Latch.X;
      unpin t fr;
      ensure_space t txn qfr ~poskey ~need ~on_split
    end
  end

(* The complete posting action. *)
let do_post_action t ~level ~path ~address ~key =
  let finished = ref false in
  let deferred = ref [] in
  Atomic_action.run (mgr t) (fun txn ->
      (* 1. Search. *)
      let fr = search_for_posting t ~key ~level ~path in
      let release_u () =
        unlatch fr Latch.U;
        unpin t fr
      in
      (* 2. Verify Split: the tree state is testable; posting may already
         be done or no longer needed (section 5.1). *)
      if Node.find_child_term (page fr) address <> None then begin
        release_u ();
        bump t.c.c_postings_noop
      end
      else begin
        match Node.floor_entry (page fr) key with
        | None ->
            release_u ();
            bump t.c.c_postings_noop
        | Some i ->
            let _, child = Node.index_term (page fr) i in
            let cfr = pin t child in
            latch cfr Latch.S;
            let cp = page cfr in
            if Node.contains cp key then begin
              (* The child directly contains the key: the split we were
                 told about has been consolidated away. *)
              unlatch cfr Latch.S;
              unpin t cfr;
              release_u ();
              bump t.c.c_postings_noop
            end
            else begin
              (* The child delegates the key's space to its sibling: that
                 sibling is the node whose term we post (it may differ from
                 ADDRESS if splits raced us). *)
              let sib = Page.side_ptr cp in
              let sep =
                match (Node.fence cp).Node.high with
                | Some h -> h
                | None -> assert false (* cannot delegate without a bound *)
              in
              unlatch cfr Latch.S;
              unpin t cfr;
              if Node.find_child_term (page fr) sib <> None then begin
                release_u ();
                bump t.c.c_postings_noop
              end
              else begin
                promote fr;
                Crash_point.hit "blink.post.latched";
                (* Injected bug 2: post a separator one byte short, so the
                   index term claims space the child is not responsible
                   for (well-formedness condition 3). *)
                let sep =
                  if !injected_bug = Bad_post_sep && String.length sep > 1
                  then String.sub sep 0 (String.length sep - 1)
                  else sep
                in
                (* 3. Space Test. *)
                let cell = Node.index_term_cell ~sep ~child:sib in
                let this_level = Page.level (page fr) in
                let on_split ~node ~sep ~sibling =
                  deferred :=
                    `Post (this_level, Page.id (page node), sep, sibling)
                    :: !deferred
                in
                let fr =
                  ensure_space t txn fr ~poskey:sep
                    ~need:(String.length cell) ~on_split
                in
                (* 4. Update NODE. *)
                let slot =
                  match Node.find (page fr) sep with
                  | `Found _ ->
                      (* A term with this separator exists but points
                         elsewhere; posting is not needed after all. *)
                      None
                  | `Not_found i -> Some (Node.slot_of_entry i)
                in
                (match slot with
                | Some slot ->
                    update t txn fr (Page_op.Insert_slot { slot; cell });
                    finished := true
                | None -> bump t.c.c_postings_noop);
                Crash_point.hit "blink.post.updated";
                unlatch fr Latch.X;
                unpin t fr
              end
            end
      end);
  if !finished then bump t.c.c_postings_completed;
  (* Postings for index-node splits performed by the space test are
     scheduled only now, after the action committed (section 3.2.1 step 6). *)
  List.iter
    (fun (`Post (lvl, container, sep, sibling)) ->
      (* The saved path above [lvl] is still a fine starting hint. *)
      maybe_schedule_posting t ~level:lvl ~container ~sibling
        ~path:(Saved_path.above path lvl) ~key:sep)
    !deferred;
  Crash_point.hit "blink.post.done"

(* Tie the forward knot. *)
let () =
  post_action :=
    fun t ~level ~path ~address ~key -> do_post_action t ~level ~path ~address ~key

(* ---------- leaf split orchestration (section 4.2) ---------- *)

(* Runs one split attempt for the leaf containing [key] as an independent
   atomic action. Returns [true] if it split (or found the split already
   done). Raises [Busy] never — converts it into a blocking wait + retry
   by the caller. *)
let split_leaf_independent t ~key ~need =
  let page_undo = (cfg t).Env.page_oriented_undo in
  let run_action () =
    Atomic_action.run (mgr t) (fun txn ->
        (* Acquire the move-lock protection with the no-wait rule: try
           while latched; on failure release the latch, block-acquire the
           conflicting lock under this same action transaction (so it
           cannot be snatched away), and re-descend. Two realizations per
           section 4.2.2: a node-granule Move lock, or per-record U locks
           on exactly the records to be moved. *)
        let rec attempt tries =
          if tries > 200 then failwith "blink: split cannot acquire move locks";
          let path, fr = descend t ~key ~target:0 ~mode:Latch.U in
          let p = page fr in
          if
            Node.entry_count p < 1
            || Page.will_fit p (need + Page.slot_overhead)
            (* Someone else already made room: re-tested, nothing to do
               (section 5.1). *)
          then begin
            unlatch fr Latch.U;
            unpin t fr;
            `Done
          end
          else begin
            let blocked =
              if not page_undo then None
              else
                match t.move_granularity with
                | `Node ->
                    let res = Lock_manager.Node { tree = t.root; page = Page.id p } in
                    if
                      Lock_manager.try_acquire (locks t) ~owner:txn.Txn.id res
                        Lock_mode.Move
                    then None
                    else Some (res, Lock_mode.Move)
                | `Record ->
                    let s, _ = choose_split p ~pending:(Some key) in
                    let n = Node.entry_count p in
                    let rec lock_from i =
                      if i >= n then None
                      else
                        let k, _ = Node.entry p i in
                        let res = Lock_manager.Record { tree = t.root; key = k } in
                        if
                          Lock_manager.try_acquire (locks t) ~owner:txn.Txn.id res
                            Lock_mode.U
                        then lock_from (i + 1)
                        else Some (res, Lock_mode.U)
                    in
                    lock_from s
            in
            match blocked with
            | Some (res, mode) ->
                bump t.c.c_lock_restarts;
                unlatch fr Latch.U;
                unpin t fr;
                (* Latch-free blocking wait, keeping the lock for the next
                   attempt (the paper's re-examination loop: re-descending
                   recomputes which records need moving). *)
                Lock_manager.acquire (locks t) ~owner:txn.Txn.id res mode;
                attempt (tries + 1)
            | None ->
                promote fr;
                if Page.id p = t.root then begin
                  let rank0 = rank p in
                  let lfr, _, qfr = grow_root t txn fr ~pending:(Some key) in
                  unpin t lfr;
                  unpin t qfr;
                  unlatch_at rank0 fr Latch.X;
                  unpin t fr;
                  `Done
                end
                else begin
                  let sep, qfr = split_node t txn fr ~pending:(Some key) in
                  let sibling = Page.id (page qfr) in
                  unpin t qfr;
                  unlatch fr Latch.X;
                  unpin t fr;
                  `Split (path, Page.id p, sep, sibling)
                end
          end
        in
        attempt 0)
  in
  let rec go tries =
    let result =
      match run_action () with
      | r -> r
      | exception Lock_manager.Deadlock _ ->
          (* The action was chosen as deadlock victim and aborted (its
             locks are gone); retry from scratch. *)
          bump t.c.c_lock_restarts;
          if tries > 100 then failwith "blink: split deadlock livelock";
          `Retry
    in
    match result with
    | `Done -> ()
    | `Retry -> go (tries + 1)
    | `Split (path, pid, sep, sibling) ->
        Crash_point.hit "blink.split.committed";
        (* Step 6: schedule the posting in a separate atomic action. *)
        maybe_schedule_posting t ~level:0 ~container:pid ~sibling ~path ~key:sep
  in
  go 0

(* Split inside the user transaction (page-oriented undo, and the
   transaction already updated records in this node - section 4.2.1/4.2.2).
   The caller holds no latches. The move lock is the transaction's
   node-level lock converted upward; it stays until commit/abort. The index
   term is posted only if/after the transaction commits. *)
let split_leaf_in_txn t txn ~key ~need =
  let rec go tries =
    if tries > 100 then failwith "blink: move lock starvation (in txn)";
    let path, fr = descend t ~key ~target:0 ~mode:Latch.U in
    let p = page fr in
    if Node.entry_count p < 1 || Page.will_fit p (need + Page.slot_overhead)
    then begin
      unlatch fr Latch.U;
      unpin t fr
    end
    else begin
      let res = Lock_manager.Node { tree = t.root; page = Page.id p } in
      if not (Lock_manager.try_acquire (locks t) ~owner:txn.Txn.id res Lock_mode.Move)
      then begin
        unlatch fr Latch.U;
        unpin t fr;
        bump t.c.c_lock_restarts;
        Lock_manager.acquire (locks t) ~owner:txn.Txn.id res Lock_mode.Move;
        go (tries + 1)
      end
      else begin
        promote fr;
        if Page.id p = t.root then begin
          let rank0 = rank p in
          let lfr, _, qfr = grow_root t txn fr ~pending:(Some key) in
          unpin t lfr;
          unpin t qfr;
          unlatch_at rank0 fr Latch.X;
          unpin t fr
        end
        else begin
          let sep, qfr = split_node t txn fr ~pending:(Some key) in
          let pid = Page.id p in
          let sibling = Page.id (page qfr) in
          unpin t qfr;
          unlatch fr Latch.X;
          unpin t fr;
          (* Defer the posting to commit; abort undoes the split and no
             term must ever be posted (section 4.2.2). *)
          Txn.add_on_commit txn (fun () ->
              maybe_schedule_posting t ~level:0 ~container:pid ~sibling ~path
                ~key:sep)
        end
      end
    end
  in
  go 0

(* ---------- record-level operations ---------- *)

let record_res t key = Lock_manager.Record { tree = t.root; key }
let node_res t pid = Lock_manager.Node { tree = t.root; page = pid }

(* Acquire the update-time locks (X record; IX node when move locks are in
   play) under the no-wait rule: latches are held, so only try_acquire is
   allowed; on failure the caller backs off. *)
let try_update_locks t txn ~pid ~key =
  let lk = locks t in
  let need_node = (cfg t).Env.page_oriented_undo in
  let ok_node =
    (not need_node)
    || Lock_manager.try_acquire lk ~owner:txn.Txn.id (node_res t pid) Lock_mode.IX
  in
  ok_node
  && Lock_manager.try_acquire lk ~owner:txn.Txn.id (record_res t key) Lock_mode.X

let blocking_update_locks t txn ~pid ~key =
  let lk = locks t in
  if (cfg t).Env.page_oriented_undo then
    Lock_manager.acquire lk ~owner:txn.Txn.id (node_res t pid) Lock_mode.IX;
  Lock_manager.acquire lk ~owner:txn.Txn.id (record_res t key) Lock_mode.X

(* Release speculative locks taken for an update that could not proceed
   (the transaction has not touched the node under them). *)
let release_speculative t txn ~pid ~key =
  let lk = locks t in
  if not (List.mem (t.root, pid) txn.Txn.updated_nodes) then begin
    Lock_manager.release lk ~owner:txn.Txn.id (record_res t key);
    if (cfg t).Env.page_oriented_undo then
      Lock_manager.release lk ~owner:txn.Txn.id (node_res t pid)
  end

let with_autocommit t txn f =
  match txn with
  | Some txn -> f txn
  | None ->
      let txn = Txn_mgr.begin_txn (mgr t) Txn.User in
      (match f txn with
      | v ->
          Txn_mgr.commit (mgr t) txn;
          ignore (Env.drain t.env);
          v
      | exception (Crash_point.Crash_requested _ as e) -> raise e
      | exception e ->
          if Txn.is_active txn then Txn_mgr.abort (mgr t) txn;
          raise e)

(* An autocommit operation picked as deadlock victim (its transaction is
   aborted, its locks are gone) retries transparently: the client never
   held a transaction to re-run. Explicit transactions surface the
   exception — only the client knows what else the transaction did. *)
let rec autocommit_deadlock_retry ?txn t ~tries op =
  match op () with
  | v -> v
  | exception Lock_manager.Deadlock _ when txn = None ->
      bump t.c.c_lock_restarts;
      if tries > 100 then failwith "blink: autocommit deadlock livelock";
      autocommit_deadlock_retry ?txn t ~tries:(tries + 1) op

let rec insert_direct ?txn t ~key ~value =
  autocommit_deadlock_retry ?txn t ~tries:0 (fun () ->
      insert_direct_once ?txn t ~key ~value)

and insert_direct_once ?txn t ~key ~value =
  let cell = Node.record_cell ~key ~value in
  with_autocommit t txn (fun txn ->
      let rec attempt tries =
        if tries > 200 then failwith "blink.insert: too many restarts";
        let _, fr = descend t ~key ~target:0 ~mode:Latch.U in
        let p = page fr in
        let pid = Page.id p in
        if not (try_update_locks t txn ~pid ~key) then begin
          unlatch fr Latch.U;
          unpin t fr;
          bump t.c.c_lock_restarts;
          (* No-wait rule: wait for the locks without holding latches, then
             revalidate by re-descending. *)
          blocking_update_locks t txn ~pid ~key;
          attempt (tries + 1)
        end
        else begin
          match Node.find p key with
          | `Found i ->
              let old_cell = Page.get p (Node.slot_of_entry i) in
              if
                Page.will_fit p (String.length cell)
                || String.length cell <= String.length old_cell
              then begin
                promote fr;
                update_record t txn fr
                  (Page_op.Replace_slot
                     { slot = Node.slot_of_entry i; old_cell; new_cell = cell })
                  ~comp:(Logical.Put { cell = old_cell });
                txn.Txn.updated_nodes <- (t.root, pid) :: txn.Txn.updated_nodes;
                unlatch fr Latch.X;
                unpin t fr
              end
              else begin
                unlatch fr Latch.U;
                unpin t fr;
                split_for t txn ~pid ~key ~need:(String.length cell);
                attempt (tries + 1)
              end
          | `Not_found i ->
              if Page.will_fit p (String.length cell + Page.slot_overhead) then begin
                promote fr;
                update_record t txn fr
                  (Page_op.Insert_slot { slot = Node.slot_of_entry i; cell })
                  ~comp:(Logical.Remove { key });
                txn.Txn.updated_nodes <- (t.root, pid) :: txn.Txn.updated_nodes;
                unlatch fr Latch.X;
                unpin t fr
              end
              else begin
                unlatch fr Latch.U;
                unpin t fr;
                split_for t txn ~pid ~key ~need:(String.length cell);
                attempt (tries + 1)
              end
        end
      in
      attempt 0)

(* Decide the split regime (section 4.2.1) and run it. The caller holds no
   latches. *)
and split_for t txn ~pid ~key ~need =
  let page_undo = (cfg t).Env.page_oriented_undo in
  if page_undo && List.mem (t.root, pid) txn.Txn.updated_nodes then
    split_leaf_in_txn t txn ~key ~need
  else begin
    release_speculative t txn ~pid ~key;
    split_leaf_independent t ~key ~need
  end

(* ---------- hot-key write combining (ROADMAP item 3) ----------

   The combining leader applies a whole batch of puts with ONE descent,
   ONE X latch and ONE commit: a §2.1.3 well-formed atomic action (all
   latches acquired inside, all released before it ends, every update
   logged physiologically under one transaction), so crash recovery
   already knows how to undo a half-applied batch. Per-key obstacles —
   key outside the reached leaf, record lock busy, cell does not fit —
   hand that request back to the caller's normal single-op path; the
   no-wait rule is preserved because the leader NEVER blocks on a lock
   while latched (it does not block on locks at all).

   The batch transaction holds the X record locks of every applied key
   until its commit, which precedes the followers' wake-up, so a handed
   back follower re-running [insert_direct] never deadlocks against its
   own batch. *)

let apply_batch t (reqs : (string * string) array) =
  let n = Array.length reqs in
  let results = Array.make n Handback in
  let txn = Txn_mgr.begin_txn (mgr t) Txn.User in
  let applied = ref 0 in
  match
    let key0, _ = reqs.(0) in
    let _, fr = descend t ~key:key0 ~target:0 ~mode:Latch.U in
    let p = page fr in
    let pid = Page.id p in
    let f = Node.fence p in
    (* [Node.contains] checks only the upper bound (descents approach from
       the left); batch members other than [key0] need both. *)
    let in_leaf key =
      (match f.Node.low with None -> true | Some l -> String.compare key l >= 0)
      && match f.Node.high with None -> true | Some h -> String.compare key h < 0
    in
    let locked = Hashtbl.create (min n 16) in
    let promoted = ref false in
    Array.iteri
      (fun i (key, value) ->
        let cell = Node.record_cell ~key ~value in
        let lock_ok () =
          Hashtbl.mem locked key
          ||
          if try_update_locks t txn ~pid ~key then begin
            Hashtbl.replace locked key ();
            true
          end
          else false
        in
        if in_leaf key && lock_ok () then begin
          let ensure_x () =
            if not !promoted then begin
              promote fr;
              promoted := true
            end
          in
          match Node.find p key with
          | `Found j ->
              let old_cell = Page.get p (Node.slot_of_entry j) in
              if
                Page.will_fit p (String.length cell)
                || String.length cell <= String.length old_cell
              then begin
                ensure_x ();
                update_record t txn fr
                  (Page_op.Replace_slot
                     { slot = Node.slot_of_entry j; old_cell; new_cell = cell })
                  ~comp:(Logical.Put { cell = old_cell });
                if not (List.mem (t.root, pid) txn.Txn.updated_nodes) then
                  txn.Txn.updated_nodes <- (t.root, pid) :: txn.Txn.updated_nodes;
                results.(i) <- Applied;
                incr applied
              end
          | `Not_found j ->
              if Page.will_fit p (String.length cell + Page.slot_overhead) then begin
                ensure_x ();
                update_record t txn fr
                  (Page_op.Insert_slot { slot = Node.slot_of_entry j; cell })
                  ~comp:(Logical.Remove { key });
                if not (List.mem (t.root, pid) txn.Txn.updated_nodes) then
                  txn.Txn.updated_nodes <- (t.root, pid) :: txn.Txn.updated_nodes;
                results.(i) <- Applied;
                incr applied
              end
        end)
      reqs;
    unlatch fr (if !promoted then Latch.X else Latch.U);
    unpin t fr
  with
  | () ->
      (* Between the leaf updates and the commit: a crash here must roll
         the whole batch back (no follower has been acked yet). *)
      Crash_point.hit Combine.crash_point_applied;
      Txn_mgr.commit ~commits:(max 1 !applied) (mgr t) txn;
      ignore (Env.drain t.env);
      results
  | exception (Crash_point.Crash_requested _ as e) -> raise e
  | exception e ->
      if Txn.is_active txn then Txn_mgr.abort (mgr t) txn;
      raise e

let () =
  attach_combiner_fwd :=
    fun t ->
      let c = cfg t in
      if c.Env.combine then
        t.combiner <-
          Some
            (Combine.create ~slots:c.Env.combine_slots
               ~window_us:c.Env.combine_window_us ~early_res:Applied
               ~apply:(fun reqs -> apply_batch t reqs)
               ())

let insert ?txn t ~key ~value =
  bump t.c.c_inserts;
  match (txn, t.combiner) with
  | None, Some combiner ->
      (match Combine.submit combiner ~hash:(Hashtbl.hash key) (key, value) with
      | Applied -> ()
      | Handback ->
          Combine.note_handback ();
          insert_direct t ~key ~value)
  | _ -> insert_direct ?txn t ~key ~value

let consolidate_action : (t -> key:string -> level:int -> unit) ref =
  ref (fun _ ~key:_ ~level:_ -> assert false)

let maybe_schedule_consolidation t ~key ~pid ~level =
  if (cfg t).Env.consolidation && pid <> t.root then begin
    Mutex.lock t.pending_mu;
    let fresh = not (Hashtbl.mem t.pending_consol pid) in
    if fresh then Hashtbl.replace t.pending_consol pid ();
    Mutex.unlock t.pending_mu;
    if fresh then
      Env.schedule t.env (fun () ->
          Mutex.lock t.pending_mu;
          Hashtbl.remove t.pending_consol pid;
          Mutex.unlock t.pending_mu;
          !consolidate_action t ~key ~level)
  end

let underutilized p = Node.utilization p < 0.25

let delete ?txn t key =
  bump t.c.c_deletes;
  autocommit_deadlock_retry ?txn t ~tries:0 @@ fun () ->
  with_autocommit t txn (fun txn ->
      let rec attempt tries =
        if tries > 200 then failwith "blink.delete: too many restarts";
        let _, fr = descend t ~key ~target:0 ~mode:Latch.U in
        let p = page fr in
        let pid = Page.id p in
        match Node.find p key with
        | `Not_found _ ->
            unlatch fr Latch.U;
            unpin t fr;
            false
        | `Found i ->
            if not (try_update_locks t txn ~pid ~key) then begin
              unlatch fr Latch.U;
              unpin t fr;
              bump t.c.c_lock_restarts;
              blocking_update_locks t txn ~pid ~key;
              attempt (tries + 1)
            end
            else begin
              promote fr;
              let cell = Page.get p (Node.slot_of_entry i) in
              update_record t txn fr
                (Page_op.Delete_slot { slot = Node.slot_of_entry i; cell })
                ~comp:(Logical.Put { cell });
              txn.Txn.updated_nodes <- (t.root, pid) :: txn.Txn.updated_nodes;
              let low = underutilized p in
              unlatch fr Latch.X;
              unpin t fr;
              if low then maybe_schedule_consolidation t ~key ~pid ~level:0;
              true
            end
      in
      attempt 0)

(* The classic S-latched search — still the fallback when optimistic
   descents keep failing, and the whole path when [olc_reads] is off. *)
let find_latched t key =
  let _, fr = descend t ~key ~target:0 ~mode:Latch.S in
  let p = page fr in
  let r =
    match Node.find p key with
    | `Found i -> Some (snd (Node.record p i))
    | `Not_found _ -> None
  in
  unlatch fr Latch.S;
  unpin t fr;
  r

let find_olc t key =
  let fr, v = olc_step t ~key (pin_root t) in
  match
    let p = page fr in
    let r =
      Olc.decoding fr v (fun () ->
          match Node.find p key with
          | `Found i -> Some (snd (Node.record p i))
          | `Not_found _ -> None)
    in
    (* The record bytes were copied out above; prove they were not torn
       before anyone sees them. *)
    olc_validate fr v;
    r
  with
  | r ->
      unpin t fr;
      r
  | exception e ->
      unpin t fr;
      raise e

(* Locked read: the record's S lock is taken under the no-wait rule (only
   try_acquire while latched; on failure wait latch-free, then revalidate
   by re-descending) and held to the transaction's commit — repeatable
   reads for explicit transactions. *)
let find_in_txn ~txn t key =
  let rec attempt tries =
    if tries > 200 then failwith "blink.find: too many restarts";
    let _, fr = descend t ~key ~target:0 ~mode:Latch.S in
    if
      Lock_manager.try_acquire (locks t) ~owner:txn.Txn.id (record_res t key)
        Lock_mode.S
    then begin
      let p = page fr in
      let r =
        match Node.find p key with
        | `Found i -> Some (snd (Node.record p i))
        | `Not_found _ -> None
      in
      unlatch fr Latch.S;
      unpin t fr;
      r
    end
    else begin
      unlatch fr Latch.S;
      unpin t fr;
      bump t.c.c_lock_restarts;
      Lock_manager.acquire (locks t) ~owner:txn.Txn.id (record_res t key)
        Lock_mode.S;
      attempt (tries + 1)
    end
  in
  attempt 0

let find ?txn t key =
  bump t.c.c_searches;
  match txn with
  | Some txn -> find_in_txn ~txn t key
  | None ->
      let r =
        if olc_enabled t then
          olc_protected t
            ~attempt:(fun () -> find_olc t key)
            ~fallback:(fun () -> find_latched t key)
        else find_latched t key
      in
      ignore (Env.drain t.env);
      r

(* Records of [p] in [[start, high)), in key order. *)
let collect_batch ~start ~beyond p =
  Node.(
    let n = entry_count p in
    let rec collect i acc =
      if i >= n then List.rev acc
      else
        let k, v = record p i in
        if String.compare k start < 0 then collect (i + 1) acc
        else if beyond k then List.rev acc
        else collect (i + 1) ((k, v) :: acc)
    in
    collect 0 [])

let range_latched t ~start ~high ~init ~f =
  let beyond k = match high with None -> false | Some h -> String.compare k h >= 0 in
  let _, fr = descend t ~key:start ~target:0 ~mode:Latch.S in
  let rec walk fr acc =
    let p = page fr in
    (* Copy the in-range records out, then release before calling [f]. *)
    let batch = collect_batch ~start ~beyond p in
    let fence_high = (Node.fence p).Node.high in
    let sib = Page.side_ptr p in
    let continue_ =
      match fence_high with
      | None -> false
      | Some h -> (not (beyond h)) && sib <> Page.nil
    in
    let next =
      if continue_ then begin
        let sfr = pin t sib in
        if (cfg t).Env.consolidation then begin
          latch sfr Latch.S;
          unlatch fr Latch.S;
          unpin t fr
        end
        else begin
          unlatch fr Latch.S;
          unpin t fr;
          latch sfr Latch.S
        end;
        Some sfr
      end
      else begin
        unlatch fr Latch.S;
        unpin t fr;
        None
      end
    in
    let acc = List.fold_left (fun acc (k, v) -> f acc k v) acc batch in
    match next with None -> acc | Some sfr -> walk sfr acc
  in
  walk fr init

(* Latch-free scan. Per-leaf validation is not enough here: a scan that
   commits leaf batches one at a time can miss a put into a leaf it has
   passed while observing a later put into a leaf still ahead, an
   inversion no single linearization point explains (the latched scan's
   latch coupling forbids it for adjacent leaves, which is why it never
   shows there). So the whole range is read as ONE optimistic unit:
   every visited leaf stays pinned (pins block both eviction and frame
   reuse, keeping each version word bound to its page) with the snapshot
   its batch was read under, and after the last leaf the entire chain is
   re-proved in one pass. Success means no visited leaf changed between
   its read and that pass — every batch was simultaneously current at
   the final validation, making the scan a point-in-time read. Any
   failed proof restarts the scan from [start]; a chain too long for the
   pool raises [Pool_exhausted] (dropping all pins) and, like every
   other transient, falls back to the latched protocol after the retry
   budget. *)
let range_olc t ~start ~high ~init ~f =
  let beyond k = match high with None -> false | Some h -> String.compare k h >= 0 in
  let attempt () =
    (* Visited leaves, pinned, newest first, each with the version its
       batch must still match at the end. A frame enters the chain the
       moment this attempt owns its pin, so the [exception] arm below
       can always release everything. *)
    let chain = ref [] in
    let unpin_chain () = List.iter (fun (fr, _) -> unpin t fr) !chain in
    let snapshot_into_chain fr =
      chain := (fr, 0) :: !chain;
      let v = olc_snapshot fr in
      chain := (fr, v) :: List.tl !chain;
      v
    in
    match
      let fr0, _ = olc_step t ~key:start (pin_root t) in
      let rec leaves fr pos batches =
        let v = snapshot_into_chain fr in
        let p = page fr in
        (* The descent (or the previous leaf's side pointer) proved [fr]
           was the right leaf THEN; re-prove it under this snapshot — in
           the window in between the root can grow (leaf becomes index,
           in place) or a split can shrink the fence past [pos]. The
           final chain pass would catch a stale read anyway; failing
           here is just cheaper than scanning garbage. *)
        Olc.live p;
        (* Decode region for THIS leaf only (the recursion happens outside
           it so a deeper failure is judged against its own frame). *)
        let batches, next =
          Olc.decoding fr v (fun () ->
              if Page.level p <> 0 || not (Node.contains p pos) then
                raise Olc.Restart;
              let batches = collect_batch ~start:pos ~beyond p :: batches in
              match (Node.fence p).Node.high with
              | None -> (batches, None)
              | Some h when beyond h || Page.side_ptr p = Page.nil ->
                  (batches, None)
              | Some h -> (batches, Some (Page.side_ptr p, h)))
        in
        match next with
        | None -> batches
        | Some (sib, h) ->
            bump t.c.c_side_traversals;
            leaves (pin t sib) h batches
      in
      let batches = leaves fr0 start [] in
      List.iter (fun (fr, v) -> olc_validate fr v) !chain;
      batches
    with
    | exception e ->
        unpin_chain ();
        raise e
    | batches ->
        unpin_chain ();
        List.fold_left
          (fun acc batch ->
            List.fold_left (fun acc (k, v) -> f acc k v) acc batch)
          init (List.rev batches)
  in
  olc_protected t ~attempt
    ~fallback:(fun () -> range_latched t ~start ~high ~init ~f)

let range t ?low ?high ~init ~f =
  let start = Option.value low ~default:"" in
  if olc_enabled t then range_olc t ~start ~high ~init ~f
  else range_latched t ~start ~high ~init ~f

let count t = range t ?low:None ?high:None ~init:0 ~f:(fun n _ _ -> n + 1)

(* ---------- consolidation (section 3.3) ---------- *)

let do_consolidate t ~key ~level =
  let lk = locks t in
  let page_undo = (cfg t).Env.page_oriented_undo in
  let skipped () = bump t.c.c_consolidations_skipped in
  Atomic_action.run (mgr t) (fun txn ->
        (* Find the parent whose space contains [key]; the candidate
           contained node C is the child the key routes to. *)
        let _, pfr = descend t ~key ~target:(level + 1) ~mode:Latch.U in
        let pp = page pfr in
        let give_up () =
          unlatch pfr Latch.U;
          unpin t pfr;
          skipped ()
        in
        match Node.floor_entry pp key with
        | None -> give_up ()
        | Some 0 ->
            (* C is the parent's leftmost child: its containing node is
               referenced from a different parent; both conditions of
               section 3.3 fail. *)
            give_up ()
        | Some i ->
            let _, c_pid = Node.index_term pp i in
            let _, ln_pid = Node.index_term pp (i - 1) in
            promote pfr;
            let lnfr = pin t ln_pid in
            latch lnfr Latch.X;
            let cfr = pin t c_pid in
            latch cfr Latch.X;
            let c_rank0 = rank (page cfr) in
            let release_all () =
              unlatch_at c_rank0 cfr Latch.X;
              unpin t cfr;
              unlatch lnfr Latch.X;
              unpin t lnfr;
              unlatch pfr Latch.X;
              unpin t pfr
            in
            let lnp = page lnfr and cp = page cfr in
            (* Re-test the tree state (idempotence, section 5.1): LN must
               still be the containing node of C, C still under-utilized,
               and the merge must fit. *)
            let still_linked = Page.side_ptr lnp = c_pid in
            let still_low = underutilized cp || Node.entry_count cp = 0 in
            let c_bytes =
              Node.(
                let rec total i acc =
                  if i >= entry_count cp then acc
                  else
                    total (i + 1)
                      (acc
                      + String.length (Page.get cp (slot_of_entry i))
                      + Page.slot_overhead)
                in
                total 0 0)
            in
            let fits = Page.free_space lnp > c_bytes + 64 in
            if not (still_linked && still_low && fits) then begin
              release_all ();
              skipped ()
            end
            else if
              page_undo
              && not
                   (Lock_manager.try_acquire lk ~owner:txn.Txn.id
                      (node_res t c_pid) Lock_mode.Move
                   && Lock_manager.try_acquire lk ~owner:txn.Txn.id
                        (node_res t ln_pid) Lock_mode.Move)
            then begin
              release_all ();
              bump t.c.c_lock_restarts;
              skipped ()
            end
            else begin
              (* Move C's records into LN (always contained -> containing,
                 section 3.3). *)
              let n_ln = Node.entry_count lnp in
              let n_c = Node.entry_count cp in
              for j = 0 to n_c - 1 do
                let cell = Page.get cp (Node.slot_of_entry j) in
                update t txn lnfr
                  (Page_op.Insert_slot { slot = Node.slot_of_entry (n_ln + j); cell })
              done;
              for j = n_c - 1 downto 0 do
                let cell = Page.get cp (Node.slot_of_entry j) in
                update t txn cfr
                  (Page_op.Delete_slot { slot = Node.slot_of_entry j; cell })
              done;
              Crash_point.hit "blink.merge.moved";
              (* LN takes over C's delegation boundary, responsibility and
                 sibling chain. *)
              let lnf = Node.fence lnp and cf = Node.fence cp in
              update t txn lnfr
                (Page_op.Replace_slot
                   {
                     slot = 0;
                     old_cell = Node.fence_cell lnf;
                     new_cell =
                       Node.fence_cell
                         {
                           Node.low = lnf.Node.low;
                           high = cf.Node.high;
                           resp_high = cf.Node.resp_high;
                         };
                   });
              update t txn lnfr
                (Page_op.Set_side_ptr
                   { old_ptr = c_pid; new_ptr = Page.side_ptr cp });
              (* Injected bug: drop every latch after LN took over C's
                 space but before C's index term leaves the parent — the
                 tree transiently has two nodes directly claiming
                 [c_low, c_high) (LN via its widened fence, C via its
                 unshrunk one), which well-formedness condition 1 (spaces
                 partition) must reject, and a reader routed to the
                 emptied C misses committed keys. *)
              if !injected_bug = Early_unlatch_merge then begin
                unlatch_at c_rank0 cfr Latch.X;
                unlatch lnfr Latch.X;
                unlatch pfr Latch.X;
                Pitree_util.Sched_hook.yield Point "blink.bug.window";
                latch pfr Latch.X;
                latch lnfr Latch.X;
                latch cfr Latch.X
              end;
              (* Delete C's index term from the parent and de-allocate C
                 (a logged node update, section 5.2.2 (b)). *)
              let term_cell = Page.get pp (Node.slot_of_entry i) in
              update t txn pfr
                (Page_op.Delete_slot { slot = Node.slot_of_entry i; cell = term_cell });
              Crash_point.hit "blink.consolidate.linked";
              Env.dealloc_page t.env txn cfr;
              Crash_point.hit "blink.merge.freed";
              bump t.c.c_consolidations;
              release_all ();
              (* The parent may now be under-utilized: consolidation
                 escalates up the tree like splitting does (section 5). *)
              if underutilized pp && Page.id pp <> t.root then
                maybe_schedule_consolidation t ~key ~pid:(Page.id pp)
                  ~level:(level + 1)
            end)

let () = consolidate_action := fun t ~key ~level -> do_consolidate t ~key ~level


(* ---------- logical undo (non-page-oriented UNDO) ---------- *)

(* Registry of live trees by root pid, so the rollback machinery in the
   recovery layer can dispatch logical compensations to us. The Env object
   survives crash/recover in place, so entries registered before a crash
   remain valid during restart recovery. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 8
let registry_mu = Mutex.create ()

(* Apply one compensation through the access method: re-traverse to the
   leaf now holding [key]'s space, apply the inverse record operation there
   and log it as a CLR (redo-only, chained past the undone record). May
   trigger an ordinary independent split if a restored record no longer
   fits. Returns the CLR's LSN, or null if the compensation found nothing
   to do. *)
let logical_undo t ~comp ~txn ~prev ~undo_next =
  let key =
    match comp with
    | Logical.Remove { key } -> key
    | Logical.Put { cell } -> fst (Node.entry_of_cell cell)
  in
  let rec go tries =
    if tries > 100 then failwith "blink: logical undo cannot make progress";
    let _, fr = descend t ~key ~target:0 ~mode:Latch.U in
    let p = page fr in
    let apply_clr op =
      (* Dirty (and log the full-page image) before the CLR is appended:
         the image must precede every record it covers. *)
      Buffer_pool.mark_dirty fr;
      let lsn =
        Log_manager.append (Env.log t.env) ~prev ~txn
          (Log_record.Clr { page = Page.id p; op; undo_next })
      in
      Page_op.redo p op;
      Page.set_lsn p lsn;
      lsn
    in
    let finish_x lsn =
      unlatch fr Latch.X;
      unpin t fr;
      lsn
    in
    match comp with
    | Logical.Remove _ -> (
        match Node.find p key with
        | `Found i ->
            promote fr;
            let cell = Page.get p (Node.slot_of_entry i) in
            finish_x
              (apply_clr (Page_op.Delete_slot { slot = Node.slot_of_entry i; cell }))
        | `Not_found _ ->
            (* Already gone (e.g. a prior crash completed this step). *)
            unlatch fr Latch.U;
            unpin t fr;
            Lsn.null)
    | Logical.Put { cell } -> (
        match Node.find p key with
        | `Found i ->
            let old_cell = Page.get p (Node.slot_of_entry i) in
            if String.equal old_cell cell then begin
              unlatch fr Latch.U;
              unpin t fr;
              Lsn.null
            end
            else if
              String.length cell <= String.length old_cell
              || Page.will_fit p (String.length cell)
            then begin
              promote fr;
              finish_x
                (apply_clr
                   (Page_op.Replace_slot
                      { slot = Node.slot_of_entry i; old_cell; new_cell = cell }))
            end
            else begin
              unlatch fr Latch.U;
              unpin t fr;
              split_leaf_independent t ~key ~need:(String.length cell);
              go (tries + 1)
            end
        | `Not_found i ->
            if Page.will_fit p (String.length cell + Page.slot_overhead) then begin
              promote fr;
              finish_x
                (apply_clr (Page_op.Insert_slot { slot = Node.slot_of_entry i; cell }))
            end
            else begin
              unlatch fr Latch.U;
              unpin t fr;
              split_leaf_independent t ~key ~need:(String.length cell);
              go (tries + 1)
            end)
  in
  go 0

let register_tree t =
  Mutex.lock registry_mu;
  Hashtbl.replace registry t.root t;
  Mutex.unlock registry_mu;
  Logical.register_tree t.root (fun ~tree:_ ~comp ~txn ~prev ~undo_next ->
      logical_undo t ~comp ~txn ~prev ~undo_next)

let () = register_tree_fwd := register_tree

(* ---------- inspection ---------- *)

let height t =
  let fr = pin t t.root in
  let h = Page.level (page fr) + 1 in
  unpin t fr;
  h

module WF = Wellformed.Make (Keyspace.Interval)

let read_view t pid =
  match pin t pid with
  | exception Not_found -> None
  | fr ->
      let p = page fr in
      let view =
        match Page.kind p with
        | Page.Free | Page.Meta -> None
        | Page.Data | Page.Index ->
            let f = Node.fence p in
            let responsible =
              Keyspace.Interval.make ~low:f.Node.low ~high:f.Node.resp_high
            in
            let directly =
              Keyspace.Interval.make ~low:f.Node.low ~high:f.Node.high
            in
            let sibling_terms =
              if Page.side_ptr p = Page.nil then []
              else
                [
                  ( Keyspace.Interval.make ~low:f.Node.high ~high:f.Node.resp_high,
                    Page.side_ptr p );
                ]
            in
            let index_terms =
              if Page.kind p <> Page.Index then []
              else
                Node.(
                  let n = entry_count p in
                  let rec terms i acc =
                    if i >= n then List.rev acc
                    else
                      let sep, child = index_term p i in
                      let low = if i = 0 then f.Node.low else Some sep in
                      let high =
                        if i = n - 1 then f.Node.high
                        else Some (fst (index_term p (i + 1)))
                      in
                      terms (i + 1)
                        ((Keyspace.Interval.make ~low ~high, child) :: acc)
                  in
                  terms 0 [])
            in
            Some
              {
                WF.id = pid;
                level = Page.level p;
                responsible;
                directly_contained = directly;
                index_terms;
                sibling_terms;
              }
      in
      unpin t fr;
      view

let verify t = WF.check ~root:t.root ~read:(read_view t)

let node_count t =
  let seen = Hashtbl.create 64 in
  let rec go pid =
    if not (Hashtbl.mem seen pid) then begin
      Hashtbl.replace seen pid ();
      match read_view t pid with
      | None -> ()
      | Some v ->
          List.iter (fun (_, c) -> go c) v.WF.index_terms;
          List.iter (fun (_, s) -> go s) v.WF.sibling_terms
    end
  in
  go t.root;
  Hashtbl.length seen

let dump t ppf =
  let rec node pid indent =
    match pin t pid with
    | exception Not_found -> Format.fprintf ppf "%s<missing %d>@," indent pid
    | fr ->
        let p = page fr in
        let f = Node.fence p in
        let b = function None -> "inf" | Some s -> Printf.sprintf "%S" s in
        Format.fprintf ppf "%s%s %d L%d [%s,%s|%s) side=%d lsn=%d {%d entries}@,"
          indent
          (match Page.kind p with Page.Data -> "leaf" | _ -> "index")
          pid (Page.level p) (b f.Node.low) (b f.Node.high) (b f.Node.resp_high)
          (Page.side_ptr p) (Page.lsn p) (Node.entry_count p);
        if Page.kind p = Page.Index then begin
          let n = Node.entry_count p in
          for i = 0 to n - 1 do
            let sep, child = Node.index_term p i in
            Format.fprintf ppf "%s  %S ->@," indent sep;
            node child (indent ^ "    ")
          done
        end;
        unpin t fr
  in
  Format.fprintf ppf "@[<v>";
  node t.root "";
  Format.fprintf ppf "@]"

let stats t =
  {
    searches = Atomic.get t.c.c_searches;
    inserts = Atomic.get t.c.c_inserts;
    deletes = Atomic.get t.c.c_deletes;
    leaf_splits = Atomic.get t.c.c_leaf_splits;
    index_splits = Atomic.get t.c.c_index_splits;
    root_splits = Atomic.get t.c.c_root_splits;
    side_traversals = Atomic.get t.c.c_side_traversals;
    postings_scheduled = Atomic.get t.c.c_postings_scheduled;
    postings_completed = Atomic.get t.c.c_postings_completed;
    postings_noop = Atomic.get t.c.c_postings_noop;
    consolidations = Atomic.get t.c.c_consolidations;
    consolidations_skipped = Atomic.get t.c.c_consolidations_skipped;
    path_reuse_hits = Atomic.get t.c.c_path_reuse_hits;
    full_retraversals = Atomic.get t.c.c_full_retraversals;
    lock_restarts = Atomic.get t.c.c_lock_restarts;
    olc_restarts = Atomic.get t.c.c_olc_restarts;
    olc_fallbacks = Atomic.get t.c.c_olc_fallbacks;
    descents = Atomic.get t.c.c_descents;
  }

let reset_stats t =
  let c = t.c in
  List.iter
    (fun a -> Atomic.set a 0)
    [
      c.c_searches; c.c_inserts; c.c_deletes; c.c_leaf_splits; c.c_index_splits;
      c.c_root_splits; c.c_side_traversals; c.c_postings_scheduled;
      c.c_postings_completed; c.c_postings_noop; c.c_consolidations;
      c.c_consolidations_skipped; c.c_path_reuse_hits; c.c_full_retraversals;
      c.c_lock_restarts; c.c_olc_restarts; c.c_olc_fallbacks; c.c_descents;
    ]

module Internal = struct
  let leaf_for t key =
    let _, fr = descend t ~key ~target:0 ~mode:Latch.S in
    fr

  let pin_pid t pid =
    match pin t pid with
    | exception Not_found -> None
    | fr ->
        latch fr Latch.S;
        Some fr

  (* Pin + S-latch [pid] only if it still has the remembered state
     identifier. The version word rejects stale frames without touching
     the latch; a survivor is re-checked under the latch, since the word
     can move between the peek and the acquire. *)
  let pin_pid_if t pid ~state_id =
    match pin t pid with
    | exception Not_found -> None
    | fr ->
        let w = Version.peek (Latch.version fr.Buffer_pool.latch) in
        if (not (Version.is_locked w)) && w <> 2 * state_id then begin
          unpin t fr;
          None
        end
        else begin
          latch fr Latch.S;
          if Page.lsn (page fr) = state_id then Some fr
          else begin
            unlatch fr Latch.S;
            unpin t fr;
            None
          end
        end

  let release_s t fr =
    unlatch fr Latch.S;
    unpin t fr

  let step_right t fr =
    let sib = Page.side_ptr (page fr) in
    if sib = Page.nil then begin
      release_s t fr;
      None
    end
    else begin
      let sfr = pin t sib in
      if (cfg t).Env.consolidation then begin
        latch sfr Latch.S;
        release_s t fr
      end
      else begin
        release_s t fr;
        latch sfr Latch.S
      end;
      Some sfr
    end
end

module Testing = struct
  type bug = injected_bug =
    | No_bug
    | Early_unlatch_split
    | Early_unlatch_merge
    | Bad_post_sep
    | No_version_bump
    | Ack_before_durable

  let set_bug b =
    injected_bug := b;
    (* [No_version_bump] is realized one layer down: latches simply stop
       maintaining their version words, which is exactly the mistake a
       writer path would make by mutating without the bump discipline.
       [Ack_before_durable] likewise lives in the combining layer: the
       leader broadcasts success before applying the batch. *)
    Latch.Testing.set_version_bumps (b <> No_version_bump);
    Combine.Testing.set_ack_before_durable (b = Ack_before_durable)

  let bug () = !injected_bug
end
