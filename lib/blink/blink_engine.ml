(* The B-link engine behind the uniform [Pitree_core.Engine.S] interface.
   Lives next to [Cursor] (which [scan] needs) rather than inside [Blink]
   itself. *)

module Engine = Pitree_core.Engine

module Impl = struct
  type t = Blink.t

  let engine_name = "pi-tree (b-link)"
  let insert = Blink.insert
  let delete = Blink.delete
  let find = Blink.find

  (* Cursors are latch-consistent point-in-time reads; they take no
     database locks, so [?txn] adds nothing and is ignored. *)
  let scan ?txn:_ t ~low ~n =
    let c = Cursor.seek t low in
    let count = Cursor.fold_until c ~limit:n ~init:0 ~f:(fun acc _ _ -> acc + 1) in
    Cursor.close c;
    count
end

include Impl

let inst t = Engine.Inst ((module Impl), t)
