(** [Pitree_core.Engine.S] over the B-link tree: [insert]/[delete]/[find]
    pass through directly (all already honour [?txn]); [scan] counts via a
    latch-consistent {!Cursor} (no locks, [?txn] ignored). *)

include Pitree_core.Engine.S with type t = Blink.t

val inst : Blink.t -> Pitree_core.Engine.instance
