module Page = Pitree_storage.Page
module Buffer_pool = Pitree_storage.Buffer_pool

type position =
  | Before of string  (** next record is the first with key >= this *)
  | After of { pid : int; state_id : int; key : string }
      (** resume after [key]; [pid]/[state_id] remember the leaf
          (section 5.2 saved state) *)

type t = { tree : Blink.t; mutable pos : position }

let seek tree key = { tree; pos = Before key }
let first tree = { tree; pos = Before "" }

(* Scan the S-latched leaf [fr] for the first entry admitted by [admit];
   walk right as needed. Returns the record and the frame (still latched)
   it came from, or [None] with everything released. *)
let rec scan_from t fr ~admit =
  let p = fr.Buffer_pool.page in
  let n = Node.entry_count p in
  let start =
    match Node.find p (admit : string) with
    | `Found i -> i + 1 (* strictly after the resume key *)
    | `Not_found i -> i
  in
  if start < n then begin
    let k, v = Node.record p start in
    Some (k, v, fr)
  end
  else
    match Blink.Internal.step_right t fr with
    | None -> None
    | Some sfr -> scan_from t sfr ~admit

(* Like scan_from but inclusive (for Before positions). *)
let rec scan_incl t fr ~from_key =
  let p = fr.Buffer_pool.page in
  let n = Node.entry_count p in
  let start =
    match Node.find p from_key with `Found i -> i | `Not_found i -> i
  in
  if start < n then begin
    let k, v = Node.record p start in
    Some (k, v, fr)
  end
  else
    match Blink.Internal.step_right t fr with
    | None -> None
    | Some sfr -> scan_incl t sfr ~from_key

let fetch t =
  match t.pos with
  | Before key ->
      let fr = Blink.Internal.leaf_for t.tree key in
      scan_incl t.tree fr ~from_key:key
  | After { pid; state_id; key } -> (
      (* Saved-state fast path: unchanged state identifier means the leaf
         (and our slot arithmetic) is exactly as we left it. The version
         word rejects a stale leaf without blocking behind its latch. *)
      match Blink.Internal.pin_pid_if t.tree pid ~state_id with
      | Some fr -> scan_from t.tree fr ~admit:key
      | None ->
          let fr = Blink.Internal.leaf_for t.tree key in
          scan_from t.tree fr ~admit:key)

let next t =
  match fetch t with
  | None -> None
  | Some (k, v, fr) ->
      t.pos <-
        After { pid = Page.id fr.Buffer_pool.page; state_id = Page.lsn fr.Buffer_pool.page; key = k };
      Blink.Internal.release_s t.tree fr;
      Some (k, v)

let peek t =
  match fetch t with
  | None -> None
  | Some (k, v, fr) ->
      Blink.Internal.release_s t.tree fr;
      Some (k, v)

let close _ = ()

let fold_until t ~limit ~init ~f =
  let rec go acc remaining =
    if remaining <= 0 then acc
    else
      match next t with
      | None -> acc
      | Some (k, v) -> go (f acc k v) (remaining - 1)
  in
  go init limit
