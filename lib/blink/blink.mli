(** The B-link instance of the Pi-tree: a concurrent, recoverable key-value
    index (the paper's flagship structure, sections 2.2.1, 3, 5).

    {2 Protocol summary}

    - {b Searches} descend from the (immovable) root following index terms,
      side-stepping along sibling pointers when the key lies beyond a node's
      fence. Under the CNS invariant one latch is held at a time; under CP
      (consolidation possible) latches are coupled (section 5.2).
    - {b Node splits} are atomic actions: allocate, move the upper half,
      link the sibling, commit — then {e schedule} the posting of the index
      term as a {e separate} atomic action (section 3.2.1). Searchers can
      run between the two; they see a well-formed tree and reach the new
      node through the side pointer.
    - {b Index-term posting} follows section 5.3 literally: Search (reusing
      the saved path, verified by state identifiers), Verify Split (the
      posting is re-tested — it may already be done, or no longer needed),
      Space Test (index-node splits and root growth happen here), Update
      Node.
    - {b Node consolidation} (when enabled) merges an under-utilized node
      into its containing (left) sibling when both are referenced by the
      same parent, in a single atomic action spanning two levels
      (section 3.3), then de-allocates it as a logged node update
      (section 5.2.2, strategy (b)).
    - {b Crashes} between atomic actions need no special recovery: the
      posting is re-discovered by the next traversal that follows the side
      pointer and scheduled again (section 5.1).
    - Under {b page-oriented UNDO} ([Env.config.page_oriented_undo]),
      record moves take {e move locks} (node-granule, compatible with
      readers), and a leaf split triggered by a transaction that already
      updated the node runs {e inside} that transaction, with the posting
      deferred to commit (section 4.2).

    Operations auto-commit in a private user transaction unless [?txn] is
    supplied. Record-level X locks (plus node-level IX) are taken for
    updates; plain [find] is latch-consistent and takes no locks. *)

type t

val create : Pitree_env.Env.t -> name:string -> t
(** Create (and catalog) a fresh empty tree. *)

val open_existing : Pitree_env.Env.t -> name:string -> t option
(** Reattach to a tree created earlier (e.g. after recovery). *)

val register_for_recovery : Pitree_env.Env.t -> root:int -> unit
(** Pre-register this tree's logical-undo handler before running
    [Env.recover] in a fresh process over a file-persisted database whose
    log may contain in-flight user transactions (non-page-oriented UNDO
    compensations go through the access method, so the handler must exist
    before rollback runs). Unnecessary for in-process crash/recover, where
    handlers registered at [create]/[open_existing] persist. *)

val env : t -> Pitree_env.Env.t
val name : t -> string
val root : t -> int

val set_move_granularity : t -> [ `Node | `Record ] -> unit
(** How move locks are realized under page-oriented UNDO (section 4.2.2):
    [`Node] (default) takes one node-granule Move lock — simple, and once
    granted no update activity can alter the locking required; [`Record]
    takes one U lock per record to be moved — finer (updaters of the
    non-moved half are not blocked), at the cost of the re-examination
    loop when a lock must be waited for. Applies to independent split
    actions; in-transaction splits always use the node granule (their move
    lock outlives the action, where only the node granule can also fence
    off space-consuming inserts). *)

val move_granularity : t -> [ `Node | `Record ]

(** {2 Operations} *)

val insert : ?txn:Pitree_txn.Txn.t -> t -> key:string -> value:string -> unit
(** Insert or overwrite. A non-transactional insert (no [txn]) funnels
    through the hot-key combining layer when [Env.config.combine] is on:
    concurrent writers hashing to the same publication slot are batched by
    an elected leader into one descent, one X latch and one log batch
    committed with a single durability enrollment ([Pitree_combine]).
    Requests the batch cannot serve (leaf overflow, busy record lock, key
    outside the reached leaf) transparently re-run the normal single-op
    path, which may split. Linearizability is unchanged: the leader acks
    only after the batch transaction committed. *)

val delete : ?txn:Pitree_txn.Txn.t -> t -> string -> bool
(** Delete; [false] if the key was absent. *)

val find : ?txn:Pitree_txn.Txn.t -> t -> string -> string option
(** Point lookup. Without [?txn]: latch-consistent, no database locks
    (optimistic latch-free descent when [Env.config.olc_reads]). With
    [?txn]: takes the record's S lock under the no-wait rule and holds it
    to the transaction's end — repeatable read. *)

val range : t -> ?low:string -> ?high:string -> init:'a ->
  f:('a -> string -> string -> 'a) -> 'a
(** Fold over records with [low <= key < high] in key order, walking leaves
    through sibling pointers. Latch-consistent per leaf. *)

val count : t -> int
(** Number of records (full scan). *)

(** {2 Maintenance and inspection} *)

val verify : t -> Pitree_core.Wellformed.report
(** Run the six well-formedness conditions over the whole tree (quiesced). *)

val height : t -> int
val node_count : t -> int

type stats = {
  searches : int;
  inserts : int;
  deletes : int;
  leaf_splits : int;
  index_splits : int;
  root_splits : int;
  side_traversals : int;
  postings_scheduled : int;
  postings_completed : int;
  postings_noop : int;  (** posting actions that re-tested and found nothing to do *)
  consolidations : int;
  consolidations_skipped : int;
  path_reuse_hits : int;   (** posting searches satisfied by the saved path *)
  full_retraversals : int; (** posting searches that had to restart at the root *)
  lock_restarts : int;     (** no-wait rule backoffs (section 4.1.2) *)
  olc_restarts : int;
      (** optimistic descents abandoned by a failed version check (and
          retried from the root) *)
  olc_fallbacks : int;
      (** reads that exhausted the optimistic retry budget and fell back
          to the S-latched path *)
  descents : int;
      (** latched root-to-leaf descents (target level 0) — the work metric
          write combining reduces: N combined puts cost one descent *)
}

val stats : t -> stats
val reset_stats : t -> unit

val pending_postings : t -> int
(** Postings currently queued (deduplicated). *)

val dump : t -> Format.formatter -> unit
(** Debug rendering of the whole tree. *)

(** {2 Test-only protocol-bug injection}

    Used by the deterministic schedule explorer (lib/sim) to validate its
    oracles: each bug deliberately violates the split protocol in a way
    one of the checkers must catch. Global and sticky — callers reset to
    [No_bug] when done. *)
module Testing : sig
  type bug =
    | No_bug
    | Early_unlatch_split
        (** drop the X latch mid-split, after the upper records moved out
            but before the fence shrinks (caught by the linearizability
            checker: a reader in the window misses committed keys) *)
    | Early_unlatch_merge
        (** drop every latch mid-merge, after the containing node took
            over the contained node's records, fence and side pointer but
            before the contained node's index term leaves the parent —
            two nodes directly claim the same key space (caught by
            [Wellformed.check] condition 1; a reader routed to the
            emptied node also misses committed keys) *)
    | Bad_post_sep
        (** post the index term with a separator one byte short (caught
            by [Wellformed.check] condition 3) *)
    | No_version_bump
        (** writers latch correctly but never maintain the per-node
            version words, so optimistic readers validate stale reads
            (caught by the linearizability checker under the CP
            invariant: a reader descends into a node de-allocated by a
            consolidation and misses committed keys) *)
    | Ack_before_durable
        (** the combining leader broadcasts success to its parked
            followers before the batch is applied or committed (caught by
            the linearizability checker with combining on: an acked
            writer's own subsequent read misses its write, which no
            linearization can explain) *)

  val set_bug : bug -> unit
  val bug : unit -> bug
end

(**/**)

(** Internal access for {!Cursor} (same library); not part of the public
    API. *)
module Internal : sig
  val leaf_for : t -> string -> Pitree_storage.Buffer_pool.frame
  (** Pin + S-latch the leaf directly containing the key. *)

  val pin_pid : t -> int -> Pitree_storage.Buffer_pool.frame option
  (** Pin + S-latch an arbitrary page by pid ([None] if unreachable). *)

  val pin_pid_if :
    t -> int -> state_id:int -> Pitree_storage.Buffer_pool.frame option
  (** Pin + S-latch [pid] only if its state identifier (page LSN) still
      equals [state_id]; a latch-free version-word peek rejects stale
      frames without blocking behind their latch. *)

  val release_s : t -> Pitree_storage.Buffer_pool.frame -> unit

  val step_right : t -> Pitree_storage.Buffer_pool.frame ->
    Pitree_storage.Buffer_pool.frame option
  (** Move to the right sibling (latch-coupled under CP); releases the
      argument frame either way. *)
end
