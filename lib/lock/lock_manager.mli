(** The database lock manager.

    Locks protect logical content (records, node contents being moved, whole
    trees) on behalf of transactions; they are held to the end of the owning
    transaction or atomic action and are the only waits subject to deadlock
    {e detection}. Latches, by contrast, avoid deadlock by ordering and are
    invisible to this module — which is why the engines obey the paper's
    {b no-wait rule} (section 4.1.2): never wait here while holding a latch
    that a lock holder might need; use {!try_acquire} in those positions and
    back off on failure.

    Deadlocks are detected with a waits-for graph at block time; the
    requester is chosen as victim and receives {!Deadlock}.

    Internally the manager is {e striped}: resources hash to one of N
    per-stripe mutex/table pairs, so acquisitions on distinct resources
    rarely contend. Only blocking requests touch the two small global
    structures (the waits-for graph and the per-owner held-set index). *)

type resource =
  | Record of { tree : int; key : string }
  | Node of { tree : int; page : int }
      (** granule for move locks, and for node-size move-lock realization *)
  | Tree of int

val pp_resource : Format.formatter -> resource -> unit

exception Deadlock of { owner : int }

type t

val create : ?stripes:int -> unit -> t
(** [stripes] (default 16) is rounded up to a power of two; [?stripes:1]
    degenerates to a single global table for comparison or debugging. *)

val acquire : t -> owner:int -> resource -> Lock_mode.t -> unit
(** Blocks until granted. Re-entrant: if [owner] already holds the resource
    the request converts the hold to [Lock_mode.sup held requested]
    (conversions are granted ahead of the FIFO queue). Raises {!Deadlock}
    when waiting would close a cycle. *)

val try_acquire : t -> owner:int -> resource -> Lock_mode.t -> bool
(** Non-blocking; [true] on grant or conversion. *)

val release : t -> owner:int -> resource -> unit
(** Drop [owner]'s hold on [resource] (all modes). *)

val release_all : t -> owner:int -> unit
(** End-of-transaction release of every lock owned by [owner]. *)

val held : t -> owner:int -> resource -> Lock_mode.t option

val holders : t -> resource -> (int * Lock_mode.t) list
(** Snapshot of granted holds (diagnostics/tests). *)

type stats = { acquisitions : int; waits : int; deadlocks : int }

val stats : t -> stats
