type resource =
  | Record of { tree : int; key : string }
  | Node of { tree : int; page : int }
  | Tree of int

let pp_resource ppf = function
  | Record { tree; key } -> Fmt.pf ppf "rec(%d,%S)" tree key
  | Node { tree; page } -> Fmt.pf ppf "node(%d,%d)" tree page
  | Tree t -> Fmt.pf ppf "tree(%d)" t

exception Deadlock of { owner : int }

type waiter = {
  w_owner : int;
  w_mode : Lock_mode.t;
  mutable w_granted : bool;
  mutable w_aborted : bool;
}

type queue = {
  mutable granted : (int * Lock_mode.t) list;  (* owner -> mode, one entry per owner *)
  mutable waiting : waiter list;  (* FIFO: head is oldest *)
  cond : Condition.t;
}

(* Lock traffic is striped: a resource hashes to one of [stripes], each
   with its own mutex and queue table, so acquisitions on distinct
   resources rarely contend. Two small global structures remain:

   - [blocked_on] (the waits-for graph) behind [graph_mu]. A blocking
     requester PUBLISHES its edge under [graph_mu] before running cycle
     detection there; since publications are serialized, at least one of
     any two mutually-deadlocking requesters sees the other's edge.
   - [owned] (owner -> held-resource set, a hashtable per owner so
     acquisition bookkeeping is O(1) rather than O(holds)) behind
     [owners_mu].

   Lock ordering: graph_mu -> stripe (cycle detection snapshots queues);
   stripe and owners_mu are never held together; never stripe -> graph_mu. *)
type stripe = { mu : Mutex.t; table : (resource, queue) Hashtbl.t }

type t = {
  stripes : stripe array;
  smask : int;  (* Array.length stripes - 1; stripe count is a power of two *)
  graph_mu : Mutex.t;
  blocked_on : (int, resource) Hashtbl.t;  (* waiting owner -> resource *)
  owners_mu : Mutex.t;
  owned : (int, (resource, unit) Hashtbl.t) Hashtbl.t;
  acquisitions : int Atomic.t;
  wait_events : int Atomic.t;
  deadlock_count : int Atomic.t;
}

let rec next_pow2 n = if n <= 1 then 1 else 2 * next_pow2 ((n + 1) / 2)

let create ?(stripes = 16) () =
  if stripes < 1 then invalid_arg "Lock_manager.create: stripes < 1";
  let n = next_pow2 stripes in
  {
    stripes =
      Array.init n (fun _ ->
          { mu = Mutex.create (); table = Hashtbl.create 64 });
    smask = n - 1;
    graph_mu = Mutex.create ();
    blocked_on = Hashtbl.create 16;
    owners_mu = Mutex.create ();
    owned = Hashtbl.create 64;
    acquisitions = Atomic.make 0;
    wait_events = Atomic.make 0;
    deadlock_count = Atomic.make 0;
  }

let stripe_of t res = t.stripes.(Hashtbl.hash res land t.smask)

let queue_of st res =
  match Hashtbl.find_opt st.table res with
  | Some q -> q
  | None ->
      let q = { granted = []; waiting = []; cond = Condition.create () } in
      Hashtbl.replace st.table res q;
      q

(* O(1) held-set bookkeeping (owner -> resource set). *)
let note_owned t owner res =
  Mutex.lock t.owners_mu;
  let set =
    match Hashtbl.find_opt t.owned owner with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 16 in
        Hashtbl.replace t.owned owner s;
        s
  in
  Hashtbl.replace set res ();
  Mutex.unlock t.owners_mu

let forget_owned t owner res =
  Mutex.lock t.owners_mu;
  (match Hashtbl.find_opt t.owned owner with
  | Some s ->
      Hashtbl.remove s res;
      if Hashtbl.length s = 0 then Hashtbl.remove t.owned owner
  | None -> ());
  Mutex.unlock t.owners_mu

(* Compatibility of [mode] with every granted hold except [owner]'s own. *)
let compatible_with_granted q ~owner mode =
  List.for_all
    (fun (o, m) -> o = owner || Lock_mode.compatible mode m)
    q.granted

(* A fresh (non-conversion) request must also respect the FIFO queue: it may
   not overtake earlier waiters. Conversions skip this check. *)
let no_earlier_waiter q ~owner =
  not (List.exists (fun w -> (not w.w_granted) && w.w_owner <> owner) q.waiting)

(* Would [owner], by waiting on [res], create a cycle in the waits-for
   graph? Caller holds [t.graph_mu] (NOT any stripe): queue state is read
   via per-resource snapshots taken under the owning stripe, respecting the
   graph_mu -> stripe lock order. The requester's own waiter is already
   enqueued; a granted-but-not-yet-unpublished waiter is harmless because
   traversal requires an UNgranted waiter entry in the queue. *)
let creates_cycle t ~owner res mode =
  let snapshot res =
    let st = stripe_of t res in
    Mutex.lock st.mu;
    let r =
      match Hashtbl.find_opt st.table res with
      | None -> None
      | Some q ->
          Some
            ( q.granted,
              List.map (fun w -> (w.w_owner, w.w_mode, w.w_granted)) q.waiting
            )
    in
    Mutex.unlock st.mu;
    r
  in
  (* Owners that [o] waits for at [res]: incompatible granted holders plus
     ungranted waiters AHEAD of [o]'s own entry in the FIFO queue (which it
     may not overtake). Positional, because [o] is already enqueued when
     this runs: two waiters on the same resource must not each count the
     other as a blocker, or every queue of depth two would read as a
     deadlock. *)
  let direct_blockers res mode ~owner:o =
    match snapshot res with
    | None -> []
    | Some (granted, waiting) ->
        let holders =
          List.filter_map
            (fun (h, m) ->
              if h <> o && not (Lock_mode.compatible mode m) then Some h
              else None)
            granted
        in
        let rec ahead acc = function
          | [] -> acc (* [o] not enqueued: everyone ungranted is ahead *)
          | (wo, _, g) :: rest ->
              if wo = o && not g then acc
              else ahead (if (not g) && wo <> o then wo :: acc else acc) rest
        in
        holders @ ahead [] waiting
  in
  let rec dfs visited o =
    if o = owner then true
    else if List.mem o visited then false
    else
      match Hashtbl.find_opt t.blocked_on o with
      | None -> false
      | Some res' -> (
          match snapshot res' with
          | None -> false
          | Some (_, waiting) -> (
              match
                List.find_opt
                  (fun (wo, _, granted) -> wo = o && not granted)
                  waiting
              with
              | None -> false
              | Some (_, mode', _) ->
                  let next = direct_blockers res' mode' ~owner:o in
                  List.exists (dfs (o :: visited)) next))
  in
  List.exists (dfs []) (direct_blockers res mode ~owner)

let current_hold q owner = List.assoc_opt owner q.granted

let set_hold q owner mode =
  q.granted <- (owner, mode) :: List.remove_assoc owner q.granted

(* Caller holds the stripe mutex: grant every waiter that can now proceed,
   in FIFO order, stopping at the first fresh request that must keep
   waiting. *)
let pump q =
  let rec go = function
    | [] -> []
    | w :: rest ->
        if w.w_granted then w :: go rest
        else
          let is_conversion = List.mem_assoc w.w_owner q.granted in
          if compatible_with_granted q ~owner:w.w_owner w.w_mode then begin
            let new_mode =
              match current_hold q w.w_owner with
              | Some held -> Lock_mode.sup held w.w_mode
              | None -> w.w_mode
            in
            set_hold q w.w_owner new_mode;
            w.w_granted <- true;
            w :: go rest
          end
          else if is_conversion then (* conversion blocks the queue head *)
            w :: rest
          else w :: rest  (* strict FIFO: nothing later may overtake *)
  in
  q.waiting <- List.filter (fun w -> not w.w_granted) (go q.waiting);
  Condition.broadcast q.cond

let unpublish t owner =
  Mutex.lock t.graph_mu;
  Hashtbl.remove t.blocked_on owner;
  Mutex.unlock t.graph_mu

let acquire_inner t ~owner res mode ~block =
  let st = stripe_of t res in
  Mutex.lock st.mu;
  let q = queue_of st res in
  let requested =
    match current_hold q owner with
    | Some held ->
        if Lock_mode.strength held >= Lock_mode.strength (Lock_mode.sup held mode)
        then None  (* already strong enough *)
        else Some (Lock_mode.sup held mode)
    | None -> Some mode
  in
  match requested with
  | None ->
      Mutex.unlock st.mu;
      true
  | Some want ->
      let is_conversion = current_hold q owner <> None in
      let grantable () =
        compatible_with_granted q ~owner want
        && (is_conversion || no_earlier_waiter q ~owner)
      in
      if grantable () then begin
        set_hold q owner want;
        Mutex.unlock st.mu;
        note_owned t owner res;
        Atomic.incr t.acquisitions;
        true
      end
      else if not block then begin
        Mutex.unlock st.mu;
        false
      end
      else begin
        let w =
          { w_owner = owner; w_mode = want; w_granted = false; w_aborted = false }
        in
        (* Conversions wait at the head so they are considered first. *)
        if is_conversion then q.waiting <- w :: q.waiting
        else q.waiting <- q.waiting @ [ w ];
        Mutex.unlock st.mu;
        Atomic.incr t.wait_events;
        (* Publish the waits-for edge BEFORE checking for a cycle, both
           under [graph_mu]: of two requesters deadlocking against each
           other, whoever publishes second is guaranteed to see the first's
           edge, so at least one detects the cycle. *)
        Mutex.lock t.graph_mu;
        Hashtbl.replace t.blocked_on owner res;
        let cycle = creates_cycle t ~owner res want in
        Mutex.unlock t.graph_mu;
        Mutex.lock st.mu;
        if cycle && not w.w_granted then begin
          (* Victim: withdraw the waiter (waking anyone it was holding up)
             and abort the request. *)
          w.w_aborted <- true;
          q.waiting <- List.filter (fun w' -> w' != w) q.waiting;
          pump q;
          Mutex.unlock st.mu;
          unpublish t owner;
          Atomic.incr t.deadlock_count;
          raise (Deadlock { owner })
        end;
        let rec wait_loop () =
          if w.w_granted then ()
          else begin
            Condition.wait q.cond st.mu;
            wait_loop ()
          end
        in
        (* Under the simulator, park the fiber instead of sleeping on the
           condvar: every fiber shares one thread, so a real wait would
           hang the scheduler.  The grant protocol is unchanged — the
           releaser's [pump] still sets [w_granted] in FIFO order. *)
        let rec sim_wait_loop label =
          if w.w_granted then ()
          else begin
            Mutex.unlock st.mu;
            (try
               Pitree_util.Sched_hook.wait Lock label (fun () -> w.w_granted)
             with e ->
               Mutex.lock st.mu;
               raise e);
            Mutex.lock st.mu;
            sim_wait_loop label
          end
        in
        let wait_loop () =
          if Pitree_util.Sched_hook.active () then
            sim_wait_loop (Fmt.str "%a" pp_resource res)
          else wait_loop ()
        in
        (* The releaser performs the grant (sets w_granted and updates
           q.granted) so that FIFO order is respected at wake-up time. *)
        (try wait_loop ()
         with e ->
           q.waiting <- List.filter (fun w' -> w' != w) q.waiting;
           Mutex.unlock st.mu;
           unpublish t owner;
           raise e);
        Mutex.unlock st.mu;
        unpublish t owner;
        note_owned t owner res;
        Atomic.incr t.acquisitions;
        true
      end

let acquire t ~owner res mode = ignore (acquire_inner t ~owner res mode ~block:true)
let try_acquire t ~owner res mode = acquire_inner t ~owner res mode ~block:false

(* Caller holds the stripe mutex for [res]. *)
let release_one st owner res =
  match Hashtbl.find_opt st.table res with
  | None -> ()
  | Some q ->
      q.granted <- List.remove_assoc owner q.granted;
      pump q;
      if q.granted = [] && q.waiting = [] then Hashtbl.remove st.table res

let release t ~owner res =
  let st = stripe_of t res in
  Mutex.lock st.mu;
  release_one st owner res;
  Mutex.unlock st.mu;
  forget_owned t owner res

let release_all t ~owner =
  (* Detach the owner's whole held-set first (owners_mu only), then walk
     it stripe by stripe — owners_mu and stripe mutexes are never nested. *)
  Mutex.lock t.owners_mu;
  let resources =
    match Hashtbl.find_opt t.owned owner with
    | Some s ->
        Hashtbl.remove t.owned owner;
        Hashtbl.fold (fun r () acc -> r :: acc) s []
    | None -> []
  in
  Mutex.unlock t.owners_mu;
  List.iter
    (fun res ->
      let st = stripe_of t res in
      Mutex.lock st.mu;
      release_one st owner res;
      Mutex.unlock st.mu)
    resources

let held t ~owner res =
  let st = stripe_of t res in
  Mutex.lock st.mu;
  let r =
    match Hashtbl.find_opt st.table res with
    | None -> None
    | Some q -> current_hold q owner
  in
  Mutex.unlock st.mu;
  r

let holders t res =
  let st = stripe_of t res in
  Mutex.lock st.mu;
  let r =
    match Hashtbl.find_opt st.table res with None -> [] | Some q -> q.granted
  in
  Mutex.unlock st.mu;
  r

type stats = { acquisitions : int; waits : int; deadlocks : int }

let stats (t : t) =
  {
    acquisitions = Atomic.get t.acquisitions;
    waits = Atomic.get t.wait_events;
    deadlocks = Atomic.get t.deadlock_count;
  }
