(** Multi-domain benchmark driver.

    Spawns worker domains that each execute a fixed number of workload
    operations against one engine instance, measuring wall-clock throughput
    and per-operation latency (merged histogram). This is the engine room
    of experiments E1-E4. *)

type result = {
  domains : int;
  total_ops : int;
  elapsed_s : float;
  ops_per_s : float;
  mean_ns : float;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  stats : Stats.t option;
      (** present when [run] was given the environment: WAL, buffer-pool
          and env counters as deltas across the run (see {!Stats.delta}
          for which fields stay cumulative) *)
}

val pp_result : Format.formatter -> result -> unit

val preload : Kv.instance -> Workload.spec -> n:int -> unit
(** Insert keys 0..n-1 (of the spec's canonical encoding) so measurements
    run against a warm tree. *)

val run :
  ?env:Pitree_env.Env.t ->
  ?faults:Pitree_storage.Disk.Faulty.ctl ->
  domains:int ->
  ops_per_domain:int ->
  seed:int64 ->
  Kv.instance ->
  Workload.spec ->
  result
(** Pass [?env] to capture a {!Stats.t} delta (WAL group-commit counters,
    buffer-pool hit/eviction/miss-wait, checkpoint activity) alongside
    throughput; add [?faults] (the env disk's [Faulty.ctl]) to include
    injected-fault counters in the delta. *)
