(** Multi-domain benchmark driver.

    Spawns worker domains that each execute a fixed number of workload
    operations against one engine instance, measuring wall-clock throughput
    and per-operation latency (merged histogram). This is the engine room
    of experiments E1-E4. *)

type result = {
  domains : int;
  total_ops : int;
  elapsed_s : float;
  ops_per_s : float;
  mean_ns : float;
  p50_ns : int;
  p99_ns : int;
  wal : Pitree_wal.Log_manager.stats option;
      (** present when [run] was given the environment's log: forces,
          flushes and bytes as deltas across the run; batch/commit-wait
          distributions cumulative for the log's lifetime *)
  pool : Pitree_storage.Buffer_pool.stats option;
      (** present when [run] was given the environment's buffer pool:
          hits/misses/evictions/flushes as deltas across the run (hit
          ratio recomputed over the deltas); the miss-I/O wait
          distribution is cumulative for the pool's lifetime *)
}

val pp_result : Format.formatter -> result -> unit

val preload : Kv.instance -> Workload.spec -> n:int -> unit
(** Insert keys 0..n-1 (of the spec's canonical encoding) so measurements
    run against a warm tree. *)

val run :
  ?log:Pitree_wal.Log_manager.t ->
  ?pool:Pitree_storage.Buffer_pool.t ->
  domains:int ->
  ops_per_domain:int ->
  seed:int64 ->
  Kv.instance ->
  Workload.spec ->
  result
(** Pass [?log] (usually [Env.log env]) to capture the WAL's group-commit
    stats alongside throughput, and [?pool] (usually [Env.pool env]) for
    the buffer pool's hit/eviction/miss-wait stats. *)
