(** Workload generation for the experiments: operation mixes over keyed
    records with configurable skew, as in the B-tree concurrency study the
    paper cites for its performance claim (Srinivasan & Carey, SIGMOD '91). *)

type op =
  | Find of string
  | Insert of string * string
  | Delete of string
  | Scan of string * int  (** start key, record count (YCSB-E shape) *)
  | Rmw of string * string
      (** read-modify-write: point read then overwrite (YCSB-F shape) *)

type dist =
  | Uniform
  | Zipf of float  (** theta; 0.99 = classic hot-key skew *)
  | Sequential  (** monotonically increasing keys — the splitting storm *)

type spec = {
  key_space : int;  (** distinct keys addressed by the workload *)
  value_len : int;
  read_pct : int;
  insert_pct : int;
  delete_pct : int;
  scan_pct : int;
  rmw_pct : int;  (** the five percentages must sum to 100 *)
  scan_len : int;  (** records per [Scan] op *)
  dist : dist;
}

val spec :
  ?key_space:int -> ?value_len:int -> ?read_pct:int -> ?insert_pct:int ->
  ?delete_pct:int -> ?scan_pct:int -> ?rmw_pct:int -> ?scan_len:int ->
  ?dist:dist -> unit -> spec
(** Defaults: 100k keys, 16-byte values, 100/0/0/0/0 read-only, 50-record
    scans, uniform. Raises [Invalid_argument] when the mix does not sum to
    100. *)

val key_of : int -> string
(** The canonical fixed-width key encoding used by all experiments. *)

type gen
(** Per-worker generator (owns its RNG and sequential counter share). *)

val gen : spec -> seed:int64 -> worker:int -> workers:int -> gen

val next : gen -> op
