(** Harness-side face of {!Pitree_core.Engine}: the engines implement
    [Engine.S] directly ([Blink_engine], [Tsb_engine], [Hb_engine]); this
    module re-exports the interface, adapts the two locking baselines onto
    it, and keeps the historical non-transactional dispatcher signatures
    the benchmarks use. *)

module Engine = Pitree_core.Engine

module type S = Engine.S

type instance = Engine.instance = Inst : (module S with type t = 'a) * 'a -> instance

val name : instance -> string
val insert : instance -> key:string -> value:string -> unit
val delete : instance -> string -> bool
val find : instance -> string -> string option

val scan : instance -> low:string -> n:int -> int
(** Count up to [n] records with key >= [low] in key order. The B-link
    engine walks a latch-consistent cursor; hB and the baselines expose no
    ordered string iteration and report 0. *)

val blink : Pitree_blink.Blink.t -> instance
val tsb : Pitree_tsb.Tsb.t -> instance
val hb : Pitree_hb.Hb.t -> instance
val coupling : Pitree_baseline.Bt_coupling.t -> instance
val treelatch : Pitree_baseline.Bt_treelatch.t -> instance
