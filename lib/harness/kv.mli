(** Uniform key-value interface over the three index engines, so the
    benchmark driver and comparison experiments treat them identically. *)

module type S = sig
  type t

  val engine_name : string
  val insert : t -> key:string -> value:string -> unit
  val delete : t -> string -> bool
  val find : t -> string -> string option

  val scan : t -> low:string -> n:int -> int
  (** Count up to [n] records with key >= [low] in key order. The B-link
      engine walks a latch-consistent cursor; the baselines expose no
      ordered iteration and report 0. *)
end

type instance = Inst : (module S with type t = 'a) * 'a -> instance

val name : instance -> string
val insert : instance -> key:string -> value:string -> unit
val delete : instance -> string -> bool
val find : instance -> string -> string option
val scan : instance -> low:string -> n:int -> int

val blink : Pitree_blink.Blink.t -> instance
val coupling : Pitree_baseline.Bt_coupling.t -> instance
val treelatch : Pitree_baseline.Bt_treelatch.t -> instance
