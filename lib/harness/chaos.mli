(** Randomized crash-sweep harness.

    Each run builds a fresh environment on an {!Pitree_storage.Disk.Faulty}
    in-memory disk, drives a seeded mixed workload against one engine while a
    {!Pitree_util.Crash_point} is armed, power-fails the environment when the
    point fires (or when the workload ends), recovers, and then checks:

    - every tree passes its {!Pitree_core.Wellformed} verifier (after
      recovery, after {!Pitree_env.Env.drain}, and after fresh inserts);
    - every committed key maps to exactly its last committed value, every
      committed delete stays deleted, and keys of the deliberately-left-open
      transaction are fully rolled back;
    - {!Pitree_env.Env.drain} completes all interrupted structure changes.

    Optionally a torn write is injected into the final pre-crash flush, and
    the fault plan's read-side faults stay active during recovery itself.
    Every run is identified by (point, after, seed, plan) and is exactly
    reproducible from that tuple. *)

type outcome = {
  point : string;  (** crash point armed for this run *)
  after : int;  (** countdown passed to {!Pitree_util.Crash_point.arm} *)
  seed : int64;  (** per-run seed; replay with the same tuple to reproduce *)
  plan : Pitree_storage.Disk.Faulty.plan;  (** fault plan for the workload *)
  fired : bool;  (** the armed point actually raised *)
  torn_injected : bool;  (** a torn write was planted in the final flush *)
  torn_pages : int;  (** torn pages recovery detected and rebuilt *)
  retried_reads : int;  (** transient read errors absorbed by the pool *)
  errors : string list;  (** empty iff all post-recovery checks passed *)
}

type summary = {
  runs : int;
  fired : int;
  torn_recoveries : int;  (** runs where recovery rebuilt >= 1 torn page *)
  retried_reads : int;
  failures : outcome list;
}

val ok : summary -> bool
(** [ok s] iff no run reported errors. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_summary : Format.formatter -> summary -> unit

val sweep :
  ?trace:(string -> unit) ->
  ?hits:int list ->
  ?ops:int ->
  ?seed:int64 ->
  unit ->
  summary
(** Deterministic sweep: every registered crash point x every hit count in
    [hits] (default [[0; 1; 2]]), fault-free disk, no torn injection. This is
    the pure "crash anywhere, recover to well-formed" claim of the paper. *)

val random_runs :
  ?trace:(string -> unit) -> ?ops:int -> iters:int -> seed:int64 -> unit -> summary
(** [iters] runs, each with a random point, hit count, seed and fault plan
    (transient read/write errors, bit flips, occasional fail-stop), and a
    coin-flip torn write in the final flush. [trace] receives one
    reproducible line per run. *)
