module Log_manager = Pitree_wal.Log_manager
module Buffer_pool = Pitree_storage.Buffer_pool
module Disk = Pitree_storage.Disk
module Env = Pitree_env.Env
module Combine = Pitree_combine.Combine
module Mvcc = Pitree_txn.Mvcc

type t = {
  wal : Log_manager.stats option;
  pool : Buffer_pool.stats option;
  env : Env.stats option;
  faults : Disk.Faulty.counters option;
  combine : Combine.stats option;
  mvcc : Mvcc.stats option;
}

let empty =
  {
    wal = None;
    pool = None;
    env = None;
    faults = None;
    combine = None;
    mvcc = None;
  }

let of_env ?faults env =
  {
    wal = Some (Log_manager.stats (Env.log env));
    pool = Some (Buffer_pool.stats (Env.pool env));
    env = Some (Env.stats env);
    faults = Option.map Disk.Faulty.counters faults;
    combine = Some (Combine.stats ());
    mvcc = Some (Mvcc.stats ());
  }

(* Counter fields are reported as the delta across the run; the batch/wait
   distributions are cumulative for the component's lifetime (histograms
   are not subtractable), which matches the common fresh-env-per-run
   usage. *)
let wal_delta (before : Log_manager.stats) (after : Log_manager.stats) =
  {
    after with
    Log_manager.appends = after.Log_manager.appends - before.Log_manager.appends;
    forces = after.Log_manager.forces - before.Log_manager.forces;
    flushes = after.Log_manager.flushes - before.Log_manager.flushes;
    flush_requests =
      after.Log_manager.flush_requests - before.Log_manager.flush_requests;
    logical_commits =
      after.Log_manager.logical_commits - before.Log_manager.logical_commits;
    bytes = after.Log_manager.bytes - before.Log_manager.bytes;
    truncations = after.Log_manager.truncations - before.Log_manager.truncations;
    truncated_records =
      after.Log_manager.truncated_records - before.Log_manager.truncated_records;
    truncated_bytes =
      after.Log_manager.truncated_bytes - before.Log_manager.truncated_bytes;
  }

(* Same policy for pool stats: counters are run deltas (with the hit ratio
   recomputed over them); the miss-I/O wait distribution is cumulative. *)
let pool_delta (before : Buffer_pool.stats) (after : Buffer_pool.stats) =
  let hits = after.Buffer_pool.hits - before.Buffer_pool.hits in
  let misses = after.Buffer_pool.misses - before.Buffer_pool.misses in
  let pins = hits + misses in
  {
    after with
    Buffer_pool.hits;
    misses;
    evictions = after.Buffer_pool.evictions - before.Buffer_pool.evictions;
    flushes = after.Buffer_pool.flushes - before.Buffer_pool.flushes;
    retried_reads =
      after.Buffer_pool.retried_reads - before.Buffer_pool.retried_reads;
    retried_writes =
      after.Buffer_pool.retried_writes - before.Buffer_pool.retried_writes;
    shard_evictions =
      Array.mapi
        (fun i e ->
          if i < Array.length before.Buffer_pool.shard_evictions then
            e - before.Buffer_pool.shard_evictions.(i)
          else e)
        after.Buffer_pool.shard_evictions;
    hit_ratio =
      (if pins = 0 then 0. else float_of_int hits /. float_of_int pins);
  }

let env_delta (before : Env.stats) (after : Env.stats) =
  {
    Env.pages_allocated = after.Env.pages_allocated - before.Env.pages_allocated;
    pages_freed = after.Env.pages_freed - before.Env.pages_freed;
    pages_reused = after.Env.pages_reused - before.Env.pages_reused;
    completions_run = after.Env.completions_run - before.Env.completions_run;
    checkpoints = after.Env.checkpoints - before.Env.checkpoints;
    ckpt_pages_written =
      after.Env.ckpt_pages_written - before.Env.ckpt_pages_written;
    ckpt_records_truncated =
      after.Env.ckpt_records_truncated - before.Env.ckpt_records_truncated;
    ckpt_bytes_truncated =
      after.Env.ckpt_bytes_truncated - before.Env.ckpt_bytes_truncated;
  }

(* Injection counters are plain monotone counts, so the delta is exact. *)
let faults_delta (before : Disk.Faulty.counters) (after : Disk.Faulty.counters)
    =
  {
    Disk.Faulty.torn_writes =
      after.Disk.Faulty.torn_writes - before.Disk.Faulty.torn_writes;
    transient_reads =
      after.Disk.Faulty.transient_reads - before.Disk.Faulty.transient_reads;
    transient_writes =
      after.Disk.Faulty.transient_writes - before.Disk.Faulty.transient_writes;
    bit_flips = after.Disk.Faulty.bit_flips - before.Disk.Faulty.bit_flips;
    fail_stops = after.Disk.Faulty.fail_stops - before.Disk.Faulty.fail_stops;
  }

(* Combining counters are process-wide monotone counts; the size/wait
   distributions stay cumulative like the WAL's. *)
let combine_delta (before : Combine.stats) (after : Combine.stats) =
  {
    after with
    Combine.reqs = after.Combine.reqs - before.Combine.reqs;
    batches = after.Combine.batches - before.Combine.batches;
    combined = after.Combine.combined - before.Combine.combined;
    handbacks = after.Combine.handbacks - before.Combine.handbacks;
    window_waits = after.Combine.window_waits - before.Combine.window_waits;
  }

let map2 f a b = match (a, b) with Some a, Some b -> Some (f a b) | _ -> None

let delta ~before ~after =
  {
    wal = map2 wal_delta before.wal after.wal;
    pool = map2 pool_delta before.pool after.pool;
    env = map2 env_delta before.env after.env;
    faults = map2 faults_delta before.faults after.faults;
    combine = map2 combine_delta before.combine after.combine;
    mvcc = map2 (fun b a -> Mvcc.sub_stats a b) before.mvcc after.mvcc;
  }

let pp_pool ppf (p : Buffer_pool.stats) =
  Fmt.pf ppf
    "pool: %d shards, %.1f%% hit (%d hits / %d misses), %d evictions, %d \
     flushes, miss I/O mean %.0fns p99 %dns"
    p.Buffer_pool.shards
    (100. *. p.Buffer_pool.hit_ratio)
    p.Buffer_pool.hits p.Buffer_pool.misses p.Buffer_pool.evictions
    p.Buffer_pool.flushes p.Buffer_pool.miss_wait_mean_ns
    p.Buffer_pool.miss_wait_p99_ns

let pp_env ppf (e : Env.stats) =
  Fmt.pf ppf
    "env: %d alloc (%d reused) / %d freed pages, %d completions, %d \
     checkpoints (%d pages written back, %d records / %d bytes truncated)"
    e.Env.pages_allocated e.Env.pages_reused e.Env.pages_freed
    e.Env.completions_run e.Env.checkpoints e.Env.ckpt_pages_written
    e.Env.ckpt_records_truncated e.Env.ckpt_bytes_truncated

let pp_faults ppf (f : Disk.Faulty.counters) =
  Fmt.pf ppf
    "faults: injected %d torn / %d transient-read / %d transient-write / %d \
     bit-flip / %d fail-stop"
    f.Disk.Faulty.torn_writes f.Disk.Faulty.transient_reads
    f.Disk.Faulty.transient_writes f.Disk.Faulty.bit_flips
    f.Disk.Faulty.fail_stops

let pp ppf s =
  let sections =
    List.filter_map
      (fun x -> x)
      [
        Option.map (fun w -> fun ppf () -> Log_manager.pp_stats ppf w) s.wal;
        Option.map (fun p -> fun ppf () -> pp_pool ppf p) s.pool;
        Option.map (fun e -> fun ppf () -> pp_env ppf e) s.env;
        Option.map (fun f -> fun ppf () -> pp_faults ppf f) s.faults;
        Option.map
          (fun c -> fun ppf () -> Fmt.pf ppf "combine: @[%a@]" Combine.pp_stats c)
          s.combine;
        Option.map
          (fun m -> fun ppf () -> Fmt.pf ppf "mvcc: @[%a@]" Mvcc.pp_stats m)
          s.mvcc;
      ]
  in
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf f -> f ppf ()))
    sections

let wal_json b (w : Log_manager.stats) =
  Printf.bprintf b
    "{\"appends\": %d, \"forces\": %d, \"flushes\": %d, \"flush_requests\": \
     %d, \"logical_commits\": %d, \"bytes\": %d, \"batch_mean\": %.2f, \"batch_p99\": %d, \
     \"batch_max\": %d, \"wait_mean_ns\": %.0f, \"wait_p50_ns\": %d, \
     \"wait_p99_ns\": %d, \"truncations\": %d, \"truncated_records\": %d, \
     \"truncated_bytes\": %d}"
    w.Log_manager.appends w.Log_manager.forces w.Log_manager.flushes
    w.Log_manager.flush_requests w.Log_manager.logical_commits
    w.Log_manager.bytes w.Log_manager.batch_mean
    w.Log_manager.batch_p99 w.Log_manager.batch_max w.Log_manager.wait_mean_ns
    w.Log_manager.wait_p50_ns w.Log_manager.wait_p99_ns
    w.Log_manager.truncations w.Log_manager.truncated_records
    w.Log_manager.truncated_bytes

let pool_json b (p : Buffer_pool.stats) =
  Printf.bprintf b
    "{\"shards\": %d, \"hits\": %d, \"misses\": %d, \"hit_ratio\": %.4f, \
     \"evictions\": %d, \"flushes\": %d, \"retried_reads\": %d, \
     \"retried_writes\": %d, \"miss_wait_mean_ns\": %.0f, \
     \"miss_wait_p99_ns\": %d}"
    p.Buffer_pool.shards p.Buffer_pool.hits p.Buffer_pool.misses
    p.Buffer_pool.hit_ratio p.Buffer_pool.evictions p.Buffer_pool.flushes
    p.Buffer_pool.retried_reads p.Buffer_pool.retried_writes
    p.Buffer_pool.miss_wait_mean_ns p.Buffer_pool.miss_wait_p99_ns

let env_json b (e : Env.stats) =
  Printf.bprintf b
    "{\"pages_allocated\": %d, \"pages_freed\": %d, \"pages_reused\": %d, \
     \"completions_run\": %d, \"checkpoints\": %d, \"ckpt_pages_written\": \
     %d, \"ckpt_records_truncated\": %d, \"ckpt_bytes_truncated\": %d}"
    e.Env.pages_allocated e.Env.pages_freed e.Env.pages_reused
    e.Env.completions_run e.Env.checkpoints e.Env.ckpt_pages_written
    e.Env.ckpt_records_truncated e.Env.ckpt_bytes_truncated

let faults_json b (f : Disk.Faulty.counters) =
  Printf.bprintf b
    "{\"torn_writes\": %d, \"transient_reads\": %d, \"transient_writes\": %d, \
     \"bit_flips\": %d, \"fail_stops\": %d}"
    f.Disk.Faulty.torn_writes f.Disk.Faulty.transient_reads
    f.Disk.Faulty.transient_writes f.Disk.Faulty.bit_flips
    f.Disk.Faulty.fail_stops

let combine_json b (c : Combine.stats) =
  Printf.bprintf b
    "{\"reqs\": %d, \"batches\": %d, \"combined\": %d, \"handbacks\": %d, \
     \"window_waits\": %d, \"batch_mean\": %.2f, \"batch_p99\": %d, \
     \"batch_max\": %d, \"follower_wait_mean_ns\": %.0f, \
     \"follower_wait_p99_ns\": %d}"
    c.Combine.reqs c.Combine.batches c.Combine.combined c.Combine.handbacks
    c.Combine.window_waits c.Combine.batch_mean c.Combine.batch_p99
    c.Combine.batch_max c.Combine.follower_wait_mean_ns
    c.Combine.follower_wait_p99_ns

let mvcc_json b (m : Mvcc.stats) =
  Printf.bprintf b
    "{\"begun\": %d, \"committed\": %d, \"conflicts\": %d, \"aborted\": %d, \
     \"si_reads\": %d, \"stale_aborts\": %d}"
    m.Mvcc.begun m.Mvcc.committed m.Mvcc.conflicts m.Mvcc.aborted
    m.Mvcc.si_reads m.Mvcc.stale_aborts

let to_json s =
  let b = Buffer.create 1024 in
  let field name opt j =
    Printf.bprintf b "\"%s\": " name;
    (match opt with None -> Buffer.add_string b "null" | Some v -> j b v)
  in
  Buffer.add_string b "{";
  field "wal" s.wal wal_json;
  Buffer.add_string b ", ";
  field "pool" s.pool pool_json;
  Buffer.add_string b ", ";
  field "env" s.env env_json;
  Buffer.add_string b ", ";
  field "faults" s.faults faults_json;
  Buffer.add_string b ", ";
  field "combine" s.combine combine_json;
  Buffer.add_string b ", ";
  field "mvcc" s.mvcc mvcc_json;
  Buffer.add_string b "}";
  Buffer.contents b
