module Histogram = Pitree_util.Histogram
module Log_manager = Pitree_wal.Log_manager
module Buffer_pool = Pitree_storage.Buffer_pool
module Clock = Pitree_sync.Clock

type result = {
  domains : int;
  total_ops : int;
  elapsed_s : float;
  ops_per_s : float;
  mean_ns : float;
  p50_ns : int;
  p99_ns : int;
  wal : Log_manager.stats option;
  pool : Buffer_pool.stats option;
}

let pp_pool_stats ppf (p : Buffer_pool.stats) =
  Fmt.pf ppf
    "pool: %d shards, %.1f%% hit (%d hits / %d misses), %d evictions, %d \
     flushes, miss I/O mean %.0fns p99 %dns"
    p.Buffer_pool.shards
    (100. *. p.Buffer_pool.hit_ratio)
    p.Buffer_pool.hits p.Buffer_pool.misses p.Buffer_pool.evictions
    p.Buffer_pool.flushes p.Buffer_pool.miss_wait_mean_ns
    p.Buffer_pool.miss_wait_p99_ns

let pp_result ppf r =
  Fmt.pf ppf "%d domains: %.0f ops/s (mean %.0fns p50 %dns p99 %dns, %d ops in %.2fs)"
    r.domains r.ops_per_s r.mean_ns r.p50_ns r.p99_ns r.total_ops r.elapsed_s;
  (match r.wal with
  | None -> ()
  | Some w -> Fmt.pf ppf "@\n%a" Log_manager.pp_stats w);
  match r.pool with
  | None -> ()
  | Some p -> Fmt.pf ppf "@\n%a" pp_pool_stats p

let now () = Unix.gettimeofday ()

let preload inst spec ~n =
  let value = String.make spec.Workload.value_len 'P' in
  for i = 0 to n - 1 do
    Kv.insert inst ~key:(Workload.key_of i) ~value
  done

let apply inst = function
  | Workload.Find k -> ignore (Kv.find inst k)
  | Workload.Insert (k, v) -> ignore (Kv.insert inst ~key:k ~value:v)
  | Workload.Delete k -> ignore (Kv.delete inst k)

let worker inst spec ~seed ~worker:w ~workers ~ops =
  let g = Workload.gen spec ~seed ~worker:w ~workers in
  let h = Histogram.create () in
  for _ = 1 to ops do
    let op = Workload.next g in
    let t0 = Clock.now_ns () in
    apply inst op;
    Histogram.record h (Clock.now_ns () - t0)
  done;
  h

(* Counter fields are reported as the delta across the run; the batch/wait
   distributions are cumulative for the log's lifetime (histograms are not
   subtractable), which matches the common fresh-env-per-run usage. *)
let wal_delta (before : Log_manager.stats) (after : Log_manager.stats) =
  {
    after with
    Log_manager.appends = after.Log_manager.appends - before.Log_manager.appends;
    forces = after.Log_manager.forces - before.Log_manager.forces;
    flushes = after.Log_manager.flushes - before.Log_manager.flushes;
    flush_requests =
      after.Log_manager.flush_requests - before.Log_manager.flush_requests;
    bytes = after.Log_manager.bytes - before.Log_manager.bytes;
  }

(* Same policy for pool stats: counters are run deltas (with the hit ratio
   recomputed over them); the miss-I/O wait distribution is cumulative. *)
let pool_delta (before : Buffer_pool.stats) (after : Buffer_pool.stats) =
  let hits = after.Buffer_pool.hits - before.Buffer_pool.hits in
  let misses = after.Buffer_pool.misses - before.Buffer_pool.misses in
  let pins = hits + misses in
  {
    after with
    Buffer_pool.hits;
    misses;
    evictions = after.Buffer_pool.evictions - before.Buffer_pool.evictions;
    flushes = after.Buffer_pool.flushes - before.Buffer_pool.flushes;
    retried_reads =
      after.Buffer_pool.retried_reads - before.Buffer_pool.retried_reads;
    retried_writes =
      after.Buffer_pool.retried_writes - before.Buffer_pool.retried_writes;
    shard_evictions =
      Array.mapi
        (fun i e ->
          if i < Array.length before.Buffer_pool.shard_evictions then
            e - before.Buffer_pool.shard_evictions.(i)
          else e)
        after.Buffer_pool.shard_evictions;
    hit_ratio =
      (if pins = 0 then 0. else float_of_int hits /. float_of_int pins);
  }

let run ?log ?pool ~domains ~ops_per_domain ~seed inst spec =
  let wal_before = Option.map Log_manager.stats log in
  let pool_before = Option.map Buffer_pool.stats pool in
  let t0 = now () in
  let hists =
    if domains = 1 then [ worker inst spec ~seed ~worker:0 ~workers:1 ~ops:ops_per_domain ]
    else begin
      let handles =
        List.init domains (fun w ->
            Domain.spawn (fun () ->
                worker inst spec ~seed ~worker:w ~workers:domains
                  ~ops:ops_per_domain))
      in
      List.map Domain.join handles
    end
  in
  let elapsed = now () -. t0 in
  let h = List.fold_left Histogram.merge (Histogram.create ()) hists in
  let total = domains * ops_per_domain in
  let wal =
    match (log, wal_before) with
    | Some log, Some before -> Some (wal_delta before (Log_manager.stats log))
    | _ -> None
  in
  let pool =
    match (pool, pool_before) with
    | Some pool, Some before -> Some (pool_delta before (Buffer_pool.stats pool))
    | _ -> None
  in
  {
    domains;
    total_ops = total;
    elapsed_s = elapsed;
    ops_per_s = float_of_int total /. elapsed;
    mean_ns = Histogram.mean h;
    p50_ns = Histogram.percentile h 50.0;
    p99_ns = Histogram.percentile h 99.0;
    wal;
    pool;
  }
