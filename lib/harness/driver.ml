module Histogram = Pitree_util.Histogram
module Clock = Pitree_sync.Clock

type result = {
  domains : int;
  total_ops : int;
  elapsed_s : float;
  ops_per_s : float;
  mean_ns : float;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  stats : Stats.t option;
}

let pp_result ppf r =
  Fmt.pf ppf
    "%d domains: %.0f ops/s (mean %.0fns p50 %dns p99 %dns p999 %dns, %d ops in %.2fs)"
    r.domains r.ops_per_s r.mean_ns r.p50_ns r.p99_ns r.p999_ns r.total_ops
    r.elapsed_s;
  match r.stats with
  | None -> ()
  | Some s -> Fmt.pf ppf "@\n%a" Stats.pp s

let now () = Unix.gettimeofday ()

let preload inst spec ~n =
  let value = String.make spec.Workload.value_len 'P' in
  for i = 0 to n - 1 do
    Kv.insert inst ~key:(Workload.key_of i) ~value
  done

let apply inst = function
  | Workload.Find k -> ignore (Kv.find inst k)
  | Workload.Insert (k, v) -> ignore (Kv.insert inst ~key:k ~value:v)
  | Workload.Delete k -> ignore (Kv.delete inst k)
  | Workload.Scan (k, n) -> ignore (Kv.scan inst ~low:k ~n)
  | Workload.Rmw (k, v) ->
      ignore (Kv.find inst k);
      Kv.insert inst ~key:k ~value:v

let worker inst spec ~seed ~worker:w ~workers ~ops =
  let g = Workload.gen spec ~seed ~worker:w ~workers in
  let h = Histogram.create () in
  for _ = 1 to ops do
    let op = Workload.next g in
    let t0 = Clock.now_ns () in
    apply inst op;
    Histogram.record h (Clock.now_ns () - t0)
  done;
  h

let run ?env ?faults ~domains ~ops_per_domain ~seed inst spec =
  let before = Option.map (Stats.of_env ?faults) env in
  let t0 = now () in
  let hists =
    if domains = 1 then [ worker inst spec ~seed ~worker:0 ~workers:1 ~ops:ops_per_domain ]
    else begin
      let handles =
        List.init domains (fun w ->
            Domain.spawn (fun () ->
                worker inst spec ~seed ~worker:w ~workers:domains
                  ~ops:ops_per_domain))
      in
      List.map Domain.join handles
    end
  in
  let elapsed = now () -. t0 in
  let h = List.fold_left Histogram.merge (Histogram.create ()) hists in
  let total = domains * ops_per_domain in
  let stats =
    match (env, before) with
    | Some env, Some before ->
        Some (Stats.delta ~before ~after:(Stats.of_env ?faults env))
    | _ -> None
  in
  {
    domains;
    total_ops = total;
    elapsed_s = elapsed;
    ops_per_s = float_of_int total /. elapsed;
    mean_ns = Histogram.mean h;
    p50_ns = Histogram.percentile h 50.0;
    p99_ns = Histogram.percentile h 99.0;
    p999_ns = Histogram.p999 h;
    stats;
  }
