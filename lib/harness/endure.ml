module Env = Pitree_env.Env
module Disk = Pitree_storage.Disk
module Buffer_pool = Pitree_storage.Buffer_pool
module Page = Pitree_storage.Page
module Log_manager = Pitree_wal.Log_manager
module Log_record = Pitree_wal.Log_record
module Lsn = Pitree_wal.Lsn
module Blink = Pitree_blink.Blink
module Blink_engine = Pitree_blink.Blink_engine
module Engine = Pitree_core.Engine
module Wellformed = Pitree_core.Wellformed
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Histogram = Pitree_util.Histogram
module Rng = Pitree_util.Rng
module Zipf = Pitree_util.Zipf
module Clock = Pitree_sync.Clock
module Combine = Pitree_combine.Combine

type mix = A | B | C | D | E | F | Mixed | Storm

let mix_to_string = function
  | A -> "A"
  | B -> "B"
  | C -> "C"
  | D -> "D"
  | E -> "E"
  | F -> "F"
  | Mixed -> "mixed"
  | Storm -> "storm"

let mix_of_string s =
  match String.lowercase_ascii s with
  | "a" -> Some A
  | "b" -> Some B
  | "c" -> Some C
  | "d" -> Some D
  | "e" -> Some E
  | "f" -> Some F
  | "mixed" -> Some Mixed
  | "storm" -> Some Storm
  | _ -> None

(* Percentages (read, update, insert, scan, rmw). YCSB-D's "read latest"
   distribution is approximated by the configured skew over the whole key
   space; its insert share is faithful. [Storm] is the update-only skewed
   write storm the combining layer exists for (ROADMAP item 3): run it
   with theta 0.99 to pile the domains onto a few hot leaves. *)
let mix_pcts = function
  | A -> (50, 50, 0, 0, 0)
  | B -> (95, 5, 0, 0, 0)
  | C -> (100, 0, 0, 0, 0)
  | D -> (95, 0, 5, 0, 0)
  | E -> (0, 0, 5, 95, 0)
  | F -> (50, 0, 0, 0, 50)
  | Mixed -> (40, 20, 10, 10, 20)
  | Storm -> (0, 100, 0, 0, 0)

type config = {
  keys : int;
  seconds : float;
  domains : int;
  mix : mix;
  theta : float;
  value_len : int;
  scan_len : int;
  page_size : int;
  pool_capacity : int;
  ckpt_log_bytes : int;
  faults : bool;
  crash_cycles : int;
  verify_sample : int;
  seed : int64;
  dir : string option;
  combine : bool;
  slo_p99_read_ns : int;
  slo_wal_bytes : int;
}

let default_config =
  {
    keys = 1_000_000;
    seconds = 60.;
    domains = 4;
    mix = Mixed;
    theta = 0.99;
    value_len = 64;
    scan_len = 50;
    page_size = 4096;
    pool_capacity = 8192;
    ckpt_log_bytes = 4 * 1024 * 1024;
    faults = true;
    crash_cycles = 3;
    verify_sample = 2000;
    seed = 42L;
    dir = None;
    combine = true;
    slo_p99_read_ns = 50_000_000;
    slo_wal_bytes = 64 * 1024 * 1024;
  }

type kind_stats = {
  kind : string;
  count : int;
  mean_ns : float;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
}

type slo = {
  name : string;
  cmp : string;
  target : float;
  actual : float;
  ok : bool;
}

type result = {
  config : config;
  total_ops : int;
  elapsed_s : float;
  ops_per_s : float;
  kinds : kind_stats list;
  stats : Stats.t;
  cycles_done : int;
  recovery_ms : float list;
  verified_keys : int;
  lost_writes : int;
  scan_shortfalls : int;
  wellformed_failures : int;
  op_errors : int;
  wal_file_bytes : int;
  errors : string list;
  slos : slo list;
  passed : bool;
}

(* The meta page's pre-checkpoint history is not in the log (it is
   formatted before the initial checkpoint), so a torn image of it cannot
   be rebuilt by redo; like the chaos harness — and like real systems,
   which duplex such pages — we exempt it from torn-write injection. *)
let meta_pid = 1

(* Steady-state adversary: transient faults and read-path bit rot at rates
   the pool's retry/backoff ladder absorbs. Torn writes are reserved for
   crash instants (a torn page mid-run would be a non-transient error with
   no power failure to excuse it). *)
let steady_plan =
  {
    Disk.Faulty.no_faults with
    Disk.Faulty.transient_read = 0.05;
    transient_write = 0.05;
    bit_flip = 0.01;
    protected_pids = [ meta_pid ];
  }

let crash_flush_plan =
  {
    Disk.Faulty.no_faults with
    Disk.Faulty.torn_write = 0.5;
    protected_pids = [ meta_pid ];
  }

let tree_name = "endure"

(* ---------- shared run state ---------- *)

(* Worker domains park between operations when the coordinator wants to
   crash the environment: ops never straddle a crash, so every acknowledged
   op is either fully committed (the model remembers it) or never started.
   The barrier doubles as the memory fence that publishes each worker's
   model to the coordinator for post-recovery verification. *)
type shared = {
  mu : Mutex.t;
  cv : Condition.t;
  mutable want_pause : bool;
  mutable parked : int;
  mutable stop : bool;
  tree : Blink.t Atomic.t;
  err_mu : Mutex.t;
  mutable err_count : int;
  mutable err_sample : string list; (* newest first, capped *)
}

let max_err_sample = 30

let add_error sh msg =
  Mutex.lock sh.err_mu;
  sh.err_count <- sh.err_count + 1;
  if List.length sh.err_sample < max_err_sample then
    sh.err_sample <- msg :: sh.err_sample;
  Mutex.unlock sh.err_mu

(* Per-worker state, owned by the worker domain while running and read by
   the coordinator only while the worker is parked or joined. *)
type wstate = {
  model : (int, string) Hashtbl.t; (* own key id -> last committed value *)
  hists : Histogram.t array; (* indexed by op kind *)
  mutable ops : int;
  mutable lost : int;
  mutable shortfalls : int;
}

let kind_names = [| "read"; "update"; "insert"; "scan"; "rmw" |]
let k_read = 0
let k_update = 1
let k_insert = 2
let k_scan = 3
let k_rmw = 4

(* ---------- worker ---------- *)

(* Workers speak the uniform [Engine.S] interface, not [Blink] directly:
   the rig exercises whatever structure-maintenance machinery (splits,
   consolidation, merges, free-list recycling) the engine plugs in behind
   it. Re-wrapped per op because recovery swaps the tree handle. *)

let worker cfg env sh (st : wstate) ~w =
  let nd = cfg.domains in
  let rng = Rng.create (Int64.add cfg.seed (Int64.of_int (w * 7919))) in
  let zipf =
    if cfg.theta > 0. then Some (Zipf.create ~n:cfg.keys ~theta:cfg.theta)
    else None
  in
  let read_pct, update_pct, insert_pct, scan_pct, _rmw_pct = mix_pcts cfg.mix in
  let pick () =
    match zipf with Some z -> Zipf.sample z rng | None -> Rng.int rng cfg.keys
  in
  (* Remap a key to this worker's write-ownership stripe (keys congruent
     to [w] mod [domains]), so no two workers ever write the same key and
     each worker's model of its own writes is exact. *)
  let own k =
    let base = k - (k mod nd) + w in
    if base < cfg.keys then base else w
  in
  let next_insert = ref (cfg.keys + w) in
  let version = ref 0 in
  let mk_value v =
    let prefix = Printf.sprintf "w%d.%d." w v in
    let pad = cfg.value_len - String.length prefix in
    if pad > 0 then prefix ^ String.make pad 'x' else prefix
  in
  let lost fmt =
    Printf.ksprintf
      (fun msg ->
        st.lost <- st.lost + 1;
        add_error sh msg)
      fmt
  in
  let do_write ~kind k ~pre =
    let key = Workload.key_of k in
    incr version;
    let v = mk_value !version in
    match
      let t0 = Clock.now_ns () in
      let e = Blink_engine.inst (Atomic.get sh.tree) in
      pre e key;
      Engine.insert e ~key ~value:v;
      Histogram.record st.hists.(kind) (Clock.now_ns () - t0)
    with
    | () -> Hashtbl.replace st.model k v
    | exception e ->
        (* The op may or may not have committed before raising: un-verify
           the key rather than risk a false lost-write report. *)
        Hashtbl.remove st.model k;
        add_error sh
          (Printf.sprintf "worker %d: %s %s raised %s" w kind_names.(kind) key
             (Printexc.to_string e));
        raise e
  in
  let do_op () =
    let r = Rng.int rng 100 in
    if r < read_pct then begin
      let k = pick () in
      let key = Workload.key_of k in
      let t0 = Clock.now_ns () in
      let v = Engine.find (Blink_engine.inst (Atomic.get sh.tree)) key in
      Histogram.record st.hists.(k_read) (Clock.now_ns () - t0);
      match v with
      | None -> lost "worker %d: preloaded key %s missing" w key
      | Some v ->
          if k mod nd = w then begin
            match Hashtbl.find_opt st.model k with
            | Some expect when not (String.equal expect v) ->
                lost "worker %d: key %s reads %S, committed %S" w key v expect
            | _ -> ()
          end
    end
    else if r < read_pct + update_pct then do_write ~kind:k_update (own (pick ())) ~pre:(fun _ _ -> ())
    else if r < read_pct + update_pct + insert_pct then begin
      let k = !next_insert in
      next_insert := k + nd;
      do_write ~kind:k_insert k ~pre:(fun _ _ -> ())
    end
    else if r < read_pct + update_pct + insert_pct + scan_pct then begin
      let span = cfg.keys - cfg.scan_len in
      let k = if span > 0 then Rng.int rng span else 0 in
      let expected = min cfg.scan_len (cfg.keys - k) in
      let t0 = Clock.now_ns () in
      let n =
        Engine.scan
          (Blink_engine.inst (Atomic.get sh.tree))
          ~low:(Workload.key_of k) ~n:cfg.scan_len
      in
      Histogram.record st.hists.(k_scan) (Clock.now_ns () - t0);
      if n < expected then begin
        st.shortfalls <- st.shortfalls + 1;
        add_error sh
          (Printf.sprintf "worker %d: scan from %s returned %d < %d records" w
             (Workload.key_of k) n expected)
      end
    end
    else
      (* read-modify-write: the read is part of the op's latency *)
      do_write ~kind:k_rmw
        (own (pick ()))
        ~pre:(fun e key ->
          match Engine.find e key with
          | Some _ -> ()
          | None -> lost "worker %d: rmw key %s missing" w key)
  in
  let rec loop () =
    Mutex.lock sh.mu;
    if sh.want_pause then begin
      sh.parked <- sh.parked + 1;
      Condition.broadcast sh.cv;
      while sh.want_pause do
        Condition.wait sh.cv sh.mu
      done;
      sh.parked <- sh.parked - 1;
      Condition.broadcast sh.cv
    end;
    let stop = sh.stop in
    Mutex.unlock sh.mu;
    if not stop then begin
      (try do_op ()
       with e ->
         add_error sh
           (Printf.sprintf "worker %d: op raised %s" w (Printexc.to_string e)));
      st.ops <- st.ops + 1;
      (* Keep scheduled structure-change completions (index-term postings,
         consolidations) flowing; they run on whichever worker drains. A
         fault surfacing inside a completion is an op error, not a reason
         to kill the domain. *)
      if st.ops land 255 = 0 then (
        try ignore (Env.drain env)
        with e ->
          add_error sh
            (Printf.sprintf "worker %d: drain raised %s" w
               (Printexc.to_string e)));
      loop ()
    end
  in
  loop ()

(* ---------- coordinator ---------- *)

let pause sh nworkers =
  Mutex.lock sh.mu;
  sh.want_pause <- true;
  Condition.broadcast sh.cv;
  while sh.parked < nworkers do
    Condition.wait sh.cv sh.mu
  done;
  Mutex.unlock sh.mu

let resume sh =
  Mutex.lock sh.mu;
  sh.want_pause <- false;
  Condition.broadcast sh.cv;
  Mutex.unlock sh.mu

let stop_workers sh =
  Mutex.lock sh.mu;
  sh.stop <- true;
  sh.want_pause <- false;
  Condition.broadcast sh.cv;
  Mutex.unlock sh.mu

exception Damaged

(* Check up to [per_worker] entries of each worker's model against the
   recovered tree. Returns (checked, lost, damaged): a lookup that RAISES
   (rather than merely missing a key) means the traversal hit structurally
   broken pages — and may have left a latch held on the way out — so the
   sweep bails immediately instead of walking further into the wreck. *)
let verify_models sh states t ~per_worker ~ctx =
  let checked = ref 0 and lost = ref 0 and damaged = ref false in
  (try
     Array.iter
       (fun st ->
         let seen = ref 0 in
         try
           Hashtbl.iter
             (fun k v ->
               if !seen >= per_worker then raise Exit;
               incr seen;
               incr checked;
               let key = Workload.key_of k in
               match Blink.find t key with
               | Some v' when String.equal v v' -> ()
               | Some v' ->
                   incr lost;
                   add_error sh
                     (Printf.sprintf "%s: key %s reads %S, committed %S" ctx
                        key v' v)
               | None ->
                   incr lost;
                   add_error sh
                     (Printf.sprintf "%s: committed key %s missing" ctx key)
               | exception e ->
                   incr lost;
                   add_error sh
                     (Printf.sprintf "%s: reading committed key %s raised %s"
                        ctx key (Printexc.to_string e));
                   raise Damaged)
             st.model
         with Exit -> ())
       states
   with Damaged -> damaged := true);
  (!checked, !lost, !damaged)

(* ---------- post-mortem forensics ---------- *)

let clip n s = if String.length s <= n then s else String.sub s 0 n ^ "..."

(* When post-recovery verification fails, the interesting state is about to
   be destroyed by further running. Dump a one-line header for every page
   and the retained WAL history of each structurally-empty (slot count 0)
   page: enough to tell truncated history from a torn image from a missed
   redo. Fault injection is suspended for the autopsy. *)
let forensics log env ctl =
  Disk.Faulty.set_plan ctl Disk.Faulty.no_faults;
  let pool = Env.pool env and wal = Env.log env in
  let headers = Buffer.create 4096 in
  let damaged = ref [] in
  let misses = ref 0 in
  let pid = ref 1 in
  while !misses < 32 && !pid < 1_000_000 do
    (match Buffer_pool.pin pool !pid with
    | fr ->
        misses := 0;
        let p = fr.Buffer_pool.page in
        let count = Page.slot_count p in
        Printf.bprintf headers
          "  pid %-5d lsn %-8d kind %-2d level %-2d count %-3d side %-5d\n"
          !pid (Page.lsn p)
          (Page.kind_to_int (Page.kind p))
          (Page.level p) count (Page.side_ptr p);
        if count = 0 then damaged := !pid :: !damaged;
        Buffer_pool.unpin pool fr
    | exception Not_found ->
        incr misses;
        Printf.bprintf headers "  pid %-5d (no durable image)\n" !pid
    | exception e ->
        incr misses;
        Printf.bprintf headers "  pid %-5d unreadable: %s\n" !pid
          (Printexc.to_string e));
    incr pid
  done;
  log
    (Printf.sprintf "FORENSICS: wal first=%d ckpt=%d last=%d"
       (Log_manager.first_lsn wal)
       (Log_manager.checkpoint_lsn wal)
       (Log_manager.last_lsn wal));
  let dmg = List.filteri (fun i _ -> i < 8) (List.rev !damaged) in
  (match Log_manager.checkpoint_lsn wal with
  | l when Lsn.is_null l -> log "FORENSICS: no checkpoint on record"
  | l -> (
      match (Log_manager.read wal l).Log_record.body with
      | Log_record.End_checkpoint { begin_lsn; dpt; att } ->
          let floor =
            List.fold_left (fun acc (_, r) -> min acc r) begin_lsn dpt
          in
          log
            (Printf.sprintf
               "FORENSICS: ckpt begin=%d dpt=%d floor=%d att=%d%s" begin_lsn
               (List.length dpt) floor (List.length att)
               (String.concat ""
                  (List.filter_map
                     (fun (p, r) ->
                       if List.mem p dmg then
                         Some (Printf.sprintf " dpt[%d]=%d" p r)
                       else None)
                     dpt)))
      | _ -> log "FORENSICS: checkpoint lsn is not an End_checkpoint"
      | exception e ->
          log
            (Printf.sprintf "FORENSICS: reading checkpoint record raised %s"
               (Printexc.to_string e))));
  if dmg <> [] then begin
    let tbl = Hashtbl.create 8 in
    List.iter (fun p -> Hashtbl.replace tbl p (ref [])) dmg;
    (try
       Log_manager.iter_from wal (Log_manager.first_lsn wal) (fun r ->
           let touch p =
             match Hashtbl.find_opt tbl p with
             | Some l when List.length !l < 64 ->
                 l :=
                   clip 140 (Format.asprintf "%a" Log_record.pp r) :: !l
             | _ -> ()
           in
           match r.Log_record.body with
           | Log_record.Update { page; _ }
           | Log_record.Clr { page; _ }
           | Log_record.Page_image { page; _ } ->
               touch page
           | _ -> ())
     with e ->
       log
         (Printf.sprintf "FORENSICS: wal scan raised %s"
            (Printexc.to_string e)));
    List.iter
      (fun p ->
        let l = List.rev !(Hashtbl.find tbl p) in
        log
          (Printf.sprintf "FORENSICS: pid %d has %d retained wal records%s" p
             (List.length l)
             (if l = [] then ""
              else ":\n    " ^ String.concat "\n    " l)))
      dmg
  end;
  log ("FORENSICS: page sweep\n" ^ Buffer.contents headers)

let preload cfg env tree =
  let nd = cfg.domains in
  let value = String.make cfg.value_len 'P' in
  let batch = 512 in
  let doms =
    List.init nd (fun w ->
        Domain.spawn (fun () ->
            let mgr = Env.txns env in
            let i = ref w in
            while !i < cfg.keys do
              let txn = Txn_mgr.begin_txn mgr Txn.User in
              let stop = min cfg.keys (!i + (batch * nd)) in
              while !i < stop do
                Engine.insert ~txn (Blink_engine.inst tree)
                  ~key:(Workload.key_of !i) ~value;
                i := !i + nd
              done;
              Txn_mgr.commit mgr txn;
              ignore (Env.drain env)
            done))
  in
  List.iter Domain.join doms;
  ignore (Env.drain env)

let fresh_dir () =
  let f = Filename.temp_file "pitree_endure" "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

let remove_dir d =
  (try Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
   with Sys_error _ -> ());
  try Unix.rmdir d with Unix.Unix_error _ -> ()

let env_stats_delta (b : Env.stats) (a : Env.stats) =
  {
    Env.pages_allocated = a.Env.pages_allocated - b.Env.pages_allocated;
    pages_freed = a.Env.pages_freed - b.Env.pages_freed;
    pages_reused = a.Env.pages_reused - b.Env.pages_reused;
    completions_run = a.Env.completions_run - b.Env.completions_run;
    checkpoints = a.Env.checkpoints - b.Env.checkpoints;
    ckpt_pages_written = a.Env.ckpt_pages_written - b.Env.ckpt_pages_written;
    ckpt_records_truncated =
      a.Env.ckpt_records_truncated - b.Env.ckpt_records_truncated;
    ckpt_bytes_truncated =
      a.Env.ckpt_bytes_truncated - b.Env.ckpt_bytes_truncated;
  }

let faults_delta (b : Disk.Faulty.counters) (a : Disk.Faulty.counters) =
  {
    Disk.Faulty.torn_writes =
      a.Disk.Faulty.torn_writes - b.Disk.Faulty.torn_writes;
    transient_reads = a.Disk.Faulty.transient_reads - b.Disk.Faulty.transient_reads;
    transient_writes =
      a.Disk.Faulty.transient_writes - b.Disk.Faulty.transient_writes;
    bit_flips = a.Disk.Faulty.bit_flips - b.Disk.Faulty.bit_flips;
    fail_stops = a.Disk.Faulty.fail_stops - b.Disk.Faulty.fail_stops;
  }

(* The env the rig runs against. Exposed so tests can check the derived
   knobs without a full run. The pool shard count is pinned to the worker
   count rather than left to the [Domain.recommended_domain_count] default:
   on a 1-CPU host that default is 1 shard, silently serializing 8 workers
   through one pool mutex (the `"shards": 1` BENCH_endure.json mystery). *)
let env_config cfg ~wal_path =
  {
    Env.default_config with
    Env.page_size = cfg.page_size;
    pool_capacity = cfg.pool_capacity;
    log_path = Some wal_path;
    ckpt_log_bytes = Some cfg.ckpt_log_bytes;
    (* A deeper pin ladder with seeded jitter: fault-plan bursts make
       frames stay busy longer, and the jitter keeps a stampede of
       retrying workers from re-colliding. *)
    pool_pin_attempts = Some 30;
    pool_backoff_seed = Some (Int64.to_int cfg.seed land 0x3FFFFFFF);
    pool_shards = Some (max 8 (2 * cfg.domains));
    combine = cfg.combine;
  }

let run ?(log = fun _ -> ()) cfg =
  if cfg.keys < cfg.domains * 2 then
    invalid_arg "Endure.run: keys must be at least 2x domains";
  if cfg.domains < 1 then invalid_arg "Endure.run: domains < 1";
  let dir, ephemeral =
    match cfg.dir with
    | Some d ->
        (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        (d, false)
    | None -> (fresh_dir (), true)
  in
  let data_path = Filename.concat dir "pages.db" in
  let wal_path = Filename.concat dir "wal.log" in
  let base = Disk.file ~page_size:cfg.page_size ~path:data_path in
  let disk, ctl = Disk.Faulty.wrap ~seed:cfg.seed base in
  let env_cfg = env_config cfg ~wal_path in
  let env = Env.create ~disk env_cfg in
  let tree = Blink.create env ~name:tree_name in
  log (Printf.sprintf "preloading %d keys across %d domains..." cfg.keys
         cfg.domains);
  let t_pre = Unix.gettimeofday () in
  preload cfg env tree;
  (* Quiescent sharp checkpoint: the preload's log is truncated away, so
     the WAL-bound SLO measures steady-state growth, not the load phase. *)
  Env.checkpoint env;
  log (Printf.sprintf "preload done in %.1fs (%d nodes, height %d)"
         (Unix.gettimeofday () -. t_pre)
         (Blink.node_count tree) (Blink.height tree));
  let sh =
    {
      mu = Mutex.create ();
      cv = Condition.create ();
      want_pause = false;
      parked = 0;
      stop = false;
      tree = Atomic.make tree;
      err_mu = Mutex.create ();
      err_count = 0;
      err_sample = [];
    }
  in
  let states =
    Array.init cfg.domains (fun _ ->
        {
          model = Hashtbl.create 4096;
          hists = Array.init (Array.length kind_names) (fun _ -> Histogram.create ());
          ops = 0;
          lost = 0;
          shortfalls = 0;
        })
  in
  let env_before = Env.stats env in
  let faults_before = Disk.Faulty.counters ctl in
  if cfg.faults then Disk.Faulty.set_plan ctl steady_plan;
  let start = Unix.gettimeofday () in
  let workers =
    List.init cfg.domains (fun w ->
        Domain.spawn (fun () -> worker cfg env sh states.(w) ~w))
  in
  let recovery_ms = ref [] in
  let cycles_done = ref 0 in
  let verified = ref 0 in
  let verify_lost = ref 0 in
  let wf_failures = ref 0 in
  (* Structural damage is terminal for the run: continuing to traverse a
     broken tree measures garbage, and a lookup that raised mid-descent may
     have left a page latch held, so further ops could deadlock. On damage
     we dump forensics, stop the workers, and skip the remaining cycles —
     the wellformed/lost-write SLOs fail the run. *)
  let abort = ref false in
  let damage ctx =
    if not !abort then begin
      abort := true;
      incr wf_failures;
      log (Printf.sprintf "FORENSICS: %s: structural damage, aborting run" ctx);
      try forensics log env ctl
      with e ->
        add_error sh
          (Printf.sprintf "forensics raised %s" (Printexc.to_string e))
    end
  in
  (* One crash+recover cycle: park every worker (no op straddles the
     crash), force the log (commits already did — this also covers the
     group-commit tail), tear a fraction of the dirty pages on the way
     down like a dying power supply would, crash, recover, reopen the
     tree, and verify both the structural invariant and a sample of every
     worker's committed writes. Read-path faults stay on through recovery
     itself. *)
  let crash_cycle i =
    pause sh cfg.domains;
    Log_manager.flush_all (Env.log env);
    if cfg.faults then begin
      Disk.Faulty.set_plan ctl crash_flush_plan;
      (try Buffer_pool.flush_all (Env.pool env)
       with Disk.Disk_error _ -> ());
      Disk.Faulty.set_plan ctl steady_plan
    end;
    Env.crash env;
    let t0 = Unix.gettimeofday () in
    (match Env.recover env with
    | _report -> ()
    | exception e ->
        add_error sh
          (Printf.sprintf "cycle %d: recovery raised %s" i
             (Printexc.to_string e)));
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    recovery_ms := ms :: !recovery_ms;
    (match Blink.open_existing env ~name:tree_name with
    | None ->
        add_error sh (Printf.sprintf "cycle %d: tree missing after recovery" i);
        damage (Printf.sprintf "cycle %d" i)
    | exception e ->
        add_error sh
          (Printf.sprintf "cycle %d: reopening tree raised %s" i
             (Printexc.to_string e));
        damage (Printf.sprintf "cycle %d" i)
    | Some t ->
        Atomic.set sh.tree t;
        (try ignore (Env.drain env)
         with e ->
           add_error sh
             (Printf.sprintf "cycle %d: drain raised %s" i
                (Printexc.to_string e)));
        let wf_ok =
          match Blink.verify t with
          | rep when Wellformed.ok rep -> true
          | rep ->
              add_error sh
                (Printf.sprintf "cycle %d: wellformed: %s" i
                   (Format.asprintf "%a" Wellformed.pp_report rep));
              false
          | exception e ->
              add_error sh
                (Printf.sprintf "cycle %d: verify raised %s" i
                   (Printexc.to_string e));
              false
        in
        if not wf_ok then damage (Printf.sprintf "cycle %d" i)
        else begin
          let per_worker = max 1 (cfg.verify_sample / cfg.domains) in
          let c, l, damaged =
            verify_models sh states t ~per_worker
              ~ctx:(Printf.sprintf "cycle %d" i)
          in
          verified := !verified + c;
          verify_lost := !verify_lost + l;
          if damaged then damage (Printf.sprintf "cycle %d" i)
          else begin
            incr cycles_done;
            log
              (Printf.sprintf
                 "cycle %d: recovered in %.0fms, wellformed ok, %d/%d \
                  sampled keys ok"
                 i ms (c - l) c)
          end
        end);
    if !abort then stop_workers sh else resume sh
  in
  for i = 1 to cfg.crash_cycles do
    if not !abort then begin
      let target =
        start
        +. (cfg.seconds *. float_of_int i /. float_of_int (cfg.crash_cycles + 1))
      in
      let wait = target -. Unix.gettimeofday () in
      if wait > 0. then Unix.sleepf wait;
      crash_cycle i
    end
  done;
  if not !abort then begin
    let wait = start +. cfg.seconds -. Unix.gettimeofday () in
    if wait > 0. then Unix.sleepf wait
  end;
  stop_workers sh;
  List.iter Domain.join workers;
  let elapsed = Unix.gettimeofday () -. start in
  (* Final quiesced verification: structure plus a larger model sample.
     Skipped when the run already aborted on structural damage — the tree
     is known broken and a latch may be stuck from the raising descent. *)
  if not !abort then begin
    if cfg.faults then Disk.Faulty.set_plan ctl steady_plan;
    let t = Atomic.get sh.tree in
    (try ignore (Env.drain env)
     with e ->
       add_error sh
         (Printf.sprintf "final drain raised %s" (Printexc.to_string e)));
    let wf_ok =
      match Blink.verify t with
      | rep when Wellformed.ok rep -> true
      | rep ->
          add_error sh
            (Format.asprintf "final wellformed: %a" Wellformed.pp_report rep);
          false
      | exception e ->
          add_error sh
            (Printf.sprintf "final verify raised %s" (Printexc.to_string e));
          false
    in
    if not wf_ok then damage "final"
    else begin
      let per_worker = max 1 (4 * cfg.verify_sample / cfg.domains) in
      let c, l, damaged = verify_models sh states t ~per_worker ~ctx:"final" in
      verified := !verified + c;
      verify_lost := !verify_lost + l;
      if damaged then damage "final"
      else
        log
          (Printf.sprintf "final verify: wellformed ok, %d/%d sampled keys ok"
             (c - l) c)
    end
  end
  else log "final verification skipped: structural damage detected";
  Disk.Faulty.set_plan ctl Disk.Faulty.no_faults;
  let wal_file_bytes =
    Option.value (Log_manager.file_bytes (Env.log env)) ~default:0
  in
  let after = Stats.of_env ~faults:ctl env in
  let stats =
    {
      after with
      Stats.env = Some (env_stats_delta env_before (Env.stats env));
      faults = Some (faults_delta faults_before (Disk.Faulty.counters ctl));
    }
  in
  Env.close env;
  if ephemeral then remove_dir dir;
  (* ---- aggregate ---- *)
  let total_ops = Array.fold_left (fun a st -> a + st.ops) 0 states in
  let lost_writes =
    Array.fold_left (fun a st -> a + st.lost) 0 states + !verify_lost
  in
  let scan_shortfalls = Array.fold_left (fun a st -> a + st.shortfalls) 0 states in
  let merged =
    Array.init (Array.length kind_names) (fun k ->
        Array.fold_left
          (fun acc st -> Histogram.merge acc st.hists.(k))
          (Histogram.create ()) states)
  in
  let kinds =
    List.filter_map
      (fun k ->
        let h = merged.(k) in
        if Histogram.count h = 0 then None
        else
          Some
            {
              kind = kind_names.(k);
              count = Histogram.count h;
              mean_ns = Histogram.mean h;
              p50_ns = Histogram.percentile h 50.;
              p99_ns = Histogram.percentile h 99.;
              p999_ns = Histogram.p999 h;
              max_ns = Histogram.max_value h;
            })
      (List.init (Array.length kind_names) Fun.id)
  in
  let read_p99 =
    if Histogram.count merged.(k_read) = 0 then 0
    else Histogram.percentile merged.(k_read) 99.
  in
  let checkpoints =
    match stats.Stats.env with Some e -> e.Env.checkpoints | None -> 0
  in
  let op_errors =
    (* err_count includes lost/shortfall detail lines; op_errors counts
       only raised operations, tracked separately below. *)
    sh.err_count - lost_writes - scan_shortfalls - !wf_failures
  in
  let op_errors = max 0 op_errors in
  let mk name cmp target actual =
    {
      name;
      cmp;
      target;
      actual;
      ok = (match cmp with "<=" -> actual <= target | _ -> actual >= target);
    }
  in
  let slos =
    [
      mk "lost_committed_writes" "<=" 0. (float_of_int lost_writes);
      mk "scan_shortfalls" "<=" 0. (float_of_int scan_shortfalls);
      mk "wellformed_failures" "<=" 0. (float_of_int !wf_failures);
      mk "op_errors" "<=" 0. (float_of_int op_errors);
      mk "crash_recover_cycles" ">=" (float_of_int cfg.crash_cycles)
        (float_of_int !cycles_done);
      mk "checkpoints" ">=" 1. (float_of_int checkpoints);
      mk "p99_point_read_ns" "<=" (float_of_int cfg.slo_p99_read_ns)
        (float_of_int read_p99);
      mk "wal_file_bytes" "<=" (float_of_int cfg.slo_wal_bytes)
        (float_of_int wal_file_bytes);
    ]
    @
    (* With combining on and a write-bearing mix, the funnel must have
       carried the writes (reqs counts every non-transactional put routed
       through it — deterministic even on one CPU, unlike batch sizes). *)
    let _, upd, ins, _, rmw = mix_pcts cfg.mix in
    if cfg.combine && upd + ins + rmw > 0 then
      let creqs =
        match stats.Stats.combine with Some c -> c.Combine.reqs | None -> 0
      in
      [ mk "combine_reqs" ">=" 1. (float_of_int creqs) ]
    else []
  in
  {
    config = cfg;
    total_ops;
    elapsed_s = elapsed;
    ops_per_s = (if elapsed > 0. then float_of_int total_ops /. elapsed else 0.);
    kinds;
    stats;
    cycles_done = !cycles_done;
    recovery_ms = List.rev !recovery_ms;
    verified_keys = !verified;
    lost_writes;
    scan_shortfalls;
    wellformed_failures = !wf_failures;
    op_errors;
    wal_file_bytes;
    errors = List.rev sh.err_sample;
    slos;
    passed = List.for_all (fun s -> s.ok) slos;
  }

(* ---------- reporting ---------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let cfg = r.config in
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\"bench\": \"endure\",\n";
  Printf.bprintf b
    "\"config\": {\"keys\": %d, \"seconds\": %.1f, \"domains\": %d, \"mix\": \
     \"%s\", \"theta\": %.2f, \"value_len\": %d, \"scan_len\": %d, \
     \"page_size\": %d, \"pool_capacity\": %d, \"ckpt_log_bytes\": %d, \
     \"faults\": %b, \"crash_cycles\": %d, \"verify_sample\": %d, \"seed\": \
     %Ld},\n"
    cfg.keys cfg.seconds cfg.domains (mix_to_string cfg.mix) cfg.theta
    cfg.value_len cfg.scan_len cfg.page_size cfg.pool_capacity
    cfg.ckpt_log_bytes cfg.faults cfg.crash_cycles cfg.verify_sample cfg.seed;
  Printf.bprintf b
    "\"total_ops\": %d, \"elapsed_s\": %.2f, \"ops_per_s\": %.0f,\n"
    r.total_ops r.elapsed_s r.ops_per_s;
  Printf.bprintf b "\"op_kinds\": [";
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b
        "{\"kind\": \"%s\", \"count\": %d, \"mean_ns\": %.0f, \"p50_ns\": %d, \
         \"p99_ns\": %d, \"p999_ns\": %d, \"max_ns\": %d}"
        k.kind k.count k.mean_ns k.p50_ns k.p99_ns k.p999_ns k.max_ns)
    r.kinds;
  Printf.bprintf b "],\n";
  Printf.bprintf b "\"stats\": %s,\n" (Stats.to_json r.stats);
  Printf.bprintf b
    "\"crash_cycles\": {\"requested\": %d, \"completed\": %d, \
     \"recovery_ms\": [%s], \"verified_keys\": %d},\n"
    cfg.crash_cycles r.cycles_done
    (String.concat ", " (List.map (Printf.sprintf "%.1f") r.recovery_ms))
    r.verified_keys;
  Printf.bprintf b
    "\"lost_writes\": %d, \"scan_shortfalls\": %d, \"wellformed_failures\": \
     %d, \"op_errors\": %d, \"wal_file_bytes\": %d,\n"
    r.lost_writes r.scan_shortfalls r.wellformed_failures r.op_errors
    r.wal_file_bytes;
  Printf.bprintf b "\"errors\": [%s],\n"
    (String.concat ", "
       (List.map (fun e -> "\"" ^ json_escape e ^ "\"") r.errors));
  Printf.bprintf b "\"slos\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b
        "{\"name\": \"%s\", \"cmp\": \"%s\", \"target\": %.0f, \"actual\": \
         %.0f, \"pass\": %b}"
        s.name s.cmp s.target s.actual s.ok)
    r.slos;
  Printf.bprintf b "],\n\"passed\": %b}\n" r.passed;
  Buffer.contents b

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>endure[%s]: %d domains, %d keys, %.1fs: %d ops (%.0f ops/s), %d/%d \
     crash cycles, %d verified keys, %d lost, %d short scans, %d wf \
     failures, %d op errors, wal %d bytes@,"
    (mix_to_string r.config.mix)
    r.config.domains r.config.keys r.elapsed_s r.total_ops r.ops_per_s
    r.cycles_done r.config.crash_cycles r.verified_keys r.lost_writes
    r.scan_shortfalls r.wellformed_failures r.op_errors r.wal_file_bytes;
  List.iter
    (fun k ->
      Fmt.pf ppf "  %-6s %8d ops  mean %8.0fns  p50 %8dns  p99 %8dns  p999 \
                  %8dns@,"
        k.kind k.count k.mean_ns k.p50_ns k.p99_ns k.p999_ns)
    r.kinds;
  List.iter
    (fun s ->
      Fmt.pf ppf "  SLO %-22s %s %10.0f  actual %10.0f  %s@," s.name s.cmp
        s.target s.actual
        (if s.ok then "pass" else "FAIL"))
    r.slos;
  Fmt.pf ppf "  %a@," Stats.pp r.stats;
  Fmt.pf ppf "  %s@]" (if r.passed then "PASSED" else "FAILED")
