module Env = Pitree_env.Env
module Disk = Pitree_storage.Disk
module Buffer_pool = Pitree_storage.Buffer_pool
module Blink = Pitree_blink.Blink
module Tsb = Pitree_tsb.Tsb
module Tsb_engine = Pitree_tsb.Tsb_engine
module Hb = Pitree_hb.Hb
module Mvcc = Pitree_txn.Mvcc
module Crash_point = Pitree_util.Crash_point
module Txn = Pitree_txn.Txn
module Txn_mgr = Pitree_txn.Txn_mgr
module Log_manager = Pitree_wal.Log_manager
module Recovery = Pitree_wal.Recovery
module Wellformed = Pitree_core.Wellformed
module Rng = Pitree_util.Rng

type outcome = {
  point : string;
  after : int;
  seed : int64;
  plan : Disk.Faulty.plan;
  fired : bool;
  torn_injected : bool;
  torn_pages : int;
  retried_reads : int;
  errors : string list;
}

type summary = {
  runs : int;
  fired : int;
  torn_recoveries : int;
  retried_reads : int;
  failures : outcome list;
}

let pp_plan ppf (p : Disk.Faulty.plan) =
  Format.fprintf ppf "{tr=%.2f tw=%.2f bf=%.3f torn=%.2f fs=%s}"
    p.Disk.Faulty.transient_read p.Disk.Faulty.transient_write
    p.Disk.Faulty.bit_flip p.Disk.Faulty.torn_write
    (match p.Disk.Faulty.fail_stop_after with
    | None -> "-"
    | Some n -> string_of_int n)

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>point=%s after=%d seed=%Ld plan=%a fired=%b torn_injected=%b \
     torn_pages=%d retried_reads=%d %s@]"
    o.point o.after o.seed pp_plan o.plan o.fired o.torn_injected o.torn_pages
    o.retried_reads
    (match o.errors with
    | [] -> "ok"
    | es -> "FAIL: " ^ String.concat "; " es)

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>chaos: runs=%d crashes_fired=%d torn_recoveries=%d \
     retried_reads=%d failures=%d%a@]"
    s.runs s.fired s.torn_recoveries s.retried_reads (List.length s.failures)
    (fun ppf fs ->
      List.iter (fun o -> Format.fprintf ppf "@,  %a" pp_outcome o) fs)
    s.failures

let ok s = s.failures = []

(* The meta page (catalog + allocation state) is formatted before the
   initial checkpoint, so its pre-checkpoint history is not in the log:
   a torn image of it cannot be rebuilt by redo. Real systems ditto —
   they keep such pages in duplexed/battery-backed storage. We exempt it
   from torn-write injection. *)
let meta_pid = 1

let cfg =
  {
    Env.default_config with
    page_size = 256;
    (* Small pool: evictions during the workload push reads and writes
       through the faulty disk instead of staying cache-resident. *)
    pool_capacity = 64;
    page_oriented_undo = false;
    consolidation = true;
    (* Aggressive fuzzy checkpointing: the log-bytes trigger fires every
       few dozen operations, so the ckpt.* crash points land inside the
       guarded workload (the trigger runs on the committing thread) and
       every run exercises recovery-from-a-checkpoint rather than
       recovery-from-log-start. *)
    ckpt_log_bytes = Some 16_384;
  }

(* --- per-run machinery shared by the three engine runners --- *)

type 'tree run_ctx = {
  env : Env.t;
  ctl : Disk.Faulty.ctl;
  rng : Rng.t;
  errs : string list ref;
  mutable fired : bool;
  mutable dead : bool;  (* device fail-stopped during the workload *)
}

let err ctx fmt = Printf.ksprintf (fun s -> ctx.errs := s :: !(ctx.errs)) fmt

let opt_str = function None -> "<none>" | Some s -> s

(* Run [workload] until the armed point fires, the device dies, or it
   completes. *)
let guarded ctx workload =
  try workload () with
  | Crash_point.Crash_requested _ -> ctx.fired <- true
  | Disk.Disk_error { transient = false; _ } -> ctx.dead <- true

(* The operation the workload was inside when the crash fired is in-doubt:
   engines commit the user transaction and then drain pending structure
   changes before returning, so a crash raised during that drain escapes
   the call after the commit — the model never saw an op the database
   legitimately remembers (the classic commit-vs-lost-acknowledgment
   window). Verification accepts either state for that one key. *)
let in_doubt inflight k =
  match !inflight with Some k' -> k' = k | None -> false

(* Flush the log (making everything so far — including any open loser
   transaction — durable), optionally tear one dirty page on its way out,
   then power-fail and recover with the plan's read faults still active. *)
let crash_and_recover ctx ~plan ~inject_torn =
  Crash_point.disarm_all ();
  Log_manager.flush_all (Env.log ctx.env);
  let torn_injected =
    if inject_torn && not ctx.dead then begin
      Disk.Faulty.set_plan ctx.ctl
        {
          Disk.Faulty.no_faults with
          Disk.Faulty.torn_write = 1.0;
          protected_pids = [ meta_pid ];
        };
      let before = (Disk.Faulty.counters ctx.ctl).Disk.Faulty.torn_writes in
      (* A power failure's cache write-back does not coordinate with the
         application: the crash that armed this run may have unwound with
         page latches still held, so a latched flush would self-deadlock
         — and a clean flush is the wrong model anyway. [crash_flush]
         writes the dirty frames as-is, latch-free. *)
      Buffer_pool.crash_flush (Env.pool ctx.env);
      (Disk.Faulty.counters ctx.ctl).Disk.Faulty.torn_writes > before
    end
    else false
  in
  (* Read-side faults stay on through restart (recovery must absorb them);
     write-side and fail-stop faults are lifted — the replacement device
     spins, the platters keep their scars. *)
  Disk.Faulty.set_plan ctx.ctl
    {
      Disk.Faulty.no_faults with
      Disk.Faulty.transient_read = plan.Disk.Faulty.transient_read;
      bit_flip = plan.Disk.Faulty.bit_flip;
    };
  let workload_retried =
    (Buffer_pool.stats (Env.pool ctx.env)).Buffer_pool.retried_reads
  in
  Env.crash ctx.env;
  let report = Env.recover ctx.env in
  Disk.Faulty.set_plan ctx.ctl Disk.Faulty.no_faults;
  (report, torn_injected, workload_retried)

let finish ctx ~point ~after ~seed ~plan ~report ~torn_injected
    ~workload_retried =
  let final_retried =
    (Buffer_pool.stats (Env.pool ctx.env)).Buffer_pool.retried_reads
  in
  {
    point;
    after;
    seed;
    plan;
    fired = ctx.fired;
    torn_injected;
    torn_pages = report.Recovery.torn_pages;
    retried_reads = workload_retried + final_retried;
    errors = List.rev !(ctx.errs);
  }

let mk_ctx ?(config = cfg) ~seed () =
  Crash_point.disarm_all ();
  Crash_point.reset_counts ();
  let rng = Rng.create seed in
  let base = Disk.in_memory ~page_size:config.Env.page_size in
  let disk, ctl = Disk.Faulty.wrap ~seed:(Rng.int64 rng) base in
  let env = Env.create ~disk config in
  { env; ctl; rng; errs = ref []; fired = false; dead = false }

(* --- B-link runner: full model (inserts, deletes, reads), plus a
   durable-but-uncommitted transaction that recovery must roll back. --- *)

let run_blink ~point ~after ~seed ~ops ~plan ~inject_torn =
  let ctx = mk_ctx ~seed () in
  let t = Blink.create ctx.env ~name:"chaos" in
  let present = Hashtbl.create 512 in
  let deleted = Hashtbl.create 128 in
  let key i = Printf.sprintf "key%06d" i in
  (* Durable-but-uncommitted user transaction, left open across the crash:
     recovery must roll it back in full. *)
  let mgr = Env.txns ctx.env in
  let unc = Txn_mgr.begin_txn mgr Txn.User in
  let unc_keys = List.init 24 (fun i -> Printf.sprintf "unc%04d" i) in
  List.iter (fun k -> Blink.insert ~txn:unc t ~key:k ~value:"doomed") unc_keys;
  let inflight = ref None in
  Disk.Faulty.set_plan ctx.ctl plan;
  Crash_point.arm point ~after;
  guarded ctx (fun () ->
      for j = 0 to ops - 1 do
        let i = Rng.int ctx.rng 900 in
        let r = Rng.int ctx.rng 100 in
        if r < 70 then begin
          let v = Printf.sprintf "val%06d.%d" i j in
          inflight := Some (key i);
          Blink.insert t ~key:(key i) ~value:v;
          Hashtbl.replace present (key i) v;
          Hashtbl.remove deleted (key i);
          inflight := None
        end
        else if r < 85 then begin
          inflight := Some (key i);
          let was = Blink.delete t (key i) in
          if was <> Hashtbl.mem present (key i) then
            err ctx "delete %s returned %b, model says %b" (key i) was
              (Hashtbl.mem present (key i));
          Hashtbl.remove present (key i);
          Hashtbl.replace deleted (key i) ();
          inflight := None
        end
        else begin
          let got = Blink.find t (key i) in
          let want = Hashtbl.find_opt present (key i) in
          if got <> want then
            err ctx "find %s saw %s, model %s" (key i) (opt_str got)
              (opt_str want)
        end;
        if j mod 64 = 63 then ignore (Env.drain ctx.env);
        if j mod 96 = 95 then begin
          (* Delete a contiguous band of keys to empty whole leaves: this
             is what makes the blink.merge.* and free.* crash points
             reachable from the sweep — consolidation frees the emptied
             leaves, and later splits re-use them off the free list. *)
          let b = Rng.int ctx.rng 800 in
          for i = b to b + 59 do
            inflight := Some (key i);
            ignore (Blink.delete t (key i) : bool);
            Hashtbl.remove present (key i);
            Hashtbl.replace deleted (key i) ();
            inflight := None
          done
        end
      done);
  let report, torn_injected, workload_retried =
    crash_and_recover ctx ~plan ~inject_torn
  in
  (match Blink.open_existing ctx.env ~name:"chaos" with
  | None -> err ctx "tree vanished from catalog after recovery"
  | Some t ->
      let wf tag =
        let r = Blink.verify t in
        if not (Wellformed.ok r) then
          err ctx "%s: not well-formed: %s" tag
            (Format.asprintf "%a" Wellformed.pp_report r)
      in
      wf "post-recovery";
      Hashtbl.iter
        (fun k v ->
          if not (in_doubt inflight k) then
            match Blink.find t k with
            | Some v' when v' = v -> ()
            | got ->
                err ctx "committed %s: expected %s, got %s" k v (opt_str got))
        present;
      Hashtbl.iter
        (fun k () ->
          if not (in_doubt inflight k) then
            match Blink.find t k with
            | None -> ()
            | Some _ -> err ctx "committed delete of %s resurrected" k)
        deleted;
      List.iter
        (fun k ->
          match Blink.find t k with
          | None -> ()
          | Some _ -> err ctx "uncommitted key %s survived rollback" k)
        unc_keys;
      (* Traversals re-discover interrupted structure changes; drain must
         complete them all. *)
      Hashtbl.iter (fun k _ -> ignore (Blink.find t k)) present;
      ignore (Env.drain ctx.env);
      if Env.pending ctx.env <> 0 then
        err ctx "completion queue not empty after drain";
      wf "post-drain";
      for i = 0 to 19 do
        let k = Printf.sprintf "fresh%04d" i in
        Blink.insert t ~key:k ~value:"post-crash";
        match Blink.find t k with
        | Some "post-crash" -> ()
        | got -> err ctx "post-crash insert %s read back %s" k (opt_str got)
      done;
      ignore (Env.drain ctx.env);
      wf "post-insert");
  finish ctx ~point ~after ~seed ~plan ~report ~torn_injected
    ~workload_retried

(* --- TSB runner: versioned puts/removes over a small key space (forcing
   time splits), plus an uncommitted transaction. --- *)

let run_tsb ~point ~after ~seed ~ops ~plan ~inject_torn =
  let ctx = mk_ctx ~seed () in
  let t = Tsb.create ctx.env ~name:"chaos" in
  let current = Hashtbl.create 256 in
  let tombstoned = Hashtbl.create 64 in
  let key i = Printf.sprintf "tk%04d" i in
  let mgr = Env.txns ctx.env in
  let unc = Txn_mgr.begin_txn mgr Txn.User in
  let unc_keys = List.init 12 (fun i -> Printf.sprintf "unc%04d" i) in
  List.iter
    (fun k -> ignore (Tsb.put ~txn:unc t ~key:k ~value:"doomed"))
    unc_keys;
  let inflight = ref None in
  Disk.Faulty.set_plan ctx.ctl plan;
  Crash_point.arm point ~after;
  guarded ctx (fun () ->
      for j = 0 to ops - 1 do
        let i = Rng.int ctx.rng 120 in
        let r = Rng.int ctx.rng 100 in
        if r < 70 then begin
          let v = Printf.sprintf "v%06d.%d" i j in
          inflight := Some (key i);
          ignore (Tsb.put t ~key:(key i) ~value:v);
          Hashtbl.replace current (key i) v;
          Hashtbl.remove tombstoned (key i);
          inflight := None
        end
        else if r < 85 then begin
          inflight := Some (key i);
          ignore (Tsb.remove t (key i));
          Hashtbl.remove current (key i);
          Hashtbl.replace tombstoned (key i) ();
          inflight := None
        end
        else begin
          let got = Tsb.get t (key i) in
          let want = Hashtbl.find_opt current (key i) in
          if got <> want then
            err ctx "get %s saw %s, model %s" (key i) (opt_str got)
              (opt_str want)
        end;
        if j mod 64 = 63 then ignore (Env.drain ctx.env);
        if j mod 128 = 127 then begin
          (* Periodic garbage collection makes the tsb.drain.* and
             tsb.merge.* crash points reachable from the sweep. The
             workload is single-threaded, so gc's quiesced-writers
             contract holds trivially; gc never changes current-time
             reads, so the model stays valid across the pulse. *)
          Tsb.set_horizon t (Tsb.now t);
          ignore (Tsb.gc t : int)
        end
      done);
  let report, torn_injected, workload_retried =
    crash_and_recover ctx ~plan ~inject_torn
  in
  (match Tsb.open_existing ctx.env ~name:"chaos" with
  | None -> err ctx "tree vanished from catalog after recovery"
  | Some t ->
      let wf tag =
        let r = Tsb.verify t in
        if not (Wellformed.ok r) then
          err ctx "%s: not well-formed: %s" tag
            (Format.asprintf "%a" Wellformed.pp_report r)
      in
      wf "post-recovery";
      Hashtbl.iter
        (fun k v ->
          if not (in_doubt inflight k) then
            match Tsb.get t k with
            | Some v' when v' = v -> ()
            | got ->
                err ctx "committed %s: expected %s, got %s" k v (opt_str got))
        current;
      Hashtbl.iter
        (fun k () ->
          if not (in_doubt inflight k) then
            match Tsb.get t k with
            | None -> ()
            | Some _ -> err ctx "committed tombstone of %s resurrected" k)
        tombstoned;
      List.iter
        (fun k ->
          match Tsb.get t k with
          | None -> ()
          | Some _ -> err ctx "uncommitted key %s survived rollback" k)
        unc_keys;
      Hashtbl.iter (fun k _ -> ignore (Tsb.get t k)) current;
      ignore (Env.drain ctx.env);
      if Env.pending ctx.env <> 0 then
        err ctx "completion queue not empty after drain";
      wf "post-drain";
      (* A gc pass over the recovered tree must also leave it well-formed,
         including after a crash landed mid-drain or mid-merge above. *)
      Tsb.set_horizon t (Tsb.now t);
      ignore (Tsb.gc t : int);
      wf "post-gc";
      ignore (Tsb.put t ~key:"fresh" ~value:"post-crash");
      (match Tsb.get t "fresh" with
      | Some "post-crash" -> ()
      | got -> err ctx "post-crash put read back %s" (opt_str got));
      wf "post-insert");
  finish ctx ~point ~after ~seed ~plan ~report ~torn_injected
    ~workload_retried

(* --- MVCC runner: snapshot-isolation transactions over the TSB tree.
   Commits funnel through [Mvcc.commit]'s validate/allocate/log window,
   so the mvcc.commit.* crash points fire from here. All three points
   precede the transaction manager's commit record, so the transaction
   in flight at the crash is a loser: recovery must roll back its whole
   buffered batch (no torn subset), while every acknowledged commit
   keeps all of its writes and the rebuilt allocator stays past every
   acknowledged timestamp. *)

let si_cfg = { cfg with Env.si_txns = true; consolidation = false }

let run_mvcc ~point ~after ~seed ~ops ~plan ~inject_torn =
  let ctx = mk_ctx ~config:si_cfg ~seed () in
  let t = Tsb.create ctx.env ~name:"chaos" in
  let key i = Printf.sprintf "mk%04d" i in
  let mgr = Env.txns ctx.env in
  (* Committed state per the model; [committing] holds the write set of
     the transaction inside [Mvcc.commit] when the crash fires. *)
  let current : (string, string) Hashtbl.t = Hashtbl.create 256 in
  let committing : (string * string option) list ref = ref [] in
  let max_ts = ref 0 in
  for i = 0 to 7 do
    ignore (Tsb.put t ~key:(key i) ~value:"base");
    Hashtbl.replace current (key i) "base"
  done;
  (* A snapshot pinned before the crash: recovery must invalidate it. *)
  let straddler = Mvcc.begin_snapshot mgr in
  ignore (Tsb_engine.find ~txn:straddler t (key 0));
  let apply writes =
    List.iter
      (fun (k, v) ->
        match v with
        | Some v -> Hashtbl.replace current k v
        | None -> Hashtbl.remove current k)
      writes
  in
  let commit_model txn writes =
    committing := writes;
    let r = Mvcc.commit mgr txn in
    committing := [];
    (match r with
    | Some ts ->
        if ts <= !max_ts then
          err ctx "commit ts %d not past previous max %d" ts !max_ts;
        max_ts := ts;
        apply writes
    | None -> ());
    r
  in
  Disk.Faulty.set_plan ctx.ctl plan;
  Crash_point.arm point ~after;
  guarded ctx (fun () ->
      let txns = max 1 (ops / 4) in
      for j = 0 to txns - 1 do
        if Rng.int ctx.rng 4 = 0 then begin
          (* First-committer-wins pair: both snapshots predate either
             commit and write one shared key, so the second commit must
             abort with [Write_conflict] and its writes never land. *)
          let shared = key (Rng.int ctx.rng 120) in
          let va = Printf.sprintf "a%d" j and vb = Printf.sprintf "b%d" j in
          let a = Mvcc.begin_snapshot mgr in
          let b = Mvcc.begin_snapshot mgr in
          Tsb_engine.insert ~txn:a t ~key:shared ~value:va;
          Tsb_engine.insert ~txn:b t ~key:shared ~value:vb;
          ignore (commit_model a [ (shared, Some va) ]);
          match commit_model b [ (shared, Some vb) ] with
          | _ -> err ctx "rival commit of %s won against first committer" shared
          | exception Mvcc.Write_conflict _ -> committing := []
        end
        else begin
          let txn = Mvcc.begin_snapshot mgr in
          let snap = Hashtbl.copy current in
          let mine : (string, string option) Hashtbl.t = Hashtbl.create 8 in
          for _ = 1 to 2 + Rng.int ctx.rng 4 do
            let k = key (Rng.int ctx.rng 120) in
            let r = Rng.int ctx.rng 100 in
            if r < 45 then begin
              let v = Printf.sprintf "v%d.%d" j (Rng.int ctx.rng 1000) in
              Tsb_engine.insert ~txn t ~key:k ~value:v;
              Hashtbl.replace mine k (Some v)
            end
            else if r < 85 then begin
              let want =
                match Hashtbl.find_opt mine k with
                | Some v -> v
                | None -> Hashtbl.find_opt snap k
              in
              let got = Tsb_engine.find ~txn t k in
              if got <> want then
                err ctx "txn read %s saw %s, snapshot holds %s" k
                  (opt_str got) (opt_str want)
            end
            else begin
              let live =
                match Hashtbl.find_opt mine k with
                | Some v -> v <> None
                | None -> Hashtbl.mem snap k
              in
              let was = Tsb_engine.delete ~txn t k in
              if was <> live then
                err ctx "txn delete %s returned %b, snapshot says %b" k was
                  live;
              if live then Hashtbl.replace mine k None
            end
          done;
          let writes = Hashtbl.fold (fun k v acc -> (k, v) :: acc) mine [] in
          match commit_model txn writes with
          | _ -> ()
          | exception Mvcc.Write_conflict _ ->
              committing := [];
              err ctx "conflict with no rival committer (txn %d)" j
        end;
        if j mod 16 = 15 then ignore (Env.drain ctx.env)
      done);
  let report, torn_injected, workload_retried =
    crash_and_recover ctx ~plan ~inject_torn
  in
  (match Tsb.open_existing ctx.env ~name:"chaos" with
  | None -> err ctx "tree vanished from catalog after recovery"
  | Some t ->
      let wf tag =
        let r = Tsb.verify t in
        if not (Wellformed.ok r) then
          err ctx "%s: not well-formed: %s" tag
            (Format.asprintf "%a" Wellformed.pp_report r)
      in
      wf "post-recovery";
      (* The crash fired before the in-flight commit's transaction-manager
         record, so its whole batch rolls back — unless the device itself
         died mid-call, which loses the acknowledgment and leaves those
         keys in-doubt. *)
      let doubted k = ctx.dead && List.mem_assoc k !committing in
      Hashtbl.iter
        (fun k v ->
          if not (doubted k) then
            match Tsb.get t k with
            | Some v' when v' = v -> ()
            | got ->
                err ctx "committed %s: expected %s, got %s" k v (opt_str got))
        current;
      List.iter
        (fun (k, _) ->
          if (not ctx.dead) && not (Hashtbl.mem current k) then
            match Tsb.get t k with
            | None -> ()
            | Some _ -> err ctx "crashed commit leaked key %s" k)
        !committing;
      (* The pre-crash snapshot's pin did not survive the restart. *)
      (match Tsb_engine.find ~txn:straddler t (key 0) with
      | _ -> err ctx "pre-crash snapshot survived recovery"
      | exception Mvcc.Stale_snapshot -> ());
      (* The rebuilt allocator resumes past every acknowledged commit. *)
      let txn = Mvcc.begin_snapshot (Env.txns ctx.env) in
      Tsb_engine.insert ~txn t ~key:"fresh" ~value:"post-crash";
      (match Mvcc.commit (Env.txns ctx.env) txn with
      | Some ts when ts > !max_ts -> ()
      | Some ts ->
          err ctx "recovered allocator reused ts %d (max acknowledged %d)" ts
            !max_ts
      | None -> err ctx "post-crash SI commit returned no timestamp");
      (match Tsb.get t "fresh" with
      | Some "post-crash" -> ()
      | got -> err ctx "post-crash SI commit read back %s" (opt_str got));
      ignore (Env.drain ctx.env);
      if Env.pending ctx.env <> 0 then
        err ctx "completion queue not empty after drain";
      wf "post-drain");
  finish ctx ~point ~after ~seed ~plan ~report ~torn_injected
    ~workload_retried

(* --- hB runner: multiattribute points in the unit square. The engine
   auto-commits every operation (no [?txn]), so there is no uncommitted
   phase here; rollback of losers is covered by the other two engines. --- *)

let run_hb ~point ~after ~seed ~ops ~plan ~inject_torn =
  let ctx = mk_ctx ~seed () in
  let t = Hb.create ctx.env ~name:"chaos" ~dims:2 in
  let present : (float array, string) Hashtbl.t = Hashtbl.create 512 in
  let live = ref [] in
  let inflight = ref None in
  Disk.Faulty.set_plan ctx.ctl plan;
  Crash_point.arm point ~after;
  guarded ctx (fun () ->
      for j = 0 to ops - 1 do
        let r = Rng.int ctx.rng 100 in
        if r < 75 || !live = [] then begin
          let p = [| Rng.float ctx.rng 1.0; Rng.float ctx.rng 1.0 |] in
          let v = Printf.sprintf "p%d" j in
          inflight := Some p;
          Hb.insert t ~point:p ~value:v;
          Hashtbl.replace present p v;
          live := p :: !live;
          inflight := None
        end
        else if r < 85 then begin
          let n = List.length !live in
          let p = List.nth !live (Rng.int ctx.rng n) in
          inflight := Some p;
          let was = Hb.delete t p in
          if was <> Hashtbl.mem present p then
            err ctx "hb delete returned %b, model says %b" was
              (Hashtbl.mem present p);
          Hashtbl.remove present p;
          live := List.filter (fun q -> q != p) !live;
          inflight := None
        end
        else begin
          let n = List.length !live in
          let p = List.nth !live (Rng.int ctx.rng n) in
          let got = Hb.find t p in
          let want = Hashtbl.find_opt present p in
          if got <> want then
            err ctx "hb find saw %s, model %s" (opt_str got) (opt_str want)
        end;
        if j mod 64 = 63 then ignore (Env.drain ctx.env)
      done);
  let report, torn_injected, workload_retried =
    crash_and_recover ctx ~plan ~inject_torn
  in
  (match Hb.open_existing ctx.env ~name:"chaos" with
  | None -> err ctx "tree vanished from catalog after recovery"
  | Some t ->
      let wf tag =
        let r = Hb.verify t in
        if not (Wellformed.ok r) then
          err ctx "%s: not well-formed: %s" tag
            (Format.asprintf "%a" Wellformed.pp_report r)
      in
      wf "post-recovery";
      Hashtbl.iter
        (fun p v ->
          if not (in_doubt inflight p) then
            match Hb.find t p with
            | Some v' when v' = v -> ()
            | got ->
                err ctx "committed point (%f,%f): expected %s, got %s" p.(0)
                  p.(1) v (opt_str got))
        present;
      Hashtbl.iter (fun p _ -> ignore (Hb.find t p)) present;
      ignore (Env.drain ctx.env);
      if Env.pending ctx.env <> 0 then
        err ctx "completion queue not empty after drain";
      wf "post-drain";
      let p = [| 0.123; 0.456 |] in
      Hb.insert t ~point:p ~value:"post-crash";
      (match Hb.find t p with
      | Some "post-crash" -> ()
      | got -> err ctx "post-crash insert read back %s" (opt_str got));
      wf "post-insert");
  finish ctx ~point ~after ~seed ~plan ~report ~torn_injected
    ~workload_retried

(* --- dispatch + drivers --- *)

let engine_of_point point =
  match String.index_opt point '.' with
  | Some i -> String.sub point 0 i
  | None -> point

(* The registry is global and other users (tests, future engines) may add
   points we have no runner for; enumerate only the ones we can drive.
   "wal" points (the group-commit pipeline, e.g. the window between a batch
   fsync and its waiter wakeup) fire from inside any workload that forces
   the log — buffer-pool evictions under the small chaos pool do — so the
   B-link runner drives them. "ckpt" points (the fuzzy-checkpoint protocol:
   after the Begin_checkpoint fence, after the forced End_checkpoint, after
   truncation) fire from the log-bytes trigger that [cfg] arms on every
   user commit, so the B-link runner drives them too. "free" points (the
   meta-page free list: after a freed page is re-used, after a page is
   pushed) fire from any engine that both frees and allocates pages; the
   B-link runner's delete-heavy mix with consolidation on does both, so
   it drives them. The "combine" point
   (after a write-combining batch is applied, before its transaction
   commits) fires from any non-txn insert since [cfg] leaves combining at
   its default-on; a crash there must roll the whole batch back — no
   request was acked, so the model treats the in-flight key as in-doubt
   and recovery must leave no torn subset of the batch behind. The
   "mvcc" points (the snapshot-isolation commit window: after
   first-committer-wins validation, after the timestamp allocation,
   after the Commit_ts log record) fire from the dedicated SI runner,
   which drives buffered transactions through [Mvcc.commit]. *)
let known_points () =
  List.filter
    (fun p ->
      match engine_of_point p with
      | "blink" | "tsb" | "hb" | "wal" | "ckpt" | "combine" | "free" | "mvcc"
        ->
          true
      | _ -> false)
    (Crash_point.all_names ())

let run_one ~point ~after ~seed ~ops ~plan ~inject_torn =
  let runner =
    match engine_of_point point with
    | "blink" | "wal" | "ckpt" | "combine" | "free" -> Some run_blink
    | "tsb" -> Some run_tsb
    | "hb" -> Some run_hb
    | "mvcc" -> Some run_mvcc
    | _ -> None
  in
  match runner with
  | Some run -> Some (run ~point ~after ~seed ~ops ~plan ~inject_torn)
  | None -> None

let empty_summary =
  { runs = 0; fired = 0; torn_recoveries = 0; retried_reads = 0; failures = [] }

let add s (o : outcome) =
  {
    runs = s.runs + 1;
    fired = (s.fired + if o.fired then 1 else 0);
    torn_recoveries = (s.torn_recoveries + if o.torn_pages > 0 then 1 else 0);
    retried_reads = s.retried_reads + o.retried_reads;
    failures = (if o.errors = [] then s.failures else s.failures @ [ o ]);
  }

let trace_outcome trace o = trace (Format.asprintf "%a" pp_outcome o)

let sweep ?(trace = fun _ -> ()) ?(hits = [ 0; 1; 2 ]) ?(ops = 500)
    ?(seed = 1L) () =
  let points = known_points () in
  let rng = Rng.create seed in
  List.fold_left
    (fun acc point ->
      List.fold_left
        (fun acc after ->
          match
            run_one ~point ~after ~seed:(Rng.int64 rng) ~ops
              ~plan:Disk.Faulty.no_faults ~inject_torn:false
          with
          | None ->
              trace (Printf.sprintf "skip %s: no engine runner" point);
              acc
          | Some o ->
              trace_outcome trace o;
              add acc o)
        acc hits)
    empty_summary points

let random_plan rng =
  {
    Disk.Faulty.no_faults with
    Disk.Faulty.transient_read = Rng.float rng 0.3;
    transient_write = Rng.float rng 0.1;
    bit_flip = Rng.float rng 0.05;
    fail_stop_after =
      (if Rng.int rng 4 = 0 then Some (500 + Rng.int rng 4000) else None);
  }

let random_runs ?(trace = fun _ -> ()) ?(ops = 500) ~iters ~seed () =
  let rng = Rng.create seed in
  let points = Array.of_list (known_points ()) in
  if Array.length points = 0 then empty_summary
  else
    let rec go acc i =
      if i >= iters then acc
      else
        let point = points.(Rng.int rng (Array.length points)) in
        let after = Rng.int rng 5 in
        let run_seed = Rng.int64 rng in
        let plan = random_plan rng in
        let inject_torn = Rng.bool rng in
        match run_one ~point ~after ~seed:run_seed ~ops ~plan ~inject_torn with
        | None -> go acc (i + 1)
        | Some o ->
            trace_outcome trace o;
            go (add acc o) (i + 1)
    in
    go empty_summary 0
