(** Churn rig: alternating insert/delete cycles over all three engines,
    proving that symmetric node deletion and online merge keep the file
    bounded.

    A fixed key population is churned by a rotating band: delete [band]
    contiguous keys — emptying whole leaves, which consolidation merges
    away onto the free list — then re-insert them, whose splits must be
    served off the free list. The tsb engine expires and collects
    ({!Pitree_tsb.Tsb.gc}) between the halves of every band. Two gates
    judge the steady state (after the initial population plus one full
    rotation of warm-up): the file's final page count must stay within
    {!extent_gate} times the live-page high-water mark, and at least
    {!reuse_gate} of post-warm-up allocations must come from the free
    list. *)

type config = {
  cycles : int;  (** insert/delete pairs per engine *)
  keys : int;  (** fixed key population *)
  band : int;  (** contiguous keys deleted/re-inserted per rotation *)
  value_bytes : int;
  page_size : int;
  pool_capacity : int;
}

val default_config : config
(** 1M cycles over 4096 keys, 256-key bands, 512-byte pages. *)

val extent_gate : float
(** Final extent must be <= this multiple of the live-page high-water
    mark (1.5). *)

val reuse_gate : float
(** At least this fraction of post-warm-up allocations must pop the
    free list (0.8). *)

type run = {
  r_engine : string;
  r_cycles : int;
  r_elapsed_s : float;
  r_cycles_per_s : float;
  r_used_hwm : int;  (** high-water mark of extent - free-list length *)
  r_extent_hwm : int;
  r_extent_final : int;
  r_free_final : int;
  r_post_allocated : int;  (** allocations after warm-up *)
  r_post_reused : int;  (** of which served by the free list *)
  r_reuse_ratio : float;
  r_pages_freed : int;
  r_extent_ratio : float;  (** extent_final / used_hwm *)
  r_bounded : bool;
  r_reuse_ok : bool;
  r_well_formed : bool;
}

type result = { runs : run list; passed : bool }

val ok : run -> bool
(** Both gates plus well-formedness. *)

val run : ?log:(string -> unit) -> config -> result
(** Churn blink, tsb and hb in turn; [log] gets one summary line per
    engine. *)

val to_json : config -> result -> string
(** The BENCH_churn.json payload: config, gates and per-engine runs. *)
