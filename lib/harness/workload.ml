module Rng = Pitree_util.Rng
module Zipf_s = Pitree_util.Zipf

type op =
  | Find of string
  | Insert of string * string
  | Delete of string
  | Scan of string * int
  | Rmw of string * string

type dist = Uniform | Zipf of float | Sequential

type spec = {
  key_space : int;
  value_len : int;
  read_pct : int;
  insert_pct : int;
  delete_pct : int;
  scan_pct : int;
  rmw_pct : int;
  scan_len : int;
  dist : dist;
}

let spec ?(key_space = 100_000) ?(value_len = 16) ?(read_pct = 100)
    ?(insert_pct = 0) ?(delete_pct = 0) ?(scan_pct = 0) ?(rmw_pct = 0)
    ?(scan_len = 50) ?(dist = Uniform) () =
  if read_pct + insert_pct + delete_pct + scan_pct + rmw_pct <> 100 then
    invalid_arg "Workload.spec: mix must sum to 100";
  if scan_len < 1 then invalid_arg "Workload.spec: scan_len < 1";
  {
    key_space;
    value_len;
    read_pct;
    insert_pct;
    delete_pct;
    scan_pct;
    rmw_pct;
    scan_len;
    dist;
  }

let key_of i = Printf.sprintf "k%010d" i

type gen = {
  spec : spec;
  rng : Rng.t;
  zipf : Zipf_s.t option;
  mutable seq : int;  (* next sequential key, strided by worker *)
  stride : int;
}

let gen spec ~seed ~worker ~workers =
  let rng = Rng.create (Int64.add seed (Int64.of_int (worker * 7919))) in
  let zipf =
    match spec.dist with
    | Zipf theta -> Some (Zipf_s.create ~n:spec.key_space ~theta)
    | Uniform | Sequential -> None
  in
  { spec; rng; zipf; seq = worker; stride = workers }

let pick_key g =
  match g.spec.dist with
  | Uniform -> Rng.int g.rng g.spec.key_space
  | Zipf _ -> Zipf_s.sample (Option.get g.zipf) g.rng
  | Sequential ->
      let k = g.seq in
      g.seq <- g.seq + g.stride;
      k

let value g = String.make g.spec.value_len (Char.chr (65 + Rng.int g.rng 26))

let next g =
  let s = g.spec in
  let r = Rng.int g.rng 100 in
  let k = key_of (pick_key g) in
  if r < s.read_pct then Find k
  else if r < s.read_pct + s.insert_pct then Insert (k, value g)
  else if r < s.read_pct + s.insert_pct + s.delete_pct then Delete k
  else if r < s.read_pct + s.insert_pct + s.delete_pct + s.scan_pct then
    Scan (k, s.scan_len)
  else Rmw (k, value g)
