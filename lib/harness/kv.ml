module type S = sig
  type t

  val engine_name : string
  val insert : t -> key:string -> value:string -> unit
  val delete : t -> string -> bool
  val find : t -> string -> string option
  val scan : t -> low:string -> n:int -> int
end

type instance = Inst : (module S with type t = 'a) * 'a -> instance

let name (Inst ((module M), _)) = M.engine_name
let insert (Inst ((module M), t)) ~key ~value = M.insert t ~key ~value
let delete (Inst ((module M), t)) key = M.delete t key
let find (Inst ((module M), t)) key = M.find t key
let scan (Inst ((module M), t)) ~low ~n = M.scan t ~low ~n

module Blink_kv = struct
  type t = Pitree_blink.Blink.t

  let engine_name = "pi-tree (b-link)"
  let insert t ~key ~value = Pitree_blink.Blink.insert t ~key ~value
  let delete t k = Pitree_blink.Blink.delete t k
  let find = Pitree_blink.Blink.find

  let scan t ~low ~n =
    let c = Pitree_blink.Cursor.seek t low in
    let count =
      Pitree_blink.Cursor.fold_until c ~limit:n ~init:0 ~f:(fun acc _ _ ->
          acc + 1)
    in
    Pitree_blink.Cursor.close c;
    count
end

(* The baselines expose no ordered iteration; [scan] reports 0 records so
   mixed workloads still run against them, with scans as no-ops. *)
module Coupling_kv = struct
  type t = Pitree_baseline.Bt_coupling.t

  let engine_name = "lock-coupling"
  let insert = Pitree_baseline.Bt_coupling.insert
  let delete = Pitree_baseline.Bt_coupling.delete
  let find = Pitree_baseline.Bt_coupling.find
  let scan _ ~low:_ ~n:_ = 0
end

module Treelatch_kv = struct
  type t = Pitree_baseline.Bt_treelatch.t

  let engine_name = "tree-latch (serial SMO)"
  let insert = Pitree_baseline.Bt_treelatch.insert
  let delete = Pitree_baseline.Bt_treelatch.delete
  let find = Pitree_baseline.Bt_treelatch.find
  let scan _ ~low:_ ~n:_ = 0
end

let blink t = Inst ((module Blink_kv), t)
let coupling t = Inst ((module Coupling_kv), t)
let treelatch t = Inst ((module Treelatch_kv), t)
