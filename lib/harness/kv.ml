module Engine = Pitree_core.Engine

module type S = Engine.S

type instance = Engine.instance = Inst : (module S with type t = 'a) * 'a -> instance

let name = Engine.name
let insert i ~key ~value = Engine.insert i ~key ~value
let delete i key = Engine.delete i key
let find i key = Engine.find i key
let scan i ~low ~n = Engine.scan i ~low ~n

(* The baselines are non-transactional by construction; [?txn] is ignored
   so mixed workloads still run against them. They expose no ordered
   iteration either — [scan] reports 0 records. *)
module Coupling_kv = struct
  type t = Pitree_baseline.Bt_coupling.t

  let engine_name = "lock-coupling"
  let insert ?txn:_ t ~key ~value = Pitree_baseline.Bt_coupling.insert t ~key ~value
  let delete ?txn:_ t k = Pitree_baseline.Bt_coupling.delete t k
  let find ?txn:_ t k = Pitree_baseline.Bt_coupling.find t k
  let scan ?txn:_ _ ~low:_ ~n:_ = 0
end

module Treelatch_kv = struct
  type t = Pitree_baseline.Bt_treelatch.t

  let engine_name = "tree-latch (serial SMO)"
  let insert ?txn:_ t ~key ~value = Pitree_baseline.Bt_treelatch.insert t ~key ~value
  let delete ?txn:_ t k = Pitree_baseline.Bt_treelatch.delete t k
  let find ?txn:_ t k = Pitree_baseline.Bt_treelatch.find t k
  let scan ?txn:_ _ ~low:_ ~n:_ = 0
end

let blink = Pitree_blink.Blink_engine.inst
let tsb = Pitree_tsb.Tsb_engine.inst
let hb = Pitree_hb.Hb_engine.inst
let coupling t = Inst ((module Coupling_kv), t)
let treelatch t = Inst ((module Treelatch_kv), t)
