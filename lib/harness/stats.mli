(** Unified observability snapshot: the WAL's, buffer pool's and
    environment's counters in one record, with one pretty-printer and one
    JSON encoder shared by the bench harness and the CLI.

    The composition rule everywhere: take [of_env] before and after the
    measured region, then [delta] — counters become run deltas while the
    non-subtractable latency/batch distributions stay cumulative for the
    component's lifetime (which matches the common fresh-env-per-run
    usage). *)

type t = {
  wal : Pitree_wal.Log_manager.stats option;
  pool : Pitree_storage.Buffer_pool.stats option;
  env : Pitree_env.Env.stats option;
  faults : Pitree_storage.Disk.Faulty.counters option;
      (** injected faults per kind, when the environment's disk is a
          [Disk.Faulty] wrapper — the injection-side complement of the
          pool's [retried_reads]/[retried_writes] absorption counters *)
  combine : Pitree_combine.Combine.stats option;
      (** hot-key write-combining funnel (process-wide across engines):
          requests, batches, batch-size distribution, handbacks,
          leader-election window holds and follower park times *)
  mvcc : Pitree_txn.Mvcc.stats option;
      (** snapshot-isolation transactions (process-wide): snapshots begun
          and committed, first-committer-wins conflicts, aborts, snapshot
          reads, stale-snapshot aborts *)
}
(** Each component is optional so partial snapshots (e.g. a bare pool
    bench with no environment) fit the same record. *)

val empty : t

val of_env : ?faults:Pitree_storage.Disk.Faulty.ctl -> Pitree_env.Env.t -> t
(** Snapshot the components of a live environment. Pass the [Faulty.ctl]
    of the env's wrapped disk to include injection counters. *)

val delta : before:t -> after:t -> t
(** Component-wise counter subtraction ([None] on either side stays
    [None]). Ratio fields (pool hit ratio) are recomputed over the deltas;
    histogram-derived fields (WAL batch/wait, pool miss-wait) are taken
    from [after] unchanged. *)

val pp : Format.formatter -> t -> unit
(** One line per present component. *)

val to_json : t -> string
(** One JSON object [{"wal": .., "pool": .., "env": .., "faults": ..,
    "combine": .., "mvcc": ..}] with [null] for absent components. *)
