(** Endurance rig: YCSB-shaped mixes against a file-backed environment,
    run for wall-clock time under three concurrent adversaries — the
    log-growth checkpointer (with physical truncation), a seeded
    [Disk.Faulty] plan the buffer pool's retry/backoff path must absorb,
    and periodic crash+recover cycles that reopen the environment mid-run.

    Every run is gated by declared SLOs (zero lost committed writes,
    complete scans, well-formedness after every recovery, a point-read p99
    bound, a WAL size bound), turning "survives chaos" into a pass/fail
    regression property. Results serialize to the [BENCH_endure.json]
    shape consumed by CI.

    {2 Correctness oracle}

    Keys [0, keys) are preloaded and never deleted, so every point read
    must return [Some] and a scan of [scan_len] records starting inside
    the preloaded range must yield exactly [scan_len] records (freshly
    inserted keys sort after the whole preloaded range). Writes are
    partitioned by ownership — each worker overwrites only keys congruent
    to its index mod [domains] and inserts only fresh keys with the same
    stride — so each worker keeps an exact model of its own committed
    writes, checked continuously by its own reads and sampled after every
    recovery. *)

type mix = A | B | C | D | E | F | Mixed | Storm
(** YCSB-shaped operation mixes (percentages read/update/insert/scan/rmw):
    A = 50/50/0/0/0, B = 95/5/0/0/0, C = 100 reads, D = 95/0/5/0/0
    (insert-fresh; the "latest" read distribution is approximated by the
    configured skew), E = 0/0/5/95/0 (scans), F = 50/0/0/0/50
    (read-modify-write), Mixed = 40/20/10/10/20 — the default, so every
    op kind appears in the report. Storm = 0/100/0/0/0: an update-only
    write storm, meant to be paired with a skewed [theta] so hot keys
    collide and the write-combining funnel engages. *)

val mix_of_string : string -> mix option
val mix_to_string : mix -> string

type config = {
  keys : int;  (** preloaded key-space size *)
  seconds : float;  (** measured wall-clock duration (excludes preload) *)
  domains : int;
  mix : mix;
  theta : float;  (** Zipf skew for key picks; <= 0 means uniform *)
  value_len : int;
  scan_len : int;
  page_size : int;
  pool_capacity : int;
  ckpt_log_bytes : int;  (** log-growth checkpoint trigger *)
  faults : bool;  (** drive the seeded fault plan + torn crash flushes *)
  crash_cycles : int;  (** mid-run crash+recover cycles, evenly spaced *)
  verify_sample : int;  (** model keys re-checked after each recovery *)
  seed : int64;
  dir : string option;
      (** directory for the page file and WAL ([None]: a fresh temp
          directory, removed when the run ends) *)
  combine : bool;
      (** hot-key write combining ([Env.config.combine]) for the run's
          environments; when on and the mix has writes, the report gains a
          [combine_reqs] SLO row asserting the funnel actually engaged *)
  slo_p99_read_ns : int;  (** point-read p99 bound *)
  slo_wal_bytes : int;  (** WAL file size bound at end of run *)
}

val default_config : config
(** 1M keys, 60s, 4 domains, Mixed, Zipf 0.99, 64-byte values, 50-record
    scans, 4 KiB pages, 8192-frame pool, 4 MiB checkpoint trigger, faults
    on, 3 crash cycles, 2000-key verify sample, temp dir, p99 read <= 50ms,
    WAL <= 64 MiB. *)

type kind_stats = {
  kind : string;
  count : int;
  mean_ns : float;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
}
(** Latency summary for one op kind, merged across domains. *)

type slo = {
  name : string;
  cmp : string;  (** ["<="] or [">="] *)
  target : float;
  actual : float;
  ok : bool;
}

type result = {
  config : config;
  total_ops : int;
  elapsed_s : float;
  ops_per_s : float;
  kinds : kind_stats list;  (** op kinds with at least one sample *)
  stats : Stats.t;
      (** env and fault counters are true run deltas (they survive crash
          cycles); WAL and pool counters cover the interval since the last
          recovery (their volatile holders are rebuilt by each cycle) *)
  cycles_done : int;
  recovery_ms : float list;  (** per-cycle recovery wall time, in order *)
  verified_keys : int;  (** model keys checked across all verifications *)
  lost_writes : int;
      (** committed writes a read, scan-side check or post-recovery model
          check failed to observe — the headline zero-loss SLO *)
  scan_shortfalls : int;  (** scans returning fewer records than promised *)
  wellformed_failures : int;
  op_errors : int;  (** operations that raised (fault past retry budget) *)
  wal_file_bytes : int;  (** WAL file size at end of run *)
  errors : string list;  (** detail sample for failures, capped *)
  slos : slo list;
  passed : bool;  (** all SLOs ok *)
}

val env_config : config -> wal_path:string -> Pitree_env.Env.config
(** The environment configuration [run] builds for each lifetime,
    exposed so tests can assert the derived knobs — notably that the
    buffer pool's shard count is pinned to at least [2 * domains] rather
    than left to the core-count default (which collapses to one shard on
    single-CPU hosts and silently serializes every pin). *)

val run : ?log:(string -> unit) -> config -> result
(** Execute the rig: preload, checkpoint, then [config.seconds] of load
    with the adversary schedule, then final verification. [log] receives
    one-line progress messages (preload done, each crash cycle, final
    verify). *)

val to_json : result -> string
(** The [BENCH_endure.json] document: config echo, throughput, per-kind
    latency percentiles, unified [Stats] (including fault injection
    counters), crash-cycle summary and the SLO table with [passed]. *)

val pp_result : Format.formatter -> result -> unit
