(* Churn rig: alternating insert/delete cycles that prove node deletion
   and online merge keep the file bounded.

   A fixed key population is churned by a rotating band: delete [band]
   contiguous keys (emptying whole leaves, so consolidation merges them
   away and pushes their pages onto the free list), then re-insert the
   same band (the splits this forces must be served by popping the free
   list, not by extending the file). Each delete+re-insert pair counts
   as one cycle. The tsb engine additionally expires and collects
   between the delete and re-insert halves of every band, so history
   chains drain and tombstones purge instead of accumulating.

   Two gates make "bounded" concrete, per engine:
   - extent: the file's final page count is at most [extent_gate] times
     the steady-state high-water mark of live pages (extent minus free
     list) observed during the measured phase;
   - reuse: at least [reuse_gate] of post-warmup allocations were served
     by the free list.
   Warm-up is the initial population plus one full rotation, so the gates
   judge the steady state, not the growth phase. *)

module Env = Pitree_env.Env
module Blink = Pitree_blink.Blink
module Tsb = Pitree_tsb.Tsb
module Hb = Pitree_hb.Hb
module Wellformed = Pitree_core.Wellformed

type config = {
  cycles : int;  (** insert/delete pairs per engine *)
  keys : int;  (** fixed key population *)
  band : int;  (** contiguous keys deleted/re-inserted per rotation *)
  value_bytes : int;
  page_size : int;
  pool_capacity : int;
}

let default_config =
  {
    cycles = 1_000_000;
    keys = 4_096;
    band = 256;
    value_bytes = 16;
    page_size = 512;
    pool_capacity = 4_096;
  }

let extent_gate = 1.5
let reuse_gate = 0.8

type run = {
  r_engine : string;
  r_cycles : int;
  r_elapsed_s : float;
  r_cycles_per_s : float;
  r_used_hwm : int;  (** high-water mark of extent - free-list length *)
  r_extent_hwm : int;
  r_extent_final : int;
  r_free_final : int;
  r_post_allocated : int;  (** allocations after warm-up *)
  r_post_reused : int;  (** of which served by the free list *)
  r_reuse_ratio : float;
  r_pages_freed : int;
  r_extent_ratio : float;  (** extent_final / used_hwm *)
  r_bounded : bool;
  r_reuse_ok : bool;
  r_well_formed : bool;
}

type result = { runs : run list; passed : bool }

let ok r = r.r_bounded && r.r_reuse_ok && r.r_well_formed

(* One engine's churn run. [mk] builds the tree and returns the uniform
   engine instance plus the engine's between-halves pulse (tsb's
   expire-and-collect; a no-op elsewhere) and its verifier. *)
let run_one ~cfg ~engine ~(mk : Env.t -> Kv.instance * (unit -> unit) * (unit -> bool)) =
  let env =
    Env.create
      {
        Env.default_config with
        page_size = cfg.page_size;
        pool_capacity = cfg.pool_capacity;
        consolidation = true;
      }
  in
  Fun.protect ~finally:(fun () -> try Env.close env with _ -> ())
  @@ fun () ->
  let inst, pulse, verify = mk env in
  let key i = Printf.sprintf "ck%07d" (i mod cfg.keys) in
  let value = String.make cfg.value_bytes 'v' in
  let rotate start =
    for i = start to start + cfg.band - 1 do
      ignore (Kv.delete inst (key i) : bool)
    done;
    pulse ();
    for i = start to start + cfg.band - 1 do
      Kv.insert inst ~key:(key i) ~value
    done
  in
  for i = 0 to cfg.keys - 1 do
    Kv.insert inst ~key:(key i) ~value
  done;
  ignore (Env.drain env);
  (* warm-up: one full rotation reaches the churned steady state *)
  let pos = ref 0 in
  let turned = ref 0 in
  while !turned < cfg.keys do
    rotate !pos;
    pos := (!pos + cfg.band) mod cfg.keys;
    turned := !turned + cfg.band
  done;
  ignore (Env.drain env);
  let s0 = Env.stats env in
  let used () = Env.allocated_extent env - Env.free_list_length env in
  let used_hwm = ref (used ()) in
  let extent_hwm = ref (Env.allocated_extent env) in
  let t0 = Unix.gettimeofday () in
  let done_ = ref 0 in
  while !done_ < cfg.cycles do
    rotate !pos;
    pos := (!pos + cfg.band) mod cfg.keys;
    done_ := !done_ + cfg.band;
    let u = used () and e = Env.allocated_extent env in
    if u > !used_hwm then used_hwm := u;
    if e > !extent_hwm then extent_hwm := e
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  ignore (Env.drain env);
  let s1 = Env.stats env in
  let post_allocated = s1.Env.pages_allocated - s0.Env.pages_allocated in
  let post_reused = s1.Env.pages_reused - s0.Env.pages_reused in
  let reuse_ratio =
    if post_allocated = 0 then 0.0
    else float_of_int post_reused /. float_of_int post_allocated
  in
  let extent_final = Env.allocated_extent env in
  let extent_ratio =
    if !used_hwm = 0 then Float.infinity
    else float_of_int extent_final /. float_of_int !used_hwm
  in
  {
    r_engine = engine;
    r_cycles = !done_;
    r_elapsed_s = elapsed;
    r_cycles_per_s = float_of_int !done_ /. elapsed;
    r_used_hwm = !used_hwm;
    r_extent_hwm = !extent_hwm;
    r_extent_final = extent_final;
    r_free_final = Env.free_list_length env;
    r_post_allocated = post_allocated;
    r_post_reused = post_reused;
    r_reuse_ratio = reuse_ratio;
    r_pages_freed = s1.Env.pages_freed;
    r_extent_ratio = extent_ratio;
    r_bounded = float_of_int extent_final <= extent_gate *. float_of_int !used_hwm;
    r_reuse_ok = reuse_ratio >= reuse_gate;
    r_well_formed = verify ();
  }

let run ?(log = fun _ -> ()) cfg =
  let one ?(cfg = cfg) engine mk =
    let r = run_one ~cfg ~engine ~mk in
    log
      (Printf.sprintf
         "churn %-5s: %d cycles, %.0f/s, used hwm %d, extent %d (%.2fx), \
          reuse %d/%d (%.1f%%)%s"
         engine r.r_cycles r.r_cycles_per_s r.r_used_hwm r.r_extent_final
         r.r_extent_ratio r.r_post_reused r.r_post_allocated
         (100.0 *. r.r_reuse_ratio)
         (if ok r then "" else " FAIL"));
    r
  in
  let noop () = () in
  let runs =
    [
      one "blink" (fun env ->
          let t = Blink.create env ~name:"churn" in
          (Kv.blink t, noop, fun () -> Wellformed.ok (Blink.verify t)));
      one "tsb" (fun env ->
          let t = Tsb.create env ~name:"churn" in
          let pulse () =
            Tsb.set_horizon t (Tsb.now t);
            ignore (Tsb.gc t : int)
          in
          (Kv.tsb t, pulse, fun () -> Wellformed.ok (Tsb.verify t)));
      (* The hB adapter hashes string keys over the unit cube, so a
         contiguous key band scatters spatially and no region ever
         empties. Churn it in full-population waves instead — delete
         everything, re-insert everything — which is the spatial analog:
         every data region drains, consolidation collapses the tree onto
         the free list, and the re-insert wave's splits pop it back. *)
      one ~cfg:{ cfg with band = cfg.keys } "hb" (fun env ->
          let t = Hb.create env ~name:"churn" ~dims:2 in
          (Kv.hb t, noop, fun () -> Wellformed.ok (Hb.verify t)));
    ]
  in
  { runs; passed = List.for_all ok runs }

let to_json (cfg : config) (res : result) =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"bench\": \"churn\",\n";
  Printf.bprintf b
    "  \"cycles_per_engine\": %d, \"keys\": %d, \"band\": %d, \
     \"value_bytes\": %d, \"page_size\": %d,\n"
    cfg.cycles cfg.keys cfg.band cfg.value_bytes cfg.page_size;
  Printf.bprintf b
    "  \"gates\": {\"extent_ratio_le\": %.2f, \"reuse_ratio_ge\": %.2f, \
     \"passed\": %b},\n"
    extent_gate reuse_gate res.passed;
  Buffer.add_string b "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"engine\": %S, \"cycles\": %d, \"elapsed_s\": %.3f, \
         \"cycles_per_s\": %.1f, \"used_hwm\": %d, \"extent_hwm\": %d, \
         \"extent_final\": %d, \"free_final\": %d, \"extent_ratio\": %.3f, \
         \"post_allocated\": %d, \"post_reused\": %d, \"reuse_ratio\": %.4f, \
         \"pages_freed\": %d, \"bounded\": %b, \"reuse_ok\": %b, \
         \"well_formed\": %b}%s\n"
        r.r_engine r.r_cycles r.r_elapsed_s r.r_cycles_per_s r.r_used_hwm
        r.r_extent_hwm r.r_extent_final r.r_free_final r.r_extent_ratio
        r.r_post_allocated r.r_post_reused r.r_reuse_ratio r.r_pages_freed
        r.r_bounded r.r_reuse_ok r.r_well_formed
        (if i = List.length res.runs - 1 then "" else ","))
    res.runs;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
