(* Shared machinery for optimistic (latch-free) read descents.

   Engines validate latch-free node reads against the version word each
   frame latch maintains (see Pitree_sync.Version): snapshot the word,
   read the node, prove the word unchanged before acting on anything
   read. A failed proof raises [Restart]; [protect] turns counted
   restarts into a bounded retry loop with a latched fallback, so write
   storms degrade to the paper's latched protocol instead of livelocking
   readers. *)

module Latch = Pitree_sync.Latch
module Version = Pitree_sync.Version

exception Restart

let vword (fr : Buffer_pool.frame) = Latch.version fr.Buffer_pool.latch

(* Snapshot a node's version word, waiting out a mid-mutation writer for
   a few re-reads before abandoning the whole descent. *)
let snapshot fr =
  let rec spin n =
    let v = Version.snapshot (vword fr) in
    if not (Version.is_locked v) then v
    else if n = 0 then raise Restart
    else spin (n - 1)
  in
  spin 3

let validate fr v = if not (Version.validate (vword fr) v) then raise Restart

(* A validated pointer can still name a page that was de-allocated (and
   maybe re-used) after the pointer was read: node deletion pushes pages
   onto the free list, where their kind reads [Page.Free]. That is a
   transient state of the optimistic protocol — the descent raced a
   merge/free — not corruption: restart rather than decode free-list
   bytes as a node. *)
let live p = if Page.kind p = Page.Free then raise Restart

(* Optimistic attempts abandoned (from every cause) before the reader
   falls back to the S-latched path. *)
let max_restarts = 8

(* Exceptions that mean "this attempt read a torn state": a stale
   pointer can name a free, re-used or never-allocated page, whose bytes
   can fail the tagged structural checks ([Page.Corrupt], [Codec.Corrupt],
   [Not_found] from a vanished pin). Anything else — including bare
   [Invalid_argument]/[Failure], which are how genuine engine invariant
   violations surface — propagates. Decode regions that can legitimately
   blow up on a torn byte snapshot wrap themselves in {!decoding}, which
   converts those exceptions to [Restart] only when the frame's version
   word proves the state really was torn. *)
let transient = function
  | Restart | Not_found | Page.Corrupt _ | Pitree_util.Codec.Corrupt _ -> true
  | Buffer_pool.Pool_exhausted -> true
  | _ -> false

(* Guard for accessor code parsing an unvalidated byte snapshot: decoding
   a half-rewritten page can die deep inside string/cell accessors with
   [Invalid_argument]/[Failure]. Re-check the version word at the point
   of failure: if it moved, the state was torn and the attempt restarts;
   if it is still valid, the bytes were stable and the failure is a real
   bug that must escape the restart ladder. *)
let decoding fr v f =
  try f ()
  with (Invalid_argument _ | Failure _) as e ->
    if Version.validate (vword fr) v then raise e else raise Restart

(* Run one optimistic [attempt] with counted restarts; after the budget,
   [fallback] (the latched path). On [Pool_exhausted] the attempt's
   cleanup has already dropped every pin it held — yield so the evictor
   can actually make progress before piling back in (a reader retrying
   here with pins still held is exactly the spurious-exhaustion bug the
   optimistic path must avoid). *)
let protect ?restarts ?fallbacks ~attempt ~fallback () =
  let tick = function Some c -> Atomic.incr c | None -> () in
  let rec go n =
    if n >= max_restarts then begin
      tick fallbacks;
      fallback ()
    end
    else
      match attempt () with
      | r -> r
      | exception Buffer_pool.Pool_exhausted ->
          tick restarts;
          Thread.yield ();
          go (n + 1)
      | exception e when transient e ->
          tick restarts;
          go (n + 1)
  in
  go 0
