(** Fixed-size slotted pages.

    Every node of every index in the library lives on one of these pages, so
    that trees survive (simulated) crashes byte-for-byte. The layout is the
    classic slotted page: a fixed 40-byte header, a slot directory growing
    upward, and cell payloads growing downward from the end of the page.

    The header carries the {b page LSN}, which doubles as the paper's node
    {e state identifier} (section 5.2): any logged change to the page
    advances it, so a traversal can detect "has this node changed since I
    remembered it?" with one comparison.

    The header also reserves a {b CRC32 checksum} of the whole page image.
    The buffer pool stamps it on every flush and verifies it on every
    fetch, so torn writes and bit rot on the durable medium are detected
    at the storage boundary ({!Corrupt}) instead of surfacing as tree
    corruption. While a page is dirty in memory the field is stale.

    Mutations here are raw, unlogged primitives. Code above the WAL never
    calls them directly: it goes through [Pitree_wal.Page_ops] so that every
    change is redo/undo-loggable. *)

type kind =
  | Free        (** on the free list *)
  | Meta        (** page 0: catalog + allocation state *)
  | Data        (** leaf node: data records (level 0) *)
  | Index       (** index node: index/sibling terms (level >= 1) *)

val kind_to_int : kind -> int
val kind_of_int : int -> kind
val pp_kind : Format.formatter -> kind -> unit

type t

exception Page_full

type corruption =
  | Torn
      (** the header is invalid (bad magic): the write that should have
          produced this image never completed past the header, or the page
          was never fully written at all *)
  | Checksum of { stored : int32; computed : int32 }
      (** the header is valid but the body does not match the stamped
          checksum: a torn interior (old tail behind a new header) or
          silent corruption (bit rot) *)

exception Corrupt of { pid : int; what : corruption }
(** Raised by {!of_durable} when a durable image fails verification.
    Recovery treats this as "no durable image" and rebuilds the page
    purely from redo history. *)

val pp_corruption : Format.formatter -> corruption -> unit

val header_size : int
val slot_overhead : int
(** Bytes of slot-directory space consumed per cell (4). *)

val nil : int
(** The null page id (0). *)

val create : size:int -> id:int -> kind:kind -> level:int -> t
(** A freshly formatted page with no cells. *)

val of_bytes : id:int -> bytes -> t
(** Adopt [bytes] (not copied) as page [id]'s image. Raises
    [Pitree_util.Codec.Corrupt] on a bad magic number. Does {e not} verify
    the checksum (for in-memory copies and debugging); durable images read
    from disk go through {!of_durable}. *)

val of_durable : id:int -> bytes -> t
(** Adopt [bytes] (not copied) as page [id]'s durable image, verifying
    header magic and checksum. Raises {!Corrupt} — [Torn] on a bad header,
    [Checksum] on a body mismatch. *)

(** {2 Checksums} *)

val checksum : t -> int
(** The stamped checksum field (meaningless while the page is dirty). *)

val compute_checksum : t -> int32
(** CRC32 of the current image with the checksum field read as zero. *)

val stamp_checksum : t -> unit
(** Store {!compute_checksum} into the header (done by the buffer pool on
    every flush). *)

val checksum_ok : t -> bool
(** Does the stamped checksum match the current image? *)

val raw : t -> bytes
(** The live underlying buffer (for disk I/O). *)

val copy : t -> t

val size : t -> int
val id : t -> int

val lsn : t -> int
val set_lsn : t -> int -> unit

val kind : t -> kind
val set_kind : t -> kind -> unit

val level : t -> int
val set_level : t -> int -> unit

val side_ptr : t -> int
(** Sibling (side) pointer; [nil] when absent. For B-link nodes this is the
    right sibling; the TSB-tree also uses {!aux_ptr} for its history sibling. *)

val set_side_ptr : t -> int -> unit

val aux_ptr : t -> int
val set_aux_ptr : t -> int -> unit

val flags : t -> int
val set_flags : t -> int -> unit

val slot_count : t -> int
val get : t -> int -> string
(** [get p i] is the cell in slot [i]. Raises [Invalid_argument] when out of
    range. *)

val insert : t -> int -> string -> unit
(** [insert p i cell] inserts [cell] at slot index [i], shifting later slots
    up. Raises [Page_full] when the cell plus slot overhead does not fit
    even after compaction, [Invalid_argument] when [i] is out of range. *)

val delete : t -> int -> string
(** [delete p i] removes slot [i], shifting later slots down; returns the
    removed cell. *)

val replace : t -> int -> string -> unit
(** [replace p i cell] swaps the content of slot [i]. May compact; raises
    [Page_full] if the larger cell cannot fit. *)

val clear : t -> unit
(** Remove all cells (header preserved). *)

val free_space : t -> int
(** Bytes available for one more cell's payload, assuming compaction, net of
    slot overhead. *)

val will_fit : t -> int -> bool
(** [will_fit p n]: can a cell of [n] bytes be inserted? *)

val can_replace : t -> int -> int -> bool
(** [can_replace p i n]: can slot [i]'s cell be replaced by one of [n]
    bytes (no new slot is consumed)? *)

val used_space : t -> int
(** Bytes of cell payload currently stored (utilization numerator). *)

val fold : t -> init:'a -> f:('a -> int -> string -> 'a) -> 'a
(** Fold over slots in index order. *)

val pp : Format.formatter -> t -> unit
