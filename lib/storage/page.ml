module Codec = Pitree_util.Codec

type kind = Free | Meta | Data | Index

let kind_to_int = function Free -> 0 | Meta -> 1 | Data -> 2 | Index -> 3

let kind_of_int = function
  | 0 -> Free
  | 1 -> Meta
  | 2 -> Data
  | 3 -> Index
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad page kind %d" n))

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with Free -> "free" | Meta -> "meta" | Data -> "data" | Index -> "index")

(* Header layout (40 bytes):
   0  u16 magic
   2  u8  kind
   3  u8  level
   4  i64 page_lsn (state identifier)
   12 u32 self page id
   16 u16 slot_count
   18 u16 cell_start  (lowest offset occupied by cell payload)
   20 u32 side_ptr
   24 u32 aux_ptr
   28 u16 flags
   30 u16 reserved
   32 u32 checksum (CRC32 of the whole page with this field zeroed)
   36 u32 reserved *)

let magic = 0x5049
let header_size = 40
let checksum_off = 32
let slot_overhead = 4
let nil = 0

type t = { id : int; buf : bytes }

exception Page_full

type corruption =
  | Torn  (** header invalid: the write never completed past the header *)
  | Checksum of { stored : int32; computed : int32 }
      (** header valid but body mismatched: a torn interior or bit rot *)

exception Corrupt of { pid : int; what : corruption }

let pp_corruption ppf = function
  | Torn -> Format.pp_print_string ppf "torn (bad header)"
  | Checksum { stored; computed } ->
      Format.fprintf ppf "checksum mismatch (stored %08lx, computed %08lx)"
        stored computed

let () =
  Printexc.register_printer (function
    | Corrupt { pid; what } ->
        Some
          (Format.asprintf "Page.Corrupt (page %d: %a)" pid pp_corruption what)
    | _ -> None)

let size t = Bytes.length t.buf
let id t = t.id
let raw t = t.buf

let slot_count t = Codec.read_u16 t.buf 16
let set_slot_count t n = Codec.set_u16 t.buf 16 n
let cell_start t = Codec.read_u16 t.buf 18
let set_cell_start t n = Codec.set_u16 t.buf 18 n

let lsn t = Int64.to_int (Codec.read_i64 t.buf 4)
let set_lsn t v = Codec.set_i64 t.buf 4 (Int64.of_int v)

let kind t = kind_of_int (Char.code (Bytes.get t.buf 2))
let set_kind t k = Bytes.set t.buf 2 (Char.chr (kind_to_int k))

let level t = Char.code (Bytes.get t.buf 3)
let set_level t l = Bytes.set t.buf 3 (Char.chr l)

let side_ptr t = Codec.read_u32 t.buf 20
let set_side_ptr t v = Codec.set_u32 t.buf 20 v

let aux_ptr t = Codec.read_u32 t.buf 24
let set_aux_ptr t v = Codec.set_u32 t.buf 24 v

let flags t = Codec.read_u16 t.buf 28
let set_flags t v = Codec.set_u16 t.buf 28 v

let format t ~kind:k ~level:l =
  Bytes.fill t.buf 0 (Bytes.length t.buf) '\000';
  Codec.set_u16 t.buf 0 magic;
  set_kind t k;
  set_level t l;
  Codec.set_u32 t.buf 12 t.id;
  set_slot_count t 0;
  set_cell_start t (Bytes.length t.buf)

let create ~size ~id ~kind ~level =
  if size < header_size + 64 then invalid_arg "Page.create: size too small";
  let t = { id; buf = Bytes.make size '\000' } in
  format t ~kind ~level;
  t

let of_bytes ~id buf =
  let t = { id; buf } in
  if Codec.read_u16 buf 0 <> magic then
    raise (Codec.Corrupt (Printf.sprintf "page %d: bad magic" id));
  t

(* --- checksums ---

   The CRC covers the entire page image with the checksum field itself
   read as zero, so stamping is: zero the field, CRC, store. The buffer
   pool stamps on every flush and verifies on every fetch; the field is
   meaningless (stale) while the page is dirty in memory. *)

let checksum t = Codec.read_u32 t.buf checksum_off

let compute_checksum t =
  let saved = Codec.read_u32 t.buf checksum_off in
  Codec.set_u32 t.buf checksum_off 0;
  let crc = Codec.crc32 (Bytes.unsafe_to_string t.buf) in
  Codec.set_u32 t.buf checksum_off saved;
  crc

let stamp_checksum t =
  Codec.set_u32 t.buf checksum_off 0;
  let crc = Codec.crc32 (Bytes.unsafe_to_string t.buf) in
  Codec.set_u32 t.buf checksum_off (Int32.to_int crc land 0xFFFFFFFF)

let checksum_ok t =
  Int32.equal (compute_checksum t)
    (Int32.of_int (checksum t))

let of_durable ~id buf =
  if Codec.read_u16 buf 0 <> magic then
    raise (Corrupt { pid = id; what = Torn });
  let t = { id; buf } in
  let computed = compute_checksum t in
  let stored = Int32.of_int (checksum t) in
  if not (Int32.equal computed stored) then
    raise (Corrupt { pid = id; what = Checksum { stored; computed } });
  t

let copy t = { id = t.id; buf = Bytes.copy t.buf }

let slot_off i = header_size + (slot_overhead * i)

let slot t i =
  let off = slot_off i in
  (Codec.read_u16 t.buf off, Codec.read_u16 t.buf (off + 2))

let set_slot t i (off, len) =
  let o = slot_off i in
  Codec.set_u16 t.buf o off;
  Codec.set_u16 t.buf (o + 2) len

let check_index t i ~insert:ins =
  let n = slot_count t in
  let hi = if ins then n else n - 1 in
  if i < 0 || i > hi then
    invalid_arg (Printf.sprintf "Page slot index %d out of range (count %d)" i n)

let get t i =
  check_index t i ~insert:false;
  let off, len = slot t i in
  Bytes.sub_string t.buf off len

let used_space t =
  let n = slot_count t in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let _, len = slot t i in
    acc := !acc + len
  done;
  !acc

let dir_end t = header_size + (slot_overhead * slot_count t)

(* Contiguous free gap between the slot directory and the cell heap. *)
let gap t = cell_start t - dir_end t

let free_space t =
  (* Total free = page size - header - directory - live payload, assuming
     compaction; net of the slot a future cell would consume. *)
  let total_free = size t - dir_end t - used_space t in
  max 0 (total_free - slot_overhead)

let will_fit t n = n + slot_overhead <= size t - dir_end t - used_space t

let can_replace t i n =
  check_index t i ~insert:false;
  let _, old_len = slot t i in
  n <= size t - dir_end t - used_space t + old_len

(* Rewrite all cells tightly against the end of the page. *)
let compact t =
  let n = slot_count t in
  let cells = Array.init n (fun i -> get t i) in
  let pos = ref (size t) in
  (* Zero the old heap region for hygiene (optional but keeps images clean). *)
  Bytes.fill t.buf (dir_end t) (size t - dir_end t) '\000';
  for i = n - 1 downto 0 do
    let c = cells.(i) in
    let len = String.length c in
    pos := !pos - len;
    Bytes.blit_string c 0 t.buf !pos len;
    set_slot t i (!pos, len)
  done;
  set_cell_start t !pos

let insert t i cell =
  check_index t i ~insert:true;
  let len = String.length cell in
  if not (will_fit t len) then raise Page_full;
  if gap t < len + slot_overhead then compact t;
  let n = slot_count t in
  (* Shift slots [i, n) up by one. *)
  let src = slot_off i in
  Bytes.blit t.buf src t.buf (src + slot_overhead) (slot_overhead * (n - i));
  let pos = cell_start t - len in
  Bytes.blit_string cell 0 t.buf pos len;
  set_cell_start t pos;
  set_slot t i (pos, len);
  set_slot_count t (n + 1)

let delete t i =
  check_index t i ~insert:false;
  let cell = get t i in
  let n = slot_count t in
  let dst = slot_off i in
  Bytes.blit t.buf (dst + slot_overhead) t.buf dst (slot_overhead * (n - 1 - i));
  set_slot_count t (n - 1);
  (* Heap space is reclaimed lazily by [compact]. [cell_start] may now be
     stale-low, which is safe: it only under-reports the gap. *)
  cell

let replace t i cell =
  check_index t i ~insert:false;
  let _, old_len = slot t i in
  let len = String.length cell in
  if len <= old_len then begin
    let off, _ = slot t i in
    Bytes.blit_string cell 0 t.buf off len;
    set_slot t i (off, len)
  end
  else begin
    if size t - dir_end t - used_space t + old_len < len then raise Page_full;
    ignore (delete t i);
    (* [insert] never raises here: we just checked capacity net of the old
       cell, and delete released its slot. *)
    insert t i cell
  end

let clear t =
  set_slot_count t 0;
  set_cell_start t (size t);
  Bytes.fill t.buf header_size (size t - header_size) '\000'

let fold t ~init ~f =
  let n = slot_count t in
  let acc = ref init in
  for i = 0 to n - 1 do
    acc := f !acc i (get t i)
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>page %d: %a level=%d lsn=%d slots=%d side=%d aux=%d free=%d@]"
    t.id pp_kind (kind t) (level t) (lsn t) (slot_count t) (side_ptr t)
    (aux_ptr t) (free_space t)
