(** Durable page stores.

    A disk is the durable medium under the buffer pool: pages written here
    survive a crash; everything else does not. Three implementations:

    - {!in_memory}: a crash-faithful store for tests and benchmarks. Writes
      are durable immediately (the volatile layer in the system is the
      buffer pool above, which decides {e when} to write, honoring WAL).
    - {!file}: a real file via [Unix], for the persistence examples.
    - {!Faulty.wrap}: a fault-injecting decorator over either, for
      adversarial recovery testing (torn writes, transient I/O errors, bit
      rot, fail-stop).

    Implementations are thread-safe. *)

exception Disk_error of { pid : int; op : string; transient : bool }
(** An I/O failure. [transient] failures may succeed when retried (the
    buffer pool does so with backoff); non-transient ones model a torn
    write being abandoned or a dead device. Only raised by {!Faulty}
    disks. *)

type t = {
  page_size : int;
  read : int -> bytes -> unit;
      (** [read pid buf] fills [buf] with page [pid]'s durable image.
          Raises [Not_found] when the page was never written. *)
  write : int -> bytes -> unit;  (** durably store page [pid] *)
  sync : unit -> unit;
  close : unit -> unit;
  read_count : unit -> int;
  write_count : unit -> int;
}

val in_memory : page_size:int -> t

val file : page_size:int -> path:string -> t
(** Opens (creating if needed) [path]. Page [pid] lives at byte offset
    [pid * page_size]. A page that was never written reads back as all
    zeroes and is reported via [Not_found] (detected by a zero magic). *)

(** Fault injection: wrap any disk in a decorator that corrupts or fails a
    seeded-random subset of operations, per a {!Faulty.plan}. The wrapped
    disk shares the inner disk's store and op counters; per-fault counters
    live on the returned {!Faulty.ctl}. *)
module Faulty : sig
  type plan = {
    torn_write : float;
        (** P(a write persists only a prefix of the page, then raises a
            non-transient {!Disk_error}) — the classic torn page *)
    transient_read : float;
        (** P(a read raises a transient {!Disk_error} without touching the
            buffer); a retry re-draws *)
    transient_write : float;  (** same, for writes (nothing is written) *)
    bit_flip : float;
        (** P(a read succeeds but one random bit of the returned buffer is
            flipped) — transient read-path corruption; the durable image is
            intact, so a retry reads clean *)
    fail_stop_after : int option;
        (** once this many total operations have been observed, every
            subsequent read and write raises a non-transient error (device
            death); applies to {!plan.protected_pids} too *)
    protected_pids : int list;
        (** pages exempt from all per-op faults (e.g. the meta page, whose
            pre-checkpoint history may no longer be in the log, making a
            torn image unrecoverable by redo) *)
  }

  val no_faults : plan

  type counters = {
    torn_writes : int;
    transient_reads : int;
    transient_writes : int;
    bit_flips : int;
    fail_stops : int;  (** operations refused after the fail-stop point *)
  }

  type ctl
  (** Handle for steering a wrapped disk: swap the plan mid-run and read
      the per-fault counters. *)

  val wrap : ?seed:int64 -> ?plan:plan -> t -> t * ctl
  (** [wrap ~seed ~plan inner]: a disk with [inner]'s contents and [plan]'s
      faults. Equal seeds and operation sequences draw equal faults.
      [plan] defaults to {!no_faults} (swap one in later via {!set_plan}). *)

  val set_plan : ctl -> plan -> unit
  val plan : ctl -> plan
  val counters : ctl -> counters
  val reset_counters : ctl -> unit
end
