(** Buffer pool: the volatile page cache, enforcing write-ahead logging.

    The pool is hash-sharded (LeanStore-style): each shard owns a mutex, a
    frame table and a second-chance clock ring, so pins of unrelated pages
    contend only when they hash to the same shard, and eviction is
    O(1) amortized instead of a full-table scan. No shard mutex is ever
    held across disk I/O: a miss installs a [Loading] placeholder and
    reads off-mutex; eviction of a dirty victim flips the frame to
    [Writing] and writes off-mutex. Concurrent requesters of an in-flight
    page wait on the frame's own condition variable — one slow or
    retrying read never blocks hits on other pages. [unpin] is a plain
    atomic decrement with no lock at all.

    Frames hold page images plus the page's latch. The discipline callers
    must follow:

    + [pin] before touching a page; [unpin] when the reference is dropped.
    + latch only while pinned (an unpinned frame may be evicted and its
      latch abandoned).
    + never write page bytes without logging through the WAL layer, which
      advances the page LSN; the pool refuses to evict a dirty page whose
      LSN has not been flushed by calling the [wal_flush] callback first
      (the WAL protocol).

    [crash] models power failure: every frame vanishes, clean or dirty.

    {2 Storage-fault resilience}

    The pool is the checksum boundary: every flush stamps the page's CRC32
    ([Page.stamp_checksum]) and every fetch verifies it ([Page.of_durable]).
    Transient disk errors ([Disk.Disk_error] with [transient = true]) and
    transient read-path corruption (a fetched image failing its checksum)
    are absorbed by retrying with capped exponential backoff, observable
    via [stats.retried_reads] / [stats.retried_writes]. A corrupt image
    that reads back identically twice is persistent — the durable image is
    torn or rotten — and surfaces as [Page.Corrupt]; recovery rebuilds such
    pages purely from redo history. *)

type t

(** Life cycle of a resident frame. [Loading]: a miss is reading the
    durable image off-mutex; the page field is a placeholder. [Writing]:
    eviction is writing the (formerly dirty) image off-mutex. Pins are
    granted only on [Ready] frames; requesters of a frame in either
    transitional state wait on its condition variable. *)
type state = Loading | Ready | Writing

type frame = private {
  pid : int;
  mutable page : Page.t;
  latch : Pitree_sync.Latch.t;
  mutable dirty : bool;
  mutable rec_lsn : int;
      (** recovery LSN, captured at the clean→dirty transition: a lower
          bound on the first log record whose effect is missing from the
          page's durable image (meaningful only while [dirty]) *)
  pins : int Atomic.t;
  cond : Condition.t;
  mutable state : state;
  mutable referenced : bool;  (** second-chance bit, set on every pin *)
  mutable waiters : int;  (** threads blocked on [cond] for this frame *)
  slot : int;  (** position in the owning shard's clock ring *)
  img_log : (int -> Page.t -> unit) option ref;
      (** shared with the pool: full-page-write hook, see
          {!set_image_logger} *)
  lsn_src : (unit -> int) option ref;
      (** shared with the pool: WAL-tail source for fresh-page rec_lsns,
          see {!set_lsn_source} *)
}

exception Pool_exhausted
(** Raised when every frame in the target shard stays pinned through the
    full bounded-backoff retry ladder ([pin_attempts] waits, ~40ms total by
    default). Size the pool above the maximum number of simultaneously
    pinned pages (ops pin O(tree height) pages). *)

val create :
  ?capacity:int ->
  ?shards:int ->
  ?max_retries:int ->
  ?backoff_base:float ->
  ?pin_attempts:int ->
  ?backoff_seed:int ->
  disk:Disk.t ->
  wal_flush:(int -> unit) ->
  unit ->
  t
(** [wal_flush lsn] must make the log durable up to and including [lsn]
    before returning; the pool invokes it before writing any dirty page.
    [shards] (default: the domain count rounded up to a power of two,
    capped at 64) is rounded up to a power of two and reduced until every
    shard holds at least 8 frames; [?shards:1] reproduces the legacy
    single-mutex pool for baseline comparison. [max_retries] (default 12)
    bounds re-issues of a failed disk op; [backoff_base] (default 0.2ms)
    seeds the exponential backoff, capped at 2ms per wait. [pin_attempts]
    (default 20) bounds the full-shard retry ladder before
    {!Pool_exhausted}. Every backoff wait — pin retries and disk-op
    retries alike — is scaled by a jitter factor in [0.5, 1.5) drawn from
    a seeded generator ([backoff_seed], default 0), so a burst of waiters
    desynchronizes instead of stampeding back in lockstep; equal seeds and
    draw orders reproduce equal waits. *)

val capacity : t -> int
(** Total frames across all shards (shard count × per-shard capacity;
    may round the requested capacity up). *)

val shards : t -> int

val pin_attempts : t -> int
(** The configured full-shard retry budget (see {!create}). *)

val pin : t -> int -> frame
(** Pin page [pid], reading it from disk on a miss. Raises [Not_found] if
    the page does not exist on disk (caller bug or corrupt pointer);
    [Page.Corrupt] if its durable image is torn or fails its checksum
    persistently (media damage — recovery rebuilds it from the log);
    [Disk.Disk_error] if the disk keeps failing past the retry budget. *)

val pin_new : t -> int -> frame
(** Pin a frame for a page known not to require a disk read (freshly
    allocated). The page buffer is zeroed; the caller must format it via a
    logged operation. *)

val unpin : t -> frame -> unit
(** Drop one pin. Lock-free (an atomic decrement). *)

val repin : t -> frame -> unit
(** Add a pin to a frame the caller {e already holds pinned}. Lock-free
    (an atomic increment), and sound only under that precondition —
    pinned frames are never evicted, so the count cannot race a victim
    selection. Pinning a frame from scratch must go through {!pin}. *)

val mark_dirty : frame -> unit
(** Record that the page is about to diverge from its durable image. Call
    BEFORE mutating the page (and before appending the log record for the
    change), while holding the frame's X latch: the clean→dirty transition
    captures [rec_lsn] from the installed {!set_lsn_source} WAL tail (or
    the page's current LSN without one), which is only a sound redo lower
    bound if the page has not yet been touched. If an image
    logger is installed (see {!set_image_logger}), the transition also
    logs a full-page write of the pre-update image. *)

val set_image_logger : t -> (int -> Page.t -> unit) option -> unit
(** Install (or clear) the full-page-write hook fired at each clean→dirty
    transition of a page with history (LSN > 0), before the dirty bit
    flips. The environment wires this to append a [Page_image] log record:
    its LSN necessarily exceeds the frame's [rec_lsn], so it survives any
    log truncation that keeps the page recoverable — a torn durable image
    can then be rebuilt from the logged image plus the retained suffix,
    even though the page's older history has been truncated. Recovery
    disables the hook during redo (replaying history must not re-log it). *)

val image_logger : t -> (int -> Page.t -> unit) option
(** The currently installed full-page-write hook. *)

val set_lsn_source : t -> (unit -> int) option -> unit
(** Install (or clear) the WAL-tail source consulted at each clean→dirty
    transition: the first record not yet in the durable image is the one
    the dirtier is about to append, which lands strictly above the tail,
    so [tail () + 1] is a sound [rec_lsn] — and a tight one. Without a
    source the fallback is [page LSN + 1]: equally sound, but one update
    to a page whose LSN predates the last checkpoint drags the redo floor
    (hence the truncation point) below the retained log — under steady
    traffic over a large key space the log then never shrinks, and a
    freshly created page (LSN 0) floors it at the origin outright. The
    tail is sampled before the full-page image is logged, keeping
    [rec_lsn] at or below the image's LSN. The environment wires this to
    [Log_manager.last_lsn]; recovery disables it during redo alongside
    the image logger (rebuilt pages are flushed before restart completes,
    so their conservative rec_lsn dies with the dirty bit). *)

val lsn_source : t -> (unit -> int) option
(** The currently installed WAL-tail source. *)

val flush_page : t -> frame -> unit
(** WAL-flush then write this page to disk; clears [dirty]. *)

val flush_all : t -> unit
(** Sharp flush: repeat {!write_back} sweeps until no resident page is
    dirty. Each page is written under its own S latch with no shard mutex
    held across I/O, so it is safe against concurrent page mutators (a
    mutator's X latch excludes the flusher per page); pages re-dirtied
    mid-sweep are caught by the next round, so termination assumes
    writers eventually quiesce (the clean-shutdown / initial-checkpoint
    call sites). Under sustained writes prefer {!write_back} (fuzzy). *)

val dirty_pages : t -> (int * int) list
(** Snapshot of the dirty-page table — (page id, [rec_lsn]) for every
    dirty resident frame — collected shard by shard under each shard's
    mutex, without stopping writers. The checkpoint input:
    [min rec_lsn] bounds recovery's redo point. *)

val write_back : t -> int
(** Incremental write-back for fuzzy checkpoints: flush each currently
    dirty frame one at a time, holding only that page's S latch (and no
    shard mutex) across the I/O — readers proceed, writers wait at most
    one page write. Frames that vanish or go clean concurrently are
    skipped. Returns the number of pages written. *)

val crash_flush : t -> unit
(** Power-failure image dump for crash simulation: write every dirty
    frame as-is, taking {e no} page latches — a dying machine's cache
    write-back does not coordinate with the application, so the crashing
    workload may still hold X latches (a latched flush would
    self-deadlock on them) and the images written may be mid-mutation
    (and torn, through a faulty disk). Dirty bits are left set; per-page
    disk errors are swallowed. Only meaningful immediately before
    {!crash} — never a substitute for {!flush_all}. *)

val crash : t -> unit
(** Discard all frames without flushing. The pool is unusable afterwards;
    open a fresh one to recover. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  flushes : int;
  retried_reads : int;
      (** disk reads re-issued after a transient error or a transiently
          corrupt image *)
  retried_writes : int;  (** disk writes re-issued after a transient error *)
  shards : int;
  shard_evictions : int array;  (** evictions per shard, index = shard *)
  hit_ratio : float;  (** hits / (hits + misses); 0 when no pins yet *)
  miss_wait_mean_ns : float;
      (** mean nanoseconds a missing pin spent in off-mutex disk I/O *)
  miss_wait_p99_ns : int;  (** 99th percentile of the same *)
}

val stats : t -> stats

(** Test-only introspection. *)
module Testing : sig
  val backoff_duration : t -> attempt:int -> float
  (** The jittered sleep the pool would take before retry [attempt]
      (0-based); advances the shared jitter state exactly like a real
      backoff, without sleeping. *)
end
