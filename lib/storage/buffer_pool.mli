(** Buffer pool: the volatile page cache, enforcing write-ahead logging.

    Frames hold page images plus the page's latch. The discipline callers
    must follow:

    + [pin] before touching a page; [unpin] when the reference is dropped.
    + latch only while pinned (an unpinned frame may be evicted and its
      latch abandoned).
    + never write page bytes without logging through the WAL layer, which
      advances the page LSN; the pool refuses to evict a dirty page whose
      LSN has not been flushed by calling the [wal_flush] callback first
      (the WAL protocol).

    [crash] models power failure: every frame vanishes, clean or dirty.

    {2 Storage-fault resilience}

    The pool is the checksum boundary: every flush stamps the page's CRC32
    ([Page.stamp_checksum]) and every fetch verifies it ([Page.of_durable]).
    Transient disk errors ([Disk.Disk_error] with [transient = true]) and
    transient read-path corruption (a fetched image failing its checksum)
    are absorbed by retrying with capped exponential backoff, observable
    via [stats.retried_reads] / [stats.retried_writes]. A corrupt image
    that reads back identically twice is persistent — the durable image is
    torn or rotten — and surfaces as [Page.Corrupt]; recovery rebuilds such
    pages purely from redo history. *)

type t

type frame = private {
  page : Page.t;
  latch : Pitree_sync.Latch.t;
  mutable dirty : bool;
  mutable pins : int;
  mutable tick : int;  (** LRU clock *)
}

exception Pool_exhausted
(** Raised when every frame is pinned and a new page must be brought in.
    Size the pool above the maximum number of simultaneously pinned pages
    (ops pin O(tree height) pages). *)

val create :
  ?capacity:int ->
  ?max_retries:int ->
  ?backoff_base:float ->
  disk:Disk.t ->
  wal_flush:(int -> unit) ->
  unit ->
  t
(** [wal_flush lsn] must make the log durable up to and including [lsn]
    before returning; the pool invokes it before writing any dirty page.
    [max_retries] (default 12) bounds re-issues of a failed disk op;
    [backoff_base] (default 0.2ms) seeds the exponential backoff, capped
    at 2ms per wait. *)

val capacity : t -> int

val pin : t -> int -> frame
(** Pin page [pid], reading it from disk on a miss. Raises [Not_found] if
    the page does not exist on disk (caller bug or corrupt pointer);
    [Page.Corrupt] if its durable image is torn or fails its checksum
    persistently (media damage — recovery rebuilds it from the log);
    [Disk.Disk_error] if the disk keeps failing past the retry budget. *)

val pin_new : t -> int -> frame
(** Pin a frame for a page known not to require a disk read (freshly
    allocated). The page buffer is zeroed; the caller must format it via a
    logged operation. *)

val unpin : t -> frame -> unit

val mark_dirty : frame -> unit

val flush_page : t -> frame -> unit
(** WAL-flush then write this page to disk; clears [dirty]. *)

val flush_all : t -> unit
(** Flush every dirty resident page (used by checkpoints and clean
    shutdown). *)

val crash : t -> unit
(** Discard all frames without flushing. The pool is unusable afterwards;
    open a fresh one to recover. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  flushes : int;
  retried_reads : int;
      (** disk reads re-issued after a transient error or a transiently
          corrupt image *)
  retried_writes : int;  (** disk writes re-issued after a transient error *)
}

val stats : t -> stats
