(** Shared machinery for optimistic (latch-free) read descents.

    Engines validate latch-free node reads against the version word each
    frame latch maintains (see {!Pitree_sync.Version}): {!snapshot} the
    word, read the node, prove the word unchanged with {!validate}
    before acting on anything read. A failed proof raises {!Restart};
    {!protect} turns counted restarts into a bounded retry loop with a
    latched fallback. *)

exception Restart
(** This optimistic attempt read a torn or superseded state; retry. *)

val vword : Buffer_pool.frame -> Pitree_sync.Version.t
(** The frame latch's version word. *)

val snapshot : Buffer_pool.frame -> int
(** Snapshot the frame's version word, spinning past a mid-mutation
    writer for a few re-reads; raises {!Restart} if it stays odd. Emits
    a [Sched_hook] yield point (kind [Version]). *)

val validate : Buffer_pool.frame -> int -> unit
(** Prove the word still equals the snapshot (and was not a writer's odd
    mark); raises {!Restart} otherwise. Emits a yield point. *)

val live : Page.t -> unit
(** Raise {!Restart} if the page's kind reads [Page.Free]: a latch-free
    descent stepped onto a page a concurrent merge/consolidation freed
    after the pointer was read — a transient state of the optimistic
    protocol (the free list re-uses pages), not corruption. *)

val max_restarts : int
(** Abandoned attempts (from every cause) before {!protect} falls back. *)

val transient : exn -> bool
(** Whether an exception means "this attempt read a torn state" (stale
    pointers can name free, re-used or never-allocated pages) rather
    than a real fault that must propagate. Only tagged exceptions
    ([Restart], [Not_found], [Page.Corrupt], [Codec.Corrupt],
    [Pool_exhausted]) qualify; bare [Invalid_argument]/[Failure] are NOT
    transient — wrap torn-prone decode regions in {!decoding} instead,
    so a genuine invariant violation escapes the restart ladder. *)

val decoding : Buffer_pool.frame -> int -> (unit -> 'a) -> 'a
(** [decoding fr v f] runs [f] (accessor code over [fr]'s unvalidated
    bytes, snapshotted at version [v]). An [Invalid_argument]/[Failure]
    from [f] is converted to {!Restart} if the frame's version word no
    longer validates against [v] (the bytes really were torn), and
    re-raised unchanged if it still does (a real bug on stable bytes). *)

val protect :
  ?restarts:int Atomic.t ->
  ?fallbacks:int Atomic.t ->
  attempt:(unit -> 'a) ->
  fallback:(unit -> 'a) ->
  unit ->
  'a
(** Run [attempt] with up to {!max_restarts} retries on {!transient}
    exceptions (yielding first after [Pool_exhausted], whose cleanup
    contract is that the attempt dropped every pin before raising), then
    [fallback]. The optional counters tick per restart / per fallback. *)
